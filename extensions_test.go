package atypical

import (
	"context"
	"errors"
	"testing"
)

func TestStreamProcessorThroughFacade(t *testing.T) {
	sys, err := NewSystem(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ds := sys.GenerateMonth(0)

	var streamed []*Cluster
	p, err := sys.NewStreamProcessor(func(c *Cluster) { streamed = append(streamed, c) })
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range ds.Atypical.Records() {
		if err := p.Observe(r); err != nil {
			t.Fatal(err)
		}
	}
	p.Flush()
	if len(streamed) == 0 {
		t.Fatal("no clusters streamed")
	}

	// Streaming + IngestClusters carries the same severity as batch
	// Ingest. Micro counts differ slightly by design: the batch pipeline
	// splits events at midnight (per-day materialization), the stream
	// keeps overnight events whole.
	sys.IngestClusters(streamed)
	var streamSev Severity
	for _, day := range sys.Forest().Days() {
		for _, c := range sys.Forest().Day(day) {
			streamSev += c.Severity()
		}
	}
	sys2, _ := NewSystem(testConfig())
	sys2.Ingest(sys2.GenerateMonth(0).Atypical)
	var batchSev Severity
	for _, day := range sys2.Forest().Days() {
		for _, c := range sys2.Forest().Day(day) {
			batchSev += c.Severity()
		}
	}
	if d := float64(streamSev - batchSev); d > 1e-6 || d < -1e-6 {
		t.Errorf("stream severity %v != batch severity %v", streamSev, batchSev)
	}
	if streamMicros, batchMicros := sys.Forest().Stats().MicroTotal, sys2.Forest().Stats().MicroTotal; streamMicros > batchMicros {
		t.Errorf("stream produced more micros (%d) than the midnight-splitting batch (%d)", streamMicros, batchMicros)
	}
}

func TestTrainPredictorThroughFacade(t *testing.T) {
	cfg := testConfig()
	cfg.DaysPerMonth = 14
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.IngestMonths(1)

	m, err := sys.TrainPredictor(0, 10, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Patterns()) == 0 {
		t.Fatal("no patterns learned")
	}
	top := m.TopSensors(20)
	if len(top) != 20 {
		t.Fatalf("top sensors = %d", len(top))
	}
	// The forecast should score well on a held-out weekday.
	byDay := sys.GenerateMonth(0).Atypical.SplitByDay(sys.Spec())
	out := m.Evaluate(byDay[10], 30)
	if out.PrecisionAtK < 0.5 {
		t.Errorf("precision@30 = %.2f on recurring workload", out.PrecisionAtK)
	}

	if _, err := sys.TrainPredictor(0, 0, 0); err == nil {
		t.Error("zero-day training accepted")
	}
	if _, err := sys.TrainPredictor(500, 5, 0); err == nil {
		t.Error("empty range accepted")
	}
}

func TestTrustThroughFacade(t *testing.T) {
	sys, err := NewSystem(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ds := sys.GenerateMonth(0)
	scores, err := sys.TrustScores(ds.Atypical)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) == 0 {
		t.Fatal("no scores")
	}
	// Filtering at an impossible threshold removes everything scored;
	// at zero it removes nothing.
	kept := sys.FilterUntrusted(ds.Atypical, scores, 0)
	if kept.Len() != ds.Atypical.Len() {
		t.Errorf("zero threshold removed records: %d of %d", kept.Len(), ds.Atypical.Len())
	}
	none := sys.FilterUntrusted(ds.Atypical, scores, 1.1)
	if none.Len() != 0 {
		t.Errorf("impossible threshold kept %d records", none.Len())
	}
}

func TestForestPersistenceThroughFacade(t *testing.T) {
	sys, err := NewSystem(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ds := sys.GenerateMonth(0)
	sys.Ingest(ds.Atypical)
	want := sys.Forest().Stats()
	dir := t.TempDir()
	if err := sys.SaveForest(dir); err != nil {
		t.Fatal(err)
	}

	sys2, _ := NewSystem(testConfig())
	// The severity index is not persisted, so a successful load still reports
	// staleness through the sentinel.
	if err := sys2.LoadForest(dir); !errors.Is(err, ErrSeverityStale) {
		t.Fatalf("LoadForest error = %v, want ErrSeverityStale", err)
	}
	got := sys2.Forest().Stats()
	if got.Days != want.Days || got.MicroTotal != want.MicroTotal {
		t.Errorf("loaded stats %+v, want %+v", got, want)
	}
	// All-strategy queries never consult the severity index and work while
	// it is stale; Guided ones are refused until a rebuild.
	res := mustRun(t, sys2, QueryRequest{Days: 7})
	if res.CandidateMicros == 0 {
		t.Error("loaded forest served no candidates")
	}
	if _, err := sys2.Run(context.Background(), QueryRequest{Days: 7, Strategy: Guided}); !errors.Is(err, ErrSeverityStale) {
		t.Errorf("Guided query on stale index error = %v, want ErrSeverityStale", err)
	}
	if err := sys2.RebuildSeverity(context.Background(), ds.Atypical); err != nil {
		t.Fatal(err)
	}
	if _, err := sys2.Run(context.Background(), QueryRequest{Days: 7, Strategy: Guided}); err != nil {
		t.Errorf("Guided query after RebuildSeverity: %v", err)
	}

	// LoadForestAndRebuild restores full function in one call.
	sys3, _ := NewSystem(testConfig())
	if err := sys3.LoadForestAndRebuild(context.Background(), dir, ds.Atypical); err != nil {
		t.Fatal(err)
	}
	g1 := mustRun(t, sys2, QueryRequest{Days: 7, Strategy: Guided})
	g3 := mustRun(t, sys3, QueryRequest{Days: 7, Strategy: Guided})
	if g1.RedZones != g3.RedZones || len(g1.Significant) != len(g3.Significant) {
		t.Errorf("rebuild paths disagree: %d/%d zones, %d/%d significant",
			g1.RedZones, g3.RedZones, len(g1.Significant), len(g3.Significant))
	}

	if err := sys2.LoadForest("/nonexistent"); err == nil || errors.Is(err, ErrSeverityStale) {
		t.Errorf("missing dir error = %v, want a plain load failure", err)
	}
}
