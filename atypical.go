// Package atypical is a library for multidimensional analysis of atypical
// events in cyber-physical system (CPS) data, reproducing Tang et al.,
// "Multidimensional Analysis of Atypical Events in Cyber-Physical Data"
// (ICDE 2012).
//
// A CPS deployment (e.g., a highway traffic monitoring network) streams
// records (sensor, window, severity) where the severity measure is the
// atypical duration within the window. This package:
//
//   - extracts atypical events — spatio-temporally connected record groups —
//     and summarizes each as an atypical micro-cluster holding a spatial
//     feature (severity per sensor) and temporal feature (severity per
//     window);
//   - integrates similar clusters into macro-clusters along hierarchical
//     aggregation paths (day → week → month), forming the atypical forest;
//   - answers analytical queries Q(W, T) for the significant clusters in a
//     spatial region and time period, using red-zone guided clustering to
//     prune trivial inputs without losing significant results.
//
// # Quick start
//
//	sys, err := atypical.NewSystem(atypical.DefaultConfig())
//	if err != nil { ... }
//	ds := sys.GenerateMonth(0)           // or ingest your own records
//	sys.Ingest(ds.Atypical)
//	rep := sys.QueryCity(0, 7, atypical.Guided)
//	for _, c := range rep.Significant {
//		fmt.Println(sys.Describe(c))
//	}
//
// See the examples directory for complete programs.
package atypical

import (
	"fmt"
	"time"

	"github.com/cpskit/atypical/internal/cluster"
	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/cube"
	"github.com/cpskit/atypical/internal/forest"
	"github.com/cpskit/atypical/internal/gen"
	"github.com/cpskit/atypical/internal/geo"
	"github.com/cpskit/atypical/internal/index"
	"github.com/cpskit/atypical/internal/query"
	"github.com/cpskit/atypical/internal/report"
	"github.com/cpskit/atypical/internal/traffic"
)

// Config parameterizes a System. The zero value is not usable; start from
// DefaultConfig.
type Config struct {
	// Sensors approximates the deployment size. The paper's PeMS deployment
	// has 4,076 sensors; tests and demos run well at a few hundred.
	Sensors int
	// Seed drives every random choice (network layout, workload).
	Seed int64
	// DaysPerMonth is the length of generated datasets.
	DaysPerMonth int

	// DeltaD is the distance threshold δd (miles) of Definition 1.
	DeltaD float64
	// DeltaT is the time interval threshold δt of Definition 1.
	DeltaT time.Duration
	// DeltaS is the default relative severity threshold δs of Definition 5.
	DeltaS float64
	// SimThreshold is the integration similarity threshold δsim.
	SimThreshold float64
	// Balance names the g function: avg, max, min, geo or har.
	Balance string
}

// DefaultConfig returns the paper's default parameters (Fig. 14) at a
// laptop-friendly deployment scale. DeltaS is scaled down from the paper's
// 5% because the significance bound δs·length(T)·N grows with deployment
// size N while relative event mass shrinks; 2% puts the bound at the same
// operating point on the ~500-sensor default deployment as 5% on the
// paper's 4,076 sensors (see EXPERIMENTS.md).
func DefaultConfig() Config {
	return Config{
		Sensors:      400,
		Seed:         42,
		DaysPerMonth: 30,
		DeltaD:       1.5,
		DeltaT:       15 * time.Minute,
		DeltaS:       0.02,
		SimThreshold: 0.5,
		Balance:      "avg",
	}
}

// System is the assembled pipeline: deployment topology, offline model
// construction (atypical forest + bottom-up severity index) and the online
// query engine.
type System struct {
	cfg       Config
	net       *traffic.Network
	spec      cps.WindowSpec
	balance   cluster.Balance
	neighbors [][]cps.SensorID
	maxGap    int

	idgen  cluster.IDGen
	forest *forest.Forest
	sev    *cube.SeverityIndex
	engine *query.Engine
	gen    *gen.Generator
}

// NewSystem validates cfg, generates the deployment topology and prepares an
// empty forest.
func NewSystem(cfg Config) (*System, error) {
	if cfg.Sensors <= 0 {
		return nil, fmt.Errorf("atypical: Sensors must be positive, got %d", cfg.Sensors)
	}
	if cfg.DeltaD <= 0 || cfg.DeltaT <= 0 {
		return nil, fmt.Errorf("atypical: DeltaD and DeltaT must be positive")
	}
	if cfg.SimThreshold <= 0 || cfg.SimThreshold > 1 {
		return nil, fmt.Errorf("atypical: SimThreshold must be in (0, 1], got %v", cfg.SimThreshold)
	}
	if cfg.DaysPerMonth <= 0 {
		return nil, fmt.Errorf("atypical: DaysPerMonth must be positive, got %d", cfg.DaysPerMonth)
	}
	bal, err := cluster.ParseBalance(cfg.Balance)
	if err != nil {
		return nil, err
	}
	netCfg := traffic.ScaledConfig(cfg.Sensors)
	netCfg.Seed = cfg.Seed
	net := traffic.GenerateNetwork(netCfg)
	spec := cps.DefaultSpec()

	locs := make([]geo.Point, net.NumSensors())
	for i, s := range net.Sensors {
		locs[i] = s.Loc
	}
	s := &System{
		cfg:       cfg,
		net:       net,
		spec:      spec,
		balance:   bal,
		neighbors: index.NewNeighborIndex(locs, cfg.DeltaD).NeighborLists(),
		maxGap:    cluster.MaxWindowGap(cfg.DeltaT, spec.Width),
	}
	opts := cluster.IntegrateOptions{
		SimThreshold: cfg.SimThreshold,
		Balance:      bal,
		// Temporal features compare by time of day (Fig. 5), letting the
		// recurring daily events of a corridor integrate across days.
		Period: cps.Window(spec.PerDay()),
	}
	s.forest = forest.New(spec, &s.idgen, opts, cfg.DaysPerMonth)
	s.sev = cube.NewSeverityIndex(net, spec)
	s.engine = &query.Engine{Net: net, Forest: s.forest, Severity: s.sev, Gen: &s.idgen}

	gcfg := gen.DefaultConfig(net)
	gcfg.Seed = cfg.Seed
	gcfg.DaysPerMonth = cfg.DaysPerMonth
	s.gen, err = gen.New(gcfg)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Network returns the deployment topology.
func (s *System) Network() *traffic.Network { return s.net }

// Spec returns the time window spec.
func (s *System) Spec() cps.WindowSpec { return s.spec }

// Forest returns the atypical forest built so far.
func (s *System) Forest() *forest.Forest { return s.forest }

// GenerateMonth synthesizes dataset m (0-based) for this deployment — the
// stand-in for the paper's monthly PeMS datasets.
func (s *System) GenerateMonth(m int) *gen.Dataset { return s.gen.Month(m) }

// Ingest runs offline model construction over an atypical record set:
// Algorithm 1 per day (events → micro-clusters into the forest) plus the
// bottom-up severity index used for red zones.
func (s *System) Ingest(rs *cps.RecordSet) {
	cps.ForEachDay(rs.SplitByDay(s.spec), func(day int, recs []cps.Record) {
		micros := cluster.ExtractMicroClusters(&s.idgen, recs, s.neighbors, s.maxGap)
		if existing := s.forest.Day(day); existing != nil {
			micros = append(existing, micros...)
		}
		s.forest.AddDay(day, micros)
	})
	s.sev.Add(rs.Records())
}

// IngestMonths generates and ingests months [0, n), returning the generated
// datasets (with ground truth) for inspection.
func (s *System) IngestMonths(n int) []*gen.Dataset {
	out := make([]*gen.Dataset, n)
	for m := 0; m < n; m++ {
		out[m] = s.GenerateMonth(m)
		s.Ingest(out[m].Atypical)
	}
	return out
}

// Strategy selects the online clustering strategy.
type Strategy = query.Strategy

// Online strategies: IntegrateAll is exact and slow, Pruned is fast but
// lossy, Guided is the paper's red-zone guided clustering.
const (
	IntegrateAll = query.All
	Pruned       = query.Pru
	Guided       = query.Gui
)

// Report is the outcome of an analytical query.
type Report = query.Result

// QueryCity runs Q(whole city, [firstDay, firstDay+days)) at the configured
// δs under the given strategy.
func (s *System) QueryCity(firstDay, days int, strat Strategy) *Report {
	q := query.CityQuery(s.net, s.spec, firstDay, days, s.cfg.DeltaS)
	return s.engine.Run(q, strat)
}

// QueryBox restricts the spatial range to the regions intersecting box.
func (s *System) QueryBox(box geo.BBox, firstDay, days int, strat Strategy) *Report {
	q := query.BoxQuery(s.net, s.spec, box, firstDay, days, s.cfg.DeltaS)
	return s.engine.Run(q, strat)
}

// QueryAt runs an explicit query (custom δs or region set).
func (s *System) QueryAt(q query.Query, strat Strategy) *Report {
	return s.engine.Run(q, strat)
}

// Describe renders a cluster as the answer to Example 1's questions: where
// the event is, when it starts, and which road segment / time window is most
// serious.
func (s *System) Describe(c *cluster.Cluster) string {
	return report.Describe(s.net, s.spec, c)
}

// Ranking renders clusters as a ranked table, most severe first.
func (s *System) Ranking(clusters []*cluster.Cluster) string {
	return report.Ranking(s.net, s.spec, clusters)
}
