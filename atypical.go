// Package atypical is a library for multidimensional analysis of atypical
// events in cyber-physical system (CPS) data, reproducing Tang et al.,
// "Multidimensional Analysis of Atypical Events in Cyber-Physical Data"
// (ICDE 2012).
//
// A CPS deployment (e.g., a highway traffic monitoring network) streams
// records (sensor, window, severity) where the severity measure is the
// atypical duration within the window. This package:
//
//   - extracts atypical events — spatio-temporally connected record groups —
//     and summarizes each as an atypical micro-cluster holding a spatial
//     feature (severity per sensor) and temporal feature (severity per
//     window);
//   - integrates similar clusters into macro-clusters along hierarchical
//     aggregation paths (day → week → month), forming the atypical forest;
//   - answers analytical queries Q(W, T) for the significant clusters in a
//     spatial region and time period, using red-zone guided clustering to
//     prune trivial inputs without losing significant results.
//
// # Quick start
//
//	sys, err := atypical.NewSystem(atypical.DefaultConfig())
//	if err != nil { ... }
//	ds := sys.GenerateMonth(0)           // or ingest your own records
//	sys.Ingest(ds.Atypical)
//	res, err := sys.Run(ctx, atypical.QueryRequest{
//		Days:     7,                     // Q(whole city, days [0, 7))
//		Strategy: atypical.Guided,
//	})
//	if err != nil { ... }
//	for _, c := range res.Significant {
//		fmt.Println(sys.Describe(c))
//	}
//
// Run is the single query entry point: QueryRequest selects the spatial
// scope (whole city, a bounding box, or explicit regions), the time window,
// the strategy, and per-run flags (EXPLAIN collection, partial-result
// tolerance under sharding). The legacy Query{City,Box,At} method matrix
// survives as thin deprecated wrappers over Run.
//
// See the examples directory for complete programs.
package atypical

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"github.com/cpskit/atypical/internal/cluster"
	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/cube"
	"github.com/cpskit/atypical/internal/forest"
	"github.com/cpskit/atypical/internal/gen"
	"github.com/cpskit/atypical/internal/geo"
	"github.com/cpskit/atypical/internal/index"
	"github.com/cpskit/atypical/internal/obs"
	"github.com/cpskit/atypical/internal/obs/flight"
	"github.com/cpskit/atypical/internal/query"
	"github.com/cpskit/atypical/internal/report"
	"github.com/cpskit/atypical/internal/shard"
	"github.com/cpskit/atypical/internal/subscribe"
	"github.com/cpskit/atypical/internal/traffic"
)

// Config parameterizes a System. The zero value is not usable; start from
// DefaultConfig.
type Config struct {
	// Sensors approximates the deployment size. The paper's PeMS deployment
	// has 4,076 sensors; tests and demos run well at a few hundred.
	Sensors int
	// Seed drives every random choice (network layout, workload).
	Seed int64
	// DaysPerMonth is the length of generated datasets.
	DaysPerMonth int

	// DeltaD is the distance threshold δd (miles) of Definition 1.
	DeltaD float64
	// DeltaT is the time interval threshold δt of Definition 1.
	DeltaT time.Duration
	// DeltaS is the default relative severity threshold δs of Definition 5.
	DeltaS float64
	// SimThreshold is the integration similarity threshold δsim.
	SimThreshold float64
	// Balance names the g function: avg, max, min, geo or har.
	//
	// Deprecated: the stringly knob survives for flag parsing and old
	// callers; new code should pass the typed constants via WithBalance
	// (e.g. WithBalance(BalanceArithmetic)). An empty string means
	// BalanceArithmetic. Use ParseBalance to turn command-line values into
	// typed constants.
	Balance string
	// Workers bounds the goroutines used for parallel offline construction:
	// 0 keeps every path serial (byte-compatible with historical output),
	// n > 0 uses up to n goroutines, n < 0 one per CPU. Results do not
	// depend on the worker count; see WithWorkers. Query serving stays on
	// the serial path unless WithQueryWorkers opts in.
	Workers int
}

// Option customizes a System beyond the plain Config — the context-aware
// construction API of the concurrent pipeline.
type Option func(*systemOptions)

// systemOptions collects functional-option state before wiring.
type systemOptions struct {
	workers         int
	workersSet      bool
	queryWorkers    int
	queryWorkersSet bool
	balance         cluster.Balance
	balanceSet      bool
	registry        *obs.Registry
	exporter        obs.SpanExporter
	slos            []sloSpec
	shards          int
	shardURLs       []string
	shardClient     *http.Client
	queryCache      int
	maxSubs         int
	maxSubsSet      bool
	subBuffer       int
	querylog        flight.Config
	querylogSet     bool
}

// WithWorkers bounds the goroutines used for offline construction (per-day
// extraction, severity sharding, level integration). n > 0 means up to n
// goroutines, n < 0 one per CPU, 0 the serial legacy path. Every parallel
// path is deterministic: the produced forests, indexes and reports are
// identical for every n (the extraction and severity paths bit-identically
// match the serial path; integration uses the fixed merge tree of
// cluster.IntegrateParallel). Query serving is NOT affected — see
// WithQueryWorkers.
func WithWorkers(n int) Option {
	return func(o *systemOptions) { o.workers = n; o.workersSet = true }
}

// WithQueryWorkers opts online query serving into the parallel engine with
// n workers (semantics of n match WithWorkers). It is a separate, explicit
// opt-in rather than inherited from WithWorkers because it changes answers:
// parallel query integration uses the fixed merge tree of
// cluster.IntegrateParallel, whose macro-clusters are independent of the
// worker count and GOMAXPROCS but may differ from the serial engine's on
// order-sensitive similarity chains (both are valid integration fixpoints).
// Without this option queries always take the serial byte-compatible path,
// no matter what WithWorkers or Config.Workers say.
func WithQueryWorkers(n int) Option {
	return func(o *systemOptions) { o.queryWorkers = n; o.queryWorkersSet = true }
}

// WithQueryCache enables the canonical-keyed answer cache with room for
// `entries` finished queries (entries <= 0 leaves caching off). Cached
// answers are version-stamped against the forest's write-version counter,
// so every ingest invalidates them atomically; loading a different forest
// or rebuilding the severity index clears the cache outright. Answers
// served from the cache are byte-identical to a fresh run — partial
// (shard-degraded) answers are never stored — and cache traffic surfaces
// as atyp_query_cache_{hits,misses,evictions}_total when an Observer is
// attached, plus a "cache" stage in EXPLAIN records on hits.
func WithQueryCache(entries int) Option {
	return func(o *systemOptions) { o.queryCache = entries }
}

// DefaultMaxSubscribers caps concurrent standing-query subscriptions when
// WithSubscriptions is not used.
const DefaultMaxSubscribers = 1024

// WithSubscriptions overrides the standing-query subscriber cap (default
// DefaultMaxSubscribers): Subscribe beyond it fails with
// ErrTooManySubscribers. max <= 0 removes the cap. The cap protects the
// ingest path — every emitted micro-cluster is evaluated against every
// active subscription — not memory alone.
func WithSubscriptions(max int) Option {
	return func(o *systemOptions) { o.maxSubs = max; o.maxSubsSet = true }
}

// WithSubscriptionBuffer sets the per-subscriber push buffer capacity
// (default subscribe.DefaultBuffer). A subscriber that falls more than this
// many pushes behind starts dropping — explicitly, with
// atyp_sub_dropped_total accounting and a gap marker — rather than ever
// slowing ingest.
func WithSubscriptionBuffer(n int) Option {
	return func(o *systemOptions) { o.subBuffer = n }
}

// WithBalance selects the similarity balance function g by typed constant
// (BalanceArithmetic, BalanceMin, ...), taking precedence over the
// deprecated Config.Balance string.
func WithBalance(b Balance) Option {
	return func(o *systemOptions) { o.balance = b; o.balanceSet = true }
}

// DefaultConfig returns the paper's default parameters (Fig. 14) at a
// laptop-friendly deployment scale. DeltaS is scaled down from the paper's
// 5% because the significance bound δs·length(T)·N grows with deployment
// size N while relative event mass shrinks; 2% puts the bound at the same
// operating point on the ~500-sensor default deployment as 5% on the
// paper's 4,076 sensors (see EXPERIMENTS.md).
func DefaultConfig() Config {
	return Config{
		Sensors:      400,
		Seed:         42,
		DaysPerMonth: 30,
		DeltaD:       1.5,
		DeltaT:       15 * time.Minute,
		DeltaS:       0.02,
		SimThreshold: 0.5,
		// Balance is intentionally left empty — empty selects
		// BalanceArithmetic, the same g the old "avg" default named. The
		// deprecated string field is now only populated by flag parsing in
		// cmd/; typed selection goes through WithBalance.
	}
}

// System is the assembled pipeline: deployment topology, offline model
// construction (atypical forest + bottom-up severity index) and the online
// query engine.
//
// A System is safe for concurrent use: queries (QueryCity, QueryBox,
// QueryAt and their Ctx variants) may run alongside each other and alongside
// ingestion. Construction parallelism is off by default; opt in with
// WithWorkers or Config.Workers.
type System struct {
	cfg          Config
	net          *traffic.Network
	spec         cps.WindowSpec
	balance      cluster.Balance
	neighbors    [][]cps.SensorID
	maxGap       int
	workers      int
	queryWorkers int

	idgen cluster.IDGen
	gen   *gen.Generator

	// Observability wiring (nil when WithObserver/WithSpanExporter are not
	// used): the attached registry, the facade-level metric handles, and the
	// default span exporter armed onto entry-point contexts.
	registry *obs.Registry
	obs      *systemObs
	exporter obs.SpanExporter

	// Sharding wiring (nil when WithShards/WithShardServers are not used):
	// the deterministic shard map, the in-process per-shard forests fed by
	// ingest (local sharding only), and the scatter-gather coordinator the
	// engine queries through. See sharding.go.
	shardMap *shard.Map
	shardSet *shard.Set
	coord    *shard.Coordinator

	// cache is the optional canonical-keyed answer cache (WithQueryCache);
	// nil when caching is off. The pointer is fixed at construction — forest
	// swaps clear the cache and carry it into the rebuilt engine.
	cache *query.AnswerCache

	// qlog is the optional per-query flight recorder (WithQueryLog); nil
	// when recording is off. Run records one wide event per request into it.
	qlog *flight.Recorder

	// subs is the standing-query registry (subscribe.go). Always non-nil;
	// stream processors built by NewStreamProcessor fan emitted
	// micro-clusters into it before the caller's emit hook runs.
	subs *subscribe.Registry

	// mu guards the swappable model pointers (LoadForest replaces them) and
	// the severity staleness flag. The structures behind the pointers are
	// internally synchronized.
	mu       sync.RWMutex
	forest   *forest.Forest
	sev      *cube.SeverityIndex
	engine   *query.Engine
	sevStale bool
}

// NewSystem validates cfg, applies the options, generates the deployment
// topology and prepares an empty forest.
func NewSystem(cfg Config, options ...Option) (*System, error) {
	if cfg.Sensors <= 0 {
		return nil, fmt.Errorf("%w: Sensors must be positive, got %d", ErrInvalidConfig, cfg.Sensors)
	}
	if cfg.DeltaD <= 0 || cfg.DeltaT <= 0 {
		return nil, fmt.Errorf("%w: DeltaD and DeltaT must be positive", ErrInvalidConfig)
	}
	if cfg.SimThreshold <= 0 || cfg.SimThreshold > 1 {
		return nil, fmt.Errorf("%w: SimThreshold must be in (0, 1], got %v", ErrInvalidConfig, cfg.SimThreshold)
	}
	if cfg.DaysPerMonth <= 0 {
		return nil, fmt.Errorf("%w: DaysPerMonth must be positive, got %d", ErrInvalidConfig, cfg.DaysPerMonth)
	}
	var o systemOptions
	for _, opt := range options {
		opt(&o)
	}
	bal := cluster.Arithmetic
	switch {
	case o.balanceSet:
		bal = o.balance
	case cfg.Balance != "":
		var err error
		if bal, err = cluster.ParseBalance(cfg.Balance); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrInvalidConfig, err)
		}
	}
	workers := cfg.Workers
	if o.workersSet {
		workers = o.workers
	}
	queryWorkers := 0
	if o.queryWorkersSet {
		queryWorkers = o.queryWorkers
	}
	netCfg := traffic.ScaledConfig(cfg.Sensors)
	netCfg.Seed = cfg.Seed
	net := traffic.GenerateNetwork(netCfg)
	spec := cps.DefaultSpec()

	locs := make([]geo.Point, net.NumSensors())
	for i, s := range net.Sensors {
		locs[i] = s.Loc
	}
	s := &System{
		cfg:          cfg,
		net:          net,
		spec:         spec,
		balance:      bal,
		neighbors:    index.NewNeighborIndex(locs, cfg.DeltaD).NeighborLists(),
		maxGap:       cluster.MaxWindowGap(cfg.DeltaT, spec.Width),
		workers:      workers,
		queryWorkers: queryWorkers,
	}
	opts := cluster.IntegrateOptions{
		SimThreshold: cfg.SimThreshold,
		Balance:      bal,
		// Temporal features compare by time of day (Fig. 5), letting the
		// recurring daily events of a corridor integrate across days.
		Period: cps.Window(spec.PerDay()),
	}
	s.forest = forest.New(spec, &s.idgen, opts, cfg.DaysPerMonth)
	s.forest.SetWorkers(workers)
	s.sev = cube.NewSeverityIndex(net, spec)

	// Observability: nil registry/exporter keep every hook a no-op.
	s.registry = o.registry
	s.exporter = o.exporter
	s.obs = newSystemObs(o.registry)
	s.forest.SetObserver(o.registry)
	s.cache = query.NewAnswerCache(o.queryCache)
	s.cache.BindMetrics(o.registry)
	if o.querylogSet {
		s.qlog = flight.NewRecorder(o.querylog)
	}
	s.engine = &query.Engine{
		Net: net, Forest: s.forest, Severity: s.sev, Gen: &s.idgen,
		Workers: queryWorkers, Obs: query.NewMetrics(o.registry), Cache: s.cache,
	}
	for _, slo := range o.slos {
		s.engine.Obs.SetSLO(slo.strat, slo.target)
	}
	if err := s.wireShards(&o, opts); err != nil {
		return nil, err
	}

	maxSubs := DefaultMaxSubscribers
	if o.maxSubsSet {
		maxSubs = o.maxSubs
	}
	subsReg, serr := subscribe.NewRegistry(subscribe.Config{
		Net: net, Spec: spec, Options: opts,
		MaxSubscribers: maxSubs, Buffer: o.subBuffer,
	})
	if serr != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidConfig, serr)
	}
	subsReg.SetObserver(o.registry)
	s.subs = subsReg

	gcfg := gen.DefaultConfig(net)
	gcfg.Seed = cfg.Seed
	gcfg.DaysPerMonth = cfg.DaysPerMonth
	var err error
	s.gen, err = gen.New(gcfg)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidConfig, err)
	}
	return s, nil
}

// armSpans attaches the system's configured span exporter to ctx unless the
// caller already armed one of their own.
func (s *System) armSpans(ctx context.Context) context.Context {
	if s.exporter == nil || obs.HasExporter(ctx) {
		return ctx
	}
	return obs.WithExporter(ctx, s.exporter)
}

// Network returns the deployment topology.
func (s *System) Network() *traffic.Network { return s.net }

// Spec returns the time window spec.
func (s *System) Spec() cps.WindowSpec { return s.spec }

// Forest returns the atypical forest built so far.
func (s *System) Forest() *forest.Forest {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.forest
}

// QueryCacheStats returns the lifetime hit/miss/eviction counts of the
// answer cache enabled by WithQueryCache; all zeros when caching is off.
func (s *System) QueryCacheStats() (hits, misses, evictions uint64) {
	return s.cache.Stats()
}

// GenerateMonth synthesizes dataset m (0-based) for this deployment — the
// stand-in for the paper's monthly PeMS datasets.
func (s *System) GenerateMonth(m int) *gen.Dataset { return s.gen.Month(m) }

// Ingest runs offline model construction over an atypical record set:
// Algorithm 1 per day (events → micro-clusters into the forest) plus the
// bottom-up severity index used for red zones. With Workers configured, the
// per-day work fans out across the pool; the resulting forest and index are
// byte-identical to a serial ingest regardless of worker count or
// GOMAXPROCS.
func (s *System) Ingest(rs *cps.RecordSet) {
	// A background context cannot cancel, so the error path is unreachable
	// in practice; anything that does surface is recorded in the API error
	// metrics by IngestCtx rather than panicking.
	_ = s.IngestCtx(context.Background(), rs)
}

// IngestCtx is Ingest with cooperative cancellation. On cancellation no day
// is partially ingested, but days already handed to the forest stay: callers
// abandoning an ingest mid-way should rebuild from scratch.
func (s *System) IngestCtx(ctx context.Context, rs *cps.RecordSet) error {
	ctx, sp := obs.Start(s.armSpans(ctx), "ingest")
	err := s.ingestCtx(ctx, rs)
	sp.End()
	if err != nil {
		s.obs.ingestError()
	}
	return err
}

// ingestCtx is the shared ingest body behind Ingest/IngestCtx.
func (s *System) ingestCtx(ctx context.Context, rs *cps.RecordSet) error {
	s.mu.RLock()
	fst, sev, workers := s.forest, s.sev, s.workers
	s.mu.RUnlock()

	byDay := rs.SplitByDay(s.spec)
	days := make([]cluster.DayRecords, 0, len(byDay))
	cps.ForEachDay(byDay, func(day int, recs []cps.Record) {
		days = append(days, cluster.DayRecords{Day: day, Records: recs})
	})

	ctxEx, spEx := obs.Start(ctx, "ingest.extract")
	t := s.obs.now()
	perDay, err := cluster.ExtractMicroClustersDays(ctxEx, &s.idgen, days, s.neighbors, s.maxGap, workers)
	spEx.End()
	if err != nil {
		return err
	}
	s.obs.extractDone(t)

	_, spApp := obs.Start(ctx, "ingest.append")
	t = s.obs.now()
	micros := 0
	slices := make([][]cps.Record, len(days))
	for i, d := range days {
		fst.AppendDay(d.Day, perDay[i])
		if s.shardSet != nil {
			// Local sharding: route the day's micro-clusters (in canonical
			// extraction order) to their home shards as well. The shard
			// forests share the cluster values with the global forest.
			s.shardSet.AppendDay(d.Day, perDay[i])
		}
		micros += len(perDay[i])
		slices[i] = d.Records
	}
	spApp.End()
	s.obs.appendDone(t)

	ctxSev, spSev := obs.Start(ctx, "ingest.severity")
	t = s.obs.now()
	err = sev.AddDays(ctxSev, slices, workers)
	spSev.End()
	if err != nil {
		return err
	}
	s.obs.severityDone(t)
	s.obs.ingested(int64(rs.Len()), int64(len(days)), int64(micros))
	return nil
}

// IngestMonths generates and ingests months [0, n), returning the generated
// datasets (with ground truth) for inspection. It is the legacy wrapper over
// IngestMonthsCtx; a background context cannot cancel, so the slice always
// covers all n months.
func (s *System) IngestMonths(n int) []*gen.Dataset {
	out, _ := s.IngestMonthsCtx(context.Background(), n)
	return out
}

// IngestMonthsCtx is IngestMonths with cooperative cancellation, returning
// the datasets ingested before the context fired.
func (s *System) IngestMonthsCtx(ctx context.Context, n int) ([]*gen.Dataset, error) {
	out := make([]*gen.Dataset, 0, n)
	for m := 0; m < n; m++ {
		ds := s.GenerateMonth(m)
		if err := s.IngestCtx(ctx, ds.Atypical); err != nil {
			return out, err
		}
		out = append(out, ds)
	}
	return out, nil
}

// Strategy selects the online clustering strategy.
type Strategy = query.Strategy

// Online strategies: IntegrateAll is exact and slow, Pruned is fast but
// lossy, Guided is the paper's red-zone guided clustering.
const (
	IntegrateAll = query.All
	Pruned       = query.Pru
	Guided       = query.Gui
)

// Report is the outcome of an analytical query.
type Report = query.Result

// The legacy query method matrix. Every method below is a thin wrapper over
// Run — same engine, same bytes (the wrapper byte-identity tests enforce
// it) — kept so existing callers keep compiling. Wrappers tolerate partial
// sharded answers the way Run does with AllowPartial set: the Report's
// Partial flag carries the degradation, there is no error path for it here.

// QueryCity runs Q(whole city, [firstDay, firstDay+days)) at the configured
// δs under the given strategy.
//
// Deprecated: use Run with a QueryRequest ({FirstDay, Days, Strategy}).
func (s *System) QueryCity(firstDay, days int, strat Strategy) *Report {
	return legacyReport(s.QueryCityCtx(context.Background(), firstDay, days, strat))
}

// QueryCityCtx is QueryCity with cooperative cancellation.
//
// Deprecated: use Run with a QueryRequest ({FirstDay, Days, Strategy}).
func (s *System) QueryCityCtx(ctx context.Context, firstDay, days int, strat Strategy) (*Report, error) {
	return s.runReport(ctx, QueryRequest{FirstDay: firstDay, Days: days, Strategy: strat})
}

// QueryBox restricts the spatial range to the regions intersecting box.
//
// Deprecated: use Run with a QueryRequest ({Box, FirstDay, Days, Strategy}).
func (s *System) QueryBox(box geo.BBox, firstDay, days int, strat Strategy) *Report {
	return legacyReport(s.QueryBoxCtx(context.Background(), box, firstDay, days, strat))
}

// QueryBoxCtx is QueryBox with cooperative cancellation.
//
// Deprecated: use Run with a QueryRequest ({Box, FirstDay, Days, Strategy}).
func (s *System) QueryBoxCtx(ctx context.Context, box geo.BBox, firstDay, days int, strat Strategy) (*Report, error) {
	return s.runReport(ctx, QueryRequest{Box: &box, FirstDay: firstDay, Days: days, Strategy: strat})
}

// QueryAt runs an explicit query (custom δs or region set).
//
// Deprecated: use Run with a QueryRequest ({Regions, Window, DeltaS,
// Strategy}).
func (s *System) QueryAt(q query.Query, strat Strategy) *Report {
	return legacyReport(s.QueryAtCtx(context.Background(), q, strat))
}

// QueryAtCtx runs an explicit query with cooperative cancellation.
//
// Deprecated: use Run with a QueryRequest ({Regions, Window, DeltaS,
// Strategy}).
func (s *System) QueryAtCtx(ctx context.Context, q query.Query, strat Strategy) (*Report, error) {
	return s.runReport(ctx, requestFromQuery(q, strat))
}

// QueryCityExplainCtx is QueryCityCtx with EXPLAIN: alongside the report it
// returns the structured Explain record of the run.
//
// Deprecated: use Run with QueryRequest.Explain set; RunResult carries the
// record.
func (s *System) QueryCityExplainCtx(ctx context.Context, firstDay, days int, strat Strategy) (*Report, *Explain, error) {
	return s.runExplain(ctx, QueryRequest{FirstDay: firstDay, Days: days, Strategy: strat})
}

// QueryBoxExplainCtx is QueryBoxCtx with EXPLAIN.
//
// Deprecated: use Run with QueryRequest.Explain set; RunResult carries the
// record.
func (s *System) QueryBoxExplainCtx(ctx context.Context, box geo.BBox, firstDay, days int, strat Strategy) (*Report, *Explain, error) {
	return s.runExplain(ctx, QueryRequest{Box: &box, FirstDay: firstDay, Days: days, Strategy: strat})
}

// QueryAtExplainCtx runs an explicit query collecting an Explain record.
// The report is exactly what QueryAtCtx would have returned — EXPLAIN
// observes the run, it never changes it (the determinism tests enforce
// this). The record is only valid after a nil error.
//
// Deprecated: use Run with QueryRequest.Explain set; RunResult carries the
// record.
func (s *System) QueryAtExplainCtx(ctx context.Context, q query.Query, strat Strategy) (*Report, *Explain, error) {
	return s.runExplain(ctx, requestFromQuery(q, strat))
}

// runReport adapts Run to the legacy (*Report, error) wrapper shape.
func (s *System) runReport(ctx context.Context, req QueryRequest) (*Report, error) {
	req.AllowPartial = true // legacy surface: degradation rides the Partial flag
	res, err := s.Run(ctx, req)
	if err != nil {
		return nil, err
	}
	return res.Report, nil
}

// runExplain adapts Run to the legacy (*Report, *Explain, error) shape.
func (s *System) runExplain(ctx context.Context, req QueryRequest) (*Report, *Explain, error) {
	req.AllowPartial = true
	req.Explain = true
	res, err := s.Run(ctx, req)
	if err != nil {
		return nil, nil, err
	}
	return res.Report, res.Explain, nil
}

// legacyReport adapts a Ctx-variant result for the entry points that predate
// error returns: on error — already recorded in the API error metrics by
// QueryAtCtx — it returns an empty report, keeping the legacy contract of
// "always a usable *Report". Callers who need to distinguish an empty answer
// from a refused query (e.g. ErrSeverityStale after LoadForest) should use
// the Ctx variants.
func legacyReport(r *Report, err error) *Report {
	if err != nil {
		return &Report{}
	}
	return r
}

// Describe renders a cluster as the answer to Example 1's questions: where
// the event is, when it starts, and which road segment / time window is most
// serious.
func (s *System) Describe(c *cluster.Cluster) string {
	return report.Describe(s.net, s.spec, c)
}

// Ranking renders clusters as a ranked table, most severe first.
func (s *System) Ranking(clusters []*cluster.Cluster) string {
	return report.Ranking(s.net, s.spec, clusters)
}
