package atypical

import (
	"context"
	"fmt"
	"net/http"

	"github.com/cpskit/atypical/internal/cluster"
	"github.com/cpskit/atypical/internal/shard"
)

// Sharding. A System normally answers queries from its single in-process
// forest. WithShards and WithShardServers partition the candidates stage
// across shards instead: a deterministic district-granular shard map over
// the region grid assigns every micro-cluster a home shard, each shard
// answers "my candidates in range touching W", and the coordinator restores
// the canonical candidate order before the unchanged strategy pipeline runs
// once at the coordinator. Answers are byte-identical to the unsharded ones
// — see DESIGN.md "Sharding & scatter-gather" for the argument.

// ShardQueryPath is the URL path shard servers mount their ShardHandler at
// and WithShardServers coordinators POST to.
const ShardQueryPath = shard.QueryPath

// WithShards partitions query serving across n in-process shards: ingest
// routes every micro-cluster to a per-shard forest by home region, and
// queries scatter-gather across the shard forests. The global forest keeps
// its full copy (Save, materialized queries, and BypassShards runs read it),
// sharing cluster values with the shards.
func WithShards(n int) Option {
	return func(o *systemOptions) { o.shards = n }
}

// WithShardServers routes query serving to remote shard processes, one URL
// per shard (e.g. "http://host:9001"), each serving shard.QueryPath behind
// its hardened serve path — an atypserve started with -shardserve k/n over
// the same Config. The local System still ingests everything (the identical
// deterministic stream keeps cluster IDs aligned across processes, and Gui's
// red zones plus the integration stages run at the coordinator); remote
// shards answer only the candidates stage. A shard lost after one retry
// makes the answer explicitly partial — see QueryRequest.AllowPartial and
// the atyp_shard_failures_total metric.
func WithShardServers(urls ...string) Option {
	return func(o *systemOptions) { o.shardURLs = append([]string(nil), urls...) }
}

// WithShardClient overrides the HTTP client used by WithShardServers
// backends (timeouts, transports; tests).
func WithShardClient(c *http.Client) Option {
	return func(o *systemOptions) { o.shardClient = c }
}

// wireShards applies the shard options during NewSystem: builds the shard
// map, the local shard set or HTTP backends, the coordinator, and hooks it
// into the engine.
func (s *System) wireShards(o *systemOptions, opts cluster.IntegrateOptions) error {
	if o.shards == 0 && len(o.shardURLs) == 0 {
		return nil
	}
	if o.shards != 0 && len(o.shardURLs) > 0 {
		return fmt.Errorf("%w: WithShards and WithShardServers are mutually exclusive", ErrInvalidConfig)
	}
	n := o.shards
	if n == 0 {
		n = len(o.shardURLs)
	}
	if n < 1 {
		return fmt.Errorf("%w: shard count must be at least 1, got %d", ErrInvalidConfig, n)
	}
	m, err := shard.NewMap(s.net.Grid, n)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidConfig, err)
	}
	s.shardMap = m
	var backends []shard.Backend
	if o.shards != 0 {
		s.shardSet = shard.NewSet(m, s.net, s.spec, &s.idgen, opts, s.cfg.DaysPerMonth)
		backends = s.shardSet.Backends()
	} else {
		for i, u := range o.shardURLs {
			backends = append(backends, shard.NewHTTP(fmt.Sprintf("shard%d", i), u, o.shardClient))
		}
	}
	s.coord = shard.NewCoordinator(backends, o.registry)
	s.engine.Scatterer = s.coord
	return nil
}

// ShardStatus is one shard's readiness report, as surfaced by ShardsReady
// and atypserve's /readyz.
type ShardStatus struct {
	// Shard is the shard's stable name (shard0..shardN-1).
	Shard string
	// Err is nil when the shard is ready to answer.
	Err error
}

// ShardsReady probes every shard's readiness concurrently. It returns nil
// when the system is not sharded.
func (s *System) ShardsReady(ctx context.Context) []ShardStatus {
	if s == nil || s.coord == nil {
		return nil
	}
	sts := s.coord.Ready(s.armSpans(ctx))
	out := make([]ShardStatus, len(sts))
	for i, st := range sts {
		out[i] = ShardStatus{Shard: st.Shard, Err: st.Err}
	}
	return out
}

// NumShards reports the configured shard fan-out (0 when unsharded).
func (s *System) NumShards() int {
	if s == nil || s.coord == nil {
		return 0
	}
	return s.coord.NumShards()
}

// ShardHandler returns the HTTP handler a shard server mounts at
// shard.QueryPath to serve shard k of n: a home-filtered view over this
// system's forest speaking the exact wire codec. The serving system must be
// built from the same Config as the coordinator (same deployment, same
// deterministic ingest) so cluster IDs line up; it follows LoadForest swaps
// automatically.
func (s *System) ShardHandler(k, n int) (http.Handler, error) {
	if k < 0 || n < 1 || k >= n {
		return nil, fmt.Errorf("%w: shard index %d of %d", ErrInvalidConfig, k, n)
	}
	m, err := shard.NewMap(s.net.Grid, n)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidConfig, err)
	}
	b := shard.NewLocalView(fmt.Sprintf("shard%d", k), s.net, s.Forest, m, k)
	return shard.NewHandler(b), nil
}
