package atypical

import (
	"fmt"

	"github.com/cpskit/atypical/internal/subscribe"
)

// This file exposes the standing-query (CEP) layer through the facade:
// long-lived subscriptions evaluated incrementally as stream processors close
// micro-clusters, pushing the moment a macro-cluster's significance changes
// instead of waiting for a batch Run. See internal/subscribe for the
// incremental evaluator and its batch-equivalence argument, and DESIGN.md §3f
// for the architecture.

// Subscription is one registered standing query. Pushes arrive on Pushes();
// Done() signals teardown after Unsubscribe.
type Subscription = subscribe.Subscription

// Push is one standing-query notification: a component's complete current
// significant set (empty means retraction), with merge bookkeeping
// (Absorbed) and the explicit backpressure gap marker.
type Push = subscribe.Push

// PushReplay folds a push sequence back into the standing query's current
// answer; after a stream flush, a gap-free replay equals the batch Run
// answer for the same request.
type PushReplay = subscribe.Replay

// NewPushReplay returns an empty replay state.
func NewPushReplay() *PushReplay { return subscribe.NewReplay() }

// Subscribe registers req as a standing query over this system's live
// streams: every processor built by NewStreamProcessor feeds its emitted
// micro-clusters to the subscription's incremental evaluator, and a Push
// lands in the subscription's buffer whenever the request's significant set
// changes. The request is resolved exactly like Run resolves it (scope
// expansion, δs defaulting), so for any finite canonical stream the pushed
// events equal what Run reports after Flush + IngestClusters — the
// equivalence the property tests and FuzzStandingQueryEquivalence enforce.
//
// Strategies: IntegrateAll and Pruned. Guided is rejected (wrapping
// ErrInvalidRequest): its red zones track the mutable severity index, which
// incremental pushes cannot replay consistently. Exceeding the subscriber
// cap (WithSubscriptions) fails with ErrTooManySubscribers.
//
// Slow consumers never block ingest: a full push buffer
// (WithSubscriptionBuffer) drops the push, counts it in
// atyp_sub_dropped_total and Subscription.Dropped, and marks the next
// delivered push with Gap — the consumer's cue to resync via Run.
func (s *System) Subscribe(req QueryRequest) (*Subscription, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	if req.Strategy == Guided {
		return nil, fmt.Errorf("%w: Guided standing queries are not supported (red zones track the mutable severity index)", ErrInvalidRequest)
	}
	return s.subs.Register(s.buildQuery(req), req.Strategy)
}

// Unsubscribe removes a standing query, reporting whether the id was active.
// The subscription's Done channel closes; buffered pushes stay readable.
func (s *System) Unsubscribe(id uint64) bool { return s.subs.Unregister(id) }

// ActiveSubscriptions returns the number of registered standing queries.
func (s *System) ActiveSubscriptions() int { return s.subs.Active() }
