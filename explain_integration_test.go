package atypical

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http/httptest"
	"testing"
	"time"
)

// TestQueryExplainFacade exercises the EXPLAIN surface end to end through
// the facade: the record is collected, canonical JSON is deterministic
// across identical queries, and the report itself is exactly what the
// explain-free entry point returns.
func TestQueryExplainFacade(t *testing.T) {
	sys := buildSystem(t)
	plain := mustRun(t, sys, QueryRequest{Days: 7, Strategy: Guided})
	var payloads [][]byte
	for run := 0; run < 2; run++ {
		res, err := sys.Run(context.Background(), QueryRequest{Days: 7, Strategy: Guided, Explain: true})
		if err != nil {
			t.Fatal(err)
		}
		rep, exp := res.Report, res.Explain
		if exp == nil {
			t.Fatal("explain record missing")
		}
		if exp.Strategy != "Gui" {
			t.Errorf("explain strategy = %q", exp.Strategy)
		}
		if rep.CandidateMicros != plain.CandidateMicros || rep.InputMicros != plain.InputMicros ||
			rep.RedZones != plain.RedZones || len(rep.Macros) != len(plain.Macros) ||
			len(rep.Significant) != len(plain.Significant) {
			t.Errorf("explained report shape diverged: %+v vs %+v", rep, plain)
		}
		data, err := exp.Canonical().JSON()
		if err != nil {
			t.Fatal(err)
		}
		payloads = append(payloads, data)
	}
	if !bytes.Equal(payloads[0], payloads[1]) {
		t.Errorf("canonical Explain differs across identical facade queries:\n%s\nvs\n%s",
			payloads[0], payloads[1])
	}
}

// TestQuerySLOOption wires an impossible latency objective and checks the
// burn-rate gauge reports the budget overrun on /metrics-visible series.
func TestQuerySLOOption(t *testing.T) {
	reg := NewObserver()
	sys := buildSystem(t, WithObserver(reg),
		WithQuerySLO(Guided, SLOTarget{Latency: time.Nanosecond, Objective: 0.99}))
	if rep := mustRun(t, sys, QueryRequest{Days: 7, Strategy: Guided}); len(rep.Macros) == 0 {
		t.Fatal("query returned nothing; SLO assertions would be vacuous")
	}
	snap := sys.Metrics()
	if v, ok := snap.Value("atyp_slo_breaches_total", "strategy", "gui"); !ok || v < 1 {
		t.Errorf("breaches = %v (present=%v), want >= 1", v, ok)
	}
	// Every query breached a 1ns target: burn rate = 1/(1-0.99) = 100.
	if v, ok := snap.Value("atyp_slo_burn_rate", "strategy", "gui"); !ok || v < 99 {
		t.Errorf("burn rate = %v (present=%v), want ~100", v, ok)
	}
	if _, ok := snap.Value("atyp_slo_burn_rate", "strategy", "all"); ok {
		t.Error("unconfigured strategy gained SLO series")
	}
}

// TestTraceRingFacade attaches a TraceRing as the span exporter and reads
// the assembled traces back through /debug/traces.
func TestTraceRingFacade(t *testing.T) {
	ring := NewTraceRing(16)
	sys := buildSystem(t, WithSpanExporter(ring.Export))
	if _, err := sys.Run(context.Background(), QueryRequest{Days: 7}); err != nil {
		t.Fatal(err)
	}
	traces := ring.Snapshot()
	if len(traces) == 0 {
		t.Fatal("ring captured no traces")
	}
	var query *Trace
	for i := range traces {
		if traces[i].Root.Name == "query.run" {
			query = &traces[i]
		}
	}
	if query == nil {
		t.Fatalf("no query.run root among %d traces", len(traces))
	}
	foundChild := false
	for _, c := range query.Children {
		if c.Name == "query.integrate" {
			foundChild = true
			if c.TraceID != query.Root.TraceID {
				t.Errorf("child trace ID %d != root %d", c.TraceID, query.Root.TraceID)
			}
		}
	}
	if !foundChild {
		t.Errorf("query.integrate child missing from trace: %+v", query.Children)
	}

	srv := httptest.NewServer(NewDebugMux(sys.Observer(), ring))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(body, &decoded); err != nil {
		t.Fatalf("invalid /debug/traces JSON: %v\n%s", err, body)
	}
	if len(decoded) == 0 {
		t.Error("/debug/traces empty")
	}
}
