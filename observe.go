package atypical

import (
	"context"
	"net/http"
	"time"

	"github.com/cpskit/atypical/internal/obs"
	"github.com/cpskit/atypical/internal/obs/flight"
	"github.com/cpskit/atypical/internal/query"
)

// sloSpec is one WithQuerySLO request, applied after the engine's metrics
// are wired in NewSystem.
type sloSpec struct {
	strat  Strategy
	target SLOTarget
}

// This file surfaces the internal/obs observability layer through the
// facade. Attach a registry with WithObserver to have every pipeline stage
// record metrics into it; attach a SpanExporter with WithSpanExporter to
// receive timed spans for ingests and queries. Both are strictly
// result-neutral: with neither configured every hook is a nil-check no-op,
// and with them configured the answers are byte-identical (the byte-identity
// tests run with an observer attached).

// Observer is a metrics registry: counters, gauges and fixed-bucket
// histograms behind lock-free atomic handles. Share one Observer across
// systems to aggregate, or give each its own.
type Observer = obs.Registry

// NewObserver returns an empty metrics registry.
func NewObserver() *Observer { return obs.NewRegistry() }

// Snapshot is a point-in-time, deterministically ordered copy of every
// series in an Observer.
type Snapshot = obs.Snapshot

// Sample is one series in a Snapshot.
type Sample = obs.Sample

// HistogramSnapshot is a histogram's bucket counts, total and sum.
type HistogramSnapshot = obs.HistogramSnapshot

// Span is one timed region of a pipeline run, delivered to the configured
// SpanExporter when it ends.
type Span = obs.Span

// SpanExporter receives each completed span; it must be safe for concurrent
// calls.
type SpanExporter = obs.SpanExporter

// WithObserver attaches a metrics registry to the system: ingest stages,
// query strategies, the forest's memoization and storage I/O, and API
// errors all record into r. A nil r leaves observability off (the default).
func WithObserver(r *Observer) Option {
	return func(o *systemOptions) { o.registry = r }
}

// WithSpanExporter attaches a span exporter: every Ingest/Query entry point
// runs under a root span with stage child spans ("ingest.extract",
// "query.integrate", ...). Ctx variants inherit any exporter already armed
// on the caller's context in preference to this one.
func WithSpanExporter(exp SpanExporter) Option {
	return func(o *systemOptions) { o.exporter = exp }
}

// WithSpanContext arms ctx with exp for the Ctx entry points: spans of calls
// made with this context go to exp, taking precedence over any system-level
// WithSpanExporter. Use it to trace a single request.
func WithSpanContext(ctx context.Context, exp SpanExporter) context.Context {
	return obs.WithExporter(ctx, exp)
}

// NewDebugMux returns an http.ServeMux serving r at /metrics (Prometheus
// text format) and the net/http/pprof suite under /debug/pprof/. Passing a
// TraceRing additionally mounts /debug/traces serving its newest-first
// span snapshot as JSON. Mount it on an operational listener; cmd/atypserve
// does exactly this.
func NewDebugMux(r *Observer, rings ...*TraceRing) *http.ServeMux {
	return obs.NewDebugMux(r, rings...)
}

// RegisterRuntimeMetrics registers Go runtime vitals on r — goroutine and
// heap gauges, GC cycle count and pause histogram, and the
// atyp_build_info{go_version,vcs_revision} join gauge — refreshed at each
// scrape via the registry's collect hook. Nil-safe.
func RegisterRuntimeMetrics(r *Observer) { obs.RegisterRuntimeMetrics(r) }

// TraceRing is a fixed-size lock-free buffer of the most recent finished
// root spans with their children — the storage behind /debug/traces. A ring
// is a SpanExporter: attach it with WithSpanExporter or WithSpanContext.
type TraceRing = obs.TraceRing

// Trace is one assembled root span with its child spans.
type Trace = obs.Trace

// NewTraceRing returns a ring retaining the last n finished traces.
func NewTraceRing(n int) *TraceRing { return obs.NewTraceRing(n) }

// Explain is the structured EXPLAIN record of one query run: strategy,
// significance bound arithmetic, per-stage timings and cardinalities,
// pruning and red-zone accounting, the forest memo path, the integration
// merge-tree shape, and per-macro significance verdicts.
type Explain = query.Explain

// SLOTarget is a per-strategy latency objective; see WithQuerySLO.
type SLOTarget = query.SLOTarget

// WithQuerySLO installs a latency service-level objective for one query
// strategy: at least target.Objective of runs should finish within
// target.Latency. The attached Observer (WithObserver is required for this
// option to have any effect) gains atyp_slo_breaches_total and the
// atyp_slo_burn_rate gauge — breach fraction over the error budget
// 1-objective, where a value above 1 means the objective is being missed.
func WithQuerySLO(strat Strategy, target SLOTarget) Option {
	return func(o *systemOptions) {
		o.slos = append(o.slos, sloSpec{strat: strat, target: target})
	}
}

// StartSpan opens a span named name when ctx carries a span exporter
// (WithSpanContext), as the child of the context's current span — or, with
// no local parent, of a remote parent extracted from a traceparent header.
// Without an exporter it returns ctx and a nil no-op span.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return obs.Start(ctx, name)
}

// SpanFromContext returns the span ctx is currently inside, or nil.
func SpanFromContext(ctx context.Context) *Span { return obs.SpanFromContext(ctx) }

// InjectTraceparent writes the context's current span onto h as a W3C
// traceparent header for an outbound hop; no-op when ctx carries no span.
func InjectTraceparent(ctx context.Context, h http.Header) { obs.InjectTraceparent(ctx, h) }

// ExtractTraceparent reads a traceparent header from h into the returned
// context: the next span started below it with no local parent continues
// the remote trace (and is published as a local root by trace rings).
// Returns ctx unchanged when the header is absent or malformed.
func ExtractTraceparent(ctx context.Context, h http.Header) context.Context {
	return obs.ExtractTraceparent(ctx, h)
}

// QueryLogEvent is one wide event of the per-query flight recorder: the
// full story of a single Run (or subscription stream) — trace ID, canonical
// query key, strategy, cache verdict, per-shard fan-out timings, EXPLAIN
// stage timings, and the SLO verdict — in one denormalized record.
type QueryLogEvent = flight.Event

// QueryLogConfig sizes and tunes the flight recorder; see WithQueryLog.
type QueryLogConfig = flight.Config

// WithQueryLog arms the per-query flight recorder: every Run records one
// QueryLogEvent into a bounded ring of cfg.Entries events. Normal events are
// head-sampled (cfg.SampleEvery keeps 1 of every N; <= 1 keeps all), while
// slow (>= cfg.Slow), errored, and partial events are always kept — the
// outliers are the events the recorder exists for. Recording is strictly
// answer-neutral: reports are byte-identical with the recorder on or off.
func WithQueryLog(cfg QueryLogConfig) Option {
	return func(o *systemOptions) { o.querylog = cfg; o.querylogSet = true }
}

// QueryLog returns the recorded flight events, newest first; nil when
// WithQueryLog is not configured.
func (s *System) QueryLog() []QueryLogEvent { return s.qlog.Snapshot() }

// QueryLogHandler serves the flight recorder as JSON (or plain text with
// ?format=text), newest first — the /debug/querylog surface. Returns nil
// when WithQueryLog is not configured.
func (s *System) QueryLogHandler() http.Handler {
	if s.qlog == nil {
		return nil
	}
	return s.qlog.Handler()
}

// RecordQueryLog records an externally assembled event — e.g. a subscription
// stream teardown summary — into the flight recorder. No-op when
// WithQueryLog is not configured or ev is nil.
func (s *System) RecordQueryLog(ev *QueryLogEvent) { s.qlog.Record(ev) }

// Observer returns the registry attached via WithObserver, or nil.
func (s *System) Observer() *Observer { return s.registry }

// Metrics returns a point-in-time snapshot of the attached Observer; an
// empty snapshot when none is attached.
func (s *System) Metrics() Snapshot { return s.registry.Snapshot() }

// systemObs bundles the facade-level metric handles: ingest volume and
// stage timings, plus API-error counters. The nil *systemObs disables all
// of them.
type systemObs struct {
	ingestRecords *obs.Counter
	ingestDays    *obs.Counter
	ingestMicros  *obs.Counter
	stageExtract  *obs.Histogram
	stageAppend   *obs.Histogram
	stageSeverity *obs.Histogram
	ingestErrors  *obs.Counter
	queryErrors   *obs.Counter
}

// newSystemObs registers the facade metric families; nil in, nil out.
func newSystemObs(r *obs.Registry) *systemObs {
	if r == nil {
		return nil
	}
	return &systemObs{
		ingestRecords: r.Counter("atyp_ingest_records_total",
			"atypical records consumed by Ingest"),
		ingestDays: r.Counter("atyp_ingest_days_total",
			"days of data handed to the forest"),
		ingestMicros: r.Counter("atyp_ingest_micros_total",
			"micro-clusters extracted during ingest"),
		stageExtract: r.Histogram("atyp_ingest_stage_seconds",
			"wall-clock seconds per ingest stage", nil, "stage", "extract"),
		stageAppend: r.Histogram("atyp_ingest_stage_seconds",
			"wall-clock seconds per ingest stage", nil, "stage", "append"),
		stageSeverity: r.Histogram("atyp_ingest_stage_seconds",
			"wall-clock seconds per ingest stage", nil, "stage", "severity"),
		ingestErrors: r.Counter("atyp_api_errors_total",
			"errors returned by facade entry points", "op", "ingest"),
		queryErrors: r.Counter("atyp_api_errors_total",
			"errors returned by facade entry points", "op", "query"),
	}
}

// now returns the wall clock when stage timings are armed, the zero time
// otherwise — keeping the disabled path clock-free.
func (m *systemObs) now() time.Time {
	if m == nil {
		return time.Time{}
	}
	return time.Now()
}

func (m *systemObs) extractDone(start time.Time) {
	if m != nil {
		m.stageExtract.ObserveSince(start)
	}
}

func (m *systemObs) appendDone(start time.Time) {
	if m != nil {
		m.stageAppend.ObserveSince(start)
	}
}

func (m *systemObs) severityDone(start time.Time) {
	if m != nil {
		m.stageSeverity.ObserveSince(start)
	}
}

// ingested records one completed ingest's volume.
func (m *systemObs) ingested(records, days, micros int64) {
	if m != nil {
		m.ingestRecords.Add(records)
		m.ingestDays.Add(days)
		m.ingestMicros.Add(micros)
	}
}

func (m *systemObs) ingestError() {
	if m != nil {
		m.ingestErrors.Inc()
	}
}

func (m *systemObs) queryError() {
	if m != nil {
		m.queryErrors.Inc()
	}
}
