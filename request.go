package atypical

import (
	"context"
	"fmt"
	"time"

	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/geo"
	"github.com/cpskit/atypical/internal/obs/flight"
	"github.com/cpskit/atypical/internal/query"
)

// QueryRequest describes one analytical query Q(W, T) for System.Run — the
// single entry point the legacy Query{City,Box,At}{,Explain}{,Ctx} matrix
// collapsed into. Set only what differs from the defaults (whole city, the
// configured δs, IntegrateAll); a time period is mandatory, so the zero
// value is rejected by Validate — set Days or Window.
type QueryRequest struct {
	// Spatial scope W, first match wins:
	//
	//   1. Regions — the explicit pre-defined region set. A non-nil empty
	//      slice is honored as "no regions" (the degenerate query).
	//   2. Box — the regions intersecting the bounding box.
	//   3. neither — the whole deployment.
	Regions []RegionID
	Box     *BBox

	// Time period T: FirstDay/Days select the day-aligned range
	// [FirstDay, FirstDay+Days); a non-nil Window overrides it with a raw
	// half-open window range. Days must be positive unless Window is set
	// (Validate rejects the rest).
	FirstDay int
	Days     int
	Window   *TimeRange

	// DeltaS is the relative severity threshold δs of Definition 5; zero
	// selects the Config default, negative values are rejected by Validate.
	// (A literal δs = 0 run — bound 0, everything significant — is not
	// expressible here; it was a degenerate accident of the old QueryAt
	// surface.)
	DeltaS float64

	// Strategy selects IntegrateAll, Pruned or Guided (zero value:
	// IntegrateAll).
	Strategy Strategy

	// Explain arms per-run EXPLAIN collection; the record lands in
	// RunResult.Explain. Collection never changes the answer.
	Explain bool

	// AllowPartial tolerates shards lost after retry on a sharded system:
	// the run proceeds and the Report carries Partial/FailedShards. When
	// false (default), a partial answer is refused with ErrPartialResult —
	// either way the degradation is explicit, never silent.
	AllowPartial bool

	// BypassShards serves this run from the coordinator's own forest even
	// when sharding is configured — the shard hint for debugging and for
	// equivalence checks (a sharded and a bypassed run must agree byte for
	// byte).
	BypassShards bool
}

// RunResult is Run's answer: the Report plus the EXPLAIN record when one
// was requested.
type RunResult struct {
	*Report
	// Explain is non-nil iff QueryRequest.Explain was set.
	Explain *Explain
}

// Validate checks the request's internal consistency before it reaches the
// engine. Violations return an error wrapping ErrInvalidRequest naming the
// offending field:
//
//   - Regions and Box are mutually exclusive spatial scopes;
//   - Days must be positive unless Window overrides the time period;
//   - DeltaS must not be negative (zero selects the configured default);
//   - Window, when set, must satisfy 0 <= From <= To.
//
// Run calls Validate on every request; calling it directly is useful for
// rejecting malformed requests at an API boundary before spending a
// round-trip (atypserve maps the error to HTTP 400).
func (r QueryRequest) Validate() error {
	if r.Regions != nil && r.Box != nil {
		return fmt.Errorf("%w: Regions and Box are mutually exclusive spatial scopes", ErrInvalidRequest)
	}
	if r.Window == nil && r.Days <= 0 {
		return fmt.Errorf("%w: Days must be positive (got %d) unless Window is set", ErrInvalidRequest, r.Days)
	}
	if r.DeltaS < 0 {
		return fmt.Errorf("%w: DeltaS must not be negative (got %v); zero selects the configured default", ErrInvalidRequest, r.DeltaS)
	}
	if w := r.Window; w != nil && (w.From < 0 || w.To < w.From) {
		return fmt.Errorf("%w: Window [%d, %d) must satisfy 0 <= From <= To", ErrInvalidRequest, w.From, w.To)
	}
	return nil
}

// Run executes one analytical query. It is the primitive every query entry
// point funnels through: it validates the request (ErrInvalidRequest),
// snapshots the current engine under the system lock (so a concurrent
// LoadForest cannot tear the query), refuses Guided runs while the severity
// index is stale (ErrSeverityStale), honors ctx inside the parallel engine,
// and — on a sharded system — refuses partial answers unless
// req.AllowPartial is set.
func (s *System) Run(ctx context.Context, req QueryRequest) (*RunResult, error) {
	if err := req.Validate(); err != nil {
		s.obs.queryError()
		return nil, err
	}
	// The flight recorder rides the EXPLAIN machinery for stage timings, so
	// an armed recorder forces collection internally; the record is returned
	// to the caller only when they asked (RunResult.Explain stays non-nil
	// iff req.Explain). Both are answer-neutral.
	wantExplain := req.Explain
	var exp *Explain
	if wantExplain || s.qlog != nil {
		ctx, exp = query.WithExplain(ctx)
	}
	var fe *flight.Event
	var started time.Time
	if s.qlog != nil {
		ctx, fe = flight.WithEvent(ctx)
		started = time.Now()
	}
	q := s.buildQuery(req)
	rep, err := s.runQuery(ctx, q, req.Strategy, req.BypassShards)
	if err == nil && rep.Partial && !req.AllowPartial {
		s.obs.queryError()
		err = fmt.Errorf("atypical: shards %v failed after retry: %w", rep.FailedShards, ErrPartialResult)
	}
	if fe != nil {
		s.finishQueryEvent(fe, q, req, rep, exp, err, started)
		s.qlog.Record(fe)
	}
	if err != nil {
		return nil, err
	}
	if !wantExplain {
		exp = nil
	}
	return &RunResult{Report: rep, Explain: exp}, nil
}

// finishQueryEvent fills the facade-level fields of a flight event after the
// engine ran: the inner layers already stamped trace ID, cache verdict,
// generations, and per-shard timings through the context.
func (s *System) finishQueryEvent(fe *flight.Event, q query.Query, req QueryRequest, rep *Report, exp *Explain, err error, started time.Time) {
	fe.Time = started
	fe.Kind = "query"
	fe.Key = query.CanonicalKey(q, req.Strategy)
	fe.Strategy = req.Strategy.String()
	elapsed := time.Since(started)
	fe.DurationNS = elapsed.Nanoseconds()
	if err != nil {
		fe.Err = err.Error()
	}
	if rep != nil && rep.Partial {
		// Stamped by the engine on sharded runs; kept here for the refusal
		// path, where the partial answer surfaces as an error.
		fe.Partial = true
		fe.FailedShards = rep.FailedShards
	}
	if exp != nil && len(exp.Stages) > 0 {
		fe.Stages = make([]flight.Stage, len(exp.Stages))
		for i, st := range exp.Stages {
			fe.Stages[i] = flight.Stage{Name: st.Name, In: st.In, Out: st.Out, DurationNS: st.DurationNS}
		}
	}
	s.mu.RLock()
	m := s.engine.Obs
	s.mu.RUnlock()
	sloElapsed := elapsed
	if rep != nil && rep.Elapsed > 0 {
		sloElapsed = rep.Elapsed // the engine-measured time the SLO counters saw
	}
	if target, met, armed := m.SLOVerdict(req.Strategy, sloElapsed); armed {
		fe.SLO = &flight.SLOVerdict{TargetNS: target.Nanoseconds(), Met: met}
	}
}

// buildQuery resolves a QueryRequest to the engine's query shape, matching
// the legacy constructors (CityQuery, BoxQuery) exactly so the deprecated
// wrappers stay byte-identical to their pre-Run selves.
func (s *System) buildQuery(req QueryRequest) query.Query {
	deltaS := req.DeltaS
	if deltaS <= 0 {
		deltaS = s.cfg.DeltaS
	}
	var tr cps.TimeRange
	if req.Window != nil {
		tr = *req.Window
	} else {
		tr = cps.DayRange(s.spec, req.FirstDay, req.Days)
	}
	var regions []geo.RegionID
	switch {
	case req.Regions != nil:
		regions = req.Regions
	case req.Box != nil:
		regions = s.net.Grid.RegionsIntersecting(*req.Box)
	default:
		regions = make([]geo.RegionID, 0, s.net.Grid.NumRegions())
		for _, r := range s.net.Grid.Regions() {
			regions = append(regions, r.ID)
		}
	}
	return query.Query{Regions: regions, Time: tr, DeltaS: deltaS}
}

// requestFromQuery lifts a legacy explicit query.Query into the request
// shape, preserving its semantics exactly (a nil region set stays an
// explicit empty scope, not "whole city").
func requestFromQuery(q query.Query, strat Strategy) QueryRequest {
	regions := q.Regions
	if regions == nil {
		regions = []RegionID{}
	}
	tr := q.Time
	return QueryRequest{Regions: regions, Window: &tr, DeltaS: q.DeltaS, Strategy: strat}
}

// runQuery snapshots the engine and executes the resolved query.
func (s *System) runQuery(ctx context.Context, q query.Query, strat Strategy, bypassShards bool) (*Report, error) {
	s.mu.RLock()
	engine, stale := s.engine, s.sevStale
	s.mu.RUnlock()
	if strat == Guided && stale {
		s.obs.queryError()
		return nil, fmt.Errorf("atypical: guided query on stale severity index: %w", ErrSeverityStale)
	}
	if bypassShards && engine.Scatterer != nil {
		e := *engine
		e.Scatterer = nil
		engine = &e
	}
	res, err := engine.RunCtx(s.armSpans(ctx), q, strat)
	if err != nil {
		s.obs.queryError()
	}
	return res, err
}
