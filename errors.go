package atypical

import (
	"errors"

	"github.com/cpskit/atypical/internal/query"
	"github.com/cpskit/atypical/internal/subscribe"
)

// The error contract of the facade. Every error returned by a System method
// either is one of these sentinels or wraps one, so callers branch with
// errors.Is rather than string matching:
//
//   - ErrInvalidConfig: a Config field or method argument fails validation
//     (NewSystem, NewStreamProcessor, TrainPredictor).
//   - ErrSeverityStale: the severity index lags the forest; Guided queries
//     are refused until RebuildSeverity runs (LoadForest, QueryAtCtx).
//   - ErrUnknownStrategy: a Strategy value outside IntegrateAll/Pruned/
//     Guided reached the engine.
//   - ErrInvalidRequest: a QueryRequest fails Validate — conflicting
//     spatial scopes, a non-positive day count, a negative δs, or a
//     malformed window range (Run; atypserve maps it to HTTP 400).
//   - ErrNoData: the requested range holds nothing to operate on
//     (TrainPredictor).
//   - ErrPartialResult: a sharded query lost shards after retry and the
//     request did not opt into partial answers (Run with
//     QueryRequest.AllowPartial unset).
//   - ErrTooManySubscribers: Subscribe would exceed the standing-query cap
//     set by WithSubscriptions.
//
// Context cancellation surfaces as the context's own error
// (context.Canceled, context.DeadlineExceeded), never wrapped in a sentinel.

// ErrInvalidConfig reports a configuration or argument validation failure.
var ErrInvalidConfig = errors.New("atypical: invalid configuration")

// ErrSeverityStale reports that the bottom-up severity index no longer
// matches the forest: the forest was loaded from disk but the index — which
// is not persisted — was not rebuilt. Guided queries would silently return
// nothing against an empty index, so they are refused until RebuildSeverity
// (or a full re-Ingest after LoadForestAndRebuild) runs. All- and
// Pruned-strategy queries never consult the index and keep working.
var ErrSeverityStale = errors.New("atypical: severity index is stale; call RebuildSeverity")

// ErrUnknownStrategy reports a Strategy value outside the defined constants.
var ErrUnknownStrategy = query.ErrUnknownStrategy

// ErrInvalidRequest reports a QueryRequest that fails validation before it
// reaches the engine: conflicting spatial scopes (Regions and Box both
// set), a non-positive Days with no Window override, a negative DeltaS, or
// a Window with negative origin or inverted bounds. Run returns it wrapped
// with the offending field spelled out; atypserve answers HTTP 400 with a
// structured body.
var ErrInvalidRequest = errors.New("atypical: invalid query request")

// ErrNoData reports that the requested operation found nothing to work on,
// e.g. a training range with no micro-clusters.
var ErrNoData = errors.New("atypical: no data in requested range")

// ErrTooManySubscribers reports that Subscribe hit the subscriber cap
// (WithSubscriptions; DefaultMaxSubscribers without it). The cap bounds the
// per-emission evaluation work on the ingest path; raise it deliberately.
var ErrTooManySubscribers = subscribe.ErrRegistryFull

// ErrPartialResult reports that a sharded query would return a partial
// answer (one or more shards failed after retry) and the request refused
// degradation. Opt in with QueryRequest.AllowPartial to receive the partial
// Report — explicitly flagged via Report.Partial — instead of this error.
var ErrPartialResult = errors.New("atypical: partial result: one or more shards failed")
