package atypical

import (
	"errors"

	"github.com/cpskit/atypical/internal/query"
)

// The error contract of the facade. Every error returned by a System method
// either is one of these sentinels or wraps one, so callers branch with
// errors.Is rather than string matching:
//
//   - ErrInvalidConfig: a Config field or method argument fails validation
//     (NewSystem, NewStreamProcessor, TrainPredictor).
//   - ErrSeverityStale: the severity index lags the forest; Guided queries
//     are refused until RebuildSeverity runs (LoadForest, QueryAtCtx).
//   - ErrUnknownStrategy: a Strategy value outside IntegrateAll/Pruned/
//     Guided reached the engine.
//   - ErrNoData: the requested range holds nothing to operate on
//     (TrainPredictor).
//   - ErrPartialResult: a sharded query lost shards after retry and the
//     request did not opt into partial answers (Run with
//     QueryRequest.AllowPartial unset).
//
// Context cancellation surfaces as the context's own error
// (context.Canceled, context.DeadlineExceeded), never wrapped in a sentinel.

// ErrInvalidConfig reports a configuration or argument validation failure.
var ErrInvalidConfig = errors.New("atypical: invalid configuration")

// ErrSeverityStale reports that the bottom-up severity index no longer
// matches the forest: the forest was loaded from disk but the index — which
// is not persisted — was not rebuilt. Guided queries would silently return
// nothing against an empty index, so they are refused until RebuildSeverity
// (or a full re-Ingest after LoadForestAndRebuild) runs. All- and
// Pruned-strategy queries never consult the index and keep working.
var ErrSeverityStale = errors.New("atypical: severity index is stale; call RebuildSeverity")

// ErrUnknownStrategy reports a Strategy value outside the defined constants.
var ErrUnknownStrategy = query.ErrUnknownStrategy

// ErrNoData reports that the requested operation found nothing to work on,
// e.g. a training range with no micro-clusters.
var ErrNoData = errors.New("atypical: no data in requested range")

// ErrPartialResult reports that a sharded query would return a partial
// answer (one or more shards failed after retry) and the request refused
// degradation. Opt in with QueryRequest.AllowPartial to receive the partial
// Report — explicitly flagged via Report.Partial — instead of this error.
var ErrPartialResult = errors.New("atypical: partial result: one or more shards failed")
