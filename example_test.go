package atypical_test

import (
	"fmt"

	atypical "github.com/cpskit/atypical"
)

// Two congestion events on the same road segments at the same time of day
// are highly similar; the same segments at a different time of day are not
// (the paper's Example 5).
func ExampleSimilarity() {
	morningA := atypical.MicroClusterFromRecords([]atypical.Record{
		{Sensor: 1, Window: 97, Severity: 4},
		{Sensor: 2, Window: 98, Severity: 5},
	})
	morningB := atypical.MicroClusterFromRecords([]atypical.Record{
		{Sensor: 1, Window: 97, Severity: 5},
		{Sensor: 2, Window: 98, Severity: 3},
	})
	evening := atypical.MicroClusterFromRecords([]atypical.Record{
		{Sensor: 1, Window: 220, Severity: 5},
		{Sensor: 2, Window: 221, Severity: 3},
	})
	fmt.Printf("same time:      %.2f\n", atypical.Similarity(morningA, morningB, atypical.BalanceArithmetic))
	fmt.Printf("different time: %.2f\n", atypical.Similarity(morningA, evening, atypical.BalanceArithmetic))
	// Output:
	// same time:      1.00
	// different time: 0.50
}

// A micro-cluster answers the Example 1 questions directly from its
// features: total severity, the most serious sensor, the peak window.
func ExampleMicroClusterFromRecords() {
	c := atypical.MicroClusterFromRecords([]atypical.Record{
		{Sensor: 1, Window: 97, Severity: 4},
		{Sensor: 1, Window: 98, Severity: 5},
		{Sensor: 2, Window: 98, Severity: 5},
	})
	peakSensor, mu := c.PeakSensor()
	peakWindow, nu := c.PeakWindow()
	fmt.Printf("severity %.0f; worst sensor %d (%.0f min); peak window %d (%.0f min)\n",
		float64(c.Severity()), peakSensor, float64(mu), peakWindow, float64(nu))
	// Output:
	// severity 14; worst sensor 1 (9 min); peak window 98 (10 min)
}
