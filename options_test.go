package atypical

import (
	"testing"

	"github.com/cpskit/atypical/internal/cluster"
)

func TestNewSystemOptions(t *testing.T) {
	mk := func(mutate func(*Config), options ...Option) *System {
		t.Helper()
		cfg := testConfig()
		if mutate != nil {
			mutate(&cfg)
		}
		sys, err := NewSystem(cfg, options...)
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}

	// An empty Balance string defaults to arithmetic instead of erroring —
	// the zero Config must be usable without the deprecated field.
	if sys := mk(nil); sys.balance != cluster.Arithmetic {
		t.Errorf("empty Config.Balance gave %v, want arithmetic", sys.balance)
	}
	// The deprecated stringly field still works for flag-driven callers…
	if sys := mk(func(c *Config) { c.Balance = "min" }); sys.balance != cluster.Min {
		t.Errorf("Config.Balance string gave %v, want min", sys.balance)
	}
	// …and the typed option wins over it.
	sys := mk(func(c *Config) { c.Balance = "min" }, WithBalance(BalanceMax))
	if sys.balance != cluster.Max {
		t.Errorf("WithBalance gave %v, want max", sys.balance)
	}

	// Worker plumbing: Config.Workers and WithWorkers drive construction
	// only; the query pool stays serial unless WithQueryWorkers opts in.
	if sys := mk(nil); sys.workers != 0 || sys.queryWorkers != 0 {
		t.Errorf("default workers = %d/%d, want 0/0 (serial)", sys.workers, sys.queryWorkers)
	}
	if sys := mk(func(c *Config) { c.Workers = 3 }); sys.workers != 3 || sys.queryWorkers != 0 {
		t.Errorf("Config.Workers=3 gave %d/%d, want 3/0", sys.workers, sys.queryWorkers)
	}
	if sys := mk(func(c *Config) { c.Workers = 3 }, WithWorkers(5)); sys.workers != 5 || sys.queryWorkers != 0 {
		t.Errorf("WithWorkers(5) gave %d/%d, want 5/0", sys.workers, sys.queryWorkers)
	}
	sys = mk(nil, WithWorkers(5), WithQueryWorkers(2))
	if sys.workers != 5 || sys.queryWorkers != 2 {
		t.Errorf("WithWorkers(5)+WithQueryWorkers(2) gave %d/%d", sys.workers, sys.queryWorkers)
	}
	if sys.engine.Workers != 2 {
		t.Errorf("engine workers = %d, want 2", sys.engine.Workers)
	}
	// WithQueryWorkers(0) keeps queries on the byte-compatible serial path
	// while ingestion fans out.
	if sys := mk(nil, WithWorkers(5), WithQueryWorkers(0)); sys.engine.Workers != 0 {
		t.Errorf("WithQueryWorkers(0) gave engine workers %d", sys.engine.Workers)
	}
}

func TestParseBalanceFacade(t *testing.T) {
	b, err := ParseBalance("geometric")
	if err != nil {
		t.Fatal(err)
	}
	if b != BalanceGeometric {
		t.Errorf("ParseBalance(geometric) = %v, want %v", b, BalanceGeometric)
	}
	if _, err := ParseBalance("nonsense"); err == nil {
		t.Error("bogus balance name accepted")
	}
}
