package atypical

import (
	"context"
	"errors"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// Attaching an observer, a span exporter, or the flight recorder must be
// invisible in every answer: the instrumented system renders byte-identical
// reports. The recorder internally arms EXPLAIN on every run, so this also
// pins that the EXPLAIN side-channel never leaks into the answer.
func TestObserverResultNeutral(t *testing.T) {
	want := renderRuns(t, buildSystem(t), nil)
	if want == "" {
		t.Fatal("baseline system rendered nothing; neutrality check is vacuous")
	}
	got := renderRuns(t, buildSystem(t,
		WithObserver(NewObserver()),
		WithSpanExporter(func(Span) {}),
	), nil)
	if got != want {
		t.Fatalf("observer changed query results:\n%s", diffAt(got, want))
	}

	logged := buildSystem(t, WithQueryLog(QueryLogConfig{Entries: 64}))
	if got := renderRuns(t, logged, nil); got != want {
		t.Fatalf("flight recorder changed query results:\n%s", diffAt(got, want))
	}
	events := logged.QueryLog()
	if len(events) == 0 {
		t.Fatal("flight recorder armed but no wide events recorded")
	}
	for _, ev := range events {
		if ev.Kind != "query" {
			t.Errorf("facade event kind = %q, want query", ev.Kind)
		}
		if ev.Key == "" || ev.Strategy == "" || len(ev.Stages) == 0 {
			t.Errorf("wide event missing key/strategy/stages: %+v", ev)
		}
	}
}

// The advertised metric families must carry real counts after an ingest and
// one query per strategy.
func TestMetricsCoverPipeline(t *testing.T) {
	reg := NewObserver()
	sys := buildSystem(t, WithObserver(reg))
	for _, strat := range []Strategy{IntegrateAll, Pruned, Guided} {
		if rep := mustRun(t, sys, QueryRequest{Days: 7, Strategy: strat}); len(rep.Macros) == 0 {
			t.Fatalf("strategy %v returned no macros; metric assertions would be vacuous", strat)
		}
	}
	flat := sys.Metrics().Flatten()

	wantPositive := []string{
		"atyp_ingest_records_total",
		"atyp_ingest_days_total",
		"atyp_ingest_micros_total",
		`atyp_ingest_stage_seconds_count{stage="extract"}`,
		`atyp_ingest_stage_seconds_count{stage="append"}`,
		`atyp_ingest_stage_seconds_count{stage="severity"}`,
		"atyp_forest_appends_total",
		"atyp_forest_version_bumps_total",
		`atyp_query_total{strategy="all"}`,
		`atyp_query_total{strategy="pru"}`,
		`atyp_query_total{strategy="gui"}`,
		`atyp_query_seconds_count{strategy="all"}`,
		`atyp_query_micros_scanned_total{strategy="all"}`,
		`atyp_query_micros_pruned_total{strategy="pru"}`,
		"atyp_query_redzones_total",
	}
	for _, name := range wantPositive {
		if v, ok := flat[name]; !ok || v <= 0 {
			t.Errorf("metric %s = %v (present=%v), want > 0", name, v, ok)
		}
	}
	// The exact strategy never prunes; the pruned strategy must have pruned
	// at least as much as the exact one (i.e. strictly more than zero here).
	if v := flat[`atyp_query_micros_pruned_total{strategy="all"}`]; v != 0 {
		t.Errorf("IntegrateAll pruned %v micro-clusters, want 0", v)
	}
	// One week was queried per strategy over the same stack, so scanned
	// candidates agree across strategies.
	if flat[`atyp_query_micros_scanned_total{strategy="all"}`] != flat[`atyp_query_micros_scanned_total{strategy="gui"}`] {
		t.Errorf("scanned counts differ across strategies: %v", flat)
	}
	if v := flat["atyp_api_errors_total{op=\"query\"}"]; v != 0 {
		t.Errorf("query API errors = %v, want 0", v)
	}
}

// Repeated week-level lookups must hit the forest memo: the first computes
// (one miss), the second is served from cache (one hit, no new miss).
func TestMetricsForestMemo(t *testing.T) {
	reg := NewObserver()
	sys := buildSystem(t, WithObserver(reg))
	memo := func() (hits, misses float64) {
		flat := sys.Metrics().Flatten()
		for series, v := range flat {
			if strings.HasPrefix(series, "atyp_forest_memo_hits_total") {
				hits += v
			}
			if strings.HasPrefix(series, "atyp_forest_memo_misses_total") {
				misses += v
			}
		}
		return
	}
	if cs := sys.Forest().Week(0); len(cs) == 0 {
		t.Fatal("week 0 integrated to nothing; memo assertions would be vacuous")
	}
	h1, m1 := memo()
	if m1 == 0 {
		t.Fatalf("first lookup recorded no miss (hits=%v misses=%v)", h1, m1)
	}
	sys.Forest().Week(0)
	h2, m2 := memo()
	if m2 != m1 {
		t.Errorf("repeat lookup recomputed the level: misses %v -> %v", m1, m2)
	}
	if h2 <= h1 {
		t.Errorf("repeat lookup did not hit the memo: hits %v -> %v", h1, h2)
	}
}

// One registry shared by concurrent ingest, queries, snapshots and /metrics
// scrapes must be race-free (this test is the -race hammer).
func TestSharedRegistryConcurrentUse(t *testing.T) {
	reg := NewObserver()
	sys, err := NewSystem(testConfig(), WithWorkers(2), WithObserver(reg))
	if err != nil {
		t.Fatal(err)
	}
	sys.Ingest(sys.GenerateMonth(0).Atypical)

	srv := httptest.NewServer(NewDebugMux(reg))
	defer srv.Close()

	var wg sync.WaitGroup
	wg.Add(4)
	go func() {
		defer wg.Done()
		// A second system ingesting into the same registry.
		other, err := NewSystem(testConfig(), WithObserver(reg))
		if err != nil {
			t.Error(err)
			return
		}
		other.Ingest(other.GenerateMonth(1).Atypical)
		if _, err := other.Run(context.Background(), QueryRequest{Days: 7, Strategy: Pruned}); err != nil {
			t.Error(err)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			if _, err := sys.Run(context.Background(), QueryRequest{Days: 7, Strategy: Strategy(i % 3)}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			sys.Metrics().Flatten()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			resp, err := srv.Client().Get(srv.URL + "/metrics")
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				t.Error(err)
			}
			resp.Body.Close()
		}
	}()
	wg.Wait()

	if v, ok := sys.Metrics().Value("atyp_ingest_days_total"); !ok || v < float64(2*testConfig().DaysPerMonth) {
		t.Fatalf("shared registry lost ingest counts: %v (ok=%v)", v, ok)
	}
}

// The legacy wrappers must never panic: a refused Guided query (stale
// severity index after LoadForest) returns an empty report and lands in the
// API error counter.
func TestLegacyWrapperRecordsErrorInsteadOfPanic(t *testing.T) {
	reg := NewObserver()
	sys := buildSystem(t, WithObserver(reg))
	dir := t.TempDir()
	if err := sys.SaveForest(dir); err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadForest(dir); !errors.Is(err, ErrSeverityStale) {
		t.Fatalf("LoadForest error = %v, want ErrSeverityStale", err)
	}
	rep := sys.QueryCity(0, 7, Guided) // must not panic
	if rep == nil {
		t.Fatal("legacy wrapper returned nil report")
	}
	if len(rep.Macros) != 0 || len(rep.Significant) != 0 {
		t.Fatalf("refused query returned a non-empty report: %+v", rep)
	}
	if v, _ := sys.Metrics().Value("atyp_api_errors_total", "op", "query"); v != 1 {
		t.Fatalf("query API error count = %v, want 1", v)
	}
	// The Ctx variant still surfaces the sentinel for callers that look.
	if _, err := sys.QueryCityCtx(context.Background(), 0, 7, Guided); !errors.Is(err, ErrSeverityStale) {
		t.Fatalf("QueryCityCtx error = %v, want ErrSeverityStale", err)
	}
}

// Every facade error matches its exported sentinel under errors.Is.
func TestErrorContract(t *testing.T) {
	cfg := testConfig()
	cfg.Sensors = 0
	if _, err := NewSystem(cfg); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("NewSystem(bad config) = %v, want ErrInvalidConfig", err)
	}
	cfg = testConfig()
	cfg.Balance = "bogus"
	if _, err := NewSystem(cfg); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("NewSystem(bad balance) = %v, want ErrInvalidConfig", err)
	}

	sys := buildSystem(t)
	if _, err := sys.TrainPredictor(0, 0, 0); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("TrainPredictor(days=0) = %v, want ErrInvalidConfig", err)
	}
	if _, err := sys.TrainPredictor(1000, 5, 0); !errors.Is(err, ErrNoData) {
		t.Errorf("TrainPredictor(empty range) = %v, want ErrNoData", err)
	}
	if _, err := sys.NewStreamProcessor(nil); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("NewStreamProcessor(nil emit) = %v, want ErrInvalidConfig", err)
	}
	if _, err := sys.QueryCityCtx(context.Background(), 0, 7, Strategy(9)); !errors.Is(err, ErrUnknownStrategy) {
		t.Errorf("QueryCityCtx(bad strategy) = %v, want ErrUnknownStrategy", err)
	}
}

// The configured span exporter receives the ingest and query span trees.
func TestSpanExporterReceivesPipelineSpans(t *testing.T) {
	var mu sync.Mutex
	seen := map[string]string{} // name -> parent
	sys, err := NewSystem(testConfig(), WithSpanExporter(func(s Span) {
		mu.Lock()
		seen[s.Name] = s.Parent
		mu.Unlock()
	}))
	if err != nil {
		t.Fatal(err)
	}
	sys.Ingest(sys.GenerateMonth(0).Atypical)
	if _, err := sys.Run(context.Background(), QueryRequest{Days: 7, Strategy: Guided}); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	for name, parent := range map[string]string{
		"ingest":          "",
		"ingest.extract":  "ingest",
		"ingest.append":   "ingest",
		"ingest.severity": "ingest",
		"query.run":       "",
		"query.redzones":  "query.run",
		"query.integrate": "query.run",
	} {
		got, ok := seen[name]
		if !ok {
			t.Errorf("span %q never exported (saw %v)", name, seen)
			continue
		}
		if got != parent {
			t.Errorf("span %q parent = %q, want %q", name, got, parent)
		}
	}
}

// A caller-armed context exporter wins over the system-level one, so nested
// tracing tools can override per-request.
func TestContextExporterOverridesSystemExporter(t *testing.T) {
	var sysSpans, ctxSpans int
	var mu sync.Mutex
	sys, err := NewSystem(testConfig(), WithSpanExporter(func(Span) {
		mu.Lock()
		sysSpans++
		mu.Unlock()
	}))
	if err != nil {
		t.Fatal(err)
	}
	sys.Ingest(sys.GenerateMonth(0).Atypical)
	before := sysSpans
	ctx := WithSpanContext(context.Background(), func(Span) {
		mu.Lock()
		ctxSpans++
		mu.Unlock()
	})
	if _, err := sys.Run(ctx, QueryRequest{Days: 7, Strategy: Pruned}); err != nil {
		t.Fatal(err)
	}
	if ctxSpans == 0 {
		t.Fatalf("context exporter received no spans")
	}
	if sysSpans != before {
		t.Fatalf("system exporter also ran (%d -> %d); context exporter should win", before, sysSpans)
	}
}
