// Command atypbench runs the experiment suite reproducing every table and
// figure of the paper's evaluation (Section V) and prints the results as
// aligned text tables (or CSV).
//
// Usage:
//
//	atypbench [-exp fig17] [-csv] [-sensors 400] [-months 12] [-querymonths 3]
//	          [-days 28] [-seed 42] [-deltas 0.02] [-deltad 1.5] [-deltat 15m]
//	          [-deltasim 0.5] [-balance avg]
//	          [-parjson BENCH_parallel.json] [-workers 0] [-maxregress 0.25]
//	          [-benchshards 2]
//
// Without -exp, all experiments run in presentation order. Fig. 15 also
// emits Fig. 16 (they share a sweep).
//
// In -parjson mode the previous result at the target path (if any) is
// preserved as <path minus .json>.prev.json and compared against the fresh
// run: a delta section reports the serial/parallel construction time and
// speedup movement, and the run exits non-zero when either measured total
// regressed by more than -maxregress (fraction; 0 disables the gate) — the
// CI perf gate. -benchshards additionally times the same Guided query
// unsharded versus scatter-gathered across that many in-process shards
// (equivalence-checked; a mismatch fails the run) and holds the sharded
// time to the same -maxregress budget; artifacts from before the field
// existed simply skip the comparison.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/cpskit/atypical/internal/cluster"
	"github.com/cpskit/atypical/internal/experiments"
	"github.com/cpskit/atypical/internal/faultfs"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id (fig14, fig15, fig17, fig18, fig19, fig20, fig21); empty = all")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		sensors  = flag.Int("sensors", 400, "approximate deployment size")
		months   = flag.Int("months", 12, "datasets for the construction sweep (figs 15-16)")
		qmonths  = flag.Int("querymonths", 3, "datasets ingested for query experiments (figs 17-19)")
		days     = flag.Int("days", 28, "days per dataset")
		seed     = flag.Int64("seed", 42, "workload seed")
		deltaS   = flag.Float64("deltas", 0.02, "severity threshold δs")
		deltaD   = flag.Float64("deltad", 1.5, "distance threshold δd (miles)")
		deltaT   = flag.Duration("deltat", 15*time.Minute, "time interval threshold δt")
		deltaSim = flag.Float64("deltasim", 0.5, "similarity threshold δsim")
		balance  = flag.String("balance", "avg", "balance function g (avg, max, min, geo, har)")
		parJSON    = flag.String("parjson", "", "quick mode: run the serial-vs-parallel construction benchmark, write JSON to this path, and exit")
		workers    = flag.Int("workers", 0, "worker count for -parjson (0 = GOMAXPROCS)")
		maxRegress = flag.Float64("maxregress", 0.25, "fail -parjson runs whose serial or parallel total regressed by more than this fraction vs the previous JSON (0 disables)")
		benchShards = flag.Int("benchshards", 2, "shard fan-out for the -parjson sharded-query benchmark (0 disables)")
	)
	flag.Parse()

	bal, err := cluster.ParseBalance(*balance)
	if err != nil {
		fatal(err)
	}
	cfg := experiments.Config{
		Sensors:      *sensors,
		Months:       *months,
		QueryMonths:  *qmonths,
		DaysPerMonth: *days,
		Seed:         *seed,
		DeltaS:       *deltaS,
		DeltaD:       *deltaD,
		DeltaT:       *deltaT,
		DeltaSim:     *deltaSim,
		Balance:      bal,
	}
	env, err := experiments.NewEnv(cfg)
	if err != nil {
		fatal(err)
	}
	out := os.Stdout
	fmt.Fprintf(out, "# deployment: %d sensors, %d highways, %d regions; seed %d\n\n",
		env.Net.NumSensors(), len(env.Net.Highways), env.Net.Grid.NumRegions(), cfg.Seed)

	if *parJSON != "" {
		prev, prevData := readPrevious(*parJSON)
		res := experiments.MeasureParallelConstruction(env, *workers)
		if *benchShards > 0 {
			res.ShardQuery = experiments.MeasureShardedQuery(env, *benchShards)
			if !res.ShardQuery.Identical {
				fatal(fmt.Errorf("sharded query (%d shards) diverged from the unsharded answer", *benchShards))
			}
		}
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fatal(err)
		}
		data = append(data, '\n')
		if err := faultfs.WriteFileAtomic(faultfs.OS{}, *parJSON, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(out, "# parallel construction: %d workers, %.2fx speedup (serial %.3fs, parallel %.3fs) -> %s\n",
			res.Workers, res.Speedup, res.Serial.Total, res.Parallel.Total, *parJSON)
		if sq := res.ShardQuery; sq != nil {
			fmt.Fprintf(out, "# sharded query: %d shards, unsharded %.3fs vs sharded %.3fs, answers identical\n",
				sq.Shards, sq.UnshardedS, sq.ShardedS)
		}
		if prev != nil {
			prevPath := prevPath(*parJSON)
			if err := faultfs.WriteFileAtomic(faultfs.OS{}, prevPath, prevData, 0o644); err != nil {
				fatal(err)
			}
			fmt.Fprintf(out, "\n# delta vs previous run (%s):\n", prevPath)
			fmt.Fprintf(out, "#   serial    %.3fs -> %.3fs  (%+.1f%%)\n",
				prev.Serial.Total, res.Serial.Total, deltaPct(prev.Serial.Total, res.Serial.Total))
			fmt.Fprintf(out, "#   parallel  %.3fs -> %.3fs  (%+.1f%%)\n",
				prev.Parallel.Total, res.Parallel.Total, deltaPct(prev.Parallel.Total, res.Parallel.Total))
			fmt.Fprintf(out, "#   speedup   %.2fx -> %.2fx\n", prev.Speedup, res.Speedup)
			if *maxRegress > 0 {
				if msg := regression(prev, &res, *maxRegress); msg != "" {
					fatal(fmt.Errorf("performance regression beyond %.0f%%: %s", *maxRegress*100, msg))
				}
			}
		}
		return
	}

	ids := experiments.Order
	if *exp != "" {
		fn, ok := experiments.Registry[*exp]
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q", *exp))
		}
		_ = fn
		ids = []string{*exp}
	}
	for _, id := range ids {
		start := time.Now()
		tables := experiments.Registry[id](env)
		for _, tab := range tables {
			if *csv {
				fmt.Fprintf(out, "# %s: %s\n%s\n", tab.ID, tab.Title, tab.CSV())
			} else {
				fmt.Fprintln(out, tab.Render())
			}
		}
		fmt.Fprintf(out, "# %s completed in %s\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

// readPrevious loads the prior -parjson result at path; a missing or
// unparseable file (first run, format change) yields nil rather than an
// error — there is simply nothing to compare against.
func readPrevious(path string) (*experiments.ParResult, []byte) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil
	}
	var prev experiments.ParResult
	if err := json.Unmarshal(data, &prev); err != nil || prev.Serial.Total <= 0 || prev.Parallel.Total <= 0 {
		return nil, nil
	}
	return &prev, data
}

// prevPath names the preserved copy of the previous result:
// BENCH_parallel.json -> BENCH_parallel.prev.json.
func prevPath(path string) string {
	const ext = ".json"
	if len(path) > len(ext) && path[len(path)-len(ext):] == ext {
		return path[:len(path)-len(ext)] + ".prev" + ext
	}
	return path + ".prev"
}

// deltaPct is the percentage change from prev to cur.
func deltaPct(prev, cur float64) float64 {
	return (cur - prev) / prev * 100
}

// regression names the first measured total that slowed down by more than
// the allowed fraction, or "" when both are within budget.
func regression(prev *experiments.ParResult, cur *experiments.ParResult, allowed float64) string {
	if cur.Serial.Total > prev.Serial.Total*(1+allowed) {
		return fmt.Sprintf("serial construction %.3fs -> %.3fs", prev.Serial.Total, cur.Serial.Total)
	}
	if cur.Parallel.Total > prev.Parallel.Total*(1+allowed) {
		return fmt.Sprintf("parallel construction %.3fs -> %.3fs", prev.Parallel.Total, cur.Parallel.Total)
	}
	// Artifacts written before the sharded-query benchmark existed (or runs
	// with -benchshards 0) carry no ShardQuery; skip rather than fail.
	if prev.ShardQuery != nil && cur.ShardQuery != nil &&
		prev.ShardQuery.ShardedS > 0 &&
		cur.ShardQuery.ShardedS > prev.ShardQuery.ShardedS*(1+allowed) {
		return fmt.Sprintf("sharded query %.3fs -> %.3fs", prev.ShardQuery.ShardedS, cur.ShardQuery.ShardedS)
	}
	return ""
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "atypbench:", err)
	os.Exit(1)
}
