// Command atypbench runs the experiment suite reproducing every table and
// figure of the paper's evaluation (Section V) and prints the results as
// aligned text tables (or CSV).
//
// Usage:
//
//	atypbench [-exp fig17] [-csv] [-sensors 400] [-months 12] [-querymonths 3]
//	          [-days 28] [-seed 42] [-deltas 0.02] [-deltad 1.5] [-deltat 15m]
//	          [-deltasim 0.5] [-balance avg]
//
// Without -exp, all experiments run in presentation order. Fig. 15 also
// emits Fig. 16 (they share a sweep).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/cpskit/atypical/internal/cluster"
	"github.com/cpskit/atypical/internal/experiments"
	"github.com/cpskit/atypical/internal/faultfs"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id (fig14, fig15, fig17, fig18, fig19, fig20, fig21); empty = all")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		sensors  = flag.Int("sensors", 400, "approximate deployment size")
		months   = flag.Int("months", 12, "datasets for the construction sweep (figs 15-16)")
		qmonths  = flag.Int("querymonths", 3, "datasets ingested for query experiments (figs 17-19)")
		days     = flag.Int("days", 28, "days per dataset")
		seed     = flag.Int64("seed", 42, "workload seed")
		deltaS   = flag.Float64("deltas", 0.02, "severity threshold δs")
		deltaD   = flag.Float64("deltad", 1.5, "distance threshold δd (miles)")
		deltaT   = flag.Duration("deltat", 15*time.Minute, "time interval threshold δt")
		deltaSim = flag.Float64("deltasim", 0.5, "similarity threshold δsim")
		balance  = flag.String("balance", "avg", "balance function g (avg, max, min, geo, har)")
		parJSON  = flag.String("parjson", "", "quick mode: run the serial-vs-parallel construction benchmark, write JSON to this path, and exit")
		workers  = flag.Int("workers", 0, "worker count for -parjson (0 = GOMAXPROCS)")
	)
	flag.Parse()

	bal, err := cluster.ParseBalance(*balance)
	if err != nil {
		fatal(err)
	}
	cfg := experiments.Config{
		Sensors:      *sensors,
		Months:       *months,
		QueryMonths:  *qmonths,
		DaysPerMonth: *days,
		Seed:         *seed,
		DeltaS:       *deltaS,
		DeltaD:       *deltaD,
		DeltaT:       *deltaT,
		DeltaSim:     *deltaSim,
		Balance:      bal,
	}
	env, err := experiments.NewEnv(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("# deployment: %d sensors, %d highways, %d regions; seed %d\n\n",
		env.Net.NumSensors(), len(env.Net.Highways), env.Net.Grid.NumRegions(), cfg.Seed)

	if *parJSON != "" {
		res := experiments.MeasureParallelConstruction(env, *workers)
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fatal(err)
		}
		data = append(data, '\n')
		if err := faultfs.WriteFileAtomic(faultfs.OS{}, *parJSON, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("# parallel construction: %d workers, %.2fx speedup (serial %.3fs, parallel %.3fs) -> %s\n",
			res.Workers, res.Speedup, res.Serial.Total, res.Parallel.Total, *parJSON)
		return
	}

	ids := experiments.Order
	if *exp != "" {
		fn, ok := experiments.Registry[*exp]
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q", *exp))
		}
		_ = fn
		ids = []string{*exp}
	}
	for _, id := range ids {
		start := time.Now()
		tables := experiments.Registry[id](env)
		for _, tab := range tables {
			if *csv {
				fmt.Printf("# %s: %s\n%s\n", tab.ID, tab.Title, tab.CSV())
			} else {
				fmt.Println(tab.Render())
			}
		}
		fmt.Printf("# %s completed in %s\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "atypbench:", err)
	os.Exit(1)
}
