package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/cpskit/atypical/internal/experiments"
)

func TestPrevPath(t *testing.T) {
	cases := map[string]string{
		"BENCH_parallel.json":     "BENCH_parallel.prev.json",
		"out/BENCH_parallel.json": "out/BENCH_parallel.prev.json",
		"bench":                   "bench.prev",
	}
	for in, want := range cases {
		if got := prevPath(in); got != want {
			t.Errorf("prevPath(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestReadPrevious(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_parallel.json")
	if prev, _ := readPrevious(path); prev != nil {
		t.Error("missing file should yield nil")
	}
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if prev, _ := readPrevious(path); prev != nil {
		t.Error("unparseable file should yield nil")
	}
	if err := os.WriteFile(path, []byte(`{"serial":{"total_s":2.0},"parallel":{"total_s":0.5},"speedup":4.0}`), 0o644); err != nil {
		t.Fatal(err)
	}
	prev, data := readPrevious(path)
	if prev == nil || prev.Serial.Total != 2.0 || prev.Parallel.Total != 0.5 {
		t.Fatalf("readPrevious = %+v", prev)
	}
	if len(data) == 0 {
		t.Error("raw bytes not returned")
	}
}

func TestRegressionGate(t *testing.T) {
	prev := &experiments.ParResult{}
	prev.Serial.Total = 2.0
	prev.Parallel.Total = 1.0
	cur := &experiments.ParResult{}

	// Within budget: 20% slower with 25% allowed.
	cur.Serial.Total, cur.Parallel.Total = 2.4, 1.2
	if msg := regression(prev, cur, 0.25); msg != "" {
		t.Errorf("within-budget run flagged: %s", msg)
	}
	// Serial regressed beyond budget.
	cur.Serial.Total, cur.Parallel.Total = 2.6, 1.0
	if msg := regression(prev, cur, 0.25); msg == "" {
		t.Error("serial regression not flagged")
	}
	// Parallel regressed beyond budget.
	cur.Serial.Total, cur.Parallel.Total = 2.0, 1.3
	if msg := regression(prev, cur, 0.25); msg == "" {
		t.Error("parallel regression not flagged")
	}
	// Speedups (faster runs) never trip the gate.
	cur.Serial.Total, cur.Parallel.Total = 1.0, 0.4
	if msg := regression(prev, cur, 0.25); msg != "" {
		t.Errorf("improvement flagged: %s", msg)
	}
}
