// Command atypforest builds the atypical forest from record files produced
// by atypgen: it extracts atypical events per day (Algorithm 1), summarizes
// them into micro-clusters, and persists the materialized days.
//
// Usage:
//
//	atypforest -data data/ -out forest/ [-sensors 400] [-seed 42]
//	           [-deltad 1.5] [-deltat 15m]
//
// The deployment parameters must match the ones used by atypgen so sensor
// ids resolve to the same topology.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/cpskit/atypical/internal/cluster"
	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/forest"
	"github.com/cpskit/atypical/internal/geo"
	"github.com/cpskit/atypical/internal/index"
	"github.com/cpskit/atypical/internal/storage"
	"github.com/cpskit/atypical/internal/traffic"
)

func main() {
	var (
		data     = flag.String("data", "data", "directory of .rec files from atypgen")
		out      = flag.String("out", "forest", "output directory for the forest")
		sensors  = flag.Int("sensors", 400, "approximate deployment size (must match atypgen)")
		seed     = flag.Int64("seed", 42, "deployment seed (must match atypgen)")
		deltaD   = flag.Float64("deltad", 1.5, "distance threshold δd (miles)")
		deltaT   = flag.Duration("deltat", 15*time.Minute, "time interval threshold δt")
		deltaSim = flag.Float64("deltasim", 0.5, "similarity threshold δsim")
	)
	flag.Parse()

	netCfg := traffic.ScaledConfig(*sensors)
	netCfg.Seed = *seed
	net := traffic.GenerateNetwork(netCfg)
	spec := cps.DefaultSpec()

	locs := make([]geo.Point, net.NumSensors())
	for i, s := range net.Sensors {
		locs[i] = s.Loc
	}
	neighbors := index.NewNeighborIndex(locs, *deltaD).NeighborLists()
	maxGap := cluster.MaxWindowGap(*deltaT, spec.Width)

	catalog, err := storage.OpenCatalog(*data)
	if err != nil {
		fatal(err)
	}
	datasets := catalog.List()
	if len(datasets) == 0 {
		fatal(fmt.Errorf("no datasets in %s (run atypgen first)", *data))
	}

	var idgen cluster.IDGen
	opts := cluster.IntegrateOptions{
		SimThreshold: *deltaSim,
		Balance:      cluster.Arithmetic,
		Period:       cps.Window(spec.PerDay()),
	}
	f := forest.New(spec, &idgen, opts, 28)
	totalRecords, totalMicros := 0, 0
	start := time.Now()
	for _, info := range datasets {
		rs, err := catalog.Read(info.Name)
		if err != nil {
			fatal(err)
		}
		for day, dayRecs := range rs.SplitByDay(spec) {
			micros := cluster.ExtractMicroClusters(&idgen, dayRecs, neighbors, maxGap)
			f.AddDay(day, micros)
			totalMicros += len(micros)
		}
		totalRecords += rs.Len()
		fmt.Fprintf(os.Stdout, "%s: %d records\n", info.Name, rs.Len())
	}
	if err := f.Save(*out); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stdout, "forest: %d days, %d micro-clusters from %d records in %s -> %s\n",
		len(f.Days()), totalMicros, totalRecords, time.Since(start).Round(time.Millisecond), *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "atypforest:", err)
	os.Exit(1)
}
