// Command atypgen generates synthetic monthly CPS datasets — the stand-in
// for the paper's PeMS data — and writes them as binary record files.
//
// Usage:
//
//	atypgen -out data/ [-sensors 400] [-months 12] [-days 28] [-seed 42]
//
// Each month m becomes data/d<m+1>.rec (the atypical record stream). A
// summary line per dataset is printed, mirroring the paper's Fig. 14 table.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/cpskit/atypical/internal/gen"
	"github.com/cpskit/atypical/internal/storage"
	"github.com/cpskit/atypical/internal/traffic"
)

func main() {
	var (
		out     = flag.String("out", "data", "output directory")
		sensors = flag.Int("sensors", 400, "approximate deployment size")
		months  = flag.Int("months", 12, "number of monthly datasets")
		days    = flag.Int("days", 28, "days per month")
		seed    = flag.Int64("seed", 42, "generation seed")
	)
	flag.Parse()

	netCfg := traffic.ScaledConfig(*sensors)
	netCfg.Seed = *seed
	net := traffic.GenerateNetwork(netCfg)
	gcfg := gen.DefaultConfig(net)
	gcfg.Seed = *seed
	gcfg.DaysPerMonth = *days
	g, err := gen.New(gcfg)
	if err != nil {
		fatal(err)
	}
	catalog, err := storage.OpenCatalog(*out)
	if err != nil {
		fatal(err)
	}

	fmt.Fprintf(os.Stdout, "deployment: %d sensors on %d highways\n", net.NumSensors(), len(net.Highways))
	fmt.Fprintf(os.Stdout, "%-8s %10s %12s %10s %8s %10s\n", "dataset", "sensors", "readings", "atypical%", "events", "bytes")
	for m := 0; m < *months; m++ {
		ds := g.Month(m)
		info, err := catalog.Write(fmt.Sprintf("d%02d", m+1), ds.Atypical)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stdout, "%-8s %10d %12d %9.1f%% %8d %10d\n",
			info.Name, net.NumSensors(), ds.NumReadings, ds.AtypicalPct(), len(ds.Truth), info.Bytes)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "atypgen:", err)
	os.Exit(1)
}
