package main

import (
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/cpskit/atypical"
)

// serveSystem builds a small ingested system behind a ready API handler.
func serveSystem(t *testing.T, options ...atypical.Option) (*atypical.System, http.Handler) {
	t.Helper()
	cfg := atypical.DefaultConfig()
	cfg.Sensors = 40
	cfg.DaysPerMonth = 7
	sys, err := atypical.NewSystem(cfg, options...)
	if err != nil {
		t.Fatal(err)
	}
	sys.Ingest(sys.GenerateMonth(0).Atypical)
	var ready atomic.Bool
	ready.Store(true)
	var logs lockedBuffer
	h := newAPIHandler(apiConfig{
		sys: sys, ready: &ready, slowQuery: -1,
		logger: newLogger(serveConfig{logTo: &logs}),
	})
	return sys, h
}

// The non-deterministic parts of a query response: macro IDs (freshly
// minted per run from the shared generator — in the id field and echoed in
// description text) and elapsed wall time. Everything else must match byte
// for byte.
var (
	volatileJSON = regexp.MustCompile(`"(id|elapsed_ms)": [0-9.e+-]+`)
	volatileDesc = regexp.MustCompile(`cluster \d+:`)
)

func normalize(body []byte) string {
	s := volatileJSON.ReplaceAllString(string(body), `"$1": X`)
	return volatileDesc.ReplaceAllString(s, "cluster X:")
}

func do(t *testing.T, h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var req *http.Request
	if body == "" {
		req = httptest.NewRequest(method, path, nil)
	} else {
		req = httptest.NewRequest(method, path, strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// The same logical query must answer byte-identically whether it arrives as
// GET parameters or a POST QueryRequest body (modulo minted IDs and timing).
func TestQueryPostMatchesGet(t *testing.T) {
	_, h := serveSystem(t)
	for _, tc := range []struct {
		name, get, post string
	}{
		{"gui", "/query?strategy=gui&from=0&days=7", `{"strategy":"gui","first_day":0,"days":7}`},
		{"all-defaults", "/query?strategy=all", `{"strategy":"all"}`},
		{"pru-range", "/query?strategy=pru&from=2&days=3", `{"strategy":"pru","first_day":2,"days":3}`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			get := do(t, h, "GET", tc.get, "")
			if get.Code != http.StatusOK {
				t.Fatalf("GET = %d: %s", get.Code, get.Body.String())
			}
			post := do(t, h, "POST", "/query", tc.post)
			if post.Code != http.StatusOK {
				t.Fatalf("POST = %d: %s", post.Code, post.Body.String())
			}
			g, p := normalize(get.Body.Bytes()), normalize(post.Body.Bytes())
			if g != p {
				t.Fatalf("GET and POST diverged:\nGET:  %s\nPOST: %s", g, p)
			}
			if !strings.Contains(g, `"candidate_micros"`) {
				t.Fatalf("response missing report fields: %s", g)
			}
		})
	}
}

func TestQueryPostValidation(t *testing.T) {
	_, h := serveSystem(t)
	if rec := do(t, h, "POST", "/query", `{"strategy":"gui","bogus":1}`); rec.Code != http.StatusBadRequest {
		t.Errorf("unknown field = %d, want 400", rec.Code)
	}
	if rec := do(t, h, "POST", "/query", `{"strategy":"nope"}`); rec.Code != http.StatusBadRequest {
		t.Errorf("bad strategy = %d, want 400", rec.Code)
	}
	if rec := do(t, h, "POST", "/query", `not json`); rec.Code != http.StatusBadRequest {
		t.Errorf("malformed body = %d, want 400", rec.Code)
	}
	// A request that decodes fine but fails QueryRequest.Validate answers a
	// structured 400: machine-matchable code plus the offending field.
	for _, body := range []string{
		`{"strategy":"all","days":-3}`,
		`{"strategy":"all","delta_s":-0.5}`,
	} {
		rec := do(t, h, "POST", "/query", body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("invalid request %s = %d, want 400", body, rec.Code)
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Errorf("invalid request %s Content-Type = %q, want application/json", body, ct)
		}
		if got := rec.Body.String(); !strings.Contains(got, `"error": "invalid_request"`) ||
			!strings.Contains(got, "atypical: invalid query request") {
			t.Errorf("invalid request %s body not structured:\n%s", body, got)
		}
	}
	// A box scope narrows the query without erroring.
	rec := do(t, h, "POST", "/query",
		`{"strategy":"all","box":{"min_lat":0,"min_lon":0,"max_lat":90,"max_lon":180}}`)
	if rec.Code != http.StatusOK {
		t.Errorf("box query = %d: %s", rec.Code, rec.Body.String())
	}
}

// /readyz on a sharded system lists every shard and turns 503 as soon as one
// is unreachable.
func TestReadyzPerShard(t *testing.T) {
	_, h := serveSystem(t, atypical.WithShards(2))
	rec := do(t, h, "GET", "/readyz", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("local shards readyz = %d: %s", rec.Code, rec.Body.String())
	}
	body := rec.Body.String()
	for _, want := range []string{"ready", "shard0 ready", "shard1 ready"} {
		if !strings.Contains(body, want) {
			t.Errorf("readyz body missing %q:\n%s", want, body)
		}
	}

	deadSrv := httptest.NewServer(http.NewServeMux())
	dead := deadSrv.URL
	deadSrv.Close()
	_, hDown := serveSystem(t, atypical.WithShardServers(dead, dead))
	rec = do(t, hDown, "GET", "/readyz", "")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("dead shards readyz = %d, want 503", rec.Code)
	}
	if body := rec.Body.String(); !strings.Contains(body, "not ready") || !strings.Contains(body, "2 of 2 shards") {
		t.Errorf("degraded readyz body:\n%s", body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("degraded readyz missing Retry-After")
	}
}

// A serving coordinator that lost a shard answers the partial report with the
// degradation flagged in the JSON; a client refusing partials gets 503.
func TestQueryPartialSurface(t *testing.T) {
	cfg := atypical.DefaultConfig()
	cfg.Sensors = 40
	cfg.DaysPerMonth = 7
	data, err := atypical.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data.Ingest(data.GenerateMonth(0).Atypical)
	sh, err := data.ShardHandler(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.Handle(atypical.ShardQueryPath, sh)
	live := httptest.NewServer(mux)
	defer live.Close()
	deadSrv := httptest.NewServer(http.NewServeMux())
	dead := deadSrv.URL
	deadSrv.Close()

	_, h := serveSystem(t, atypical.WithShardServers(live.URL, dead))
	rec := do(t, h, "GET", "/query?strategy=all&from=0&days=7", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("partial GET = %d: %s", rec.Code, rec.Body.String())
	}
	body := rec.Body.String()
	if !strings.Contains(body, `"partial": true`) || !strings.Contains(body, `"shard1"`) {
		t.Fatalf("partial answer not flagged:\n%s", body)
	}

	rec = do(t, h, "POST", "/query", `{"strategy":"all","allow_partial":false}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("allow_partial=false on degraded system = %d, want 503", rec.Code)
	}
}
