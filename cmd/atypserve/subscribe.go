package main

// Standing-query serving: GET /subscribe registers a QueryRequest as a
// standing query (System.Subscribe) and delivers its pushes over the wire.
// Two transports share one parameter surface:
//
//   - mode=sse (default): one long-lived text/event-stream response. Each
//     push is an SSE "push" event; comment lines keep the connection alive
//     through idle stretches. The subscription dies with the connection.
//   - mode=poll: a session store for clients that cannot hold SSE open.
//     The first request (no id) registers and returns a session id; later
//     requests drain buffered pushes, blocking up to ?wait when the buffer
//     is empty. Sessions idle past pollIdleExpiry are lazily swept.
//
// Unlike /query, /subscribe sits outside the shed gate: a subscription is
// expected to live for hours, so admission control is the registry's
// subscriber cap (-maxsubs) and the per-subscriber push buffers
// (-subbuffer), not the in-flight query slots.

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/cpskit/atypical"
)

const (
	// subHeartbeat paces SSE comment lines so proxies and clients can tell a
	// quiet stream from a dead one.
	subHeartbeat = 15 * time.Second
	// subWriteGrace bounds each SSE write: a client that stops reading for
	// this long is disconnected (the registry would only drop pushes; a dead
	// TCP peer should release its subscriber slot too).
	subWriteGrace = 10 * time.Second
	// subPollWait is the long-poll block when ?wait is absent on an
	// established session; subPollMaxWait caps client-requested waits below
	// common LB idle timeouts.
	subPollWait    = 25 * time.Second
	subPollMaxWait = 55 * time.Second
	// pollIdleExpiry sweeps poll sessions whose client vanished without
	// ?close=1. It must exceed subPollMaxWait so an in-flight wait cannot be
	// swept out from under its own request.
	pollIdleExpiry = 2 * time.Minute
)

// pushJSON is the wire shape of one standing-query push, for both SSE data
// payloads and long-poll batches. Clusters is the component's complete
// current significant set — empty means the component fell back below the
// significance bound (a retraction). ts_unix_ns is stamped at evaluation
// time, so consumer-side push latency is now minus it.
type pushJSON struct {
	Seq       uint64        `json:"seq"`
	Component uint64        `json:"component"`
	Absorbed  []uint64      `json:"absorbed,omitempty"`
	Gap       bool          `json:"gap,omitempty"`
	TsUnixNS  int64         `json:"ts_unix_ns"`
	Clusters  []clusterJSON `json:"clusters"`
}

// wirePush renders a push for the wire. Clusters is always non-nil so a
// retraction serializes as "clusters": [] rather than null.
func wirePush(sys *atypical.System, p atypical.Push) pushJSON {
	out := pushJSON{
		Seq: p.Seq, Component: p.Component, Absorbed: p.Absorbed,
		Gap: p.Gap, TsUnixNS: p.Ts.UnixNano(),
		Clusters: []clusterJSON{},
	}
	for _, c := range p.Clusters {
		out.Clusters = append(out.Clusters, clusterJSON{
			ID:          uint64(c.ID),
			Severity:    float64(c.Severity()),
			Description: sys.Describe(c),
		})
	}
	return out
}

// parseSubscribeRequest builds the standing QueryRequest from the GET
// parameters. The strategy default is "all", not /query's "gui": Guided
// standing queries are rejected by Subscribe (red zones track the mutable
// severity index), so defaulting to it would make the bare
// GET /subscribe an error.
func parseSubscribeRequest(r *http.Request) (atypical.QueryRequest, error) {
	name := r.URL.Query().Get("strategy")
	if name == "" {
		name = "all"
	}
	strat, err := parseStrategy(name)
	if err != nil {
		return atypical.QueryRequest{}, err
	}
	from, err := intParam(r, "from", 0)
	if err != nil {
		return atypical.QueryRequest{}, err
	}
	days, err := intParam(r, "days", 7)
	if err != nil {
		return atypical.QueryRequest{}, err
	}
	deltaS, err := floatParam(r, "deltas", 0)
	if err != nil {
		return atypical.QueryRequest{}, err
	}
	return atypical.QueryRequest{
		FirstDay: from, Days: days, DeltaS: deltaS, Strategy: strat,
	}, nil
}

// subscribeError maps a Subscribe failure to its HTTP answer: the cap is a
// retryable 503 (slots free on unsubscribe), everything else is the client's
// request.
func subscribeError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, atypical.ErrTooManySubscribers):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, atypical.ErrInvalidRequest):
		writeRequestError(w, err)
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

// serveSubscribe routes GET /subscribe by mode.
func serveSubscribe(ac apiConfig, st *subStore, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	switch mode := r.URL.Query().Get("mode"); mode {
	case "", "sse":
		req, err := parseSubscribeRequest(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		sub, err := ac.sys.Subscribe(req)
		if err != nil {
			subscribeError(w, err)
			return
		}
		serveSSE(ac, w, r, req, sub)
	case "poll":
		servePoll(ac, st, w, r)
	default:
		http.Error(w, fmt.Sprintf("bad mode %q (want sse or poll)", mode), http.StatusBadRequest)
	}
}

// serveSSE streams one subscription until the client disconnects (or stops
// reading past subWriteGrace). The first event announces the subscription id;
// every later "push" event carries one pushJSON. The per-write deadline
// overrides the server's WriteTimeout, which would otherwise kill the stream
// at queryTimeout+5s like any ordinary response.
func serveSSE(ac apiConfig, w http.ResponseWriter, r *http.Request, req atypical.QueryRequest, sub *atypical.Subscription) {
	started := time.Now()
	var pushed uint64
	var maxLatNS int64
	defer func() {
		ac.sys.Unsubscribe(sub.ID())
		ev := &atypical.QueryLogEvent{
			Time:             started,
			Kind:             "subscribe",
			Source:           "/subscribe",
			Strategy:         req.Strategy.String(),
			DurationNS:       time.Since(started).Nanoseconds(),
			Pushes:           pushed,
			Dropped:          sub.Dropped(),
			Gaps:             sub.Gaps(),
			MaxPushLatencyNS: maxLatNS,
		}
		if sp := atypical.SpanFromContext(r.Context()); sp != nil {
			ev.TraceID = sp.TraceHex()
		}
		ac.sys.RecordQueryLog(ev)
	}()
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	rc := http.NewResponseController(w)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	writeEvent := func(event string, data []byte) error {
		_ = rc.SetWriteDeadline(time.Now().Add(subWriteGrace))
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
			return err
		}
		fl.Flush()
		return nil
	}
	hello, _ := json.Marshal(map[string]uint64{"subscription": sub.ID()})
	if err := writeEvent("subscribed", hello); err != nil {
		return
	}

	tick := time.NewTicker(subHeartbeat)
	defer tick.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-sub.Done():
			return
		case p := <-sub.Pushes():
			data, err := json.Marshal(wirePush(ac.sys, p))
			if err != nil {
				ac.logger.Error("subscribe: encoding push", "err", err)
				return
			}
			if err := writeEvent("push", data); err != nil {
				return
			}
			pushed++
			if lat := time.Since(p.Ts).Nanoseconds(); lat > maxLatNS {
				maxLatNS = lat
			}
		case <-tick.C:
			_ = rc.SetWriteDeadline(time.Now().Add(subWriteGrace))
			if _, err := io.WriteString(w, ": heartbeat\n\n"); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// pollSession is one long-poll subscription between requests. The stream
// counters accumulate across requests so the teardown flight event summarizes
// the whole session, not just its final drain; they are atomics because
// nothing stops a client from draining the same id concurrently.
type pollSession struct {
	sub      *atypical.Subscription
	lastSeen time.Time
	started  time.Time
	strategy atypical.Strategy
	traceID  string
	pushed   atomic.Uint64
	maxLatNS atomic.Int64
}

// noteLatency folds one push's evaluation-to-wire latency into the session
// maximum.
func (s *pollSession) noteLatency(ns int64) {
	for {
		cur := s.maxLatNS.Load()
		if ns <= cur || s.maxLatNS.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// recordPollEvent emits the session's teardown flight event: one "subscribe"
// wide event per poll session, on explicit close, stream teardown, or idle
// sweep.
func recordPollEvent(ac apiConfig, sess *pollSession) {
	ac.sys.RecordQueryLog(&atypical.QueryLogEvent{
		Time:             sess.started,
		Kind:             "subscribe",
		Source:           "/subscribe?mode=poll",
		TraceID:          sess.traceID,
		Strategy:         sess.strategy.String(),
		DurationNS:       time.Since(sess.started).Nanoseconds(),
		Pushes:           sess.pushed.Load(),
		Dropped:          sess.sub.Dropped(),
		Gaps:             sess.sub.Gaps(),
		MaxPushLatencyNS: sess.maxLatNS.Load(),
	})
}

// subStore holds the long-poll sessions. Expiry is lazy: every poll request
// sweeps sessions idle past pollIdleExpiry, so abandoned subscriptions
// release their registry slots without a background goroutine.
type subStore struct {
	mu       sync.Mutex
	sessions map[string]*pollSession
}

func newSubStore() *subStore {
	return &subStore{sessions: make(map[string]*pollSession)}
}

// sweep drops sessions idle past pollIdleExpiry, handing each dead session
// to drop for unregistration and its teardown flight event.
func (st *subStore) sweep(now time.Time, drop func(*pollSession)) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for id, s := range st.sessions {
		if now.Sub(s.lastSeen) > pollIdleExpiry {
			delete(st.sessions, id)
			drop(s)
		}
	}
}

// touch fetches a session and stamps its lastSeen.
func (st *subStore) touch(id string, now time.Time) (*pollSession, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.sessions[id]
	if ok {
		s.lastSeen = now
	}
	return s, ok
}

// put registers a fresh session under a new random id.
func (st *subStore) put(sess *pollSession, now time.Time) string {
	id := newSessionID()
	sess.lastSeen = now
	st.mu.Lock()
	st.sessions[id] = sess
	st.mu.Unlock()
	return id
}

// remove deletes a session, reporting whether it existed.
func (st *subStore) remove(id string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	_, ok := st.sessions[id]
	delete(st.sessions, id)
	return ok
}

// newSessionID returns 128 bits of hex: poll session ids authorize draining
// the subscription, so they must be unguessable, not merely unique.
func newSessionID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand does not fail on supported platforms
	}
	return hex.EncodeToString(b[:])
}

// pollResponse is the JSON answer of one mode=poll request.
type pollResponse struct {
	ID      string     `json:"id"`
	Pushes  []pushJSON `json:"pushes"`
	Dropped uint64     `json:"dropped,omitempty"`
	Closed  bool       `json:"closed,omitempty"`
}

// servePoll answers mode=poll: register (no id), drain (id), or tear down
// (id + close=1). Draining blocks up to ?wait when the buffer is empty, so
// clients get push latency close to SSE without holding a stream open.
func servePoll(ac apiConfig, st *subStore, w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	st.sweep(now, func(sess *pollSession) {
		ac.sys.Unsubscribe(sess.sub.ID())
		recordPollEvent(ac, sess)
	})

	q := r.URL.Query()
	id := q.Get("id")
	wait := time.Duration(0)
	var sess *pollSession
	if id == "" {
		req, err := parseSubscribeRequest(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		sub, err := ac.sys.Subscribe(req)
		if err != nil {
			subscribeError(w, err)
			return
		}
		sess = &pollSession{sub: sub, started: now, strategy: req.Strategy}
		if sp := atypical.SpanFromContext(r.Context()); sp != nil {
			sess.traceID = sp.TraceHex()
		}
		id = st.put(sess, now)
	} else {
		var ok bool
		sess, ok = st.touch(id, now)
		if !ok {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusNotFound)
			_ = json.NewEncoder(w).Encode(requestErrorJSON{
				Error: "unknown_subscription", Detail: "no poll session with that id (expired or closed)",
			})
			return
		}
		if q.Get("close") == "1" {
			st.remove(id)
			ac.sys.Unsubscribe(sess.sub.ID())
			recordPollEvent(ac, sess)
			writePollResponse(ac, w, pollResponse{ID: id, Pushes: []pushJSON{}, Closed: true})
			return
		}
		wait = subPollWait
	}
	if s := q.Get("wait"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil || d < 0 {
			http.Error(w, fmt.Sprintf("bad wait %q (want a non-negative duration)", s), http.StatusBadRequest)
			return
		}
		wait = min(d, subPollMaxWait)
	}

	pushes, closed := drainPushes(ac.sys, sess.sub, r.Context(), wait)
	sess.pushed.Add(uint64(len(pushes)))
	drained := time.Now().UnixNano()
	for i := range pushes {
		sess.noteLatency(drained - pushes[i].TsUnixNS)
	}
	if closed {
		st.remove(id)
		recordPollEvent(ac, sess)
	}
	writePollResponse(ac, w, pollResponse{
		ID: id, Pushes: pushes, Dropped: sess.sub.Dropped(), Closed: closed,
	})
}

func writePollResponse(ac apiConfig, w http.ResponseWriter, resp pollResponse) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(resp); err != nil {
		ac.logger.Error("subscribe: encoding poll response", "err", err)
	}
}

// drainPushes collects everything buffered; if that is nothing and wait is
// positive, it blocks for the first push (or teardown) and then drains the
// rest of the burst. closed reports the subscription was unregistered
// underneath the session (Done fired).
func drainPushes(sys *atypical.System, sub *atypical.Subscription, ctx context.Context, wait time.Duration) (pushes []pushJSON, closed bool) {
	pushes = drainBuffered(sys, sub, []pushJSON{})
	if len(pushes) > 0 || wait <= 0 {
		return pushes, false
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-ctx.Done():
	case <-timer.C:
	case <-sub.Done():
		closed = true
	case p := <-sub.Pushes():
		pushes = drainBuffered(sys, sub, append(pushes, wirePush(sys, p)))
	}
	return pushes, closed
}

// drainBuffered appends every already-buffered push without blocking.
func drainBuffered(sys *atypical.System, sub *atypical.Subscription, pushes []pushJSON) []pushJSON {
	for {
		select {
		case p := <-sub.Pushes():
			pushes = append(pushes, wirePush(sys, p))
		default:
			return pushes
		}
	}
}

// floatParam parses an optional float query parameter.
func floatParam(r *http.Request, name string, def float64) (float64, error) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return def, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s: %v", name, err)
	}
	return v, nil
}

// replayStream drives the -stream demo feed: after ingest it replays the
// generated months through a stream processor at rate records/sec, cycling
// forever. Emitted micro-clusters are discarded rather than ingested — the
// batch forest already holds these months; the point is feeding /subscribe
// a live stream whose day windows match the subscribed ranges. Flush between
// months resets the stream clock so each pass re-covers those windows.
// Subscription evaluators keep accumulating across passes (to them it is one
// endless stream), so long-lived demo subscriptions grow state without
// bound; real deployments feed real streams instead.
func replayStream(ctx context.Context, logger *slog.Logger, sys *atypical.System, months, rate int) {
	p, err := sys.NewStreamProcessor(func(*atypical.Cluster) {})
	if err != nil {
		logger.Error("stream replay: building processor", "err", err)
		return
	}
	if months < 1 {
		months = 1
	}
	for m := 0; ctx.Err() == nil; m = (m + 1) % months {
		recs := sys.GenerateMonth(m).Atypical.Records()
		logger.Info("stream replay: month start", "month", m, "records", len(recs), "rate", rate)
		if err := observePaced(ctx, p, recs, rate); err != nil {
			if !errors.Is(err, context.Canceled) {
				logger.Error("stream replay: observing", "err", err)
			}
			return
		}
		p.Flush()
	}
}

// observePaced feeds recs to p in one-second slices of rate records;
// rate <= 0 feeds them flat out.
func observePaced(ctx context.Context, p *atypical.StreamProcessor, recs []atypical.Record, rate int) error {
	if rate <= 0 {
		return p.ObserveAll(ctx, recs)
	}
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	for start := 0; start < len(recs); start += rate {
		end := min(start+rate, len(recs))
		if err := p.ObserveAll(ctx, recs[start:end]); err != nil {
			return err
		}
		if end < len(recs) {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-tick.C:
			}
		}
	}
	return nil
}
