// Command atypserve runs the pipeline as a long-lived query server: it
// builds (or generates) a deployment, ingests the requested months, and then
// serves analytical queries over HTTP alongside the operational surface —
// Prometheus-text metrics at /metrics and the pprof suite at /debug/pprof/.
//
// Usage:
//
//	atypserve [-addr :8081] [-metrics :8080]
//	          [-sensors 400] [-seed 42] [-months 1] [-days 30]
//	          [-workers 0] [-queryworkers 0] [-deltas 0.02]
//
// Endpoints on -addr:
//
//	GET /query?strategy=gui&from=0&days=7   JSON query report
//	GET /healthz                            liveness probe
//
// Endpoints on -metrics (omit the flag to disable):
//
//	GET /metrics                            Prometheus text format 0.0.4
//	GET /debug/pprof/                       net/http/pprof suite
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"time"

	"github.com/cpskit/atypical"
)

func main() {
	var (
		addr         = flag.String("addr", ":8081", "query API listen address")
		metricsAddr  = flag.String("metrics", ":8080", "metrics/pprof listen address (empty disables)")
		sensors      = flag.Int("sensors", 400, "approximate deployment size")
		seed         = flag.Int64("seed", 42, "deployment and workload seed")
		months       = flag.Int("months", 1, "months of synthetic data to ingest at startup")
		days         = flag.Int("days", 30, "days per generated month")
		workers      = flag.Int("workers", 0, "construction workers (0 serial, <0 one per CPU)")
		queryWorkers = flag.Int("queryworkers", 0, "query engine workers (0 serial)")
		deltaS       = flag.Float64("deltas", 0.02, "severity threshold δs")
	)
	flag.Parse()

	obs := atypical.NewObserver()
	cfg := atypical.DefaultConfig()
	cfg.Sensors = *sensors
	cfg.Seed = *seed
	cfg.DaysPerMonth = *days
	cfg.DeltaS = *deltaS
	sys, err := atypical.NewSystem(cfg,
		atypical.WithWorkers(*workers),
		atypical.WithQueryWorkers(*queryWorkers),
		atypical.WithObserver(obs),
	)
	if err != nil {
		log.Fatalf("atypserve: %v", err)
	}

	start := time.Now()
	log.Printf("ingesting %d month(s) of %d days over %d sensors", *months, *days, *sensors)
	sys.IngestMonths(*months)
	log.Printf("ingest done in %s", time.Since(start).Round(time.Millisecond))

	if *metricsAddr != "" {
		go func() {
			log.Printf("metrics and pprof on %s", *metricsAddr)
			if err := http.ListenAndServe(*metricsAddr, atypical.NewDebugMux(obs)); err != nil {
				log.Fatalf("atypserve: metrics listener: %v", err)
			}
		}()
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		serveQuery(sys, w, r)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	log.Printf("query API on %s", *addr)
	if err := http.ListenAndServe(*addr, mux); err != nil {
		log.Fatalf("atypserve: %v", err)
	}
}

// queryResponse is the JSON shape of one /query answer.
type queryResponse struct {
	Strategy        string        `json:"strategy"`
	FirstDay        int           `json:"first_day"`
	Days            int           `json:"days"`
	CandidateMicros int           `json:"candidate_micros"`
	InputMicros     int           `json:"input_micros"`
	RedZones        int           `json:"red_zones,omitempty"`
	Macros          int           `json:"macros"`
	Significant     int           `json:"significant"`
	ElapsedMS       float64       `json:"elapsed_ms"`
	Clusters        []clusterJSON `json:"clusters"`
}

// clusterJSON summarizes one significant cluster.
type clusterJSON struct {
	ID          uint64  `json:"id"`
	Severity    float64 `json:"severity"`
	Description string  `json:"description"`
}

// serveQuery answers GET /query?strategy=all|pru|gui&from=N&days=N.
func serveQuery(sys *atypical.System, w http.ResponseWriter, r *http.Request) {
	strat, err := parseStrategy(r.URL.Query().Get("strategy"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	from, err := intParam(r, "from", 0)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	days, err := intParam(r, "days", 7)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	rep, err := sys.QueryCityCtx(r.Context(), from, days, strat)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	resp := queryResponse{
		Strategy:        rep.Strategy.String(),
		FirstDay:        from,
		Days:            days,
		CandidateMicros: rep.CandidateMicros,
		InputMicros:     rep.InputMicros,
		RedZones:        rep.RedZones,
		Macros:          len(rep.Macros),
		Significant:     len(rep.Significant),
		ElapsedMS:       float64(rep.Elapsed) / float64(time.Millisecond),
	}
	for _, c := range rep.Significant {
		resp.Clusters = append(resp.Clusters, clusterJSON{
			ID:          uint64(c.ID),
			Severity:    float64(c.Severity()),
			Description: sys.Describe(c),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(resp); err != nil {
		log.Printf("atypserve: encoding response: %v", err)
	}
}

// intParam parses an optional integer query parameter.
func intParam(r *http.Request, name string, def int) (int, error) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return def, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad %s: %v", name, err)
	}
	return v, nil
}

// parseStrategy maps the query parameter to a Strategy; empty means guided.
func parseStrategy(s string) (atypical.Strategy, error) {
	switch s {
	case "", "gui", "guided":
		return atypical.Guided, nil
	case "all":
		return atypical.IntegrateAll, nil
	case "pru", "pruned":
		return atypical.Pruned, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q (want all, pru or gui)", s)
	}
}
