// Command atypserve runs the pipeline as a long-lived query server: it
// builds (or generates) a deployment, ingests the requested months, and then
// serves analytical queries over HTTP alongside the operational surface —
// Prometheus-text metrics at /metrics and the pprof suite at /debug/pprof/.
//
// Usage:
//
//	atypserve [-addr :8081] [-metrics :8080]
//	          [-sensors 400] [-seed 42] [-months 1] [-days 30]
//	          [-workers 0] [-queryworkers 0] [-deltas 0.02]
//	          [-maxinflight 64] [-querytimeout 30s] [-drain 15s]
//
// Endpoints on -addr:
//
//	GET /query?strategy=gui&from=0&days=7   JSON query report
//	GET /healthz                            liveness probe
//
// Endpoints on -metrics (omit the flag to disable):
//
//	GET /metrics                            Prometheus text format 0.0.4
//	GET /debug/pprof/                       net/http/pprof suite
//
// The server is hardened for production traffic: both listeners run under
// read/write/idle timeouts, every query carries a context deadline
// (-querytimeout), at most -maxinflight queries run concurrently (excess
// requests are shed with 503 and counted in atyp_serve_shed_total), and
// SIGINT/SIGTERM drain in-flight requests for up to -drain before exit.
// A listener that fails to bind — the metrics one included — exits the
// process non-zero instead of serving half the surface.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"github.com/cpskit/atypical"
)

func main() {
	var (
		addr         = flag.String("addr", ":8081", "query API listen address")
		metricsAddr  = flag.String("metrics", ":8080", "metrics/pprof listen address (empty disables)")
		sensors      = flag.Int("sensors", 400, "approximate deployment size")
		seed         = flag.Int64("seed", 42, "deployment and workload seed")
		months       = flag.Int("months", 1, "months of synthetic data to ingest at startup")
		days         = flag.Int("days", 30, "days per generated month")
		workers      = flag.Int("workers", 0, "construction workers (0 serial, <0 one per CPU)")
		queryWorkers = flag.Int("queryworkers", 0, "query engine workers (0 serial)")
		deltaS       = flag.Float64("deltas", 0.02, "severity threshold δs")
		maxInflight  = flag.Int("maxinflight", 64, "max concurrent queries before shedding 503s (<=0 unlimited)")
		queryTimeout = flag.Duration("querytimeout", 30*time.Second, "per-query context deadline")
		drain        = flag.Duration("drain", 15*time.Second, "graceful shutdown drain budget")
	)
	flag.Parse()
	os.Exit(run(serveConfig{
		addr: *addr, metricsAddr: *metricsAddr,
		sensors: *sensors, seed: *seed, months: *months, days: *days,
		workers: *workers, queryWorkers: *queryWorkers, deltaS: *deltaS,
		maxInflight: *maxInflight, queryTimeout: *queryTimeout, drain: *drain,
	}))
}

// serveConfig carries the flag values into run.
type serveConfig struct {
	addr, metricsAddr     string
	sensors, months, days int
	seed                  int64
	workers, queryWorkers int
	deltaS                float64
	maxInflight           int
	queryTimeout, drain   time.Duration
	// onListen, when set, is told each listener's bound address — tests
	// bind ":0" and discover the port through it.
	onListen func(name string, addr net.Addr)
}

// run builds the system and serves until a signal arrives or a listener
// fails; the return value is the process exit code.
func run(sc serveConfig) int {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	return serveUntil(ctx, sc)
}

// serveUntil serves until ctx is done (drain and exit 0) or a listener
// fails (exit 1). Split from run so tests drive shutdown with a plain
// context instead of process signals.
func serveUntil(ctx context.Context, sc serveConfig) int {
	obs := atypical.NewObserver()
	cfg := atypical.DefaultConfig()
	cfg.Sensors = sc.sensors
	cfg.Seed = sc.seed
	cfg.DaysPerMonth = sc.days
	cfg.DeltaS = sc.deltaS
	sys, err := atypical.NewSystem(cfg,
		atypical.WithWorkers(sc.workers),
		atypical.WithQueryWorkers(sc.queryWorkers),
		atypical.WithObserver(obs),
	)
	if err != nil {
		log.Printf("atypserve: %v", err)
		return 1
	}

	start := time.Now()
	log.Printf("ingesting %d month(s) of %d days over %d sensors", sc.months, sc.days, sc.sensors)
	sys.IngestMonths(sc.months)
	log.Printf("ingest done in %s", time.Since(start).Round(time.Millisecond))

	// Any listener failing surfaces here and fails the process: serving
	// queries without the operational surface (or vice versa) is a
	// misconfiguration to crash on, not to log and limp through. Binding
	// happens synchronously so a bad address fails startup immediately.
	errc := make(chan error, 2)
	var servers []*http.Server
	start1 := func(name string, srv *http.Server) error {
		ln, err := net.Listen("tcp", srv.Addr)
		if err != nil {
			return fmt.Errorf("%s listener: %w", name, err)
		}
		if sc.onListen != nil {
			sc.onListen(name, ln.Addr())
		}
		servers = append(servers, srv)
		go func() {
			log.Printf("%s on %s", name, ln.Addr())
			if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				errc <- fmt.Errorf("%s listener: %w", name, err)
			}
		}()
		return nil
	}

	bindFailed := func(err error) int {
		log.Printf("atypserve: %v", err)
		for _, srv := range servers {
			srv.Close()
		}
		return 1
	}
	if err := start1("query API", &http.Server{
		Addr:              sc.addr,
		Handler:           newAPIHandler(sys, obs, sc.maxInflight, sc.queryTimeout),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      sc.queryTimeout + 5*time.Second,
		IdleTimeout:       60 * time.Second,
	}); err != nil {
		return bindFailed(err)
	}

	if sc.metricsAddr != "" {
		if err := start1("metrics and pprof", &http.Server{
			Addr:              sc.metricsAddr,
			Handler:           atypical.NewDebugMux(obs),
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       10 * time.Second,
			WriteTimeout:      30 * time.Second,
			IdleTimeout:       60 * time.Second,
		}); err != nil {
			return bindFailed(err)
		}
	}

	code := 0
	select {
	case <-ctx.Done():
		log.Printf("signal received; draining for up to %s", sc.drain)
	case err := <-errc:
		log.Printf("atypserve: %v", err)
		code = 1
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), sc.drain)
	defer cancel()
	for _, srv := range servers {
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("atypserve: shutdown: %v", err)
			code = 1
		}
	}
	return code
}

// newAPIHandler assembles the query API: routing, the load-shed gate, and
// per-request deadlines.
func newAPIHandler(sys *atypical.System, obs *atypical.Observer, maxInflight int, queryTimeout time.Duration) http.Handler {
	mux := http.NewServeMux()
	query := http.Handler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		serveQuery(sys, w, r, queryTimeout)
	}))
	mux.Handle("/query", shedGate(query, maxInflight, obs))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// shedGate caps concurrent requests through next at limit; requests beyond
// the cap are refused immediately with 503 and a Retry-After, keeping
// latency bounded under overload instead of queueing unboundedly. limit <= 0
// disables the gate.
func shedGate(next http.Handler, limit int, obs *atypical.Observer) http.Handler {
	if limit <= 0 {
		return next
	}
	slots := make(chan struct{}, limit)
	shed := obs.Counter("atyp_serve_shed_total",
		"requests refused with 503 by the max-in-flight gate")
	inflight := obs.Gauge("atyp_serve_inflight",
		"requests currently inside the load-shed gate")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case slots <- struct{}{}:
			inflight.Add(1)
			defer func() {
				inflight.Add(-1)
				<-slots
			}()
			next.ServeHTTP(w, r)
		default:
			shed.Inc()
			w.Header().Set("Retry-After", "1")
			http.Error(w, "server at capacity", http.StatusServiceUnavailable)
		}
	})
}

// queryResponse is the JSON shape of one /query answer.
type queryResponse struct {
	Strategy        string        `json:"strategy"`
	FirstDay        int           `json:"first_day"`
	Days            int           `json:"days"`
	CandidateMicros int           `json:"candidate_micros"`
	InputMicros     int           `json:"input_micros"`
	RedZones        int           `json:"red_zones,omitempty"`
	Macros          int           `json:"macros"`
	Significant     int           `json:"significant"`
	ElapsedMS       float64       `json:"elapsed_ms"`
	Clusters        []clusterJSON `json:"clusters"`
}

// clusterJSON summarizes one significant cluster.
type clusterJSON struct {
	ID          uint64  `json:"id"`
	Severity    float64 `json:"severity"`
	Description string  `json:"description"`
}

// serveQuery answers GET /query?strategy=all|pru|gui&from=N&days=N under a
// deadline: a query that outlives it (or the client's disconnect) is
// cancelled through its context and answered 503.
func serveQuery(sys *atypical.System, w http.ResponseWriter, r *http.Request, timeout time.Duration) {
	strat, err := parseStrategy(r.URL.Query().Get("strategy"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	from, err := intParam(r, "from", 0)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	days, err := intParam(r, "days", 7)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ctx := r.Context()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	rep, err := sys.QueryCityCtx(ctx, from, days, strat)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			status = http.StatusServiceUnavailable
		}
		http.Error(w, err.Error(), status)
		return
	}
	resp := queryResponse{
		Strategy:        rep.Strategy.String(),
		FirstDay:        from,
		Days:            days,
		CandidateMicros: rep.CandidateMicros,
		InputMicros:     rep.InputMicros,
		RedZones:        rep.RedZones,
		Macros:          len(rep.Macros),
		Significant:     len(rep.Significant),
		ElapsedMS:       float64(rep.Elapsed) / float64(time.Millisecond),
	}
	for _, c := range rep.Significant {
		resp.Clusters = append(resp.Clusters, clusterJSON{
			ID:          uint64(c.ID),
			Severity:    float64(c.Severity()),
			Description: sys.Describe(c),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(resp); err != nil {
		log.Printf("atypserve: encoding response: %v", err)
	}
}

// intParam parses an optional integer query parameter.
func intParam(r *http.Request, name string, def int) (int, error) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return def, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad %s: %v", name, err)
	}
	return v, nil
}

// parseStrategy maps the query parameter to a Strategy; empty means guided.
func parseStrategy(s string) (atypical.Strategy, error) {
	switch s {
	case "", "gui", "guided":
		return atypical.Guided, nil
	case "all":
		return atypical.IntegrateAll, nil
	case "pru", "pruned":
		return atypical.Pruned, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q (want all, pru or gui)", s)
	}
}
