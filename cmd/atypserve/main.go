// Command atypserve runs the pipeline as a long-lived query server: it
// builds (or generates) a deployment, ingests the requested months, and then
// serves analytical queries over HTTP alongside the operational surface —
// Prometheus-text metrics at /metrics, the pprof suite at /debug/pprof/, and
// the live trace buffer at /debug/traces.
//
// Usage:
//
//	atypserve [-addr :8081] [-metrics :8080]
//	          [-sensors 400] [-seed 42] [-months 1] [-days 30]
//	          [-workers 0] [-queryworkers 0] [-deltas 0.02]
//	          [-maxinflight 64] [-querytimeout 30s] [-drain 15s]
//	          [-logjson] [-traces 256] [-slowquery -1]
//	          [-querylog 256] [-querylogsample 1] [-querylogslow 1s]
//	          [-slo gui=500ms,all=2s] [-sloobjective 0.99]
//	          [-maxsubs 1024] [-subbuffer 64] [-stream] [-streamrate 2000]
//	          [-shards 0] [-shardpeers url,url] [-shardserve k/n]
//
// Endpoints on -addr:
//
//	GET  /query?strategy=gui&from=0&days=7  JSON query report
//	GET  /query?...&explain=1               report plus an "explain" record
//	POST /query                             the same report for a QueryRequest
//	                                        JSON body (see wireQuery); byte-
//	                                        identical to the GET answer
//	GET  /healthz                           liveness probe (always 200)
//	GET  /subscribe?strategy=all&days=7     standing query over the live stream:
//	                                        SSE push events (mode=poll switches
//	                                        to a long-poll session; see below)
//	GET  /readyz                            readiness probe (503 until ingest
//	                                        completes; per-shard lines when
//	                                        sharding is enabled)
//	POST /shard/query                       shard wire protocol (-shardserve only)
//
// Endpoints on -metrics (omit the flag to disable):
//
//	GET /metrics                            Prometheus text format 0.0.4
//	GET /debug/pprof/                       net/http/pprof suite
//	GET /debug/traces                       last -traces finished spans, newest first
//	GET /debug/querylog                     last -querylog flight-recorder wide
//	                                        events, newest first (?format=text
//	                                        for one line per event)
//
// The server is hardened for production traffic: both listeners bind and
// serve before ingestion starts (readiness gates /query with 503 until the
// model is loaded, so orchestrators can route on /readyz while /healthz
// already answers), every query carries a context deadline (-querytimeout),
// at most -maxinflight queries run concurrently (excess requests are shed
// with 503 and counted in atyp_serve_shed_total), and SIGINT/SIGTERM drain
// in-flight requests for up to -drain before exit. A listener that fails to
// bind — the metrics one included — exits the process non-zero instead of
// serving half the surface.
//
// Sharding: -shards n partitions query serving across n in-process shard
// forests (scatter-gather, byte-identical answers). -shardpeers routes the
// candidates stage to remote shard servers instead — processes started with
// -shardserve k/n over the same -sensors/-seed/-days configuration, which
// serve their slice at /shard/query behind the same readiness and shedding
// gates. A peer lost after retry yields an explicitly partial response
// ("partial": true plus failed_shards) and bumps atyp_shard_failures_total.
//
// Standing queries: GET /subscribe registers the request as a standing query
// and pushes incremental answers the moment a macro-cluster's significant set
// changes — as Server-Sent Events by default, or through a long-poll session
// (mode=poll; the first response carries the session id, later requests
// drain with ?id=...&wait=30s and tear down with &close=1). Slow consumers
// never block ingest: overflowing pushes are dropped, counted in
// atyp_sub_dropped_total, and flagged with a gap marker on the next delivered
// push. -maxsubs caps concurrent subscribers, -subbuffer sizes each push
// buffer, and -stream replays the generated months as a paced live stream
// (-streamrate records/sec) so subscriptions have something to watch.
//
// Logs are structured (internal/obs/olog): every line carries level and
// message keys, and lines emitted under an active span carry trace/span IDs
// for correlation with /debug/traces. Every API request runs under an
// "http.request" span that adopts an inbound W3C traceparent header — a
// coordinator's scatter calls inject the header toward shard servers, so a
// sharded query stitches into one trace across processes — and leaves one
// access-log line (method, path, status, duration, trace_id, partial).
// -querylog arms the per-query flight recorder: one wide event per Run with
// trace ID, canonical key, cache verdict, per-shard timings, stage timings
// and SLO verdict, served at /debug/querylog. -slowquery T arms the
// slow-query log: any query at or above T is logged at WARN with its full
// EXPLAIN record (T=0 logs every query; negative disables). -slo installs
// per-strategy latency objectives surfaced as atyp_slo_burn_rate gauges.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/cpskit/atypical"
	"github.com/cpskit/atypical/internal/obs/olog"
)

func main() {
	var (
		addr         = flag.String("addr", ":8081", "query API listen address")
		metricsAddr  = flag.String("metrics", ":8080", "metrics/pprof listen address (empty disables)")
		sensors      = flag.Int("sensors", 400, "approximate deployment size")
		seed         = flag.Int64("seed", 42, "deployment and workload seed")
		months       = flag.Int("months", 1, "months of synthetic data to ingest at startup")
		days         = flag.Int("days", 30, "days per generated month")
		workers      = flag.Int("workers", 0, "construction workers (0 serial, <0 one per CPU)")
		queryWorkers = flag.Int("queryworkers", 0, "query engine workers (0 serial)")
		deltaS       = flag.Float64("deltas", 0.02, "severity threshold δs")
		maxInflight  = flag.Int("maxinflight", 64, "max concurrent queries before shedding 503s (<=0 unlimited)")
		queryTimeout = flag.Duration("querytimeout", 30*time.Second, "per-query context deadline")
		drain        = flag.Duration("drain", 15*time.Second, "graceful shutdown drain budget")
		logJSON      = flag.Bool("logjson", false, "emit logs as JSON lines instead of key=value text")
		traces       = flag.Int("traces", 256, "finished traces retained for /debug/traces (<=0 disables)")
		slowQuery    = flag.Duration("slowquery", -1, "log queries at or above this latency with their EXPLAIN (0 logs all, <0 disables)")
		queryLog     = flag.Int("querylog", 256, "flight-recorder wide events retained for /debug/querylog (<=0 disables)")
		queryLogN    = flag.Int("querylogsample", 1, "head sampling: record 1 of every N normal queries (slow/error/partial always kept)")
		queryLogSlow = flag.Duration("querylogslow", time.Second, "flight-recorder tail-keep threshold: queries at or above this latency bypass sampling (<=0 keeps tail-keep for errors/partials only)")
		slo          = flag.String("slo", "", "per-strategy latency SLO targets, e.g. gui=500ms,all=2s")
		sloObjective = flag.Float64("sloobjective", 0.99, "fraction of queries that must meet their SLO target")
		queryCache   = flag.Int("querycache", 0, "canonical-keyed answer cache entries (0 disables)")
		maxSubs      = flag.Int("maxsubs", atypical.DefaultMaxSubscribers, "max standing-query subscribers (0 keeps the library default, <0 unlimited)")
		subBuffer    = flag.Int("subbuffer", 0, "per-subscriber push buffer entries (0 keeps the library default)")
		streamLive   = flag.Bool("stream", false, "after ingest, replay the generated months as a live stream feeding /subscribe")
		streamRate   = flag.Int("streamrate", 2000, "live replay pace in records/sec (<=0 unpaced)")
		shards       = flag.Int("shards", 0, "partition query serving across n in-process shards (0 unsharded)")
		shardPeers   = flag.String("shardpeers", "", "comma-separated shard server base URLs (HTTP scatter-gather)")
		shardServe   = flag.String("shardserve", "", "serve shard k of n at /shard/query, e.g. 0/4")
	)
	flag.Parse()
	os.Exit(run(serveConfig{
		addr: *addr, metricsAddr: *metricsAddr,
		sensors: *sensors, seed: *seed, months: *months, days: *days,
		workers: *workers, queryWorkers: *queryWorkers, deltaS: *deltaS,
		maxInflight: *maxInflight, queryTimeout: *queryTimeout, drain: *drain,
		logJSON: *logJSON, traces: *traces, slowQuery: *slowQuery,
		queryLog: *queryLog, queryLogSample: *queryLogN, queryLogSlow: *queryLogSlow,
		slo: *slo, sloObjective: *sloObjective, queryCache: *queryCache,
		maxSubs: *maxSubs, subBuffer: *subBuffer,
		stream: *streamLive, streamRate: *streamRate,
		shards: *shards, shardPeers: *shardPeers, shardServe: *shardServe,
	}))
}

// serveConfig carries the flag values into run.
type serveConfig struct {
	addr, metricsAddr     string
	sensors, months, days int
	seed                  int64
	workers, queryWorkers int
	deltaS                float64
	maxInflight           int
	queryTimeout, drain   time.Duration
	logJSON               bool
	traces                int
	slowQuery             time.Duration
	queryLog              int
	queryLogSample        int
	queryLogSlow          time.Duration
	slo                   string
	sloObjective          float64
	queryCache            int
	maxSubs, subBuffer    int
	stream                bool
	streamRate            int
	shards                int
	shardPeers            string
	shardServe            string
	// onListen, when set, is told each listener's bound address — tests
	// bind ":0" and discover the port through it.
	onListen func(name string, addr net.Addr)
	// logTo overrides the log destination (tests capture it with their own
	// locking); nil means stderr. The server logs from several goroutines,
	// so the writer must tolerate concurrent Write calls.
	logTo io.Writer
}

// run builds the system and serves until a signal arrives or a listener
// fails; the return value is the process exit code.
func run(sc serveConfig) int {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	return serveUntil(ctx, sc)
}

// newLogger builds the process logger on the olog handler: structured
// key=value (or JSON) lines with span correlation.
func newLogger(sc serveConfig) *slog.Logger {
	w := io.Writer(os.Stderr)
	if sc.logTo != nil {
		w = sc.logTo
	}
	return olog.NewWith(w, olog.Options{JSON: sc.logJSON})
}

// parseSLO parses "gui=500ms,all=2s" into per-strategy targets.
func parseSLO(spec string, objective float64) (map[atypical.Strategy]atypical.SLOTarget, error) {
	out := make(map[atypical.Strategy]atypical.SLOTarget)
	if spec == "" {
		return out, nil
	}
	for _, part := range strings.Split(spec, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad -slo entry %q (want strategy=duration)", part)
		}
		strat, err := parseStrategy(name)
		if err != nil {
			return nil, fmt.Errorf("bad -slo entry %q: %v", part, err)
		}
		d, err := time.ParseDuration(val)
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("bad -slo duration %q", val)
		}
		out[strat] = atypical.SLOTarget{Latency: d, Objective: objective}
	}
	return out, nil
}

// serveUntil serves until ctx is done (drain and exit 0) or a listener
// fails (exit 1). Split from run so tests drive shutdown with a plain
// context instead of process signals. Listeners bind and serve before
// ingestion: /healthz and /metrics answer immediately, /readyz and /query
// gate on the background ingest completing.
func serveUntil(ctx context.Context, sc serveConfig) int {
	logger := newLogger(sc)
	reg := atypical.NewObserver()
	atypical.RegisterRuntimeMetrics(reg)

	slos, err := parseSLO(sc.slo, sc.sloObjective)
	if err != nil {
		logger.Error("atypserve: invalid flags", "err", err)
		return 1
	}
	opts := []atypical.Option{
		atypical.WithWorkers(sc.workers),
		atypical.WithQueryWorkers(sc.queryWorkers),
		atypical.WithObserver(reg),
	}
	if sc.queryCache > 0 {
		opts = append(opts, atypical.WithQueryCache(sc.queryCache))
	}
	if sc.maxSubs != 0 {
		opts = append(opts, atypical.WithSubscriptions(sc.maxSubs))
	}
	if sc.subBuffer > 0 {
		opts = append(opts, atypical.WithSubscriptionBuffer(sc.subBuffer))
	}
	var ring *atypical.TraceRing
	if sc.traces > 0 {
		ring = atypical.NewTraceRing(sc.traces)
		opts = append(opts, atypical.WithSpanExporter(ring.Export))
	}
	if sc.queryLog > 0 {
		opts = append(opts, atypical.WithQueryLog(atypical.QueryLogConfig{
			Entries:     sc.queryLog,
			SampleEvery: sc.queryLogSample,
			Slow:        sc.queryLogSlow,
		}))
	}
	for _, strat := range []atypical.Strategy{atypical.IntegrateAll, atypical.Pruned, atypical.Guided} {
		if target, ok := slos[strat]; ok {
			opts = append(opts, atypical.WithQuerySLO(strat, target))
		}
	}
	if sc.shards > 0 {
		opts = append(opts, atypical.WithShards(sc.shards))
	}
	if sc.shardPeers != "" {
		var urls []string
		for _, u := range strings.Split(sc.shardPeers, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
		opts = append(opts, atypical.WithShardServers(urls...))
	}

	cfg := atypical.DefaultConfig()
	cfg.Sensors = sc.sensors
	cfg.Seed = sc.seed
	cfg.DaysPerMonth = sc.days
	cfg.DeltaS = sc.deltaS
	sys, err := atypical.NewSystem(cfg, opts...)
	if err != nil {
		logger.Error("atypserve: building system", "err", err)
		return 1
	}

	var shardHandler http.Handler
	if sc.shardServe != "" {
		k, n, err := parseShardServe(sc.shardServe)
		if err != nil {
			logger.Error("atypserve: invalid flags", "err", err)
			return 1
		}
		if shardHandler, err = sys.ShardHandler(k, n); err != nil {
			logger.Error("atypserve: shard server", "err", err)
			return 1
		}
	}

	// Any listener failing surfaces here and fails the process: serving
	// queries without the operational surface (or vice versa) is a
	// misconfiguration to crash on, not to log and limp through. Binding
	// happens synchronously so a bad address fails startup immediately.
	errc := make(chan error, 2)
	var servers []*http.Server
	start1 := func(name string, srv *http.Server) error {
		ln, err := net.Listen("tcp", srv.Addr)
		if err != nil {
			return fmt.Errorf("%s listener: %w", name, err)
		}
		if sc.onListen != nil {
			sc.onListen(name, ln.Addr())
		}
		servers = append(servers, srv)
		go func() {
			logger.Info("listener up", "name", name, "addr", ln.Addr().String())
			if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				errc <- fmt.Errorf("%s listener: %w", name, err)
			}
		}()
		return nil
	}

	bindFailed := func(err error) int {
		logger.Error("atypserve: startup", "err", err)
		for _, srv := range servers {
			srv.Close()
		}
		return 1
	}
	var exporter atypical.SpanExporter
	if ring != nil {
		exporter = ring.Export
	}
	var ready atomic.Bool
	if err := start1("query API", &http.Server{
		Addr: sc.addr,
		Handler: newAPIHandler(apiConfig{
			sys: sys, obs: reg, ready: &ready, logger: logger,
			maxInflight: sc.maxInflight, queryTimeout: sc.queryTimeout,
			slowQuery: sc.slowQuery, shardHandler: shardHandler,
			exporter: exporter,
		}),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      sc.queryTimeout + 5*time.Second,
		IdleTimeout:       60 * time.Second,
	}); err != nil {
		return bindFailed(err)
	}

	debugMux := atypical.NewDebugMux(reg, ring)
	if qh := sys.QueryLogHandler(); qh != nil {
		debugMux.Handle("/debug/querylog", qh)
	}
	if sc.metricsAddr != "" {
		if err := start1("metrics and pprof", &http.Server{
			Addr:              sc.metricsAddr,
			Handler:           debugMux,
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       10 * time.Second,
			WriteTimeout:      30 * time.Second,
			IdleTimeout:       60 * time.Second,
		}); err != nil {
			return bindFailed(err)
		}
	}

	// Ingest in the background so the listeners answer probes while the
	// model builds; /readyz flips once the last month lands. A shutdown
	// signal cancels the ingest through ctx.
	go func() {
		start := time.Now()
		logger.Info("ingest starting", "months", sc.months, "days", sc.days, "sensors", sc.sensors)
		if _, err := sys.IngestMonthsCtx(ctx, sc.months); err != nil {
			logger.Error("ingest aborted", "err", err)
			return
		}
		logger.Info("ingest done", "elapsed", time.Since(start).Round(time.Millisecond).String())
		ready.Store(true)
		if sc.stream {
			go replayStream(ctx, logger, sys, sc.months, sc.streamRate)
		}
	}()

	code := 0
	select {
	case <-ctx.Done():
		logger.Info("signal received; draining", "budget", sc.drain.String())
	case err := <-errc:
		logger.Error("atypserve: serving", "err", err)
		code = 1
	}

	// The parent ctx is already done here (that's why we are shutting
	// down); WithoutCancel keeps its values without inheriting the
	// cancellation, giving the drain its own deadline.
	shutdownCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), sc.drain)
	defer cancel()
	for _, srv := range servers {
		if err := srv.Shutdown(shutdownCtx); err != nil {
			logger.Error("atypserve: shutdown", "err", err)
			code = 1
		}
	}
	return code
}

// parseShardServe parses the -shardserve value "k/n" into shard index k of
// fan-out n.
func parseShardServe(s string) (k, n int, err error) {
	ks, ns, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf("bad -shardserve %q (want k/n, e.g. 0/4)", s)
	}
	if k, err = strconv.Atoi(ks); err != nil {
		return 0, 0, fmt.Errorf("bad -shardserve index %q: %v", ks, err)
	}
	if n, err = strconv.Atoi(ns); err != nil {
		return 0, 0, fmt.Errorf("bad -shardserve fan-out %q: %v", ns, err)
	}
	return k, n, nil
}

// apiConfig wires the query API handler.
type apiConfig struct {
	sys          *atypical.System
	obs          *atypical.Observer
	ready        *atomic.Bool
	logger       *slog.Logger
	maxInflight  int
	queryTimeout time.Duration
	slowQuery    time.Duration
	// shardHandler, when set, is mounted at atypical.ShardQueryPath behind
	// the readiness and shedding gates (-shardserve role).
	shardHandler http.Handler
	// exporter, when set, receives the middleware's per-request server spans
	// (the -traces ring in production wiring).
	exporter atypical.SpanExporter
}

// newAPIHandler assembles the query API: routing, the readiness gate, the
// load-shed gate, and per-request deadlines.
func newAPIHandler(ac apiConfig) http.Handler {
	mux := http.NewServeMux()
	query := http.Handler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if ac.ready != nil && !ac.ready.Load() {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "warming up: ingest in progress", http.StatusServiceUnavailable)
			return
		}
		serveQuery(ac, w, r)
	}))
	mux.Handle("/query", shedGate(query, ac.maxInflight, ac.obs))
	// Standing-query subscriptions are long-lived: admitting them through the
	// shed gate would let one dashboard pin a query slot for hours, so
	// /subscribe sits outside it — the registry's subscriber cap (-maxsubs)
	// and per-subscriber buffers (-subbuffer) are its admission control.
	polls := newSubStore()
	mux.Handle("/subscribe", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if ac.ready != nil && !ac.ready.Load() {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "warming up: ingest in progress", http.StatusServiceUnavailable)
			return
		}
		serveSubscribe(ac, polls, w, r)
	}))
	if ac.shardHandler != nil {
		sh := http.Handler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if ac.ready != nil && !ac.ready.Load() {
				w.Header().Set("Retry-After", "1")
				http.Error(w, "warming up: ingest in progress", http.StatusServiceUnavailable)
				return
			}
			ac.shardHandler.ServeHTTP(w, r)
		}))
		mux.Handle(atypical.ShardQueryPath, shedGate(sh, ac.maxInflight, ac.obs))
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if ac.ready != nil && !ac.ready.Load() {
			http.Error(w, "ingest in progress", http.StatusServiceUnavailable)
			return
		}
		serveReady(ac, w, r)
	})
	return withObservability(mux, ac.exporter, ac.logger)
}

// serveReady answers /readyz once ingest completed. On a sharded system the
// answer lists every shard's readiness and turns 503 as soon as any shard is
// unreachable, so orchestrators route coordinators only when the whole
// fan-out can answer.
func serveReady(ac apiConfig, w http.ResponseWriter, r *http.Request) {
	sts := ac.sys.ShardsReady(r.Context())
	if len(sts) == 0 {
		fmt.Fprintln(w, "ready")
		return
	}
	var b strings.Builder
	down := 0
	for _, st := range sts {
		if st.Err != nil {
			down++
			fmt.Fprintf(&b, "%s not ready: %v\n", st.Shard, st.Err)
		} else {
			fmt.Fprintf(&b, "%s ready\n", st.Shard)
		}
	}
	if down > 0 {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "%d of %d shards not ready\n%s", down, len(sts), b.String())
		return
	}
	fmt.Fprintf(w, "ready\n%s", b.String())
}

// shedGate caps concurrent requests through next at limit; requests beyond
// the cap are refused immediately with 503 and a Retry-After, keeping
// latency bounded under overload instead of queueing unboundedly. limit <= 0
// disables the gate.
func shedGate(next http.Handler, limit int, obs *atypical.Observer) http.Handler {
	if limit <= 0 {
		return next
	}
	slots := make(chan struct{}, limit)
	shed := obs.Counter("atyp_serve_shed_total",
		"requests refused with 503 by the max-in-flight gate")
	inflight := obs.Gauge("atyp_serve_inflight",
		"requests currently inside the load-shed gate")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case slots <- struct{}{}:
			inflight.Add(1)
			defer func() {
				inflight.Add(-1)
				<-slots
			}()
			next.ServeHTTP(w, r)
		default:
			shed.Inc()
			w.Header().Set("Retry-After", "1")
			http.Error(w, "server at capacity", http.StatusServiceUnavailable)
		}
	})
}

// queryResponse is the JSON shape of one /query answer. Explain is the
// explain=1 side channel: absent (omitempty) unless requested, so the
// report bytes without it are identical to the pre-EXPLAIN server's.
// Partial/FailedShards likewise only appear on degraded sharded answers.
type queryResponse struct {
	Strategy        string            `json:"strategy"`
	FirstDay        int               `json:"first_day"`
	Days            int               `json:"days"`
	CandidateMicros int               `json:"candidate_micros"`
	InputMicros     int               `json:"input_micros"`
	RedZones        int               `json:"red_zones,omitempty"`
	Macros          int               `json:"macros"`
	Significant     int               `json:"significant"`
	ElapsedMS       float64           `json:"elapsed_ms"`
	Partial         bool              `json:"partial,omitempty"`
	FailedShards    []string          `json:"failed_shards,omitempty"`
	Clusters        []clusterJSON     `json:"clusters"`
	Explain         *atypical.Explain `json:"explain,omitempty"`
}

// clusterJSON summarizes one significant cluster.
type clusterJSON struct {
	ID          uint64  `json:"id"`
	Severity    float64 `json:"severity"`
	Description string  `json:"description"`
}

// wireQuery is the QueryRequest JSON accepted on POST /query. Absent fields
// take the GET defaults (strategy gui, from 0, days 7), so the same logical
// query answers byte-identically whichever way it arrives.
type wireQuery struct {
	Strategy string   `json:"strategy"`
	FirstDay int      `json:"first_day"`
	Days     *int     `json:"days"`
	Box      *wireBox `json:"box"`
	DeltaS   float64  `json:"delta_s"`
	Explain  bool     `json:"explain"`
	// AllowPartial defaults to true when absent: a serving coordinator that
	// lost a shard should answer with the explicitly flagged partial report,
	// not a hard error. Send false to refuse degraded answers (503).
	AllowPartial *bool `json:"allow_partial"`
	BypassShards bool  `json:"bypass_shards"`
}

// wireBox is the optional geographic scope of a POST query.
type wireBox struct {
	MinLat float64 `json:"min_lat"`
	MinLon float64 `json:"min_lon"`
	MaxLat float64 `json:"max_lat"`
	MaxLon float64 `json:"max_lon"`
}

// maxQueryBody bounds the POST /query body size.
const maxQueryBody = 1 << 20

// parseQueryRequest builds the facade QueryRequest from either the GET query
// parameters or a POST wireQuery body. Both default to AllowPartial — the
// flagged degraded answer — and the whole-city scope unless POST sends a box.
func parseQueryRequest(r *http.Request) (atypical.QueryRequest, error) {
	if r.Method == http.MethodPost {
		var wq wireQuery
		dec := json.NewDecoder(io.LimitReader(r.Body, maxQueryBody))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&wq); err != nil {
			return atypical.QueryRequest{}, fmt.Errorf("bad request body: %v", err)
		}
		strat, err := parseStrategy(wq.Strategy)
		if err != nil {
			return atypical.QueryRequest{}, err
		}
		req := atypical.QueryRequest{
			FirstDay:     wq.FirstDay,
			Days:         7,
			DeltaS:       wq.DeltaS,
			Strategy:     strat,
			Explain:      wq.Explain,
			AllowPartial: true,
			BypassShards: wq.BypassShards,
		}
		if wq.Days != nil {
			req.Days = *wq.Days
		}
		if wq.AllowPartial != nil {
			req.AllowPartial = *wq.AllowPartial
		}
		if wq.Box != nil {
			req.Box = &atypical.BBox{
				Min: atypical.Point{Lat: wq.Box.MinLat, Lon: wq.Box.MinLon},
				Max: atypical.Point{Lat: wq.Box.MaxLat, Lon: wq.Box.MaxLon},
			}
		}
		return req, nil
	}
	strat, err := parseStrategy(r.URL.Query().Get("strategy"))
	if err != nil {
		return atypical.QueryRequest{}, err
	}
	from, err := intParam(r, "from", 0)
	if err != nil {
		return atypical.QueryRequest{}, err
	}
	days, err := intParam(r, "days", 7)
	if err != nil {
		return atypical.QueryRequest{}, err
	}
	wantExplain := false
	switch v := r.URL.Query().Get("explain"); v {
	case "", "0", "false":
	case "1", "true":
		wantExplain = true
	default:
		return atypical.QueryRequest{}, fmt.Errorf("bad explain: %q (want 0 or 1)", v)
	}
	return atypical.QueryRequest{
		FirstDay: from, Days: days, Strategy: strat,
		Explain: wantExplain, AllowPartial: true,
	}, nil
}

// serveQuery answers GET /query?strategy=all|pru|gui&from=N&days=N — or the
// same query as a POST QueryRequest body — under a deadline: a query that
// outlives it (or the client's disconnect) is cancelled through its context
// and answered 503. explain=1 attaches the run's EXPLAIN record; an armed
// -slowquery threshold collects EXPLAIN for every run and logs offenders at
// WARN. Both methods funnel into System.Run, so they answer byte-identically.
func serveQuery(ac apiConfig, w http.ResponseWriter, r *http.Request) {
	req, err := parseQueryRequest(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ctx := r.Context()
	if ac.queryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, ac.queryTimeout)
		defer cancel()
	}

	slowArmed := ac.slowQuery >= 0
	wantExplain := req.Explain
	req.Explain = wantExplain || slowArmed
	res, err := ac.sys.Run(ctx, req)
	if err != nil {
		if errors.Is(err, atypical.ErrInvalidRequest) {
			writeRequestError(w, err)
			return
		}
		status := http.StatusInternalServerError
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) ||
			errors.Is(err, atypical.ErrPartialResult) {
			status = http.StatusServiceUnavailable
		}
		if errors.Is(err, atypical.ErrPartialResult) {
			if rec := accessRecordFrom(ctx); rec != nil {
				rec.partial.Store(true)
			}
		}
		http.Error(w, err.Error(), status)
		return
	}
	rep, exp := res.Report, res.Explain
	if rep.Partial {
		if rec := accessRecordFrom(ctx); rec != nil {
			rec.partial.Store(true)
		}
	}
	if slowArmed && rep.Elapsed >= ac.slowQuery {
		attrs := []any{
			"strategy", rep.Strategy.String(),
			"from", req.FirstDay, "days", req.Days,
			"elapsed", rep.Elapsed.String(),
			"threshold", ac.slowQuery.String(),
		}
		if data, jerr := json.Marshal(exp); jerr == nil {
			attrs = append(attrs, "explain", string(data))
		}
		ac.logger.WarnContext(ctx, "slow query", attrs...)
	}

	resp := queryResponse{
		Strategy:        rep.Strategy.String(),
		FirstDay:        req.FirstDay,
		Days:            req.Days,
		CandidateMicros: rep.CandidateMicros,
		InputMicros:     rep.InputMicros,
		RedZones:        rep.RedZones,
		Macros:          len(rep.Macros),
		Significant:     len(rep.Significant),
		ElapsedMS:       float64(rep.Elapsed) / float64(time.Millisecond),
		Partial:         rep.Partial,
		FailedShards:    rep.FailedShards,
	}
	if wantExplain {
		resp.Explain = exp
	}
	for _, c := range rep.Significant {
		resp.Clusters = append(resp.Clusters, clusterJSON{
			ID:          uint64(c.ID),
			Severity:    float64(c.Severity()),
			Description: ac.sys.Describe(c),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(resp); err != nil {
		ac.logger.Error("encoding response", "err", err)
	}
}

// requestErrorJSON is the structured 400 body for a request that failed
// QueryRequest.Validate: a stable machine-matchable code plus the full error
// text naming the offending field.
type requestErrorJSON struct {
	Error  string `json:"error"`
	Detail string `json:"detail"`
}

// writeRequestError answers a malformed QueryRequest with HTTP 400 and a
// structured JSON body, so clients can branch on the code instead of
// string-matching the detail.
func writeRequestError(w http.ResponseWriter, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusBadRequest)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(requestErrorJSON{Error: "invalid_request", Detail: err.Error()})
}

// intParam parses an optional integer query parameter.
func intParam(r *http.Request, name string, def int) (int, error) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return def, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad %s: %v", name, err)
	}
	return v, nil
}

// parseStrategy maps the query parameter to a Strategy; empty means guided.
func parseStrategy(s string) (atypical.Strategy, error) {
	switch s {
	case "", "gui", "guided":
		return atypical.Guided, nil
	case "all":
		return atypical.IntegrateAll, nil
	case "pru", "pruned":
		return atypical.Pruned, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q (want all, pru or gui)", s)
	}
}
