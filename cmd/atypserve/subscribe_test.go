package main

import (
	"bufio"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/cpskit/atypical"
)

// newSubTestServer builds a ready API handler over a real system, so the
// subscribe surface is exercised against genuine subscriptions and pushes.
func newSubTestServer(t *testing.T, opts ...atypical.Option) (*atypical.System, *httptest.Server) {
	t.Helper()
	cfg := atypical.DefaultConfig()
	cfg.Sensors = 40
	cfg.Seed = 11
	cfg.DaysPerMonth = 7
	sys, err := atypical.NewSystem(cfg, opts...)
	if err != nil {
		t.Fatal(err)
	}
	var ready atomic.Bool
	ready.Store(true)
	var logs lockedBuffer
	ts := httptest.NewServer(newAPIHandler(apiConfig{
		sys: sys, obs: atypical.NewObserver(), ready: &ready,
		logger: newLogger(serveConfig{logTo: &logs}),
	}))
	t.Cleanup(ts.Close)
	return sys, ts
}

// driveStream replays the first days of month 0 through a stream processor,
// which feeds every registered subscription.
func driveStream(t *testing.T, sys *atypical.System, days int) {
	t.Helper()
	p, err := sys.NewStreamProcessor(func(*atypical.Cluster) {})
	if err != nil {
		t.Fatal(err)
	}
	limit := atypical.Window(days) * atypical.Window(sys.Spec().PerDay())
	var recs []atypical.Record
	for _, r := range sys.GenerateMonth(0).Atypical.Records() {
		if r.Window < limit {
			recs = append(recs, r)
		}
	}
	if err := p.ObserveAll(context.Background(), recs); err != nil {
		t.Fatal(err)
	}
	p.Flush()
}

// readSSEEvent reads one complete SSE event (heartbeat comments skipped).
func readSSEEvent(t *testing.T, br *bufio.Reader) (event, data string) {
	t.Helper()
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("reading SSE stream: %v", err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if event != "" || data != "" {
				return event, data
			}
		case strings.HasPrefix(line, ":"):
			// heartbeat comment
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		}
	}
}

// waitActiveSubs polls until the system reports n active subscriptions.
func waitActiveSubs(t *testing.T, sys *atypical.System, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if sys.ActiveSubscriptions() == n {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("ActiveSubscriptions = %d, want %d", sys.ActiveSubscriptions(), n)
}

// TestSubscribeSSE opens a standing query over SSE, drives a stream behind
// it, and checks a well-formed push event arrives; closing the connection
// must release the subscriber slot.
func TestSubscribeSSE(t *testing.T) {
	sys, ts := newSubTestServer(t, atypical.WithSubscriptionBuffer(1<<12))

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET",
		ts.URL+"/subscribe?strategy=all&days=7&deltas=0.0005", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subscribe status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}

	br := bufio.NewReader(resp.Body)
	event, data := readSSEEvent(t, br)
	if event != "subscribed" {
		t.Fatalf("first event = %q, want subscribed", event)
	}
	var hello struct {
		Subscription uint64 `json:"subscription"`
	}
	if err := json.Unmarshal([]byte(data), &hello); err != nil || hello.Subscription == 0 {
		t.Fatalf("subscribed event data %q: err=%v", data, err)
	}

	driveStream(t, sys, 7)

	event, data = readSSEEvent(t, br)
	if event != "push" {
		t.Fatalf("second event = %q, want push", event)
	}
	var p pushJSON
	if err := json.Unmarshal([]byte(data), &p); err != nil {
		t.Fatalf("push event not JSON: %v\n%s", err, data)
	}
	if p.Seq == 0 || p.Component == 0 || p.TsUnixNS <= 0 {
		t.Errorf("push missing bookkeeping: %+v", p)
	}
	if p.Gap {
		t.Error("gap marker on a drop-free stream")
	}
	if p.Clusters == nil {
		t.Error("push clusters serialized as null, want []")
	}

	resp.Body.Close()
	waitActiveSubs(t, sys, 0)
}

// TestSubscribeLongPoll exercises the mode=poll session lifecycle: register,
// drain after a stream, explicit close, and the 404 on a dead id.
func TestSubscribeLongPoll(t *testing.T) {
	sys, ts := newSubTestServer(t, atypical.WithSubscriptionBuffer(1<<12))

	getPoll := func(params string) (int, pollResponse) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/subscribe?mode=poll" + params)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var pr pollResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
				t.Fatalf("poll response not JSON: %v", err)
			}
		}
		return resp.StatusCode, pr
	}

	code, pr := getPoll("&strategy=pru&days=7&deltas=0.0005")
	if code != http.StatusOK || pr.ID == "" {
		t.Fatalf("poll register: status %d, id %q", code, pr.ID)
	}
	if len(pr.Pushes) != 0 || pr.Pushes == nil {
		t.Fatalf("fresh session pushes = %v, want empty non-nil", pr.Pushes)
	}
	waitActiveSubs(t, sys, 1)

	driveStream(t, sys, 7)

	code, drained := getPoll("&id=" + pr.ID + "&wait=10s")
	if code != http.StatusOK {
		t.Fatalf("poll drain status = %d", code)
	}
	if len(drained.Pushes) == 0 {
		t.Fatal("poll after stream returned no pushes")
	}
	for i := 1; i < len(drained.Pushes); i++ {
		if drained.Pushes[i].Seq <= drained.Pushes[i-1].Seq {
			t.Fatalf("push seqs not increasing: %d then %d",
				drained.Pushes[i-1].Seq, drained.Pushes[i].Seq)
		}
	}
	if drained.Dropped != 0 {
		t.Errorf("drops on an oversized buffer: %d", drained.Dropped)
	}

	code, closed := getPoll("&id=" + pr.ID + "&close=1")
	if code != http.StatusOK || !closed.Closed {
		t.Fatalf("poll close: status %d, closed %v", code, closed.Closed)
	}
	waitActiveSubs(t, sys, 0)

	if code, _ := getPoll("&id=" + pr.ID); code != http.StatusNotFound {
		t.Fatalf("poll on closed id: status %d, want 404", code)
	}
}

// TestSubscribeValidation covers the request-side failure modes of the
// /subscribe surface.
func TestSubscribeValidation(t *testing.T) {
	_, ts := newSubTestServer(t)
	status := func(params string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/subscribe" + params)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := bufio.NewReader(resp.Body)
		for {
			line, err := buf.ReadString('\n')
			b.WriteString(line)
			if err != nil {
				break
			}
		}
		return resp.StatusCode, b.String()
	}

	if code, _ := status("?strategy=bogus"); code != http.StatusBadRequest {
		t.Errorf("bogus strategy: %d, want 400", code)
	}
	if code, body := status("?strategy=gui"); code != http.StatusBadRequest ||
		!strings.Contains(body, "invalid_request") {
		t.Errorf("gui strategy: %d %q, want 400 invalid_request", code, body)
	}
	if code, body := status("?days=0"); code != http.StatusBadRequest ||
		!strings.Contains(body, "invalid_request") {
		t.Errorf("zero days: %d %q, want 400 invalid_request", code, body)
	}
	if code, _ := status("?deltas=abc"); code != http.StatusBadRequest {
		t.Errorf("bad deltas: %d, want 400", code)
	}
	if code, _ := status("?mode=carrier-pigeon"); code != http.StatusBadRequest {
		t.Errorf("bad mode: %d, want 400", code)
	}
	if code, _ := status("?mode=poll&strategy=all&wait=fast"); code != http.StatusBadRequest {
		t.Errorf("bad wait: %d, want 400", code)
	}

	resp, err := http.Post(ts.URL+"/subscribe", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /subscribe: %d, want 405", resp.StatusCode)
	}
}

// TestSubscribeNotReady checks /subscribe gates on readiness like /query.
func TestSubscribeNotReady(t *testing.T) {
	var ready atomic.Bool // stays false
	var logs lockedBuffer
	h := newAPIHandler(apiConfig{
		ready: &ready, logger: newLogger(serveConfig{logTo: &logs}),
	})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/subscribe", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("subscribe before ready = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("warming-up 503 missing Retry-After")
	}
}

// TestSubscribeCap checks the registry cap surfaces as a retryable 503.
func TestSubscribeCap(t *testing.T) {
	sys, ts := newSubTestServer(t, atypical.WithSubscriptions(1))

	resp, err := http.Get(ts.URL + "/subscribe?mode=poll&strategy=all")
	if err != nil {
		t.Fatal(err)
	}
	var pr pollResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitActiveSubs(t, sys, 1)

	over, err := http.Get(ts.URL + "/subscribe?mode=poll&strategy=all")
	if err != nil {
		t.Fatal(err)
	}
	over.Body.Close()
	if over.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-cap subscribe: %d, want 503", over.StatusCode)
	}
	if over.Header.Get("Retry-After") == "" {
		t.Error("over-cap 503 missing Retry-After")
	}
}

// TestServeUntilStreamSubscribe boots the full server with -stream and
// checks a live SSE subscription receives pushes from the replay driver.
func TestServeUntilStreamSubscribe(t *testing.T) {
	addrs := make(map[string]string)
	var mu sync.Mutex
	var logs lockedBuffer
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan int, 1)
	go func() {
		done <- serveUntil(ctx, serveConfig{
			addr:        "127.0.0.1:0",
			metricsAddr: "127.0.0.1:0",
			sensors:     30, seed: 7, months: 1, days: 7, deltaS: 0.02,
			maxInflight: 4, queryTimeout: 10 * time.Second, drain: 5 * time.Second,
			slowQuery: -1, subBuffer: 1 << 12,
			stream: true, streamRate: 0,
			onListen: func(name string, a net.Addr) {
				mu.Lock()
				addrs[name] = a.String()
				mu.Unlock()
			},
			logTo: &logs,
		})
	}()

	api := waitForAddr(t, &mu, addrs, "query API")
	metrics := waitForAddr(t, &mu, addrs, "metrics and pprof")
	waitForReady(t, "http://"+api+"/readyz")

	sctx, scancel := context.WithTimeout(ctx, 60*time.Second)
	defer scancel()
	req, err := http.NewRequestWithContext(sctx, "GET",
		"http://"+api+"/subscribe?strategy=all&days=7&deltas=0.0005", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subscribe status = %d, want 200", resp.StatusCode)
	}
	br := bufio.NewReader(resp.Body)
	if event, _ := readSSEEvent(t, br); event != "subscribed" {
		t.Fatalf("first event = %q, want subscribed", event)
	}
	// The replay driver cycles the generated month forever, so a push must
	// eventually arrive without the test driving anything itself.
	for {
		event, data := readSSEEvent(t, br)
		if event != "push" {
			continue
		}
		var p pushJSON
		if err := json.Unmarshal([]byte(data), &p); err != nil {
			t.Fatalf("push event not JSON: %v\n%s", err, data)
		}
		if p.TsUnixNS <= 0 || p.Seq == 0 {
			t.Fatalf("push missing bookkeeping: %+v", p)
		}
		break
	}
	resp.Body.Close()

	// The subscription metrics made it to the operational surface.
	mbody := string(getOK(t, "http://"+metrics+"/metrics"))
	if !strings.Contains(mbody, "atyp_sub_pushes_total") || !strings.Contains(mbody, "atyp_sub_active") {
		t.Errorf("subscription metrics missing from /metrics:\n%.400s", mbody)
	}

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("serveUntil exit code = %d, want 0", code)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serveUntil did not drain after cancel")
	}
}
