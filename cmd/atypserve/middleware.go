package main

// Request observability middleware: every API request runs under an
// "http.request" server span that adopts an inbound traceparent header (so
// a coordinator's scatter and a client's query stitch into one trace across
// processes), and leaves exactly one structured access-log line — method,
// path, status, duration, trace ID, and the shard-partial flag — so failed
// and shed requests leave a record, not only slow queries.

import (
	"context"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"github.com/cpskit/atypical"
)

// statusWriter records the response status for the access log. It forwards
// Flush and exposes Unwrap so the SSE path's http.Flusher assertion and
// http.NewResponseController (per-write deadlines) still reach the real
// ResponseWriter through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// accessRecord carries handler-level facts back to the access-log line; the
// query handler stamps the partial flag on degraded sharded answers.
type accessRecord struct {
	partial atomic.Bool
}

type accessRecordKey struct{}

// accessRecordFrom returns the request's access record, or nil outside the
// middleware (direct handler tests).
func accessRecordFrom(ctx context.Context) *accessRecord {
	rec, _ := ctx.Value(accessRecordKey{}).(*accessRecord)
	return rec
}

// withObservability wraps the API mux with the tracing and access-log
// middleware. A nil exporter still extracts inbound traceparents (so flight
// events carry the caller's trace ID) but starts no spans.
func withObservability(next http.Handler, exporter atypical.SpanExporter, logger *slog.Logger) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ctx := atypical.ExtractTraceparent(r.Context(), r.Header)
		if exporter != nil {
			ctx = atypical.WithSpanContext(ctx, exporter)
		}
		ctx, sp := atypical.StartSpan(ctx, "http.request")
		sp.SetAttr("method", r.Method)
		sp.SetAttr("path", r.URL.Path)
		rec := &accessRecord{}
		ctx = context.WithValue(ctx, accessRecordKey{}, rec)

		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r.WithContext(ctx))

		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		sp.SetAttr("status", strconv.Itoa(status))
		sp.End()

		attrs := []any{
			"method", r.Method,
			"path", r.URL.Path,
			"status", status,
			"duration", time.Since(start).String(),
		}
		if sp != nil {
			attrs = append(attrs, "trace_id", sp.TraceHex())
		}
		if rec.partial.Load() {
			attrs = append(attrs, "partial", true)
		}
		logger.InfoContext(ctx, "request", attrs...)
	})
}
