package main

// Cross-process trace-stitch smoke: two shard servers plus a coordinator,
// one sharded query, and the assertion the whole PR hangs together — the
// coordinator's trace shows the scatter, each shard server shows a span
// adopted from the coordinator's traceparent under the SAME trace ID, and
// the coordinator's flight recorder holds the matching wide event. `make
// trace-stitch` runs exactly this test as a CI gate.

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// stitchTrace mirrors the /debug/traces wire shape.
type stitchTrace struct {
	Trace string `json:"trace"`
	Root  struct {
		Name  string            `json:"name"`
		Attrs map[string]string `json:"attrs"`
	} `json:"root"`
	Children []struct {
		Name string `json:"name"`
	} `json:"children"`
}

// stitchEvent mirrors the /debug/querylog wire shape.
type stitchEvent struct {
	Kind     string `json:"kind"`
	TraceID  string `json:"trace_id"`
	Key      string `json:"key"`
	Strategy string `json:"strategy"`
	Cache    string `json:"cache"`
	Shards   []struct {
		Name       string `json:"name"`
		DurationNS int64  `json:"duration_ns"`
	} `json:"shards"`
	Stages []struct {
		Name string `json:"name"`
	} `json:"stages"`
}

// stitchServer is one booted serveUntil instance.
type stitchServer struct {
	api, metrics string
	cancel       context.CancelFunc
	done         chan int
}

// bootStitchServer starts serveUntil on ephemeral ports with the shared
// deployment configuration, mutated per role, and waits for both listeners.
func bootStitchServer(t *testing.T, mutate func(*serveConfig)) *stitchServer {
	t.Helper()
	addrs := make(map[string]string)
	var mu sync.Mutex
	var logs lockedBuffer
	sc := serveConfig{
		addr:        "127.0.0.1:0",
		metricsAddr: "127.0.0.1:0",
		sensors:     30, seed: 7, months: 1, days: 7, deltaS: 0.02,
		maxInflight: 4, queryTimeout: 10 * time.Second, drain: 5 * time.Second,
		traces: 32, slowQuery: -1,
		onListen: func(name string, a net.Addr) {
			mu.Lock()
			addrs[name] = a.String()
			mu.Unlock()
		},
		logTo: &logs,
	}
	mutate(&sc)
	ctx, cancel := context.WithCancel(context.Background())
	s := &stitchServer{cancel: cancel, done: make(chan int, 1)}
	go func() { s.done <- serveUntil(ctx, sc) }()
	s.api = waitForAddr(t, &mu, addrs, "query API")
	s.metrics = waitForAddr(t, &mu, addrs, "metrics and pprof")
	return s
}

// stop cancels the server and waits for its drain.
func (s *stitchServer) stop(t *testing.T) {
	t.Helper()
	s.cancel()
	select {
	case code := <-s.done:
		if code != 0 {
			t.Errorf("serveUntil exit code = %d, want 0", code)
		}
	case <-time.After(10 * time.Second):
		t.Error("serveUntil did not drain after cancel")
	}
}

// TestTraceStitch boots a 2-shard server pair and a coordinator scattering
// to them over HTTP, serves one query through the coordinator, and asserts
// one stitched trace: coordinator root with shard.query children, remote
// continuation spans on both shard servers under the coordinator's trace ID,
// and a flight-recorder wide event carrying that same trace ID, the
// canonical key, the cache verdict, and both shard timings.
func TestTraceStitch(t *testing.T) {
	shard0 := bootStitchServer(t, func(sc *serveConfig) { sc.shardServe = "0/2" })
	defer shard0.stop(t)
	shard1 := bootStitchServer(t, func(sc *serveConfig) { sc.shardServe = "1/2" })
	defer shard1.stop(t)
	waitForReady(t, "http://"+shard0.api+"/readyz")
	waitForReady(t, "http://"+shard1.api+"/readyz")

	coord := bootStitchServer(t, func(sc *serveConfig) {
		sc.shardPeers = "http://" + shard0.api + ",http://" + shard1.api
		sc.queryLog = 64
		sc.queryLogSample = 1
		sc.queryLogSlow = time.Second
	})
	defer coord.stop(t)
	waitForReady(t, "http://"+coord.api+"/readyz")

	getOK(t, "http://"+coord.api+"/query?strategy=all&from=0&days=7")

	// The coordinator trace: one http.request root whose flat child list
	// carries the engine's query.run and the scatter's per-shard spans.
	var coordTrace string
	waitFor(t, "coordinator trace with shard.query children", func() bool {
		var traces []stitchTrace
		mustJSON(t, "http://"+coord.metrics+"/debug/traces", &traces)
		for _, tr := range traces {
			if tr.Root.Name != "http.request" || tr.Root.Attrs["path"] != "/query" {
				continue
			}
			var shardCalls int
			var sawRun bool
			for _, c := range tr.Children {
				if c.Name == "shard.query" {
					shardCalls++
				}
				if c.Name == "query.run" {
					sawRun = true
				}
			}
			if sawRun && shardCalls == 2 {
				coordTrace = tr.Trace
				return true
			}
		}
		return false
	})

	// Each shard server continued the coordinator's trace: a span published
	// as a local root (its parent lives in the coordinator) under the SAME
	// trace ID.
	for i, s := range []*stitchServer{shard0, shard1} {
		s := s
		waitFor(t, fmt.Sprintf("shard %d trace continuation", i), func() bool {
			var traces []stitchTrace
			mustJSON(t, "http://"+s.metrics+"/debug/traces", &traces)
			for _, tr := range traces {
				if tr.Trace == coordTrace {
					return true
				}
			}
			return false
		})
	}

	// The flight recorder holds the matching wide event.
	var events []stitchEvent
	mustJSON(t, "http://"+coord.metrics+"/debug/querylog", &events)
	var ev *stitchEvent
	for i := range events {
		if events[i].Kind == "query" && events[i].TraceID == coordTrace {
			ev = &events[i]
			break
		}
	}
	if ev == nil {
		t.Fatalf("/debug/querylog has no query event with trace %s: %+v", coordTrace, events)
	}
	if ev.Key == "" {
		t.Error("wide event missing canonical key")
	}
	if ev.Cache != "off" {
		t.Errorf("wide event cache verdict = %q, want off (no -querycache)", ev.Cache)
	}
	if !strings.EqualFold(ev.Strategy, "all") {
		t.Errorf("wide event strategy = %q, want all", ev.Strategy)
	}
	if len(ev.Shards) != 2 {
		t.Fatalf("wide event has %d shard calls, want 2: %+v", len(ev.Shards), ev.Shards)
	}
	for _, sc := range ev.Shards {
		if sc.DurationNS <= 0 {
			t.Errorf("shard %s call has no duration", sc.Name)
		}
	}
	if len(ev.Stages) == 0 {
		t.Error("wide event has no stage timings")
	}

	// The text rendering serves the same event one line per record.
	text := string(getOK(t, "http://"+coord.metrics+"/debug/querylog?format=text"))
	if !strings.Contains(text, coordTrace) {
		t.Errorf("?format=text missing trace %s:\n%s", coordTrace, text)
	}
}

// waitFor polls cond until true or the deadline fails the test. The
// coordinator's root span publishes after the response body is written, so
// the first /debug/traces read may race the middleware's End.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// mustJSON fetches url and decodes its JSON body.
func mustJSON(t *testing.T, url string, into any) {
	t.Helper()
	body := getOK(t, url)
	if err := json.Unmarshal(body, into); err != nil {
		t.Fatalf("GET %s: not JSON: %v\n%s", url, err, body)
	}
}
