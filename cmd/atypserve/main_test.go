package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/cpskit/atypical"
)

// TestShedGate fills the single slot with a blocked request and checks the
// next one is refused with 503 instead of queueing.
func TestShedGate(t *testing.T) {
	obs := atypical.NewObserver()
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	h := shedGate(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		entered <- struct{}{}
		<-release
		w.WriteHeader(http.StatusOK)
	}), 1, obs)

	first := httptest.NewRecorder()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		h.ServeHTTP(first, httptest.NewRequest("GET", "/query", nil))
	}()
	<-entered

	second := httptest.NewRecorder()
	h.ServeHTTP(second, httptest.NewRequest("GET", "/query", nil))
	if second.Code != http.StatusServiceUnavailable {
		t.Fatalf("overflow request: got %d, want 503", second.Code)
	}
	if second.Header().Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}

	close(release)
	wg.Wait()
	if first.Code != http.StatusOK {
		t.Fatalf("admitted request: got %d, want 200", first.Code)
	}
	var exposed strings.Builder
	if _, err := obs.WriteTo(&exposed); err != nil {
		t.Fatalf("exposing metrics: %v", err)
	}
	if !strings.Contains(exposed.String(), "atyp_serve_shed_total 1") {
		t.Errorf("shed counter not exposed:\n%s", exposed.String())
	}

	// After the slot frees, the next request is admitted again.
	third := httptest.NewRecorder()
	h.ServeHTTP(third, httptest.NewRequest("GET", "/query", nil))
	if third.Code != http.StatusOK {
		t.Fatalf("post-release request: got %d, want 200", third.Code)
	}
}

// TestShedGateUnlimited checks limit <= 0 disables the gate entirely.
func TestShedGateUnlimited(t *testing.T) {
	obs := atypical.NewObserver()
	inner := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {})
	if got := shedGate(inner, 0, obs); fmt.Sprintf("%T", got) != fmt.Sprintf("%T", inner) {
		t.Fatalf("limit 0 should return next unchanged, got %T", got)
	}
}

// TestServeUntil boots the full server on ephemeral ports, exercises the
// query and operational surfaces, then cancels the context and checks the
// drain path exits zero.
func TestServeUntil(t *testing.T) {
	addrs := make(map[string]string)
	var mu sync.Mutex
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan int, 1)
	go func() {
		done <- serveUntil(ctx, serveConfig{
			addr:        "127.0.0.1:0",
			metricsAddr: "127.0.0.1:0",
			sensors:     30, seed: 7, months: 1, days: 7,
			maxInflight: 4, queryTimeout: 10 * time.Second, drain: 5 * time.Second,
			onListen: func(name string, a net.Addr) {
				mu.Lock()
				addrs[name] = a.String()
				mu.Unlock()
			},
		})
	}()

	api := waitForAddr(t, &mu, addrs, "query API")
	metrics := waitForAddr(t, &mu, addrs, "metrics and pprof")

	body := getOK(t, "http://"+api+"/query?strategy=all&from=0&days=7")
	var resp queryResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("query response not JSON: %v\n%s", err, body)
	}
	if !strings.EqualFold(resp.Strategy, "all") || resp.Days != 7 {
		t.Errorf("query strategy/days = %q/%d, want all/7", resp.Strategy, resp.Days)
	}

	if r, err := http.Get("http://" + api + "/query?strategy=bogus"); err != nil {
		t.Fatalf("bad-strategy request: %v", err)
	} else {
		r.Body.Close()
		if r.StatusCode != http.StatusBadRequest {
			t.Errorf("bad strategy: got %d, want 400", r.StatusCode)
		}
	}

	if got := string(getOK(t, "http://"+api+"/healthz")); !strings.Contains(got, "ok") {
		t.Errorf("healthz = %q, want ok", got)
	}
	if got := string(getOK(t, "http://"+metrics+"/metrics")); !strings.Contains(got, "atyp_ingest_records_total") {
		t.Errorf("metrics surface missing ingest counter:\n%.400s", got)
	}

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("serveUntil exit code = %d, want 0", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serveUntil did not drain after cancel")
	}
}

// TestServeUntilBindFailure occupies a port and points the metrics listener
// at it: the process must exit non-zero instead of serving only the API.
func TestServeUntilBindFailure(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	code := serveUntil(context.Background(), serveConfig{
		addr:        "127.0.0.1:0",
		metricsAddr: ln.Addr().String(),
		sensors:     30, seed: 7, months: 1, days: 7,
		maxInflight: 4, queryTimeout: time.Second, drain: time.Second,
	})
	if code != 1 {
		t.Fatalf("exit code with unbindable metrics address = %d, want 1", code)
	}
}

func waitForAddr(t *testing.T, mu *sync.Mutex, addrs map[string]string, name string) string {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		a, ok := addrs[name]
		mu.Unlock()
		if ok {
			return a
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("listener %q never bound", name)
	return ""
}

func getOK(t *testing.T, url string) []byte {
	t.Helper()
	r, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer r.Body.Close()
	body, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	if r.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d\n%s", url, r.StatusCode, body)
	}
	return body
}
