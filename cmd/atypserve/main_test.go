package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/cpskit/atypical"
)

// TestShedGate fills the single slot with a blocked request and checks the
// next one is refused with 503 instead of queueing.
func TestShedGate(t *testing.T) {
	obs := atypical.NewObserver()
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	h := shedGate(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		entered <- struct{}{}
		<-release
		w.WriteHeader(http.StatusOK)
	}), 1, obs)

	first := httptest.NewRecorder()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		h.ServeHTTP(first, httptest.NewRequest("GET", "/query", nil))
	}()
	<-entered

	second := httptest.NewRecorder()
	h.ServeHTTP(second, httptest.NewRequest("GET", "/query", nil))
	if second.Code != http.StatusServiceUnavailable {
		t.Fatalf("overflow request: got %d, want 503", second.Code)
	}
	if second.Header().Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}

	close(release)
	wg.Wait()
	if first.Code != http.StatusOK {
		t.Fatalf("admitted request: got %d, want 200", first.Code)
	}
	var exposed strings.Builder
	if _, err := obs.WriteTo(&exposed); err != nil {
		t.Fatalf("exposing metrics: %v", err)
	}
	if !strings.Contains(exposed.String(), "atyp_serve_shed_total 1") {
		t.Errorf("shed counter not exposed:\n%s", exposed.String())
	}

	// After the slot frees, the next request is admitted again.
	third := httptest.NewRecorder()
	h.ServeHTTP(third, httptest.NewRequest("GET", "/query", nil))
	if third.Code != http.StatusOK {
		t.Fatalf("post-release request: got %d, want 200", third.Code)
	}
}

// TestShedGateUnlimited checks limit <= 0 disables the gate entirely.
func TestShedGateUnlimited(t *testing.T) {
	obs := atypical.NewObserver()
	inner := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {})
	if got := shedGate(inner, 0, obs); fmt.Sprintf("%T", got) != fmt.Sprintf("%T", inner) {
		t.Fatalf("limit 0 should return next unchanged, got %T", got)
	}
}

// lockedBuffer is a concurrency-safe log sink for serveConfig.logTo.
type lockedBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// TestServeUntil boots the full server on ephemeral ports, exercises the
// query and operational surfaces — readiness, EXPLAIN side-channel, trace
// buffer, slow-query log — then cancels the context and checks the drain
// path exits zero.
func TestServeUntil(t *testing.T) {
	addrs := make(map[string]string)
	var mu sync.Mutex
	var logs lockedBuffer
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan int, 1)
	go func() {
		done <- serveUntil(ctx, serveConfig{
			addr:        "127.0.0.1:0",
			metricsAddr: "127.0.0.1:0",
			sensors:     30, seed: 7, months: 1, days: 7, deltaS: 0.02,
			maxInflight: 4, queryTimeout: 10 * time.Second, drain: 5 * time.Second,
			traces: 32, slowQuery: 0, slo: "gui=1ns", sloObjective: 0.9,
			onListen: func(name string, a net.Addr) {
				mu.Lock()
				addrs[name] = a.String()
				mu.Unlock()
			},
			logTo: &logs,
		})
	}()

	api := waitForAddr(t, &mu, addrs, "query API")
	metrics := waitForAddr(t, &mu, addrs, "metrics and pprof")

	// Liveness answers while the model may still be ingesting; queries wait
	// on readiness.
	if got := string(getOK(t, "http://"+api+"/healthz")); !strings.Contains(got, "ok") {
		t.Errorf("healthz = %q, want ok", got)
	}
	waitForReady(t, "http://"+api+"/readyz")

	body := getOK(t, "http://"+api+"/query?strategy=all&from=0&days=7")
	var resp queryResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("query response not JSON: %v\n%s", err, body)
	}
	if !strings.EqualFold(resp.Strategy, "all") || resp.Days != 7 {
		t.Errorf("query strategy/days = %q/%d, want all/7", resp.Strategy, resp.Days)
	}
	if resp.Explain != nil {
		t.Error("explain attached without explain=1")
	}
	if strings.Contains(string(body), `"explain"`) {
		t.Error("explain key present in plain query response bytes")
	}

	// explain=1 attaches the EXPLAIN record; the rest of the report is the
	// same shape.
	body = getOK(t, "http://"+api+"/query?strategy=gui&from=0&days=7&explain=1")
	var explained queryResponse
	if err := json.Unmarshal(body, &explained); err != nil {
		t.Fatalf("explain response not JSON: %v\n%s", err, body)
	}
	if explained.Explain == nil {
		t.Fatalf("explain=1 returned no explain record:\n%s", body)
	}
	if explained.Explain.Strategy != "Gui" {
		t.Errorf("explain strategy = %q, want Gui", explained.Explain.Strategy)
	}
	if explained.Explain.Threshold.Bound <= 0 || len(explained.Explain.Stages) == 0 {
		t.Errorf("explain record incomplete: %+v", explained.Explain)
	}

	if r, err := http.Get("http://" + api + "/query?strategy=bogus"); err != nil {
		t.Fatalf("bad-strategy request: %v", err)
	} else {
		r.Body.Close()
		if r.StatusCode != http.StatusBadRequest {
			t.Errorf("bad strategy: got %d, want 400", r.StatusCode)
		}
	}

	if got := string(getOK(t, "http://"+metrics+"/metrics")); !strings.Contains(got, "atyp_ingest_records_total") {
		t.Errorf("metrics surface missing ingest counter:\n%.400s", got)
	} else {
		if !strings.Contains(got, "atyp_go_goroutines") || !strings.Contains(got, "atyp_build_info{") {
			t.Errorf("runtime/build-info families missing from /metrics")
		}
		if !strings.Contains(got, `atyp_slo_burn_rate{strategy="gui"}`) {
			t.Errorf("SLO burn-rate gauge missing from /metrics")
		}
	}

	// The trace ring captured the served queries.
	traces := string(getOK(t, "http://"+metrics+"/debug/traces"))
	if !strings.Contains(traces, "query.run") {
		t.Errorf("/debug/traces missing query.run root:\n%.400s", traces)
	}

	// -slowquery 0 logs every query with its EXPLAIN.
	if logged := logs.String(); !strings.Contains(logged, "slow query") || !strings.Contains(logged, `\"strategy\":\"Gui\"`) && !strings.Contains(logged, `"strategy":"Gui"`) {
		t.Errorf("slow-query log missing or without explain:\n%.800s", logged)
	}

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("serveUntil exit code = %d, want 0", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serveUntil did not drain after cancel")
	}
}

// waitForReady polls the readiness probe until it answers 200.
func waitForReady(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		r, err := http.Get(url)
		if err == nil {
			r.Body.Close()
			if r.StatusCode == http.StatusOK {
				return
			}
			if r.StatusCode != http.StatusServiceUnavailable {
				t.Fatalf("readyz: unexpected status %d", r.StatusCode)
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("readyz never turned ready")
}

// TestReadinessGate checks the probe split: /healthz always answers 200
// (liveness), /readyz and /query answer 503 until the ready flag flips.
func TestReadinessGate(t *testing.T) {
	var ready atomic.Bool
	var logs lockedBuffer
	h := newAPIHandler(apiConfig{
		ready: &ready, logger: newLogger(serveConfig{logTo: &logs}),
	})

	status := func(path string) int {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec.Code
	}
	if got := status("/healthz"); got != http.StatusOK {
		t.Errorf("healthz before ready = %d, want 200", got)
	}
	if got := status("/readyz"); got != http.StatusServiceUnavailable {
		t.Errorf("readyz before ready = %d, want 503", got)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/query", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("query before ready = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("warming-up 503 missing Retry-After")
	}

	ready.Store(true)
	if got := status("/readyz"); got != http.StatusOK {
		t.Errorf("readyz after ready = %d, want 200", got)
	}
}

// TestServeUntilBindFailure occupies a port and points the metrics listener
// at it: the process must exit non-zero instead of serving only the API.
func TestServeUntilBindFailure(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	code := serveUntil(context.Background(), serveConfig{
		addr:        "127.0.0.1:0",
		metricsAddr: ln.Addr().String(),
		sensors:     30, seed: 7, months: 1, days: 7,
		maxInflight: 4, queryTimeout: time.Second, drain: time.Second,
	})
	if code != 1 {
		t.Fatalf("exit code with unbindable metrics address = %d, want 1", code)
	}
}

func waitForAddr(t *testing.T, mu *sync.Mutex, addrs map[string]string, name string) string {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		a, ok := addrs[name]
		mu.Unlock()
		if ok {
			return a
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("listener %q never bound", name)
	return ""
}

func getOK(t *testing.T, url string) []byte {
	t.Helper()
	r, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer r.Body.Close()
	body, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	if r.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d\n%s", url, r.StatusCode, body)
	}
	return body
}
