package main

// The -subscribers mode: N standing queries ride along with the measured
// query phase and the harness reports push latency percentiles next to the
// read latencies. Local mode subscribes in process and replays a generated
// month through a stream processor in the background; HTTP mode holds N SSE
// connections to a running atypserve (start it with -stream so the replay
// driver feeds them) and stamps latency from each push's ts_unix_ns.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	atypical "github.com/cpskit/atypical"
)

// subDeltaS is the standing-query severity threshold — far below the query
// stream's δs, so the replayed month produces a dense push stream worth
// measuring percentiles over.
const subDeltaS = 0.0005

// subCollector accumulates push latencies across all subscriber drainers.
type subCollector struct {
	mu   sync.Mutex
	lats []time.Duration
	errs int
}

func (c *subCollector) add(d time.Duration) {
	c.mu.Lock()
	c.lats = append(c.lats, d)
	c.mu.Unlock()
}

func (c *subCollector) fail() {
	c.mu.Lock()
	c.errs++
	c.mu.Unlock()
}

// result renders the collected latencies as the sub_push phase.
func (c *subCollector) result(elapsed time.Duration, dropped uint64) phaseResult {
	c.mu.Lock()
	defer c.mu.Unlock()
	sort.Slice(c.lats, func(i, j int) bool { return c.lats[i] < c.lats[j] })
	return phaseResult{
		Label:       "sub_push",
		Reads:       len(c.lats),
		Errors:      c.errs,
		Dropped:     dropped,
		ElapsedS:    elapsed.Seconds(),
		AchievedQPS: float64(len(c.lats)) / elapsed.Seconds(),
		P50Ms:       percentileMs(c.lats, 0.50),
		P99Ms:       percentileMs(c.lats, 0.99),
		P999Ms:      percentileMs(c.lats, 0.999),
	}
}

// startLocalSubscribers registers n standing queries on sys and starts a
// background streamer replaying month 0 through them while the foreground
// query phase runs. The returned finish waits for the streamer, tears the
// subscriptions down, and reports push latency (receive time minus the
// push's evaluation stamp).
func startLocalSubscribers(sys *atypical.System, n, days int) (func() (phaseResult, error), error) {
	start := time.Now()
	col := &subCollector{}
	strategies := []atypical.Strategy{atypical.IntegrateAll, atypical.Pruned}
	subs := make([]*atypical.Subscription, 0, n)
	for i := 0; i < n; i++ {
		sub, err := sys.Subscribe(atypical.QueryRequest{
			Days: 1 + i%days, DeltaS: subDeltaS, Strategy: strategies[i%len(strategies)],
		})
		if err != nil {
			for _, s := range subs {
				sys.Unsubscribe(s.ID())
			}
			return nil, err
		}
		subs = append(subs, sub)
	}

	var wg sync.WaitGroup
	for _, sub := range subs {
		wg.Add(1)
		go func(sub *atypical.Subscription) {
			defer wg.Done()
			for {
				select {
				case p := <-sub.Pushes():
					col.add(time.Since(p.Ts))
				case <-sub.Done():
					// Teardown: whatever is still buffered is measurable.
					for {
						select {
						case p := <-sub.Pushes():
							col.add(time.Since(p.Ts))
						default:
							return
						}
					}
				}
			}
		}(sub)
	}

	// The emitted micro-clusters are discarded — the forest already holds
	// this month; the stream exists to feed the subscriptions.
	recs := sys.GenerateMonth(0).Atypical.Records()
	streamErr := make(chan error, 1)
	go func() {
		p, err := sys.NewStreamProcessor(func(*atypical.Cluster) {})
		if err != nil {
			streamErr <- err
			return
		}
		if err := p.ObserveAll(context.Background(), recs); err != nil {
			streamErr <- err
			return
		}
		p.Flush()
		streamErr <- nil
	}()

	finish := func() (phaseResult, error) {
		err := <-streamErr
		var dropped uint64
		for _, sub := range subs {
			dropped += sub.Dropped()
			sys.Unsubscribe(sub.ID())
		}
		wg.Wait()
		return col.result(time.Since(start), dropped), err
	}
	return finish, nil
}

// startHTTPSubscribers holds n SSE connections to target's /subscribe while
// the foreground HTTP phase runs; pushes only arrive when the server replays
// a live stream (atypserve -stream). Latency is the local receive time minus
// the push's ts_unix_ns — same-host clocks in practice, since the harness is
// a load generator, not a distributed tracer. Gap markers (server-side
// drops) are counted in the phase's Dropped.
func startHTTPSubscribers(target string, n, days int) func() (phaseResult, error) {
	start := time.Now()
	col := &subCollector{}
	var gaps atomic.Uint64
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		// Connect synchronously so every subscriber is established before the
		// measured phase starts — and so a short phase cannot cancel a
		// handshake mid-flight and miscount it as a server failure.
		url := fmt.Sprintf("%s/subscribe?strategy=all&days=%d&deltas=%g", target, 1+i%days, subDeltaS)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			col.fail()
			continue
		}
		// No client timeout: the stream lives until finish cancels ctx.
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			col.fail()
			continue
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			col.fail()
			continue
		}
		wg.Add(1)
		go func(resp *http.Response) {
			defer wg.Done()
			defer resp.Body.Close()
			br := bufio.NewReader(resp.Body)
			var data string
			for {
				line, err := br.ReadString('\n')
				if err != nil {
					return // ctx cancellation ends the stream; not a failure
				}
				line = strings.TrimRight(line, "\n")
				switch {
				case strings.HasPrefix(line, "data: "):
					data = strings.TrimPrefix(line, "data: ")
				case line == "" && data != "":
					var p struct {
						TsUnixNS int64 `json:"ts_unix_ns"`
						Gap      bool  `json:"gap"`
					}
					// The subscribed hello has no ts_unix_ns and is skipped.
					if json.Unmarshal([]byte(data), &p) == nil && p.TsUnixNS > 0 {
						col.add(time.Duration(time.Now().UnixNano() - p.TsUnixNS))
						if p.Gap {
							gaps.Add(1)
						}
					}
					data = ""
				}
			}
		}(resp)
	}
	return func() (phaseResult, error) {
		cancel()
		wg.Wait()
		return col.result(time.Since(start), gaps.Load()), nil
	}
}

// printSubPush reports the sub_push phase on the harness's summary stream.
func printSubPush(out io.Writer, p phaseResult, n int) {
	fmt.Fprintf(out, "# sub_push  %d pushes to %d subscribers, %d dropped, %d errors, %.0f push/s, p50 %.3fms p99 %.3fms\n",
		p.Reads, n, p.Dropped, p.Errors, p.AchievedQPS, p.P50Ms, p.P99Ms)
}
