package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// A local run with -subscribers must record a sub_push phase with real
// pushes, no drops, and write it into the artifact.
func TestRunLocalSubscribers(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_load.json")
	var out strings.Builder
	args := []string{
		"-sensors", "40", "-days", "3", "-requests", "60", "-distinct", "3",
		"-workers", "2", "-subscribers", "3", "-json", path, "-maxregress", "0",
	}
	if code := run(args, &out); code != 0 {
		t.Fatalf("run exited %d:\n%s", code, out.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var res loadResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if res.Subscribers != 3 || res.SubPush == nil {
		t.Fatalf("artifact missing sub_push phase: %+v", res)
	}
	if res.SubPush.Label != "sub_push" || res.SubPush.Errors != 0 {
		t.Fatalf("sub_push phase malformed: %+v", res.SubPush)
	}
	if res.SubPush.Reads == 0 {
		t.Fatal("sub_push recorded no pushes; the replayed month must fire standing queries")
	}
	if res.SubPush.P50Ms < 0 || res.SubPush.P99Ms < res.SubPush.P50Ms {
		t.Fatalf("sub_push percentiles inconsistent: %+v", res.SubPush)
	}
	if !strings.Contains(out.String(), "# sub_push") {
		t.Fatalf("summary missing sub_push line:\n%s", out.String())
	}
}

// HTTP mode with -subscribers: SSE connections land on /subscribe, parse
// push events, and compute latency from ts_unix_ns. The stub server replays
// a fixed SSE script so the measured latencies are under the test's control.
func TestRunHTTPSubscribers(t *testing.T) {
	var subscribes atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/query":
			w.Write([]byte("{}"))
		case "/subscribe":
			if r.URL.Query().Get("strategy") != "all" || r.URL.Query().Get("deltas") == "" {
				t.Errorf("subscribe missing parameters: %s", r.URL.RawQuery)
			}
			subscribes.Add(1)
			fl := w.(http.Flusher)
			w.Header().Set("Content-Type", "text/event-stream")
			fmt.Fprintf(w, "event: subscribed\ndata: {\"subscription\":1}\n\n")
			fl.Flush()
			// Two pushes stamped in the recent past, one flagged as a gap.
			now := time.Now().UnixNano()
			fmt.Fprintf(w, "event: push\ndata: {\"seq\":1,\"component\":1,\"ts_unix_ns\":%d,\"clusters\":[]}\n\n",
				now-int64(2*time.Millisecond))
			fmt.Fprintf(w, "event: push\ndata: {\"seq\":2,\"component\":1,\"gap\":true,\"ts_unix_ns\":%d,\"clusters\":[]}\n\n",
				now-int64(time.Millisecond))
			fl.Flush()
			// Hold the stream open until the harness cancels.
			<-r.Context().Done()
		default:
			t.Errorf("unexpected path %s", r.URL.Path)
		}
	}))
	defer srv.Close()

	path := filepath.Join(t.TempDir(), "BENCH_load.json")
	var out strings.Builder
	// The -qps pacing stretches the measured phase to ~100ms, giving the SSE
	// readers ample time to consume the stub's pushes before teardown.
	args := []string{
		"-target", srv.URL, "-requests", "6", "-qps", "50", "-workers", "1",
		"-subscribers", "2", "-json", path, "-maxregress", "0",
	}
	if code := run(args, &out); code != 0 {
		t.Fatalf("http run exited %d:\n%s", code, out.String())
	}
	if got := subscribes.Load(); got != 2 {
		t.Fatalf("server saw %d subscribes, want 2", got)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var res loadResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if res.SubPush == nil || res.Subscribers != 2 {
		t.Fatalf("artifact missing sub_push phase: %+v", res)
	}
	if res.SubPush.Reads != 4 || res.SubPush.Dropped != 2 || res.SubPush.Errors != 0 {
		t.Fatalf("sub_push counters = %+v, want 4 pushes / 2 dropped / 0 errors", res.SubPush)
	}
	if res.SubPush.P50Ms <= 0 {
		t.Fatalf("sub_push p50 = %v, want > 0 (stamps were in the past)", res.SubPush.P50Ms)
	}
	if !strings.Contains(out.String(), "# sub_push") {
		t.Fatalf("summary missing sub_push line:\n%s", out.String())
	}
}

// A subscribe endpoint that refuses the connection counts as a sub_push
// error and fails the run.
func TestRunHTTPSubscribersErrorFails(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/query":
			w.Write([]byte("{}"))
		default:
			http.Error(w, "no subscriptions here", http.StatusServiceUnavailable)
		}
	}))
	defer srv.Close()
	var out strings.Builder
	args := []string{"-target", srv.URL, "-requests", "4", "-workers", "1", "-subscribers", "1"}
	if code := run(args, &out); code != 1 {
		t.Fatalf("run with failing subscribe exited %d, want 1:\n%s", code, out.String())
	}
}
