// Command atypload drives a mixed read/ingest workload against the query
// surface and reports latency percentiles — the load harness behind the
// answer-cache measurements.
//
// Usage:
//
//	atypload [-requests 2000] [-workers 4] [-qps 0] [-mix 1.0] [-distinct 6]
//	         [-sensors 120] [-days 7] [-seed 42] [-querycache 256]
//	         [-subscribers 0] [-target http://host:port] [-json BENCH_load.json]
//	         [-minimprove 0] [-maxregress 0.25]
//
// Two modes share the workload generator:
//
//   - Local (default): the harness builds an in-process System, ingests one
//     deterministic month, and runs the workload twice — once without the
//     answer cache and once with WithQueryCache(-querycache) — so the JSON
//     artifact carries the cache-off/cache-on p99 comparison on the exact
//     same request stream.
//   - HTTP (-target): requests go to a running atypserve as POST /query
//     bodies. The server owns its cache configuration, so only one phase
//     runs. atypserve exposes no ingest endpoint; the mix is forced to
//     pure reads.
//
// -subscribers N additionally registers N standing queries that are fed a
// live stream while the measured phase runs — in process in local mode, as
// SSE connections to -target's /subscribe in HTTP mode (run that server with
// -stream) — and reports push latency percentiles as the sub_push phase,
// included in the -maxregress comparison.
//
// The read stream cycles deterministically through -distinct query shapes
// (window length and strategy vary), which is the repeated-query profile an
// answer cache is built for; ingest operations (local mode, 1 - mix of the
// stream) re-ingest a pregenerated month, bumping the forest version and
// invalidating every cached answer — the adversarial half of the mix.
//
// Two gates fail the run, both optional:
//
//   - -minimprove (local mode) requires the cache-off/cache-on p99 ratio of
//     this run to reach the given floor. Both phases share the machine and
//     the moment, so the ratio is stable where absolute latencies are not —
//     the CI gate of choice on shared runners.
//   - -maxregress compares each phase's p99 against the previous JSON
//     artifact and fails past the given fraction. Cross-run baselines may
//     come from a different host, so microsecond-scale cached p99s make
//     this gate noisy; CI keeps it report-only (-maxregress 0) and gates on
//     -minimprove instead.
//
// With -json the result is written atomically to the given path; the
// previous artifact (if any) is preserved as <path minus .json>.prev.json
// and the delta against it is always printed.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	atypical "github.com/cpskit/atypical"
	"github.com/cpskit/atypical/internal/faultfs"
)

// phaseResult is one measured pass over the request stream.
type phaseResult struct {
	Label       string  `json:"label"`
	Reads       int     `json:"reads"`
	Ingests     int     `json:"ingests"`
	Errors      int     `json:"errors"`
	ElapsedS    float64 `json:"elapsed_s"`
	AchievedQPS float64 `json:"achieved_qps"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
	P999Ms      float64 `json:"p999_ms"`
	CacheHits   uint64  `json:"cache_hits,omitempty"`
	CacheMisses uint64  `json:"cache_misses,omitempty"`
	// Dropped counts pushes lost to subscriber backpressure (sub_push phase
	// only): buffer overflows locally, gap markers over HTTP.
	Dropped uint64 `json:"dropped,omitempty"`
}

// loadResult is the JSON artifact (BENCH_load.json).
type loadResult struct {
	Mode         string       `json:"mode"`
	Requests     int          `json:"requests"`
	ReadMix      float64      `json:"read_mix"`
	TargetQPS    float64      `json:"target_qps"`
	Workers      int          `json:"workers"`
	Distinct     int          `json:"distinct_queries"`
	CacheEntries int          `json:"cache_entries,omitempty"`
	CacheOff     *phaseResult `json:"cache_off,omitempty"`
	CacheOn      *phaseResult `json:"cache_on,omitempty"`
	HTTP         *phaseResult `json:"http,omitempty"`
	// Subscribers/SubPush appear with -subscribers: push latency percentiles
	// of standing queries fed while the measured phase ran.
	Subscribers int          `json:"subscribers,omitempty"`
	SubPush     *phaseResult `json:"sub_push,omitempty"`
	// P99Improvement is the cache-off/cache-on p99 ratio (local mode).
	P99Improvement float64 `json:"p99_improvement,omitempty"`
}

// runner executes one read request.
type runner interface {
	do(req atypical.QueryRequest) error
}

// localRunner serves reads from an in-process System.
type localRunner struct{ sys *atypical.System }

func (r localRunner) do(req atypical.QueryRequest) error {
	_, err := r.sys.Run(context.Background(), req)
	return err
}

// httpRunner posts reads to a running atypserve.
type httpRunner struct {
	base   string
	client *http.Client
}

// wireQuery mirrors atypserve's POST /query body.
type wireQuery struct {
	Strategy string `json:"strategy"`
	FirstDay int    `json:"first_day"`
	Days     *int   `json:"days"`
}

var strategyWire = map[atypical.Strategy]string{
	atypical.IntegrateAll: "all",
	atypical.Pruned:       "pru",
	atypical.Guided:       "gui",
}

// discardSpans arms outbound requests with trace identity without retaining
// the spans locally: the traceparent header carries the IDs, and the server
// side stitches them into its own trace buffer.
func discardSpans(atypical.Span) {}

func (r httpRunner) do(req atypical.QueryRequest) error {
	days := req.Days
	body, err := json.Marshal(wireQuery{
		Strategy: strategyWire[req.Strategy], FirstDay: req.FirstDay, Days: &days,
	})
	if err != nil {
		return err
	}
	ctx, sp := atypical.StartSpan(
		atypical.WithSpanContext(context.Background(), discardSpans), "atypload.query")
	defer sp.End()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, r.base+"/query", bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	atypical.InjectTraceparent(ctx, hreq.Header)
	resp, err := r.client.Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("query answered %s", resp.Status)
	}
	return nil
}

// readStream builds the -distinct repeated query shapes: window lengths and
// strategies vary, scope stays whole-city — the profile an answer cache is
// built for.
func readStream(distinct, days int) []atypical.QueryRequest {
	reqs := make([]atypical.QueryRequest, distinct)
	strategies := []atypical.Strategy{atypical.IntegrateAll, atypical.Pruned, atypical.Guided}
	for j := range reqs {
		reqs[j] = atypical.QueryRequest{
			Days:     1 + j%days,
			Strategy: strategies[j%len(strategies)],
		}
	}
	return reqs
}

// isRead deterministically spreads ingest operations through the stream:
// request i is a read iff its slot falls under the read mix.
func isRead(i int, mix float64) bool {
	return float64((i*997)%1000) < mix*1000
}

// runPhase pushes the request stream through run with the configured
// concurrency and optional QPS pacing. sys is non-nil in local mode only
// and serves the ingest half of the mix.
func runPhase(label string, run runner, sys *atypical.System, ingest *atypical.RecordSet,
	total, workers int, mix, qps float64, reqs []atypical.QueryRequest) phaseResult {
	lat := make([]time.Duration, total)
	isReadOp := make([]bool, total)
	var next, errs, reads, ingests atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				if qps > 0 {
					target := start.Add(time.Duration(float64(i) * float64(time.Second) / qps))
					time.Sleep(time.Until(target))
				}
				if sys == nil || isRead(i, mix) {
					opStart := time.Now()
					err := run.do(reqs[i%len(reqs)])
					lat[i] = time.Since(opStart)
					isReadOp[i] = true
					reads.Add(1)
					if err != nil {
						errs.Add(1)
					}
				} else {
					sys.Ingest(ingest)
					ingests.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	readLat := make([]time.Duration, 0, total)
	for i, d := range lat {
		if isReadOp[i] {
			readLat = append(readLat, d)
		}
	}
	sort.Slice(readLat, func(i, j int) bool { return readLat[i] < readLat[j] })
	return phaseResult{
		Label:       label,
		Reads:       int(reads.Load()),
		Ingests:     int(ingests.Load()),
		Errors:      int(errs.Load()),
		ElapsedS:    elapsed.Seconds(),
		AchievedQPS: float64(total) / elapsed.Seconds(),
		P50Ms:       percentileMs(readLat, 0.50),
		P99Ms:       percentileMs(readLat, 0.99),
		P999Ms:      percentileMs(readLat, 0.999),
	}
}

// percentileMs reads the q-quantile from the sorted latencies.
func percentileMs(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / float64(time.Millisecond)
}

// buildSystem constructs and fills one local system.
func buildSystem(sensors, days int, seed int64, opts ...atypical.Option) (*atypical.System, error) {
	cfg := atypical.DefaultConfig()
	cfg.Sensors = sensors
	cfg.DaysPerMonth = days
	cfg.Seed = seed
	sys, err := atypical.NewSystem(cfg, opts...)
	if err != nil {
		return nil, err
	}
	sys.Ingest(sys.GenerateMonth(0).Atypical)
	return sys, nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("atypload", flag.ExitOnError)
	var (
		requests    = fs.Int("requests", 2000, "total operations per phase")
		workers     = fs.Int("workers", 4, "concurrent workers")
		qps         = fs.Float64("qps", 0, "target operations/sec across workers (0 = unthrottled)")
		mix         = fs.Float64("mix", 1.0, "read fraction of the stream; the rest are ingest ops (local mode)")
		distinct    = fs.Int("distinct", 6, "distinct query shapes cycled by the read stream")
		sensors     = fs.Int("sensors", 120, "deployment size (local mode)")
		days        = fs.Int("days", 7, "days per generated month (local mode)")
		seed        = fs.Int64("seed", 42, "workload seed (local mode)")
		queryCache  = fs.Int("querycache", 256, "answer-cache entries for the cache-on phase (local mode)")
		target      = fs.String("target", "", "atypserve base URL; empty runs the in-process cache-off/cache-on comparison")
		jsonPath    = fs.String("json", "", "write the result JSON to this path (atomic)")
		subscribers = fs.Int("subscribers", 0, "standing-query subscribers fed during the measured phase (0 disables)")
		minImprove  = fs.Float64("minimprove", 0, "fail when this run's cache-off/cache-on p99 ratio falls below this floor (local mode; 0 disables)")
		maxRegress  = fs.Float64("maxregress", 0.25, "fail when a phase p99 regressed by more than this fraction vs the previous JSON (0 disables)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *mix < 0 || *mix > 1 {
		fmt.Fprintln(os.Stderr, "atypload: -mix must be in [0, 1]")
		return 2
	}
	if *distinct < 1 || *requests < 1 || *workers < 1 || *days < 1 {
		fmt.Fprintln(os.Stderr, "atypload: -distinct, -requests, -workers and -days must be positive")
		return 2
	}
	if *subscribers < 0 {
		fmt.Fprintln(os.Stderr, "atypload: -subscribers must be non-negative")
		return 2
	}

	res := loadResult{
		Requests: *requests, ReadMix: *mix, TargetQPS: *qps,
		Workers: *workers, Distinct: *distinct,
	}
	reqs := readStream(*distinct, *days)

	if *target != "" {
		res.Mode = "http"
		if *mix < 1 {
			fmt.Fprintln(os.Stderr, "atypload: atypserve has no ingest endpoint; forcing -mix 1.0")
			res.ReadMix = 1
		}
		r := httpRunner{base: *target, client: &http.Client{Timeout: 30 * time.Second}}
		var finishSubs func() (phaseResult, error)
		if *subscribers > 0 {
			finishSubs = startHTTPSubscribers(*target, *subscribers, *days)
		}
		p := runPhase("http", r, nil, nil, *requests, *workers, 1, *qps, reqs)
		res.HTTP = &p
		fmt.Fprintf(out, "# http load: %d reads against %s, %d errors, %.0f op/s, p50 %.3fms p99 %.3fms p999 %.3fms\n",
			p.Reads, *target, p.Errors, p.AchievedQPS, p.P50Ms, p.P99Ms, p.P999Ms)
		if finishSubs != nil {
			pSub, err := finishSubs()
			if err != nil {
				return fatal(err)
			}
			res.Subscribers = *subscribers
			res.SubPush = &pSub
			printSubPush(out, pSub, *subscribers)
		}
	} else {
		res.Mode = "local"
		res.CacheEntries = *queryCache

		off, err := buildSystem(*sensors, *days, *seed)
		if err != nil {
			return fatal(err)
		}
		ingest := off.GenerateMonth(1).Atypical
		pOff := runPhase("cache_off", localRunner{off}, off, ingest, *requests, *workers, *mix, *qps, reqs)
		res.CacheOff = &pOff

		on, err := buildSystem(*sensors, *days, *seed, atypical.WithQueryCache(*queryCache))
		if err != nil {
			return fatal(err)
		}
		// Subscribers ride along with the cache-on phase: push latency is
		// measured while the query workload contends for the same cores.
		var finishSubs func() (phaseResult, error)
		if *subscribers > 0 {
			if finishSubs, err = startLocalSubscribers(on, *subscribers, *days); err != nil {
				return fatal(err)
			}
		}
		pOn := runPhase("cache_on", localRunner{on}, on, ingest, *requests, *workers, *mix, *qps, reqs)
		pOn.CacheHits, pOn.CacheMisses, _ = on.QueryCacheStats()
		res.CacheOn = &pOn
		if finishSubs != nil {
			pSub, err := finishSubs()
			if err != nil {
				return fatal(err)
			}
			res.Subscribers = *subscribers
			res.SubPush = &pSub
			printSubPush(out, pSub, *subscribers)
		}

		if pOn.P99Ms > 0 {
			res.P99Improvement = pOff.P99Ms / pOn.P99Ms
		}
		for _, p := range []*phaseResult{&pOff, &pOn} {
			fmt.Fprintf(out, "# %-9s %d reads, %d ingests, %d errors, %.0f op/s, p50 %.3fms p99 %.3fms p999 %.3fms\n",
				p.Label, p.Reads, p.Ingests, p.Errors, p.AchievedQPS, p.P50Ms, p.P99Ms, p.P999Ms)
		}
		fmt.Fprintf(out, "# answer cache: %d hits, %d misses; p99 improvement %.1fx\n",
			pOn.CacheHits, pOn.CacheMisses, res.P99Improvement)
	}

	errorsSeen := 0
	for _, p := range []*phaseResult{res.CacheOff, res.CacheOn, res.HTTP, res.SubPush} {
		if p != nil {
			errorsSeen += p.Errors
		}
	}
	if errorsSeen > 0 {
		return fatal(fmt.Errorf("%d request(s) failed", errorsSeen))
	}

	// Within-run ratio gate: both phases ran on this host moments apart, so
	// the ratio holds up where cross-run absolute p99s flake. A cache-on p99
	// of exactly zero means sub-resolution hits — past any floor.
	if *minImprove > 0 && res.CacheOn != nil && res.CacheOn.P99Ms > 0 && res.P99Improvement < *minImprove {
		return fatal(fmt.Errorf("p99 improvement %.1fx below the -minimprove %.1fx floor",
			res.P99Improvement, *minImprove))
	}

	if *jsonPath == "" {
		return 0
	}
	prev, prevData := readPrevious(*jsonPath)
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return fatal(err)
	}
	data = append(data, '\n')
	if err := faultfs.WriteFileAtomic(faultfs.OS{}, *jsonPath, data, 0o644); err != nil {
		return fatal(err)
	}
	fmt.Fprintf(out, "# wrote %s\n", *jsonPath)
	if prev != nil {
		pp := prevPath(*jsonPath)
		if err := faultfs.WriteFileAtomic(faultfs.OS{}, pp, prevData, 0o644); err != nil {
			return fatal(err)
		}
		fmt.Fprintf(out, "# delta vs previous run (%s):\n", pp)
		for _, pair := range [][2]*phaseResult{
			{prev.CacheOff, res.CacheOff}, {prev.CacheOn, res.CacheOn},
			{prev.HTTP, res.HTTP}, {prev.SubPush, res.SubPush},
		} {
			old, cur := pair[0], pair[1]
			if old == nil || cur == nil || old.P99Ms <= 0 {
				continue
			}
			fmt.Fprintf(out, "#   %-9s p99 %.3fms -> %.3fms  (%+.1f%%)\n",
				cur.Label, old.P99Ms, cur.P99Ms, (cur.P99Ms-old.P99Ms)/old.P99Ms*100)
			if *maxRegress > 0 && cur.P99Ms > old.P99Ms*(1+*maxRegress) {
				return fatal(fmt.Errorf("%s p99 regressed beyond %.0f%%: %.3fms -> %.3fms",
					cur.Label, *maxRegress*100, old.P99Ms, cur.P99Ms))
			}
		}
	}
	return 0
}

// readPrevious loads the prior artifact at path; a missing or unparseable
// file (first run, format change) yields nil — nothing to compare against.
func readPrevious(path string) (*loadResult, []byte) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil
	}
	var prev loadResult
	if err := json.Unmarshal(data, &prev); err != nil {
		return nil, nil
	}
	if prev.CacheOff == nil && prev.CacheOn == nil && prev.HTTP == nil {
		return nil, nil
	}
	return &prev, data
}

// prevPath names the preserved copy of the previous result:
// BENCH_load.json -> BENCH_load.prev.json.
func prevPath(path string) string {
	const ext = ".json"
	if len(path) > len(ext) && path[len(path)-len(ext):] == ext {
		return path[:len(path)-len(ext)] + ".prev" + ext
	}
	return path + ".prev"
}

func fatal(err error) int {
	fmt.Fprintln(os.Stderr, "atypload:", err)
	return 1
}
