package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// A tiny local run must produce both phases, a positive p99 ratio, and the
// JSON artifact; a doctored baseline must then trip the regression gate and
// preserve itself as the .prev.json copy.
func TestRunLocalArtifactAndRegressionGate(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_load.json")
	var out strings.Builder
	args := []string{
		"-sensors", "40", "-days", "3", "-requests", "90", "-distinct", "3",
		"-workers", "2", "-json", path, "-maxregress", "0.25",
	}
	if code := run(args, &out); code != 0 {
		t.Fatalf("first run exited %d:\n%s", code, out.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var res loadResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if res.Mode != "local" || res.CacheOff == nil || res.CacheOn == nil {
		t.Fatalf("artifact missing phases: %+v", res)
	}
	if res.CacheOff.Reads != 90 || res.CacheOff.Errors != 0 || res.CacheOn.Errors != 0 {
		t.Fatalf("unexpected phase counters: off=%+v on=%+v", res.CacheOff, res.CacheOn)
	}
	if res.P99Improvement <= 0 {
		t.Fatalf("p99 improvement = %v, want > 0", res.P99Improvement)
	}
	if res.CacheOn.CacheHits == 0 || res.CacheOn.CacheMisses == 0 {
		t.Fatalf("cache-on phase recorded no cache traffic: %+v", res.CacheOn)
	}

	// Rewrite the artifact as an impossibly fast baseline: the next run's
	// cache-off p99 must regress past 25% and fail.
	res.CacheOff.P99Ms = 1e-9
	res.CacheOn.P99Ms = 1e-9
	doctored, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, doctored, 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if code := run(args, &out); code != 1 {
		t.Fatalf("regressed run exited %d, want 1:\n%s", code, out.String())
	}
	prev, err := os.ReadFile(filepath.Join(dir, "BENCH_load.prev.json"))
	if err != nil {
		t.Fatalf("baseline not preserved: %v", err)
	}
	if string(prev) != string(doctored) {
		t.Fatal("preserved baseline differs from the compared-against bytes")
	}
}

// The within-run ratio gate: an unreachable -minimprove floor fails the
// run on its own measurements, no baseline artifact involved.
func TestRunLocalMinImproveGate(t *testing.T) {
	var out strings.Builder
	args := []string{
		"-sensors", "40", "-days", "3", "-requests", "90", "-distinct", "3",
		"-workers", "2", "-minimprove", "1e12",
	}
	if code := run(args, &out); code != 1 {
		t.Fatalf("unreachable floor exited %d, want 1:\n%s", code, out.String())
	}
}

// HTTP mode posts wire-format bodies to the target and never attempts
// ingest operations, whatever the requested mix.
func TestRunHTTPModeIsReadOnly(t *testing.T) {
	var posts int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/query" {
			t.Errorf("unexpected request %s %s", r.Method, r.URL.Path)
		}
		var q wireQuery
		if err := json.NewDecoder(r.Body).Decode(&q); err != nil {
			t.Errorf("undecodable body: %v", err)
		}
		if q.Strategy == "" || q.Days == nil {
			t.Errorf("incomplete wire query: %+v", q)
		}
		posts++
		w.Write([]byte("{}"))
	}))
	defer srv.Close()

	var out strings.Builder
	args := []string{"-target", srv.URL, "-requests", "24", "-workers", "1", "-mix", "0.5", "-distinct", "4"}
	if code := run(args, &out); code != 0 {
		t.Fatalf("http run exited %d:\n%s", code, out.String())
	}
	if posts != 24 {
		t.Fatalf("server saw %d posts, want 24 (mix must be forced to pure reads)", posts)
	}
	if !strings.Contains(out.String(), "# http load: 24 reads") {
		t.Fatalf("summary missing: %s", out.String())
	}
}

// A non-200 answer counts as an error and fails the run.
func TestRunHTTPErrorsFailTheRun(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	var out strings.Builder
	if code := run([]string{"-target", srv.URL, "-requests", "4", "-workers", "1"}, &out); code != 1 {
		t.Fatalf("run against failing server exited %d, want 1", code)
	}
}

func TestPercentileMs(t *testing.T) {
	sorted := make([]time.Duration, 100)
	for i := range sorted {
		sorted[i] = time.Duration(i+1) * time.Millisecond
	}
	for _, tc := range []struct {
		q    float64
		want float64
	}{{0.50, 50}, {0.99, 99}, {0.999, 100}} {
		if got := percentileMs(sorted, tc.q); got != tc.want {
			t.Errorf("percentileMs(q=%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := percentileMs(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %v, want 0", got)
	}
}

func TestPrevPath(t *testing.T) {
	for in, want := range map[string]string{
		"BENCH_load.json": "BENCH_load.prev.json",
		"out/load.json":   "out/load.prev.json",
		"noext":           "noext.prev",
	} {
		if got := prevPath(in); got != want {
			t.Errorf("prevPath(%q) = %q, want %q", in, got, want)
		}
	}
}

// The deterministic mix spreads reads to the requested fraction.
func TestIsReadMix(t *testing.T) {
	const total = 1000
	for _, mix := range []float64{0, 0.5, 0.9, 1} {
		reads := 0
		for i := 0; i < total; i++ {
			if isRead(i, mix) {
				reads++
			}
		}
		got := float64(reads) / total
		if got < mix-0.02 || got > mix+0.02 {
			t.Errorf("mix %v produced read fraction %v", mix, got)
		}
	}
}
