// Command atypstream replays a record file through the online event
// processor, printing an alert line whenever a closing event exceeds the
// alert severity — the operations-center view of the data.
//
// Usage:
//
//	atypstream -data data -name d01 [-sensors 400] [-seed 42]
//	           [-deltad 1.5] [-deltat 15m] [-alert 2500] [-top 10]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"github.com/cpskit/atypical/internal/cluster"
	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/geo"
	"github.com/cpskit/atypical/internal/index"
	"github.com/cpskit/atypical/internal/report"
	"github.com/cpskit/atypical/internal/storage"
	"github.com/cpskit/atypical/internal/stream"
	"github.com/cpskit/atypical/internal/traffic"
)

func main() {
	var (
		data    = flag.String("data", "data", "dataset directory (catalog)")
		name    = flag.String("name", "", "dataset name to replay (required)")
		sensors = flag.Int("sensors", 400, "approximate deployment size (must match atypgen)")
		seed    = flag.Int64("seed", 42, "deployment seed (must match atypgen)")
		deltaD  = flag.Float64("deltad", 1.5, "distance threshold δd (miles)")
		deltaT  = flag.Duration("deltat", 15*time.Minute, "time interval threshold δt")
		alert   = flag.Float64("alert", 2500, "alert severity threshold (severity-min)")
		top     = flag.Int("top", 10, "recap: top-k closed events")
	)
	flag.Parse()
	if *name == "" {
		fatal(fmt.Errorf("-name is required"))
	}

	netCfg := traffic.ScaledConfig(*sensors)
	netCfg.Seed = *seed
	net := traffic.GenerateNetwork(netCfg)
	spec := cps.DefaultSpec()
	locs := make([]geo.Point, net.NumSensors())
	for i, s := range net.Sensors {
		locs[i] = s.Loc
	}

	catalog, err := storage.OpenCatalog(*data)
	if err != nil {
		fatal(err)
	}
	rr, closer, err := catalog.Open(*name)
	if err != nil {
		fatal(err)
	}
	defer closer()

	var idgen cluster.IDGen
	var closed []*cluster.Cluster
	alerts := 0
	proc, err := stream.New(stream.Config{
		Neighbors: index.NewNeighborIndex(locs, *deltaD).NeighborLists(),
		MaxGap:    cluster.MaxWindowGap(*deltaT, spec.Width),
		Emit: func(c *cluster.Cluster) {
			closed = append(closed, c)
			if float64(c.Severity()) >= *alert {
				alerts++
				fmt.Fprintf(os.Stdout, "ALERT %s\n", report.Describe(net, spec, c))
			}
		},
	}, &idgen)
	if err != nil {
		fatal(err)
	}

	start := time.Now()
	for {
		r, ok := rr.Next()
		if !ok {
			break
		}
		if err := proc.Observe(r); err != nil {
			fatal(err)
		}
	}
	if err := rr.Err(); err != nil {
		fatal(err)
	}
	proc.Flush()
	elapsed := time.Since(start)

	fmt.Fprintf(os.Stdout, "\nreplayed %d records in %s (%.0f records/s): %d events closed, %d alerts\n",
		proc.Observed(), elapsed.Round(time.Millisecond),
		float64(proc.Observed())/elapsed.Seconds(), proc.Emitted(), alerts)

	sort.Slice(closed, func(i, j int) bool { return closed[i].Severity() > closed[j].Severity() })
	if *top > len(closed) {
		*top = len(closed)
	}
	fmt.Fprintf(os.Stdout, "\ntop %d events of the replay:\n%s", *top, report.Ranking(net, spec, closed[:*top]))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "atypstream:", err)
	os.Exit(1)
}
