// Command atyplint runs the repository's custom static analyzers plus a
// curated set of go vet passes over the given packages.
//
// Usage:
//
//	go run ./cmd/atyplint [flags] [packages]
//
// With no package arguments it analyzes ./.... Exit status is 1 when any
// diagnostic is reported, 2 on operational failure, 0 on a clean tree.
//
// The analyzers encode the invariants the paper's cluster algebra depends
// on (see DESIGN.md, "Static analysis & invariants"):
//
//	floatcmp          no ==/!= on float severities or similarities
//	rangedeterminism  no map-iteration order leaking into output
//	featuremutation   SF/TF only written by the cluster package
//	lockcheck         no lock copies, no Lock without Unlock
//	rawfswrite        no direct os writes outside the faultfs seam
//	rawlog            no log.Printf/fmt.Print* in commands outside olog
//
// A finding can be suppressed — with a written justification — by a
// "//atyplint:ignore <analyzer> reason" comment on the same or preceding
// line.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strings"

	"github.com/cpskit/atypical/internal/analysis/featuremutation"
	"github.com/cpskit/atypical/internal/analysis/floatcmp"
	"github.com/cpskit/atypical/internal/analysis/framework"
	"github.com/cpskit/atypical/internal/analysis/load"
	"github.com/cpskit/atypical/internal/analysis/lockcheck"
	"github.com/cpskit/atypical/internal/analysis/rangedeterminism"
	"github.com/cpskit/atypical/internal/analysis/rawfswrite"
	"github.com/cpskit/atypical/internal/analysis/rawlog"
)

// analyzers is the multichecker suite, alphabetical.
var analyzers = []*framework.Analyzer{
	featuremutation.Analyzer,
	floatcmp.Analyzer,
	lockcheck.Analyzer,
	rangedeterminism.Analyzer,
	rawfswrite.Analyzer,
	rawlog.Analyzer,
}

// vetPasses is the curated go vet subset run alongside the custom suite:
// the passes most relevant to the algebra (printf verbs in reports, copied
// locks vet can see that lockcheck's subset cannot, atomic misuse, tautological
// bool conditions, unkeyed composite literals).
var vetPasses = []string{"-printf", "-copylocks", "-atomic", "-bools", "-composites"}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		list  = flag.Bool("list", false, "list analyzers and exit")
		only  = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
		noVet = flag.Bool("novet", false, "skip the curated go vet passes")
	)
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(os.Stdout, "%-18s %s\n", a.Name, firstLine(a.Doc))
		}
		return 0
	}

	selected := analyzers
	if *only != "" {
		selected = nil
		want := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
		for _, a := range analyzers {
			if want[a.Name] {
				selected = append(selected, a)
				delete(want, a.Name)
			}
		}
		if len(want) > 0 {
			unknown := make([]string, 0, len(want))
			for name := range want {
				unknown = append(unknown, name)
			}
			sort.Strings(unknown)
			fmt.Fprintf(os.Stderr, "atyplint: unknown analyzer(s) %s\n", strings.Join(unknown, ", "))
			return 2
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := load.Packages("", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "atyplint: %v\n", err)
		return 2
	}

	type finding struct {
		pos      string
		analyzer string
		msg      string
	}
	var findings []finding
	for _, pkg := range pkgs {
		sup := framework.CollectSuppressions(pkg.Fset, pkg.Syntax)
		for _, a := range selected {
			pass := &framework.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			name := a.Name
			pass.Report = func(d framework.Diagnostic) {
				if sup.Suppressed(pkg.Fset, name, d.Pos) {
					return
				}
				findings = append(findings, finding{
					pos:      pkg.Fset.Position(d.Pos).String(),
					analyzer: name,
					msg:      d.Message,
				})
			}
			if _, err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "atyplint: %s on %s: %v\n", a.Name, pkg.PkgPath, err)
				return 2
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].pos != findings[j].pos {
			return findings[i].pos < findings[j].pos
		}
		return findings[i].analyzer < findings[j].analyzer
	})
	for _, f := range findings {
		fmt.Fprintf(os.Stdout, "%s: %s: %s\n", f.pos, f.analyzer, f.msg)
	}

	status := 0
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "atyplint: %d finding(s)\n", len(findings))
		status = 1
	}

	if !*noVet {
		args := append(append([]string{"vet"}, vetPasses...), patterns...)
		cmd := exec.Command("go", args...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			fmt.Fprintf(os.Stderr, "atyplint: go vet %s reported findings\n", strings.Join(vetPasses, " "))
			status = 1
		}
	}
	return status
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
