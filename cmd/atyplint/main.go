// Command atyplint runs the repository's custom static analyzers plus a
// curated set of go vet passes over the given packages.
//
// Usage:
//
//	go run ./cmd/atyplint [flags] [packages]
//
// With no package arguments it analyzes ./.... Exit status is 1 when any
// diagnostic is reported, 2 on operational failure, 0 on a clean tree.
//
// Packages load in dependency order and each analyzer keeps a fact store
// across the whole run, so the interprocedural analyzers (nondet, ctxflow,
// errwrap, lockorder) see facts exported by the packages a package imports.
//
// The analyzers encode the invariants the paper's cluster algebra depends
// on (see DESIGN.md, "Static analysis & invariants"):
//
//	ctxflow           context-holding functions thread their ctx; no fresh contexts in libraries
//	deprecatedcall    legacy System.Query* wrapper calls stay confined to their declaring package and tests
//	deprecatedfield   deprecated struct fields (Config.Balance) stay confined to their declaring package, main, and tests
//	errwrap           exported errors of contract packages are classifiable via errors.Is
//	featuremutation   SF/TF only written by the cluster package
//	floatcmp          no ==/!= on float severities or similarities
//	lockcheck         no lock copies, no Lock without Unlock
//	lockorder         no cycles in the interprocedural lock-acquisition graph
//	nondet            determinism roots never reach time, rand, env, or map order
//	rangedeterminism  no map-iteration order leaking into output
//	rawfswrite        no direct os writes outside the faultfs seam
//	rawlog            no log.Printf/fmt.Print* in commands outside olog
//	spanend           every obs.Start span is ended or returned to the caller
//
// A finding can be suppressed — with a written justification — by a
// "//atyplint:ignore <analyzer> reason" comment on the same or preceding
// line. With -json, findings (including suppressed ones, marked) stream to
// stdout as one JSON array for CI artifacts; with -time, per-analyzer wall
// time goes to stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strings"
	"time"

	"github.com/cpskit/atypical/internal/analysis/ctxflow"
	"github.com/cpskit/atypical/internal/analysis/deprecatedcall"
	"github.com/cpskit/atypical/internal/analysis/deprecatedfield"
	"github.com/cpskit/atypical/internal/analysis/errwrap"
	"github.com/cpskit/atypical/internal/analysis/featuremutation"
	"github.com/cpskit/atypical/internal/analysis/floatcmp"
	"github.com/cpskit/atypical/internal/analysis/framework"
	"github.com/cpskit/atypical/internal/analysis/load"
	"github.com/cpskit/atypical/internal/analysis/lockcheck"
	"github.com/cpskit/atypical/internal/analysis/lockorder"
	"github.com/cpskit/atypical/internal/analysis/nondet"
	"github.com/cpskit/atypical/internal/analysis/rangedeterminism"
	"github.com/cpskit/atypical/internal/analysis/rawfswrite"
	"github.com/cpskit/atypical/internal/analysis/rawlog"
	"github.com/cpskit/atypical/internal/analysis/spanend"
)

// analyzers is the multichecker suite, alphabetical.
var analyzers = []*framework.Analyzer{
	ctxflow.Analyzer,
	deprecatedcall.Analyzer,
	deprecatedfield.Analyzer,
	errwrap.Analyzer,
	featuremutation.Analyzer,
	floatcmp.Analyzer,
	lockcheck.Analyzer,
	lockorder.Analyzer,
	nondet.Analyzer,
	rangedeterminism.Analyzer,
	rawfswrite.Analyzer,
	rawlog.Analyzer,
	spanend.Analyzer,
}

// vetPasses is the curated go vet subset run alongside the custom suite:
// the passes most relevant to the algebra (printf verbs in reports, copied
// locks vet can see that lockcheck's subset cannot, atomic misuse, tautological
// bool conditions, unkeyed composite literals).
var vetPasses = []string{"-printf", "-copylocks", "-atomic", "-bools", "-composites"}

// finding is one diagnostic; the JSON field names are the -json output
// contract consumed by CI (problem matcher + artifact).
type finding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		list     = flag.Bool("list", false, "list analyzers and exit")
		only     = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
		noVet    = flag.Bool("novet", false, "skip the curated go vet passes")
		jsonOut  = flag.Bool("json", false, "emit findings (including suppressed) as JSON on stdout")
		showTime = flag.Bool("time", false, "report per-analyzer wall time on stderr")
	)
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(os.Stdout, "%-18s %s\n", a.Name, firstLine(a.Doc))
		}
		return 0
	}

	selected := analyzers
	if *only != "" {
		selected = nil
		want := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
		for _, a := range analyzers {
			if want[a.Name] {
				selected = append(selected, a)
				delete(want, a.Name)
			}
		}
		if len(want) > 0 {
			unknown := make([]string, 0, len(want))
			for name := range want {
				unknown = append(unknown, name)
			}
			sort.Strings(unknown)
			fmt.Fprintf(os.Stderr, "atyplint: unknown analyzer(s) %s\n", strings.Join(unknown, ", "))
			return 2
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	// load.Packages returns `go list -deps` order: dependencies before
	// dependents, which the shared fact stores below rely on.
	pkgs, err := load.Packages("", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "atyplint: %v\n", err)
		return 2
	}

	stores := map[*framework.Analyzer]*framework.FactStore{}
	for _, a := range selected {
		framework.RegisterFactTypes(a)
		stores[a] = framework.NewFactStore()
	}

	var findings []finding
	elapsed := map[string]time.Duration{}
	for _, pkg := range pkgs {
		sup := framework.CollectSuppressions(pkg.Fset, pkg.Syntax)
		for _, a := range selected {
			pass := &framework.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			pass.SetFacts(stores[a])
			name := a.Name
			pass.Report = func(d framework.Diagnostic) {
				p := pkg.Fset.Position(d.Pos)
				findings = append(findings, finding{
					File:       p.Filename,
					Line:       p.Line,
					Col:        p.Column,
					Analyzer:   name,
					Message:    d.Message,
					Suppressed: sup.Suppressed(pkg.Fset, name, d.Pos),
				})
			}
			start := time.Now()
			if _, err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "atyplint: %s on %s: %v\n", a.Name, pkg.PkgPath, err)
				return 2
			}
			if err := pass.FinishFacts(); err != nil {
				fmt.Fprintf(os.Stderr, "atyplint: %s on %s: %v\n", a.Name, pkg.PkgPath, err)
				return 2
			}
			elapsed[a.Name] += time.Since(start)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})

	active := 0
	for _, f := range findings {
		if !f.Suppressed {
			active++
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "atyplint: encoding findings: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			if f.Suppressed {
				continue
			}
			fmt.Fprintf(os.Stdout, "%s:%d:%d: %s: %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
		}
	}

	if *showTime {
		names := make([]string, 0, len(elapsed))
		for name := range elapsed {
			names = append(names, name)
		}
		sort.Slice(names, func(i, j int) bool {
			if elapsed[names[i]] != elapsed[names[j]] {
				return elapsed[names[i]] > elapsed[names[j]]
			}
			return names[i] < names[j]
		})
		for _, name := range names {
			fmt.Fprintf(os.Stderr, "atyplint: %-18s %8.1fms\n",
				name, float64(elapsed[name].Microseconds())/1000)
		}
	}

	status := 0
	if active > 0 {
		fmt.Fprintf(os.Stderr, "atyplint: %d finding(s)\n", active)
		status = 1
	}

	if !*noVet {
		args := append(append([]string{"vet"}, vetPasses...), patterns...)
		cmd := exec.Command("go", args...)
		// In -json mode stdout must stay pure JSON; vet findings still fail
		// the run, they just land on stderr.
		if *jsonOut {
			cmd.Stdout = os.Stderr
		} else {
			cmd.Stdout = os.Stdout
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			fmt.Fprintf(os.Stderr, "atyplint: go vet %s reported findings\n", strings.Join(vetPasses, " "))
			status = 1
		}
	}
	return status
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
