package main

import (
	"os"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// docTable parses the analyzer table out of this command's package doc
// comment in main.go: lines of the form "//\tname  description".
func docTable(t *testing.T) map[string]string {
	t.Helper()
	src, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	row := regexp.MustCompile(`^//\t([a-z]+)\s{2,}(.+)$`)
	out := map[string]string{}
	for _, line := range strings.Split(string(src), "\n") {
		if strings.HasPrefix(line, "package ") {
			break // only the doc comment counts
		}
		if m := row.FindStringSubmatch(line); m != nil {
			out[m[1]] = strings.TrimSpace(m[2])
		}
	}
	if len(out) == 0 {
		t.Fatal("no analyzer table found in main.go doc comment")
	}
	return out
}

// designTable parses the analyzer table in DESIGN.md ("| `name` | desc |"
// rows of section 5b).
func designTable(t *testing.T) map[string]string {
	t.Helper()
	src, err := os.ReadFile("../../DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	row := regexp.MustCompile("^\\| `([a-z]+)` \\| (.+) \\|$")
	out := map[string]string{}
	for _, line := range strings.Split(string(src), "\n") {
		if m := row.FindStringSubmatch(line); m != nil {
			out[m[1]] = strings.TrimSpace(m[2])
		}
	}
	if len(out) == 0 {
		t.Fatal("no analyzer table found in DESIGN.md")
	}
	return out
}

// TestAnalyzerTableInSync pins the three places the analyzer suite is
// enumerated — the analyzers slice (the truth), the doc comment of this
// command, and the DESIGN.md invariant table — to the same names and
// one-line descriptions, so adding an analyzer without documenting it (or
// documenting one that is not registered) fails the build.
func TestAnalyzerTableInSync(t *testing.T) {
	slice := map[string]bool{}
	var names []string
	for _, a := range analyzers {
		if slice[a.Name] {
			t.Errorf("analyzer %s registered twice", a.Name)
		}
		slice[a.Name] = true
		names = append(names, a.Name)
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("analyzers slice is not alphabetical: %v", names)
	}

	doc := docTable(t)
	design := designTable(t)

	for _, name := range names {
		if _, ok := doc[name]; !ok {
			t.Errorf("analyzer %s missing from main.go doc comment table", name)
		}
		if _, ok := design[name]; !ok {
			t.Errorf("analyzer %s missing from DESIGN.md table", name)
		}
	}
	for name := range doc {
		if !slice[name] {
			t.Errorf("main.go doc comment lists %s, which is not registered", name)
		}
	}
	for name := range design {
		if !slice[name] {
			t.Errorf("DESIGN.md table lists %s, which is not registered", name)
		}
	}
	for name, docDesc := range doc {
		if designDesc, ok := design[name]; ok && docDesc != designDesc {
			t.Errorf("%s description differs:\n  main.go:   %s\n  DESIGN.md: %s",
				name, docDesc, designDesc)
		}
	}
}
