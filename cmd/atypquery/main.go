// Command atypquery answers analytical queries Q(W, T) against a forest
// built by atypforest, printing the significant atypical clusters with
// their spatial and temporal profile — the Example 1 questions: where the
// congestions happen, when they start, and which segment is most serious.
//
// Usage:
//
//	atypquery -forest forest/ -data data/ -from 0 -days 7
//	          [-strategy gui] [-deltas 0.02] [-sensors 400] [-seed 42]
//	          [-minlat x -minlon x -maxlat x -maxlon x]
//	          [-shards 0] [-shardpeers url,url] [-explain] [-explainjson]
//
// -shards n answers the query scatter-gather across n in-process shards
// (the loaded forest is partitioned by home region) instead of one pass
// over the whole forest; the answer is byte-identical either way, so the
// flag exists to exercise and time the sharded path from the CLI.
// -shardpeers scatters to remote shard servers instead (atypserve
// -shardserve processes over the same deployment configuration); the run
// executes under a root span whose traceparent is injected on every shard
// call, so the printed trace ID finds the scatter on the servers'
// /debug/traces.
//
// -explain prints the run's EXPLAIN table after the report: strategy,
// significance bound arithmetic, per-stage timings, pruning and red-zone
// accounting, merge-tree shape, and per-macro significance verdicts.
// -explainjson prints the same record as indented JSON instead.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/cpskit/atypical/internal/cluster"
	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/cube"
	"github.com/cpskit/atypical/internal/forest"
	"github.com/cpskit/atypical/internal/geo"
	"github.com/cpskit/atypical/internal/obs"
	"github.com/cpskit/atypical/internal/query"
	"github.com/cpskit/atypical/internal/report"
	"github.com/cpskit/atypical/internal/shard"
	"github.com/cpskit/atypical/internal/storage"
	"github.com/cpskit/atypical/internal/traffic"
)

func main() {
	var (
		forestDir = flag.String("forest", "forest", "directory of a saved forest")
		data      = flag.String("data", "data", "directory of .rec files (for the red-zone severity index)")
		from      = flag.Int("from", 0, "first day of the query range")
		days      = flag.Int("days", 7, "number of days in the query range")
		strat     = flag.String("strategy", "gui", "query strategy: all, pru or gui")
		deltaS    = flag.Float64("deltas", 0.02, "severity threshold δs")
		deltaSim  = flag.Float64("deltasim", 0.5, "similarity threshold δsim")
		sensors   = flag.Int("sensors", 400, "approximate deployment size (must match atypgen)")
		seed      = flag.Int64("seed", 42, "deployment seed (must match atypgen)")
		minLat    = flag.Float64("minlat", 0, "spatial range: south edge (0 = whole city)")
		minLon    = flag.Float64("minlon", 0, "spatial range: west edge")
		maxLat    = flag.Float64("maxlat", 0, "spatial range: north edge")
		maxLon    = flag.Float64("maxlon", 0, "spatial range: east edge")
		shards      = flag.Int("shards", 0, "scatter-gather the query across n in-process shards (0 unsharded)")
		shardPeers  = flag.String("shardpeers", "", "comma-separated shard server base URLs: scatter the candidates stage to remote atypserve -shardserve processes")
		showMap     = flag.Bool("map", false, "print the region severity map with red zones")
		explain     = flag.Bool("explain", false, "print the query EXPLAIN table after the report")
		explainJSON = flag.Bool("explainjson", false, "print the query EXPLAIN record as JSON after the report")
	)
	flag.Parse()

	strategy, err := parseStrategy(*strat)
	if err != nil {
		fatal(err)
	}
	netCfg := traffic.ScaledConfig(*sensors)
	netCfg.Seed = *seed
	net := traffic.GenerateNetwork(netCfg)
	spec := cps.DefaultSpec()

	var idgen cluster.IDGen
	opts := cluster.IntegrateOptions{
		SimThreshold: *deltaSim,
		Balance:      cluster.Arithmetic,
		Period:       cps.Window(spec.PerDay()),
	}
	f, err := forest.Load(*forestDir, spec, &idgen, opts, 28)
	if err != nil {
		fatal(err)
	}
	// Cluster IDs in the loaded forest may collide with fresh ones; skip
	// the generator past a safe point.
	for i := 0; i < 1_000_000; i++ {
		idgen.Next()
	}

	sev := cube.NewSeverityIndex(net, spec)
	catalog, err := storage.OpenCatalog(*data)
	if err != nil {
		fatal(err)
	}
	for _, info := range catalog.List() {
		rs, err := catalog.Read(info.Name)
		if err != nil {
			fatal(err)
		}
		sev.Add(rs.Records())
	}

	engine := &query.Engine{Net: net, Forest: f, Severity: sev, Gen: &idgen}
	switch {
	case *shardPeers != "":
		var backends []shard.Backend
		for i, base := range strings.Split(*shardPeers, ",") {
			base = strings.TrimSpace(base)
			if base == "" {
				fatal(fmt.Errorf("-shardpeers: empty URL at position %d", i))
			}
			backends = append(backends, shard.NewHTTP(fmt.Sprintf("shard%d", i), base, nil))
		}
		engine.Scatterer = shard.NewCoordinator(backends, nil)
	case *shards > 0:
		m, err := shard.NewMap(net.Grid, *shards)
		if err != nil {
			fatal(err)
		}
		set := shard.NewSet(m, net, spec, &idgen, opts, 28)
		for _, day := range f.Days() {
			set.AppendDay(day, f.Day(day))
		}
		engine.Scatterer = shard.NewCoordinator(set.Backends(), nil)
	}
	var q query.Query
	if *maxLat != 0 || *maxLon != 0 {
		box := geo.BBox{Min: geo.Point{Lat: *minLat, Lon: *minLon}, Max: geo.Point{Lat: *maxLat, Lon: *maxLon}}
		q = query.BoxQuery(net, spec, box, *from, *days, *deltaS)
	} else {
		q = query.CityQuery(net, spec, *from, *days, *deltaS)
	}
	ctx := context.Background()
	var rootSpan *obs.Span
	if *shardPeers != "" {
		// Remote scatter runs under a root span with a discard exporter: the
		// span is not retained here, but the scatter's HTTP calls inject its
		// traceparent, so the shard servers stitch this run into their own
		// /debug/traces under the trace ID printed below.
		ctx = obs.WithExporter(ctx, func(obs.Span) {})
		ctx, rootSpan = obs.Start(ctx, "atypquery.query")
	}
	var exp *query.Explain
	if *explain || *explainJSON {
		ctx, exp = query.WithExplain(ctx)
	}
	res, err := engine.RunCtx(ctx, q, strategy)
	rootSpan.End()
	if err != nil {
		fatal(err)
	}

	out := os.Stdout
	fmt.Fprintf(out, "query: days [%d, %d), %d regions, strategy %s, δs=%.3g (bound %.0f severity-min)\n",
		*from, *from+*days, len(q.Regions), res.Strategy, *deltaS, float64(res.Bound))
	if rootSpan != nil {
		fmt.Fprintf(out, "trace: %s (find the scatter on the shard servers' /debug/traces)\n", rootSpan.TraceHex())
	}
	fmt.Fprintf(out, "inputs: %d of %d micro-clusters", res.InputMicros, res.CandidateMicros)
	if strategy == query.Gui {
		fmt.Fprintf(out, " (%d red zones)", res.RedZones)
	}
	fmt.Fprintf(out, "; %d macro-clusters, %d significant; %s\n",
		len(res.Macros), len(res.Significant), res.Elapsed.Round(time.Millisecond))
	if res.Partial {
		fmt.Fprintf(out, "PARTIAL ANSWER: shards %v failed after retry\n", res.FailedShards)
	}
	fmt.Fprintln(out)

	fmt.Fprint(out, report.Ranking(net, spec, res.Significant))
	if len(res.Significant) == 0 {
		fmt.Fprintln(out, "no significant clusters in range — lower δs or widen the range")
	}
	if *showMap {
		n := 0
		for _, r := range q.Regions {
			n += len(net.SensorsInRegion(r))
		}
		zones := sev.GuidedRedZones(q.Regions, q.Time, q.DeltaS, n)
		fmt.Fprintln(out)
		fmt.Fprint(out, report.RegionHeatmap(net, sev, q.Time, zones))
	}
	if *explainJSON {
		data, err := exp.JSON()
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(out)
		out.Write(data)
	} else if *explain {
		fmt.Fprintln(out)
		fmt.Fprint(out, exp.Text())
	}
}

func parseStrategy(s string) (query.Strategy, error) {
	switch s {
	case "all":
		return query.All, nil
	case "pru":
		return query.Pru, nil
	case "gui":
		return query.Gui, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q (want all, pru or gui)", s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "atypquery:", err)
	os.Exit(1)
}
