package atypical

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/cpskit/atypical/internal/shard"
)

// renderRuns serializes every user-facing query surface of a system — the
// three strategies' result shapes plus the rendered rankings and
// descriptions — through Run, with per-request overrides applied. Elapsed is
// deliberately excluded: it is the only non-deterministic Report field.
func renderRuns(t *testing.T, sys *System, mutate func(*QueryRequest)) string {
	t.Helper()
	var b strings.Builder
	for _, strat := range []Strategy{IntegrateAll, Pruned, Guided} {
		req := QueryRequest{FirstDay: 0, Days: 7, Strategy: strat, AllowPartial: true}
		if mutate != nil {
			mutate(&req)
		}
		res, err := sys.Run(context.Background(), req)
		if err != nil {
			t.Fatalf("Run(%v): %v", strat, err)
		}
		fmt.Fprintf(&b, "# %v candidates=%d inputs=%d zones=%d bound=%v macros=%d\n",
			res.Strategy, res.CandidateMicros, res.InputMicros, res.RedZones, res.Bound, len(res.Macros))
		b.WriteString(sys.Ranking(res.Significant))
		for _, c := range res.Significant {
			b.WriteString(sys.Describe(c))
			b.WriteString("\n")
		}
	}
	return b.String()
}

// The tentpole invariant: a sharded system answers byte-identically to the
// unsharded one, for every shard count — the coordinator re-establishes the
// canonical candidate order, so integration sees the same inputs in the same
// order and mints the same IDs.
func TestShardedQueryByteIdentical(t *testing.T) {
	want := renderRuns(t, buildSystem(t), nil)
	if want == "" {
		t.Fatal("unsharded system rendered nothing; byte-identity check is vacuous")
	}
	for _, n := range []int{1, 2, 8} {
		got := renderRuns(t, buildSystem(t, WithShards(n)), nil)
		if got != want {
			t.Fatalf("shards=%d diverged from unsharded:\n%s", n, diffAt(got, want))
		}
	}
}

// BypassShards must serve the identical answer from the coordinator's own
// forest — the debugging escape hatch is equivalence-checked too.
func TestBypassShardsByteIdentical(t *testing.T) {
	want := renderRuns(t, buildSystem(t), nil)
	got := renderRuns(t, buildSystem(t, WithShards(4)), func(req *QueryRequest) {
		req.BypassShards = true
	})
	if got != want {
		t.Fatalf("BypassShards diverged from unsharded:\n%s", diffAt(got, want))
	}
}

// shardServers starts one httptest server per shard, each serving the data
// system's home-filtered view at ShardQueryPath plus a trivial /readyz.
func shardServers(t *testing.T, data *System, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for k := 0; k < n; k++ {
		h, err := data.ShardHandler(k, n)
		if err != nil {
			t.Fatal(err)
		}
		mux := http.NewServeMux()
		mux.Handle(ShardQueryPath, h)
		mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) { fmt.Fprintln(w, "ready") })
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		urls[k] = srv.URL
	}
	return urls
}

// The shard matrix: every shard count × both backends must render the
// unsharded bytes. The HTTP half runs real shard servers speaking the exact
// wire codec; the coordinator is a separate System over the same Config, so
// the deterministic ingest keeps cluster IDs aligned across processes.
func TestShardMatrix(t *testing.T) {
	want := renderRuns(t, buildSystem(t), nil)
	for _, n := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("local-%d", n), func(t *testing.T) {
			if got := renderRuns(t, buildSystem(t, WithShards(n)), nil); got != want {
				t.Fatalf("local shards=%d diverged:\n%s", n, diffAt(got, want))
			}
		})
		t.Run(fmt.Sprintf("http-%d", n), func(t *testing.T) {
			data := buildSystem(t)
			urls := shardServers(t, data, n)
			coord := buildSystem(t, WithShardServers(urls...))
			if got := renderRuns(t, coord, nil); got != want {
				t.Fatalf("http shards=%d diverged:\n%s", n, diffAt(got, want))
			}
			sts := coord.ShardsReady(context.Background())
			if len(sts) != n {
				t.Fatalf("ShardsReady reported %d shards, want %d", len(sts), n)
			}
			for _, st := range sts {
				if st.Err != nil {
					t.Errorf("shard %s not ready: %v", st.Shard, st.Err)
				}
			}
		})
	}
}

// Losing a shard after retry must be loud: the Report is flagged Partial and
// atyp_shard_failures_total bumped, Run refuses the partial answer unless
// AllowPartial is set, and losing everything is an error.
func TestShardedPartialFailure(t *testing.T) {
	data := buildSystem(t)
	live := shardServers(t, data, 2)[0]
	deadSrv := httptest.NewServer(http.NewServeMux())
	dead := deadSrv.URL
	deadSrv.Close()

	reg := NewObserver()
	sys := buildSystem(t, WithShardServers(live, dead), WithObserver(reg))

	rep := mustRun(t, sys, QueryRequest{Days: 7, AllowPartial: true})
	if !rep.Partial {
		t.Fatal("losing a shard did not mark the report partial")
	}
	if len(rep.FailedShards) != 1 || rep.FailedShards[0] != "shard1" {
		t.Fatalf("FailedShards = %v, want [shard1]", rep.FailedShards)
	}
	if v, ok := reg.Snapshot().Value("atyp_shard_failures_total", "shard", "shard1"); !ok || v < 1 {
		t.Fatalf("atyp_shard_failures_total{shard=shard1} = %v (ok=%v), want >= 1", v, ok)
	}

	if _, err := sys.Run(context.Background(), QueryRequest{Days: 7}); !errors.Is(err, ErrPartialResult) {
		t.Fatalf("Run without AllowPartial = %v, want ErrPartialResult", err)
	}
	res, err := sys.Run(context.Background(), QueryRequest{Days: 7, AllowPartial: true})
	if err != nil || !res.Partial {
		t.Fatalf("Run with AllowPartial: res=%+v err=%v", res, err)
	}

	allDead := buildSystem(t, WithShardServers(dead, dead))
	if _, err := allDead.Run(context.Background(), QueryRequest{Days: 7, AllowPartial: true}); !errors.Is(err, shard.ErrAllShardsFailed) {
		t.Fatalf("all shards dead = %v, want ErrAllShardsFailed", err)
	}
}

// Scatter-gather under the race detector: concurrent sharded queries across
// strategies while the per-shard forests serve them.
func TestShardedQueryRaceHammer(t *testing.T) {
	sys := buildSystem(t, WithShards(4), WithQueryWorkers(2))
	want := mustRun(t, sys, QueryRequest{Days: 7, AllowPartial: true}).CandidateMicros
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				strat := []Strategy{IntegrateAll, Pruned, Guided}[(g+i)%3]
				res, err := sys.Run(context.Background(), QueryRequest{Days: 7, Strategy: strat, AllowPartial: true})
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if res.CandidateMicros != want {
					t.Errorf("goroutine %d: candidates = %d, want %d", g, res.CandidateMicros, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// fuzzConfig is deliberately tiny: the fuzzer builds two full systems per
// execution.
func fuzzConfig() Config {
	cfg := DefaultConfig()
	cfg.Sensors = 60
	cfg.DaysPerMonth = 5
	return cfg
}

func fuzzSystem(t testing.TB, options ...Option) *System {
	sys, err := NewSystem(fuzzConfig(), options...)
	if err != nil {
		t.Fatal(err)
	}
	sys.Ingest(sys.GenerateMonth(0).Atypical)
	return sys
}

// FuzzShardedQueryEquivalence drives random (shard count, day range,
// strategy) triples through a sharded and an unsharded system and requires
// byte-identical renderings — the fuzzing half of the tentpole invariant.
func FuzzShardedQueryEquivalence(f *testing.F) {
	f.Add(uint8(2), uint8(0), uint8(5), uint8(0))
	f.Add(uint8(1), uint8(1), uint8(3), uint8(1))
	f.Add(uint8(8), uint8(4), uint8(1), uint8(2))
	f.Add(uint8(5), uint8(3), uint8(2), uint8(1))
	f.Fuzz(func(t *testing.T, nb, firstb, daysb, stratb uint8) {
		n := int(nb)%8 + 1
		firstDay := int(firstb) % 5
		days := int(daysb)%5 + 1
		strat := []Strategy{IntegrateAll, Pruned, Guided}[int(stratb)%3]

		render := func(sys *System) string {
			res, err := sys.Run(context.Background(), QueryRequest{
				FirstDay: firstDay, Days: days, Strategy: strat, AllowPartial: true,
			})
			if err != nil {
				t.Fatalf("n=%d first=%d days=%d strat=%v: %v", n, firstDay, days, strat, err)
			}
			var b strings.Builder
			fmt.Fprintf(&b, "candidates=%d inputs=%d zones=%d bound=%v macros=%d\n",
				res.CandidateMicros, res.InputMicros, res.RedZones, res.Bound, len(res.Macros))
			b.WriteString(sys.Ranking(res.Significant))
			for _, c := range res.Significant {
				b.WriteString(sys.Describe(c))
				b.WriteString("\n")
			}
			return b.String()
		}
		want := render(fuzzSystem(t))
		got := render(fuzzSystem(t, WithShards(n)))
		if got != want {
			t.Fatalf("n=%d first=%d days=%d strat=%v diverged:\n%s", n, firstDay, days, strat, diffAt(got, want))
		}
	})
}
