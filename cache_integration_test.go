package atypical

import (
	"context"
	"sync"
	"testing"
)

// The answer cache must be invisible in the bytes: the miss path renders
// exactly what an uncached system renders, and a hit replays the original
// answer verbatim — including minted cluster IDs, which a recomputation
// would refresh. The same holds through the sharded gather path.
func TestQueryCacheByteIdentity(t *testing.T) {
	off := renderRuns(t, buildSystem(t), nil)
	if off == "" {
		t.Fatal("uncached system rendered nothing; identity check is vacuous")
	}
	for name, opts := range map[string][]Option{
		"unsharded": {WithQueryCache(16)},
		"sharded":   {WithShards(4), WithQueryCache(16)},
	} {
		t.Run(name, func(t *testing.T) {
			sys := buildSystem(t, opts...)
			first := renderRuns(t, sys, nil)
			if first != off {
				t.Fatalf("cache miss path diverged from uncached system:\n%s", diffAt(first, off))
			}
			second := renderRuns(t, sys, nil)
			if second != first {
				t.Fatalf("cache hit diverged from the original answer:\n%s", diffAt(second, first))
			}
			hits, misses, _ := sys.QueryCacheStats()
			if hits != 3 || misses != 3 {
				t.Fatalf("stats after two passes = %d hits, %d misses; want 3, 3", hits, misses)
			}
		})
	}
}

// Without WithQueryCache every run recomputes: no stats accrue, and the
// second pass mints fresh IDs (covered by stats staying zero).
func TestQueryCacheDisabledByDefault(t *testing.T) {
	sys := buildSystem(t)
	renderRuns(t, sys, nil)
	renderRuns(t, sys, nil)
	if h, m, e := sys.QueryCacheStats(); h != 0 || m != 0 || e != 0 {
		t.Fatalf("uncached system accrued cache stats: %d/%d/%d", h, m, e)
	}
}

// A cache hit surfaces in EXPLAIN as a single "cache" stage while the
// answer itself stays byte-identical to the computed run.
func TestQueryCacheExplainStage(t *testing.T) {
	sys := buildSystem(t, WithQueryCache(8))
	req := QueryRequest{Days: 7, Strategy: Guided, Explain: true}
	first, err := sys.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range first.Explain.Stages {
		if st.Name == "cache" {
			t.Fatal("computed run reported a cache stage")
		}
	}
	second, err := sys.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(second.Explain.Stages) != 1 || second.Explain.Stages[0].Name != "cache" {
		t.Fatalf("hit stages = %+v, want exactly one cache stage", second.Explain.Stages)
	}
	if got, want := renderReport(sys, second.Report), renderReport(sys, first.Report); got != want {
		t.Fatalf("explained hit diverged from computed answer:\n%s", diffAt(got, want))
	}
	if second.Explain.Candidates.Scanned != first.Explain.Candidates.Scanned {
		t.Fatalf("hit explain scanned %d candidates, computed run %d",
			second.Explain.Candidates.Scanned, first.Explain.Candidates.Scanned)
	}
}

// Ingesting more days bumps the forest version, so every prior answer goes
// stale: the next lookup misses (and drops the entry) instead of serving a
// pre-ingest answer.
func TestQueryCacheInvalidatedByIngest(t *testing.T) {
	sys := buildSystem(t, WithQueryCache(8))
	req := QueryRequest{Days: 7}
	before := mustRun(t, sys, req)
	if rep := mustRun(t, sys, req); rep.CandidateMicros != before.CandidateMicros {
		t.Fatal("hit changed the answer")
	}
	sys.Ingest(sys.GenerateMonth(1).Atypical)
	after := mustRun(t, sys, req)
	hits, misses, evictions := sys.QueryCacheStats()
	if hits != 1 || misses != 2 || evictions != 1 {
		t.Fatalf("stats = %d/%d/%d, want 1 hit, 2 misses, 1 stale eviction", hits, misses, evictions)
	}
	// The window [day 0, day 7) predates the second month, so the recomputed
	// answer has the same shape even though the cached one was unusable.
	if after.CandidateMicros != before.CandidateMicros {
		t.Fatalf("recomputed candidates = %d, want %d", after.CandidateMicros, before.CandidateMicros)
	}
}

// LRU capacity pressure surfaces through the facade stats: a one-entry
// cache thrashes between two distinct queries.
func TestQueryCacheEvictionThroughFacade(t *testing.T) {
	sys := buildSystem(t, WithQueryCache(1))
	a := QueryRequest{Days: 7}
	b := QueryRequest{Days: 3}
	mustRun(t, sys, a)
	mustRun(t, sys, b) // evicts a
	mustRun(t, sys, a) // miss again, evicts b
	_, misses, evictions := sys.QueryCacheStats()
	if misses != 3 || evictions < 2 {
		t.Fatalf("thrash stats = %d misses, %d evictions; want 3 misses, >= 2 evictions", misses, evictions)
	}
}

// The -race hammer: concurrent hits, misses, and a mid-flight ingest that
// invalidates everything. Every answer must be complete and error-free.
func TestQueryCacheConcurrentHammer(t *testing.T) {
	sys := buildSystem(t, WithQueryCache(4), WithQueryWorkers(2))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				strat := []Strategy{IntegrateAll, Pruned, Guided}[(g+i)%3]
				days := 3 + (g+i)%5
				res, err := sys.Run(context.Background(), QueryRequest{Days: days, Strategy: strat})
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if res.Partial {
					t.Errorf("goroutine %d: unsharded answer flagged partial", g)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		sys.Ingest(sys.GenerateMonth(1).Atypical)
	}()
	wg.Wait()
}
