package atypical

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/cpskit/atypical/internal/cps"
)

// renderReport serializes one report the way renderReports does — the byte
// surface the wrapper identity tests compare.
func renderReport(sys *System, res *Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %v candidates=%d inputs=%d zones=%d bound=%v macros=%d\n",
		res.Strategy, res.CandidateMicros, res.InputMicros, res.RedZones, res.Bound, len(res.Macros))
	b.WriteString(sys.Ranking(res.Significant))
	for _, c := range res.Significant {
		b.WriteString(sys.Describe(c))
		b.WriteString("\n")
	}
	return b.String()
}

// Every deprecated wrapper must be a thin veneer over Run: same engine, same
// bytes. Each comparison builds fresh systems because sequential runs on one
// system mint fresh macro IDs from the shared generator.
func TestWrappersByteIdenticalToRun(t *testing.T) {
	ctx := context.Background()
	box := buildSystem(t).Network().Grid.Box
	box.Max.Lon = (box.Min.Lon + box.Max.Lon) / 2

	cases := []struct {
		name    string
		legacy  func(*System) (*Report, error)
		request QueryRequest
	}{
		{
			name:    "QueryCity",
			legacy:  func(s *System) (*Report, error) { return s.QueryCity(0, 7, Guided), nil },
			request: QueryRequest{FirstDay: 0, Days: 7, Strategy: Guided},
		},
		{
			name:    "QueryCityCtx",
			legacy:  func(s *System) (*Report, error) { return s.QueryCityCtx(ctx, 0, 7, Pruned) },
			request: QueryRequest{FirstDay: 0, Days: 7, Strategy: Pruned},
		},
		{
			name:    "QueryBox",
			legacy:  func(s *System) (*Report, error) { return s.QueryBox(box, 0, 7, IntegrateAll), nil },
			request: QueryRequest{Box: &box, FirstDay: 0, Days: 7, Strategy: IntegrateAll},
		},
		{
			name: "QueryCityExplainCtx",
			legacy: func(s *System) (*Report, error) {
				rep, exp, err := s.QueryCityExplainCtx(ctx, 0, 7, IntegrateAll)
				if err == nil && exp == nil {
					return nil, errors.New("wrapper returned no explain record")
				}
				return rep, err
			},
			request: QueryRequest{FirstDay: 0, Days: 7, Strategy: IntegrateAll, Explain: true},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			legacySys := buildSystem(t)
			rep, err := tc.legacy(legacySys)
			if err != nil {
				t.Fatal(err)
			}
			want := renderReport(legacySys, rep)

			runSys := buildSystem(t)
			req := tc.request
			req.AllowPartial = true
			res, err := runSys.Run(ctx, req)
			if err != nil {
				t.Fatal(err)
			}
			if req.Explain && res.Explain == nil {
				t.Fatal("Run with Explain set returned no record")
			}
			got := renderReport(runSys, res.Report)
			if got != want {
				t.Fatalf("%s diverged from Run:\n%s", tc.name, diffAt(got, want))
			}
		})
	}
}

// QueryAt's explicit region/window scope must survive the lift into a
// QueryRequest — including the nil-regions edge (explicit empty scope, not
// "whole city").
func TestQueryAtLiftsExactly(t *testing.T) {
	legacySys := buildSystem(t)
	q := Query{Time: DayRange(legacySys.Spec(), 0, 7), DeltaS: 0.02}
	for _, r := range legacySys.Network().Grid.Regions() {
		q.Regions = append(q.Regions, r.ID)
	}
	want := renderReport(legacySys, legacySys.QueryAt(q, Pruned))

	runSys := buildSystem(t)
	tr := q.Time
	res, err := runSys.Run(context.Background(), QueryRequest{
		Regions: q.Regions, Window: &tr, DeltaS: q.DeltaS, Strategy: Pruned, AllowPartial: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := renderReport(runSys, res.Report); got != want {
		t.Fatalf("QueryAt diverged from Run:\n%s", diffAt(got, want))
	}
}

// A time period is mandatory — the zero-value request is rejected — and a
// Window override must take precedence over FirstDay/Days.
func TestRunRequestResolution(t *testing.T) {
	sys := buildSystem(t)
	if _, err := sys.Run(context.Background(), QueryRequest{}); !errors.Is(err, ErrInvalidRequest) {
		t.Fatalf("zero-value request error = %v, want ErrInvalidRequest", err)
	}

	full, err := sys.Run(context.Background(), QueryRequest{Days: 7})
	if err != nil {
		t.Fatal(err)
	}
	win := cps.DayRange(sys.spec, 0, 7)
	byWindow, err := sys.Run(context.Background(), QueryRequest{Window: &win, FirstDay: 3, Days: 1})
	if err != nil {
		t.Fatal(err)
	}
	if byWindow.CandidateMicros != full.CandidateMicros {
		t.Fatalf("Window override ignored: %d vs %d candidates", byWindow.CandidateMicros, full.CandidateMicros)
	}

	if _, err := sys.Run(context.Background(), QueryRequest{Regions: []RegionID{}, Days: 7}); err != nil {
		t.Fatalf("explicit empty region scope: %v", err)
	}
}

// Every Validate rule rejects with ErrInvalidRequest; well-formed requests
// (including the Window-only and explicit-empty-scope edges) pass.
func TestQueryRequestValidate(t *testing.T) {
	box := BBox{}
	win := TimeRange{From: 0, To: 96}
	negWin := TimeRange{From: -1, To: 5}
	invWin := TimeRange{From: 10, To: 3}
	emptyWin := TimeRange{From: 7, To: 7}

	bad := map[string]QueryRequest{
		"zero value":          {},
		"negative days":       {Days: -2},
		"regions plus box":    {Regions: []RegionID{1}, Box: &box, Days: 7},
		"negative deltaS":     {Days: 7, DeltaS: -0.01},
		"negative window":     {Window: &negWin},
		"inverted window":     {Window: &invWin},
		"days zero no window": {FirstDay: 3},
	}
	for name, req := range bad {
		if err := req.Validate(); !errors.Is(err, ErrInvalidRequest) {
			t.Errorf("%s: Validate() = %v, want ErrInvalidRequest", name, err)
		}
	}

	good := map[string]QueryRequest{
		"days only":        {Days: 7},
		"window only":      {Window: &win},
		"empty window":     {Window: &emptyWin},
		"window overrides": {Window: &win, Days: -5},
		"empty regions":    {Regions: []RegionID{}, Days: 1},
		"box scope":        {Box: &box, Days: 1, DeltaS: 0.05},
	}
	for name, req := range good {
		if err := req.Validate(); err != nil {
			t.Errorf("%s: Validate() = %v, want nil", name, err)
		}
	}

	// Run surfaces the sentinel and records an API error.
	reg := NewObserver()
	sys := buildSystem(t, WithObserver(reg))
	if _, err := sys.Run(context.Background(), QueryRequest{Days: -1}); !errors.Is(err, ErrInvalidRequest) {
		t.Fatalf("Run(bad request) = %v, want ErrInvalidRequest", err)
	}
	if v, _ := sys.Metrics().Value("atyp_api_errors_total", "op", "query"); v != 1 {
		t.Fatalf("query API error count = %v, want 1", v)
	}
}
