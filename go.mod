module github.com/cpskit/atypical

go 1.22
