// Benchmarks regenerating the paper's evaluation, one per table/figure,
// plus ablations for the design choices DESIGN.md calls out. The full
// parameter sweeps live in cmd/atypbench; these benches measure the unit
// cost of each figure's inner loop so regressions show up in -bench runs.
package atypical_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/cpskit/atypical/internal/cluster"
	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/cube"
	"github.com/cpskit/atypical/internal/detect"
	"github.com/cpskit/atypical/internal/eval"
	"github.com/cpskit/atypical/internal/experiments"
	"github.com/cpskit/atypical/internal/forest"
	"github.com/cpskit/atypical/internal/gen"
	"github.com/cpskit/atypical/internal/geo"
	"github.com/cpskit/atypical/internal/index"
	"github.com/cpskit/atypical/internal/obs"
	"github.com/cpskit/atypical/internal/obs/flight"
	"github.com/cpskit/atypical/internal/predict"
	"github.com/cpskit/atypical/internal/query"
	"github.com/cpskit/atypical/internal/storage"
	"github.com/cpskit/atypical/internal/stream"
	"github.com/cpskit/atypical/internal/traffic"
	"github.com/cpskit/atypical/internal/trust"
)

// fixture is the shared bench deployment: one 14-day month on a ~350-sensor
// network, with per-day micro-clusters and the query stack prebuilt.
type fixture struct {
	net       *traffic.Network
	spec      cps.WindowSpec
	ds        *gen.Dataset
	locs      []geo.Point
	neighbors [][]cps.SensorID
	maxGap    int
	opts      cluster.IntegrateOptions
	micros    []*cluster.Cluster
	engine    *query.Engine
}

var (
	fixOnce sync.Once
	fix     *fixture
)

func benchFixture(b *testing.B) *fixture {
	b.Helper()
	fixOnce.Do(func() {
		net := traffic.GenerateNetwork(traffic.ScaledConfig(250))
		spec := cps.DefaultSpec()
		cfg := gen.DefaultConfig(net)
		cfg.DaysPerMonth = 14
		g, err := gen.New(cfg)
		if err != nil {
			panic(err)
		}
		ds := g.Month(0)
		locs := make([]geo.Point, net.NumSensors())
		for i, s := range net.Sensors {
			locs[i] = s.Loc
		}
		f := &fixture{
			net:       net,
			spec:      spec,
			ds:        ds,
			locs:      locs,
			neighbors: index.NewNeighborIndex(locs, 1.5).NeighborLists(),
			maxGap:    cluster.MaxWindowGap(15*time.Minute, spec.Width),
			opts: cluster.IntegrateOptions{
				SimThreshold: 0.5,
				Balance:      cluster.Arithmetic,
				Period:       cps.Window(spec.PerDay()),
			},
		}
		var idgen cluster.IDGen
		fr := forest.New(spec, &idgen, f.opts, 14)
		for day, recs := range ds.Atypical.SplitByDay(spec) {
			micros := cluster.ExtractMicroClusters(&idgen, recs, f.neighbors, f.maxGap)
			f.micros = append(f.micros, micros...)
			fr.AddDay(day, micros)
		}
		sev := cube.NewSeverityIndex(net, spec)
		sev.Add(ds.Atypical.Records())
		f.engine = &query.Engine{Net: net, Forest: fr, Severity: sev, Gen: &idgen}
		fix = f
	})
	return fix
}

// --- Fig. 15: model construction cost per dataset ---

func BenchmarkFig15ConstructionPR(b *testing.B) {
	f := benchFixture(b)
	for i := 0; i < b.N; i++ {
		rs, _ := detect.Scan(f.ds.ForEachReading)
		if rs.Len() == 0 {
			b.Fatal("no atypical records")
		}
	}
}

func BenchmarkFig15ConstructionOC(b *testing.B) {
	f := benchFixture(b)
	for i := 0; i < b.N; i++ {
		oc := cube.NewCubeView(f.net, f.spec, 14, nil)
		f.ds.ForEachReading(oc.AddReading)
	}
}

func BenchmarkFig15ConstructionMC(b *testing.B) {
	f := benchFixture(b)
	recs := f.ds.Atypical.Records()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mc := cube.NewCubeView(f.net, f.spec, 14, nil)
		for _, r := range recs {
			mc.AddRecord(r)
		}
	}
}

func BenchmarkFig15ConstructionAC(b *testing.B) {
	f := benchFixture(b)
	days := f.ds.Atypical.SplitByDay(f.spec)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var idgen cluster.IDGen
		for _, recs := range days {
			cluster.ExtractMicroClusters(&idgen, recs, f.neighbors, f.maxGap)
		}
	}
}

// BenchmarkFig15ConstructionACParallel is the AC curve on the parallel
// pipeline: per-day extraction fanned out over a worker pool. At 4+ cores
// this should run ≥2× faster than BenchmarkFig15ConstructionAC while
// producing byte-identical clusters (IDs included).
func benchConstructionACParallel(b *testing.B, workers int) {
	f := benchFixture(b)
	byDay := f.ds.Atypical.SplitByDay(f.spec)
	var days []cluster.DayRecords
	cps.ForEachDay(byDay, func(day int, recs []cps.Record) {
		days = append(days, cluster.DayRecords{Day: day, Records: recs})
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var idgen cluster.IDGen
		if _, err := cluster.ExtractMicroClustersDays(context.Background(), &idgen, days, f.neighbors, f.maxGap, workers); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15ConstructionACParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchConstructionACParallel(b, workers)
		})
	}
}

// --- Fig. 16: model sizes (reported as metrics on the encoders) ---

func BenchmarkFig16ModelSizeAC(b *testing.B) {
	f := benchFixture(b)
	var size int64
	for i := 0; i < b.N; i++ {
		size = storage.ClustersSize(f.micros)
	}
	b.ReportMetric(float64(size)/1024, "KB")
}

func BenchmarkFig16ModelSizeAE(b *testing.B) {
	f := benchFixture(b)
	var size int64
	for i := 0; i < b.N; i++ {
		size = storage.RecordsSize(f.ds.Atypical.Records())
	}
	b.ReportMetric(float64(size)/1024, "KB")
}

// --- Fig. 17: query cost per strategy ---

func benchQuery(b *testing.B, s query.Strategy) {
	f := benchFixture(b)
	q := query.CityQuery(f.net, f.spec, 0, 14, 0.02)
	var inputs int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := f.engine.Run(q, s)
		inputs = res.InputMicros
	}
	b.ReportMetric(float64(inputs), "inputs")
}

func BenchmarkFig17QueryAll(b *testing.B) { benchQuery(b, query.All) }
func BenchmarkFig17QueryPru(b *testing.B) { benchQuery(b, query.Pru) }
func BenchmarkFig17QueryGui(b *testing.B) { benchQuery(b, query.Gui) }

// BenchmarkObsOverheadQuery measures the cost of the observability hooks on
// the Pruned query path — the fastest strategy, so instrumentation overhead
// is largest relative to the work. "off" is the shipped default (obs
// compiled in, every handle nil); "on" records into a live registry;
// "explain" additionally arms a per-query Explain collector on the context
// (the EXPLAIN side-channel, priced per query rather than per system);
// "recorder" arms the flight recorder the way the facade does — a wide
// event plus the EXPLAIN collector it rides on, recorded into a sampling
// ring per query. The DESIGN.md zero-overhead claim is that off stays
// within noise of the pre-instrumentation engine and on stays within a few
// percent; explain and recorder are allowed to cost more — both are opt-in
// per request/deployment — but must stay within the same order of
// magnitude.
func BenchmarkObsOverheadQuery(b *testing.B) {
	f := benchFixture(b)
	q := query.CityQuery(f.net, f.spec, 0, 14, 0.02)
	run := func(b *testing.B, m *query.Metrics, explain bool, rec *flight.Recorder) {
		engine := &query.Engine{
			Net: f.engine.Net, Forest: f.engine.Forest, Severity: f.engine.Severity,
			Gen: f.engine.Gen, Obs: m,
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctx := context.Background()
			var ev *flight.Event
			if rec != nil {
				ctx, ev = flight.WithEvent(ctx)
			}
			if explain || rec != nil {
				ctx, _ = query.WithExplain(ctx)
			}
			if _, err := engine.RunCtx(ctx, q, query.Pru); err != nil {
				b.Fatal(err)
			}
			rec.Record(ev) // nil-safe; no-op for the other variants
		}
	}
	b.Run("off", func(b *testing.B) { run(b, nil, false, nil) })
	b.Run("on", func(b *testing.B) { run(b, query.NewMetrics(obs.NewRegistry()), false, nil) })
	b.Run("explain", func(b *testing.B) { run(b, nil, true, nil) })
	b.Run("recorder", func(b *testing.B) {
		run(b, nil, false, flight.NewRecorder(flight.Config{Entries: 256, SampleEvery: 1}))
	})
}

// --- Fig. 18/19: precision-recall scoring path ---

func BenchmarkFig18Scoring(b *testing.B) {
	f := benchFixture(b)
	q := query.CityQuery(f.net, f.spec, 0, 14, 0.02)
	all := f.engine.Run(q, query.All)
	gui := f.engine.Run(q, query.Gui)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr := eval.Score(gui.Macros, all.Significant, all.Bound, cluster.Arithmetic)
		if pr.Recall < 0 {
			b.Fatal("impossible recall")
		}
	}
}

// --- Fig. 20: extraction under threshold variants ---

func benchExtractDeltaT(b *testing.B, deltaT time.Duration) {
	f := benchFixture(b)
	maxGap := cluster.MaxWindowGap(deltaT, f.spec.Width)
	day0 := f.ds.Atypical.SplitByDay(f.spec)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var idgen cluster.IDGen
		cluster.ExtractMicroClusters(&idgen, day0, f.neighbors, maxGap)
	}
}

func BenchmarkFig20ExtractDeltaT15(b *testing.B) { benchExtractDeltaT(b, 15*time.Minute) }
func BenchmarkFig20ExtractDeltaT80(b *testing.B) { benchExtractDeltaT(b, 80*time.Minute) }

// --- Fig. 21: integration per balance function ---

func benchIntegrateBalance(b *testing.B, g cluster.Balance) {
	f := benchFixture(b)
	opts := f.opts
	opts.Balance = g
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var idgen cluster.IDGen
		cluster.Integrate(&idgen, f.micros, opts)
	}
}

func BenchmarkFig21IntegrateMin(b *testing.B) { benchIntegrateBalance(b, cluster.Min) }
func BenchmarkFig21IntegrateAvg(b *testing.B) { benchIntegrateBalance(b, cluster.Arithmetic) }
func BenchmarkFig21IntegrateMax(b *testing.B) { benchIntegrateBalance(b, cluster.Max) }

// --- Ablations (DESIGN.md §5) ---

// Event extraction: indexed (Proposition 1 with index) vs brute-force.
func BenchmarkExtractIndexed(b *testing.B) {
	f := benchFixture(b)
	day0 := f.ds.Atypical.SplitByDay(f.spec)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cluster.ExtractEvents(day0, f.neighbors, f.maxGap)
	}
}

func BenchmarkExtractBrute(b *testing.B) {
	f := benchFixture(b)
	day0 := f.ds.Atypical.SplitByDay(f.spec)[0]
	if len(day0) > 4000 {
		day0 = day0[:4000] // keep the quadratic oracle affordable
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cluster.ExtractEventsBrute(day0, f.locs, 1.5, f.maxGap)
	}
}

// Integration: posting-list candidates vs the literal quadratic Algorithm 3.
func BenchmarkIntegrateIndexed(b *testing.B) {
	f := benchFixture(b)
	micros := f.micros
	if len(micros) > 400 {
		micros = micros[:400]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var idgen cluster.IDGen
		cluster.Integrate(&idgen, micros, f.opts)
	}
}

func BenchmarkIntegrateNaive(b *testing.B) {
	f := benchFixture(b)
	micros := f.micros
	if len(micros) > 400 {
		micros = micros[:400]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var idgen cluster.IDGen
		cluster.IntegrateNaive(&idgen, micros, f.opts)
	}
}

// IntegrateParallel against the serial posting-list Integrate on the same
// inputs: the tree reduction costs one extra leaf pass, so it only wins once
// chunks run on real cores.
func BenchmarkIntegrateParallel(b *testing.B) {
	f := benchFixture(b)
	micros := f.micros
	if len(micros) > 400 {
		micros = micros[:400]
	}
	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var idgen cluster.IDGen
				cluster.IntegrateParallel(&idgen, micros, f.opts, workers)
			}
		})
	}
}

// The day-sharded severity build against the serial accumulate loop.
func BenchmarkSeverityAddDays(b *testing.B) {
	f := benchFixture(b)
	byDay := f.ds.Atypical.SplitByDay(f.spec)
	var days [][]cps.Record
	cps.ForEachDay(byDay, func(_ int, recs []cps.Record) {
		days = append(days, recs)
	})
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				idx := cube.NewSeverityIndex(f.net, f.spec)
				if err := idx.AddDays(context.Background(), days, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Bottom-up severity F(W,T): raw record scan vs per-region rollup index vs
// aggregate R-tree.
func BenchmarkSeverityAggScan(b *testing.B) {
	f := benchFixture(b)
	regions := query.CityQuery(f.net, f.spec, 0, 14, 0.02).Regions
	recs := f.ds.Atypical.Records()
	tr := cps.DayRange(f.spec, 0, 14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cube.FScan(f.net, recs, regions, tr)
	}
}

func BenchmarkSeverityAggRollup(b *testing.B) {
	f := benchFixture(b)
	regions := query.CityQuery(f.net, f.spec, 0, 14, 0.02).Regions
	idx := cube.NewSeverityIndex(f.net, f.spec)
	idx.Add(f.ds.Atypical.Records())
	tr := cps.DayRange(f.spec, 0, 14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.FTotal(regions, tr)
	}
}

func BenchmarkSeverityAggRTree(b *testing.B) {
	f := benchFixture(b)
	tree := index.NewRTree(f.locs)
	weights := make([]float64, len(f.locs))
	for _, r := range f.ds.Atypical.Records() {
		weights[r.Sensor] += float64(r.Severity)
	}
	box := f.net.Grid.Box
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Aggregate(box, func(id cps.SensorID) float64 { return weights[id] })
	}
}

// Feature merge: the algebraic merge-join at the heart of Algorithm 2.
func BenchmarkMergeClusters(b *testing.B) {
	f := benchFixture(b)
	if len(f.micros) < 2 {
		b.Skip("not enough micro-clusters")
	}
	a, c := f.micros[0], f.micros[1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var idgen cluster.IDGen
		cluster.Merge(&idgen, a, c)
	}
}

// Storage codec throughput.
func BenchmarkStorageEncodeRecords(b *testing.B) {
	f := benchFixture(b)
	recs := f.ds.Atypical.Records()
	b.SetBytes(int64(len(recs) * 20))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := storage.WriteRecords(io.Discard, recs); err != nil {
			b.Fatal(err)
		}
	}
}

// Experiment harness smoke bench: the full small-config suite.
func BenchmarkExperimentSuiteSmall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env, err := experiments.NewEnv(experiments.Small())
		if err != nil {
			b.Fatal(err)
		}
		for _, id := range experiments.Order {
			experiments.Registry[id](env)
		}
	}
}

// --- Extension subsystems ---

// Streaming event maintenance throughput (records/op reported as bytes for
// throughput display).
func BenchmarkStreamProcessor(b *testing.B) {
	f := benchFixture(b)
	recs := f.ds.Atypical.Records()
	b.SetBytes(int64(len(recs)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var idgen cluster.IDGen
		p, err := stream.New(stream.Config{
			Neighbors: f.neighbors,
			MaxGap:    f.maxGap,
			Emit:      func(*cluster.Cluster) {},
		}, &idgen)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range recs {
			if err := p.Observe(r); err != nil {
				b.Fatal(err)
			}
		}
		p.Flush()
	}
}

// Trust scoring over a full month of records.
func BenchmarkTrustScores(b *testing.B) {
	f := benchFixture(b)
	a, err := trust.New(trust.Config{Neighbors: f.neighbors, MaxGap: f.maxGap})
	if err != nil {
		b.Fatal(err)
	}
	recs := f.ds.Atypical.Records()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := a.Scores(recs); len(got) == 0 {
			b.Fatal("no scores")
		}
	}
}

// Prediction training from a fortnight of macro-clusters.
func BenchmarkPredictTrain(b *testing.B) {
	f := benchFixture(b)
	var idgen cluster.IDGen
	macros := cluster.Integrate(&idgen, f.micros, f.opts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := predict.Train(macros, predict.Config{TrainingDays: 14, Period: f.spec.PerDay()})
		if err != nil {
			b.Fatal(err)
		}
		if len(m.Patterns()) == 0 {
			b.Fatal("no patterns")
		}
	}
}

// Streaming record decode throughput.
func BenchmarkStorageDecodeStream(b *testing.B) {
	f := benchFixture(b)
	var buf bytes.Buffer
	if _, err := storage.WriteRecords(&buf, f.ds.Atypical.Records()); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rr, err := storage.NewRecordReader(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for {
			if _, ok := rr.Next(); !ok {
				break
			}
			n++
		}
		if rr.Err() != nil || n == 0 {
			b.Fatalf("decoded %d records, err %v", n, rr.Err())
		}
	}
}

// Periodic similarity (the integration hot path).
func BenchmarkSimilarityPeriodic(b *testing.B) {
	f := benchFixture(b)
	if len(f.micros) < 2 {
		b.Skip("not enough micros")
	}
	x, y := f.micros[0], f.micros[1]
	period := cps.Window(f.spec.PerDay())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cluster.SimilarityAt(x, y, cluster.Arithmetic, period)
	}
}
