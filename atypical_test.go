package atypical

import (
	"strings"
	"testing"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Sensors = 250
	cfg.DaysPerMonth = 7
	return cfg
}

func TestNewSystemValidation(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Sensors = 0 },
		func(c *Config) { c.DeltaD = 0 },
		func(c *Config) { c.DeltaT = 0 },
		func(c *Config) { c.SimThreshold = 0 },
		func(c *Config) { c.SimThreshold = 1.5 },
		func(c *Config) { c.DaysPerMonth = 0 },
		func(c *Config) { c.Balance = "bogus" },
	}
	for i, mutate := range cases {
		cfg := testConfig()
		mutate(&cfg)
		if _, err := NewSystem(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := NewSystem(testConfig()); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestEndToEndPipeline(t *testing.T) {
	sys, err := NewSystem(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sys.Network().NumSensors() == 0 {
		t.Fatal("no sensors")
	}
	datasets := sys.IngestMonths(1)
	if len(datasets) != 1 || datasets[0].Atypical.Len() == 0 {
		t.Fatal("no workload generated")
	}
	if sys.Forest().Stats().MicroTotal == 0 {
		t.Fatal("no micro-clusters in the forest")
	}

	all := mustRun(t, sys, QueryRequest{Days: 7})
	gui := mustRun(t, sys, QueryRequest{Days: 7, Strategy: Guided})
	pru := mustRun(t, sys, QueryRequest{Days: 7, Strategy: Pruned})

	if all.InputMicros == 0 {
		t.Fatal("All saw no inputs")
	}
	if gui.InputMicros > all.InputMicros || pru.InputMicros > all.InputMicros {
		t.Error("pruning strategies must not see more inputs than All")
	}
	// Guided retrieves every significant cluster All finds.
	for _, want := range all.Significant {
		found := false
		for _, got := range gui.Significant {
			if Similarity(want, got, 0 /* Arithmetic */) >= 0.5 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("Guided missed a significant cluster")
		}
	}
}

func TestDescribe(t *testing.T) {
	sys, err := NewSystem(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys.IngestMonths(1)
	res := mustRun(t, sys, QueryRequest{Days: 7})
	if len(res.Macros) == 0 {
		t.Fatal("no clusters to describe")
	}
	desc := sys.Describe(res.Macros[0])
	for _, needle := range []string{"cluster", "sensors", "most serious on"} {
		if !strings.Contains(desc, needle) {
			t.Errorf("Describe missing %q: %s", needle, desc)
		}
	}
	empty := &Cluster{ID: 7}
	if got := sys.Describe(empty); !strings.Contains(got, "empty") {
		t.Errorf("empty describe = %q", got)
	}
}

func TestQueryBoxNarrowsScope(t *testing.T) {
	sys, err := NewSystem(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys.IngestMonths(1)
	city := mustRun(t, sys, QueryRequest{Days: 7})
	half := sys.Network().Grid.Box
	half.Max.Lat = (half.Min.Lat + half.Max.Lat) / 2
	box := mustRun(t, sys, QueryRequest{Box: &half, Days: 7})
	if box.CandidateMicros > city.CandidateMicros {
		t.Errorf("box candidates %d > city %d", box.CandidateMicros, city.CandidateMicros)
	}
}

func TestIngestIsIncremental(t *testing.T) {
	sys, err := NewSystem(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ds := sys.GenerateMonth(0)
	// Ingest the same records twice: days gain clusters, nothing is lost.
	sys.Ingest(ds.Atypical)
	first := sys.Forest().Stats().MicroTotal
	sys.Ingest(ds.Atypical)
	second := sys.Forest().Stats().MicroTotal
	if second != 2*first {
		t.Errorf("double ingest micros = %d, want %d", second, 2*first)
	}
}

func TestGenerateMonthDeterministic(t *testing.T) {
	sys1, _ := NewSystem(testConfig())
	sys2, _ := NewSystem(testConfig())
	a := sys1.GenerateMonth(2)
	b := sys2.GenerateMonth(2)
	if a.Atypical.Len() != b.Atypical.Len() {
		t.Error("generation should be deterministic across systems with equal config")
	}
}

func TestRankingAndExplicitScope(t *testing.T) {
	sys, err := NewSystem(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys.IngestMonths(1)
	res := mustRun(t, sys, QueryRequest{Days: 7})
	if len(res.Significant) == 0 {
		t.Skip("no significant clusters on this seed")
	}
	out := sys.Ranking(res.Significant)
	if !strings.Contains(out, "1.") || !strings.Contains(out, "most serious on") {
		t.Errorf("Ranking output: %q", out)
	}

	// Run accepts a custom δs on an explicit region/window scope.
	win := DayRange(sys.Spec(), 0, 7)
	var regions []RegionID
	for _, r := range sys.Network().Grid.Regions() {
		regions = append(regions, r.ID)
	}
	loose := mustRun(t, sys, QueryRequest{Regions: regions, Window: &win, DeltaS: 0.001})
	if len(loose.Significant) < len(res.Significant) {
		t.Errorf("looser δs found fewer significant clusters: %d < %d",
			len(loose.Significant), len(res.Significant))
	}
}
