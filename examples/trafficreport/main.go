// Trafficreport builds the transportation-department monthly congestion
// report from Example 1 of the paper: where congestions usually happen,
// when they start, which segments and periods are most serious — plus the
// weekday/weekend breakdown enabled by the forest's alternative aggregation
// paths and a comparison of the three query strategies.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	atypical "github.com/cpskit/atypical"
	"github.com/cpskit/atypical/internal/cluster"
	"github.com/cpskit/atypical/internal/forest"
)

func main() {
	cfg := atypical.DefaultConfig()
	cfg.Sensors = 300
	cfg.DaysPerMonth = 28
	cfg.DeltaS = 0.02

	sys, err := atypical.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sys.IngestMonths(1)

	fmt.Println("=== Monthly congestion report ===")
	res, err := sys.Run(context.Background(), atypical.QueryRequest{Days: 28, Strategy: atypical.Guided})
	if err != nil {
		log.Fatal(err)
	}
	rep := res.Report
	sort.Slice(rep.Significant, func(i, j int) bool {
		return rep.Significant[i].Severity() > rep.Significant[j].Severity()
	})
	fmt.Printf("%d significant congestion clusters this month:\n", len(rep.Significant))
	for rank, c := range rep.Significant {
		fmt.Printf("%2d. %s\n", rank+1, sys.Describe(c))
	}

	// Weekday vs weekend: the forest integrates the same micro-clusters
	// along an alternative aggregation path (Section III-C).
	fmt.Println("\n=== Weekday vs weekend severity ===")
	buckets := sys.Forest().IntegratePath(forest.WeekdayWeekendPath)
	var weekday, weekend atypical.Severity
	for b, clusters := range buckets {
		for _, c := range clusters {
			if b%2 == 0 {
				weekday += c.Severity()
			} else {
				weekend += c.Severity()
			}
		}
	}
	fmt.Printf("weekday congestion: %.0f severity-min\n", float64(weekday))
	fmt.Printf("weekend congestion: %.0f severity-min (%.0f%% of weekday)\n",
		float64(weekend), 100*float64(weekend)/float64(weekday))

	// Strategy comparison on the same query: how much work red-zone
	// guidance saves over exhaustive integration.
	fmt.Println("\n=== Query strategy comparison (28-day city query) ===")
	fmt.Printf("%-9s %8s %8s %12s %8s\n", "strategy", "inputs", "macros", "significant", "time")
	for _, s := range []atypical.Strategy{atypical.IntegrateAll, atypical.Pruned, atypical.Guided} {
		sres, err := sys.Run(context.Background(), atypical.QueryRequest{Days: 28, Strategy: s})
		if err != nil {
			log.Fatal(err)
		}
		r := sres.Report
		fmt.Printf("%-9s %8d %8d %12d %8s\n", s, r.InputMicros, len(r.Macros), len(r.Significant), r.Elapsed.Round(1e6))
	}

	// Drill-down: the worst cluster's temporal profile by hour of day.
	if len(rep.Significant) > 0 {
		worst := rep.Significant[0]
		fmt.Println("\n=== Hourly profile of the worst cluster ===")
		printHourProfile(sys, worst)
	}
}

// printHourProfile renders the cluster's severity by hour of day as a text
// histogram — the "when and how do they start" answer at a glance.
func printHourProfile(sys *atypical.System, c *cluster.Cluster) {
	perHour := sys.Spec().PerDay() / 24
	var byHour [24]float64
	for _, e := range c.TF {
		hour := int(e.Key) / perHour % 24
		byHour[hour] += float64(e.Sev)
	}
	max := 0.0
	for _, v := range byHour {
		if v > max {
			max = v
		}
	}
	for h, v := range byHour {
		bar := ""
		if max > 0 {
			for i := 0; i < int(v/max*40); i++ {
				bar += "#"
			}
		}
		fmt.Printf("%02d:00 %8.0f %s\n", h, v, bar)
	}
}
