// Quickstart: generate one week of synthetic traffic data, build the
// atypical forest, and ask for the significant congestion clusters — the
// minimal end-to-end use of the public API.
package main

import (
	"context"
	"fmt"
	"log"

	atypical "github.com/cpskit/atypical"
)

func main() {
	cfg := atypical.DefaultConfig()
	cfg.Sensors = 250
	cfg.DaysPerMonth = 7

	sys, err := atypical.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployment: %d sensors on %d highways\n",
		sys.Network().NumSensors(), len(sys.Network().Highways))

	// Generate a week of data and run offline model construction: atypical
	// events are extracted per day and summarized into micro-clusters.
	ds := sys.GenerateMonth(0)
	fmt.Printf("week of data: %d atypical records (%.1f%% of readings)\n",
		ds.Atypical.Len(), ds.AtypicalPct())
	sys.Ingest(ds.Atypical)
	fmt.Printf("forest: %d micro-clusters across %d days\n\n",
		sys.Forest().Stats().MicroTotal, sys.Forest().Stats().Days)

	// Online query: the significant clusters of the whole city this week,
	// retrieved with red-zone guided clustering.
	res, err := sys.Run(context.Background(), atypical.QueryRequest{Days: 7, Strategy: atypical.Guided})
	if err != nil {
		log.Fatal(err)
	}
	rep := res.Report
	fmt.Printf("query integrated %d of %d micro-clusters (%d red zones), %d significant clusters:\n",
		rep.InputMicros, rep.CandidateMicros, rep.RedZones, len(rep.Significant))
	for _, c := range rep.Significant {
		fmt.Println("  " + sys.Describe(c))
	}
}
