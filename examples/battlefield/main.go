// Battlefield demonstrates the paper's future-work domain (Section VII):
// intruder detection on a battlefield sensor field. Instead of the traffic
// substrate, a bespoke grid of acoustic sensors is built directly on the
// internal packages, intruder tracks are injected as moving atypical
// sources, and the atypical-cluster machinery — unchanged — extracts and
// ranks the incursions.
package main

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"github.com/cpskit/atypical/internal/cluster"
	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/geo"
	"github.com/cpskit/atypical/internal/index"
)

const (
	gridSide   = 24  // 24×24 acoustic sensors
	spacingMi  = 0.4 // sensor spacing
	numHours   = 48  // surveillance period
	numTracks  = 6   // injected intruder tracks
	deltaD     = 0.9 // miles
	deltaTWins = 2   // windows
)

func main() {
	rng := rand.New(rand.NewSource(7))
	spec := cps.WindowSpec{Origin: time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC), Width: 5 * time.Minute}

	// Sensor field: a regular grid, SensorID = row*side + col.
	locs := make([]geo.Point, gridSide*gridSide)
	for r := 0; r < gridSide; r++ {
		for c := 0; c < gridSide; c++ {
			locs[r*gridSide+c] = geo.Point{
				Lat: 35 + float64(r)*spacingMi/geo.MilesPerDegreeLat,
				Lon: 44 + float64(c)*spacingMi/geo.MilesPerDegreeLon(35),
			}
		}
	}
	fmt.Printf("sensor field: %d acoustic sensors over %.1f x %.1f miles\n",
		len(locs), gridSide*spacingMi, gridSide*spacingMi)

	// Intruder tracks: each crosses the field over 1-3 hours, triggering
	// the sensors near its path. Severity = minutes of acoustic contact.
	var records []cps.Record
	windows := numHours * 12
	for track := 0; track < numTracks; track++ {
		startWin := cps.Window(rng.Intn(windows - 40))
		r := float64(rng.Intn(gridSide))
		c := 0.0
		dr := (rng.Float64() - 0.5) * 0.8
		dc := 0.4 + rng.Float64()*0.5 // west-to-east crossing
		for k := 0; k < 24+rng.Intn(14); k++ {
			r += dr
			c += dc
			if int(r) < 0 || int(r) >= gridSide || int(c) >= gridSide {
				break
			}
			// The 2-3 sensors nearest the position hear the intruder.
			for _, off := range [][2]int{{0, 0}, {1, 0}, {0, 1}} {
				rr, cc := int(r)+off[0], int(c)+off[1]
				if rr >= gridSide || cc >= gridSide {
					continue
				}
				records = append(records, cps.Record{
					Sensor:   cps.SensorID(rr*gridSide + cc),
					Window:   startWin + cps.Window(k),
					Severity: cps.Severity(2 + rng.Float64()*3),
				})
			}
		}
	}
	// Background noise: wildlife and wind trip isolated sensors.
	for i := 0; i < 600; i++ {
		records = append(records, cps.Record{
			Sensor:   cps.SensorID(rng.Intn(len(locs))),
			Window:   cps.Window(rng.Intn(windows)),
			Severity: cps.Severity(0.5 + rng.Float64()),
		})
	}
	rs := cps.NewRecordSet(records)
	rs.ClampSeverity(5)
	fmt.Printf("surveillance: %d atypical acoustic records over %d hours\n\n", rs.Len(), numHours)

	// Algorithm 1: extract atypical events and summarize as micro-clusters.
	neighbors := index.NewNeighborIndex(locs, deltaD).NeighborLists()
	var idgen cluster.IDGen
	micros := cluster.ExtractMicroClusters(&idgen, rs.Records(), neighbors, deltaTWins)

	// Integrate and rank: a real incursion is a large connected cluster;
	// noise yields hundreds of trivial singletons.
	macros := cluster.Integrate(&idgen, micros, cluster.IntegrateOptions{
		SimThreshold: 0.5,
		Balance:      cluster.Arithmetic,
	})
	sort.Slice(macros, func(i, j int) bool { return macros[i].Severity() > macros[j].Severity() })

	bound := cluster.SignificanceBound(0.0004, windows, len(locs))
	fmt.Printf("%d micro-clusters -> %d clusters; significance bound %.0f contact-min\n",
		len(micros), len(macros), float64(bound))
	fmt.Println("\nranked incursion alerts:")
	alerts := 0
	for _, c := range macros {
		if !c.Significant(bound) {
			continue
		}
		alerts++
		span := c.WindowSpan()
		peak, sev := c.PeakSensor()
		fmt.Printf("%2d. contact %s .. %s: %d sensors, %.0f contact-min; strongest at cell (%d,%d) %.0f min\n",
			alerts,
			spec.Start(span.From).Format("Jan 2 15:04"), spec.End(span.To-1).Format("15:04"),
			len(c.SF), float64(c.Severity()),
			int(peak)/gridSide, int(peak)%gridSide, float64(sev))
	}
	fmt.Printf("\n%d of %d injected tracks surfaced as alerts; %d noise clusters suppressed\n",
		alerts, numTracks, len(macros)-alerts)
}
