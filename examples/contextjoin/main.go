// Contextjoin demonstrates the Section V-D extension: joining context
// dimensions onto atypical clusters. A synthetic weather dimension (rainy
// vs dry days) joins the temporal dimension by date, an accident-report
// dimension joins by time and location, and the weekday/weekend dimension
// comes built in — letting the analyst ask "which congestions are
// weather-related?" and "which clusters contain a reported accident?".
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sort"

	atypical "github.com/cpskit/atypical"
	ctxdim "github.com/cpskit/atypical/internal/context"
	"github.com/cpskit/atypical/internal/geo"
)

func main() {
	cfg := atypical.DefaultConfig()
	cfg.Sensors = 250
	cfg.DaysPerMonth = 28
	sys, err := atypical.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sys.IngestMonths(1)
	spec := sys.Spec()

	// Synthesize the context dimensions: rain on ~30% of days, ten
	// accident reports at random sensors during the month.
	rng := rand.New(rand.NewSource(3))
	var rainyDays []int
	for d := 0; d < cfg.DaysPerMonth; d++ {
		if rng.Float64() < 0.3 {
			rainyDays = append(rainyDays, d)
		}
	}
	weather := ctxdim.WeatherDimension(spec, rainyDays)
	weekpart := ctxdim.WeekpartDimension(spec)

	var reports []ctxdim.Report
	for i := 0; i < 10; i++ {
		s := sys.Network().Sensors[rng.Intn(sys.Network().NumSensors())]
		day := rng.Intn(cfg.DaysPerMonth)
		reports = append(reports, ctxdim.Report{
			ID:           i + 1,
			Window:       atypical.Window(day*spec.PerDay() + rng.Intn(spec.PerDay())),
			Loc:          s.Loc,
			RadiusMi:     2,
			SlackWindows: 3,
		})
	}
	accidents := &ctxdim.ReportDimension{
		DimName: "accidents",
		Reports: reports,
		Locate:  func(s atypical.SensorID) geo.Point { return sys.Network().Sensor(s).Loc },
	}

	res, err := sys.Run(context.Background(), atypical.QueryRequest{Days: cfg.DaysPerMonth})
	if err != nil {
		log.Fatal(err)
	}
	rep := res.Report
	sort.Slice(rep.Significant, func(i, j int) bool {
		return rep.Significant[i].Severity() > rep.Significant[j].Severity()
	})
	fmt.Printf("%d significant clusters; joining %d rainy days and %d accident reports\n\n",
		len(rep.Significant), len(rainyDays), len(reports))

	fmt.Println("=== Weather join (temporal dimension ⋈ date) ===")
	for i, c := range rep.Significant {
		b := ctxdim.Join(c, weather)
		tag := "dry-weather pattern"
		if b.Share("rain") > b.Share("dry") {
			tag = "RAIN-CORRELATED"
		}
		fmt.Printf("%2d. severity %.0f: rain %.0f%%, dry %.0f%% -> %s\n",
			i+1, float64(c.Severity()), 100*b.Share("rain"), 100*b.Share("dry"), tag)
	}

	fmt.Println("\n=== Weekpart join ===")
	for i, c := range rep.Significant {
		b := ctxdim.Join(c, weekpart)
		v, share := b.Dominant()
		fmt.Printf("%2d. severity %.0f: %.0f%% %s\n", i+1, float64(c.Severity()), 100*share, v)
	}

	fmt.Println("\n=== Accident join (spatial+temporal dimensions ⋈ report) ===")
	for i, c := range rep.Significant {
		hits := accidents.Match(c)
		ids := make([]int, len(hits))
		for k, h := range hits {
			ids[k] = h.ID
		}
		fmt.Printf("%2d. severity %.0f: %d accident report(s) inside the cluster %v\n",
			i+1, float64(c.Severity()), len(hits), ids)
	}
}
