// Opscenter simulates a traffic operations center using the Section VII
// extensions end to end: records stream in window by window, events are
// maintained online and alerts raised as significant clusters close, sensor
// trustworthiness is audited, and a next-day forecast is trained from the
// accumulated forest.
package main

import (
	"fmt"
	"log"
	"sort"

	atypical "github.com/cpskit/atypical"
)

func main() {
	cfg := atypical.DefaultConfig()
	cfg.Sensors = 250
	cfg.DaysPerMonth = 14
	sys, err := atypical.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ds := sys.GenerateMonth(0)
	spec := sys.Spec()

	// Alert threshold: a closed event covering many sensor-minutes is worth
	// an operator's attention immediately.
	const alertSeverity = 2500

	fmt.Println("=== Live stream: events close, alerts fire ===")
	alerts := 0
	var closed []*atypical.Cluster
	proc, err := sys.NewStreamProcessor(func(c *atypical.Cluster) {
		closed = append(closed, c)
		if float64(c.Severity()) >= alertSeverity {
			alerts++
			span := c.WindowSpan()
			if alerts <= 8 {
				fmt.Printf("ALERT %2d  %s  %3d sensors  %6.0f severity-min\n",
					alerts, spec.Format(span.From), len(c.SF), float64(c.Severity()))
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range ds.Atypical.Records() {
		if err := proc.Observe(r); err != nil {
			log.Fatal(err)
		}
	}
	proc.Flush()
	fmt.Printf("... stream done: %d records, %d events closed, %d alerts\n\n",
		proc.Observed(), proc.Emitted(), alerts)

	// Sensor audit: which detectors report atypical readings nobody nearby
	// confirms?
	fmt.Println("=== Sensor trust audit ===")
	scores, err := sys.TrustScores(ds.Atypical)
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(scores, func(i, j int) bool { return scores[i].Trust < scores[j].Trust })
	fmt.Printf("%d reporting sensors; least corroborated:\n", len(scores))
	for i := 0; i < 5 && i < len(scores); i++ {
		s := scores[i]
		fmt.Printf("  sensor %4d: trust %.2f (%d/%d corroborated)\n",
			s.Sensor, s.Trust, s.Corroborated, s.Records)
	}

	// Build the forest from the streamed clusters and forecast tomorrow.
	fmt.Println("\n=== Next-day forecast from 10 training days ===")
	sys.IngestClusters(closed)
	model, err := sys.TrainPredictor(0, 10, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d recurring patterns learned; expected hotspots tomorrow:\n", len(model.Patterns()))
	for _, s := range model.TopSensors(5) {
		sensor := sys.Network().Sensor(s)
		hw := sys.Network().Highways[sensor.Highway]
		fmt.Printf("  %s mile %.1f (sensor %d)\n", hw.Name, sensor.MilePost, s)
	}

	// Score the forecast against the real days 10-13.
	byDay := ds.Atypical.SplitByDay(spec)
	fmt.Println("\nforecast vs realized days:")
	for day := 10; day < 14; day++ {
		out := model.Evaluate(byDay[day], 40)
		kind := "weekday"
		if day%7 >= 5 {
			kind = "weekend"
		}
		fmt.Printf("  day %2d (%s): precision@40 %.2f, severity coverage %.2f\n",
			day, kind, out.PrecisionAtK, out.SeverityCoverage)
	}
}
