package atypical

import (
	"context"
	"errors"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// subFP fingerprints a cluster's features exactly (float bits), mirroring
// the internal evaluator's change detection: equality means bit-identical
// SF and TF.
func subFP(c *Cluster) string {
	var b strings.Builder
	for _, e := range c.SF {
		b.WriteString(strconv.FormatUint(uint64(e.Key), 16))
		b.WriteByte(':')
		b.WriteString(strconv.FormatUint(math.Float64bits(float64(e.Sev)), 16))
		b.WriteByte(';')
	}
	b.WriteByte('|')
	for _, e := range c.TF {
		b.WriteString(strconv.FormatUint(uint64(e.Key), 16))
		b.WriteByte(':')
		b.WriteString(strconv.FormatUint(math.Float64bits(float64(e.Sev)), 16))
		b.WriteByte(';')
	}
	return b.String()
}

func subFPs(cs []*Cluster) []string {
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = subFP(c)
	}
	sort.Strings(out)
	return out
}

// The facade-level equivalence anchor: events pushed to a standing query
// over a finite canonical stream equal the batch Run answer after Flush +
// IngestClusters, for both supported strategies.
func TestSubscribeMatchesRunAfterFlush(t *testing.T) {
	for _, strat := range []Strategy{IntegrateAll, Pruned} {
		cfg := testConfig()
		cfg.Sensors = 120
		sys, err := NewSystem(cfg, WithSubscriptionBuffer(1<<14))
		if err != nil {
			t.Fatal(err)
		}
		req := QueryRequest{Days: 2, DeltaS: 0.001, Strategy: strat}
		sub, err := sys.Subscribe(req)
		if err != nil {
			t.Fatal(err)
		}

		var emitted []*Cluster
		p, err := sys.NewStreamProcessor(func(c *Cluster) { emitted = append(emitted, c) })
		if err != nil {
			t.Fatal(err)
		}
		perDay := Window(sys.Spec().PerDay())
		var recs []Record
		for _, r := range sys.GenerateMonth(0).Atypical.Records() {
			if r.Window < 2*perDay {
				recs = append(recs, r)
			}
		}
		if err := p.ObserveAll(context.Background(), recs); err != nil {
			t.Fatal(err)
		}
		p.Flush()
		if sub.Dropped() != 0 {
			t.Fatalf("equivalence harness dropped %d pushes; grow the buffer", sub.Dropped())
		}

		sys.IngestClusters(emitted)
		res, err := sys.Run(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}

		rep := NewPushReplay()
	drainLoop:
		for {
			select {
			case push := <-sub.Pushes():
				rep.Apply(push)
			default:
				break drainLoop
			}
		}
		if rep.Gaps != 0 {
			t.Fatalf("gap marker on a drop-free subscription (strat %v)", strat)
		}
		got, want := subFPs(rep.Significant()), subFPs(res.Significant)
		if len(got) == 0 {
			t.Fatalf("strat %v: standing query pushed no significant clusters; workload too quiet for the test to mean anything", strat)
		}
		if len(got) != len(want) {
			t.Fatalf("strat %v: standing query replayed %d significant clusters, batch Run %d", strat, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("strat %v: significant cluster %d differs from batch Run", strat, i)
			}
		}
	}
}

// Concurrent Subscribe/Unsubscribe while a stream drains: the race detector
// is the oracle (go test -race, the standing merge gate).
func TestSubscribeUnsubscribeRaceDuringStream(t *testing.T) {
	cfg := testConfig()
	cfg.Sensors = 100
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := sys.NewStreamProcessor(func(*Cluster) {})
	if err != nil {
		t.Fatal(err)
	}
	perDay := Window(sys.Spec().PerDay())
	var recs []Record
	for _, r := range sys.GenerateMonth(0).Atypical.Records() {
		if r.Window < 2*perDay {
			recs = append(recs, r)
		}
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				sub, err := sys.Subscribe(QueryRequest{Days: 1 + g%2, DeltaS: 0.0005})
				if err != nil {
					t.Error(err)
					return
				}
				// Read whatever is buffered, then tear down mid-stream.
				select {
				case <-sub.Pushes():
				default:
				}
				if !sys.Unsubscribe(sub.ID()) {
					t.Error("Unsubscribe reported unknown id")
					return
				}
			}
		}(g)
	}
	if err := p.ObserveAll(context.Background(), recs); err != nil {
		t.Fatal(err)
	}
	p.Flush()
	close(done)
	wg.Wait()
	if n := sys.ActiveSubscriptions(); n != 0 {
		t.Errorf("ActiveSubscriptions = %d after hammer, want 0", n)
	}
}

func TestSubscribeValidationAndCap(t *testing.T) {
	cfg := testConfig()
	cfg.Sensors = 60
	sys, err := NewSystem(cfg, WithSubscriptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Subscribe(QueryRequest{Days: 0}); !errors.Is(err, ErrInvalidRequest) {
		t.Errorf("zero-day Subscribe error = %v, want ErrInvalidRequest", err)
	}
	if _, err := sys.Subscribe(QueryRequest{Days: 1, Strategy: Guided}); !errors.Is(err, ErrInvalidRequest) {
		t.Errorf("Guided Subscribe error = %v, want ErrInvalidRequest", err)
	}
	first, err := sys.Subscribe(QueryRequest{Days: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Subscribe(QueryRequest{Days: 1}); !errors.Is(err, ErrTooManySubscribers) {
		t.Errorf("over-cap Subscribe error = %v, want ErrTooManySubscribers", err)
	}
	if !sys.Unsubscribe(first.ID()) {
		t.Fatal("Unsubscribe reported unknown id")
	}
	if _, err := sys.Subscribe(QueryRequest{Days: 1}); err != nil {
		t.Errorf("Subscribe after Unsubscribe freed the slot: %v", err)
	}
}
