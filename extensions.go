package atypical

import (
	"fmt"

	"github.com/cpskit/atypical/internal/cluster"
	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/forest"
	"github.com/cpskit/atypical/internal/predict"
	"github.com/cpskit/atypical/internal/stream"
	"github.com/cpskit/atypical/internal/trust"
)

// This file exposes the Section VII extensions through the facade: online
// (streaming) event maintenance, event prediction, and trustworthiness
// analysis of sensors.

// StreamProcessor maintains atypical events over an ordered record stream,
// emitting micro-clusters as events close.
type StreamProcessor = stream.Processor

// NewStreamProcessor returns a processor wired to this system's thresholds
// (δd, δt). Emitted clusters carry system-unique IDs; feed them to the
// forest with IngestClusters or consume them directly.
func (s *System) NewStreamProcessor(emit func(*Cluster)) (*StreamProcessor, error) {
	return stream.New(stream.Config{
		Neighbors: s.neighbors,
		MaxGap:    s.maxGap,
		Emit:      emit,
	}, &s.idgen)
}

// IngestClusters adds externally produced micro-clusters (e.g. from a
// StreamProcessor) to the forest under their first record's day.
func (s *System) IngestClusters(micros []*Cluster) {
	perDay := Window(s.spec.PerDay())
	byDay := make(map[int][]*Cluster)
	for _, c := range micros {
		if len(c.TF) == 0 {
			continue
		}
		day := int(c.TF[0].Key / perDay)
		byDay[day] = append(byDay[day], c)
	}
	cps.ForEachDay(byDay, func(day int, cs []*Cluster) {
		if existing := s.forest.Day(day); existing != nil {
			cs = append(existing, cs...)
		}
		s.forest.AddDay(day, cs)
	})
}

// PredictionModel forecasts per-sensor and per-window severity from
// historical macro-clusters.
type PredictionModel = predict.Model

// TrainPredictor integrates the micro-clusters of the day range
// [firstDay, firstDay+days) and trains a prediction model on the resulting
// macro-clusters (Section VII future work: event prediction). MinRecurrence
// drops patterns striking on a smaller fraction of days.
func (s *System) TrainPredictor(firstDay, days int, minRecurrence float64) (*PredictionModel, error) {
	if days <= 0 {
		return nil, fmt.Errorf("atypical: training range must be positive, got %d days", days)
	}
	micros := s.forest.MicrosInRange(cps.DayRange(s.spec, firstDay, days))
	if len(micros) == 0 {
		return nil, fmt.Errorf("atypical: no micro-clusters in days [%d, %d)", firstDay, firstDay+days)
	}
	macros := cluster.Integrate(&s.idgen, micros, s.forest.Options())
	return predict.Train(macros, predict.Config{
		TrainingDays:  days,
		Period:        s.spec.PerDay(),
		MinRecurrence: minRecurrence,
	})
}

// TrustScore is one sensor's trustworthiness assessment.
type TrustScore = trust.Score

// TrustScores scores every reporting sensor of the record set by neighbor
// corroboration (Section VII future work: trustworthiness analysis).
func (s *System) TrustScores(rs *RecordSet) ([]TrustScore, error) {
	a, err := trust.New(trust.Config{Neighbors: s.neighbors, MaxGap: s.maxGap})
	if err != nil {
		return nil, err
	}
	return a.Scores(rs.Records()), nil
}

// FilterUntrusted returns a record set without the records of sensors whose
// trust falls below minTrust.
func (s *System) FilterUntrusted(rs *RecordSet, scores []TrustScore, minTrust float64) *RecordSet {
	filtered := trust.Filter(rs.Records(), scores, minTrust)
	out, err := cps.FromSorted(filtered)
	if err != nil {
		// Filter preserves canonical order; an error is a programming bug.
		panic(err)
	}
	return out
}

// SaveForest persists the forest's materialized days (and any memoized
// week/month levels) to dir.
func (s *System) SaveForest(dir string) error {
	return s.forest.Save(dir)
}

// LoadForest replaces the system's forest with one previously saved by
// SaveForest. The severity index is not persisted; re-Ingest the record
// sets (or rebuild it) before running Guided queries.
func (s *System) LoadForest(dir string) error {
	f, err := forest.Load(dir, s.spec, &s.idgen, s.forest.Options(), s.cfg.DaysPerMonth)
	if err != nil {
		return err
	}
	s.forest = f
	s.engine.Forest = f
	return nil
}
