package atypical

import (
	"context"
	"errors"
	"fmt"

	"github.com/cpskit/atypical/internal/cluster"
	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/forest"
	"github.com/cpskit/atypical/internal/predict"
	"github.com/cpskit/atypical/internal/query"
	"github.com/cpskit/atypical/internal/stream"
	"github.com/cpskit/atypical/internal/trust"
)

// This file exposes the Section VII extensions through the facade: online
// (streaming) event maintenance, event prediction, and trustworthiness
// analysis of sensors.

// StreamProcessor maintains atypical events over an ordered record stream,
// emitting micro-clusters as events close.
type StreamProcessor = stream.Processor

// NewStreamProcessor returns a processor wired to this system's thresholds
// (δd, δt). Emitted clusters carry system-unique IDs; feed them to the
// forest with IngestClusters or consume them directly. Every emitted cluster
// is also offered to the system's standing-query subscriptions (Subscribe)
// before the caller's emit hook runs — delivery is non-blocking, so slow
// subscribers never stall the stream.
func (s *System) NewStreamProcessor(emit func(*Cluster)) (*StreamProcessor, error) {
	if emit == nil {
		// Validate before wrapping: the subscription fan-out closure below
		// would otherwise hide a nil hook from stream.New's config check.
		return nil, fmt.Errorf("%w: stream: Config.Emit is required", ErrInvalidConfig)
	}
	p, err := stream.New(stream.Config{
		Neighbors: s.neighbors,
		MaxGap:    s.maxGap,
		Emit: func(c *Cluster) {
			s.subs.Offer(c)
			emit(c)
		},
	}, &s.idgen)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidConfig, err)
	}
	p.SetObserver(s.registry)
	return p, nil
}

// IngestClusters adds externally produced micro-clusters (e.g. from a
// StreamProcessor) to the forest under their first record's day, routing
// them to their home shards as well when local sharding is enabled.
func (s *System) IngestClusters(micros []*Cluster) {
	perDay := Window(s.spec.PerDay())
	byDay := make(map[int][]*Cluster)
	for _, c := range micros {
		if len(c.TF) == 0 {
			continue
		}
		day := int(c.TF[0].Key / perDay)
		byDay[day] = append(byDay[day], c)
	}
	fst := s.Forest()
	cps.ForEachDay(byDay, func(day int, cs []*Cluster) {
		fst.AppendDay(day, cs)
		if s.shardSet != nil {
			s.shardSet.AppendDay(day, cs)
		}
	})
}

// PredictionModel forecasts per-sensor and per-window severity from
// historical macro-clusters.
type PredictionModel = predict.Model

// TrainPredictor integrates the micro-clusters of the day range
// [firstDay, firstDay+days) and trains a prediction model on the resulting
// macro-clusters (Section VII future work: event prediction). MinRecurrence
// drops patterns striking on a smaller fraction of days.
func (s *System) TrainPredictor(firstDay, days int, minRecurrence float64) (*PredictionModel, error) {
	if days <= 0 {
		return nil, fmt.Errorf("%w: training range must be positive, got %d days", ErrInvalidConfig, days)
	}
	fst := s.Forest()
	micros := fst.MicrosInRange(cps.DayRange(s.spec, firstDay, days))
	if len(micros) == 0 {
		return nil, fmt.Errorf("%w: no micro-clusters in days [%d, %d)", ErrNoData, firstDay, firstDay+days)
	}
	macros := cluster.Integrate(&s.idgen, micros, fst.Options())
	return predict.Train(macros, predict.Config{
		TrainingDays:  days,
		Period:        s.spec.PerDay(),
		MinRecurrence: minRecurrence,
	})
}

// TrustScore is one sensor's trustworthiness assessment.
type TrustScore = trust.Score

// TrustScores scores every reporting sensor of the record set by neighbor
// corroboration (Section VII future work: trustworthiness analysis).
func (s *System) TrustScores(rs *RecordSet) ([]TrustScore, error) {
	a, err := trust.New(trust.Config{Neighbors: s.neighbors, MaxGap: s.maxGap})
	if err != nil {
		return nil, err
	}
	return a.Scores(rs.Records()), nil
}

// FilterUntrusted returns a record set without the records of sensors whose
// trust falls below minTrust.
func (s *System) FilterUntrusted(rs *RecordSet, scores []TrustScore, minTrust float64) *RecordSet {
	filtered := trust.Filter(rs.Records(), scores, minTrust)
	out, err := cps.FromSorted(filtered)
	if err != nil {
		// Filter preserves canonical order; an error is a programming bug.
		panic(err)
	}
	return out
}

// SaveForest persists the forest's materialized days (and any memoized
// week/month levels) to dir.
func (s *System) SaveForest(dir string) error {
	return s.Forest().Save(dir)
}

// LoadForest replaces the system's forest with one previously saved by
// SaveForest. The severity index is not persisted, so it is reset and marked
// stale: LoadForest returns ErrSeverityStale (wrapped) to make the
// degradation explicit even though the forest itself loaded fine. Callers
// that only run All/Pruned queries may treat that error as informational;
// callers needing Guided queries must RebuildSeverity with the original
// records, or use LoadForestAndRebuild.
func (s *System) LoadForest(dir string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, err := forest.LoadObserved(dir, s.spec, &s.idgen, s.forest.Options(), s.cfg.DaysPerMonth, s.registry)
	if err != nil {
		return err
	}
	f.SetWorkers(s.workers)
	// The engine is rebuilt rather than mutated so queries that already
	// snapshotted the old engine finish against the old forest; the metric
	// handles carry over so counts aggregate across the swap.
	s.installForestLocked(f)
	return fmt.Errorf("atypical: forest loaded from %s: %w", dir, ErrSeverityStale)
}

// ForestRecovery reports what a recovering forest load quarantined.
type ForestRecovery = forest.LoadReport

// LoadForestRecover is LoadForest in recovery mode: corrupt cluster files
// are quarantined (renamed to *.corrupt, counted in
// atyp_storage_corrupt_total when an Observer is attached) and the healthy
// remainder is loaded. The report makes the degradation explicit — a
// forest missing quarantined segments answers queries without them, so the
// caller must decide whether that is acceptable. Like LoadForest, the
// severity index comes back stale: the returned error wraps
// ErrSeverityStale on success.
func (s *System) LoadForestRecover(dir string) (ForestRecovery, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, report, err := forest.LoadWith(dir, s.spec, &s.idgen, s.forest.Options(), s.cfg.DaysPerMonth,
		forest.LoadOptions{Recover: true, Registry: s.registry})
	if err != nil {
		return report, err
	}
	f.SetWorkers(s.workers)
	s.installForestLocked(f)
	return report, fmt.Errorf("atypical: forest recovered from %s: %w", dir, ErrSeverityStale)
}

// installForestLocked swaps in a freshly loaded forest, resetting the
// severity index (not persisted, hence stale) and rebuilding the engine so
// queries already snapshotted against the old forest finish against it.
// With local sharding enabled, the per-shard forests are rebuilt from the
// loaded forest's days (remote shard servers are independent processes and
// reload on their own; an HTTP coordinator's load only swaps its local
// copy). Callers hold s.mu.
func (s *System) installForestLocked(f *forest.Forest) {
	s.forest = f
	s.sev.Reset()
	s.sevStale = true
	if s.shardSet != nil {
		s.shardSet.Reset()
		for _, day := range f.Days() {
			s.shardSet.AppendDay(day, f.Day(day))
		}
	}
	// The answer cache cannot rely on version stamps across a forest swap
	// (a freshly loaded forest restarts its version counter), so it is
	// cleared outright and carried into the new engine.
	s.cache.Clear()
	s.engine = &query.Engine{
		Net: s.net, Forest: f, Severity: s.sev, Gen: &s.idgen,
		Workers: s.queryWorkers, Obs: s.engine.Obs, Scatterer: s.engine.Scatterer,
		Cache: s.cache,
	}
}

// RebuildSeverity reconstructs the bottom-up severity index from the record
// set the current forest was built over, clearing the staleness mark set by
// LoadForest. The rebuild day-shards across the configured workers.
func (s *System) RebuildSeverity(ctx context.Context, rs *RecordSet) error {
	s.mu.RLock()
	sev, workers := s.sev, s.workers
	s.mu.RUnlock()

	sev.Reset()
	byDay := rs.SplitByDay(s.spec)
	slices := make([][]cps.Record, 0, len(byDay))
	cps.ForEachDay(byDay, func(_ int, recs []cps.Record) {
		slices = append(slices, recs)
	})
	if err := sev.AddDays(ctx, slices, workers); err != nil {
		return err
	}
	s.mu.Lock()
	s.sevStale = false
	s.mu.Unlock()
	// Guided answers depend on the severity index, which changed without a
	// forest version bump: drop every cached answer.
	s.cache.Clear()
	return nil
}

// LoadForestAndRebuild is LoadForest followed by RebuildSeverity: the
// round-trip path that restores a fully query-able system (including Guided
// strategies) in one call. rs must be the record set the saved forest was
// built over.
func (s *System) LoadForestAndRebuild(ctx context.Context, dir string, rs *RecordSet) error {
	if err := s.LoadForest(dir); err != nil && !errors.Is(err, ErrSeverityStale) {
		return err
	}
	return s.RebuildSeverity(ctx, rs)
}
