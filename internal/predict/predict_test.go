package predict

import (
	"testing"
	"time"

	"github.com/cpskit/atypical/internal/cluster"
	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/gen"
	"github.com/cpskit/atypical/internal/geo"
	"github.com/cpskit/atypical/internal/index"
	"github.com/cpskit/atypical/internal/traffic"
)

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, Config{TrainingDays: 0, Period: 288}); err == nil {
		t.Error("zero training days accepted")
	}
	if _, err := Train(nil, Config{TrainingDays: 5, Period: 0}); err == nil {
		t.Error("zero period accepted")
	}
	m, err := Train(nil, Config{TrainingDays: 5, Period: 288})
	if err != nil || len(m.Patterns()) != 0 {
		t.Errorf("empty training should give an empty model: %v", err)
	}
}

// recurringMacro builds a macro-cluster that struck on `days` distinct days
// at the same sensors and time of day.
func recurringMacro(g *cluster.IDGen, days int, baseSensor int, window cps.Window, sev cps.Severity) *cluster.Cluster {
	perDay := cps.Window(288)
	micros := make([]*cluster.Cluster, days)
	for d := 0; d < days; d++ {
		micros[d] = cluster.FromRecords(g.Next(), []cps.Record{
			{Sensor: cps.SensorID(baseSensor), Window: cps.Window(d)*perDay + window, Severity: sev},
			{Sensor: cps.SensorID(baseSensor + 1), Window: cps.Window(d)*perDay + window, Severity: sev / 2},
		})
	}
	out := micros[0]
	for _, m := range micros[1:] {
		out = cluster.Merge(g, out, m)
	}
	return out
}

func TestTrainLearnsRecurrence(t *testing.T) {
	var g cluster.IDGen
	daily := recurringMacro(&g, 10, 0, 100, 4)   // every day of 10
	sparse := recurringMacro(&g, 2, 500, 200, 4) // 2 of 10 days
	m, err := Train([]*cluster.Cluster{daily, sparse}, Config{TrainingDays: 10, Period: 288})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Patterns()) != 2 {
		t.Fatalf("patterns = %d", len(m.Patterns()))
	}
	p0 := m.Patterns()[0] // strongest source first: the daily one
	if p0.Recurrence != 1.0 {
		t.Errorf("daily recurrence = %v", p0.Recurrence)
	}
	if m.Patterns()[1].Recurrence != 0.2 {
		t.Errorf("sparse recurrence = %v", m.Patterns()[1].Recurrence)
	}
	// Per-occurrence severity: the merged 10-day cluster carried 10×4 on
	// the base sensor.
	if got := p0.SF.Get(0); got != 4 {
		t.Errorf("per-occurrence severity = %v, want 4", got)
	}
	// Folded TF: one time-of-day entry.
	if len(p0.TF) != 1 || p0.TF[0].Key != 100 {
		t.Errorf("folded TF = %v", p0.TF)
	}
}

func TestMinRecurrenceFilters(t *testing.T) {
	var g cluster.IDGen
	daily := recurringMacro(&g, 10, 0, 100, 4)
	oneOff := recurringMacro(&g, 1, 500, 200, 4)
	m, err := Train([]*cluster.Cluster{daily, oneOff}, Config{TrainingDays: 10, Period: 288, MinRecurrence: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Patterns()) != 1 {
		t.Fatalf("patterns = %d, want 1 (one-off filtered)", len(m.Patterns()))
	}
}

func TestRecurrenceCappedAtOne(t *testing.T) {
	var g cluster.IDGen
	// 20 micros over 10 days (splits): recurrence caps at 1.
	c := recurringMacro(&g, 20, 0, 100, 4)
	m, _ := Train([]*cluster.Cluster{c}, Config{TrainingDays: 10, Period: 288})
	if got := m.Patterns()[0].Recurrence; got != 1 {
		t.Errorf("recurrence = %v, want capped 1", got)
	}
}

func TestForecasts(t *testing.T) {
	var g cluster.IDGen
	daily := recurringMacro(&g, 10, 0, 100, 4)
	m, _ := Train([]*cluster.Cluster{daily}, Config{TrainingDays: 10, Period: 288})
	sf := m.SensorForecast()
	// Expected severity = recurrence 1.0 × per-occurrence 4.
	if got := sf.Get(0); got != 4 {
		t.Errorf("forecast severity = %v", got)
	}
	tf := m.WindowForecast()
	if got := tf.Get(100); got != 6 { // 4 + 2 at the same folded window
		t.Errorf("window forecast = %v", got)
	}
	top := m.TopSensors(1)
	if len(top) != 1 || top[0] != 0 {
		t.Errorf("top sensors = %v", top)
	}
	if got := m.TopSensors(99); len(got) != 2 {
		t.Errorf("TopSensors over-ask = %v", got)
	}
}

func TestEvaluate(t *testing.T) {
	var g cluster.IDGen
	daily := recurringMacro(&g, 10, 0, 100, 4)
	m, _ := Train([]*cluster.Cluster{daily}, Config{TrainingDays: 10, Period: 288})
	// Realized day: sensor 0 atypical (hit), sensor 99 atypical (uncovered).
	day := []cps.Record{
		{Sensor: 0, Window: 100, Severity: 3},
		{Sensor: 99, Window: 100, Severity: 1},
	}
	out := m.Evaluate(day, 1)
	if out.PrecisionAtK != 1 {
		t.Errorf("precision@1 = %v", out.PrecisionAtK)
	}
	if out.SeverityCoverage != 0.75 {
		t.Errorf("coverage = %v, want 0.75", out.SeverityCoverage)
	}
	empty := m.Evaluate(nil, 1)
	if empty.SeverityCoverage != 0 || empty.PrecisionAtK != 0 {
		t.Errorf("empty day outcome = %+v", empty)
	}
}

// End to end: train on 3 weeks of synthetic traffic, forecast the 4th
// week's weekdays. Recurring rush patterns make this workload predictable.
func TestPredictsSyntheticTraffic(t *testing.T) {
	net := traffic.GenerateNetwork(traffic.ScaledConfig(250))
	spec := cps.DefaultSpec()
	cfg := gen.DefaultConfig(net)
	cfg.DaysPerMonth = 28
	g, err := gen.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds := g.Month(0)

	locs := make([]geo.Point, net.NumSensors())
	for i, s := range net.Sensors {
		locs[i] = s.Loc
	}
	neighbors := index.NewNeighborIndex(locs, 1.5).NeighborLists()
	maxGap := cluster.MaxWindowGap(15*time.Minute, spec.Width)

	var idgen cluster.IDGen
	byDay := ds.Atypical.SplitByDay(spec)
	var trainMicros []*cluster.Cluster
	trainDays := 21
	for day, recs := range byDay {
		if day < trainDays {
			trainMicros = append(trainMicros, cluster.ExtractMicroClusters(&idgen, recs, neighbors, maxGap)...)
		}
	}
	macros := cluster.Integrate(&idgen, trainMicros, cluster.IntegrateOptions{
		SimThreshold: 0.5,
		Balance:      cluster.Arithmetic,
		Period:       cps.Window(spec.PerDay()),
	})
	m, err := Train(macros, Config{TrainingDays: trainDays, Period: spec.PerDay(), MinRecurrence: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Patterns()) == 0 {
		t.Fatal("no recurring patterns learned")
	}

	// Score each held-out weekday.
	var precSum, covSum float64
	days := 0
	for day := trainDays; day < 28; day++ {
		if day%7 >= 5 {
			continue // weekends have no recurring events
		}
		out := m.Evaluate(byDay[day], 50)
		precSum += out.PrecisionAtK
		covSum += out.SeverityCoverage
		days++
	}
	if days == 0 {
		t.Fatal("no held-out weekdays")
	}
	prec := precSum / float64(days)
	cov := covSum / float64(days)
	if prec < 0.6 {
		t.Errorf("precision@50 = %.2f, want ≥ 0.6 on recurring workload", prec)
	}
	if cov < 0.5 {
		t.Errorf("severity coverage = %.2f, want ≥ 0.5", cov)
	}
}
