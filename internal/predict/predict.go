// Package predict implements the event-prediction extension the paper
// names as future work (Section VII): "we will extend the atypical event
// analysis to support more complex applications, such as the event
// prediction".
//
// The predictor is built directly on the atypical-cluster model: historical
// macro-clusters are, by construction, recurrences of an event pattern —
// the same sensors congesting at the same times of day. A macro-cluster
// integrating k daily micro-clusters out of d observed days is a pattern
// with empirical daily recurrence k/d; its spatial feature says where it
// strikes and its folded temporal feature says when. Forecasting a future
// day means replaying each pattern weighted by its recurrence.
package predict

import (
	"fmt"
	"sort"

	"github.com/cpskit/atypical/internal/cluster"
	"github.com/cpskit/atypical/internal/cps"
)

// Pattern is one learned recurring event pattern.
type Pattern struct {
	// Source is the macro-cluster the pattern was learned from.
	Source *cluster.Cluster
	// Recurrence is the fraction of training days on which the pattern
	// produced a micro-cluster (weekday-aware callers can train separate
	// models per day class).
	Recurrence float64
	// SF is the expected per-sensor severity on a day the pattern strikes:
	// the source's spatial feature scaled down to one occurrence.
	SF cluster.SpatialFeature
	// TF is the expected time-of-day severity profile of one occurrence.
	TF cluster.TemporalFeature
}

// Model forecasts per-sensor and per-window atypical severity for future
// days from the macro-clusters of a training period.
type Model struct {
	patterns []Pattern
	period   cps.Window // windows per day
}

// Config parameterizes training.
type Config struct {
	// TrainingDays is the number of days the macro-clusters were built
	// from; recurrence = micro count / TrainingDays.
	TrainingDays int
	// Period is the number of windows per day.
	Period int
	// MinRecurrence drops one-off patterns (incidents); the paper's
	// prediction target is the recurring congestion structure. Default 0
	// keeps everything.
	MinRecurrence float64
}

// Train learns a model from the macro-clusters of a training range.
func Train(macros []*cluster.Cluster, cfg Config) (*Model, error) {
	if cfg.TrainingDays <= 0 {
		return nil, fmt.Errorf("predict: TrainingDays must be positive, got %d", cfg.TrainingDays)
	}
	if cfg.Period <= 0 {
		return nil, fmt.Errorf("predict: Period must be positive, got %d", cfg.Period)
	}
	m := &Model{period: cps.Window(cfg.Period)}
	for _, c := range macros {
		occ := float64(c.Micros)
		rec := occ / float64(cfg.TrainingDays)
		if rec > 1 {
			// A pattern can strike more than once a day (split events);
			// recurrence is a probability, so cap it.
			rec = 1
		}
		if rec < cfg.MinRecurrence {
			continue
		}
		sf := c.SF.Clone()
		for i := range sf {
			sf[i].Sev /= cps.Severity(occ)
		}
		tf := cluster.FoldTemporal(c.TF, m.period)
		scaled := tf.Clone()
		for i := range scaled {
			scaled[i].Sev /= cps.Severity(occ)
		}
		m.patterns = append(m.patterns, Pattern{Source: c, Recurrence: rec, SF: sf, TF: scaled})
	}
	sort.Slice(m.patterns, func(i, j int) bool {
		return m.patterns[i].Source.Severity() > m.patterns[j].Source.Severity()
	})
	return m, nil
}

// Patterns returns the learned patterns, strongest source first.
func (m *Model) Patterns() []Pattern { return m.patterns }

// SensorForecast returns the expected atypical severity per sensor for one
// future day: Σ over patterns of recurrence × expected severity.
func (m *Model) SensorForecast() cluster.SpatialFeature {
	var entries []cluster.Entry[cps.SensorID]
	for _, p := range m.patterns {
		for _, e := range p.SF {
			entries = append(entries, cluster.Entry[cps.SensorID]{
				Key: e.Key,
				Sev: e.Sev * cps.Severity(p.Recurrence),
			})
		}
	}
	return cluster.NewFeature(entries)
}

// WindowForecast returns the expected severity per time-of-day window for
// one future day.
func (m *Model) WindowForecast() cluster.TemporalFeature {
	var entries []cluster.Entry[cps.Window]
	for _, p := range m.patterns {
		for _, e := range p.TF {
			entries = append(entries, cluster.Entry[cps.Window]{
				Key: e.Key,
				Sev: e.Sev * cps.Severity(p.Recurrence),
			})
		}
	}
	return cluster.NewFeature(entries)
}

// TopSensors returns the k sensors with the highest forecast severity,
// descending — "where will it congest tomorrow".
func (m *Model) TopSensors(k int) []cps.SensorID {
	f := m.SensorForecast()
	type kv struct {
		s   cps.SensorID
		sev cps.Severity
	}
	all := make([]kv, len(f))
	for i, e := range f {
		all[i] = kv{e.Key, e.Sev}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].sev > all[j].sev {
			return true
		}
		if all[i].sev < all[j].sev {
			return false
		}
		return all[i].s < all[j].s
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]cps.SensorID, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].s
	}
	return out
}

// Evaluation of a forecast against a realized day.

// Outcome scores a day's forecast.
type Outcome struct {
	// PrecisionAtK is the share of the forecast top-k sensors that were
	// actually atypical on the realized day.
	PrecisionAtK float64
	// SeverityCoverage is the share of the day's realized severity that
	// fell on forecast-positive sensors (forecast severity > 0).
	SeverityCoverage float64
}

// Evaluate scores the model against the realized atypical records of one
// day (canonical slice).
func (m *Model) Evaluate(day []cps.Record, k int) Outcome {
	var out Outcome
	realized := make(map[cps.SensorID]cps.Severity)
	var total cps.Severity
	for _, r := range day {
		realized[r.Sensor] += r.Severity
		total += r.Severity
	}
	top := m.TopSensors(k)
	if len(top) > 0 {
		hit := 0
		for _, s := range top {
			if realized[s] > 0 {
				hit++
			}
		}
		out.PrecisionAtK = float64(hit) / float64(len(top))
	}
	if total > 0 {
		var covered cps.Severity
		forecast := m.SensorForecast()
		for _, e := range forecast {
			covered += realized[e.Key]
		}
		out.SeverityCoverage = float64(covered / total)
	}
	return out
}
