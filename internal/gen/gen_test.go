package gen

import (
	"testing"

	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/detect"
	"github.com/cpskit/atypical/internal/traffic"
)

func testNet(t testing.TB) *traffic.Network {
	t.Helper()
	return traffic.GenerateNetwork(traffic.ScaledConfig(300))
}

func testGen(t testing.TB, net *traffic.Network, days int) *Generator {
	t.Helper()
	cfg := DefaultConfig(net)
	cfg.DaysPerMonth = days
	g, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return g
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing network should be rejected")
	}
	cfg := DefaultConfig(testNet(t))
	cfg.DaysPerMonth = 0
	if _, err := New(cfg); err == nil {
		t.Error("zero days should be rejected")
	}
}

func TestMonthDeterministic(t *testing.T) {
	net := testNet(t)
	g := testGen(t, net, 3)
	a := g.Month(0)
	b := g.Month(0)
	if a.Atypical.Len() != b.Atypical.Len() {
		t.Fatal("same month should be deterministic")
	}
	for i, r := range a.Atypical.Records() {
		if r != b.Atypical.Records()[i] {
			t.Fatalf("record %d differs", i)
		}
	}
	if len(a.Truth) != len(b.Truth) {
		t.Fatal("truth events differ")
	}
}

func TestMonthsDiffer(t *testing.T) {
	g := testGen(t, testNet(t), 3)
	a, b := g.Month(0), g.Month(1)
	if a.Atypical.Len() == b.Atypical.Len() && len(a.Truth) == len(b.Truth) {
		// Extremely unlikely to match exactly on both counts.
		t.Log("months coincidentally equal in size; checking ranges")
	}
	if a.Range.To != b.Range.From {
		t.Errorf("months should be contiguous: %v then %v", a.Range, b.Range)
	}
}

func TestRecordsInsideRange(t *testing.T) {
	g := testGen(t, testNet(t), 4)
	ds := g.Month(2)
	for _, r := range ds.Atypical.Records() {
		if !ds.Range.Contains(r.Window) {
			t.Fatalf("record window %d outside range %+v", r.Window, ds.Range)
		}
		if r.Severity <= 0 || r.Severity > detect.MaxSeverityMinutes {
			t.Fatalf("severity %v out of (0, 5]", r.Severity)
		}
	}
}

func TestAtypicalPercentageInPaperBand(t *testing.T) {
	net := testNet(t)
	g := testGen(t, net, 10)
	ds := g.Month(0)
	pct := ds.AtypicalPct()
	// Fig. 14 reports ~2.3–4.0%; allow a generous band since scale differs.
	if pct < 0.5 || pct > 12 {
		t.Errorf("atypical%% = %.2f, want roughly the paper's 2-5%% band", pct)
	}
}

func TestTruthEventShapes(t *testing.T) {
	g := testGen(t, testNet(t), 5)
	ds := g.Month(0)
	if len(ds.Truth) == 0 {
		t.Fatal("no events injected")
	}
	var kinds [4]int
	for _, ev := range ds.Truth {
		kinds[ev.Kind]++
		if len(ev.Records) == 0 {
			t.Fatalf("event %d has no records", ev.ID)
		}
		if ev.TotalSeverity() <= 0 {
			t.Fatalf("event %d has non-positive severity", ev.ID)
		}
		for _, r := range ev.Records {
			if r.Window < ev.Start {
				t.Fatalf("event %d record before start", ev.ID)
			}
		}
	}
	if kinds[MorningRush] == 0 || kinds[EveningRush] == 0 {
		t.Errorf("expected both rush kinds on weekdays, got %v", kinds)
	}
	if kinds[Incident] == 0 {
		t.Errorf("expected incidents, got %v", kinds)
	}
}

func TestRushEventsAreTemporallyDisjointOnPairedCorridors(t *testing.T) {
	g := testGen(t, testNet(t), 5)
	ds := g.Month(0)
	spec := cps.DefaultSpec()
	for _, ev := range ds.Truth {
		hour := spec.Start(ev.Start).Hour()
		switch ev.Kind {
		case MorningRush:
			if hour < 6 || hour > 10 {
				t.Errorf("morning rush starts at hour %d", hour)
			}
		case EveningRush:
			if hour < 15 || hour > 19 {
				t.Errorf("evening rush starts at hour %d", hour)
			}
		}
	}
}

func TestWeekendsHaveNoRush(t *testing.T) {
	g := testGen(t, testNet(t), 7)
	ds := g.Month(0)
	spec := cps.DefaultSpec()
	perDay := cps.Window(spec.PerDay())
	for _, ev := range ds.Truth {
		day := int(ev.Start / perDay)
		weekday := (day % 7) < 5
		if !weekday && ev.Kind != Incident {
			t.Errorf("rush event on weekend day %d", day)
		}
	}
}

func TestEventRecordsSpatiallyConnected(t *testing.T) {
	net := testNet(t)
	g := testGen(t, net, 2)
	ds := g.Month(0)
	for _, ev := range ds.Truth {
		// All records sit on the event's highway.
		for _, r := range ev.Records {
			if net.Sensor(r.Sensor).Highway != ev.Highway {
				t.Fatalf("event %d has a record off its highway", ev.ID)
			}
		}
	}
}

func TestForEachReadingConsistentWithDetect(t *testing.T) {
	net := traffic.GenerateNetwork(traffic.ScaledConfig(150))
	cfg := DefaultConfig(net)
	cfg.DaysPerMonth = 1
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds := g.Month(0)
	got, scanned := detect.Scan(ds.ForEachReading)
	if scanned != ds.NumReadings {
		t.Fatalf("scanned %d readings, want %d", scanned, ds.NumReadings)
	}
	want := ds.Atypical.Records()
	if got.Len() != len(want) {
		t.Fatalf("detected %d records, want %d", got.Len(), len(want))
	}
	for i, r := range got.Records() {
		if r.Sensor != want[i].Sensor || r.Window != want[i].Window {
			t.Fatalf("record %d key mismatch: %v vs %v", i, r, want[i])
		}
		d := float64(r.Severity - want[i].Severity)
		if d < -1e-9 || d > 1e-9 {
			t.Fatalf("record %d severity mismatch: %v vs %v", i, r, want[i])
		}
	}
}

func TestEventKindString(t *testing.T) {
	if MorningRush.String() != "morning-rush" || Incident.String() != "incident" ||
		EveningRush.String() != "evening-rush" || EventKind(7).String() != "unknown" {
		t.Error("EventKind.String mismatch")
	}
}

func TestPoissonMean(t *testing.T) {
	g := testGen(t, testNet(t), 2)
	_ = g
	// Sanity-check the sampler through the exported surface: incidents per
	// day should average near the configured rate over many days.
	net := traffic.GenerateNetwork(traffic.ScaledConfig(150))
	cfg := DefaultConfig(net)
	cfg.DaysPerMonth = 30
	cfg.RushCorridors = 1
	cfg.IncidentsPerDay = 3
	gg, _ := New(cfg)
	ds := gg.Month(0)
	incidents := 0
	for _, ev := range ds.Truth {
		if ev.Kind == Incident {
			incidents++
		}
	}
	mean := float64(incidents) / 30
	if mean < 1 || mean > 6 {
		t.Errorf("incident rate %.2f/day, configured 3", mean)
	}
}

func TestNightWorkEvents(t *testing.T) {
	g := testGen(t, testNet(t), 7)
	ds := g.Month(0)
	spec := cps.DefaultSpec()
	nights := 0
	for _, ev := range ds.Truth {
		if ev.Kind != NightWork {
			continue
		}
		nights++
		hour := spec.Start(ev.Start).Hour()
		if hour < 22 {
			t.Errorf("night work starts at hour %d", hour)
		}
		// Night events stay clear of the next morning's rush (before 5am).
		for _, r := range ev.Records {
			endHour := spec.Start(r.Window).Hour()
			if endHour >= 5 && endHour < 22 {
				t.Fatalf("night work record at daytime hour %d", endHour)
			}
		}
	}
	if nights == 0 {
		t.Error("no night-work events injected")
	}
}

func TestEventsClippedToMonth(t *testing.T) {
	g := testGen(t, testNet(t), 3)
	ds := g.Month(1)
	for _, ev := range ds.Truth {
		for _, r := range ev.Records {
			if !ds.Range.Contains(r.Window) {
				t.Fatalf("event %d record outside the month", ev.ID)
			}
		}
	}
}

func TestCorridorStrengthSpread(t *testing.T) {
	// Morning rush on corridor 0 (heaviest) should out-mass night work on
	// the weakest stream over a month.
	net := testNet(t)
	g := testGen(t, net, 10)
	ds := g.Month(0)
	mass := map[EventKind]cps.Severity{}
	for _, ev := range ds.Truth {
		mass[ev.Kind] += ev.TotalSeverity()
	}
	if mass[MorningRush] <= mass[NightWork] {
		t.Errorf("rush mass %v should exceed night mass %v", mass[MorningRush], mass[NightWork])
	}
	if mass[Incident] >= mass[MorningRush] {
		t.Errorf("incidents (%v) should stay below rush (%v)", mass[Incident], mass[MorningRush])
	}
}
