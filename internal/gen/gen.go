// Package gen synthesizes the evaluation workload: monthly CPS datasets with
// injected congestion events, background noise, and ground-truth labels.
//
// The paper evaluates on twelve one-month PeMS datasets (Los Angeles &
// Ventura, Oct 2008 – Sep 2009; Fig. 14) that are not redistributable at the
// original 54 GB scale. This generator reproduces the statistical structure
// the paper's algorithms are sensitive to:
//
//   - events are spatio-temporally connected record sets that grow along a
//     highway from a seed bottleneck, plateau, and shrink;
//   - recurring morning/evening rush events put spatially overlapping but
//     temporally disjoint events on paired corridors (the Example 2 /
//     Fig. 1 motivation for cluster-based analysis);
//   - random incidents and isolated noise records produce the long tail of
//     trivial clusters that significance filtering must discard
//     (Sec. V-C observes only 0.1–0.5% of macro-clusters are significant);
//   - atypical records are 2–5% of all readings (Fig. 14).
//
// Everything is deterministic in the configured seed.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/detect"
	"github.com/cpskit/atypical/internal/traffic"
)

// EventKind classifies injected events.
type EventKind uint8

// Injected event kinds.
const (
	MorningRush EventKind = iota
	EveningRush
	// NightWork is recurring overnight congestion (roadworks, freight
	// corridors) on the north-south highways: weaker than rush events,
	// temporally disjoint from them, so its macro-clusters populate the
	// severity range around the significance bound.
	NightWork
	Incident
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case MorningRush:
		return "morning-rush"
	case EveningRush:
		return "evening-rush"
	case NightWork:
		return "night-work"
	case Incident:
		return "incident"
	default:
		return "unknown"
	}
}

// Event is one injected ground-truth event.
type Event struct {
	ID      int
	Kind    EventKind
	Seed    cps.SensorID
	Highway traffic.HighwayID
	Start   cps.Window
	// Records are the atypical records belonging to the event, canonical
	// order, keys disjoint from other events by construction.
	Records []cps.Record
}

// TotalSeverity sums the event's record severities.
func (e *Event) TotalSeverity() cps.Severity {
	var s cps.Severity
	for _, r := range e.Records {
		s += r.Severity
	}
	return s
}

// Dataset is one generated month.
type Dataset struct {
	Month int // 0-based month index (D1..D12 in the paper are 0..11)
	Range cps.TimeRange
	// Atypical is the full atypical record stream: every event record plus
	// background noise, coalesced on shared keys.
	Atypical *cps.RecordSet
	// Truth lists the injected events.
	Truth []Event
	// NumReadings is the total raw reading count (sensors × windows); the
	// denominator of the atypical-percentage column in Fig. 14.
	NumReadings int64

	net  *traffic.Network
	spec cps.WindowSpec
}

// AtypicalPct returns the percentage of readings that are atypical.
func (d *Dataset) AtypicalPct() float64 {
	if d.NumReadings == 0 {
		return 0
	}
	return 100 * float64(d.Atypical.Len()) / float64(d.NumReadings)
}

// ForEachReading streams every raw reading of the month — congested speeds
// where atypical records exist, free-flow speeds elsewhere — in (window,
// sensor) order. This is the input of the pre-processing scan (PR) and the
// original CubeView baseline (OC) in Figs. 15–16.
func (d *Dataset) ForEachReading(fn func(cps.Reading)) {
	recs := d.Atypical.Records()
	i := 0
	n := cps.SensorID(d.net.NumSensors())
	for w := d.Range.From; w < d.Range.To; w++ {
		for s := cps.SensorID(0); s < n; s++ {
			v := detect.FreeflowMPH
			// The atypical set is (window, sensor) sorted, so a single
			// cursor tracks the current key.
			if i < len(recs) && recs[i].Window == w && recs[i].Sensor == s {
				v = detect.SpeedFromSeverity(recs[i].Severity)
				i++
			}
			fn(cps.Reading{Sensor: s, Window: w, Value: v})
		}
	}
}

// Config parameterizes the generator.
type Config struct {
	Net  *traffic.Network
	Spec cps.WindowSpec
	Seed int64
	// DaysPerMonth is the length of each generated dataset. The paper's
	// months are 28–31 days; tests may shrink this.
	DaysPerMonth int
	// RushCorridors is how many highway pairs carry recurring weekday rush
	// events. Zero means: one third of the pairs.
	RushCorridors int
	// IncidentsPerDay is the expected number of random incidents per day.
	IncidentsPerDay float64
	// NoisePerDay is the expected number of isolated noise records per
	// day (scaled by sensor count / 100).
	NoisePerDay float64
	// PeakSensors is the maximum sensors a rush event covers at its peak.
	// Zero means: min(40, highway length).
	PeakSensors int
}

// DefaultConfig returns generation parameters that reproduce the paper's
// dataset shape on the given network.
func DefaultConfig(net *traffic.Network) Config {
	return Config{
		Net:             net,
		Spec:            cps.DefaultSpec(),
		Seed:            42,
		DaysPerMonth:    30,
		IncidentsPerDay: 8,
		NoisePerDay:     150,
	}
}

// Generator produces monthly datasets. Safe for sequential use; months are
// independent and deterministic given (Seed, month).
type Generator struct {
	cfg Config
}

// New validates cfg and returns a generator.
func New(cfg Config) (*Generator, error) {
	if cfg.Net == nil {
		return nil, fmt.Errorf("gen: config requires a network")
	}
	if cfg.Spec.Width == 0 {
		cfg.Spec = cps.DefaultSpec()
	}
	if cfg.DaysPerMonth <= 0 {
		return nil, fmt.Errorf("gen: DaysPerMonth must be positive, got %d", cfg.DaysPerMonth)
	}
	if cfg.RushCorridors == 0 {
		cfg.RushCorridors = maxInt(2, len(cfg.Net.Highways)*3/8)
	}
	if cfg.PeakSensors == 0 {
		// A serious congestion "covers hundreds of sensors" out of ~4,000
		// (Section III-A); keep that proportion at reduced deployment
		// scales so significance behaves alike across scales.
		cfg.PeakSensors = clampInt(cfg.Net.NumSensors()/6, 25, 300)
	}
	return &Generator{cfg: cfg}, nil
}

// Month generates dataset m (0-based). Successive months occupy consecutive
// day ranges so that multi-month queries span a contiguous window range.
func (g *Generator) Month(m int) *Dataset {
	cfg := g.cfg
	rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(m)))
	firstDay := m * cfg.DaysPerMonth
	tr := cps.DayRange(cfg.Spec, firstDay, cfg.DaysPerMonth)
	ds := &Dataset{
		Month:       m,
		Range:       tr,
		NumReadings: int64(cfg.Net.NumSensors()) * int64(tr.Len()),
		net:         cfg.Net,
		spec:        cfg.Spec,
	}

	perDay := cps.Window(cfg.Spec.PerDay())
	var all []cps.Record
	nextID := m * 100_000

	// clip truncates an event to the month range: overnight events on the
	// last day continue into the next month, but a monthly dataset — like a
	// real monthly data file — ends at its last midnight. Events are built
	// in window order, so truncation is a suffix trim.
	clip := func(ev Event) Event {
		n := len(ev.Records)
		for n > 0 && ev.Records[n-1].Window >= tr.To {
			n--
		}
		ev.Records = ev.Records[:n]
		return ev
	}

	corridors := g.rushCorridors()
	for day := 0; day < cfg.DaysPerMonth; day++ {
		dayStart := tr.From + cps.Window(day)*perDay
		weekday := ((firstDay + day) % 7) < 5

		if weekday {
			for ci, c := range corridors {
				// Morning rush on the "W/S" member, evening on the paired
				// "E/N" member — Example 2's temporally disjoint overlap.
				ev := clip(g.rushEvent(rng, nextID, MorningRush, c.morning, dayStart, ci))
				nextID++
				ds.Truth = append(ds.Truth, ev)
				all = append(all, ev.Records...)

				ev = clip(g.rushEvent(rng, nextID, EveningRush, c.evening, dayStart, ci))
				nextID++
				ds.Truth = append(ds.Truth, ev)
				all = append(all, ev.Records...)
			}
			for ci, hw := range g.nightCorridors() {
				ev := clip(g.nightEvent(rng, nextID, hw, dayStart, ci))
				nextID++
				ds.Truth = append(ds.Truth, ev)
				all = append(all, ev.Records...)
			}
		}

		// Random incidents, weekday or not.
		nInc := poisson(rng, cfg.IncidentsPerDay)
		for i := 0; i < nInc; i++ {
			ev := clip(g.incident(rng, nextID, dayStart))
			nextID++
			ds.Truth = append(ds.Truth, ev)
			all = append(all, ev.Records...)
		}

		// Isolated noise records: trivial one-record "events" the
		// significance machinery must suppress.
		nNoise := poisson(rng, cfg.NoisePerDay*float64(cfg.Net.NumSensors())/1000)
		for i := 0; i < nNoise; i++ {
			all = append(all, cps.Record{
				Sensor:   cps.SensorID(rng.Intn(cfg.Net.NumSensors())),
				Window:   dayStart + cps.Window(rng.Intn(int(perDay))),
				Severity: cps.Severity(1 + rng.Intn(2)),
			})
		}
	}

	ds.Atypical = cps.NewRecordSet(all)
	// Overlapping events and noise coalesce by summation; a 5-minute window
	// cannot physically carry more than 5 atypical minutes.
	ds.Atypical.ClampSeverity(detect.MaxSeverityMinutes)
	return ds
}

// corridor is a paired pair of highways carrying recurring rush events.
type corridor struct {
	morning, evening traffic.HighwayID
}

// nightCorridors picks the parallel north-south pairs (every third pair,
// offset one) that carry recurring night-work congestion. They cross the
// east-west rush corridors spatially but never temporally, so the streams
// stay distinct events.
func (g *Generator) nightCorridors() []traffic.HighwayID {
	var out []traffic.HighwayID
	n := len(g.cfg.Net.Highways)
	for k := 0; len(out) < g.cfg.RushCorridors && 6*k+2 < n; k++ {
		out = append(out, g.cfg.Net.Highways[6*k+2].ID)
	}
	return out
}

// nightEvent injects one recurring night-work congestion on hw. Strengths
// are graded per corridor so the integrated macro-clusters straddle the
// significance bound — the marginal clusters beforehand pruning loses.
func (g *Generator) nightEvent(rng *rand.Rand, id int, hw traffic.HighwayID, dayStart cps.Window, ci int) Event {
	spec := g.cfg.Spec
	winPerHour := int(cps.Window(60 * 60 * 1e9 / spec.Width.Nanoseconds()))
	baseHour := 23.0 + 0.15*float64(ci%3)
	start := dayStart + cps.Window(float64(winPerHour)*baseHour) + cps.Window(rng.Intn(winPerHour/2))
	sensors := g.cfg.Net.Highways[hw].Sensors
	if len(sensors) == 0 {
		return Event{ID: id, Kind: NightWork, Highway: hw, Start: start}
	}
	strength := 6.9 * math.Pow(0.72, float64(ci))
	// Roadworks alternate heavy and light nights: the light nights'
	// micro-clusters fall below the day-scale significance bound, so
	// beforehand pruning silently drops part of the integrated cluster's
	// mass — the Example 6 failure mode the paper builds red zones to
	// avoid.
	perDay := cps.Window(spec.PerDay())
	if (dayStart/perDay)%2 == 1 {
		strength *= 0.3
	}
	mass := math.Exp(rng.NormFloat64()*0.7) * strength
	if mass < 0.05 {
		mass = 0.05
	}
	if mass > 9 {
		mass = 9
	}
	dim := math.Sqrt(mass)
	durWin := clampInt(int(float64(winPerHour)*3*dim), 3, winPerHour*4)
	peakBase := minInt(g.cfg.PeakSensors, len(sensors)*3/5)
	peak := clampInt(int(float64(peakBase)*dim), 2, len(sensors))
	seedIdx := (len(sensors)*2/5 + ci*5) % len(sensors)
	return g.diffuse(rng, id, NightWork, hw, sensors, seedIdx, start, durWin, peak)
}

// rushCorridors picks deterministic corridor pairs among the parallel
// east-west corridors (GenerateNetwork lays highways out as direction pairs;
// every third pair is east-west). Restricting recurrence to parallel
// corridors keeps distinct corridors farther apart than δd, so their
// simultaneous rush events stay distinct atypical events; crossing highways
// still host incidents that can bridge into a corridor's event at
// interchanges, as in real road networks.
func (g *Generator) rushCorridors() []corridor {
	var out []corridor
	n := len(g.cfg.Net.Highways)
	for k := 0; len(out) < g.cfg.RushCorridors && 6*k+1 < n; k++ {
		out = append(out, corridor{
			morning: g.cfg.Net.Highways[6*k].ID,
			evening: g.cfg.Net.Highways[6*k+1].ID,
		})
	}
	return out
}

// rushEvent injects one recurring rush congestion on hw starting near the
// canonical rush hour. Corridor index ci fixes the bottleneck location so
// the same corridor congests at the same place every day — the recurrence
// macro-clustering integrates.
func (g *Generator) rushEvent(rng *rand.Rand, id int, kind EventKind, hw traffic.HighwayID, dayStart cps.Window, ci int) Event {
	spec := g.cfg.Spec
	winPerHour := int(cps.Window(60 * 60 * 1e9 / spec.Width.Nanoseconds()))
	// Corridors stagger slightly — different commute sheds peak at
	// different times.
	var baseHour float64
	if kind == MorningRush {
		baseHour = 7.0 + 0.4*float64(ci%3)
	} else {
		baseHour = 16.5 + 0.4*float64(ci%3)
	}
	start := dayStart + cps.Window(float64(winPerHour)*baseHour) + cps.Window(rng.Intn(winPerHour/2))
	sensors := g.cfg.Net.Highways[hw].Sensors
	if len(sensors) == 0 {
		return Event{ID: id, Kind: kind, Highway: hw, Start: start}
	}
	// Corridors have a fixed strength spread — some corridors jam heavily
	// every day, others only mildly — so integrated macro-cluster
	// severities straddle the significance bound across the paper's δs
	// sweep (Fig. 19) instead of clustering at one magnitude. On top of
	// that, day-to-day magnitude variance makes beforehand pruning lossy
	// (Example 6: trivial daily micro-clusters integrate into significant
	// monthly macros).
	strength := 3.0 * math.Pow(0.62, float64(ci))
	// Secondary corridors run light on part of the week (construction
	// schedules, flexible commuting): their light-day micro-clusters fall
	// below the day-scale significance bound while the integrated cluster
	// stays marginally significant — exactly the clusters beforehand
	// pruning misses (Example 6).
	if ci >= 1 {
		perDay := cps.Window(spec.PerDay())
		if day := int(dayStart / perDay); day%5 < 2 {
			strength *= 0.22
		}
	}
	mass := math.Exp(rng.NormFloat64()*0.7) * strength
	if mass < 0.05 {
		mass = 0.05
	}
	if mass > 9 {
		mass = 9
	}
	// Split the mass across the two dimensions; cap the duration well short
	// of the morning/evening gap so recurring events never chain across
	// rush periods.
	dim := math.Sqrt(mass)
	durWin := clampInt(int(float64(winPerHour)*3.5*dim), 3, winPerHour*5)
	peakBase := minInt(g.cfg.PeakSensors, len(sensors)*3/5)
	peak := clampInt(int(float64(peakBase)*dim), 2, len(sensors))
	// Deterministic per-corridor bottleneck around 60% of the highway.
	seedIdx := (len(sensors)*3/5 + ci*7) % len(sensors)
	return g.diffuse(rng, id, kind, hw, sensors, seedIdx, start, durWin, peak)
}

// incident injects a one-off smaller event at a random location and time.
func (g *Generator) incident(rng *rand.Rand, id int, dayStart cps.Window) Event {
	net := g.cfg.Net
	hw := net.Highways[rng.Intn(len(net.Highways))]
	for len(hw.Sensors) == 0 {
		hw = net.Highways[rng.Intn(len(net.Highways))]
	}
	perDay := g.cfg.Spec.PerDay()
	start := dayStart + cps.Window(rng.Intn(perDay*9/10))
	winPerHour := 3600 * int(1e9) / int(g.cfg.Spec.Width.Nanoseconds())
	durWin := winPerHour/3 + rng.Intn(winPerHour*2/3) // 20–60 min
	seedIdx := rng.Intn(len(hw.Sensors))
	peak := minInt(2+rng.Intn(6), len(hw.Sensors))
	return g.diffuse(rng, id, Incident, hw.ID, hw.Sensors, seedIdx, start, durWin, peak)
}

// diffuse materializes an event: starting from sensors[seedIdx], the
// congested stretch grows upstream (toward lower mileposts) and slightly
// downstream to `peak` sensors at the event midpoint, then shrinks. Severity
// is full near the seed and decays toward the frontier.
func (g *Generator) diffuse(rng *rand.Rand, id int, kind EventKind, hw traffic.HighwayID,
	sensors []cps.SensorID, seedIdx int, start cps.Window, durWin, peak int) Event {

	ev := Event{ID: id, Kind: kind, Seed: sensors[seedIdx], Highway: hw, Start: start}
	ramp := float64(durWin) * 0.25
	for k := 0; k < durWin; k++ {
		// Trapezoidal coverage profile in [1, peak]: the queue grows to
		// full size over the first quarter of the event, holds, and
		// dissolves over the last quarter.
		edge := float64(k)
		if tail := float64(durWin - 1 - k); tail < edge {
			edge = tail
		}
		frac := 1.0
		if ramp > 0 && edge < ramp {
			frac = edge / ramp
		}
		radius := 1 + int(frac*float64(peak-1))
		// Queue grows mostly upstream: 3/4 of the radius behind the seed.
		lo := maxInt(0, seedIdx-radius*3/4)
		hi := minInt(len(sensors)-1, seedIdx+radius/4)
		w := start + cps.Window(k)
		for i := lo; i <= hi; i++ {
			distFrac := abs64(float64(i-seedIdx)) / float64(radius+1)
			sev := detect.MaxSeverityMinutes * (1 - 0.35*distFrac)
			sev += (rng.Float64() - 0.5) // jitter
			if sev < 0.5 {
				sev = 0.5
			}
			if sev > detect.MaxSeverityMinutes {
				sev = detect.MaxSeverityMinutes
			}
			ev.Records = append(ev.Records, cps.Record{Sensor: sensors[i], Window: w, Severity: cps.Severity(sev)})
		}
	}
	return ev
}

// poisson samples a Poisson variate by inversion; fine for small means.
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 {
			return k
		}
	}
}

func abs64(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
