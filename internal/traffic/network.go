// Package traffic models the road-network substrate of the paper's
// evaluation deployment: highways carrying loop-detector sensors at fixed
// mileposts, mapped onto pre-defined spatial regions.
//
// The paper's PeMS deployment covers Los Angeles and Ventura with ~4,076
// sensors on 38 highways (Section V). GenerateNetwork reproduces that shape
// deterministically and at configurable scale: a mix of east-west,
// north-south and diagonal highways across an LA-sized bounding box, sensors
// every ~half mile, and a zipcode-like grid hierarchy from package geo.
package traffic

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/geo"
)

// Direction is the travel direction of a highway.
type Direction uint8

// Highway directions. Paired freeways (e.g., 10E/10W in the paper's Example
// 2) are modeled as two distinct highways sharing a corridor.
const (
	East Direction = iota
	West
	North
	South
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case East:
		return "E"
	case West:
		return "W"
	case North:
		return "N"
	case South:
		return "S"
	default:
		return "?"
	}
}

// HighwayID identifies a highway within a network.
type HighwayID uint16

// Highway is one directed freeway represented as a polyline.
type Highway struct {
	ID   HighwayID
	Name string // e.g. "I-10E"
	Dir  Direction
	// Path is the polyline of the highway; sensors sit on it.
	Path []geo.Point
	// Sensors holds the ids of the sensors on this highway ordered by
	// milepost (ascending).
	Sensors []cps.SensorID
}

// Sensor is one physical detector.
type Sensor struct {
	ID       cps.SensorID
	Highway  HighwayID
	MilePost float64 // distance along the highway, miles
	Loc      geo.Point
	Region   geo.RegionID
}

// Network is the full topology: highways, sensors, and the pre-defined
// region grid, with the sensor → region map the paper assumes (Section
// II-A: "with the help of a topology graph mapping the sensors to different
// regions, the spatial coverage can be represented by a set of sensors").
type Network struct {
	Highways []Highway
	Sensors  []Sensor // indexed by SensorID
	Grid     *geo.Grid

	sensorsByRegion map[geo.RegionID][]cps.SensorID
}

// NumSensors returns the number of sensors in the network.
func (n *Network) NumSensors() int { return len(n.Sensors) }

// Sensor returns the sensor with the given id. It panics on unknown ids,
// which indicate corrupted input data.
func (n *Network) Sensor(id cps.SensorID) Sensor { return n.Sensors[id] }

// SensorsInRegion returns the sensors located in region r, ascending.
func (n *Network) SensorsInRegion(r geo.RegionID) []cps.SensorID {
	return n.sensorsByRegion[r]
}

// SensorsInBox returns all sensors whose location falls inside box,
// ascending by id.
func (n *Network) SensorsInBox(box geo.BBox) []cps.SensorID {
	var out []cps.SensorID
	for _, s := range n.Sensors {
		if box.Contains(s.Loc) {
			out = append(out, s.ID)
		}
	}
	return out
}

// Distance returns the great-circle distance in miles between two sensors.
func (n *Network) Distance(a, b cps.SensorID) float64 {
	return geo.DistanceMiles(n.Sensors[a].Loc, n.Sensors[b].Loc)
}

// NeighborsOnHighway returns up to k sensors adjacent to s on the same
// highway in milepost order (k/2 on each side where available). Used by the
// workload generator to diffuse congestion along the road.
func (n *Network) NeighborsOnHighway(s cps.SensorID, k int) []cps.SensorID {
	hw := n.Highways[n.Sensors[s].Highway]
	idx := -1
	for i, id := range hw.Sensors {
		if id == s {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil
	}
	lo := idx - k/2
	if lo < 0 {
		lo = 0
	}
	hi := idx + k/2 + 1
	if hi > len(hw.Sensors) {
		hi = len(hw.Sensors)
	}
	out := make([]cps.SensorID, 0, hi-lo-1)
	for i := lo; i < hi; i++ {
		if hw.Sensors[i] != s {
			out = append(out, hw.Sensors[i])
		}
	}
	return out
}

// Upstream returns the sensor one milepost step before s on its highway, or
// s itself at the highway start. Congestion propagates upstream (the queue
// grows backwards from the bottleneck).
func (n *Network) Upstream(s cps.SensorID) cps.SensorID {
	hw := n.Highways[n.Sensors[s].Highway]
	for i, id := range hw.Sensors {
		if id == s {
			if i == 0 {
				return s
			}
			return hw.Sensors[i-1]
		}
	}
	return s
}

// Config parameterizes GenerateNetwork.
type Config struct {
	// Box is the deployment area. Defaults to an LA+Ventura-sized box.
	Box geo.BBox
	// Highways is the number of directed highways. The paper's deployment
	// has 38.
	Highways int
	// SensorSpacingMiles is the distance between consecutive sensors on a
	// highway. PeMS detectors sit roughly every half mile.
	SensorSpacingMiles float64
	// GridRows/GridCols partition the box into pre-defined regions
	// (zipcode stand-ins); DistrictRows/Cols group them.
	GridRows, GridCols         int
	DistrictRows, DistrictCols int
	// Seed drives the deterministic layout jitter.
	Seed int64
}

// DefaultConfig mirrors the paper's deployment at full scale: 38 highways
// over an LA-sized box with ~0.5-mile sensor spacing, which yields roughly
// 4,000 sensors.
func DefaultConfig() Config {
	return Config{
		Box:                geo.BBox{Min: geo.Point{Lat: 33.60, Lon: -119.10}, Max: geo.Point{Lat: 34.45, Lon: -117.65}},
		Highways:           38,
		SensorSpacingMiles: 0.5,
		GridRows:           12, GridCols: 16,
		DistrictRows: 4, DistrictCols: 4,
		Seed: 1,
	}
}

// ScaledConfig returns DefaultConfig shrunk to approximately the given
// number of sensors for tests and laptop-scale benches. Scaling reduces the
// deployment area and highway count while keeping the sensor spacing dense,
// so the δd-connectivity structure of events (sensors ~0.5 miles apart,
// within the paper's 1.5-mile default distance threshold) is preserved at
// every scale.
func ScaledConfig(approxSensors int) Config {
	cfg := DefaultConfig()
	const fullScale = 4076 // the paper's sensor count at default spacing
	if approxSensors <= 0 || approxSensors >= fullScale {
		return cfg
	}
	ratio := float64(approxSensors) / fullScale
	side := math.Sqrt(ratio) // shrink both axes and the highway count
	cfg.Highways = maxI(4, int(float64(cfg.Highways)*side+0.5))
	if cfg.Highways%2 == 1 {
		cfg.Highways++ // keep direction pairs intact
	}
	center := cfg.Box.Center()
	halfLat := (cfg.Box.Max.Lat - cfg.Box.Min.Lat) / 2 * side
	halfLon := (cfg.Box.Max.Lon - cfg.Box.Min.Lon) / 2 * side
	cfg.Box = geo.BBox{
		Min: geo.Point{Lat: center.Lat - halfLat, Lon: center.Lon - halfLon},
		Max: geo.Point{Lat: center.Lat + halfLat, Lon: center.Lon + halfLon},
	}
	cfg.GridRows = maxI(4, int(float64(cfg.GridRows)*side+0.5))
	cfg.GridCols = maxI(4, int(float64(cfg.GridCols)*side+0.5))
	cfg.DistrictRows = maxI(2, cfg.GridRows/3)
	cfg.DistrictCols = maxI(2, cfg.GridCols/4)
	return cfg
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// GenerateNetwork deterministically lays out a synthetic network per cfg.
func GenerateNetwork(cfg Config) *Network {
	if cfg.Highways <= 0 || cfg.SensorSpacingMiles <= 0 {
		panic(fmt.Sprintf("traffic: invalid config %+v", cfg))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	grid := geo.NewGrid(cfg.Box, cfg.GridRows, cfg.GridCols, cfg.DistrictRows, cfg.DistrictCols)
	net := &Network{Grid: grid, sensorsByRegion: make(map[geo.RegionID][]cps.SensorID)}

	latSpan := cfg.Box.Max.Lat - cfg.Box.Min.Lat
	lonSpan := cfg.Box.Max.Lon - cfg.Box.Min.Lon

	for h := 0; h < cfg.Highways; h++ {
		hw := Highway{ID: HighwayID(h)}
		// Alternate between corridor shapes; paired directions share a
		// corridor offset slightly, reproducing 10E/10W-style pairs.
		pair := h / 2
		kind := pair % 3 // 0: east-west, 1: north-south, 2: diagonal
		jitter := (rng.Float64() - 0.5) * 0.02
		frac := (float64(pair%7) + 0.5) / 7 // spread corridors across the box
		offset := 0.004 * float64(h%2)      // separate the two directions
		const steps = 24
		for i := 0; i <= steps; i++ {
			t := float64(i) / steps
			wobble := 0.01 * math.Sin(t*math.Pi*3+float64(pair))
			var p geo.Point
			switch kind {
			case 0:
				p = geo.Point{
					Lat: cfg.Box.Min.Lat + latSpan*frac + wobble + jitter + offset,
					Lon: cfg.Box.Min.Lon + lonSpan*t,
				}
			case 1:
				p = geo.Point{
					Lat: cfg.Box.Min.Lat + latSpan*t,
					Lon: cfg.Box.Min.Lon + lonSpan*frac + wobble + jitter + offset,
				}
			default:
				p = geo.Point{
					Lat: cfg.Box.Min.Lat + latSpan*t + offset,
					Lon: cfg.Box.Min.Lon + lonSpan*(frac*0.6+0.4*t) + wobble + jitter,
				}
			}
			hw.Path = append(hw.Path, p)
		}
		switch {
		case kind == 0 && h%2 == 0:
			hw.Dir, hw.Name = East, fmt.Sprintf("I-%dE", 10+pair*2)
		case kind == 0:
			hw.Dir, hw.Name = West, fmt.Sprintf("I-%dW", 10+pair*2)
		case kind == 1 && h%2 == 0:
			hw.Dir, hw.Name = North, fmt.Sprintf("SR-%dN", 101+pair*2)
		case kind == 1:
			hw.Dir, hw.Name = South, fmt.Sprintf("SR-%dS", 101+pair*2)
		case h%2 == 0:
			hw.Dir, hw.Name = North, fmt.Sprintf("US-%dN", 201+pair*2)
		default:
			hw.Dir, hw.Name = South, fmt.Sprintf("US-%dS", 201+pair*2)
		}
		placeSensors(net, &hw, cfg.SensorSpacingMiles)
		net.Highways = append(net.Highways, hw)
	}
	for _, s := range net.Sensors {
		if s.Region != geo.NoRegion {
			net.sensorsByRegion[s.Region] = append(net.sensorsByRegion[s.Region], s.ID)
		}
	}
	for _, ids := range net.sensorsByRegion {
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	}
	return net
}

// placeSensors walks the highway polyline placing a sensor every
// spacingMiles, appending to net.Sensors and hw.Sensors.
func placeSensors(net *Network, hw *Highway, spacingMiles float64) {
	var milepost, carry float64
	for i := 1; i < len(hw.Path); i++ {
		a, b := hw.Path[i-1], hw.Path[i]
		segLen := geo.DistanceMiles(a, b)
		if segLen == 0 {
			continue
		}
		pos := spacingMiles - carry
		for pos <= segLen {
			t := pos / segLen
			loc := geo.Point{
				Lat: a.Lat + (b.Lat-a.Lat)*t,
				Lon: a.Lon + (b.Lon-a.Lon)*t,
			}
			id := cps.SensorID(len(net.Sensors))
			net.Sensors = append(net.Sensors, Sensor{
				ID:       id,
				Highway:  hw.ID,
				MilePost: milepost + pos,
				Loc:      loc,
				Region:   net.Grid.Locate(loc),
			})
			hw.Sensors = append(hw.Sensors, id)
			pos += spacingMiles
		}
		carry = segLen - (pos - spacingMiles)
		milepost += segLen
	}
}
