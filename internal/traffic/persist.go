package traffic

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/geo"
)

// Topology persistence: real deployments have a fixed sensor topology that
// tools must share exactly (atypgen/atypforest/atypquery all resolve the
// same SensorIDs). The JSON format stores the highways, sensors and grid
// parameters; Load rebuilds the derived structures (region assignment,
// per-region sensor lists).

// networkJSON is the serialized form.
type networkJSON struct {
	Version  int           `json:"version"`
	Grid     gridJSON      `json:"grid"`
	Highways []highwayJSON `json:"highways"`
	Sensors  []sensorJSON  `json:"sensors"`
}

type gridJSON struct {
	Box   geo.BBox `json:"box"`
	Rows  int      `json:"rows"`
	Cols  int      `json:"cols"`
	DRows int      `json:"district_rows"`
	DCols int      `json:"district_cols"`
}

type highwayJSON struct {
	ID   HighwayID   `json:"id"`
	Name string      `json:"name"`
	Dir  Direction   `json:"dir"`
	Path []geo.Point `json:"path"`
}

type sensorJSON struct {
	ID       cps.SensorID `json:"id"`
	Highway  HighwayID    `json:"highway"`
	MilePost float64      `json:"milepost"`
	Loc      geo.Point    `json:"loc"`
}

// Save writes the network topology as JSON.
func (n *Network) Save(w io.Writer) error {
	out := networkJSON{
		Version: 1,
		Grid: gridJSON{
			Box:   n.Grid.Box,
			Rows:  n.Grid.Rows,
			Cols:  n.Grid.Cols,
			DRows: n.Grid.DistrictRows,
			DCols: n.Grid.DistrictCols,
		},
	}
	for _, hw := range n.Highways {
		out.Highways = append(out.Highways, highwayJSON{
			ID: hw.ID, Name: hw.Name, Dir: hw.Dir, Path: hw.Path,
		})
	}
	for _, s := range n.Sensors {
		out.Sensors = append(out.Sensors, sensorJSON{
			ID: s.ID, Highway: s.Highway, MilePost: s.MilePost, Loc: s.Loc,
		})
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(&out); err != nil {
		return fmt.Errorf("traffic: encoding network: %w", err)
	}
	return nil
}

// LoadNetwork reads a topology written by Save and rebuilds the derived
// structures. Sensor IDs must be dense (0..n-1) and sensors are re-attached
// to their highways in milepost order.
func LoadNetwork(r io.Reader) (*Network, error) {
	var in networkJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("traffic: decoding network: %w", err)
	}
	if in.Version != 1 {
		return nil, fmt.Errorf("traffic: unsupported network version %d", in.Version)
	}
	if in.Grid.Rows <= 0 || in.Grid.Cols <= 0 || in.Grid.DRows <= 0 || in.Grid.DCols <= 0 {
		return nil, fmt.Errorf("traffic: invalid grid dimensions in network file")
	}
	net := &Network{
		Grid:            geo.NewGrid(in.Grid.Box, in.Grid.Rows, in.Grid.Cols, in.Grid.DRows, in.Grid.DCols),
		sensorsByRegion: make(map[geo.RegionID][]cps.SensorID),
	}
	maxHW := HighwayID(0)
	for _, hw := range in.Highways {
		if hw.ID > maxHW {
			maxHW = hw.ID
		}
	}
	net.Highways = make([]Highway, maxHW+1)
	for _, hw := range in.Highways {
		net.Highways[hw.ID] = Highway{ID: hw.ID, Name: hw.Name, Dir: hw.Dir, Path: hw.Path}
	}
	net.Sensors = make([]Sensor, len(in.Sensors))
	for _, s := range in.Sensors {
		if int(s.ID) >= len(in.Sensors) {
			return nil, fmt.Errorf("traffic: sensor ids must be dense, got id %d of %d sensors", s.ID, len(in.Sensors))
		}
		if int(s.Highway) >= len(net.Highways) {
			return nil, fmt.Errorf("traffic: sensor %d references unknown highway %d", s.ID, s.Highway)
		}
		net.Sensors[s.ID] = Sensor{
			ID:       s.ID,
			Highway:  s.Highway,
			MilePost: s.MilePost,
			Loc:      s.Loc,
			Region:   net.Grid.Locate(s.Loc),
		}
	}
	// Re-derive highway sensor lists (milepost order) and region lists.
	for _, s := range net.Sensors {
		hw := &net.Highways[s.Highway]
		hw.Sensors = append(hw.Sensors, s.ID)
		if s.Region != geo.NoRegion {
			net.sensorsByRegion[s.Region] = append(net.sensorsByRegion[s.Region], s.ID)
		}
	}
	for i := range net.Highways {
		hw := &net.Highways[i]
		sort.Slice(hw.Sensors, func(a, b int) bool {
			return net.Sensors[hw.Sensors[a]].MilePost < net.Sensors[hw.Sensors[b]].MilePost
		})
	}
	for _, ids := range net.sensorsByRegion {
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	}
	return net, nil
}
