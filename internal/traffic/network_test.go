package traffic

import (
	"math"
	"testing"

	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/geo"
)

func TestGenerateNetworkFullScale(t *testing.T) {
	net := GenerateNetwork(DefaultConfig())
	if len(net.Highways) != 38 {
		t.Fatalf("highways = %d, want 38", len(net.Highways))
	}
	n := net.NumSensors()
	if n < 3000 || n > 6000 {
		t.Errorf("sensors = %d, want ~4000 (paper: 4076)", n)
	}
}

func TestGenerateNetworkDeterministic(t *testing.T) {
	a := GenerateNetwork(DefaultConfig())
	b := GenerateNetwork(DefaultConfig())
	if a.NumSensors() != b.NumSensors() {
		t.Fatal("same config should yield same sensor count")
	}
	for i := range a.Sensors {
		if a.Sensors[i] != b.Sensors[i] {
			t.Fatalf("sensor %d differs between runs", i)
		}
	}
}

func TestScaledConfig(t *testing.T) {
	for _, want := range []int{200, 500, 1000, 2000} {
		net := GenerateNetwork(ScaledConfig(want))
		got := net.NumSensors()
		if got < want/3 || got > want*3 {
			t.Errorf("ScaledConfig(%d) produced %d sensors", want, got)
		}
	}
	// Asking for full scale or more returns the default.
	if cfg := ScaledConfig(10000); cfg.SensorSpacingMiles != DefaultConfig().SensorSpacingMiles {
		t.Error("over-scale request should return default spacing")
	}
}

func TestSensorIDsAreDense(t *testing.T) {
	net := GenerateNetwork(ScaledConfig(500))
	for i, s := range net.Sensors {
		if s.ID != cps.SensorID(i) {
			t.Fatalf("sensor at index %d has id %d", i, s.ID)
		}
	}
}

func TestSensorsLieInBoxAndRegions(t *testing.T) {
	cfg := ScaledConfig(800)
	net := GenerateNetwork(cfg)
	outside := 0
	for _, s := range net.Sensors {
		if s.Region == geo.NoRegion {
			outside++
			continue
		}
		if !net.Grid.Region(s.Region).Box.Contains(s.Loc) {
			t.Fatalf("sensor %d region box does not contain its location", s.ID)
		}
	}
	// Wobble can push a few sensors out of the box; it must stay rare.
	if outside > net.NumSensors()/10 {
		t.Errorf("%d/%d sensors outside the grid", outside, net.NumSensors())
	}
}

func TestSensorsByRegionConsistent(t *testing.T) {
	net := GenerateNetwork(ScaledConfig(500))
	counted := 0
	for _, r := range net.Grid.Regions() {
		for _, id := range net.SensorsInRegion(r.ID) {
			if net.Sensor(id).Region != r.ID {
				t.Fatalf("sensor %d listed in region %d but located in %d", id, r.ID, net.Sensor(id).Region)
			}
			counted++
		}
	}
	inGrid := 0
	for _, s := range net.Sensors {
		if s.Region != geo.NoRegion {
			inGrid++
		}
	}
	if counted != inGrid {
		t.Errorf("region lists cover %d sensors, want %d", counted, inGrid)
	}
}

func TestMilepostsMonotone(t *testing.T) {
	net := GenerateNetwork(ScaledConfig(500))
	for _, hw := range net.Highways {
		prev := -1.0
		for _, id := range hw.Sensors {
			mp := net.Sensor(id).MilePost
			if mp <= prev {
				t.Fatalf("highway %s milepost not increasing: %f after %f", hw.Name, mp, prev)
			}
			prev = mp
		}
	}
}

func TestConsecutiveSensorSpacing(t *testing.T) {
	cfg := ScaledConfig(1000)
	net := GenerateNetwork(cfg)
	for _, hw := range net.Highways[:4] {
		for i := 1; i < len(hw.Sensors); i++ {
			d := net.Distance(hw.Sensors[i-1], hw.Sensors[i])
			if d > cfg.SensorSpacingMiles*1.6 {
				t.Errorf("highway %s sensors %d-%d are %.2f miles apart (spacing %.2f)",
					hw.Name, i-1, i, d, cfg.SensorSpacingMiles)
			}
		}
	}
}

func TestNeighborsOnHighway(t *testing.T) {
	net := GenerateNetwork(ScaledConfig(500))
	hw := net.Highways[0]
	if len(hw.Sensors) < 5 {
		t.Skip("highway too short for the test")
	}
	mid := hw.Sensors[len(hw.Sensors)/2]
	nb := net.NeighborsOnHighway(mid, 4)
	if len(nb) != 4 {
		t.Fatalf("neighbors = %d, want 4", len(nb))
	}
	for _, id := range nb {
		if id == mid {
			t.Error("neighbor list must exclude the sensor itself")
		}
		if net.Sensor(id).Highway != hw.ID {
			t.Error("neighbor on different highway")
		}
	}
	// At the start of the highway the window is truncated.
	first := hw.Sensors[0]
	nb = net.NeighborsOnHighway(first, 4)
	if len(nb) != 2 {
		t.Errorf("start-of-highway neighbors = %d, want 2", len(nb))
	}
}

func TestUpstream(t *testing.T) {
	net := GenerateNetwork(ScaledConfig(500))
	hw := net.Highways[0]
	if got := net.Upstream(hw.Sensors[0]); got != hw.Sensors[0] {
		t.Error("upstream of the first sensor should be itself")
	}
	if len(hw.Sensors) > 1 {
		if got := net.Upstream(hw.Sensors[1]); got != hw.Sensors[0] {
			t.Errorf("Upstream = %d, want %d", got, hw.Sensors[0])
		}
	}
}

func TestSensorsInBox(t *testing.T) {
	net := GenerateNetwork(ScaledConfig(500))
	all := net.SensorsInBox(net.Grid.Box)
	if len(all) == 0 {
		t.Fatal("no sensors in deployment box")
	}
	half := net.Grid.Box
	half.Max.Lon = (half.Min.Lon + half.Max.Lon) / 2
	some := net.SensorsInBox(half)
	if len(some) == 0 || len(some) >= len(all) {
		t.Errorf("half box has %d of %d sensors", len(some), len(all))
	}
}

func TestDirectionString(t *testing.T) {
	cases := map[Direction]string{East: "E", West: "W", North: "N", South: "S", Direction(9): "?"}
	for d, want := range cases {
		if d.String() != want {
			t.Errorf("%d.String() = %q", d, d.String())
		}
	}
}

func TestPairedHighwaysShareCorridor(t *testing.T) {
	net := GenerateNetwork(DefaultConfig())
	// Highways 0 and 1 are the E/W pair of the first corridor; their first
	// path points should be near each other but not identical.
	a, b := net.Highways[0].Path[0], net.Highways[1].Path[0]
	d := geo.DistanceMiles(a, b)
	if d == 0 || d > 5 {
		t.Errorf("paired corridors %.2f miles apart", d)
	}
	if net.Highways[0].Dir == net.Highways[1].Dir {
		t.Error("paired highways should have opposite directions")
	}
}

func TestDistanceMatchesGeo(t *testing.T) {
	net := GenerateNetwork(ScaledConfig(300))
	a, b := net.Sensors[0], net.Sensors[1]
	want := geo.DistanceMiles(a.Loc, b.Loc)
	if got := net.Distance(a.ID, b.ID); math.Abs(got-want) > 1e-12 {
		t.Errorf("Distance = %v, want %v", got, want)
	}
}
