package traffic

import (
	"bytes"
	"strings"
	"testing"
)

func TestNetworkSaveLoadRoundTrip(t *testing.T) {
	orig := GenerateNetwork(ScaledConfig(400))
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadNetwork(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumSensors() != orig.NumSensors() {
		t.Fatalf("sensors: %d vs %d", got.NumSensors(), orig.NumSensors())
	}
	if len(got.Highways) != len(orig.Highways) {
		t.Fatalf("highways: %d vs %d", len(got.Highways), len(orig.Highways))
	}
	for i := range orig.Sensors {
		a, b := orig.Sensors[i], got.Sensors[i]
		if a.ID != b.ID || a.Highway != b.Highway || a.Loc != b.Loc || a.Region != b.Region {
			t.Fatalf("sensor %d differs: %+v vs %+v", i, a, b)
		}
	}
	for i := range orig.Highways {
		a, b := orig.Highways[i], got.Highways[i]
		if a.Name != b.Name || a.Dir != b.Dir || len(a.Sensors) != len(b.Sensors) {
			t.Fatalf("highway %d differs", i)
		}
		for k := range a.Sensors {
			if a.Sensors[k] != b.Sensors[k] {
				t.Fatalf("highway %d sensor order differs at %d", i, k)
			}
		}
	}
	// Derived structures behave identically.
	for _, r := range orig.Grid.Regions() {
		a, b := orig.SensorsInRegion(r.ID), got.SensorsInRegion(r.ID)
		if len(a) != len(b) {
			t.Fatalf("region %d sensors: %d vs %d", r.ID, len(a), len(b))
		}
	}
	if orig.Grid.NumDistricts() != got.Grid.NumDistricts() {
		t.Error("district structure differs")
	}
}

func TestLoadNetworkRejectsGarbage(t *testing.T) {
	if _, err := LoadNetwork(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadNetwork(strings.NewReader(`{"version": 9}`)); err == nil {
		t.Error("unknown version accepted")
	}
	if _, err := LoadNetwork(strings.NewReader(`{"version": 1, "grid": {"rows": 0}}`)); err == nil {
		t.Error("bad grid accepted")
	}
	// Sparse sensor ids rejected.
	sparse := `{"version":1,"grid":{"box":{"Min":{"Lat":0,"Lon":0},"Max":{"Lat":1,"Lon":1}},"rows":2,"cols":2,"district_rows":1,"district_cols":1},
		"highways":[{"id":0,"name":"H","dir":0,"path":[]}],
		"sensors":[{"id":5,"highway":0,"milepost":1,"loc":{"Lat":0.5,"Lon":0.5}}]}`
	if _, err := LoadNetwork(strings.NewReader(sparse)); err == nil {
		t.Error("sparse sensor ids accepted")
	}
	// Unknown highway reference rejected.
	badHW := `{"version":1,"grid":{"box":{"Min":{"Lat":0,"Lon":0},"Max":{"Lat":1,"Lon":1}},"rows":2,"cols":2,"district_rows":1,"district_cols":1},
		"highways":[{"id":0,"name":"H","dir":0,"path":[]}],
		"sensors":[{"id":0,"highway":7,"milepost":1,"loc":{"Lat":0.5,"Lon":0.5}}]}`
	if _, err := LoadNetwork(strings.NewReader(badHW)); err == nil {
		t.Error("unknown highway reference accepted")
	}
}
