// Package trust implements the trustworthiness-analysis extension the paper
// names as future work (Section VII), following the corroboration idea of
// the authors' Tru-Alarm line of work ([17], [18]): an atypical reading is
// credible when the physical process it reports — congestion, intrusion —
// must also be visible to nearby sensors at nearby times. Sensors whose
// alarms are persistently uncorroborated are likely faulty, and their
// records can be filtered before event extraction.
package trust

import (
	"errors"
	"fmt"
	"sort"

	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/index"
)

// ErrConfig is the sentinel every configuration rejection wraps, so callers
// can errors.Is-classify a bad Config without string matching.
var ErrConfig = errors.New("trust: invalid configuration")

// Score is one sensor's trustworthiness assessment.
type Score struct {
	Sensor cps.SensorID
	// Records is the number of atypical records the sensor reported.
	Records int
	// Corroborated is how many of them had a δd/δt-neighboring atypical
	// record from a different sensor.
	Corroborated int
	// Trust is the smoothed corroboration rate in (0, 1).
	Trust float64
}

// Config parameterizes the analysis.
type Config struct {
	// Neighbors lists, per sensor, the sensors strictly within δd.
	Neighbors [][]cps.SensorID
	// MaxGap is the largest corroborating window distance
	// (cluster.MaxWindowGap(δt, width)).
	MaxGap int
	// Prior weights the Laplace smoothing: a sensor with no records gets
	// trust Prior/(Prior+1). Default 1.
	Prior float64
}

// Analyzer scores sensors over atypical record sets.
type Analyzer struct {
	cfg Config
}

// New validates cfg and returns an analyzer.
func New(cfg Config) (*Analyzer, error) {
	if cfg.MaxGap < 0 {
		return nil, fmt.Errorf("%w: MaxGap must be non-negative, got %d", ErrConfig, cfg.MaxGap)
	}
	if cfg.Prior < 0 {
		return nil, fmt.Errorf("%w: Prior must be non-negative, got %v", ErrConfig, cfg.Prior)
	}
	if cfg.Prior == 0 {
		cfg.Prior = 1
	}
	return &Analyzer{cfg: cfg}, nil
}

// Scores computes per-sensor trust over a canonical record slice. Sensors
// with no records are omitted. Results are ascending by sensor.
func (a *Analyzer) Scores(recs []cps.Record) []Score {
	widx := index.NewWindowIndex(recs)
	perSensor := make(map[cps.SensorID]*Score)
	for _, r := range recs {
		s := perSensor[r.Sensor]
		if s == nil {
			s = &Score{Sensor: r.Sensor}
			perSensor[r.Sensor] = s
		}
		s.Records++
		if a.corroborated(widx, r) {
			s.Corroborated++
		}
	}
	out := make([]Score, 0, len(perSensor))
	for _, s := range perSensor {
		s.Trust = (float64(s.Corroborated) + a.cfg.Prior) / (float64(s.Records) + a.cfg.Prior + 1)
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Sensor < out[j].Sensor })
	return out
}

// corroborated reports whether some *other* sensor within δd was atypical
// within δt of r.
func (a *Analyzer) corroborated(widx *index.WindowIndex, r cps.Record) bool {
	if int(r.Sensor) >= len(a.cfg.Neighbors) {
		return false
	}
	for gap := -a.cfg.MaxGap; gap <= a.cfg.MaxGap; gap++ {
		w := r.Window + cps.Window(gap)
		for _, nb := range a.cfg.Neighbors[r.Sensor] {
			if widx.IndexOf(w, nb) >= 0 {
				return true
			}
		}
	}
	return false
}

// TrustMap returns sensor → trust from a score slice.
func TrustMap(scores []Score) map[cps.SensorID]float64 {
	out := make(map[cps.SensorID]float64, len(scores))
	for _, s := range scores {
		out[s.Sensor] = s.Trust
	}
	return out
}

// Filter returns the records whose sensor's trust reaches minTrust,
// preserving canonical order. Records from unscored sensors are kept (no
// evidence against them).
func Filter(recs []cps.Record, scores []Score, minTrust float64) []cps.Record {
	tm := TrustMap(scores)
	out := make([]cps.Record, 0, len(recs))
	for _, r := range recs {
		if t, ok := tm[r.Sensor]; ok && t < minTrust {
			continue
		}
		out = append(out, r)
	}
	return out
}

// LeastTrusted returns up to k scores with the lowest trust, ascending by
// trust (ties by sensor id) — the maintenance work list.
func LeastTrusted(scores []Score, k int) []Score {
	sorted := make([]Score, len(scores))
	copy(sorted, scores)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Trust < sorted[j].Trust {
			return true
		}
		if sorted[i].Trust > sorted[j].Trust {
			return false
		}
		return sorted[i].Sensor < sorted[j].Sensor
	})
	if k > len(sorted) {
		k = len(sorted)
	}
	return sorted[:k]
}
