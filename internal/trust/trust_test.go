package trust

import (
	"math/rand"
	"testing"
	"time"

	"github.com/cpskit/atypical/internal/cluster"
	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/gen"
	"github.com/cpskit/atypical/internal/geo"
	"github.com/cpskit/atypical/internal/index"
	"github.com/cpskit/atypical/internal/traffic"
)

func lineLocs(n int, spacing float64) []geo.Point {
	locs := make([]geo.Point, n)
	for i := range locs {
		locs[i] = geo.Point{Lat: 34, Lon: -118 + float64(i)*spacing/geo.MilesPerDegreeLon(34)}
	}
	return locs
}

func analyzer(t *testing.T, locs []geo.Point, deltaD float64, maxGap int) *Analyzer {
	t.Helper()
	a, err := New(Config{
		Neighbors: index.NewNeighborIndex(locs, deltaD).NeighborLists(),
		MaxGap:    maxGap,
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{MaxGap: -1}); err == nil {
		t.Error("negative MaxGap accepted")
	}
	if _, err := New(Config{Prior: -1}); err == nil {
		t.Error("negative Prior accepted")
	}
}

func TestScoresCorroboration(t *testing.T) {
	locs := lineLocs(5, 1)
	a := analyzer(t, locs, 1.5, 1)
	recs := cps.NewRecordSet([]cps.Record{
		// Sensors 0 and 1 corroborate each other.
		{Sensor: 0, Window: 10, Severity: 2},
		{Sensor: 1, Window: 11, Severity: 2},
		// Sensor 4 fires alone, repeatedly.
		{Sensor: 4, Window: 5, Severity: 2},
		{Sensor: 4, Window: 40, Severity: 2},
		{Sensor: 4, Window: 80, Severity: 2},
	}).Records()
	scores := a.Scores(recs)
	if len(scores) != 3 {
		t.Fatalf("scores = %d", len(scores))
	}
	tm := TrustMap(scores)
	if tm[0] <= tm[4] || tm[1] <= tm[4] {
		t.Errorf("corroborated sensors should outrank the lone one: %v", tm)
	}
	// Corroboration counts: sensors 0,1 fully corroborated; 4 never.
	for _, s := range scores {
		switch s.Sensor {
		case 0, 1:
			if s.Corroborated != s.Records {
				t.Errorf("sensor %d corroborated %d/%d", s.Sensor, s.Corroborated, s.Records)
			}
		case 4:
			if s.Corroborated != 0 {
				t.Errorf("sensor 4 corroborated %d", s.Corroborated)
			}
		}
	}
}

func TestSameSensorDoesNotSelfCorroborate(t *testing.T) {
	locs := lineLocs(3, 10) // far apart: no neighbors
	a := analyzer(t, locs, 1.5, 2)
	recs := cps.NewRecordSet([]cps.Record{
		{Sensor: 0, Window: 10, Severity: 2},
		{Sensor: 0, Window: 11, Severity: 2},
	}).Records()
	scores := a.Scores(recs)
	if scores[0].Corroborated != 0 {
		t.Error("a sensor must not corroborate itself")
	}
}

func TestMaxGapZeroRequiresSameWindow(t *testing.T) {
	locs := lineLocs(2, 1)
	a := analyzer(t, locs, 1.5, 0)
	recs := cps.NewRecordSet([]cps.Record{
		{Sensor: 0, Window: 10, Severity: 2},
		{Sensor: 1, Window: 11, Severity: 2}, // adjacent window: not corroborating at gap 0
	}).Records()
	for _, s := range a.Scores(recs) {
		if s.Corroborated != 0 {
			t.Errorf("sensor %d corroborated across windows at MaxGap 0", s.Sensor)
		}
	}
}

func TestFilter(t *testing.T) {
	scores := []Score{
		{Sensor: 1, Trust: 0.9},
		{Sensor: 2, Trust: 0.2},
	}
	recs := []cps.Record{
		{Sensor: 1, Window: 0, Severity: 1},
		{Sensor: 2, Window: 0, Severity: 1},
		{Sensor: 3, Window: 0, Severity: 1}, // unscored: kept
	}
	got := Filter(recs, scores, 0.5)
	if len(got) != 2 {
		t.Fatalf("filtered = %d records", len(got))
	}
	if got[0].Sensor != 1 || got[1].Sensor != 3 {
		t.Errorf("kept %v", got)
	}
}

func TestLeastTrusted(t *testing.T) {
	scores := []Score{
		{Sensor: 1, Trust: 0.9},
		{Sensor: 2, Trust: 0.1},
		{Sensor: 3, Trust: 0.5},
	}
	got := LeastTrusted(scores, 2)
	if len(got) != 2 || got[0].Sensor != 2 || got[1].Sensor != 3 {
		t.Errorf("LeastTrusted = %v", got)
	}
	if got := LeastTrusted(scores, 99); len(got) != 3 {
		t.Errorf("over-ask = %d", len(got))
	}
}

// End to end: inject faulty chattering sensors into the synthetic workload;
// they must sink to the bottom of the trust ranking, and filtering them
// must not disturb the real events.
func TestDetectsFaultySensorsInWorkload(t *testing.T) {
	net := traffic.GenerateNetwork(traffic.ScaledConfig(250))
	spec := cps.DefaultSpec()
	cfg := gen.DefaultConfig(net)
	cfg.DaysPerMonth = 5
	cfg.NoisePerDay = 0 // keep the background clean for a crisp oracle
	g, err := gen.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds := g.Month(0)

	// Faulty sensors chatter at random windows, uncorroborated. They sit
	// on incident-only highways — a faulty sensor inside a recurring
	// congestion corridor is (correctly) corroborated by the real events
	// around it.
	rng := rand.New(rand.NewSource(9))
	faulty := []cps.SensorID{
		net.Highways[4].Sensors[5],
		net.Highways[5].Sensors[9],
		net.Highways[9].Sensors[3],
	}
	var noisy []cps.Record
	noisy = append(noisy, ds.Atypical.Records()...)
	for _, s := range faulty {
		for i := 0; i < 80; i++ {
			noisy = append(noisy, cps.Record{
				Sensor:   s,
				Window:   cps.Window(rng.Intn(5 * spec.PerDay())),
				Severity: 2,
			})
		}
	}
	all := cps.NewRecordSet(noisy)

	locs := make([]geo.Point, net.NumSensors())
	for i, s := range net.Sensors {
		locs[i] = s.Loc
	}
	a, err := New(Config{
		Neighbors: index.NewNeighborIndex(locs, 1.5).NeighborLists(),
		MaxGap:    cluster.MaxWindowGap(15*time.Minute, spec.Width),
	})
	if err != nil {
		t.Fatal(err)
	}
	scores := a.Scores(all.Records())
	worst := LeastTrusted(scores, len(faulty))
	found := map[cps.SensorID]bool{}
	for _, s := range worst {
		found[s.Sensor] = true
	}
	for _, s := range faulty {
		if !found[s] {
			t.Errorf("faulty sensor %d not in the bottom %d: %v", s, len(faulty), worst)
		}
	}

	// Filtering at a threshold between faulty and healthy trust removes
	// most chatter while keeping the events.
	tm := TrustMap(scores)
	var maxFaulty float64
	for _, s := range faulty {
		if tm[s] > maxFaulty {
			maxFaulty = tm[s]
		}
	}
	filtered := Filter(all.Records(), scores, maxFaulty+0.01)
	if len(filtered) >= all.Len() {
		t.Error("filtering removed nothing")
	}
	removed := all.Len() - len(filtered)
	if removed < 200 { // 240 injected chatter records, some coalesced
		t.Errorf("removed %d records, expected most of the injected chatter", removed)
	}
	// Real event records survive: total filtered severity stays near the
	// clean dataset's.
	var cleanSev, filtSev cps.Severity
	for _, r := range ds.Atypical.Records() {
		cleanSev += r.Severity
	}
	for _, r := range filtered {
		filtSev += r.Severity
	}
	if float64(filtSev) < 0.95*float64(cleanSev) {
		t.Errorf("filtering lost real event mass: %v of %v", filtSev, cleanSev)
	}
}
