// Package par provides the small, dependency-free worker-pool primitive the
// parallel construction pipeline is built on. The design constraint — shared
// with every caller in cluster, cube and the facade — is that parallelism
// must never change *what* is computed, only *when*: callers index work and
// results by position so scheduling order cannot leak into output, and the
// paper's algebraic properties (commutative, associative cluster merging;
// distributive severity aggregation) license reordering the work itself.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count knob: values <= 0 mean "one worker per
// available CPU" (runtime.GOMAXPROCS), anything else is taken literally.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Do runs fn(0), ..., fn(n-1) on up to workers goroutines and waits for all
// of them. Each index runs exactly once unless the context is cancelled or a
// call fails, after which no *new* indices are started (in-flight calls
// finish). The first error — fn's or the context's — is returned.
//
// With workers <= 1 the calls run inline on the calling goroutine, in index
// order, making the serial path trivially deterministic and allocation-free;
// parallel callers must therefore not rely on any cross-index ordering.
func Do(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next     atomic.Int64 // next index to hand out
		firstErr atomic.Pointer[error]
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		e := err
		firstErr.CompareAndSwap(nil, &e)
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if firstErr.Load() != nil {
					return
				}
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if p := firstErr.Load(); p != nil {
		return *p
	}
	return nil
}
