package par

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d", got)
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
}

func TestDoRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 100
		var hits [n]atomic.Int32
		if err := Do(context.Background(), n, workers, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestDoPropagatesFirstError(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int32
	err := Do(context.Background(), 1000, 4, func(i int) error {
		calls.Add(1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// No new indices start after the failure; a bounded number were in flight.
	if c := calls.Load(); c == 1000 {
		t.Errorf("error did not stop dispatch: %d calls", c)
	}
}

func TestDoHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int32
	err := Do(ctx, 1000, 2, func(i int) error {
		if calls.Add(1) == 5 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if c := calls.Load(); c == 1000 {
		t.Errorf("cancellation did not stop dispatch: %d calls", c)
	}
	// Pre-cancelled context: nothing runs even in the inline path.
	if err := Do(ctx, 10, 1, func(int) error { t.Fatal("ran"); return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("inline err = %v", err)
	}
}

func TestDoZeroWork(t *testing.T) {
	if err := Do(context.Background(), 0, 4, func(int) error { return errors.New("no") }); err != nil {
		t.Fatalf("n=0: %v", err)
	}
}
