// Package geo provides the geometric substrate: lat/lon points, great-circle
// distance, bounding boxes, and pre-defined spatial regions arranged in an
// aggregation hierarchy.
//
// The paper aggregates the bottom-up baseline over "pre-defined regions such
// as zipcode areas" (Section II-A, IV). This package plays the zipcode role
// with a regular grid partition carrying a cell → district → city hierarchy;
// red-zone guided clustering (Property 5) only requires that regions are
// fixed in advance and that sensors map to regions, which the grid satisfies.
package geo

import (
	"fmt"
	"math"
)

// Point is a geographic coordinate in degrees.
type Point struct {
	Lat, Lon float64
}

// EarthRadiusMiles is the mean Earth radius, used by the haversine distance.
const EarthRadiusMiles = 3958.7613

// DistanceMiles returns the great-circle (haversine) distance between two
// points in statute miles, the unit the paper uses for the distance
// threshold δd.
func DistanceMiles(a, b Point) float64 {
	const degToRad = math.Pi / 180
	lat1 := a.Lat * degToRad
	lat2 := b.Lat * degToRad
	dLat := (b.Lat - a.Lat) * degToRad
	dLon := (b.Lon - a.Lon) * degToRad
	s1 := math.Sin(dLat / 2)
	s2 := math.Sin(dLon / 2)
	h := s1*s1 + math.Cos(lat1)*math.Cos(lat2)*s2*s2
	return 2 * EarthRadiusMiles * math.Asin(math.Min(1, math.Sqrt(h)))
}

// BBox is an axis-aligned bounding box in degrees. Min is the south-west
// corner, Max the north-east corner. Boxes are closed on the min edge and
// open on the max edge so that grid cells tile the plane without overlap.
type BBox struct {
	Min, Max Point
}

// Contains reports whether p lies inside the box ([min, max) on both axes).
func (b BBox) Contains(p Point) bool {
	return p.Lat >= b.Min.Lat && p.Lat < b.Max.Lat &&
		p.Lon >= b.Min.Lon && p.Lon < b.Max.Lon
}

// Intersects reports whether two boxes overlap.
func (b BBox) Intersects(o BBox) bool {
	return b.Min.Lat < o.Max.Lat && o.Min.Lat < b.Max.Lat &&
		b.Min.Lon < o.Max.Lon && o.Min.Lon < b.Max.Lon
}

// Union returns the smallest box covering both.
func (b BBox) Union(o BBox) BBox {
	return BBox{
		Min: Point{Lat: math.Min(b.Min.Lat, o.Min.Lat), Lon: math.Min(b.Min.Lon, o.Min.Lon)},
		Max: Point{Lat: math.Max(b.Max.Lat, o.Max.Lat), Lon: math.Max(b.Max.Lon, o.Max.Lon)},
	}
}

// Center returns the box midpoint.
func (b BBox) Center() Point {
	return Point{Lat: (b.Min.Lat + b.Max.Lat) / 2, Lon: (b.Min.Lon + b.Max.Lon) / 2}
}

// Expand grows the box by the given margins in degrees on every side.
func (b BBox) Expand(dLat, dLon float64) BBox {
	return BBox{
		Min: Point{Lat: b.Min.Lat - dLat, Lon: b.Min.Lon - dLon},
		Max: Point{Lat: b.Max.Lat + dLat, Lon: b.Max.Lon + dLon},
	}
}

// Area returns the box area in square degrees (a monotone proxy sufficient
// for index heuristics; not a surface area).
func (b BBox) Area() float64 {
	if b.Max.Lat <= b.Min.Lat || b.Max.Lon <= b.Min.Lon {
		return 0
	}
	return (b.Max.Lat - b.Min.Lat) * (b.Max.Lon - b.Min.Lon)
}

// MilesPerDegreeLat is the approximate north-south extent of one degree of
// latitude.
const MilesPerDegreeLat = 69.0

// MilesPerDegreeLon returns the east-west extent of one degree of longitude
// at the given latitude.
func MilesPerDegreeLon(lat float64) float64 {
	return MilesPerDegreeLat * math.Cos(lat*math.Pi/180)
}

// RegionID identifies a pre-defined region (grid cell). Region IDs are dense
// integers assigned row-major by the grid.
type RegionID int32

// NoRegion marks points outside the grid.
const NoRegion RegionID = -1

// Region is one pre-defined spatial area.
type Region struct {
	ID       RegionID
	Box      BBox
	District int // index of the parent district in the hierarchy
}

// Grid is a regular partition of a bounding box into Rows × Cols cells, each
// a Region, grouped into districts of DistrictRows × DistrictCols cells. It
// stands in for the paper's zipcode-area hierarchy.
type Grid struct {
	Box        BBox
	Rows, Cols int
	// DistrictRows/Cols give the coarse grouping; the city level is the
	// whole grid.
	DistrictRows, DistrictCols int

	regions   []Region
	cellLat   float64
	cellLon   float64
	districts int
}

// NewGrid partitions box into rows × cols regions grouped into districts of
// size dRows × dCols cells. It panics on non-positive dimensions, which are
// programmer errors.
func NewGrid(box BBox, rows, cols, dRows, dCols int) *Grid {
	if rows <= 0 || cols <= 0 || dRows <= 0 || dCols <= 0 {
		panic(fmt.Sprintf("geo: invalid grid dimensions %dx%d (district %dx%d)", rows, cols, dRows, dCols))
	}
	g := &Grid{
		Box: box, Rows: rows, Cols: cols,
		DistrictRows: dRows, DistrictCols: dCols,
		cellLat: (box.Max.Lat - box.Min.Lat) / float64(rows),
		cellLon: (box.Max.Lon - box.Min.Lon) / float64(cols),
	}
	dColsTotal := (cols + dCols - 1) / dCols
	dRowsTotal := (rows + dRows - 1) / dRows
	g.districts = dColsTotal * dRowsTotal
	g.regions = make([]Region, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			id := RegionID(r*cols + c)
			g.regions[id] = Region{
				ID: id,
				Box: BBox{
					Min: Point{Lat: box.Min.Lat + float64(r)*g.cellLat, Lon: box.Min.Lon + float64(c)*g.cellLon},
					Max: Point{Lat: box.Min.Lat + float64(r+1)*g.cellLat, Lon: box.Min.Lon + float64(c+1)*g.cellLon},
				},
				District: (r/dRows)*dColsTotal + c/dCols,
			}
		}
	}
	return g
}

// NumRegions returns the number of grid cells.
func (g *Grid) NumRegions() int { return len(g.regions) }

// NumDistricts returns the number of coarse districts.
func (g *Grid) NumDistricts() int { return g.districts }

// Region returns the region with the given id. It panics on out-of-range
// ids, which indicate corrupted topology data.
func (g *Grid) Region(id RegionID) Region {
	return g.regions[id]
}

// Regions returns all regions in id order. Callers must not mutate the slice.
func (g *Grid) Regions() []Region { return g.regions }

// Locate returns the region containing p, or NoRegion when p falls outside
// the grid.
func (g *Grid) Locate(p Point) RegionID {
	if !g.Box.Contains(p) {
		return NoRegion
	}
	r := int((p.Lat - g.Box.Min.Lat) / g.cellLat)
	c := int((p.Lon - g.Box.Min.Lon) / g.cellLon)
	// Guard against floating-point landing exactly on the max edge.
	if r >= g.Rows {
		r = g.Rows - 1
	}
	if c >= g.Cols {
		c = g.Cols - 1
	}
	return RegionID(r*g.Cols + c)
}

// RegionsIntersecting returns the ids of all cells overlapping box, in
// ascending order.
func (g *Grid) RegionsIntersecting(box BBox) []RegionID {
	if !g.Box.Intersects(box) {
		return nil
	}
	rLo := clampIdx(int(math.Floor((box.Min.Lat-g.Box.Min.Lat)/g.cellLat)), 0, g.Rows-1)
	rHi := clampIdx(int(math.Floor((box.Max.Lat-g.Box.Min.Lat)/g.cellLat)), 0, g.Rows-1)
	cLo := clampIdx(int(math.Floor((box.Min.Lon-g.Box.Min.Lon)/g.cellLon)), 0, g.Cols-1)
	cHi := clampIdx(int(math.Floor((box.Max.Lon-g.Box.Min.Lon)/g.cellLon)), 0, g.Cols-1)
	out := make([]RegionID, 0, (rHi-rLo+1)*(cHi-cLo+1))
	for r := rLo; r <= rHi; r++ {
		for c := cLo; c <= cHi; c++ {
			id := RegionID(r*g.Cols + c)
			if g.regions[id].Box.Intersects(box) {
				out = append(out, id)
			}
		}
	}
	return out
}

// DistrictRegions returns the cells belonging to district d.
func (g *Grid) DistrictRegions(d int) []RegionID {
	var out []RegionID
	for _, reg := range g.regions {
		if reg.District == d {
			out = append(out, reg.ID)
		}
	}
	return out
}

func clampIdx(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
