package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDistanceMilesKnown(t *testing.T) {
	// Downtown LA to Santa Monica pier is roughly 14 miles.
	la := Point{Lat: 34.0522, Lon: -118.2437}
	sm := Point{Lat: 34.0100, Lon: -118.4960}
	d := DistanceMiles(la, sm)
	if d < 13 || d > 16 {
		t.Errorf("LA->SM distance = %.2f, want ~14", d)
	}
}

func TestDistanceMilesProperties(t *testing.T) {
	f := func(aLat, aLon, bLat, bLon int16) bool {
		a := Point{Lat: float64(aLat%90) / 2, Lon: float64(aLon % 180)}
		b := Point{Lat: float64(bLat%90) / 2, Lon: float64(bLon % 180)}
		dab := DistanceMiles(a, b)
		dba := DistanceMiles(b, a)
		if math.Abs(dab-dba) > 1e-9 {
			return false // symmetric
		}
		if dab < 0 {
			return false // non-negative
		}
		return DistanceMiles(a, a) < 1e-9 // identity
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDistanceOneDegreeLat(t *testing.T) {
	a := Point{Lat: 34, Lon: -118}
	b := Point{Lat: 35, Lon: -118}
	d := DistanceMiles(a, b)
	if math.Abs(d-MilesPerDegreeLat) > 0.5 {
		t.Errorf("1 degree latitude = %.2f miles, want ~%v", d, MilesPerDegreeLat)
	}
}

func TestBBoxContains(t *testing.T) {
	b := BBox{Min: Point{Lat: 0, Lon: 0}, Max: Point{Lat: 1, Lon: 1}}
	if !b.Contains(Point{Lat: 0, Lon: 0}) {
		t.Error("min corner should be inside (closed)")
	}
	if b.Contains(Point{Lat: 1, Lon: 1}) {
		t.Error("max corner should be outside (open)")
	}
	if !b.Contains(Point{Lat: 0.5, Lon: 0.5}) {
		t.Error("center should be inside")
	}
}

func TestBBoxIntersects(t *testing.T) {
	a := BBox{Min: Point{0, 0}, Max: Point{2, 2}}
	b := BBox{Min: Point{1, 1}, Max: Point{3, 3}}
	c := BBox{Min: Point{5, 5}, Max: Point{6, 6}}
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("overlapping boxes should intersect")
	}
	if a.Intersects(c) {
		t.Error("disjoint boxes should not intersect")
	}
	// Touching edges (shared boundary) do not intersect under open-max.
	d := BBox{Min: Point{2, 0}, Max: Point{3, 2}}
	if a.Intersects(d) {
		t.Error("edge-touching boxes should not intersect")
	}
}

func TestBBoxUnionArea(t *testing.T) {
	a := BBox{Min: Point{0, 0}, Max: Point{1, 1}}
	b := BBox{Min: Point{2, 2}, Max: Point{3, 4}}
	u := a.Union(b)
	if u.Min != (Point{0, 0}) || u.Max != (Point{3, 4}) {
		t.Errorf("Union = %+v", u)
	}
	if got := b.Area(); math.Abs(got-2) > 1e-12 {
		t.Errorf("Area = %v", got)
	}
	degenerate := BBox{Min: Point{1, 1}, Max: Point{1, 5}}
	if degenerate.Area() != 0 {
		t.Error("degenerate box should have zero area")
	}
}

func TestBBoxExpandCenter(t *testing.T) {
	b := BBox{Min: Point{1, 1}, Max: Point{3, 5}}
	if c := b.Center(); c != (Point{2, 3}) {
		t.Errorf("Center = %v", c)
	}
	e := b.Expand(1, 2)
	if e.Min != (Point{0, -1}) || e.Max != (Point{4, 7}) {
		t.Errorf("Expand = %+v", e)
	}
}

func laBox() BBox {
	return BBox{Min: Point{Lat: 33.7, Lon: -118.7}, Max: Point{Lat: 34.4, Lon: -117.7}}
}

func TestGridLocate(t *testing.T) {
	g := NewGrid(laBox(), 10, 10, 5, 5)
	if g.NumRegions() != 100 {
		t.Fatalf("NumRegions = %d", g.NumRegions())
	}
	if g.NumDistricts() != 4 {
		t.Fatalf("NumDistricts = %d", g.NumDistricts())
	}
	// Every region's center locates back to that region.
	for _, r := range g.Regions() {
		if got := g.Locate(r.Box.Center()); got != r.ID {
			t.Fatalf("Locate(center of %d) = %d", r.ID, got)
		}
	}
	if g.Locate(Point{Lat: 0, Lon: 0}) != NoRegion {
		t.Error("outside point should map to NoRegion")
	}
}

func TestGridLocateEdges(t *testing.T) {
	g := NewGrid(laBox(), 4, 4, 2, 2)
	// South-west corner belongs to region 0.
	if got := g.Locate(g.Box.Min); got != 0 {
		t.Errorf("Locate(min) = %d", got)
	}
	// North-east corner is outside (open max edge).
	if got := g.Locate(g.Box.Max); got != NoRegion {
		t.Errorf("Locate(max) = %d", got)
	}
}

func TestGridDistricts(t *testing.T) {
	g := NewGrid(laBox(), 4, 4, 2, 2)
	counts := make(map[int]int)
	for _, r := range g.Regions() {
		counts[r.District]++
	}
	if len(counts) != 4 {
		t.Fatalf("districts = %d, want 4", len(counts))
	}
	for d, n := range counts {
		if n != 4 {
			t.Errorf("district %d has %d cells, want 4", d, n)
		}
	}
	if got := g.DistrictRegions(0); len(got) != 4 {
		t.Errorf("DistrictRegions(0) = %v", got)
	}
}

func TestGridRegionsIntersecting(t *testing.T) {
	g := NewGrid(BBox{Min: Point{0, 0}, Max: Point{10, 10}}, 10, 10, 5, 5)
	got := g.RegionsIntersecting(BBox{Min: Point{1.5, 1.5}, Max: Point{3.5, 2.5}})
	// Rows 1..3, cols 1..2 -> 6 cells.
	if len(got) != 6 {
		t.Errorf("intersecting = %v (len %d), want 6 cells", got, len(got))
	}
	if got := g.RegionsIntersecting(BBox{Min: Point{50, 50}, Max: Point{60, 60}}); got != nil {
		t.Errorf("disjoint query should return nil, got %v", got)
	}
	// Whole-grid query returns every cell.
	if got := g.RegionsIntersecting(g.Box); len(got) != 100 {
		t.Errorf("whole-grid query = %d cells", len(got))
	}
}

// Property: Locate is consistent with the containing region's box, and
// RegionsIntersecting includes the located cell of any interior point.
func TestGridLocateProperty(t *testing.T) {
	g := NewGrid(BBox{Min: Point{0, 0}, Max: Point{8, 8}}, 8, 8, 4, 4)
	f := func(latQ, lonQ uint16) bool {
		p := Point{Lat: float64(latQ) / 8192, Lon: float64(lonQ) / 8192}
		p.Lat = math.Mod(p.Lat, 8)
		p.Lon = math.Mod(p.Lon, 8)
		id := g.Locate(p)
		if id == NoRegion {
			return !g.Box.Contains(p)
		}
		if !g.Region(id).Box.Contains(p) {
			return false
		}
		cells := g.RegionsIntersecting(BBox{Min: p, Max: Point{p.Lat + 0.001, p.Lon + 0.001}})
		for _, c := range cells {
			if c == id {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNewGridPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on zero rows")
		}
	}()
	NewGrid(laBox(), 0, 4, 1, 1)
}

func TestMilesPerDegreeLon(t *testing.T) {
	if got := MilesPerDegreeLon(0); math.Abs(got-MilesPerDegreeLat) > 1e-9 {
		t.Errorf("at equator = %v", got)
	}
	if got := MilesPerDegreeLon(60); math.Abs(got-MilesPerDegreeLat/2) > 0.01 {
		t.Errorf("at 60N = %v, want half", got)
	}
}
