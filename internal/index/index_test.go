package index

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/geo"
)

func randomLocs(n int, seed int64) []geo.Point {
	rng := rand.New(rand.NewSource(seed))
	locs := make([]geo.Point, n)
	for i := range locs {
		locs[i] = geo.Point{
			Lat: 33.7 + rng.Float64()*0.7,
			Lon: -118.7 + rng.Float64(),
		}
	}
	return locs
}

func bruteNeighbors(locs []geo.Point, s cps.SensorID, radius float64) []cps.SensorID {
	var out []cps.SensorID
	for i, p := range locs {
		if cps.SensorID(i) == s {
			continue
		}
		if geo.DistanceMiles(locs[s], p) < radius {
			out = append(out, cps.SensorID(i))
		}
	}
	return out
}

func sortIDs(ids []cps.SensorID) []cps.SensorID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func TestNeighborIndexMatchesBruteForce(t *testing.T) {
	locs := randomLocs(300, 7)
	for _, radius := range []float64{0.5, 1.5, 6, 24} {
		idx := NewNeighborIndex(locs, radius)
		for s := cps.SensorID(0); s < 50; s++ {
			got := sortIDs(idx.Neighbors(s, nil))
			want := sortIDs(bruteNeighbors(locs, s, radius))
			if len(got) != len(want) {
				t.Fatalf("radius %.1f sensor %d: got %d neighbors, want %d", radius, s, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("radius %.1f sensor %d: neighbor %d = %d, want %d", radius, s, i, got[i], want[i])
				}
			}
		}
	}
}

func TestNeighborIndexEmptyAndSingle(t *testing.T) {
	idx := NewNeighborIndex(nil, 1)
	if idx.Radius() != 1 {
		t.Error("radius lost")
	}
	single := NewNeighborIndex([]geo.Point{{Lat: 34, Lon: -118}}, 1)
	if got := single.Neighbors(0, nil); len(got) != 0 {
		t.Errorf("single sensor has %d neighbors", len(got))
	}
}

func TestNeighborIndexPanicsOnBadRadius(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewNeighborIndex(nil, 0)
}

func TestNeighborLists(t *testing.T) {
	locs := randomLocs(100, 3)
	idx := NewNeighborIndex(locs, 3)
	lists := idx.NeighborLists()
	if len(lists) != 100 {
		t.Fatalf("lists = %d", len(lists))
	}
	// Symmetry: strict inequality is symmetric.
	for s, nb := range lists {
		for _, o := range nb {
			found := false
			for _, back := range lists[o] {
				if back == cps.SensorID(s) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("neighbor relation not symmetric: %d->%d", s, o)
			}
		}
	}
}

func TestWindowIndex(t *testing.T) {
	rs := cps.NewRecordSet([]cps.Record{
		{Sensor: 1, Window: 5, Severity: 1},
		{Sensor: 3, Window: 5, Severity: 1},
		{Sensor: 2, Window: 7, Severity: 1},
	})
	idx := NewWindowIndex(rs.Records())
	if got := idx.At(5); len(got) != 2 {
		t.Errorf("At(5) = %v", got)
	}
	if got := idx.At(6); got != nil {
		t.Errorf("At(6) = %v, want nil", got)
	}
	if got := idx.IndexOf(5, 3); got != 1 {
		t.Errorf("IndexOf(5,3) = %d", got)
	}
	if got := idx.IndexOf(5, 2); got != -1 {
		t.Errorf("IndexOf missing sensor = %d", got)
	}
	if got := idx.IndexOf(9, 1); got != -1 {
		t.Errorf("IndexOf missing window = %d", got)
	}
}

func TestWindowIndexProperty(t *testing.T) {
	f := func(seeds []uint16) bool {
		recs := make([]cps.Record, 0, len(seeds))
		for _, x := range seeds {
			recs = append(recs, cps.Record{
				Sensor:   cps.SensorID(x % 8),
				Window:   cps.Window(x / 8 % 32),
				Severity: 1,
			})
		}
		rs := cps.NewRecordSet(recs)
		idx := NewWindowIndex(rs.Records())
		// Every record is findable at its own position.
		for i, r := range rs.Records() {
			if idx.IndexOf(r.Window, r.Sensor) != i {
				return false
			}
		}
		// At() partitions the slice.
		total := 0
		for w := cps.Window(0); w < 32; w++ {
			total += len(idx.At(w))
		}
		return total == rs.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRTreeSearchMatchesBruteForce(t *testing.T) {
	locs := randomLocs(500, 11)
	tree := NewRTree(locs)
	if tree.Len() != 500 {
		t.Fatalf("Len = %d", tree.Len())
	}
	rng := rand.New(rand.NewSource(5))
	for q := 0; q < 40; q++ {
		minP := geo.Point{Lat: 33.7 + rng.Float64()*0.6, Lon: -118.7 + rng.Float64()*0.8}
		box := geo.BBox{Min: minP, Max: geo.Point{Lat: minP.Lat + rng.Float64()*0.3, Lon: minP.Lon + rng.Float64()*0.4}}
		got := sortIDs(tree.Search(box, nil))
		var want []cps.SensorID
		for i, p := range locs {
			if box.Contains(p) {
				want = append(want, cps.SensorID(i))
			}
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: got %d, want %d", q, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %d: result %d mismatch", q, i)
			}
		}
	}
}

func TestRTreeAggregateMatchesScan(t *testing.T) {
	locs := randomLocs(400, 13)
	tree := NewRTree(locs)
	weights := make([]float64, len(locs))
	rng := rand.New(rand.NewSource(17))
	for i := range weights {
		weights[i] = rng.Float64() * 10
	}
	weight := func(id cps.SensorID) float64 { return weights[id] }
	boxes := []geo.BBox{
		{Min: geo.Point{Lat: 33.7, Lon: -118.7}, Max: geo.Point{Lat: 34.4, Lon: -117.7}}, // everything
		{Min: geo.Point{Lat: 33.9, Lon: -118.4}, Max: geo.Point{Lat: 34.1, Lon: -118.1}},
		{Min: geo.Point{Lat: 0, Lon: 0}, Max: geo.Point{Lat: 1, Lon: 1}}, // nothing
	}
	for _, box := range boxes {
		got := tree.Aggregate(box, weight)
		var want float64
		for i, p := range locs {
			if box.Contains(p) {
				want += weights[i]
			}
		}
		if diff := got - want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("Aggregate(%v) = %v, want %v", box, got, want)
		}
	}
}

func TestRTreeWholeBoxCoversAll(t *testing.T) {
	locs := randomLocs(257, 23) // non-multiple of fanout
	tree := NewRTree(locs)
	box := geo.BBox{Min: geo.Point{Lat: -90, Lon: -180}, Max: geo.Point{Lat: 90, Lon: 180}}
	got := tree.Search(box, nil)
	if len(got) != len(locs) {
		t.Errorf("whole-box search = %d, want %d", len(got), len(locs))
	}
	seen := make(map[cps.SensorID]bool)
	for _, id := range got {
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
	}
	if tree.Nodes() == 0 {
		t.Error("tree should report nodes")
	}
}

func TestRTreeEmpty(t *testing.T) {
	tree := NewRTree(nil)
	if got := tree.Search(geo.BBox{Max: geo.Point{Lat: 1, Lon: 1}}, nil); got != nil {
		t.Errorf("empty tree search = %v", got)
	}
	if got := tree.Aggregate(geo.BBox{}, func(cps.SensorID) float64 { return 1 }); got != 0 {
		t.Errorf("empty tree aggregate = %v", got)
	}
}
