package index

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/geo"
)

func aggFixture(t testing.TB, sensors, records, days int, seed int64) (*AggRTree, []geo.Point, []cps.Record) {
	t.Helper()
	spec := cps.DefaultSpec()
	locs := randomLocs(sensors, seed)
	rng := rand.New(rand.NewSource(seed + 1))
	recs := make([]cps.Record, records)
	for i := range recs {
		recs[i] = cps.Record{
			Sensor:   cps.SensorID(rng.Intn(sensors)),
			Window:   cps.Window(rng.Intn(days * spec.PerDay())),
			Severity: cps.Severity(rng.Intn(5)) + 1,
		}
	}
	canonical := cps.NewRecordSet(recs).Records()
	return NewAggRTree(locs, canonical, spec, days), locs, canonical
}

// bruteAgg is the oracle: scan every record.
func bruteAgg(locs []geo.Point, recs []cps.Record, box geo.BBox, fromDay, toDay int) float64 {
	spec := cps.DefaultSpec()
	perDay := cps.Window(spec.PerDay())
	var sum float64
	for _, r := range recs {
		d := int(r.Window / perDay)
		if d < fromDay || d >= toDay {
			continue
		}
		if box.Contains(locs[r.Sensor]) {
			sum += float64(r.Severity)
		}
	}
	return sum
}

func TestAggRTreeMatchesBruteForce(t *testing.T) {
	tree, locs, recs := aggFixture(t, 300, 5000, 6, 31)
	rng := rand.New(rand.NewSource(3))
	for q := 0; q < 30; q++ {
		minP := geo.Point{Lat: 33.7 + rng.Float64()*0.5, Lon: -118.7 + rng.Float64()*0.7}
		box := geo.BBox{Min: minP, Max: geo.Point{Lat: minP.Lat + rng.Float64()*0.4, Lon: minP.Lon + rng.Float64()*0.5}}
		from := rng.Intn(6)
		to := from + 1 + rng.Intn(6-from)
		got := tree.Aggregate(box, from, to)
		want := bruteAgg(locs, recs, box, from, to)
		if diff := got - want; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("query %d: got %v, want %v", q, got, want)
		}
	}
}

func TestAggRTreeWholeBoxWholeRange(t *testing.T) {
	tree, _, recs := aggFixture(t, 200, 3000, 4, 7)
	var total float64
	for _, r := range recs {
		total += float64(r.Severity)
	}
	box := geo.BBox{Min: geo.Point{Lat: -90, Lon: -180}, Max: geo.Point{Lat: 90, Lon: 180}}
	got := tree.Aggregate(box, 0, 4)
	if diff := got - total; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("whole aggregate = %v, want %v", got, total)
	}
}

func TestAggRTreeDayClamping(t *testing.T) {
	tree, _, _ := aggFixture(t, 100, 500, 3, 9)
	box := geo.BBox{Min: geo.Point{Lat: -90, Lon: -180}, Max: geo.Point{Lat: 90, Lon: 180}}
	if got := tree.Aggregate(box, -5, 99); got != tree.Aggregate(box, 0, 3) {
		t.Error("out-of-range days should clamp")
	}
	if got := tree.Aggregate(box, 2, 2); got != 0 {
		t.Errorf("empty range = %v", got)
	}
	if got := tree.Aggregate(box, 3, 1); got != 0 {
		t.Errorf("inverted range = %v", got)
	}
}

func TestAggRTreeEmpty(t *testing.T) {
	tree := NewAggRTree(nil, nil, cps.DefaultSpec(), 2)
	if got := tree.Aggregate(geo.BBox{Max: geo.Point{Lat: 1, Lon: 1}}, 0, 2); got != 0 {
		t.Errorf("empty tree aggregate = %v", got)
	}
}

// Property: day ranges are additive — F([a,b)) + F([b,c)) = F([a,c)).
func TestAggRTreeAdditiveProperty(t *testing.T) {
	tree, _, _ := aggFixture(t, 150, 2000, 8, 17)
	box := geo.BBox{Min: geo.Point{Lat: 33.8, Lon: -118.5}, Max: geo.Point{Lat: 34.3, Lon: -117.9}}
	f := func(aRaw, bRaw, cRaw uint8) bool {
		a, b, c := int(aRaw%9), int(bRaw%9), int(cRaw%9)
		if a > b {
			a, b = b, a
		}
		if b > c {
			b, c = c, b
		}
		if a > b {
			a, b = b, a
		}
		left := tree.Aggregate(box, a, b)
		right := tree.Aggregate(box, b, c)
		whole := tree.Aggregate(box, a, c)
		d := left + right - whole
		return d < 1e-6 && d > -1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
