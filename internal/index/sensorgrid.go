// Package index provides the spatial and temporal access paths that turn
// Algorithm 1's O(N + n²) worst case into the indexed O(N + n·log n) path of
// Proposition 1: a uniform grid over sensor locations for δd neighbor
// queries, a window index over canonical record slices for δt adjacency, and
// an aggregate R-tree for rectangular range aggregation.
package index

import (
	"math"
	"sort"

	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/geo"
)

// NeighborIndex answers "which sensors lie within d miles of sensor s"
// queries using a uniform spatial hash whose cell edge is the query radius.
type NeighborIndex struct {
	radiusMiles float64
	cellLat     float64
	cellLon     float64
	origin      geo.Point
	cells       map[cellKey][]cps.SensorID
	locs        []geo.Point // indexed by SensorID
}

type cellKey struct{ r, c int32 }

// NewNeighborIndex indexes the given sensor locations (indexed by SensorID)
// for neighbor queries at exactly radiusMiles.
func NewNeighborIndex(locs []geo.Point, radiusMiles float64) *NeighborIndex {
	if radiusMiles <= 0 {
		panic("index: radius must be positive")
	}
	idx := &NeighborIndex{
		radiusMiles: radiusMiles,
		cellLat:     radiusMiles / geo.MilesPerDegreeLat,
		cells:       make(map[cellKey][]cps.SensorID),
		locs:        locs,
	}
	if len(locs) == 0 {
		idx.cellLon = idx.cellLat
		return idx
	}
	idx.origin = locs[0]
	// Longitude degrees shrink with latitude; size cells at the deployment
	// latitude so a 3×3 block always covers the radius.
	idx.cellLon = radiusMiles / geo.MilesPerDegreeLon(locs[0].Lat)
	for id, p := range locs {
		k := idx.key(p)
		idx.cells[k] = append(idx.cells[k], cps.SensorID(id))
	}
	return idx
}

func (idx *NeighborIndex) key(p geo.Point) cellKey {
	return cellKey{
		r: int32(floorDiv(p.Lat-idx.origin.Lat, idx.cellLat)),
		c: int32(floorDiv(p.Lon-idx.origin.Lon, idx.cellLon)),
	}
}

func floorDiv(x, d float64) float64 {
	return math.Floor(x / d)
}

// Radius returns the query radius the index was built for.
func (idx *NeighborIndex) Radius() float64 { return idx.radiusMiles }

// Neighbors appends to dst every sensor strictly within the radius of s,
// excluding s itself, and returns the extended slice. Results are unordered.
func (idx *NeighborIndex) Neighbors(s cps.SensorID, dst []cps.SensorID) []cps.SensorID {
	p := idx.locs[s]
	k := idx.key(p)
	for dr := int32(-1); dr <= 1; dr++ {
		for dc := int32(-1); dc <= 1; dc++ {
			for _, o := range idx.cells[cellKey{k.r + dr, k.c + dc}] {
				if o == s {
					continue
				}
				if geo.DistanceMiles(p, idx.locs[o]) < idx.radiusMiles {
					dst = append(dst, o)
				}
			}
		}
	}
	return dst
}

// NeighborLists materializes the neighbor list of every sensor, ascending
// within each list. Event extraction over many days reuses the lists.
func (idx *NeighborIndex) NeighborLists() [][]cps.SensorID {
	out := make([][]cps.SensorID, len(idx.locs))
	for id := range idx.locs {
		nb := idx.Neighbors(cps.SensorID(id), nil)
		sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
		out[id] = nb
	}
	return out
}

// WindowIndex locates the subslice of a canonical record slice belonging to
// each window in O(1) after an O(n) build — the temporal access path of the
// extraction sweep.
type WindowIndex struct {
	recs  []cps.Record
	first map[cps.Window]int // window -> first index in recs
	spans map[cps.Window]int // window -> record count
}

// NewWindowIndex indexes recs, which must be in canonical (window, sensor)
// order (e.g. RecordSet.Records()).
func NewWindowIndex(recs []cps.Record) *WindowIndex {
	idx := &WindowIndex{
		recs:  recs,
		first: make(map[cps.Window]int),
		spans: make(map[cps.Window]int),
	}
	for i := 0; i < len(recs); {
		w := recs[i].Window
		j := i
		for j < len(recs) && recs[j].Window == w {
			j++
		}
		idx.first[w] = i
		idx.spans[w] = j - i
		i = j
	}
	return idx
}

// At returns the records of window w (possibly empty), aliasing the indexed
// slice.
func (idx *WindowIndex) At(w cps.Window) []cps.Record {
	i, ok := idx.first[w]
	if !ok {
		return nil
	}
	return idx.recs[i : i+idx.spans[w]]
}

// IndexOf returns the position in the canonical slice of the record with the
// given key, or -1.
func (idx *WindowIndex) IndexOf(w cps.Window, s cps.SensorID) int {
	i, ok := idx.first[w]
	if !ok {
		return -1
	}
	span := idx.recs[i : i+idx.spans[w]]
	k := sort.Search(len(span), func(j int) bool { return span[j].Sensor >= s })
	if k < len(span) && span[k].Sensor == s {
		return i + k
	}
	return -1
}
