package index

import (
	"math"
	"sort"

	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/geo"
)

// RTree is a static, STR-bulk-loaded R-tree over sensor locations with
// per-node subtree sensor counts. It supports rectangular range reporting
// and weighted range aggregation with full-containment shortcuts — the
// aggregation-R-tree access path of Papadias et al. that the paper's related
// work discusses, used here as an ablation baseline for computing the
// bottom-up total severity F(W, T).
type RTree struct {
	root  *rtNode
	locs  []geo.Point
	nodes int
}

type rtNode struct {
	box      geo.BBox
	children []*rtNode
	// sensors is set on leaves only.
	sensors []cps.SensorID
	// subtree lists every sensor below the node, enabling O(k) full-
	// containment aggregation without descending.
	subtree []cps.SensorID
}

// rtreeFanout is the maximum number of entries per node. Sixteen keeps trees
// shallow at the deployment scales used here.
const rtreeFanout = 16

// NewRTree bulk-loads an R-tree over locs (indexed by SensorID) using the
// Sort-Tile-Recursive algorithm.
func NewRTree(locs []geo.Point) *RTree {
	t := &RTree{locs: locs}
	if len(locs) == 0 {
		return t
	}
	ids := make([]cps.SensorID, len(locs))
	for i := range ids {
		ids[i] = cps.SensorID(i)
	}
	leaves := t.packLeaves(ids)
	t.root = t.buildUp(leaves)
	return t
}

// packLeaves tiles the sensors into leaf nodes of up to rtreeFanout entries.
func (t *RTree) packLeaves(ids []cps.SensorID) []*rtNode {
	n := len(ids)
	leafCount := (n + rtreeFanout - 1) / rtreeFanout
	slices := int(math.Ceil(math.Sqrt(float64(leafCount))))
	sorted := make([]cps.SensorID, n)
	copy(sorted, ids)
	sort.Slice(sorted, func(i, j int) bool { return t.locs[sorted[i]].Lon < t.locs[sorted[j]].Lon })

	perSlice := (n + slices - 1) / slices
	var leaves []*rtNode
	for s := 0; s < n; s += perSlice {
		e := s + perSlice
		if e > n {
			e = n
		}
		slice := sorted[s:e]
		sort.Slice(slice, func(i, j int) bool { return t.locs[slice[i]].Lat < t.locs[slice[j]].Lat })
		for i := 0; i < len(slice); i += rtreeFanout {
			j := i + rtreeFanout
			if j > len(slice) {
				j = len(slice)
			}
			leaf := &rtNode{sensors: append([]cps.SensorID(nil), slice[i:j]...)}
			leaf.subtree = leaf.sensors
			leaf.box = t.boxOf(leaf.sensors)
			leaves = append(leaves, leaf)
			t.nodes++
		}
	}
	return leaves
}

// buildUp stacks internal levels until a single root remains.
func (t *RTree) buildUp(level []*rtNode) *rtNode {
	for len(level) > 1 {
		var next []*rtNode
		for i := 0; i < len(level); i += rtreeFanout {
			j := i + rtreeFanout
			if j > len(level) {
				j = len(level)
			}
			n := &rtNode{children: append([]*rtNode(nil), level[i:j]...)}
			n.box = n.children[0].box
			for _, c := range n.children[1:] {
				n.box = n.box.Union(c.box)
			}
			for _, c := range n.children {
				n.subtree = append(n.subtree, c.subtree...)
			}
			next = append(next, n)
			t.nodes++
		}
		level = next
	}
	return level[0]
}

func (t *RTree) boxOf(ids []cps.SensorID) geo.BBox {
	b := geo.BBox{Min: t.locs[ids[0]], Max: t.locs[ids[0]]}
	for _, id := range ids[1:] {
		p := t.locs[id]
		if p.Lat < b.Min.Lat {
			b.Min.Lat = p.Lat
		}
		if p.Lon < b.Min.Lon {
			b.Min.Lon = p.Lon
		}
		if p.Lat > b.Max.Lat {
			b.Max.Lat = p.Lat
		}
		if p.Lon > b.Max.Lon {
			b.Max.Lon = p.Lon
		}
	}
	// Nudge the max edge open so Contains covers the boundary sensors.
	const eps = 1e-9
	b.Max.Lat += eps
	b.Max.Lon += eps
	return b
}

// Len returns the number of indexed sensors.
func (t *RTree) Len() int { return len(t.locs) }

// Nodes returns the total node count (a size diagnostic).
func (t *RTree) Nodes() int { return t.nodes }

// Search appends to dst the ids of all sensors inside box and returns the
// extended slice. Results are unordered.
func (t *RTree) Search(box geo.BBox, dst []cps.SensorID) []cps.SensorID {
	if t.root == nil {
		return dst
	}
	return t.search(t.root, box, dst)
}

func (t *RTree) search(n *rtNode, box geo.BBox, dst []cps.SensorID) []cps.SensorID {
	if !n.box.Intersects(box) {
		return dst
	}
	if contains(box, n.box) {
		return append(dst, n.subtree...)
	}
	if n.children == nil {
		for _, id := range n.sensors {
			if box.Contains(t.locs[id]) {
				dst = append(dst, id)
			}
		}
		return dst
	}
	for _, c := range n.children {
		dst = t.search(c, box, dst)
	}
	return dst
}

// Aggregate sums weight(id) over every sensor inside box, short-circuiting
// fully contained subtrees through their materialized id lists.
func (t *RTree) Aggregate(box geo.BBox, weight func(cps.SensorID) float64) float64 {
	if t.root == nil {
		return 0
	}
	return t.aggregate(t.root, box, weight)
}

func (t *RTree) aggregate(n *rtNode, box geo.BBox, weight func(cps.SensorID) float64) float64 {
	if !n.box.Intersects(box) {
		return 0
	}
	if contains(box, n.box) {
		var sum float64
		for _, id := range n.subtree {
			sum += weight(id)
		}
		return sum
	}
	if n.children == nil {
		var sum float64
		for _, id := range n.sensors {
			if box.Contains(t.locs[id]) {
				sum += weight(id)
			}
		}
		return sum
	}
	var sum float64
	for _, c := range n.children {
		sum += t.aggregate(c, box, weight)
	}
	return sum
}

// contains reports whether outer fully covers inner.
func contains(outer, inner geo.BBox) bool {
	return inner.Min.Lat >= outer.Min.Lat && inner.Max.Lat <= outer.Max.Lat &&
		inner.Min.Lon >= outer.Min.Lon && inner.Max.Lon <= outer.Max.Lon
}
