package index

import (
	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/geo"
)

// AggRTree is an aggregate spatio-temporal R-tree in the style of the
// historical RB-tree of Papadias et al. (ICDE 2002), which the paper's
// related work discusses as the indexing alternative for spatio-temporal
// aggregation: every node of a static R-tree over sensor locations carries
// the per-day severity totals of its subtree, so F(box, dayRange) resolves
// without touching the leaves of fully covered subtrees.
//
// It answers the same question as cube.SeverityIndex restricted to
// rectangles — kept as a baseline/ablation for the paper's choice of
// pre-defined regions over R-tree rectangles (Section VI: "those spatial
// aggregations must be carried out in pre-defined regions ... but the
// atypical events may not follow the fixed boundaries").
type AggRTree struct {
	tree *RTree
	// days[d][s] is sensor s's severity on day d.
	days [][]float64
	// nodeAgg caches per-node per-day totals, keyed by node.
	nodeAgg map[*rtNode][]float64
	numDays int
}

// NewAggRTree builds the index over sensor locations and a canonical record
// slice spanning days [0, numDays) of the spec.
func NewAggRTree(locs []geo.Point, recs []cps.Record, spec cps.WindowSpec, numDays int) *AggRTree {
	a := &AggRTree{
		tree:    NewRTree(locs),
		numDays: numDays,
		nodeAgg: make(map[*rtNode][]float64),
	}
	a.days = make([][]float64, numDays)
	for d := range a.days {
		a.days[d] = make([]float64, len(locs))
	}
	perDay := cps.Window(spec.PerDay())
	for _, r := range recs {
		d := int(r.Window / perDay)
		if d < 0 || d >= numDays {
			continue
		}
		a.days[d][r.Sensor] += float64(r.Severity)
	}
	if a.tree.root != nil {
		a.buildAgg(a.tree.root)
	}
	return a
}

// buildAgg computes each node's per-day subtree totals bottom-up.
func (a *AggRTree) buildAgg(n *rtNode) []float64 {
	agg := make([]float64, a.numDays)
	if n.children == nil {
		for _, id := range n.sensors {
			for d := 0; d < a.numDays; d++ {
				agg[d] += a.days[d][id]
			}
		}
	} else {
		for _, c := range n.children {
			sub := a.buildAgg(c)
			for d := range agg {
				agg[d] += sub[d]
			}
		}
	}
	a.nodeAgg[n] = agg
	return agg
}

// Aggregate returns the total severity of sensors inside box over days
// [fromDay, toDay), pruning with node boxes and short-circuiting fully
// contained subtrees through their aggregate vectors.
func (a *AggRTree) Aggregate(box geo.BBox, fromDay, toDay int) float64 {
	if a.tree.root == nil {
		return 0
	}
	fromDay = clampDay(fromDay, a.numDays)
	toDay = clampDay(toDay, a.numDays)
	if toDay <= fromDay {
		return 0
	}
	return a.aggregate(a.tree.root, box, fromDay, toDay)
}

func (a *AggRTree) aggregate(n *rtNode, box geo.BBox, fromDay, toDay int) float64 {
	if !n.box.Intersects(box) {
		return 0
	}
	if contains(box, n.box) {
		agg := a.nodeAgg[n]
		var sum float64
		for d := fromDay; d < toDay; d++ {
			sum += agg[d]
		}
		return sum
	}
	if n.children == nil {
		var sum float64
		for _, id := range n.sensors {
			if box.Contains(a.tree.locs[id]) {
				for d := fromDay; d < toDay; d++ {
					sum += a.days[d][id]
				}
			}
		}
		return sum
	}
	var sum float64
	for _, c := range n.children {
		sum += a.aggregate(c, box, fromDay, toDay)
	}
	return sum
}

// Nodes returns the underlying R-tree node count.
func (a *AggRTree) Nodes() int { return a.tree.Nodes() }

func clampDay(d, n int) int {
	if d < 0 {
		return 0
	}
	if d > n {
		return n
	}
	return d
}
