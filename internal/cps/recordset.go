package cps

import (
	"errors"
	"sort"
)

// RecordSet is an in-memory, canonically sorted collection of atypical
// records. The zero value is an empty, usable set.
//
// Invariants (after Normalize or any constructor in this package):
//   - records are sorted by (Window, Sensor);
//   - no two records share the same (Window, Sensor) key — duplicates are
//     coalesced by summing severities, matching the additive semantics of the
//     severity measure.
type RecordSet struct {
	recs []Record
}

// ErrUnsorted is returned by validation helpers when a record slice violates
// the canonical order.
var ErrUnsorted = errors.New("cps: records not in canonical (window, sensor) order")

// NewRecordSet builds a set from arbitrary records, sorting and coalescing.
// The input slice is not retained.
func NewRecordSet(recs []Record) *RecordSet {
	cp := make([]Record, len(recs))
	copy(cp, recs)
	rs := &RecordSet{recs: cp}
	rs.Normalize()
	return rs
}

// FromSorted wraps an already-canonical slice without copying. It returns
// ErrUnsorted if the invariant does not hold. Intended for storage readers
// that decode records in order.
func FromSorted(recs []Record) (*RecordSet, error) {
	for i := 1; i < len(recs); i++ {
		if !recs[i-1].Less(recs[i]) {
			return nil, ErrUnsorted
		}
	}
	return &RecordSet{recs: recs}, nil
}

// Normalize restores the canonical order and coalesces duplicate keys.
func (rs *RecordSet) Normalize() {
	sort.Slice(rs.recs, func(i, j int) bool { return rs.recs[i].Less(rs.recs[j]) })
	out := rs.recs[:0]
	for _, r := range rs.recs {
		if n := len(out); n > 0 && out[n-1].Window == r.Window && out[n-1].Sensor == r.Sensor {
			out[n-1].Severity += r.Severity
			continue
		}
		out = append(out, r)
	}
	rs.recs = out
}

// Len returns the number of records.
func (rs *RecordSet) Len() int { return len(rs.recs) }

// Records exposes the underlying canonical slice. Callers must not mutate it.
func (rs *RecordSet) Records() []Record { return rs.recs }

// Append adds records, restoring invariants afterwards. Amortize by batching.
func (rs *RecordSet) Append(recs ...Record) {
	rs.recs = append(rs.recs, recs...)
	rs.Normalize()
}

// TotalSeverity returns the sum of all severities — the paper's F over the
// whole set.
func (rs *RecordSet) TotalSeverity() Severity {
	var total Severity
	for _, r := range rs.recs {
		total += r.Severity
	}
	return total
}

// WindowSpan returns the half-open range [min, max+1] of windows present, or
// an empty range for an empty set.
func (rs *RecordSet) WindowSpan() TimeRange {
	if len(rs.recs) == 0 {
		return TimeRange{}
	}
	return TimeRange{From: rs.recs[0].Window, To: rs.recs[len(rs.recs)-1].Window + 1}
}

// Slice returns the records whose window lies in tr. Because the set is
// window-major sorted, this is two binary searches plus a subslice — no copy.
func (rs *RecordSet) Slice(tr TimeRange) []Record {
	if tr.To <= tr.From {
		return nil
	}
	lo := sort.Search(len(rs.recs), func(i int) bool { return rs.recs[i].Window >= tr.From })
	hi := sort.Search(len(rs.recs), func(i int) bool { return rs.recs[i].Window >= tr.To })
	return rs.recs[lo:hi]
}

// Filter returns a new set holding the records accepted by keep.
func (rs *RecordSet) Filter(keep func(Record) bool) *RecordSet {
	var out []Record
	for _, r := range rs.recs {
		if keep(r) {
			out = append(out, r)
		}
	}
	s, _ := FromSorted(out) // filtering preserves order and uniqueness
	return s
}

// ClampSeverity caps every record's severity at max. Physical severity
// measures have natural ceilings (atypical duration cannot exceed the window
// width), and coalescing overlapping sources can exceed them.
func (rs *RecordSet) ClampSeverity(max Severity) {
	for i := range rs.recs {
		if rs.recs[i].Severity > max {
			rs.recs[i].Severity = max
		}
	}
}

// Sensors returns the distinct sensors present, in ascending order.
func (rs *RecordSet) Sensors() []SensorID {
	seen := make(map[SensorID]struct{})
	for _, r := range rs.recs {
		seen[r.Sensor] = struct{}{}
	}
	out := make([]SensorID, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Merge returns the union of two sets, coalescing shared keys by summing.
func Merge(a, b *RecordSet) *RecordSet {
	out := make([]Record, 0, a.Len()+b.Len())
	i, j := 0, 0
	ar, br := a.recs, b.recs
	for i < len(ar) && j < len(br) {
		switch {
		case ar[i].Less(br[j]):
			out = append(out, ar[i])
			i++
		case br[j].Less(ar[i]):
			out = append(out, br[j])
			j++
		default:
			r := ar[i]
			r.Severity += br[j].Severity
			out = append(out, r)
			i++
			j++
		}
	}
	out = append(out, ar[i:]...)
	out = append(out, br[j:]...)
	s, _ := FromSorted(out)
	return s
}

// SplitByDay partitions the set into per-day subsets keyed by day index from
// the spec origin. Each subset aliases the parent's storage.
func (rs *RecordSet) SplitByDay(ws WindowSpec) map[int][]Record {
	perDay := Window(ws.PerDay())
	out := make(map[int][]Record)
	start := 0
	for start < len(rs.recs) {
		day := int(rs.recs[start].Window / perDay)
		end := start
		for end < len(rs.recs) && int(rs.recs[end].Window/perDay) == day {
			end++
		}
		out[day] = rs.recs[start:end]
		start = end
	}
	return out
}

// ForEachDay visits a per-day partition (SplitByDay-shaped map) in
// ascending day order. Map iteration order is randomized, and day order
// leaks into downstream state — cluster IDs are assigned in extraction
// order and appear in reports and storage — so every consumer of a day
// partition must iterate through this helper to keep output reproducible.
func ForEachDay[V any](byDay map[int]V, fn func(day int, v V)) {
	days := make([]int, 0, len(byDay))
	for d := range byDay {
		days = append(days, d)
	}
	sort.Ints(days)
	for _, d := range days {
		fn(d, byDay[d])
	}
}
