package cps

import (
	"testing"
	"testing/quick"
	"time"
)

func TestWindowSpecRoundTrip(t *testing.T) {
	ws := DefaultSpec()
	for _, w := range []Window{0, 1, 287, 288, 10000, -1, -288} {
		start := ws.Start(w)
		if got := ws.At(start); got != w {
			t.Errorf("At(Start(%d)) = %d", w, got)
		}
		// Any instant strictly inside the window maps back to it.
		mid := start.Add(ws.Width / 2)
		if got := ws.At(mid); got != w {
			t.Errorf("At(mid of %d) = %d", w, got)
		}
	}
}

func TestWindowSpecAtBoundary(t *testing.T) {
	ws := DefaultSpec()
	// The end instant of window w is the start of w+1.
	if got := ws.At(ws.End(5)); got != 6 {
		t.Errorf("At(End(5)) = %d, want 6", got)
	}
}

func TestWindowSpecPerDay(t *testing.T) {
	if got := DefaultSpec().PerDay(); got != 288 {
		t.Errorf("PerDay = %d, want 288 (5-minute windows)", got)
	}
	hourly := WindowSpec{Origin: time.Unix(0, 0), Width: time.Hour}
	if got := hourly.PerDay(); got != 24 {
		t.Errorf("hourly PerDay = %d, want 24", got)
	}
}

func TestWindowSpecFormat(t *testing.T) {
	ws := DefaultSpec()
	// Window 97 of Oct 1 2008: 97*5min = 485 min = 08:05.
	got := ws.Format(97)
	want := "2008-10-01 08:05-08:10"
	if got != want {
		t.Errorf("Format(97) = %q, want %q", got, want)
	}
}

func TestRecordLess(t *testing.T) {
	a := Record{Sensor: 1, Window: 5}
	b := Record{Sensor: 2, Window: 5}
	c := Record{Sensor: 0, Window: 6}
	if !a.Less(b) || !b.Less(c) || !a.Less(c) {
		t.Error("Less should order by window then sensor")
	}
	if b.Less(a) || c.Less(b) {
		t.Error("Less should be asymmetric")
	}
	if a.Less(a) {
		t.Error("Less should be irreflexive")
	}
}

func TestTimeRange(t *testing.T) {
	tr := TimeRange{From: 10, To: 20}
	if tr.Len() != 10 {
		t.Errorf("Len = %d", tr.Len())
	}
	if !tr.Contains(10) || tr.Contains(20) || tr.Contains(9) {
		t.Error("Contains half-open semantics violated")
	}
	empty := TimeRange{From: 5, To: 5}
	if empty.Len() != 0 {
		t.Error("empty range should have length 0")
	}
	inverted := TimeRange{From: 9, To: 3}
	if inverted.Len() != 0 {
		t.Error("inverted range should have length 0")
	}
}

func TestTimeRangeIntersect(t *testing.T) {
	a := TimeRange{From: 0, To: 10}
	b := TimeRange{From: 5, To: 15}
	got := a.Intersect(b)
	if got.From != 5 || got.To != 10 {
		t.Errorf("Intersect = %+v", got)
	}
	disjoint := a.Intersect(TimeRange{From: 20, To: 30})
	if disjoint.Len() != 0 {
		t.Errorf("disjoint Intersect should be empty, got %+v", disjoint)
	}
}

func TestDayRange(t *testing.T) {
	ws := DefaultSpec()
	tr := DayRange(ws, 2, 3)
	if tr.From != 2*288 || tr.To != 5*288 {
		t.Errorf("DayRange = %+v", tr)
	}
	if tr.Days(ws) != 3 {
		t.Errorf("Days = %d", tr.Days(ws))
	}
}

func TestNewRecordSetSortsAndCoalesces(t *testing.T) {
	rs := NewRecordSet([]Record{
		{Sensor: 2, Window: 1, Severity: 3},
		{Sensor: 1, Window: 1, Severity: 4},
		{Sensor: 2, Window: 1, Severity: 2}, // duplicate key, coalesced
		{Sensor: 1, Window: 0, Severity: 5},
	})
	recs := rs.Records()
	if len(recs) != 3 {
		t.Fatalf("len = %d, want 3 (coalesced)", len(recs))
	}
	want := []Record{
		{Sensor: 1, Window: 0, Severity: 5},
		{Sensor: 1, Window: 1, Severity: 4},
		{Sensor: 2, Window: 1, Severity: 5},
	}
	for i, r := range recs {
		if r != want[i] {
			t.Errorf("recs[%d] = %v, want %v", i, r, want[i])
		}
	}
}

func TestFromSortedRejectsUnsorted(t *testing.T) {
	_, err := FromSorted([]Record{{Window: 2}, {Window: 1}})
	if err != ErrUnsorted {
		t.Errorf("err = %v, want ErrUnsorted", err)
	}
	// Duplicate keys also violate strict order.
	_, err = FromSorted([]Record{{Sensor: 1, Window: 1}, {Sensor: 1, Window: 1}})
	if err != ErrUnsorted {
		t.Errorf("duplicate err = %v, want ErrUnsorted", err)
	}
	if _, err := FromSorted(nil); err != nil {
		t.Errorf("empty slice should be valid: %v", err)
	}
}

func TestRecordSetTotalSeverity(t *testing.T) {
	rs := NewRecordSet([]Record{
		{Sensor: 1, Window: 0, Severity: 2},
		{Sensor: 2, Window: 0, Severity: 3.5},
	})
	if got := rs.TotalSeverity(); got != 5.5 {
		t.Errorf("TotalSeverity = %v", got)
	}
}

func TestRecordSetSlice(t *testing.T) {
	var recs []Record
	for w := Window(0); w < 10; w++ {
		recs = append(recs, Record{Sensor: 1, Window: w, Severity: 1})
	}
	rs := NewRecordSet(recs)
	got := rs.Slice(TimeRange{From: 3, To: 7})
	if len(got) != 4 || got[0].Window != 3 || got[3].Window != 6 {
		t.Errorf("Slice = %v", got)
	}
	if len(rs.Slice(TimeRange{From: 100, To: 200})) != 0 {
		t.Error("out-of-range slice should be empty")
	}
}

func TestRecordSetSensors(t *testing.T) {
	rs := NewRecordSet([]Record{
		{Sensor: 5, Window: 0, Severity: 1},
		{Sensor: 1, Window: 1, Severity: 1},
		{Sensor: 5, Window: 2, Severity: 1},
	})
	got := rs.Sensors()
	if len(got) != 2 || got[0] != 1 || got[1] != 5 {
		t.Errorf("Sensors = %v", got)
	}
}

func TestRecordSetFilter(t *testing.T) {
	rs := NewRecordSet([]Record{
		{Sensor: 1, Window: 0, Severity: 1},
		{Sensor: 2, Window: 0, Severity: 5},
	})
	got := rs.Filter(func(r Record) bool { return r.Severity > 2 })
	if got.Len() != 1 || got.Records()[0].Sensor != 2 {
		t.Errorf("Filter = %v", got.Records())
	}
}

func TestMergeSetsCoalesces(t *testing.T) {
	a := NewRecordSet([]Record{
		{Sensor: 1, Window: 0, Severity: 2},
		{Sensor: 1, Window: 1, Severity: 3},
	})
	b := NewRecordSet([]Record{
		{Sensor: 1, Window: 1, Severity: 4},
		{Sensor: 2, Window: 2, Severity: 1},
	})
	m := Merge(a, b)
	if m.Len() != 3 {
		t.Fatalf("Len = %d", m.Len())
	}
	if m.TotalSeverity() != 10 {
		t.Errorf("TotalSeverity = %v", m.TotalSeverity())
	}
	mid := m.Records()[1]
	if mid.Severity != 7 {
		t.Errorf("shared key severity = %v, want 7", mid.Severity)
	}
}

func TestSplitByDay(t *testing.T) {
	ws := DefaultSpec()
	perDay := Window(ws.PerDay())
	rs := NewRecordSet([]Record{
		{Sensor: 1, Window: 0, Severity: 1},
		{Sensor: 1, Window: perDay - 1, Severity: 1},
		{Sensor: 1, Window: perDay, Severity: 1},
		{Sensor: 1, Window: 3 * perDay, Severity: 1},
	})
	days := rs.SplitByDay(ws)
	if len(days) != 3 {
		t.Fatalf("days = %d, want 3", len(days))
	}
	if len(days[0]) != 2 || len(days[1]) != 1 || len(days[3]) != 1 {
		t.Errorf("day partition sizes wrong: %v", map[int]int{0: len(days[0]), 1: len(days[1]), 3: len(days[3])})
	}
}

// Property: Merge is commutative and the total severity is the sum of parts
// — severities are algebraic (paper Property 2 at record level).
func TestMergeCommutativeProperty(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		a := setFromSeeds(xs)
		b := setFromSeeds(ys)
		m1 := Merge(a, b)
		m2 := Merge(b, a)
		if m1.Len() != m2.Len() {
			return false
		}
		for i := range m1.Records() {
			if m1.Records()[i] != m2.Records()[i] {
				return false
			}
		}
		return approxEq(float64(m1.TotalSeverity()), float64(a.TotalSeverity()+b.TotalSeverity()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: normalization is idempotent and Slice never exceeds bounds.
func TestNormalizeIdempotentProperty(t *testing.T) {
	f := func(xs []uint16, from, to uint8) bool {
		rs := setFromSeeds(xs)
		before := len(rs.Records())
		rs.Normalize()
		if len(rs.Records()) != before {
			return false
		}
		sl := rs.Slice(TimeRange{From: Window(from), To: Window(to)})
		for _, r := range sl {
			if r.Window < Window(from) || r.Window >= Window(to) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func setFromSeeds(xs []uint16) *RecordSet {
	recs := make([]Record, 0, len(xs))
	for _, x := range xs {
		recs = append(recs, Record{
			Sensor:   SensorID(x % 16),
			Window:   Window(x / 16 % 64),
			Severity: Severity(x%5) + 1,
		})
	}
	return NewRecordSet(recs)
}

func approxEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-6
}

func TestRecordSetAppend(t *testing.T) {
	rs := NewRecordSet([]Record{{Sensor: 1, Window: 5, Severity: 2}})
	rs.Append(Record{Sensor: 1, Window: 2, Severity: 1}, Record{Sensor: 1, Window: 5, Severity: 3})
	if rs.Len() != 2 {
		t.Fatalf("Len = %d", rs.Len())
	}
	recs := rs.Records()
	if recs[0].Window != 2 {
		t.Error("Append should restore canonical order")
	}
	if recs[1].Severity != 5 {
		t.Errorf("Append should coalesce duplicates: %v", recs[1])
	}
}

func TestClampSeverity(t *testing.T) {
	rs := NewRecordSet([]Record{
		{Sensor: 1, Window: 0, Severity: 9},
		{Sensor: 2, Window: 0, Severity: 3},
	})
	rs.ClampSeverity(5)
	if rs.Records()[0].Severity != 5 || rs.Records()[1].Severity != 3 {
		t.Errorf("ClampSeverity = %v", rs.Records())
	}
}
