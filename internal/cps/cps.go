// Package cps defines the core data model shared by every subsystem:
// sensors, discrete time windows, atypical records and record sets.
//
// The model follows Section II of Tang et al., "Multidimensional Analysis of
// Atypical Events in Cyber-Physical Data" (ICDE 2012): a CPS dataset is a set
// of records (s, t, f(s, t)) where the severity measure f(s, t) is a numeric
// value collected from sensor s during time window t. The default severity
// measure is the atypical duration in minutes, as in the paper.
package cps

import (
	"fmt"
	"time"
)

// SensorID identifies a physical sensor. IDs are dense small integers
// assigned by the road-network (or other topology) substrate.
type SensorID uint32

// Window identifies a discrete time window. Windows are consecutive integers
// counting fixed-width intervals from a deployment origin; Window arithmetic
// is therefore plain integer arithmetic. The width and origin live in a
// WindowSpec so that different deployments can use different granularities.
type Window int64

// WindowSpec maps Window indices to wall-clock intervals.
type WindowSpec struct {
	// Origin is the start instant of Window 0.
	Origin time.Time
	// Width is the duration of each window. The paper (and PeMS) use 5
	// minutes.
	Width time.Duration
}

// DefaultWindowWidth is the window granularity used by PeMS and throughout
// the paper's examples (e.g., "s1, 8:05am-8:10am, 4 mins").
const DefaultWindowWidth = 5 * time.Minute

// DefaultSpec returns the window spec used by the synthetic deployment:
// 5-minute windows with a fixed UTC origin, so datasets generated in
// different runs are directly comparable.
func DefaultSpec() WindowSpec {
	return WindowSpec{
		Origin: time.Date(2008, time.October, 1, 0, 0, 0, 0, time.UTC),
		Width:  DefaultWindowWidth,
	}
}

// Start returns the start instant of window w.
func (ws WindowSpec) Start(w Window) time.Time {
	return ws.Origin.Add(time.Duration(w) * ws.Width)
}

// End returns the end instant of window w (exclusive).
func (ws WindowSpec) End(w Window) time.Time {
	return ws.Origin.Add(time.Duration(w+1) * ws.Width)
}

// At returns the window containing instant t. Instants before the origin map
// to negative windows.
func (ws WindowSpec) At(t time.Time) Window {
	d := t.Sub(ws.Origin)
	if d < 0 {
		// Floor division for negative offsets.
		return Window((d - (ws.Width - 1)) / ws.Width)
	}
	return Window(d / ws.Width)
}

// PerDay returns the number of windows in one day.
func (ws WindowSpec) PerDay() int {
	return int(24 * time.Hour / ws.Width)
}

// Format renders a window as a human-readable interval, e.g.
// "2008-10-01 08:05-08:10".
func (ws WindowSpec) Format(w Window) string {
	s, e := ws.Start(w), ws.End(w)
	return fmt.Sprintf("%s %s-%s", s.Format("2006-01-02"), s.Format("15:04"), e.Format("15:04"))
}

// Severity is the paper's severity measure f(s, t). The default unit is
// minutes of atypical duration inside the window, but any non-negative
// domain-specific measure works (Section II-A).
type Severity float64

// Record is one atypical record (s, t, f(s, t)).
type Record struct {
	Sensor   SensorID
	Window   Window
	Severity Severity
}

// Less orders records by (Window, Sensor), the canonical on-disk and
// in-memory order: time-major so that streaming consumers see records in
// arrival order.
func (r Record) Less(o Record) bool {
	if r.Window != o.Window {
		return r.Window < o.Window
	}
	return r.Sensor < o.Sensor
}

// String implements fmt.Stringer for debugging output.
func (r Record) String() string {
	return fmt.Sprintf("(s%d, w%d, %.1f)", r.Sensor, r.Window, float64(r.Severity))
}

// Reading is a raw (pre-detection) sensor reading. The generator produces
// readings; the detect package turns the atypical ones into Records. Value is
// domain-specific (vehicle speed in mph for the traffic deployment).
type Reading struct {
	Sensor SensorID
	Window Window
	Value  float64
}

// TimeRange is a half-open window interval [From, To).
type TimeRange struct {
	From, To Window
}

// Contains reports whether w falls inside the range.
func (tr TimeRange) Contains(w Window) bool { return w >= tr.From && w < tr.To }

// Len returns the number of windows in the range.
func (tr TimeRange) Len() int {
	if tr.To <= tr.From {
		return 0
	}
	return int(tr.To - tr.From)
}

// Intersect returns the overlap of two ranges (possibly empty).
func (tr TimeRange) Intersect(o TimeRange) TimeRange {
	out := TimeRange{From: maxWindow(tr.From, o.From), To: minWindow(tr.To, o.To)}
	if out.To < out.From {
		out.To = out.From
	}
	return out
}

// Days converts the range length to whole days under spec ws, rounding up.
func (tr TimeRange) Days(ws WindowSpec) int {
	perDay := ws.PerDay()
	return (tr.Len() + perDay - 1) / perDay
}

func maxWindow(a, b Window) Window {
	if a > b {
		return a
	}
	return b
}

func minWindow(a, b Window) Window {
	if a < b {
		return a
	}
	return b
}

// DayRange returns the time range covering whole days [firstDay, firstDay+n)
// counted from the spec origin.
func DayRange(ws WindowSpec, firstDay, n int) TimeRange {
	perDay := Window(ws.PerDay())
	return TimeRange{From: Window(firstDay) * perDay, To: Window(firstDay+n) * perDay}
}
