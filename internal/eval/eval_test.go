package eval

import (
	"testing"
	"time"

	"github.com/cpskit/atypical/internal/cluster"
	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/gen"
	"github.com/cpskit/atypical/internal/geo"
	"github.com/cpskit/atypical/internal/index"
	"github.com/cpskit/atypical/internal/traffic"
)

func mkCluster(g *cluster.IDGen, sev cps.Severity, baseSensor, baseWindow int) *cluster.Cluster {
	return cluster.FromRecords(g.Next(), []cps.Record{
		{Sensor: cps.SensorID(baseSensor), Window: cps.Window(baseWindow), Severity: sev},
	})
}

func TestPrecision(t *testing.T) {
	var g cluster.IDGen
	big := mkCluster(&g, 100, 1, 0)
	small := mkCluster(&g, 1, 2, 0)
	got := Precision([]*cluster.Cluster{big, small}, 50)
	if got != 0.5 {
		t.Errorf("Precision = %v, want 0.5", got)
	}
	if Precision(nil, 50) != 1 {
		t.Error("empty results precision should be 1")
	}
	if Precision([]*cluster.Cluster{big}, 50) != 1 {
		t.Error("all-significant precision should be 1")
	}
}

func TestRecallExactMatch(t *testing.T) {
	var g cluster.IDGen
	a := mkCluster(&g, 100, 1, 0)
	b := mkCluster(&g, 100, 2, 5)
	truth := []*cluster.Cluster{a, b}
	// Returning both (identical clusters) recalls 1.
	if got := Recall(truth, truth, 50, cluster.Arithmetic); got != 1 {
		t.Errorf("self recall = %v", got)
	}
	// Returning only one recalls 0.5.
	if got := Recall([]*cluster.Cluster{a}, truth, 50, cluster.Arithmetic); got != 0.5 {
		t.Errorf("half recall = %v", got)
	}
	// Returning similar-but-insignificant clusters recalls 0.
	tiny := mkCluster(&g, 1, 1, 0)
	if got := Recall([]*cluster.Cluster{tiny}, truth, 50, cluster.Arithmetic); got != 0 {
		t.Errorf("insignificant recall = %v", got)
	}
	if Recall(nil, nil, 50, cluster.Arithmetic) != 1 {
		t.Error("empty truth recall should be 1")
	}
}

func TestRecallFuzzyMatch(t *testing.T) {
	var g cluster.IDGen
	// Truth cluster covers sensors 1-4; returned covers 1-3 of the same
	// windows plus extra mass: similar above 0.5 but not identical.
	var truthRecs, gotRecs []cps.Record
	for s := 1; s <= 4; s++ {
		truthRecs = append(truthRecs, cps.Record{Sensor: cps.SensorID(s), Window: cps.Window(s), Severity: 25})
	}
	for s := 1; s <= 3; s++ {
		gotRecs = append(gotRecs, cps.Record{Sensor: cps.SensorID(s), Window: cps.Window(s), Severity: 25})
	}
	truth := cluster.FromRecords(g.Next(), truthRecs)
	got := cluster.FromRecords(g.Next(), gotRecs)
	if sim := cluster.Similarity(truth, got, cluster.Arithmetic); sim < MatchThreshold {
		t.Fatalf("test setup: similarity %v below threshold", sim)
	}
	if r := Recall([]*cluster.Cluster{got}, []*cluster.Cluster{truth}, 50, cluster.Arithmetic); r != 1 {
		t.Errorf("fuzzy recall = %v, want 1", r)
	}
}

func TestScore(t *testing.T) {
	var g cluster.IDGen
	big := mkCluster(&g, 100, 1, 0)
	pr := Score([]*cluster.Cluster{big}, []*cluster.Cluster{big}, 50, cluster.Arithmetic)
	if pr.Precision != 1 || pr.Recall != 1 {
		t.Errorf("Score = %+v", pr)
	}
}

// End-to-end: extraction recovers nearly every injected event.
func TestEventCoverageOnSyntheticWorkload(t *testing.T) {
	net := traffic.GenerateNetwork(traffic.ScaledConfig(250))
	cfg := gen.DefaultConfig(net)
	cfg.DaysPerMonth = 3
	g, err := gen.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds := g.Month(0)

	locs := make([]geo.Point, net.NumSensors())
	for i, s := range net.Sensors {
		locs[i] = s.Loc
	}
	neighbors := index.NewNeighborIndex(locs, 1.5).NeighborLists()
	maxGap := cluster.MaxWindowGap(15*time.Minute, cps.DefaultSpec().Width)

	var idgen cluster.IDGen
	micros := cluster.ExtractMicroClusters(&idgen, ds.Atypical.Records(), neighbors, maxGap)
	if len(micros) == 0 {
		t.Fatal("no micro-clusters extracted")
	}
	cov := EventCoverage(micros, ds.Truth)
	if cov < 0.9 {
		t.Errorf("event coverage = %.2f, want ≥ 0.9", cov)
	}
}

func TestEventCoverageEmpty(t *testing.T) {
	if EventCoverage(nil, nil) != 1 {
		t.Error("no events should score 1")
	}
	if EventCoverage(nil, []gen.Event{{Records: []cps.Record{{Sensor: 1, Window: 0, Severity: 1}}}}) != 0 {
		t.Error("no clusters should score 0")
	}
}
