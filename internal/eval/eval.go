// Package eval implements the evaluation protocol of Section V-B: the
// integrate-All strategy prunes nothing, so its significant clusters form
// the ground truth; precision is the share of significant clusters among a
// strategy's returned results, and recall is the share of ground-truth
// significant clusters a strategy retrieves.
package eval

import (
	"github.com/cpskit/atypical/internal/cluster"
	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/gen"
)

// Precision returns the proportion of significant clusters in the returned
// query results (paper's Precision definition). Empty results score 1: a
// strategy that returns nothing returns nothing insignificant.
func Precision(returned []*cluster.Cluster, bound cps.Severity) float64 {
	if len(returned) == 0 {
		return 1
	}
	sig := 0
	for _, c := range returned {
		if c.Significant(bound) {
			sig++
		}
	}
	return float64(sig) / float64(len(returned))
}

// MatchThreshold is the similarity above which a returned cluster counts as
// a retrieval of a ground-truth cluster. Integration over different micro
// subsets cannot reproduce ground-truth clusters bit for bit; a cluster
// sharing most severity mass is the same discovered event.
const MatchThreshold = 0.5

// Recall returns the proportion of ground-truth significant clusters for
// which the strategy returned a significant cluster matching above
// MatchThreshold (paper's Recall definition). Empty truth scores 1.
func Recall(returned, truth []*cluster.Cluster, bound cps.Severity, g cluster.Balance) float64 {
	if len(truth) == 0 {
		return 1
	}
	var sigReturned []*cluster.Cluster
	for _, c := range returned {
		if c.Significant(bound) {
			sigReturned = append(sigReturned, c)
		}
	}
	hit := 0
	for _, want := range truth {
		for _, got := range sigReturned {
			if cluster.Similarity(want, got, g) >= MatchThreshold {
				hit++
				break
			}
		}
	}
	return float64(hit) / float64(len(truth))
}

// PR bundles both measures.
type PR struct {
	Precision, Recall float64
}

// Score computes precision and recall of returned macros against the truth
// set under the given significance bound.
func Score(returnedMacros, truth []*cluster.Cluster, bound cps.Severity, g cluster.Balance) PR {
	return PR{
		Precision: Precision(returnedMacros, bound),
		Recall:    Recall(returnedMacros, truth, bound, g),
	}
}

// EventCoverage measures how well extracted micro-clusters recover the
// generator's injected ground-truth events: the fraction of injected events
// whose records land (by severity mass) mostly inside a single
// micro-cluster. Used to validate Algorithm 1 end to end on synthetic
// workloads.
func EventCoverage(micros []*cluster.Cluster, events []gen.Event) float64 {
	if len(events) == 0 {
		return 1
	}
	// Index micro-clusters by (sensor, window) via their features is not
	// possible (features lose the joint key), so score by feature overlap:
	// an event is covered when some micro-cluster contains at least 90% of
	// the event's severity on both projections.
	covered := 0
	for i := range events {
		ev := &events[i]
		evCluster := cluster.FromRecords(0, ev.Records)
		for _, mc := range micros {
			p1, _ := cluster.OverlapFractions(evCluster.SF, mc.SF)
			q1, _ := cluster.OverlapFractions(evCluster.TF, mc.TF)
			if p1 >= 0.9 && q1 >= 0.9 {
				covered++
				break
			}
		}
	}
	return float64(covered) / float64(len(events))
}
