// Package context implements the Section V-D extension: joining context
// dimensions onto atypical clusters. "The weather dimension can be joined
// with temporal dimension with the date and the accident dimension can be
// joined with temporal and spatial dimensions by the accident time and
// location. By joining those dimension information, the system can support
// analytical queries on more dimensions."
//
// A Dimension classifies parts of a cluster's footprint into named context
// values (rainy/dry, accident/no-accident, weekday/weekend, ...); joining a
// cluster against a dimension splits its severity mass across those values,
// so the analyst can ask which share of a congestion pattern is
// weather-related, accident-related, and so on.
package context

import (
	"fmt"
	"sort"

	"github.com/cpskit/atypical/internal/cluster"
	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/geo"
)

// Value is one context value, e.g. "rain" or "dry".
type Value string

// Dimension classifies a cluster's temporal entries — the join key the
// paper describes is the time window, optionally refined by location.
type Dimension interface {
	// Name identifies the dimension, e.g. "weather".
	Name() string
	// ValueAt returns the context value of one time window.
	ValueAt(w cps.Window) Value
}

// Breakdown is the result of joining one cluster against one dimension:
// severity mass per context value.
type Breakdown struct {
	Dimension string
	// Mass maps each context value to the cluster severity incurred under
	// it.
	Mass map[Value]cps.Severity
	// Total is the cluster's total severity.
	Total cps.Severity
}

// Share returns the fraction of the cluster's severity under value v.
func (b *Breakdown) Share(v Value) float64 {
	if b.Total == 0 {
		return 0
	}
	return float64(b.Mass[v] / b.Total)
}

// Dominant returns the value carrying the most severity (ties broken
// lexicographically) and its share.
func (b *Breakdown) Dominant() (Value, float64) {
	var best Value
	var bestMass cps.Severity = -1
	keys := make([]string, 0, len(b.Mass))
	for v := range b.Mass {
		keys = append(keys, string(v))
	}
	sort.Strings(keys)
	for _, k := range keys {
		if m := b.Mass[Value(k)]; m > bestMass {
			best, bestMass = Value(k), m
		}
	}
	return best, b.Share(best)
}

// Join splits a cluster's severity across the dimension's values using the
// temporal feature (the date/time join of Section V-D).
func Join(c *cluster.Cluster, d Dimension) *Breakdown {
	b := &Breakdown{Dimension: d.Name(), Mass: make(map[Value]cps.Severity)}
	for _, e := range c.TF {
		b.Mass[d.ValueAt(e.Key)] += e.Sev
		b.Total += e.Sev
	}
	return b
}

// DayDimension classifies windows by day index — the simplest date join.
// Days absent from Values map to Default.
type DayDimension struct {
	DimName string
	Spec    cps.WindowSpec
	Values  map[int]Value
	Default Value
}

// Name implements Dimension.
func (d *DayDimension) Name() string { return d.DimName }

// ValueAt implements Dimension.
func (d *DayDimension) ValueAt(w cps.Window) Value {
	day := int(w / cps.Window(d.Spec.PerDay()))
	if v, ok := d.Values[day]; ok {
		return v
	}
	return d.Default
}

// WeatherDimension builds the paper's weather example: rain on the listed
// days, dry otherwise.
func WeatherDimension(spec cps.WindowSpec, rainyDays []int) *DayDimension {
	vals := make(map[int]Value, len(rainyDays))
	for _, d := range rainyDays {
		vals[d] = "rain"
	}
	return &DayDimension{DimName: "weather", Spec: spec, Values: vals, Default: "dry"}
}

// WeekpartDimension classifies windows into weekday/weekend.
func WeekpartDimension(spec cps.WindowSpec) *FuncDimension {
	perDay := cps.Window(spec.PerDay())
	return &FuncDimension{
		DimName: "weekpart",
		Fn: func(w cps.Window) Value {
			if int(w/perDay)%7 < 5 {
				return "weekday"
			}
			return "weekend"
		},
	}
}

// FuncDimension adapts a plain function to the Dimension interface.
type FuncDimension struct {
	DimName string
	Fn      func(cps.Window) Value
}

// Name implements Dimension.
func (d *FuncDimension) Name() string { return d.DimName }

// ValueAt implements Dimension.
func (d *FuncDimension) ValueAt(w cps.Window) Value { return d.Fn(w) }

// Report is one event record in a spatio-temporal context dimension (an
// accident report, a roadwork notice).
type Report struct {
	ID       int
	Window   cps.Window
	Loc      geo.Point
	RadiusMi float64
	// SlackWindows widens the temporal match: a report matches cluster
	// activity within ±SlackWindows of its window.
	SlackWindows int
}

// ReportDimension joins clusters against point reports by time AND location
// — the accident join of Section V-D. It is not a Dimension (the join needs
// the spatial feature too); use Match.
type ReportDimension struct {
	DimName string
	Reports []Report
	// Locate maps a sensor to its location.
	Locate func(cps.SensorID) geo.Point
}

// Match returns the reports falling inside the cluster's spatio-temporal
// footprint: report location within RadiusMi of some cluster sensor, during
// (±slack) a window the cluster was active.
func (d *ReportDimension) Match(c *cluster.Cluster) []Report {
	if d.Locate == nil {
		panic(fmt.Sprintf("context: ReportDimension %q needs a Locate function", d.DimName))
	}
	var out []Report
	for _, rep := range d.Reports {
		if !d.temporalHit(c, rep) {
			continue
		}
		for _, e := range c.SF {
			if geo.DistanceMiles(d.Locate(e.Key), rep.Loc) <= rep.RadiusMi {
				out = append(out, rep)
				break
			}
		}
	}
	return out
}

func (d *ReportDimension) temporalHit(c *cluster.Cluster, rep Report) bool {
	for gap := -rep.SlackWindows; gap <= rep.SlackWindows; gap++ {
		if c.TF.Get(rep.Window+cps.Window(gap)) > 0 {
			return true
		}
	}
	return false
}
