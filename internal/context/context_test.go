package context

import (
	"math"
	"testing"

	"github.com/cpskit/atypical/internal/cluster"
	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/geo"
)

func mkCluster(recs ...cps.Record) *cluster.Cluster {
	var g cluster.IDGen
	return cluster.FromRecords(g.Next(), recs)
}

func TestWeatherJoin(t *testing.T) {
	spec := cps.DefaultSpec()
	perDay := cps.Window(spec.PerDay())
	dim := WeatherDimension(spec, []int{1})
	c := mkCluster(
		cps.Record{Sensor: 1, Window: 10, Severity: 3},            // day 0: dry
		cps.Record{Sensor: 1, Window: perDay + 10, Severity: 7},   // day 1: rain
		cps.Record{Sensor: 1, Window: 2*perDay + 10, Severity: 2}, // day 2: dry
	)
	b := Join(c, dim)
	if b.Dimension != "weather" {
		t.Errorf("dimension = %q", b.Dimension)
	}
	if b.Mass["rain"] != 7 || b.Mass["dry"] != 5 {
		t.Errorf("mass = %v", b.Mass)
	}
	if got := b.Share("rain"); math.Abs(got-7.0/12) > 1e-12 {
		t.Errorf("rain share = %v", got)
	}
	v, share := b.Dominant()
	if v != "rain" || math.Abs(share-7.0/12) > 1e-12 {
		t.Errorf("dominant = %v, %v", v, share)
	}
}

func TestWeekpartJoin(t *testing.T) {
	spec := cps.DefaultSpec()
	perDay := cps.Window(spec.PerDay())
	dim := WeekpartDimension(spec)
	c := mkCluster(
		cps.Record{Sensor: 1, Window: 0, Severity: 1},          // day 0: weekday
		cps.Record{Sensor: 1, Window: 5 * perDay, Severity: 9}, // day 5: weekend
	)
	b := Join(c, dim)
	if b.Mass["weekday"] != 1 || b.Mass["weekend"] != 9 {
		t.Errorf("mass = %v", b.Mass)
	}
}

func TestEmptyClusterBreakdown(t *testing.T) {
	dim := WeekpartDimension(cps.DefaultSpec())
	b := Join(&cluster.Cluster{}, dim)
	if b.Total != 0 || b.Share("weekday") != 0 {
		t.Errorf("empty breakdown = %+v", b)
	}
	if _, share := b.Dominant(); share != 0 {
		t.Error("empty dominant share should be 0")
	}
}

func TestReportDimensionMatch(t *testing.T) {
	locs := map[cps.SensorID]geo.Point{
		1: {Lat: 34, Lon: -118},
		2: {Lat: 35, Lon: -117}, // ~90 miles away
	}
	dim := &ReportDimension{
		DimName: "accidents",
		Locate:  func(s cps.SensorID) geo.Point { return locs[s] },
		Reports: []Report{
			{ID: 1, Window: 10, Loc: geo.Point{Lat: 34.01, Lon: -118}, RadiusMi: 2},                  // near sensor 1, in time
			{ID: 2, Window: 500, Loc: geo.Point{Lat: 34.01, Lon: -118}, RadiusMi: 2},                 // right place, wrong time
			{ID: 3, Window: 10, Loc: geo.Point{Lat: 36, Lon: -116}, RadiusMi: 2},                     // wrong place
			{ID: 4, Window: 12, Loc: geo.Point{Lat: 34.01, Lon: -118}, RadiusMi: 2, SlackWindows: 2}, // slack reaches window 10
		},
	}
	c := mkCluster(
		cps.Record{Sensor: 1, Window: 10, Severity: 3},
		cps.Record{Sensor: 2, Window: 10, Severity: 3},
	)
	got := dim.Match(c)
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 4 {
		t.Errorf("matches = %v", got)
	}
}

func TestReportDimensionNeedsLocate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic without Locate")
		}
	}()
	dim := &ReportDimension{DimName: "x", Reports: []Report{{Window: 1, RadiusMi: 1}}}
	dim.Match(mkCluster(cps.Record{Sensor: 1, Window: 1, Severity: 1}))
}

func TestBreakdownConservesMass(t *testing.T) {
	spec := cps.DefaultSpec()
	dim := WeatherDimension(spec, []int{0, 3, 4})
	c := mkCluster(
		cps.Record{Sensor: 1, Window: 5, Severity: 2.5},
		cps.Record{Sensor: 2, Window: 900, Severity: 1.5},
		cps.Record{Sensor: 3, Window: 1200, Severity: 4},
	)
	b := Join(c, dim)
	var sum cps.Severity
	for _, m := range b.Mass {
		sum += m
	}
	if sum != b.Total || b.Total != c.Severity() {
		t.Errorf("mass %v, total %v, cluster %v", sum, b.Total, c.Severity())
	}
}
