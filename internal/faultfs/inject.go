package faultfs

import (
	"errors"
	"io/fs"
	"os"
	"sync"
)

// ErrInjected is the error returned by a deliberately failed operation.
var ErrInjected = errors.New("faultfs: injected fault")

// ErrCrashed is returned by every operation after a simulated crash: the
// "process" is dead, so nothing — not even cleanup — succeeds anymore.
var ErrCrashed = errors.New("faultfs: simulated crash")

// ErrFinished reports misuse of an AtomicFile whose write already
// committed or aborted.
var ErrFinished = errors.New("faultfs: atomic write already finished")

// Injector wraps an FS and deterministically injects faults by operation
// index, so a test can enumerate crash-points: run once clean, read
// MutatingOps, then re-run with CrashAt(k) for every k in [1, ops].
//
// Mutating operations — file creation (any OpenFile with a write flag),
// Write, Sync, Rename, Remove, MkdirAll, SyncDir — are counted in
// execution order. CrashAt(k) makes the k-th such operation fail with
// ErrCrashed and latches the crashed state: all later operations on the
// injector (reads included) fail too, and cleanup paths cannot run,
// exactly as if the process had died. ShortWrites(true) additionally makes
// a crashing Write land half its bytes first, modeling a torn write.
//
// FailReadAt(k) independently fails the k-th read operation (read-only
// open, Read, ReadDir) with ErrInjected, without latching; it exercises
// load-path error handling.
//
// An Injector is safe for concurrent use, though crash-matrix tests are
// deterministic only when the wrapped save path is itself sequential (the
// storage and forest save paths are).
type Injector struct {
	inner FS

	mu      sync.Mutex
	mutOps  int
	readOps int

	crashAt     int // 1-based mutating-op index to crash on; 0 = never
	shortWrites bool
	failReadAt  int // 1-based read-op index to fail; 0 = never
	crashed     bool
}

// NewInjector wraps inner with no faults armed.
func NewInjector(inner FS) *Injector { return &Injector{inner: inner} }

// CrashAt arms a simulated crash on the n-th mutating operation (1-based)
// and resets the operation counters and crashed state. n <= 0 disarms.
func (in *Injector) CrashAt(n int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.crashAt = n
	in.mutOps, in.readOps, in.crashed = 0, 0, false
}

// ShortWrites selects whether a crashing Write first lands half its bytes.
func (in *Injector) ShortWrites(on bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.shortWrites = on
}

// FailReadAt arms an ErrInjected on the n-th read operation (1-based) and
// resets the counters. n <= 0 disarms.
func (in *Injector) FailReadAt(n int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.failReadAt = n
	in.mutOps, in.readOps, in.crashed = 0, 0, false
}

// MutatingOps returns the number of mutating operations observed since the
// last arm/reset — after a clean run, the number of distinct crash-points.
func (in *Injector) MutatingOps() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.mutOps
}

// Crashed reports whether the simulated crash has fired.
func (in *Injector) Crashed() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashed
}

// beforeMutate accounts one mutating op; a non-nil error means the op must
// fail without touching the real filesystem. fired is true only on the
// exact operation the crash triggers on (torn-write modeling needs to tell
// "dying now" apart from "already dead").
func (in *Injector) beforeMutate() (fired bool, err error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return false, ErrCrashed
	}
	in.mutOps++
	if in.crashAt > 0 && in.mutOps == in.crashAt {
		in.crashed = true
		return true, ErrCrashed
	}
	return false, nil
}

// beforeRead accounts one read op.
func (in *Injector) beforeRead() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return ErrCrashed
	}
	in.readOps++
	if in.failReadAt > 0 && in.readOps == in.failReadAt {
		return ErrInjected
	}
	return nil
}

// shortWriteArmed reports whether the crash that just fired should land a
// torn half-write.
func (in *Injector) shortWriteArmed() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.shortWrites
}

const writeFlags = os.O_WRONLY | os.O_RDWR | os.O_APPEND | os.O_CREATE | os.O_TRUNC

// OpenFile implements FS: opens with a write flag count as mutating ops.
func (in *Injector) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if flag&writeFlags != 0 {
		if _, err := in.beforeMutate(); err != nil {
			return nil, err
		}
	} else if err := in.beforeRead(); err != nil {
		return nil, err
	}
	f, err := in.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injFile{in: in, f: f}, nil
}

// Rename implements FS.
func (in *Injector) Rename(oldpath, newpath string) error {
	if _, err := in.beforeMutate(); err != nil {
		return err
	}
	return in.inner.Rename(oldpath, newpath)
}

// Remove implements FS.
func (in *Injector) Remove(name string) error {
	if _, err := in.beforeMutate(); err != nil {
		return err
	}
	return in.inner.Remove(name)
}

// MkdirAll implements FS.
func (in *Injector) MkdirAll(path string, perm os.FileMode) error {
	if _, err := in.beforeMutate(); err != nil {
		return err
	}
	return in.inner.MkdirAll(path, perm)
}

// ReadDir implements FS.
func (in *Injector) ReadDir(name string) ([]fs.DirEntry, error) {
	if err := in.beforeRead(); err != nil {
		return nil, err
	}
	return in.inner.ReadDir(name)
}

// SyncDir implements FS.
func (in *Injector) SyncDir(name string) error {
	if _, err := in.beforeMutate(); err != nil {
		return err
	}
	return in.inner.SyncDir(name)
}

// injFile routes per-file operations back through the injector's accounting.
type injFile struct {
	in *Injector
	f  File
}

func (jf *injFile) Read(p []byte) (int, error) {
	if err := jf.in.beforeRead(); err != nil {
		return 0, err
	}
	return jf.f.Read(p)
}

func (jf *injFile) Write(p []byte) (int, error) {
	if fired, err := jf.in.beforeMutate(); err != nil {
		if fired && jf.in.shortWriteArmed() && len(p) > 1 {
			// Torn write: half the buffer reaches the file, then the
			// process dies. io.Writer contract: n < len(p) with an error.
			n, werr := jf.f.Write(p[:len(p)/2])
			if werr != nil {
				return n, werr
			}
			return n, err
		}
		return 0, err
	}
	return jf.f.Write(p)
}

func (jf *injFile) Sync() error {
	if _, err := jf.in.beforeMutate(); err != nil {
		return err
	}
	return jf.f.Sync()
}

// Close is never injected: closing is how even a dying process releases
// descriptors, and failing it would leak files in tests rather than model
// anything real.
func (jf *injFile) Close() error { return jf.f.Close() }
