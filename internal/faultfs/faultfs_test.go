package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileAtomicRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.dat")
	if err := WriteFileAtomic(OS{}, path, []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "hello" {
		t.Fatalf("read back %q, %v", got, err)
	}
	if _, err := os.Stat(path + TmpSuffix); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
	// Overwrite must replace, not append or tear.
	if err := WriteFileAtomic(OS{}, path, []byte("v2"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "v2" {
		t.Fatalf("after overwrite: %q", got)
	}
}

// Every crash-point during an atomic overwrite must leave either the old
// or the new contents at the destination — never a mix, never absence.
func TestWriteFileAtomicCrashMatrix(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.dat")
	if err := WriteFileAtomic(OS{}, path, []byte("old-contents"), 0o644); err != nil {
		t.Fatal(err)
	}

	inj := NewInjector(OS{})
	inj.ShortWrites(true)
	inj.CrashAt(0)
	if err := WriteFileAtomic(inj, path, []byte("NEW-CONTENTS!"), 0o644); err != nil {
		t.Fatal(err)
	}
	ops := inj.MutatingOps()
	if ops < 4 { // create, write, sync, rename, syncdir
		t.Fatalf("expected >=4 mutating ops, got %d", ops)
	}

	for k := 1; k <= ops; k++ {
		// Reset the destination to the old contents for each crash-point.
		if err := WriteFileAtomic(OS{}, path, []byte("old-contents"), 0o644); err != nil {
			t.Fatal(err)
		}
		inj.CrashAt(k)
		err := WriteFileAtomic(inj, path, []byte("NEW-CONTENTS!"), 0o644)
		if err == nil {
			t.Fatalf("crash-point %d: write unexpectedly succeeded", k)
		}
		if !errors.Is(err, ErrCrashed) {
			t.Fatalf("crash-point %d: error %v does not wrap ErrCrashed", k, err)
		}
		got, rerr := os.ReadFile(path)
		if rerr != nil {
			t.Fatalf("crash-point %d: destination unreadable: %v", k, rerr)
		}
		if s := string(got); s != "old-contents" && s != "NEW-CONTENTS!" {
			t.Fatalf("crash-point %d: torn destination %q", k, s)
		}
	}

	// The one acceptable debris is a *.tmp file; RemoveStrayTemps clears it.
	if err := RemoveStrayTemps(OS{}, dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if IsTemp(e.Name()) {
			t.Fatalf("stray temp survived cleanup: %s", e.Name())
		}
	}
}

// The very last crash-point (SyncDir, after the rename) still errors but
// the new contents are already published.
func TestCrashAfterRenamePublishes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.dat")
	inj := NewInjector(OS{})
	inj.CrashAt(0)
	if err := WriteFileAtomic(inj, path, []byte("data"), 0o644); err != nil {
		t.Fatal(err)
	}
	last := inj.MutatingOps()
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	inj.CrashAt(last) // the dir fsync
	if err := WriteFileAtomic(inj, path, []byte("data"), 0o644); err == nil {
		t.Fatal("expected error from crashed dir sync")
	}
	if got, err := os.ReadFile(path); err != nil || string(got) != "data" {
		t.Fatalf("rename did not publish before dir-sync crash: %q, %v", got, err)
	}
}

func TestInjectorLatchesAfterCrash(t *testing.T) {
	inj := NewInjector(OS{})
	inj.CrashAt(1)
	dir := t.TempDir()
	if err := inj.MkdirAll(filepath.Join(dir, "a"), 0o755); !errors.Is(err, ErrCrashed) {
		t.Fatalf("first op: %v", err)
	}
	if !inj.Crashed() {
		t.Fatal("not latched")
	}
	// Reads fail too once crashed.
	if _, err := inj.ReadDir(dir); !errors.Is(err, ErrCrashed) {
		t.Fatalf("read after crash: %v", err)
	}
	if err := inj.Remove(filepath.Join(dir, "nope")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("cleanup after crash: %v", err)
	}
}

func TestFailReadAt(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.dat")
	if err := WriteFileAtomic(OS{}, path, []byte("abc"), 0o644); err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(OS{})
	inj.FailReadAt(2) // open is read-op 1, first Read is 2
	f, err := Open(inj, path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 8)
	if _, err := f.Read(buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("read: %v", err)
	}
	// Not latched: the next read succeeds.
	if n, err := f.Read(buf); err != nil || n != 3 {
		t.Fatalf("second read: n=%d err=%v", n, err)
	}
}

func TestQuarantineAndHelpers(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "d.rec")
	if err := WriteFileAtomic(OS{}, path, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Quarantine(OS{}, path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("original still present after quarantine")
	}
	q := path + CorruptSuffix
	if _, err := os.Stat(q); err != nil {
		t.Fatalf("quarantined copy missing: %v", err)
	}
	if !IsQuarantined(filepath.Base(q)) || IsQuarantined("d.rec") {
		t.Fatal("IsQuarantined misclassifies")
	}
	if !IsTemp("a.tmp") || IsTemp("a.rec") {
		t.Fatal("IsTemp misclassifies")
	}
}
