// Package faultfs is the filesystem seam the persistence layer writes
// through. It serves two purposes:
//
//  1. Crash-safety: WriteFileAtomic and AtomicFile implement the one write
//     protocol every persisted artifact uses — write to a same-directory
//     temp file, fsync the file, rename it over the target, fsync the
//     parent directory. A reader can then never observe a torn file: it
//     sees the old bytes, the new bytes, or a stray *.tmp it must ignore.
//
//  2. Fault injection: Injector wraps any FS and deterministically fails
//     the N-th mutating operation (create/write/sync/rename/remove), after
//     which every subsequent operation fails too — simulating the process
//     dying at that point, with no cleanup code running. Crash-matrix
//     tests step N across an entire save and assert the reload invariant
//     at every point.
//
// The package is stdlib-only and deliberately tiny: just the operations
// the storage and forest packages need. Direct os.Create/os.WriteFile/
// os.Rename calls outside this package are flagged by the rawfswrite
// analyzer (cmd/atyplint), so the write protocol cannot silently regress.
package faultfs

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// File is the writable/readable handle an FS hands out. It is the subset
// of *os.File the persistence layer uses.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the file's contents to stable storage.
	Sync() error
}

// FS abstracts the filesystem operations behind persistence. The zero
// implementation is OS; tests substitute an Injector.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes name.
	Remove(name string) error
	// MkdirAll creates the directory path and parents.
	MkdirAll(path string, perm os.FileMode) error
	// ReadDir lists the directory entries of name, sorted by filename.
	ReadDir(name string) ([]fs.DirEntry, error)
	// SyncDir fsyncs the directory itself, making a completed rename
	// durable.
	SyncDir(name string) error
}

// OS is the real filesystem.
type OS struct{}

// OpenFile implements FS.
//
//atyplint:ignore rawfswrite faultfs is the one package that may touch os directly
func (OS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

// Rename implements FS.
//
//atyplint:ignore rawfswrite faultfs is the one package that may touch os directly
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OS) Remove(name string) error { return os.Remove(name) }

// MkdirAll implements FS.
func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

// ReadDir implements FS.
func (OS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }

// SyncDir implements FS. Directory fsync is advisory on filesystems that
// do not support it; errors other than "not supported" are reported.
func (OS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Open opens name read-only on fsys.
func Open(fsys FS, name string) (File, error) {
	return fsys.OpenFile(name, os.O_RDONLY, 0)
}

// ReadFile reads the whole of name from fsys.
func ReadFile(fsys FS, name string) ([]byte, error) {
	f, err := Open(fsys, name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// TmpSuffix marks in-flight atomic writes. A crash can leave such files
// behind; loaders must skip them (IsTemp) and may delete them.
const TmpSuffix = ".tmp"

// CorruptSuffix marks quarantined files: artifacts that failed integrity
// checks at load and were renamed aside so the store keeps serving the
// healthy remainder while the evidence stays on disk for inspection.
const CorruptSuffix = ".corrupt"

// IsTemp reports whether name is an in-flight atomic-write temp file.
func IsTemp(name string) bool { return strings.HasSuffix(name, TmpSuffix) }

// IsQuarantined reports whether name is a quarantined corrupt file.
func IsQuarantined(name string) bool { return strings.HasSuffix(name, CorruptSuffix) }

// Quarantine renames path aside with CorruptSuffix, replacing any previous
// quarantine of the same file.
func Quarantine(fsys FS, path string) error {
	return fsys.Rename(path, path+CorruptSuffix)
}

// RemoveStrayTemps deletes leftover *.tmp files in dir — debris from a
// crash mid-atomic-write. It is always safe: a temp file is by construction
// never the live copy of anything.
func RemoveStrayTemps(fsys FS, dir string) error {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if !e.IsDir() && IsTemp(e.Name()) {
			if err := fsys.Remove(filepath.Join(dir, e.Name())); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteFileAtomic writes data to path with full crash-safety: temp file in
// the same directory, fsync, rename over path, fsync of the parent
// directory. After an error (including a simulated crash) the target is
// untouched; at worst a *.tmp file is left behind.
func WriteFileAtomic(fsys FS, path string, data []byte, perm os.FileMode) error {
	af, err := CreateAtomic(fsys, path, perm)
	if err != nil {
		return err
	}
	if _, err := af.Write(data); err != nil {
		af.Abort()
		return err
	}
	return af.Commit()
}

// AtomicFile is a streaming atomic write: create with CreateAtomic, write,
// then Commit (publish) or Abort (discard). Until Commit's rename, the
// target path is untouched.
type AtomicFile struct {
	fsys FS
	f    File
	path string // final destination
	tmp  string // temp file being written
	done bool
}

// CreateAtomic begins an atomic write of path on fsys.
func CreateAtomic(fsys FS, path string, perm os.FileMode) (*AtomicFile, error) {
	tmp := path + TmpSuffix
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return nil, fmt.Errorf("faultfs: create %s: %w", tmp, err)
	}
	return &AtomicFile{fsys: fsys, f: f, path: path, tmp: tmp}, nil
}

// Write implements io.Writer on the temp file.
func (a *AtomicFile) Write(p []byte) (int, error) { return a.f.Write(p) }

// Commit makes the write durable and visible: fsync temp, close, rename
// over the destination, fsync the parent directory. On error the
// destination is untouched and the temp file is removed best-effort.
func (a *AtomicFile) Commit() error {
	if a.done {
		return fmt.Errorf("%w: commit to %s", ErrFinished, a.path)
	}
	a.done = true
	if err := a.f.Sync(); err != nil {
		a.f.Close()
		a.fsys.Remove(a.tmp)
		return fmt.Errorf("faultfs: sync %s: %w", a.tmp, err)
	}
	if err := a.f.Close(); err != nil {
		a.fsys.Remove(a.tmp)
		return fmt.Errorf("faultfs: close %s: %w", a.tmp, err)
	}
	if err := a.fsys.Rename(a.tmp, a.path); err != nil {
		a.fsys.Remove(a.tmp)
		return fmt.Errorf("faultfs: publish %s: %w", a.path, err)
	}
	if err := a.fsys.SyncDir(filepath.Dir(a.path)); err != nil {
		return fmt.Errorf("faultfs: sync dir of %s: %w", a.path, err)
	}
	return nil
}

// Abort discards the write, removing the temp file. Safe after a failed
// Commit (it becomes a no-op).
func (a *AtomicFile) Abort() {
	if a.done {
		return
	}
	a.done = true
	a.f.Close()
	a.fsys.Remove(a.tmp)
}
