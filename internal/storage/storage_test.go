package storage

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"github.com/cpskit/atypical/internal/cluster"
	"github.com/cpskit/atypical/internal/cps"
)

func TestQuantize(t *testing.T) {
	if got := Quantize(1.0); got != 1.0 {
		t.Errorf("Quantize(1) = %v", got)
	}
	// Quantization error is at most half a quantum.
	for _, s := range []cps.Severity{0.333, 4.99999, 2.718281828} {
		q := Quantize(s)
		if math.Abs(float64(q-s)) > SeverityQuantum/2+1e-12 {
			t.Errorf("Quantize(%v) = %v, error too large", s, q)
		}
	}
}

func randomCanonical(n int, seed int64) []cps.Record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]cps.Record, n)
	for i := range recs {
		recs[i] = cps.Record{
			Sensor:   cps.SensorID(rng.Intn(4000)),
			Window:   cps.Window(rng.Intn(100000)),
			Severity: cps.Severity(rng.Float64() * 5),
		}
	}
	return cps.NewRecordSet(recs).Records()
}

func TestRecordRoundTrip(t *testing.T) {
	recs := randomCanonical(20000, 1)
	var buf bytes.Buffer
	n, err := WriteRecords(&buf, recs)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i := range got {
		want := recs[i]
		want.Severity = Quantize(want.Severity)
		if got[i] != want {
			t.Fatalf("record %d = %v, want %v", i, got[i], want)
		}
	}
}

func TestRecordRoundTripEmpty(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteRecords(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("read %d records from empty file", len(got))
	}
}

func TestRecordRoundTripProperty(t *testing.T) {
	f := func(seeds []uint32) bool {
		recs := make([]cps.Record, 0, len(seeds))
		for _, x := range seeds {
			recs = append(recs, cps.Record{
				Sensor:   cps.SensorID(x % 64),
				Window:   cps.Window(x / 64 % 1024),
				Severity: cps.Severity(x%40)/8 + 0.125,
			})
		}
		canonical := cps.NewRecordSet(recs).Records()
		var buf bytes.Buffer
		if _, err := WriteRecords(&buf, canonical); err != nil {
			return false
		}
		got, err := ReadRecords(&buf)
		if err != nil {
			return false
		}
		if len(got) != len(canonical) {
			return false
		}
		for i := range got {
			want := canonical[i]
			want.Severity = Quantize(want.Severity)
			if got[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestReadRecordsRejectsBadMagic(t *testing.T) {
	if _, err := ReadRecords(bytes.NewReader([]byte("NOTAFILE????"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadRecords(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}

func TestReadRecordsDetectsCorruption(t *testing.T) {
	recs := randomCanonical(5000, 3)
	var buf bytes.Buffer
	if _, err := WriteRecords(&buf, recs); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip a byte inside the first block payload (past magic+headers).
	data[64] ^= 0xFF
	if _, err := ReadRecords(bytes.NewReader(data)); err == nil {
		t.Error("corruption not detected")
	}
	// Truncation must also error.
	if _, err := ReadRecords(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Error("truncation not detected")
	}
}

func TestRecordsCompression(t *testing.T) {
	// Canonical delta encoding should beat the naive 20-byte record by a
	// wide margin on clustered data.
	var recs []cps.Record
	for w := cps.Window(0); w < 200; w++ {
		for s := cps.SensorID(100); s < 140; s++ {
			recs = append(recs, cps.Record{Sensor: s, Window: w, Severity: 4})
		}
	}
	size := RecordsSize(recs)
	perRecord := float64(size) / float64(len(recs))
	if perRecord > 6 {
		t.Errorf("encoding uses %.1f bytes/record, want < 6 on clustered data", perRecord)
	}
}

func TestRecordFileOnDisk(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "d1.rec")
	recs := randomCanonical(1000, 9)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WriteRecords(f, recs); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	got, err := ReadRecords(rf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Errorf("disk round trip lost records: %d vs %d", len(got), len(recs))
	}
}

func quantizedCluster(g *cluster.IDGen, recs []cps.Record) *cluster.Cluster {
	for i := range recs {
		recs[i].Severity = Quantize(recs[i].Severity)
	}
	return cluster.FromRecords(g.Next(), recs)
}

func TestClusterRoundTrip(t *testing.T) {
	var g cluster.IDGen
	a := quantizedCluster(&g, []cps.Record{
		{Sensor: 1, Window: 97, Severity: 4},
		{Sensor: 2, Window: 98, Severity: 5},
	})
	b := quantizedCluster(&g, []cps.Record{
		{Sensor: 1, Window: 99, Severity: 2.5},
		{Sensor: 7, Window: 99, Severity: 1.25},
	})
	m := cluster.Merge(&g, a, b)
	var buf bytes.Buffer
	n, err := WriteClusters(&buf, []*cluster.Cluster{a, b, m})
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadClusters(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("read %d clusters", len(got))
	}
	for i, want := range []*cluster.Cluster{a, b, m} {
		c := got[i]
		if c.ID != want.ID || c.Micros != want.Micros {
			t.Errorf("cluster %d header mismatch", i)
		}
		if len(c.SF) != len(want.SF) || len(c.TF) != len(want.TF) {
			t.Fatalf("cluster %d feature sizes differ", i)
		}
		for k := range c.SF {
			if c.SF[k] != want.SF[k] {
				t.Errorf("cluster %d SF[%d] = %v, want %v", i, k, c.SF[k], want.SF[k])
			}
		}
		for k := range c.TF {
			if c.TF[k] != want.TF[k] {
				t.Errorf("cluster %d TF[%d] = %v, want %v", i, k, c.TF[k], want.TF[k])
			}
		}
	}
	// Child links resolved within the set.
	if len(got[2].Children) != 2 || got[2].Children[0].ID != a.ID {
		t.Errorf("children not restored: %v", got[2].Children)
	}
}

func TestClusterRoundTripDanglingChildren(t *testing.T) {
	var g cluster.IDGen
	a := quantizedCluster(&g, []cps.Record{{Sensor: 1, Window: 0, Severity: 1}})
	b := quantizedCluster(&g, []cps.Record{{Sensor: 2, Window: 0, Severity: 1}})
	m := cluster.Merge(&g, a, b)
	var buf bytes.Buffer
	// Persist only the macro: child references dangle and are dropped.
	if _, err := WriteClusters(&buf, []*cluster.Cluster{m}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadClusters(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0].Children) != 0 {
		t.Errorf("dangling children should be dropped, got %v", got[0].Children)
	}
	if got[0].Severity() != m.Severity() {
		t.Error("severity lost")
	}
}

func TestClusterRoundTripEmpty(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteClusters(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadClusters(&buf)
	if err != nil || len(got) != 0 {
		t.Errorf("empty set round trip: %v, %v", got, err)
	}
}

func TestReadClustersRejectsGarbage(t *testing.T) {
	if _, err := ReadClusters(bytes.NewReader([]byte("short"))); err == nil {
		t.Error("garbage accepted")
	}
	// A record file is not a cluster file.
	var buf bytes.Buffer
	if _, err := WriteRecords(&buf, randomCanonical(10, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadClusters(&buf); err == nil {
		t.Error("wrong magic accepted")
	}
}

func TestClusterSizeIsCompact(t *testing.T) {
	// The AC model must be a small fraction of the raw event encoding when
	// events are long (many records per sensor): AC stores one entry per
	// sensor and window, events store one record per (sensor, window).
	var g cluster.IDGen
	var recs []cps.Record
	for w := cps.Window(0); w < 500; w++ {
		for s := cps.SensorID(0); s < 50; s++ {
			recs = append(recs, cps.Record{Sensor: s, Window: w, Severity: 4})
		}
	}
	c := cluster.FromRecords(g.Next(), recs)
	eventSize := RecordsSize(recs)
	clusterSize := ClustersSize([]*cluster.Cluster{c})
	if float64(clusterSize) > 0.1*float64(eventSize) {
		t.Errorf("cluster %dB vs event %dB: want ≤ 10%%", clusterSize, eventSize)
	}
}
