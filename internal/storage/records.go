// Package storage implements the on-disk formats: a compact block-encoded
// record file for CPS datasets and a feature codec for atypical clusters.
// Both formats feed the model-size comparison of Fig. 16 (AE = serialized
// events, AC = serialized clusters, OC/MC = cube cells) and let cmd tools
// persist datasets and forests between runs.
//
// Record file layout (little endian):
//
//	magic "ATYPREC1" | uvarint recordCount | blocks...
//	block: uvarint n | uvarint payloadLen | uint32 crc | payload
//	payload: n records, delta-encoded in canonical (window, sensor) order:
//	  uvarint windowDelta (vs previous record)
//	  uvarint sensorValue (delta vs previous sensor when windowDelta == 0,
//	                       absolute otherwise)
//	  uvarint round(severity / SeverityQuantum)
//
// Severities are quantized to SeverityQuantum on write; Quantize gives the
// value a round trip returns. At 1/1024 minute (~60 ms of atypical duration)
// the quantization is far below sensor resolution.
package storage

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"github.com/cpskit/atypical/internal/cps"
)

// SeverityQuantum is the storage resolution of severities, in severity units
// (minutes for the default measure).
const SeverityQuantum = 1.0 / 1024

// Quantize returns the severity value that survives a write/read round trip.
func Quantize(s cps.Severity) cps.Severity {
	return cps.Severity(math.Round(float64(s)/SeverityQuantum) * SeverityQuantum)
}

var recordMagic = [8]byte{'A', 'T', 'Y', 'P', 'R', 'E', 'C', '1'}

// blockSize is the number of records per CRC-protected block.
const blockSize = 8192

// Sentinel errors of the storage package; everything an exported function
// returns wraps one of these or passes the underlying cause through with
// %w (the errwrap analyzer proves it).
var (
	ErrBadMagic = errors.New("storage: not a record file (bad magic)")
	ErrCorrupt  = errors.New("storage: corrupt record file")
	// ErrUnknownDataset reports a dataset name absent from the catalog.
	ErrUnknownDataset = errors.New("storage: unknown dataset")
	// ErrInvalidName reports a dataset name the catalog refuses to store.
	ErrInvalidName = errors.New("storage: invalid dataset name")
)

// WriteRecords encodes records — which must be in canonical (window, sensor)
// order — to w. It returns the number of bytes written.
func WriteRecords(w io.Writer, recs []cps.Record) (int64, error) {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	if _, err := bw.Write(recordMagic[:]); err != nil {
		return cw.n, err
	}
	var scratch [binary.MaxVarintLen64]byte
	writeUvarint := func(dst *[]byte, v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		*dst = append(*dst, scratch[:n]...)
	}
	var hdr []byte
	writeUvarint(&hdr, uint64(len(recs)))
	if _, err := bw.Write(hdr); err != nil {
		return cw.n, err
	}

	var payload []byte
	for start := 0; start < len(recs); start += blockSize {
		end := start + blockSize
		if end > len(recs) {
			end = len(recs)
		}
		payload = payload[:0]
		prevWindow := cps.Window(0)
		prevSensor := cps.SensorID(0)
		if start > 0 {
			prevWindow = recs[start-1].Window
			prevSensor = recs[start-1].Sensor
		}
		for _, r := range recs[start:end] {
			wd := uint64(r.Window - prevWindow)
			writeUvarint(&payload, wd)
			if wd == 0 {
				// Sensors strictly increase within a window; the initial
				// prevSensor of 0 makes the first delta the absolute value.
				writeUvarint(&payload, uint64(r.Sensor-prevSensor))
			} else {
				writeUvarint(&payload, uint64(r.Sensor))
			}
			writeUvarint(&payload, uint64(math.Round(float64(r.Severity)/SeverityQuantum)))
			prevWindow, prevSensor = r.Window, r.Sensor
		}
		var blockHdr []byte
		writeUvarint(&blockHdr, uint64(end-start))
		writeUvarint(&blockHdr, uint64(len(payload)))
		if _, err := bw.Write(blockHdr); err != nil {
			return cw.n, err
		}
		var crcBuf [4]byte
		binary.LittleEndian.PutUint32(crcBuf[:], crc32.ChecksumIEEE(payload))
		if _, err := bw.Write(crcBuf[:]); err != nil {
			return cw.n, err
		}
		if _, err := bw.Write(payload); err != nil {
			return cw.n, err
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadRecords decodes a record file written by WriteRecords, returning the
// records in canonical order with severities quantized.
func ReadRecords(r io.Reader) ([]cps.Record, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMagic, err)
	}
	if magic != recordMagic {
		return nil, ErrBadMagic
	}
	total, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: record count: %v", ErrCorrupt, err)
	}
	recs := make([]cps.Record, 0, capHint(total))
	prevWindow := cps.Window(0)
	prevSensor := cps.SensorID(0)
	for uint64(len(recs)) < total {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: block header: %v", ErrCorrupt, err)
		}
		// Clamp untrusted pre-CRC counts against what the writer produces.
		if n > blockSize {
			return nil, fmt.Errorf("%w: absurd block record count %d", ErrCorrupt, n)
		}
		if uint64(len(recs))+n > total {
			return nil, fmt.Errorf("%w: block overruns declared record count", ErrCorrupt)
		}
		payloadLen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: block length: %v", ErrCorrupt, err)
		}
		var crcBuf [4]byte
		if _, err := io.ReadFull(br, crcBuf[:]); err != nil {
			return nil, fmt.Errorf("%w: block crc: %v", ErrCorrupt, err)
		}
		if payloadLen > 64<<20 {
			return nil, fmt.Errorf("%w: absurd block length %d", ErrCorrupt, payloadLen)
		}
		payload := make([]byte, payloadLen)
		if _, err := io.ReadFull(br, payload); err != nil {
			return nil, fmt.Errorf("%w: block payload: %v", ErrCorrupt, err)
		}
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(crcBuf[:]) {
			return nil, fmt.Errorf("%w: crc mismatch", ErrCorrupt)
		}
		pos := 0
		readUvarint := func() (uint64, error) {
			v, k := binary.Uvarint(payload[pos:])
			if k <= 0 {
				return 0, ErrCorrupt
			}
			pos += k
			return v, nil
		}
		for i := uint64(0); i < n; i++ {
			wd, err := readUvarint()
			if err != nil {
				return nil, err
			}
			sraw, err := readUvarint()
			if err != nil {
				return nil, err
			}
			sq, err := readUvarint()
			if err != nil {
				return nil, err
			}
			window := prevWindow + cps.Window(wd)
			var sensor cps.SensorID
			if wd == 0 {
				sensor = prevSensor + cps.SensorID(sraw)
			} else {
				sensor = cps.SensorID(sraw)
			}
			recs = append(recs, cps.Record{
				Sensor:   sensor,
				Window:   window,
				Severity: cps.Severity(float64(sq) * SeverityQuantum),
			})
			prevWindow, prevSensor = window, sensor
		}
		if pos != len(payload) {
			return nil, fmt.Errorf("%w: %d trailing bytes in block", ErrCorrupt, len(payload)-pos)
		}
	}
	if _, err := br.ReadByte(); err == nil {
		return nil, fmt.Errorf("%w: data past declared record count", ErrCorrupt)
	} else if err != io.EOF {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return recs, nil
}

// RecordsSize returns the encoded size of recs without materializing the
// bytes — Fig. 16's AE measurement uses it on per-event record lists.
func RecordsSize(recs []cps.Record) int64 {
	n, err := WriteRecords(io.Discard, recs)
	if err != nil {
		// io.Discard cannot fail; an error here is a programming bug.
		panic(err)
	}
	return n
}

// capHint bounds slice preallocation by untrusted on-disk counts; the slice
// still grows to the real size, but a corrupt header cannot force a huge
// allocation up front.
func capHint(n uint64) int {
	const max = 1 << 20
	if n > max {
		return max
	}
	return int(n)
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}
