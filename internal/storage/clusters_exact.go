package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"github.com/cpskit/atypical/internal/cluster"
	"github.com/cpskit/atypical/internal/cps"
)

// Exact cluster wire format, version 1 (little endian):
//
//	magic "ATYPCLX1" | uvarint payloadLen | uint32 crc | payload
//	payload: uvarint clusterCount, then per cluster:
//	         uvarint id, uvarint micros,
//	         uvarint len(SF), per entry uvarint keyDelta + 8-byte raw
//	         IEEE-754 severity bits, uvarint len(TF) likewise.
//
// This is the shard wire protocol, not a persistence format: unlike the
// cluster files (clusters.go), which quantize severities by SeverityQuantum
// for compact storage, severities here travel as raw math.Float64bits so a
// coordinator gathering candidates from remote shards reconstructs clusters
// bit-identical to its own — the precondition for byte-identical sharded
// answers. Children are never encoded: only leaf micro-clusters cross the
// wire. Decoded clusters arrive hydrated (severity cache rebuilt).

var clusterExactMagic = [8]byte{'A', 'T', 'Y', 'P', 'C', 'L', 'X', '1'}

// WriteClustersExact encodes micro-clusters bit-exactly for shard transport
// and returns the bytes written.
func WriteClustersExact(w io.Writer, cs []*cluster.Cluster) (int64, error) {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	if _, err := bw.Write(clusterExactMagic[:]); err != nil {
		return cw.n, err
	}
	var buf []byte
	var scratch [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		buf = append(buf, scratch[:n]...)
	}
	putSev := func(s cps.Severity) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(float64(s)))
		buf = append(buf, b[:]...)
	}
	put(uint64(len(cs)))
	for _, c := range cs {
		put(uint64(c.ID))
		put(uint64(c.Micros))
		put(uint64(len(c.SF)))
		prevS := cps.SensorID(0)
		for _, e := range c.SF {
			put(uint64(e.Key - prevS))
			putSev(e.Sev)
			prevS = e.Key
		}
		put(uint64(len(c.TF)))
		prevW := cps.Window(0)
		for _, e := range c.TF {
			put(uint64(e.Key - prevW))
			putSev(e.Sev)
			prevW = e.Key
		}
	}
	var hdr [binary.MaxVarintLen64]byte
	if _, err := bw.Write(hdr[:binary.PutUvarint(hdr[:], uint64(len(buf)))]); err != nil {
		return cw.n, err
	}
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc32.ChecksumIEEE(buf))
	if _, err := bw.Write(crcBuf[:]); err != nil {
		return cw.n, err
	}
	if _, err := bw.Write(buf); err != nil {
		return cw.n, err
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadClustersExact decodes clusters written by WriteClustersExact, verifying
// the length/CRC frame. Any integrity failure returns an error wrapping
// ErrCorrupt (or ErrBadMagic) — never partial data. The returned clusters
// are hydrated.
func ReadClustersExact(r io.Reader) ([]*cluster.Cluster, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMagic, err)
	}
	if magic != clusterExactMagic {
		return nil, ErrBadMagic
	}
	payloadLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: payload length: %v", ErrCorrupt, err)
	}
	if payloadLen > maxClusterPayload {
		return nil, fmt.Errorf("%w: absurd payload length %d", ErrCorrupt, payloadLen)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(br, crcBuf[:]); err != nil {
		return nil, fmt.Errorf("%w: crc: %v", ErrCorrupt, err)
	}
	payload := make([]byte, payloadLen)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, fmt.Errorf("%w: payload: %v", ErrCorrupt, err)
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(crcBuf[:]) {
		return nil, fmt.Errorf("%w: crc mismatch", ErrCorrupt)
	}
	if _, err := br.ReadByte(); err == nil {
		return nil, fmt.Errorf("%w: data past payload", ErrCorrupt)
	} else if err != io.EOF {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	pos := 0
	get := func() (uint64, error) {
		v, k := binary.Uvarint(payload[pos:])
		if k <= 0 {
			return 0, fmt.Errorf("%w: truncated varint", ErrCorrupt)
		}
		pos += k
		return v, nil
	}
	getSev := func() (cps.Severity, error) {
		if pos+8 > len(payload) {
			return 0, fmt.Errorf("%w: truncated severity", ErrCorrupt)
		}
		bits := binary.LittleEndian.Uint64(payload[pos : pos+8])
		pos += 8
		return cps.Severity(math.Float64frombits(bits)), nil
	}
	n, err := get()
	if err != nil {
		return nil, fmt.Errorf("%w: cluster count: %v", ErrCorrupt, err)
	}
	out := make([]*cluster.Cluster, 0, capHint(n))
	for i := uint64(0); i < n; i++ {
		id, err := get()
		if err != nil {
			return nil, fmt.Errorf("%w: cluster id: %v", ErrCorrupt, err)
		}
		micros, err := get()
		if err != nil {
			return nil, fmt.Errorf("%w: micros: %v", ErrCorrupt, err)
		}
		sf, err := readFeatureExact[cps.SensorID](get, getSev)
		if err != nil {
			return nil, err
		}
		tf, err := readFeatureExact[cps.Window](get, getSev)
		if err != nil {
			return nil, err
		}
		c := &cluster.Cluster{ID: cluster.ID(id), SF: sf, TF: tf, Micros: int(micros)}
		c.Hydrate()
		out = append(out, c)
	}
	if pos != len(payload) {
		return nil, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(payload)-pos)
	}
	return out, nil
}

func readFeatureExact[K cluster.Key](get func() (uint64, error), getSev func() (cps.Severity, error)) (cluster.Feature[K], error) {
	n, err := get()
	if err != nil {
		return nil, fmt.Errorf("%w: feature length: %v", ErrCorrupt, err)
	}
	f := make(cluster.Feature[K], 0, capHint(n))
	var prev K
	for i := uint64(0); i < n; i++ {
		kd, err := get()
		if err != nil {
			return nil, fmt.Errorf("%w: feature key: %v", ErrCorrupt, err)
		}
		sev, err := getSev()
		if err != nil {
			return nil, err
		}
		key := prev + K(kd)
		f = append(f, cluster.Entry[K]{Key: key, Sev: sev})
		prev = key
	}
	return f, nil
}
