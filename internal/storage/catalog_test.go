package storage

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"github.com/cpskit/atypical/internal/cps"
)

func TestRecordReaderMatchesBatch(t *testing.T) {
	recs := randomCanonical(25000, 77)
	var buf bytes.Buffer
	if _, err := WriteRecords(&buf, recs); err != nil {
		t.Fatal(err)
	}
	rr, err := NewRecordReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rr.Total() != int64(len(recs)) {
		t.Errorf("Total = %d", rr.Total())
	}
	i := 0
	for {
		rec, ok := rr.Next()
		if !ok {
			break
		}
		want := recs[i]
		want.Severity = Quantize(want.Severity)
		if rec != want {
			t.Fatalf("record %d = %v, want %v", i, rec, want)
		}
		i++
	}
	if err := rr.Err(); err != nil {
		t.Fatal(err)
	}
	if i != len(recs) {
		t.Errorf("streamed %d records, want %d", i, len(recs))
	}
	// Next after EOF stays false.
	if _, ok := rr.Next(); ok {
		t.Error("Next after EOF should be false")
	}
}

func TestRecordReaderDetectsCorruption(t *testing.T) {
	recs := randomCanonical(5000, 5)
	var buf bytes.Buffer
	if _, err := WriteRecords(&buf, recs); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)/2] ^= 0xFF
	rr, err := NewRecordReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok := rr.Next(); !ok {
			break
		}
	}
	if rr.Err() == nil {
		t.Error("corruption not reported")
	}
}

func TestRecordReaderBadHeader(t *testing.T) {
	if _, err := NewRecordReader(bytes.NewReader([]byte("bogusfile???"))); err == nil {
		t.Error("bad magic accepted")
	}
}

func testSet(n int, seed int64) *cps.RecordSet {
	rs, err := cps.FromSorted(randomCanonical(n, seed))
	if err != nil {
		panic(err)
	}
	return rs
}

func TestCatalogWriteReadList(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCatalog(dir)
	if err != nil {
		t.Fatal(err)
	}
	d1 := testSet(2000, 1)
	info, err := c.Write("d1", d1)
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != int64(d1.Len()) || info.Bytes <= 0 || info.Sensors == 0 {
		t.Errorf("info = %+v", info)
	}
	if _, err := c.Write("d2", testSet(500, 2)); err != nil {
		t.Fatal(err)
	}

	list := c.List()
	if len(list) != 2 || list[0].Name != "d1" || list[1].Name != "d2" {
		t.Fatalf("List = %v", list)
	}
	got, err := c.Read("d1")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != d1.Len() {
		t.Errorf("read %d records, want %d", got.Len(), d1.Len())
	}
	if _, err := c.Read("nope"); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestCatalogPersistsAcrossOpens(t *testing.T) {
	dir := t.TempDir()
	c, _ := OpenCatalog(dir)
	if _, err := c.Write("d1", testSet(100, 3)); err != nil {
		t.Fatal(err)
	}
	c2, err := OpenCatalog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info, ok := c2.Info("d1"); !ok || info.Records != 100 && info.Records <= 0 {
		t.Errorf("reopened info = %+v, %v", info, ok)
	}
}

func TestCatalogReplace(t *testing.T) {
	c, _ := OpenCatalog(t.TempDir())
	if _, err := c.Write("d1", testSet(100, 1)); err != nil {
		t.Fatal(err)
	}
	big := testSet(5000, 2)
	info, err := c.Write("d1", big)
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != int64(big.Len()) {
		t.Errorf("replaced records = %d", info.Records)
	}
	if len(c.List()) != 1 {
		t.Errorf("List = %v", c.List())
	}
}

func TestCatalogDelete(t *testing.T) {
	dir := t.TempDir()
	c, _ := OpenCatalog(dir)
	if _, err := c.Write("d1", testSet(100, 1)); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete("d1"); err != nil {
		t.Fatal(err)
	}
	if len(c.List()) != 0 {
		t.Error("dataset still listed")
	}
	if _, err := os.Stat(filepath.Join(dir, "d1.rec")); !os.IsNotExist(err) {
		t.Error("record file not removed")
	}
	if err := c.Delete("d1"); err == nil {
		t.Error("double delete accepted")
	}
}

func TestCatalogOpenStreaming(t *testing.T) {
	c, _ := OpenCatalog(t.TempDir())
	want := testSet(3000, 9)
	if _, err := c.Write("d1", want); err != nil {
		t.Fatal(err)
	}
	rr, closer, err := c.Open("d1")
	if err != nil {
		t.Fatal(err)
	}
	defer closer()
	n := 0
	for {
		if _, ok := rr.Next(); !ok {
			break
		}
		n++
	}
	if rr.Err() != nil {
		t.Fatal(rr.Err())
	}
	if n != want.Len() {
		t.Errorf("streamed %d, want %d", n, want.Len())
	}
	if _, _, err := c.Open("nope"); err == nil {
		t.Error("unknown dataset opened")
	}
}

func TestCatalogRejectsBadNames(t *testing.T) {
	c, _ := OpenCatalog(t.TempDir())
	for _, name := range []string{"", "../evil", "a/b"} {
		if _, err := c.Write(name, testSet(10, 1)); err == nil {
			t.Errorf("name %q accepted", name)
		}
	}
}

func TestCatalogCorruptManifest(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCatalog(dir); err == nil {
		t.Error("corrupt manifest accepted")
	}
}
