package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"github.com/cpskit/atypical/internal/cluster"
	"github.com/cpskit/atypical/internal/cps"
)

// Cluster file layout, version 2 (little endian):
//
//	magic "ATYPCLU2" | uvarint payloadLen | uint32 crc | payload
//	payload: uvarint clusterCount, then per cluster the delta-encoded
//	         fields WriteClusters documents below.
//
// Version 1 ("ATYPCLU1") is the same payload with no length/CRC framing;
// ReadClusters still decodes it, so forests saved before the framing
// change keep loading. Only version 2 is ever written: the CRC is what
// lets a crash-recovering load tell a torn or bit-rotted cluster file from
// a healthy one instead of trusting whatever uvarints it finds.

var (
	clusterMagicV1 = [8]byte{'A', 'T', 'Y', 'P', 'C', 'L', 'U', '1'}
	clusterMagic   = [8]byte{'A', 'T', 'Y', 'P', 'C', 'L', 'U', '2'}
)

// maxClusterPayload clamps the declared payload length of a cluster file:
// the length is untrusted bytes read before the CRC check, and real
// per-level cluster files are orders of magnitude smaller.
const maxClusterPayload = 256 << 20

// WriteClusters encodes clusters — features only, with child cluster IDs to
// preserve tree structure — and returns the bytes written. The encoded size
// of a micro-cluster set is the AC curve of Fig. 16. The payload is framed
// with its length and CRC32 so readers verify integrity end to end.
func WriteClusters(w io.Writer, cs []*cluster.Cluster) (int64, error) {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	if _, err := bw.Write(clusterMagic[:]); err != nil {
		return cw.n, err
	}
	var buf []byte
	var scratch [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		buf = append(buf, scratch[:n]...)
	}
	put(uint64(len(cs)))
	for _, c := range cs {
		put(uint64(c.ID))
		put(uint64(c.Micros))
		put(uint64(len(c.Children)))
		for _, ch := range c.Children {
			put(uint64(ch.ID))
		}
		put(uint64(len(c.SF)))
		prevS := cps.SensorID(0)
		for _, e := range c.SF {
			put(uint64(e.Key - prevS))
			put(uint64(math.Round(float64(e.Sev) / SeverityQuantum)))
			prevS = e.Key
		}
		put(uint64(len(c.TF)))
		prevW := cps.Window(0)
		for _, e := range c.TF {
			put(uint64(e.Key - prevW))
			put(uint64(math.Round(float64(e.Sev) / SeverityQuantum)))
			prevW = e.Key
		}
	}
	var hdr [binary.MaxVarintLen64]byte
	if _, err := bw.Write(hdr[:binary.PutUvarint(hdr[:], uint64(len(buf)))]); err != nil {
		return cw.n, err
	}
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc32.ChecksumIEEE(buf))
	if _, err := bw.Write(crcBuf[:]); err != nil {
		return cw.n, err
	}
	if _, err := bw.Write(buf); err != nil {
		return cw.n, err
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadClusters decodes clusters written by WriteClusters, verifying the
// version-2 CRC framing (version-1 files decode without it). Children are
// resolved among the decoded set when present; references to clusters
// outside the set are dropped (partial materialization stores levels
// separately). Any integrity failure returns an error wrapping ErrCorrupt
// (or ErrBadMagic) — never partial data.
func ReadClusters(r io.Reader) ([]*cluster.Cluster, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMagic, err)
	}
	switch magic {
	case clusterMagic:
		return readClustersV2(br)
	case clusterMagicV1:
		return decodeClusters(func() (uint64, error) { return binary.ReadUvarint(br) })
	default:
		return nil, ErrBadMagic
	}
}

// readClustersV2 verifies the length/CRC frame, then decodes the payload.
func readClustersV2(br *bufio.Reader) ([]*cluster.Cluster, error) {
	payloadLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: payload length: %v", ErrCorrupt, err)
	}
	if payloadLen > maxClusterPayload {
		return nil, fmt.Errorf("%w: absurd payload length %d", ErrCorrupt, payloadLen)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(br, crcBuf[:]); err != nil {
		return nil, fmt.Errorf("%w: crc: %v", ErrCorrupt, err)
	}
	payload := make([]byte, payloadLen)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, fmt.Errorf("%w: payload: %v", ErrCorrupt, err)
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(crcBuf[:]) {
		return nil, fmt.Errorf("%w: crc mismatch", ErrCorrupt)
	}
	if _, err := br.ReadByte(); err == nil {
		return nil, fmt.Errorf("%w: data past payload", ErrCorrupt)
	} else if err != io.EOF {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	pos := 0
	cs, err := decodeClusters(func() (uint64, error) {
		v, k := binary.Uvarint(payload[pos:])
		if k <= 0 {
			return 0, fmt.Errorf("%w: truncated varint", ErrCorrupt)
		}
		pos += k
		return v, nil
	})
	if err != nil {
		return nil, err
	}
	if pos != len(payload) {
		return nil, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(payload)-pos)
	}
	return cs, nil
}

// decodeClusters is the payload decoder shared by both format versions.
func decodeClusters(get func() (uint64, error)) ([]*cluster.Cluster, error) {
	n, err := get()
	if err != nil {
		return nil, fmt.Errorf("%w: cluster count: %v", ErrCorrupt, err)
	}
	out := make([]*cluster.Cluster, 0, capHint(n))
	childIDs := make([][]cluster.ID, 0, capHint(n))
	byID := make(map[cluster.ID]*cluster.Cluster, capHint(n))
	for i := uint64(0); i < n; i++ {
		id, err := get()
		if err != nil {
			return nil, fmt.Errorf("%w: cluster id: %v", ErrCorrupt, err)
		}
		micros, err := get()
		if err != nil {
			return nil, fmt.Errorf("%w: micros: %v", ErrCorrupt, err)
		}
		nc, err := get()
		if err != nil {
			return nil, fmt.Errorf("%w: child count: %v", ErrCorrupt, err)
		}
		if nc > 1<<20 {
			return nil, fmt.Errorf("%w: absurd child count %d", ErrCorrupt, nc)
		}
		kids := make([]cluster.ID, nc)
		for k := range kids {
			v, err := get()
			if err != nil {
				return nil, fmt.Errorf("%w: child id: %v", ErrCorrupt, err)
			}
			kids[k] = cluster.ID(v)
		}
		sf, err := readFeature[cps.SensorID](get)
		if err != nil {
			return nil, err
		}
		tf, err := readFeature[cps.Window](get)
		if err != nil {
			return nil, err
		}
		c := &cluster.Cluster{ID: cluster.ID(id), SF: sf, TF: tf, Micros: int(micros)}
		out = append(out, c)
		childIDs = append(childIDs, kids)
		byID[c.ID] = c
	}
	for i, c := range out {
		for _, kid := range childIDs[i] {
			if ch, ok := byID[kid]; ok {
				c.Children = append(c.Children, ch)
			}
		}
	}
	return out, nil
}

func readFeature[K cluster.Key](get func() (uint64, error)) (cluster.Feature[K], error) {
	n, err := get()
	if err != nil {
		return nil, fmt.Errorf("%w: feature length: %v", ErrCorrupt, err)
	}
	f := make(cluster.Feature[K], 0, capHint(n))
	var prev K
	for i := uint64(0); i < n; i++ {
		kd, err := get()
		if err != nil {
			return nil, fmt.Errorf("%w: feature key: %v", ErrCorrupt, err)
		}
		sq, err := get()
		if err != nil {
			return nil, fmt.Errorf("%w: feature severity: %v", ErrCorrupt, err)
		}
		key := prev + K(kd)
		f = append(f, cluster.Entry[K]{Key: key, Sev: cps.Severity(float64(sq) * SeverityQuantum)})
		prev = key
	}
	return f, nil
}

// ClustersSize returns the encoded size of cs without keeping the bytes.
func ClustersSize(cs []*cluster.Cluster) int64 {
	n, err := WriteClusters(io.Discard, cs)
	if err != nil {
		panic(err)
	}
	return n
}
