package storage

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"github.com/cpskit/atypical/internal/cluster"
	"github.com/cpskit/atypical/internal/cps"
)

// exactCluster builds a micro-cluster without quantizing severities — the
// whole point of the exact codec is that values like 0.1 and 1/3 survive
// bit-for-bit.
func exactCluster(g *cluster.IDGen, recs []cps.Record) *cluster.Cluster {
	return cluster.FromRecords(g.Next(), recs)
}

func TestClustersExactBitExactRoundTrip(t *testing.T) {
	var g cluster.IDGen
	a := exactCluster(&g, []cps.Record{
		{Sensor: 1, Window: 97, Severity: 0.1},
		{Sensor: 2, Window: 98, Severity: cps.Severity(1.0 / 3.0)},
	})
	b := exactCluster(&g, []cps.Record{
		{Sensor: 1, Window: 99, Severity: cps.Severity(math.Nextafter(2.5, 3))},
		{Sensor: 7, Window: 99, Severity: 1e-17},
	})
	var buf bytes.Buffer
	n, err := WriteClustersExact(&buf, []*cluster.Cluster{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadClustersExact(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d clusters, want 2", len(got))
	}
	for i, want := range []*cluster.Cluster{a, b} {
		c := got[i]
		if c.ID != want.ID || c.Micros != want.Micros {
			t.Errorf("cluster %d header mismatch: %+v vs %+v", i, c, want)
		}
		if len(c.SF) != len(want.SF) || len(c.TF) != len(want.TF) {
			t.Fatalf("cluster %d feature sizes differ", i)
		}
		for k := range c.SF {
			if c.SF[k].Key != want.SF[k].Key ||
				math.Float64bits(float64(c.SF[k].Sev)) != math.Float64bits(float64(want.SF[k].Sev)) {
				t.Errorf("cluster %d SF[%d] = %v, want bit-exact %v", i, k, c.SF[k], want.SF[k])
			}
		}
		for k := range c.TF {
			if c.TF[k].Key != want.TF[k].Key ||
				math.Float64bits(float64(c.TF[k].Sev)) != math.Float64bits(float64(want.TF[k].Sev)) {
				t.Errorf("cluster %d TF[%d] = %v, want bit-exact %v", i, k, c.TF[k], want.TF[k])
			}
		}
		if math.Float64bits(float64(c.Severity())) != math.Float64bits(float64(want.Severity())) {
			t.Errorf("cluster %d hydrated severity %v, want %v", i, c.Severity(), want.Severity())
		}
	}
}

func TestClustersExactEmptySet(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteClustersExact(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadClustersExact(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("read %d clusters from empty set", len(got))
	}
}

func TestClustersExactRejectsCorruption(t *testing.T) {
	var g cluster.IDGen
	c := exactCluster(&g, []cps.Record{{Sensor: 3, Window: 5, Severity: 0.7}})
	var buf bytes.Buffer
	if _, err := WriteClustersExact(&buf, []*cluster.Cluster{c}); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[0] ^= 0xff
		if _, err := ReadClustersExact(bytes.NewReader(bad)); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("got %v, want ErrBadMagic", err)
		}
	})
	t.Run("flipped payload byte", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[len(bad)-1] ^= 0x01
		if _, err := ReadClustersExact(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		if _, err := ReadClustersExact(bytes.NewReader(good[:len(good)-3])); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
	t.Run("trailing bytes", func(t *testing.T) {
		bad := append(append([]byte(nil), good...), 0x00)
		if _, err := ReadClustersExact(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
}
