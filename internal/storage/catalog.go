package storage

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"github.com/cpskit/atypical/internal/cps"
)

// DatasetInfo is the manifest entry of one stored dataset.
type DatasetInfo struct {
	// Name identifies the dataset (e.g. "d1"); the record file is
	// <Name>.rec.
	Name string `json:"name"`
	// Records is the record count.
	Records int64 `json:"records"`
	// Bytes is the encoded file size.
	Bytes int64 `json:"bytes"`
	// WindowFrom/WindowTo is the half-open window span.
	WindowFrom int64 `json:"window_from"`
	WindowTo   int64 `json:"window_to"`
	// Sensors is the number of distinct sensors present.
	Sensors int `json:"sensors"`
	// TotalSeverity is the summed severity.
	TotalSeverity float64 `json:"total_severity"`
}

// manifest is the on-disk catalog state.
type manifest struct {
	Version  int           `json:"version"`
	Datasets []DatasetInfo `json:"datasets"`
}

const manifestName = "manifest.json"

// Catalog manages a directory of record files with a JSON manifest, so
// tools can list and open datasets without scanning them.
type Catalog struct {
	dir string
	m   manifest
}

// OpenCatalog opens (or initializes) a catalog at dir.
func OpenCatalog(dir string) (*Catalog, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	c := &Catalog{dir: dir, m: manifest{Version: 1}}
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	switch {
	case os.IsNotExist(err):
		return c, nil
	case err != nil:
		return nil, fmt.Errorf("storage: %w", err)
	}
	if err := json.Unmarshal(data, &c.m); err != nil {
		return nil, fmt.Errorf("storage: corrupt manifest: %w", err)
	}
	if c.m.Version != 1 {
		return nil, fmt.Errorf("storage: unsupported manifest version %d", c.m.Version)
	}
	return c, nil
}

// List returns the manifest entries, ascending by name.
func (c *Catalog) List() []DatasetInfo {
	out := make([]DatasetInfo, len(c.m.Datasets))
	copy(out, c.m.Datasets)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Info returns the entry for name.
func (c *Catalog) Info(name string) (DatasetInfo, bool) {
	for _, d := range c.m.Datasets {
		if d.Name == name {
			return d, true
		}
	}
	return DatasetInfo{}, false
}

// Write stores a record set under name (replacing any previous dataset of
// that name) and updates the manifest atomically.
func (c *Catalog) Write(name string, rs *cps.RecordSet) (DatasetInfo, error) {
	if name == "" || name != filepath.Base(name) {
		return DatasetInfo{}, fmt.Errorf("storage: invalid dataset name %q", name)
	}
	path := filepath.Join(c.dir, name+".rec")
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return DatasetInfo{}, fmt.Errorf("storage: %w", err)
	}
	n, err := WriteRecords(f, rs.Records())
	if err == nil {
		err = f.Close()
	} else {
		f.Close()
	}
	if err != nil {
		os.Remove(tmp)
		return DatasetInfo{}, fmt.Errorf("storage: writing %s: %w", name, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return DatasetInfo{}, fmt.Errorf("storage: %w", err)
	}
	span := rs.WindowSpan()
	info := DatasetInfo{
		Name:          name,
		Records:       int64(rs.Len()),
		Bytes:         n,
		WindowFrom:    int64(span.From),
		WindowTo:      int64(span.To),
		Sensors:       len(rs.Sensors()),
		TotalSeverity: float64(rs.TotalSeverity()),
	}
	replaced := false
	for i, d := range c.m.Datasets {
		if d.Name == name {
			c.m.Datasets[i] = info
			replaced = true
			break
		}
	}
	if !replaced {
		c.m.Datasets = append(c.m.Datasets, info)
	}
	if err := c.saveManifest(); err != nil {
		return DatasetInfo{}, err
	}
	return info, nil
}

// Read loads the dataset stored under name.
func (c *Catalog) Read(name string) (*cps.RecordSet, error) {
	if _, ok := c.Info(name); !ok {
		return nil, fmt.Errorf("storage: unknown dataset %q", name)
	}
	f, err := os.Open(filepath.Join(c.dir, name+".rec"))
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	defer f.Close()
	recs, err := ReadRecords(f)
	if err != nil {
		return nil, fmt.Errorf("storage: reading %s: %w", name, err)
	}
	rs, err := cps.FromSorted(recs)
	if err != nil {
		return nil, fmt.Errorf("storage: %s: %w", name, err)
	}
	return rs, nil
}

// Open returns a streaming reader over the dataset. The caller must call
// the returned closer when done.
func (c *Catalog) Open(name string) (*RecordReader, func() error, error) {
	if _, ok := c.Info(name); !ok {
		return nil, nil, fmt.Errorf("storage: unknown dataset %q", name)
	}
	f, err := os.Open(filepath.Join(c.dir, name+".rec"))
	if err != nil {
		return nil, nil, fmt.Errorf("storage: %w", err)
	}
	rr, err := NewRecordReader(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return rr, f.Close, nil
}

// Delete removes a dataset and its manifest entry.
func (c *Catalog) Delete(name string) error {
	idx := -1
	for i, d := range c.m.Datasets {
		if d.Name == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("storage: unknown dataset %q", name)
	}
	if err := os.Remove(filepath.Join(c.dir, name+".rec")); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("storage: %w", err)
	}
	c.m.Datasets = append(c.m.Datasets[:idx], c.m.Datasets[idx+1:]...)
	return c.saveManifest()
}

// saveManifest writes the manifest atomically.
func (c *Catalog) saveManifest() error {
	data, err := json.MarshalIndent(&c.m, "", "  ")
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	tmp := filepath.Join(c.dir, manifestName+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(c.dir, manifestName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: %w", err)
	}
	return nil
}
