package storage

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"

	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/faultfs"
	"github.com/cpskit/atypical/internal/obs"
)

// DatasetInfo is the manifest entry of one stored dataset.
type DatasetInfo struct {
	// Name identifies the dataset (e.g. "d1"); the record file is
	// <Name>.rec.
	Name string `json:"name"`
	// Records is the record count.
	Records int64 `json:"records"`
	// Bytes is the encoded file size.
	Bytes int64 `json:"bytes"`
	// WindowFrom/WindowTo is the half-open window span.
	WindowFrom int64 `json:"window_from"`
	WindowTo   int64 `json:"window_to"`
	// Sensors is the number of distinct sensors present.
	Sensors int `json:"sensors"`
	// TotalSeverity is the summed severity.
	TotalSeverity float64 `json:"total_severity"`
}

// manifest is the on-disk catalog state.
type manifest struct {
	Version  int           `json:"version"`
	Datasets []DatasetInfo `json:"datasets"`
}

const manifestName = "manifest.json"

// recExt is the record-file extension of catalog datasets.
const recExt = ".rec"

// Catalog manages a directory of record files with a JSON manifest, so
// tools can list and open datasets without scanning them.
//
// Every write is crash-safe: record files and the manifest go through the
// faultfs atomic protocol (temp file → fsync → rename → directory fsync),
// and the record file is always published before the manifest that
// references it. A crash therefore leaves the catalog at either the old or
// the new state of the interrupted write, plus at most a stray *.tmp file
// that the next open removes.
type Catalog struct {
	dir      string
	fsys     faultfs.FS
	m        manifest
	corrupt  *obs.Counter
	recovery RecoveryReport
}

// CatalogOptions configures OpenCatalogWith.
type CatalogOptions struct {
	// FS is the filesystem seam; nil means the real filesystem.
	FS faultfs.FS
	// Recover enables crash recovery at open: a missing or corrupt
	// manifest is reconstructed by scanning the record files, every
	// dataset is integrity-checked end to end (CRC framing included), and
	// corrupt record files are quarantined (renamed to *.corrupt) instead
	// of failing the open. The repaired manifest is written back
	// atomically.
	Recover bool
	// Observer, when non-nil, registers atyp_storage_corrupt_total and
	// counts quarantined files into it.
	Observer *obs.Registry
}

// RecoveryReport describes what a recovering open had to do. All file
// names are base names within the catalog directory.
type RecoveryReport struct {
	// Quarantined lists record files that failed integrity checks and
	// were renamed aside with the .corrupt suffix.
	Quarantined []string
	// Repaired lists manifest entries that disagreed with the bytes on
	// disk (or referenced missing files) and were re-derived or dropped.
	Repaired []string
	// Rebuilt reports that the manifest itself was missing or corrupt and
	// was reconstructed from the record files.
	Rebuilt bool
}

// Dirty reports whether the recovery had anything to do.
func (r RecoveryReport) Dirty() bool {
	return r.Rebuilt || len(r.Quarantined) > 0 || len(r.Repaired) > 0
}

// OpenCatalog opens (or initializes) a catalog at dir on the real
// filesystem, with strict integrity handling: a corrupt manifest fails the
// open.
func OpenCatalog(dir string) (*Catalog, error) {
	return OpenCatalogWith(dir, CatalogOptions{})
}

// OpenCatalogWith opens a catalog with explicit filesystem and recovery
// options.
func OpenCatalogWith(dir string, o CatalogOptions) (*Catalog, error) {
	fsys := o.FS
	if fsys == nil {
		fsys = faultfs.OS{}
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	c := &Catalog{dir: dir, fsys: fsys, m: manifest{Version: 1}}
	if o.Observer != nil {
		c.corrupt = o.Observer.Counter("atyp_storage_corrupt_total",
			"persisted files that failed integrity checks and were quarantined",
			"src", "catalog")
	}
	// Debris from a crash mid-atomic-write is never the live copy of
	// anything; clear it before anything else looks at the directory.
	if err := faultfs.RemoveStrayTemps(fsys, dir); err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}

	data, err := faultfs.ReadFile(fsys, filepath.Join(dir, manifestName))
	switch {
	case errors.Is(err, fs.ErrNotExist):
		if o.Recover {
			if err := c.rebuildManifest(true); err != nil {
				return nil, err
			}
		}
		return c, nil
	case err != nil:
		return nil, fmt.Errorf("storage: %w", err)
	}
	if uerr := json.Unmarshal(data, &c.m); uerr != nil || c.m.Version != 1 {
		if !o.Recover {
			if uerr != nil {
				return nil, fmt.Errorf("storage: corrupt manifest: %w", uerr)
			}
			return nil, fmt.Errorf("%w: unsupported manifest version %d", ErrCorrupt, c.m.Version)
		}
		// Quarantine the bad manifest and reconstruct it from the record
		// files themselves.
		if err := faultfs.Quarantine(fsys, filepath.Join(dir, manifestName)); err != nil {
			return nil, fmt.Errorf("storage: quarantining manifest: %w", err)
		}
		c.countCorrupt()
		c.recovery.Quarantined = append(c.recovery.Quarantined, manifestName)
		c.m = manifest{Version: 1}
		if err := c.rebuildManifest(true); err != nil {
			return nil, err
		}
		return c, nil
	}
	if o.Recover {
		if err := c.verifyDatasets(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Recovery returns what the opening recovery pass did (zero value when the
// catalog was opened strictly or was already healthy).
func (c *Catalog) Recovery() RecoveryReport { return c.recovery }

// countCorrupt bumps the quarantine metric when armed.
func (c *Catalog) countCorrupt() {
	if c.corrupt != nil {
		c.corrupt.Inc()
	}
}

// rebuildManifest reconstructs the manifest by scanning and fully decoding
// every record file in the directory, quarantining the corrupt ones. When
// markRebuilt is set the pass is recorded in the recovery report.
func (c *Catalog) rebuildManifest(markRebuilt bool) error {
	entries, err := c.fsys.ReadDir(c.dir)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	c.m.Datasets = nil
	found := false
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, recExt) {
			continue
		}
		found = true
		info, err := c.deriveInfo(strings.TrimSuffix(name, recExt))
		if err != nil {
			if qerr := faultfs.Quarantine(c.fsys, filepath.Join(c.dir, name)); qerr != nil {
				return fmt.Errorf("storage: quarantining %s: %w", name, qerr)
			}
			c.countCorrupt()
			c.recovery.Quarantined = append(c.recovery.Quarantined, name)
			continue
		}
		c.m.Datasets = append(c.m.Datasets, info)
	}
	if markRebuilt && (found || len(c.recovery.Quarantined) > 0) {
		c.recovery.Rebuilt = true
	}
	if c.recovery.Dirty() {
		return c.saveManifest()
	}
	return nil
}

// verifyDatasets checks every manifest entry against the bytes on disk:
// corrupt files are quarantined and dropped, missing files dropped, and
// entries whose metadata disagrees with a healthy file are re-derived
// (a crash can publish a record file without its manifest update).
func (c *Catalog) verifyDatasets() error {
	kept := c.m.Datasets[:0]
	for _, d := range c.m.Datasets {
		fileName := d.Name + recExt
		info, err := c.deriveInfo(d.Name)
		switch {
		case errors.Is(err, fs.ErrNotExist):
			c.recovery.Repaired = append(c.recovery.Repaired, fileName)
			continue
		case err != nil:
			if qerr := faultfs.Quarantine(c.fsys, filepath.Join(c.dir, fileName)); qerr != nil {
				return fmt.Errorf("storage: quarantining %s: %w", fileName, qerr)
			}
			c.countCorrupt()
			c.recovery.Quarantined = append(c.recovery.Quarantined, fileName)
			continue
		case info != d:
			c.recovery.Repaired = append(c.recovery.Repaired, fileName)
			d = info
		}
		kept = append(kept, d)
	}
	c.m.Datasets = kept
	if c.recovery.Dirty() {
		return c.saveManifest()
	}
	return nil
}

// deriveInfo fully decodes dataset name's record file — CRC framing
// verified end to end — and derives its manifest entry from the contents.
func (c *Catalog) deriveInfo(name string) (DatasetInfo, error) {
	data, err := faultfs.ReadFile(c.fsys, filepath.Join(c.dir, name+recExt))
	if err != nil {
		return DatasetInfo{}, err
	}
	recs, err := ReadRecords(bytes.NewReader(data))
	if err != nil {
		return DatasetInfo{}, err
	}
	rs, err := cps.FromSorted(recs)
	if err != nil {
		return DatasetInfo{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return datasetInfo(name, rs, int64(len(data))), nil
}

// datasetInfo summarizes a record set into its manifest entry.
func datasetInfo(name string, rs *cps.RecordSet, encodedBytes int64) DatasetInfo {
	span := rs.WindowSpan()
	return DatasetInfo{
		Name:          name,
		Records:       int64(rs.Len()),
		Bytes:         encodedBytes,
		WindowFrom:    int64(span.From),
		WindowTo:      int64(span.To),
		Sensors:       len(rs.Sensors()),
		TotalSeverity: float64(rs.TotalSeverity()),
	}
}

// List returns the manifest entries, ascending by name.
func (c *Catalog) List() []DatasetInfo {
	out := make([]DatasetInfo, len(c.m.Datasets))
	copy(out, c.m.Datasets)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Info returns the entry for name.
func (c *Catalog) Info(name string) (DatasetInfo, bool) {
	for _, d := range c.m.Datasets {
		if d.Name == name {
			return d, true
		}
	}
	return DatasetInfo{}, false
}

// Write stores a record set under name (replacing any previous dataset of
// that name) and updates the manifest. Both the record file and the
// manifest are written atomically and durably (fsync of file and
// directory), record file first — a crash in between leaves a consistent
// catalog that a recovering open repairs to the new contents.
func (c *Catalog) Write(name string, rs *cps.RecordSet) (DatasetInfo, error) {
	if name == "" || name != filepath.Base(name) ||
		strings.HasSuffix(name, faultfs.TmpSuffix) || strings.HasSuffix(name, faultfs.CorruptSuffix) {
		return DatasetInfo{}, fmt.Errorf("%w: %q", ErrInvalidName, name)
	}
	path := filepath.Join(c.dir, name+recExt)
	af, err := faultfs.CreateAtomic(c.fsys, path, 0o644)
	if err != nil {
		return DatasetInfo{}, fmt.Errorf("storage: %w", err)
	}
	n, err := WriteRecords(af, rs.Records())
	if err != nil {
		af.Abort()
		return DatasetInfo{}, fmt.Errorf("storage: writing %s: %w", name, err)
	}
	if err := af.Commit(); err != nil {
		return DatasetInfo{}, fmt.Errorf("storage: writing %s: %w", name, err)
	}
	info := datasetInfo(name, rs, n)
	replaced := false
	for i, d := range c.m.Datasets {
		if d.Name == name {
			c.m.Datasets[i] = info
			replaced = true
			break
		}
	}
	if !replaced {
		c.m.Datasets = append(c.m.Datasets, info)
	}
	if err := c.saveManifest(); err != nil {
		return DatasetInfo{}, err
	}
	return info, nil
}

// Read loads the dataset stored under name.
func (c *Catalog) Read(name string) (*cps.RecordSet, error) {
	if _, ok := c.Info(name); !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDataset, name)
	}
	f, err := faultfs.Open(c.fsys, filepath.Join(c.dir, name+recExt))
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	defer f.Close()
	recs, err := ReadRecords(f)
	if err != nil {
		return nil, fmt.Errorf("storage: reading %s: %w", name, err)
	}
	rs, err := cps.FromSorted(recs)
	if err != nil {
		return nil, fmt.Errorf("storage: %s: %w", name, err)
	}
	return rs, nil
}

// Open returns a streaming reader over the dataset. The caller must call
// the returned closer when done.
func (c *Catalog) Open(name string) (*RecordReader, func() error, error) {
	if _, ok := c.Info(name); !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrUnknownDataset, name)
	}
	f, err := faultfs.Open(c.fsys, filepath.Join(c.dir, name+recExt))
	if err != nil {
		return nil, nil, fmt.Errorf("storage: %w", err)
	}
	rr, err := NewRecordReader(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return rr, f.Close, nil
}

// Delete removes a dataset and its manifest entry.
func (c *Catalog) Delete(name string) error {
	idx := -1
	for i, d := range c.m.Datasets {
		if d.Name == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("%w: %q", ErrUnknownDataset, name)
	}
	if err := c.fsys.Remove(filepath.Join(c.dir, name+recExt)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("storage: %w", err)
	}
	c.m.Datasets = append(c.m.Datasets[:idx], c.m.Datasets[idx+1:]...)
	return c.saveManifest()
}

// saveManifest writes the manifest atomically and durably through the
// shared faultfs helper.
func (c *Catalog) saveManifest() error {
	data, err := json.MarshalIndent(&c.m, "", "  ")
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	if err := faultfs.WriteFileAtomic(c.fsys, filepath.Join(c.dir, manifestName), data, 0o644); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	return nil
}
