package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"github.com/cpskit/atypical/internal/cps"
)

// RecordReader decodes a record file incrementally, one block at a time, so
// streaming consumers never materialize the whole dataset. The zero value
// is not usable; use NewRecordReader.
type RecordReader struct {
	br    *bufio.Reader
	total uint64
	read  uint64

	block      []cps.Record
	blockPos   int
	prevWindow cps.Window
	prevSensor cps.SensorID
	eofChecked bool
	err        error
}

// NewRecordReader validates the file header and prepares incremental
// decoding.
func NewRecordReader(r io.Reader) (*RecordReader, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMagic, err)
	}
	if magic != recordMagic {
		return nil, ErrBadMagic
	}
	total, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: record count: %v", ErrCorrupt, err)
	}
	return &RecordReader{br: br, total: total}, nil
}

// Total returns the number of records the file declares. The value is an
// untrusted on-disk count: callers preallocating from it must clamp (see
// capHint) — the reader itself never allocates proportionally to it.
func (rr *RecordReader) Total() int64 { return int64(rr.total) }

// Next returns the next record. ok is false at end of stream or on error;
// check Err afterwards.
func (rr *RecordReader) Next() (rec cps.Record, ok bool) {
	if rr.err != nil {
		return cps.Record{}, false
	}
	if rr.blockPos >= len(rr.block) {
		if rr.read >= rr.total {
			// The declared count is exhausted; the stream must be too.
			// Trailing bytes mean the header count was corrupted low, so
			// surface that instead of silently dropping records.
			if !rr.eofChecked {
				rr.eofChecked = true
				if _, err := rr.br.ReadByte(); err == nil {
					rr.err = fmt.Errorf("%w: data past declared record count", ErrCorrupt)
				} else if err != io.EOF {
					rr.err = fmt.Errorf("%w: %v", ErrCorrupt, err)
				}
			}
			return cps.Record{}, false
		}
		if err := rr.loadBlock(); err != nil {
			rr.err = err
			return cps.Record{}, false
		}
	}
	rec = rr.block[rr.blockPos]
	rr.blockPos++
	rr.read++
	return rec, true
}

// Err returns the first decoding error encountered, or nil at clean EOF.
func (rr *RecordReader) Err() error { return rr.err }

// loadBlock decodes the next CRC-protected block into rr.block.
func (rr *RecordReader) loadBlock() error {
	n, err := binary.ReadUvarint(rr.br)
	if err != nil {
		return fmt.Errorf("%w: block header: %v", ErrCorrupt, err)
	}
	// Both counts come from untrusted bytes read before any CRC check:
	// clamp them against what the writer can produce before allocating or
	// decoding anything.
	if n > blockSize {
		return fmt.Errorf("%w: absurd block record count %d", ErrCorrupt, n)
	}
	if rr.read+n > rr.total {
		return fmt.Errorf("%w: block overruns declared record count", ErrCorrupt)
	}
	payloadLen, err := binary.ReadUvarint(rr.br)
	if err != nil {
		return fmt.Errorf("%w: block length: %v", ErrCorrupt, err)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(rr.br, crcBuf[:]); err != nil {
		return fmt.Errorf("%w: block crc: %v", ErrCorrupt, err)
	}
	if payloadLen > 64<<20 {
		return fmt.Errorf("%w: absurd block length %d", ErrCorrupt, payloadLen)
	}
	payload := make([]byte, payloadLen)
	if _, err := io.ReadFull(rr.br, payload); err != nil {
		return fmt.Errorf("%w: block payload: %v", ErrCorrupt, err)
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(crcBuf[:]) {
		return fmt.Errorf("%w: crc mismatch", ErrCorrupt)
	}
	if cap(rr.block) < int(n) {
		rr.block = make([]cps.Record, 0, n) // n is clamped to blockSize above
	} else {
		rr.block = rr.block[:0]
	}
	rr.blockPos = 0
	pos := 0
	next := func() (uint64, error) {
		v, k := binary.Uvarint(payload[pos:])
		if k <= 0 {
			return 0, ErrCorrupt
		}
		pos += k
		return v, nil
	}
	for i := uint64(0); i < n; i++ {
		wd, err := next()
		if err != nil {
			return err
		}
		sraw, err := next()
		if err != nil {
			return err
		}
		sq, err := next()
		if err != nil {
			return err
		}
		window := rr.prevWindow + cps.Window(wd)
		var sensor cps.SensorID
		if wd == 0 {
			sensor = rr.prevSensor + cps.SensorID(sraw)
		} else {
			sensor = cps.SensorID(sraw)
		}
		rr.block = append(rr.block, cps.Record{
			Sensor:   sensor,
			Window:   window,
			Severity: cps.Severity(float64(sq) * SeverityQuantum),
		})
		rr.prevWindow, rr.prevSensor = window, sensor
	}
	if pos != len(payload) {
		return fmt.Errorf("%w: %d trailing bytes in block", ErrCorrupt, len(payload)-pos)
	}
	return nil
}
