package storage

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/faultfs"
	"github.com/cpskit/atypical/internal/obs"
)

// crashSet builds a record set in canonical order whose severities survive
// quantization, so round-trip comparison is exact equality.
func crashSet(t *testing.T, n int, sevBase float64) *cps.RecordSet {
	t.Helper()
	recs := make([]cps.Record, 0, n)
	for i := 0; i < n; i++ {
		recs = append(recs, cps.Record{
			Window:   cps.Window(i / 4),
			Sensor:   cps.SensorID(i%4 + 1),
			Severity: cps.Severity(sevBase + float64(i%7)),
		})
	}
	rs, err := cps.FromSorted(recs)
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func sameRecords(a, b []cps.Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// noStrayTemps fails the test if dir still holds *.tmp debris.
func noStrayTemps(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if faultfs.IsTemp(e.Name()) {
			t.Errorf("stray temp file survived recovery: %s", e.Name())
		}
	}
}

// TestCatalogWriteCrashMatrix crashes a dataset overwrite at every mutating
// filesystem operation in turn and checks a recovering reopen always lands
// on the old contents, the new contents, or an explicit quarantine — never a
// parse error or torn data.
func TestCatalogWriteCrashMatrix(t *testing.T) {
	rsOld := crashSet(t, 20_000, 1)
	rsNew := crashSet(t, 30_000, 2)

	// Clean pass to count the mutating operations of one overwrite.
	probe := faultfs.NewInjector(faultfs.OS{})
	c, err := OpenCatalogWith(t.TempDir(), CatalogOptions{FS: probe})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write("d1", rsOld); err != nil {
		t.Fatal(err)
	}
	before := probe.MutatingOps()
	if _, err := c.Write("d1", rsNew); err != nil {
		t.Fatal(err)
	}
	ops := probe.MutatingOps() - before
	if ops < 4 {
		t.Fatalf("overwrite took %d mutating ops; the atomic protocol needs more", ops)
	}

	wantOld := rsOld.Records()
	wantNew := rsNew.Records()
	for k := 1; k <= ops; k++ {
		dir := t.TempDir()
		seed, err := OpenCatalog(dir)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := seed.Write("d1", rsOld); err != nil {
			t.Fatal(err)
		}

		inj := faultfs.NewInjector(faultfs.OS{})
		inj.ShortWrites(true)
		victim, err := OpenCatalogWith(dir, CatalogOptions{FS: inj})
		if err != nil {
			t.Fatalf("crash %d/%d: reopen before injection: %v", k, ops, err)
		}
		inj.CrashAt(k)
		if _, err := victim.Write("d1", rsNew); err == nil {
			t.Fatalf("crash %d/%d: injected write unexpectedly succeeded", k, ops)
		}

		reg := obs.NewRegistry()
		rec, err := OpenCatalogWith(dir, CatalogOptions{Recover: true, Observer: reg})
		if err != nil {
			t.Fatalf("crash %d/%d: recovering open: %v", k, ops, err)
		}
		noStrayTemps(t, dir)

		if _, ok := rec.Info("d1"); !ok {
			// Acceptable only as an explicit quarantine, never a silent drop.
			if len(rec.Recovery().Quarantined) == 0 {
				t.Fatalf("crash %d/%d: dataset vanished without quarantine: %+v", k, ops, rec.Recovery())
			}
			continue
		}
		got, err := rec.Read("d1")
		if err != nil {
			t.Fatalf("crash %d/%d: reading recovered dataset: %v", k, ops, err)
		}
		if !sameRecords(got.Records(), wantOld) && !sameRecords(got.Records(), wantNew) {
			t.Fatalf("crash %d/%d: recovered dataset is neither old nor new state (%d records)",
				k, ops, got.Len())
		}
	}
}

// TestCatalogRecordFlipQuarantined bit-flips a record file and checks the
// recovering open quarantines it, drops it from the manifest, and counts it.
func TestCatalogRecordFlipQuarantined(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCatalog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write("d1", crashSet(t, 5000, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write("d2", crashSet(t, 5000, 3)); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, "d1"+recExt)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Strict read surfaces the corruption as ErrCorrupt, not garbage.
	if _, err := c.Read("d1"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("strict read of flipped file: err = %v, want ErrCorrupt", err)
	}

	reg := obs.NewRegistry()
	rec, err := OpenCatalogWith(dir, CatalogOptions{Recover: true, Observer: reg})
	if err != nil {
		t.Fatal(err)
	}
	rep := rec.Recovery()
	if len(rep.Quarantined) != 1 || rep.Quarantined[0] != "d1"+recExt {
		t.Fatalf("Quarantined = %v, want [d1%s]", rep.Quarantined, recExt)
	}
	if _, ok := rec.Info("d1"); ok {
		t.Error("quarantined dataset still listed in manifest")
	}
	if _, ok := rec.Info("d2"); !ok {
		t.Error("healthy dataset lost during recovery")
	}
	if _, err := os.Stat(path + faultfs.CorruptSuffix); err != nil {
		t.Errorf("quarantine file missing: %v", err)
	}
	var exposed strings.Builder
	if _, err := reg.WriteTo(&exposed); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(exposed.String(), "atyp_storage_corrupt_total") ||
		!strings.Contains(exposed.String(), `src="catalog"`) {
		t.Errorf("corruption metric not exposed:\n%s", exposed.String())
	}

	// A second recovering open finds nothing left to repair.
	again, err := OpenCatalogWith(dir, CatalogOptions{Recover: true})
	if err != nil {
		t.Fatal(err)
	}
	if again.Recovery().Dirty() {
		t.Errorf("second recovery still dirty: %+v", again.Recovery())
	}
}

// TestCatalogManifestCorruptRecovery scribbles over the manifest and checks
// strict opens fail while recovering opens rebuild it from the record files.
func TestCatalogManifestCorruptRecovery(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCatalog(dir)
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.Write("d1", crashSet(t, 5000, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := OpenCatalog(dir); err == nil {
		t.Fatal("strict open of corrupt manifest succeeded")
	}

	rec, err := OpenCatalogWith(dir, CatalogOptions{Recover: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Recovery().Rebuilt {
		t.Errorf("recovery report not marked rebuilt: %+v", rec.Recovery())
	}
	got, ok := rec.Info("d1")
	if !ok {
		t.Fatal("rebuilt manifest lost dataset d1")
	}
	if got != want {
		t.Errorf("rebuilt info = %+v, want %+v", got, want)
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName+faultfs.CorruptSuffix)); err != nil {
		t.Errorf("corrupt manifest not quarantined: %v", err)
	}
}

// TestCatalogManifestLagsRecordFile models the crash window between the
// record-file rename and the manifest write: the new file is published but
// the manifest still describes the old one. Recovery must re-derive the
// entry, not quarantine a healthy file.
func TestCatalogManifestLagsRecordFile(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCatalog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write("d1", crashSet(t, 5000, 1)); err != nil {
		t.Fatal(err)
	}
	oldManifest, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	rsNew := crashSet(t, 9000, 2)
	if _, err := c.Write("d1", rsNew); err != nil {
		t.Fatal(err)
	}
	// Roll the manifest back as if the crash hit before it was replaced.
	if err := os.WriteFile(filepath.Join(dir, manifestName), oldManifest, 0o644); err != nil {
		t.Fatal(err)
	}

	rec, err := OpenCatalogWith(dir, CatalogOptions{Recover: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep := rec.Recovery(); len(rep.Repaired) != 1 || rep.Repaired[0] != "d1"+recExt {
		t.Fatalf("Repaired = %v, want [d1%s]", rep.Repaired, recExt)
	}
	got, err := rec.Read("d1")
	if err != nil {
		t.Fatal(err)
	}
	if !sameRecords(got.Records(), rsNew.Records()) {
		t.Error("repair did not adopt the published record file")
	}
}
