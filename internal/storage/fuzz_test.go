package storage

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/cpskit/atypical/internal/cps"
)

// Decoders must reject arbitrary input with an error — never panic, never
// hang, never fabricate records silently from garbage past the header.

func TestReadRecordsArbitraryBytesProperty(t *testing.T) {
	f := func(data []byte) bool {
		recs, err := ReadRecords(bytes.NewReader(data))
		// Either a clean error, or a (vanishingly unlikely) valid decode.
		return err != nil || recs != nil || len(data) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestReadClustersArbitraryBytesProperty(t *testing.T) {
	f := func(data []byte) bool {
		_, err := ReadClusters(bytes.NewReader(data))
		_ = err
		return true // reaching here means no panic
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Truncations and bit flips of a valid file must never decode to a
// *different* record multiset without an error.
func TestReadRecordsMutationsDetected(t *testing.T) {
	recs := randomCanonical(3000, 123)
	var buf bytes.Buffer
	if _, err := WriteRecords(&buf, recs); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	rng := rand.New(rand.NewSource(5))

	for trial := 0; trial < 60; trial++ {
		data := make([]byte, len(valid))
		copy(data, valid)
		switch trial % 2 {
		case 0: // truncate
			data = data[:rng.Intn(len(data))]
		case 1: // flip a byte
			data[rng.Intn(len(data))] ^= byte(1 + rng.Intn(255))
		}
		got, err := ReadRecords(bytes.NewReader(data))
		if err != nil {
			continue // detected — good
		}
		// Extremely rare: a mutation that still decodes (e.g. flip inside
		// the header count matching by luck). It must then reproduce the
		// original records to be acceptable.
		if len(got) != len(recs) {
			t.Fatalf("trial %d: silent corruption -> %d records (want %d or error)", trial, len(got), len(recs))
		}
		for i := range got {
			want := recs[i]
			want.Severity = Quantize(want.Severity)
			if got[i] != want {
				t.Fatalf("trial %d: silent corruption at record %d", trial, i)
			}
		}
	}
}

// FuzzRecordReaderCorrupt drives the streaming reader over arbitrary bytes:
// it must never panic, never stream records past a detected corruption, and
// always agree with the batch reader about whether the input is valid.
func FuzzRecordReaderCorrupt(f *testing.F) {
	valid := func(n int, seed int64) []byte {
		var buf bytes.Buffer
		if _, err := WriteRecords(&buf, randomCanonical(n, seed)); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(valid(100, 1))
	f.Add(valid(0, 2))
	truncated := valid(9000, 3)
	f.Add(truncated[:len(truncated)*2/3])
	flipped := valid(500, 4)
	flipped[len(flipped)/2] ^= 0x08
	f.Add(flipped)
	f.Add([]byte("ATYPREC1"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		rr, err := NewRecordReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		var streamed []cps.Record
		for {
			rec, ok := rr.Next()
			if !ok {
				break
			}
			streamed = append(streamed, rec)
		}
		batch, batchErr := ReadRecords(bytes.NewReader(data))
		if (batchErr == nil) != (rr.Err() == nil) {
			t.Fatalf("stream err %v disagrees with batch err %v", rr.Err(), batchErr)
		}
		if batchErr != nil {
			return
		}
		if int64(len(streamed)) != rr.Total() {
			t.Fatalf("streamed %d records, declared total %d", len(streamed), rr.Total())
		}
		if len(streamed) != len(batch) {
			t.Fatalf("streamed %d records, batch decoded %d", len(streamed), len(batch))
		}
		for i := range streamed {
			if streamed[i] != batch[i] {
				t.Fatalf("record %d: stream %+v vs batch %+v", i, streamed[i], batch[i])
			}
		}
	})
}

// The streaming reader agrees with the batch reader on every prefix
// behavior: same records until the first error.
func TestReaderBatchAgreementUnderCorruption(t *testing.T) {
	recs := randomCanonical(5000, 7)
	var buf bytes.Buffer
	if _, err := WriteRecords(&buf, recs); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)*3/4] ^= 0x10 // corrupt late in the file

	batch, batchErr := ReadRecords(bytes.NewReader(data))
	rr, err := NewRecordReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var streamed int
	for {
		if _, ok := rr.Next(); !ok {
			break
		}
		streamed++
	}
	if (batchErr == nil) != (rr.Err() == nil) {
		t.Fatalf("batch err %v vs stream err %v", batchErr, rr.Err())
	}
	if batchErr == nil && streamed != len(batch) {
		t.Fatalf("stream decoded %d, batch %d", streamed, len(batch))
	}
}
