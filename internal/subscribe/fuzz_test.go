package subscribe

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/cpskit/atypical/internal/query"
)

// fuzzEnv is built once per process: the deployment is fuzz-invariant, only
// the stream and query parameters vary per input.
var (
	fuzzOnce sync.Once
	fuzzE    *env
)

func fuzzEnvOnce() *env {
	fuzzOnce.Do(func() { fuzzE = newEnv(60) })
	return fuzzE
}

// FuzzStandingQueryEquivalence fuzzes the package's correctness anchor: for
// any finite canonical stream, the events a standing query pushed must equal
// the batch Run answer after flush + rebuild, under both supported
// strategies and arbitrary δs operating points.
func FuzzStandingQueryEquivalence(f *testing.F) {
	f.Add(int64(1), uint16(150), uint8(1), uint8(5), false)
	f.Add(int64(42), uint16(400), uint8(2), uint8(0), true)
	f.Add(int64(7), uint16(60), uint8(3), uint8(40), false)
	f.Fuzz(func(t *testing.T, seed int64, n uint16, daysRaw, dsRaw uint8, pru bool) {
		e := fuzzEnvOnce()
		days := 1 + int(daysRaw%3)
		nrecs := 20 + int(n%600)
		deltaS := 1e-6 + float64(dsRaw%50)/5000
		strat := query.All
		if pru {
			strat = query.Pru
		}
		recs := e.randRecords(rand.New(rand.NewSource(seed)), nrecs, days)
		checkEquivalence(t, e, recs, days, deltaS, strat)
	})
}
