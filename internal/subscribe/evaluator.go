package subscribe

import (
	"math"
	"slices"
	"sort"
	"strconv"
	"strings"

	"github.com/cpskit/atypical/internal/cluster"
	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/geo"
	"github.com/cpskit/atypical/internal/query"
	"github.com/cpskit/atypical/internal/traffic"
)

// evaluator maintains one standing query's macro-cluster state incrementally.
//
// Naive incremental integration — merge each arriving micro into the running
// macro set — does NOT match the batch answer: Algorithm 3's fixpoint depends
// on merge order, and the batch engine integrates the whole canonically
// ordered input at once, where an early cluster can first merge with a much
// later one. The evaluator gets exact equivalence from a decomposition
// instead:
//
//   - Integration only ever merges clusters sharing a sensor key or a folded
//     temporal key (every balance function maps zero overlap to similarity 0,
//     and integrateCore's candidates come from per-key posting lists). Merges
//     therefore respect the connected components of the shared-key graph over
//     the input micros, and the batch run over the full input is the disjoint
//     union of independent runs over each component.
//   - Within one component, integrateCore's behavior depends only on the
//     relative order of that component's inputs: posting lists for the
//     component's keys hold only component positions, the FIFO queue visits
//     them in input order, and cluster IDs never influence a merge decision.
//
// So the evaluator tracks the shared-key components with a union-find as
// micros arrive, and on every arrival re-runs cluster.Integrate over just the
// affected component's members sorted into canonical batch order — (day,
// arrival sequence), exactly how IngestClusters + MicrosInRange would order
// them. The result is bit-identical, float-for-float, to the corresponding
// slice of the batch fixpoint; per-arrival cost is bounded by the component's
// size, not the stream's. Memory is bounded by the micros in the query's
// scope: a standing query over a finite time range T plateaus once the stream
// passes T.
type evaluator struct {
	net      *traffic.Network
	q        query.Query
	strat    query.Strategy
	inRegion map[geo.RegionID]bool
	// bound is the query-scale significance bound δs·length(T)·N.
	bound cps.Severity
	// dayBound is the day-scale bound Pru prunes against (Example 6).
	dayBound cps.Severity
	opts     cluster.IntegrateOptions
	perDay   cps.Window
	// gen supplies IDs for the evaluator's own merges. Private on purpose:
	// equivalence is over features, and drawing from a shared system gen on
	// every re-integration would burn IDs quadratically.
	gen cluster.IDGen

	// members holds the accepted micros in arrival order; arrival order
	// restricted to one day is the batch emission order for that day, so
	// (day, index) sorts any subset into canonical batch order.
	members []member
	// parent is the union-find over member indices: shared-key components.
	parent []int
	// bySensor/byWindow map each seen key to some member featuring it; an
	// arriving micro unions with those members' components.
	bySensor map[cps.SensorID]int
	byWindow map[cps.Window]int
	// comps indexes the live components by their current union-find root.
	comps map[int]*component
}

type member struct {
	c   *cluster.Cluster
	day int
}

// component is one shared-key connected component's current state.
type component struct {
	// id is the stable component identity: smallest member arrival index + 1.
	// Merges keep the smallest id of the parts.
	id uint64
	// members are the component's member indices, canonically sorted.
	members []int
	// sig is the current significant set (the component's slice of the batch
	// answer); sigFPs its sorted feature fingerprints for change detection.
	sig    []*cluster.Cluster
	sigFPs []string
	// absorbedPending carries absorbed component ids not yet announced to the
	// subscriber — accumulated across pushes skipped for an unchanged
	// significant set and pushes dropped at a full buffer.
	absorbedPending []uint64
}

// newEvaluator resolves the query against the deployment exactly like the
// batch engine's run preamble (sensorsInRegions → SignificanceBound).
func newEvaluator(cfg Config, q query.Query, strat query.Strategy) *evaluator {
	numSensors := 0
	inRegion := make(map[geo.RegionID]bool, len(q.Regions))
	for _, r := range q.Regions {
		numSensors += len(cfg.Net.SensorsInRegion(r))
		inRegion[r] = true
	}
	return &evaluator{
		net:      cfg.Net,
		q:        q,
		strat:    strat,
		inRegion: inRegion,
		bound:    cluster.SignificanceBound(q.DeltaS, q.Time.Len(), numSensors),
		dayBound: cluster.SignificanceBound(q.DeltaS, cfg.Spec.PerDay(), numSensors),
		opts:     cfg.Options,
		perDay:   cps.Window(cfg.Spec.PerDay()),
		bySensor: make(map[cps.SensorID]int),
		byWindow: make(map[cps.Window]int),
		comps:    make(map[int]*component),
	}
}

// offer evaluates one emitted micro-cluster, returning the push it triggers
// (Component/Absorbed/Clusters populated; Seq/Ts/Gap are the registry's).
func (ev *evaluator) offer(c *cluster.Cluster) (Push, bool) {
	// Scope: mirror the batch candidate stage exactly. Day assignment and the
	// half-open day test match IngestClusters + MicrosInRange; the region
	// touch test is the engine's filterTouching; Pru's day-scale prune is
	// per-micro and order-independent, so applying it on arrival commutes
	// with the batch filter.
	if len(c.TF) == 0 {
		return Push{}, false
	}
	day := int(c.TF[0].Key / ev.perDay)
	dayStart := cps.Window(day) * ev.perDay
	if dayStart < ev.q.Time.From || dayStart >= ev.q.Time.To {
		return Push{}, false
	}
	if !query.Touches(ev.net, c, ev.inRegion) {
		return Push{}, false
	}
	if ev.strat == query.Pru && !c.Significant(ev.dayBound) {
		return Push{}, false
	}

	m := len(ev.members)
	ev.members = append(ev.members, member{c: c, day: day})
	ev.parent = append(ev.parent, m)

	// Components sharing a key with c, gathered before any union so roots
	// are still distinct.
	old := make(map[int]*component)
	link := func(prev int) {
		r := ev.find(prev)
		if comp, ok := ev.comps[r]; ok {
			old[r] = comp
		}
	}
	for _, e := range c.SF {
		if prev, ok := ev.bySensor[e.Key]; ok {
			link(prev)
		} else {
			ev.bySensor[e.Key] = m
		}
	}
	for _, k := range c.FoldedKeys(ev.opts.Period) {
		if prev, ok := ev.byWindow[k]; ok {
			link(prev)
		} else {
			ev.byWindow[k] = m
		}
	}
	for r := range old {
		ev.union(r, m)
		delete(ev.comps, r)
	}
	root := ev.find(m)

	// The merged component: surviving id is the smallest, the others are
	// absorbed (together with anything still pending announcement).
	idxs := []int{m}
	id := uint64(m) + 1
	var absorbed []uint64
	var oldFPs []string
	for _, comp := range old {
		idxs = append(idxs, comp.members...)
		if comp.id < id {
			id = comp.id
		}
		absorbed = append(absorbed, comp.absorbedPending...)
		oldFPs = append(oldFPs, comp.sigFPs...)
	}
	for _, comp := range old {
		if comp.id != id {
			absorbed = append(absorbed, comp.id)
		}
	}
	sort.Slice(idxs, func(i, j int) bool {
		a, b := idxs[i], idxs[j]
		if ev.members[a].day != ev.members[b].day {
			return ev.members[a].day < ev.members[b].day
		}
		return a < b
	})

	// Re-integrate the component in canonical order: bit-identical to its
	// slice of the batch fixpoint (see the type comment).
	inputs := make([]*cluster.Cluster, len(idxs))
	for i, ix := range idxs {
		inputs[i] = ev.members[ix].c
	}
	macros := cluster.Integrate(&ev.gen, inputs, ev.opts)
	var sig []*cluster.Cluster
	var fps []string
	for _, mc := range macros {
		if mc.Significant(ev.bound) {
			sig = append(sig, mc)
			fps = append(fps, clusterFP(mc))
		}
	}
	sort.Strings(fps)
	comp := &component{id: id, members: idxs, sig: sig, sigFPs: fps}
	ev.comps[root] = comp

	// Push only when the observable answer changed: the merged component's
	// significant multiset differs from the union of its parts'. Component
	// bookkeeping (ids merged with nothing significant on either side) stays
	// silent, riding along on the next real push via absorbedPending.
	sort.Strings(oldFPs)
	if slices.Equal(fps, oldFPs) {
		comp.absorbedPending = absorbed
		return Push{}, false
	}
	slices.Sort(absorbed)
	return Push{Component: id, Absorbed: absorbed, Clusters: sig}, true
}

// requeueAbsorbed returns a dropped push's absorbed ids to the component's
// pending set so the next delivered push re-announces them.
func (ev *evaluator) requeueAbsorbed(componentID uint64, absorbed []uint64) {
	if len(absorbed) == 0 {
		return
	}
	roots := make([]int, 0, len(ev.comps))
	for root := range ev.comps {
		roots = append(roots, root)
	}
	slices.Sort(roots)
	for _, root := range roots {
		if comp := ev.comps[root]; comp.id == componentID {
			// Sorted so the pending set re-announced by the next push is
			// deterministic no matter how many drops accumulated into it.
			comp.absorbedPending = append(comp.absorbedPending, absorbed...)
			slices.Sort(comp.absorbedPending)
			return
		}
	}
}

// find resolves the union-find root with path halving.
func (ev *evaluator) find(x int) int {
	for ev.parent[x] != x {
		ev.parent[x] = ev.parent[ev.parent[x]]
		x = ev.parent[x]
	}
	return x
}

// union attaches a's root under b's.
func (ev *evaluator) union(a, b int) {
	ra, rb := ev.find(a), ev.find(b)
	if ra != rb {
		ev.parent[ra] = rb
	}
}

// clusterFP fingerprints a cluster's canonical features exactly (float bits,
// not formatted decimals), so equality means bit-identical SF and TF.
func clusterFP(c *cluster.Cluster) string {
	var b strings.Builder
	b.Grow(24 * (len(c.SF) + len(c.TF)))
	for _, e := range c.SF {
		b.WriteString(strconv.FormatUint(uint64(e.Key), 16))
		b.WriteByte(':')
		b.WriteString(strconv.FormatUint(math.Float64bits(float64(e.Sev)), 16))
		b.WriteByte(';')
	}
	b.WriteByte('|')
	for _, e := range c.TF {
		b.WriteString(strconv.FormatUint(uint64(e.Key), 16))
		b.WriteByte(':')
		b.WriteString(strconv.FormatUint(math.Float64bits(float64(e.Sev)), 16))
		b.WriteByte(';')
	}
	return b.String()
}
