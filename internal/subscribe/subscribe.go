// Package subscribe is the standing-query (CEP) layer over the live stream:
// long-lived subscriptions Q(W, T, δs) evaluated incrementally as
// internal/stream closes micro-clusters, instead of on demand against the
// rebuilt forest. Each registered subscription maintains its own macro-cluster
// state; the moment a micro-cluster's arrival changes the subscription's
// significant set — a macro crossing the bound δs·length(T)·N of Definition 5,
// growing, or falling back below it — a Push lands in the subscriber's buffer.
//
// The correctness anchor is exact batch equivalence: replaying the pushes of a
// standing query over any finite canonical stream (see Replay) reconstructs
// precisely the Significant set the batch engine reports for the same
// QueryRequest after Flush + forest rebuild, bit-identical features included.
// That holds by construction, not by approximation — see evaluator.go for the
// component decomposition argument.
//
// Delivery is strictly non-blocking: a slow subscriber never stalls Offer (and
// therefore never stalls stream ingest). A push that finds the subscriber's
// buffer full is counted (atyp_sub_dropped_total, Subscription.Dropped) and
// the next push that does fit carries Gap=true, telling the consumer its
// replayed state may be stale and a batch resync is in order.
package subscribe

import (
	"errors"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"github.com/cpskit/atypical/internal/cluster"
	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/obs"
	"github.com/cpskit/atypical/internal/query"
	"github.com/cpskit/atypical/internal/traffic"
)

// ErrRegistryFull reports that Register would exceed Config.MaxSubscribers.
// The facade's ErrTooManySubscribers aliases it, so callers branch with
// errors.Is at either layer.
var ErrRegistryFull = errors.New("subscribe: subscriber limit reached")

// ErrUnsupportedStrategy reports a strategy standing queries cannot evaluate
// incrementally. Guided is the one rejected case: its red zones come from the
// mutable bottom-up severity index, so a push decided against yesterday's
// zones could disagree with the batch answer computed against today's —
// violating the equivalence anchor this package is built on.
var ErrUnsupportedStrategy = errors.New("subscribe: strategy not supported for standing queries")

// ErrInvalidConfig reports a Config that NewRegistry cannot accept.
var ErrInvalidConfig = errors.New("subscribe: invalid config")

// DefaultBuffer is the per-subscriber push buffer capacity when Config.Buffer
// is unset.
const DefaultBuffer = 64

// Config parameterizes a Registry.
type Config struct {
	// Net is the deployment topology (region membership for the W filter and
	// the significance bound's N).
	Net *traffic.Network
	// Spec is the window spec; PerDay() anchors day assignment and the Pru
	// day-scale bound.
	Spec cps.WindowSpec
	// Options are the integration options the batch engine uses — the
	// evaluator must integrate under the exact same δsim/balance/period or
	// the equivalence anchor breaks.
	Options cluster.IntegrateOptions
	// MaxSubscribers caps Register; 0 or negative means unlimited.
	MaxSubscribers int
	// Buffer is the per-subscriber push buffer capacity; <= 0 selects
	// DefaultBuffer.
	Buffer int
}

// Push is one standing-query notification: the complete current significant
// set of one macro-cluster component. Components are identified by stable
// uint64 ids; when components merge, the surviving id is the smallest and the
// rest are listed in Absorbed. An empty Clusters slice is a retraction — the
// component no longer holds a significant macro. Replay folds a push sequence
// back into the query's full answer.
type Push struct {
	// Seq numbers the pushes of one subscription from 1, without holes on the
	// sender side (a dropped push consumes its Seq; the gap marker on the next
	// delivered push is the consumer's signal).
	Seq uint64
	// Component identifies the macro-cluster component this push describes.
	Component uint64
	// Absorbed lists component ids merged into Component since the last
	// delivered push; the consumer drops their state entries.
	Absorbed []uint64
	// Gap reports that at least one earlier push was dropped at a full
	// buffer: replayed state may be stale until a batch resync.
	Gap bool
	// Ts is the send timestamp (push latency = receive time − Ts).
	Ts time.Time
	// Clusters is the component's current significant set (possibly empty —
	// a retraction). The clusters are immutable; do not mutate.
	Clusters []*cluster.Cluster
}

// Subscription is one registered standing query. Pushes arrive on Pushes();
// the channel is never closed (Done signals teardown instead, so a racing
// Offer can never panic on send).
type Subscription struct {
	id   uint64
	ch   chan Push
	done chan struct{}

	dropped   atomic.Uint64
	delivered atomic.Uint64
	gaps      atomic.Uint64

	// seq and gapPending are guarded by the owning registry's mu.
	seq        uint64
	gapPending bool

	ev *evaluator
}

// ID returns the registry-unique subscription id.
func (s *Subscription) ID() uint64 { return s.id }

// Pushes returns the receive side of the subscription's buffer.
func (s *Subscription) Pushes() <-chan Push { return s.ch }

// Done is closed by Unregister; receivers select on it alongside Pushes.
func (s *Subscription) Done() <-chan struct{} { return s.done }

// Dropped returns how many pushes were dropped at a full buffer. Safe for
// concurrent use.
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

// Delivered returns how many pushes were handed to the subscriber's buffer.
// Safe for concurrent use.
func (s *Subscription) Delivered() uint64 { return s.delivered.Load() }

// Gaps returns how many delivered pushes carried the gap marker — each one
// announces at least one earlier drop. Safe for concurrent use.
func (s *Subscription) Gaps() uint64 { return s.gaps.Load() }

// subObs bundles the registry's pre-resolved metric handles.
type subObs struct {
	active  *obs.Gauge
	pushes  *obs.Counter
	dropped *obs.Counter
	eval    *obs.Histogram
}

// Registry holds the live subscriptions and fans stream-emitted
// micro-clusters out to their evaluators. Register/Unregister are safe from
// any goroutine; Offer is serialized with them internally, so wiring it as a
// stream emit hook (single-writer, like the stream processor itself) needs no
// extra locking.
type Registry struct {
	cfg Config

	mu     sync.Mutex
	subs   map[uint64]*Subscription
	lastID uint64

	obsm atomic.Pointer[subObs]
}

// NewRegistry validates cfg and returns an empty registry.
func NewRegistry(cfg Config) (*Registry, error) {
	if cfg.Net == nil {
		return nil, fmt.Errorf("%w: Config.Net is required", ErrInvalidConfig)
	}
	if cfg.Options.SimThreshold <= 0 {
		return nil, fmt.Errorf("%w: Config.Options.SimThreshold must be positive, got %v", ErrInvalidConfig, cfg.Options.SimThreshold)
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = DefaultBuffer
	}
	return &Registry{cfg: cfg, subs: make(map[uint64]*Subscription)}, nil
}

// SetObserver registers the subscription metric families on r and arms the
// registry; a nil registry disarms it.
func (r *Registry) SetObserver(reg *obs.Registry) {
	if reg == nil {
		r.obsm.Store(nil)
		return
	}
	r.obsm.Store(&subObs{
		active: reg.Gauge("atyp_sub_active",
			"standing-query subscriptions currently registered"),
		pushes: reg.Counter("atyp_sub_pushes_total",
			"standing-query pushes delivered to subscriber buffers"),
		dropped: reg.Counter("atyp_sub_dropped_total",
			"standing-query pushes dropped at full subscriber buffers"),
		eval: reg.Histogram("atyp_sub_eval_seconds",
			"incremental evaluation time per offered micro-cluster, all subscriptions",
			obs.ExpBuckets(1e-6, 4, 12)),
	})
}

// Register adds a standing query and returns its subscription. The query must
// already be resolved (regions expanded, δs defaulted) — the same shape the
// batch engine runs — so the equivalence anchor compares like with like.
// Strategies: All and Pru; Gui returns ErrUnsupportedStrategy (wrapped), and
// anything else ErrUnknownStrategy.
func (r *Registry) Register(q query.Query, strat query.Strategy) (*Subscription, error) {
	switch strat {
	case query.All, query.Pru:
	case query.Gui:
		return nil, fmt.Errorf("%w: Guided red zones track the mutable severity index, which incremental pushes cannot replay", ErrUnsupportedStrategy)
	default:
		return nil, fmt.Errorf("%w %v", query.ErrUnknownStrategy, strat)
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cfg.MaxSubscribers > 0 && len(r.subs) >= r.cfg.MaxSubscribers {
		return nil, fmt.Errorf("%w: %d active", ErrRegistryFull, len(r.subs))
	}
	r.lastID++
	s := &Subscription{
		id:   r.lastID,
		ch:   make(chan Push, r.cfg.Buffer),
		done: make(chan struct{}),
		ev:   newEvaluator(r.cfg, q, strat),
	}
	r.subs[s.id] = s
	if m := r.obsm.Load(); m != nil {
		m.active.Set(float64(len(r.subs)))
	}
	return s, nil
}

// Unregister removes the subscription and closes its Done channel, reporting
// whether the id was registered. The push channel stays open (buffered pushes
// remain readable); Done is the teardown signal.
func (r *Registry) Unregister(id uint64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.subs[id]
	if !ok {
		return false
	}
	delete(r.subs, id)
	close(s.done)
	if m := r.obsm.Load(); m != nil {
		m.active.Set(float64(len(r.subs)))
	}
	return true
}

// Active returns the number of registered subscriptions.
func (r *Registry) Active() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.subs)
}

// Offer feeds one stream-emitted micro-cluster to every subscription,
// delivering whatever pushes the arrival triggers. It never blocks on a
// subscriber: a full buffer drops the push with explicit accounting. Wire it
// as (or into) the stream processor's Emit hook.
func (r *Registry) Offer(c *cluster.Cluster) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.subs) == 0 {
		return
	}
	m := r.obsm.Load()
	start := time.Now()
	for _, s := range r.subs {
		p, ok := s.ev.offer(c)
		if !ok {
			continue
		}
		s.seq++
		p.Seq = s.seq
		p.Ts = time.Now()
		r.deliverLocked(m, s, p)
	}
	if m != nil {
		m.eval.ObserveSince(start)
	}
}

// deliverLocked hands p to the subscriber without ever blocking. Callers hold
// r.mu.
func (r *Registry) deliverLocked(m *subObs, s *Subscription, p Push) {
	p.Gap = s.gapPending
	select {
	case <-s.done:
		// Unregistered under our feet; the evaluator entry is already gone
		// from subs on the next Offer, this push just evaporates.
	case s.ch <- p:
		s.gapPending = false
		s.delivered.Add(1)
		if p.Gap {
			s.gaps.Add(1)
		}
		if m != nil {
			m.pushes.Inc()
		}
	default:
		// Buffer full: drop, count, and mark the gap. The absorbed ids ride
		// back into the component's pending set so the next delivered push
		// re-announces them — without that, the consumer's replay state would
		// keep entries for components that no longer exist.
		s.dropped.Add(1)
		s.gapPending = true
		s.ev.requeueAbsorbed(p.Component, p.Absorbed)
		if m != nil {
			m.dropped.Inc()
		}
	}
}

// Replay folds a subscription's push sequence back into the standing query's
// current answer: per-component significant sets, absorbed components
// dropped. After the stream flushes, Significant() of a gap-free replay
// equals the batch engine's Significant set for the same query — the
// package's correctness anchor.
type Replay struct {
	state map[uint64][]*cluster.Cluster
	// Gaps counts pushes that carried the gap marker; any nonzero value
	// means the state may be stale and a batch resync is needed.
	Gaps int
}

// NewReplay returns an empty replay state.
func NewReplay() *Replay {
	return &Replay{state: make(map[uint64][]*cluster.Cluster)}
}

// Apply folds one push into the state.
func (r *Replay) Apply(p Push) {
	if p.Gap {
		r.Gaps++
	}
	for _, id := range p.Absorbed {
		delete(r.state, id)
	}
	r.state[p.Component] = p.Clusters
}

// Significant returns the union of the per-component significant sets,
// ordered by component id so repeated calls render identically.
func (r *Replay) Significant() []*cluster.Cluster {
	ids := make([]uint64, 0, len(r.state))
	for id := range r.state {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	var out []*cluster.Cluster
	for _, id := range ids {
		out = append(out, r.state[id]...)
	}
	return out
}
