package subscribe

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"time"

	"github.com/cpskit/atypical/internal/cluster"
	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/cube"
	"github.com/cpskit/atypical/internal/forest"
	"github.com/cpskit/atypical/internal/geo"
	"github.com/cpskit/atypical/internal/index"
	"github.com/cpskit/atypical/internal/query"
	"github.com/cpskit/atypical/internal/stream"
	"github.com/cpskit/atypical/internal/traffic"
)

// env is the shared deployment every test evaluates against.
type env struct {
	net       *traffic.Network
	spec      cps.WindowSpec
	neighbors [][]cps.SensorID
	maxGap    int
	opts      cluster.IntegrateOptions
}

func newEnv(sensors int) *env {
	net := traffic.GenerateNetwork(traffic.ScaledConfig(sensors))
	spec := cps.DefaultSpec()
	locs := make([]geo.Point, net.NumSensors())
	for i, s := range net.Sensors {
		locs[i] = s.Loc
	}
	return &env{
		net:       net,
		spec:      spec,
		neighbors: index.NewNeighborIndex(locs, 1.5).NeighborLists(),
		maxGap:    cluster.MaxWindowGap(15*time.Minute, spec.Width),
		opts: cluster.IntegrateOptions{
			SimThreshold: 0.5,
			Balance:      cluster.Arithmetic,
			Period:       cps.Window(spec.PerDay()),
		},
	}
}

func (e *env) registry(t testing.TB, max, buffer int) *Registry {
	t.Helper()
	r, err := NewRegistry(Config{
		Net: e.net, Spec: e.spec, Options: e.opts,
		MaxSubscribers: max, Buffer: buffer,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func (e *env) cityQuery(days int, deltaS float64) query.Query {
	return query.CityQuery(e.net, e.spec, 0, days, deltaS)
}

// randRecords generates a canonical record stream confined to [0, days) days.
func (e *env) randRecords(rng *rand.Rand, n, days int) []cps.Record {
	perDay := e.spec.PerDay()
	recs := make([]cps.Record, 0, n)
	for i := 0; i < n; i++ {
		recs = append(recs, cps.Record{
			Sensor:   cps.SensorID(rng.Intn(e.net.NumSensors())),
			Window:   cps.Window(rng.Intn(days * perDay)),
			Severity: cps.Severity(rng.Intn(4)) + 1,
		})
	}
	return cps.NewRecordSet(recs).Records()
}

func drain(s *Subscription) []Push {
	var out []Push
	for {
		select {
		case p := <-s.Pushes():
			out = append(out, p)
		default:
			return out
		}
	}
}

func sortedFPs(cs []*cluster.Cluster) []string {
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = clusterFP(c)
	}
	sort.Strings(out)
	return out
}

// checkEquivalence runs the package's correctness anchor once: stream the
// records through a processor wired to the registry, then compare the
// replayed push state against the batch engine's answer over a forest built
// from the same emitted micros.
func checkEquivalence(t testing.TB, e *env, recs []cps.Record, days int, deltaS float64, strat query.Strategy) {
	t.Helper()
	reg := e.registry(t, 0, 1<<14)
	q := e.cityQuery(days, deltaS)
	sub, err := reg.Register(q, strat)
	if err != nil {
		t.Fatal(err)
	}

	var emitted []*cluster.Cluster
	var idgen cluster.IDGen
	p, err := stream.New(stream.Config{
		Neighbors: e.neighbors,
		MaxGap:    e.maxGap,
		Emit: func(c *cluster.Cluster) {
			emitted = append(emitted, c)
			reg.Offer(c)
		},
	}, &idgen)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := p.Observe(r); err != nil {
			t.Fatal(err)
		}
	}
	p.Flush()
	if sub.Dropped() != 0 {
		t.Fatalf("equivalence harness dropped %d pushes; grow the buffer", sub.Dropped())
	}

	// Batch rebuild from the stream's own emitted micros, mirroring the
	// facade's IngestClusters day assignment.
	var idgen2 cluster.IDGen
	fst := forest.New(e.spec, &idgen2, e.opts, 30)
	perDay := cps.Window(e.spec.PerDay())
	byDay := make(map[int][]*cluster.Cluster)
	for _, c := range emitted {
		if len(c.TF) == 0 {
			continue
		}
		byDay[int(c.TF[0].Key/perDay)] = append(byDay[int(c.TF[0].Key/perDay)], c)
	}
	cps.ForEachDay(byDay, func(day int, cs []*cluster.Cluster) {
		fst.AppendDay(day, cs)
	})
	engine := &query.Engine{
		Net: e.net, Forest: fst,
		Severity: cube.NewSeverityIndex(e.net, e.spec),
		Gen:      &idgen2,
	}
	res := engine.Run(q, strat)

	rep := NewReplay()
	for _, push := range drain(sub) {
		rep.Apply(push)
	}
	if rep.Gaps != 0 {
		t.Fatalf("gap marker on a drop-free subscription")
	}
	got, want := sortedFPs(rep.Significant()), sortedFPs(res.Significant)
	if len(got) != len(want) {
		t.Fatalf("standing query replayed %d significant clusters, batch %d (strat %v, %d records)",
			len(got), len(want), strat, len(recs))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("significant cluster %d differs from batch (strat %v)", i, strat)
		}
	}
}

// The tentpole's anchor: pushed events equal the batch Run answer after
// flush + rebuild, bit-identical features, across random streams, both
// supported strategies, and several δs operating points.
func TestStandingQueryMatchesBatchRun(t *testing.T) {
	e := newEnv(80)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 8; trial++ {
		days := 1 + trial%3
		n := 200 + rng.Intn(400)
		deltaS := []float64{1e-6, 0.0005, 0.002, 0.01}[trial%4]
		recs := e.randRecords(rng, n, days)
		for _, strat := range []query.Strategy{query.All, query.Pru} {
			checkEquivalence(t, e, recs, days, deltaS, strat)
		}
	}
}

// A standing query scoped to a region subset must match the batch answer for
// the same explicit scope (the W filter mirrors filterTouching).
func TestStandingQueryRegionScope(t *testing.T) {
	e := newEnv(80)
	rng := rand.New(rand.NewSource(11))
	all := e.cityQuery(2, 0.001)
	q := query.Query{Regions: all.Regions[:len(all.Regions)/2], Time: all.Time, DeltaS: all.DeltaS}

	reg := e.registry(t, 0, 1<<14)
	sub, err := reg.Register(q, query.All)
	if err != nil {
		t.Fatal(err)
	}
	var emitted []*cluster.Cluster
	var idgen cluster.IDGen
	p, err := stream.New(stream.Config{
		Neighbors: e.neighbors, MaxGap: e.maxGap,
		Emit: func(c *cluster.Cluster) { emitted = append(emitted, c); reg.Offer(c) },
	}, &idgen)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range e.randRecords(rng, 400, 2) {
		if err := p.Observe(r); err != nil {
			t.Fatal(err)
		}
	}
	p.Flush()

	var idgen2 cluster.IDGen
	fst := forest.New(e.spec, &idgen2, e.opts, 30)
	perDay := cps.Window(e.spec.PerDay())
	byDay := make(map[int][]*cluster.Cluster)
	for _, c := range emitted {
		byDay[int(c.TF[0].Key/perDay)] = append(byDay[int(c.TF[0].Key/perDay)], c)
	}
	cps.ForEachDay(byDay, func(day int, cs []*cluster.Cluster) { fst.AppendDay(day, cs) })
	engine := &query.Engine{Net: e.net, Forest: fst, Severity: cube.NewSeverityIndex(e.net, e.spec), Gen: &idgen2}
	res := engine.Run(q, query.All)

	rep := NewReplay()
	for _, push := range drain(sub) {
		rep.Apply(push)
	}
	got, want := sortedFPs(rep.Significant()), sortedFPs(res.Significant)
	if len(got) != len(want) {
		t.Fatalf("region-scoped standing query: %d significant, batch %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("region-scoped cluster %d differs from batch", i)
		}
	}
}

func TestRegisterLimitAndStrategies(t *testing.T) {
	e := newEnv(30)
	reg := e.registry(t, 2, 0)
	q := e.cityQuery(1, 0.01)
	if _, err := reg.Register(q, query.All); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register(q, query.Pru); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register(q, query.All); !errors.Is(err, ErrRegistryFull) {
		t.Errorf("third Register error = %v, want ErrRegistryFull", err)
	}
	if _, err := reg.Register(q, query.Gui); !errors.Is(err, ErrUnsupportedStrategy) {
		t.Errorf("Guided Register error = %v, want ErrUnsupportedStrategy", err)
	}
	if _, err := reg.Register(q, query.Strategy(99)); !errors.Is(err, query.ErrUnknownStrategy) {
		t.Errorf("bogus strategy error = %v, want ErrUnknownStrategy", err)
	}
	if reg.Active() != 2 {
		t.Errorf("Active = %d, want 2", reg.Active())
	}
}

func TestUnregisterStopsDelivery(t *testing.T) {
	e := newEnv(30)
	reg := e.registry(t, 0, 4)
	sub, err := reg.Register(e.cityQuery(1, 1e-9), query.All)
	if err != nil {
		t.Fatal(err)
	}
	if !reg.Unregister(sub.ID()) {
		t.Fatal("Unregister reported unknown id")
	}
	if reg.Unregister(sub.ID()) {
		t.Error("double Unregister reported success")
	}
	select {
	case <-sub.Done():
	default:
		t.Error("Done not closed after Unregister")
	}
	var g cluster.IDGen
	reg.Offer(cluster.FromRecords(g.Next(), []cps.Record{{Sensor: 0, Window: 1, Severity: 3}}))
	if got := drain(sub); len(got) != 0 {
		t.Errorf("unregistered subscription received %d pushes", len(got))
	}
	if reg.Active() != 0 {
		t.Errorf("Active = %d after Unregister", reg.Active())
	}
}

// Backpressure: a full buffer drops with accounting and the next delivered
// push carries the gap marker — ingest never blocks.
func TestSlowSubscriberDropsWithGapMarker(t *testing.T) {
	e := newEnv(30)
	reg := e.registry(t, 0, 1)
	sub, err := reg.Register(e.cityQuery(1, 1e-9), query.All)
	if err != nil {
		t.Fatal(err)
	}
	var g cluster.IDGen
	// Distinct sensors and windows: each micro is its own component and,
	// with a near-zero δs, its own significant push.
	offer := func(sensor, window int) {
		reg.Offer(cluster.FromRecords(g.Next(), []cps.Record{
			{Sensor: cps.SensorID(sensor), Window: cps.Window(window), Severity: 3},
		}))
	}
	offer(0, 1)  // delivered into the 1-slot buffer
	offer(5, 40) // dropped: buffer full
	if sub.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", sub.Dropped())
	}
	first := drain(sub)
	if len(first) != 1 || first[0].Gap {
		t.Fatalf("first delivery = %+v, want one gap-free push", first)
	}
	offer(9, 80) // delivered; must carry the gap marker
	second := drain(sub)
	if len(second) != 1 || !second[0].Gap {
		t.Fatalf("post-drop delivery = %+v, want one push with Gap", second)
	}
	if second[0].Seq <= first[0].Seq {
		t.Errorf("Seq did not advance across the drop: %d then %d", first[0].Seq, second[0].Seq)
	}
}

// Out-of-scope micros — wrong day range or no region overlap — never touch
// the evaluator state.
func TestScopeFiltering(t *testing.T) {
	e := newEnv(30)
	reg := e.registry(t, 0, 8)
	sub, err := reg.Register(e.cityQuery(1, 1e-9), query.All)
	if err != nil {
		t.Fatal(err)
	}
	perDay := e.spec.PerDay()
	var g cluster.IDGen
	// Day 3 is outside the [0, 1) day scope.
	reg.Offer(cluster.FromRecords(g.Next(), []cps.Record{
		{Sensor: 0, Window: cps.Window(3*perDay + 5), Severity: 9},
	}))
	if got := drain(sub); len(got) != 0 {
		t.Fatalf("out-of-range micro pushed %d times", len(got))
	}
	// Empty region scope: nothing touches W.
	empty, err := reg.Register(query.Query{Regions: []geo.RegionID{}, Time: cps.DayRange(e.spec, 0, 1), DeltaS: 1e-9}, query.All)
	if err != nil {
		t.Fatal(err)
	}
	reg.Offer(cluster.FromRecords(g.Next(), []cps.Record{{Sensor: 1, Window: 2, Severity: 9}}))
	if got := drain(empty); len(got) != 0 {
		t.Fatalf("empty-scope subscription pushed %d times", len(got))
	}
}

func TestReplayAbsorbAndRetract(t *testing.T) {
	a := cluster.FromRecords(1, []cps.Record{{Sensor: 1, Window: 1, Severity: 2}})
	b := cluster.FromRecords(2, []cps.Record{{Sensor: 2, Window: 2, Severity: 3}})
	rep := NewReplay()
	rep.Apply(Push{Seq: 1, Component: 1, Clusters: []*cluster.Cluster{a}})
	rep.Apply(Push{Seq: 2, Component: 3, Clusters: []*cluster.Cluster{b}})
	if len(rep.Significant()) != 2 {
		t.Fatalf("state = %d clusters, want 2", len(rep.Significant()))
	}
	// Component 3 merges into 1; later 1 retracts to empty.
	rep.Apply(Push{Seq: 3, Component: 1, Absorbed: []uint64{3}, Clusters: []*cluster.Cluster{a}})
	if len(rep.Significant()) != 1 {
		t.Fatalf("after absorb state = %d clusters, want 1", len(rep.Significant()))
	}
	rep.Apply(Push{Seq: 4, Component: 1, Gap: true, Clusters: nil})
	if len(rep.Significant()) != 0 {
		t.Fatalf("after retraction state = %d clusters, want 0", len(rep.Significant()))
	}
	if rep.Gaps != 1 {
		t.Errorf("Gaps = %d, want 1", rep.Gaps)
	}
}
