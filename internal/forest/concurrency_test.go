package forest

import (
	"sync"
	"testing"

	"github.com/cpskit/atypical/internal/cluster"
	"github.com/cpskit/atypical/internal/cps"
)

// Readers and writers hammer one forest; the race detector is the oracle,
// and the final state must reflect every write.
func TestForestConcurrentReadersAndWriters(t *testing.T) {
	var g cluster.IDGen
	spec := cps.DefaultSpec()
	f := New(spec, &g, opts(), 30)
	for d := 0; d < 7; d++ {
		f.AddDay(d, []*cluster.Cluster{dayMicro(&g, spec, d, 0, 5)})
	}

	const writers, readers, rounds = 3, 4, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				day := 7 + w*rounds + r
				f.AddDay(day, []*cluster.Cluster{dayMicro(&g, spec, day, 1000*(w+1), 3)})
				f.AppendDay(day, []*cluster.Cluster{dayMicro(&g, spec, day, 2000*(w+1), 2)})
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				f.Day(i % 10)
				f.Days()
				f.Week(i % 3)
				f.Month(0)
				f.MicrosInRange(cps.DayRange(spec, i%5, 3))
				f.IntegratePath(WeekdayWeekendPath)
				f.Stats()
			}
		}()
	}
	wg.Wait()

	if got := f.Stats().Days; got != 7+writers*rounds {
		t.Fatalf("days after concurrent writes = %d, want %d", got, 7+writers*rounds)
	}
	for w := 0; w < writers; w++ {
		for r := 0; r < rounds; r++ {
			day := 7 + w*rounds + r
			if got := len(f.Day(day)); got != 2 {
				t.Fatalf("day %d has %d clusters, want 2 (AddDay + AppendDay)", day, got)
			}
		}
	}
	// Memoized levels computed during the write storm must now agree with a
	// fresh computation over the final state.
	sevOf := func(cs []*cluster.Cluster) cps.Severity {
		var s cps.Severity
		for _, c := range cs {
			s += c.Severity()
		}
		return s
	}
	var microSev cps.Severity
	for _, d := range f.Days() {
		if d/DaysPerWeek == 1 {
			microSev += sevOf(f.Day(d))
		}
	}
	if got := sevOf(f.Week(1)); got != microSev {
		t.Errorf("week 1 severity after storm = %v, want %v", got, microSev)
	}
}

// AppendDay is copy-on-write: a reader's snapshot must not change when the
// day is extended.
func TestAppendDayCopyOnWrite(t *testing.T) {
	var g cluster.IDGen
	spec := cps.DefaultSpec()
	f := New(spec, &g, opts(), 30)
	f.AddDay(0, []*cluster.Cluster{dayMicro(&g, spec, 0, 0, 5)})

	snapshot := f.Day(0)
	wantLen, wantFirst := len(snapshot), snapshot[0]
	f.AppendDay(0, []*cluster.Cluster{dayMicro(&g, spec, 0, 1000, 5)})

	if len(snapshot) != wantLen || snapshot[0] != wantFirst {
		t.Fatal("AppendDay mutated a reader's snapshot")
	}
	if got := len(f.Day(0)); got != wantLen+1 {
		t.Fatalf("day 0 after append = %d clusters, want %d", got, wantLen+1)
	}
}

// Concurrent first touches of the same memo slot coalesce onto one
// integration (singleflight) and all callers observe the same slice.
func TestWeekSingleflight(t *testing.T) {
	f, _ := buildForest(t, 7)
	const callers = 8
	results := make([][]*cluster.Cluster, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = f.Week(0)
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if len(results[i]) != len(results[0]) {
			t.Fatalf("caller %d saw %d clusters, caller 0 saw %d", i, len(results[i]), len(results[0]))
		}
		for j := range results[i] {
			if results[i][j] != results[0][j] {
				t.Fatalf("caller %d cluster %d is a different instance — memo was computed twice", i, j)
			}
		}
	}
}

// The parallel integration path (SetWorkers > 0) preserves the level
// algebra: same cluster count, conserved severity and micro totals as the
// serial path, for every worker count.
func TestForestWorkersEquivalence(t *testing.T) {
	build := func(workers int) *Forest {
		var g cluster.IDGen
		spec := cps.DefaultSpec()
		f := New(spec, &g, cluster.IntegrateOptions{SimThreshold: 0.4, Balance: cluster.Arithmetic}, 14)
		f.SetWorkers(workers)
		for d := 0; d < 14; d++ {
			f.AddDay(d, []*cluster.Cluster{
				dayMicro(&g, spec, d, 0, 5),
				dayMicro(&g, spec, d, 1000, 5),
			})
		}
		return f
	}
	summarize := func(f *Forest) (weeks, months int, sev cps.Severity, micros int) {
		for w := 0; w < 2; w++ {
			weeks += len(f.Week(w))
		}
		for _, c := range f.Month(0) {
			months++
			sev += c.Severity()
			micros += c.Micros
		}
		return
	}
	w0, m0, s0, mi0 := summarize(build(0))
	for _, workers := range []int{1, 4} {
		w, m, s, mi := summarize(build(workers))
		if w != w0 || m != m0 || mi != mi0 {
			t.Fatalf("workers=%d: weeks=%d months=%d micros=%d; serial %d/%d/%d", workers, w, m, mi, w0, m0, mi0)
		}
		if df := float64(s - s0); df > 1e-6 || df < -1e-6 {
			t.Fatalf("workers=%d: severity %v, serial %v", workers, s, s0)
		}
	}
}
