// Package forest implements the atypical forest (Section III-C): a
// collection of hierarchical clustering trees whose leaves are per-day
// micro-clusters and whose internal nodes are macro-clusters integrated
// level by level (day → week → month, plus alternative aggregation paths
// such as weekday/weekend). In practice only the lower levels are
// materialized (Section IV); higher levels are integrated on demand and
// memoized.
package forest

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"github.com/cpskit/atypical/internal/cluster"
	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/storage"
)

// DaysPerWeek is the week rollup width.
const DaysPerWeek = 7

// Forest holds the materialized micro-clusters by day and memoizes
// integrated levels.
type Forest struct {
	spec cps.WindowSpec
	gen  *cluster.IDGen
	opts cluster.IntegrateOptions
	// daysPerMonth fixes the month bucket arithmetic (generated datasets
	// use fixed-length months).
	daysPerMonth int

	days   map[int][]*cluster.Cluster
	weeks  map[int][]*cluster.Cluster
	months map[int][]*cluster.Cluster
}

// New returns an empty forest integrating with opts.
func New(spec cps.WindowSpec, gen *cluster.IDGen, opts cluster.IntegrateOptions, daysPerMonth int) *Forest {
	if daysPerMonth <= 0 {
		panic("forest: daysPerMonth must be positive")
	}
	return &Forest{
		spec:         spec,
		gen:          gen,
		opts:         opts,
		daysPerMonth: daysPerMonth,
		days:         make(map[int][]*cluster.Cluster),
		weeks:        make(map[int][]*cluster.Cluster),
		months:       make(map[int][]*cluster.Cluster),
	}
}

// Options returns the integration options the forest was built with.
func (f *Forest) Options() cluster.IntegrateOptions { return f.opts }

// Spec returns the forest's window spec.
func (f *Forest) Spec() cps.WindowSpec { return f.spec }

// AddDay stores the micro-clusters of one day (leaves of every tree) and
// invalidates the memoized levels that cover it.
func (f *Forest) AddDay(day int, micros []*cluster.Cluster) {
	f.days[day] = micros
	delete(f.weeks, day/DaysPerWeek)
	delete(f.months, day/f.daysPerMonth)
}

// Day returns the micro-clusters of one day (nil when absent).
func (f *Forest) Day(day int) []*cluster.Cluster { return f.days[day] }

// Days returns the stored day indices, ascending.
func (f *Forest) Days() []int {
	out := make([]int, 0, len(f.days))
	for d := range f.days {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}

// MicrosInRange returns every micro-cluster whose day falls inside the
// day-aligned range tr, in day order. The count of returned clusters is the
// I/O measure of Fig. 17(b).
func (f *Forest) MicrosInRange(tr cps.TimeRange) []*cluster.Cluster {
	perDay := cps.Window(f.spec.PerDay())
	var out []*cluster.Cluster
	for _, d := range f.Days() {
		dayStart := cps.Window(d) * perDay
		if dayStart >= tr.From && dayStart < tr.To {
			out = append(out, f.days[d]...)
		}
	}
	return out
}

// Week integrates (and memoizes) the macro-clusters of week w — the
// clustering-tree level above days in Fig. 10.
func (f *Forest) Week(w int) []*cluster.Cluster {
	if cached, ok := f.weeks[w]; ok {
		return cached
	}
	var leaves []*cluster.Cluster
	for d := w * DaysPerWeek; d < (w+1)*DaysPerWeek; d++ {
		leaves = append(leaves, f.days[d]...)
	}
	out := cluster.Integrate(f.gen, leaves, f.opts)
	f.weeks[w] = out
	return out
}

// Month integrates (and memoizes) the macro-clusters of month m from its
// week-level clusters — the multi-level aggregation path day → week →
// month.
func (f *Forest) Month(m int) []*cluster.Cluster {
	if cached, ok := f.months[m]; ok {
		return cached
	}
	firstDay := m * f.daysPerMonth
	lastDay := (m+1)*f.daysPerMonth - 1
	var leaves []*cluster.Cluster
	for w := firstDay / DaysPerWeek; w <= lastDay/DaysPerWeek; w++ {
		leaves = append(leaves, f.Week(w)...)
	}
	out := cluster.Integrate(f.gen, leaves, f.opts)
	f.months[m] = out
	return out
}

// PathFunc maps a day index to an aggregation bucket; ok=false excludes the
// day. Alternative paths (weekday/weekend, by month parity, ...) make up
// the different trees of the forest.
type PathFunc func(day int) (bucket int, ok bool)

// WeekdayWeekendPath buckets weekdays of each week as 2·week and weekend
// days as 2·week+1 — the "integrate the micro-clusters by weekdays and
// weekends" path of Section III-C.
func WeekdayWeekendPath(day int) (int, bool) {
	week := day / DaysPerWeek
	if day%DaysPerWeek < 5 {
		return 2 * week, true
	}
	return 2*week + 1, true
}

// IntegratePath integrates the stored days along an arbitrary aggregation
// path, returning the macro-clusters per bucket. Results are not memoized.
func (f *Forest) IntegratePath(path PathFunc) map[int][]*cluster.Cluster {
	buckets := make(map[int][]*cluster.Cluster)
	for d, micros := range f.days {
		if b, ok := path(d); ok {
			buckets[b] = append(buckets[b], micros...)
		}
	}
	out := make(map[int][]*cluster.Cluster, len(buckets))
	for b, leaves := range buckets {
		out[b] = cluster.Integrate(f.gen, leaves, f.opts)
	}
	return out
}

// Save persists the forest to dir: one cluster file per materialized day,
// plus one per *memoized* week and month — the partially materialized data
// structure of Section IV (micro-clusters and the low-level macro-clusters
// that have been computed; everything else is integrated on demand).
func (f *Forest) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("forest: %w", err)
	}
	write := func(name string, cs []*cluster.Cluster) error {
		path := filepath.Join(dir, name)
		file, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("forest: %w", err)
		}
		if _, err := storage.WriteClusters(file, cs); err != nil {
			file.Close()
			return fmt.Errorf("forest: writing %s: %w", path, err)
		}
		if err := file.Close(); err != nil {
			return fmt.Errorf("forest: %w", err)
		}
		return nil
	}
	for _, d := range f.Days() {
		if err := write(fmt.Sprintf("day-%05d.clu", d), f.days[d]); err != nil {
			return err
		}
	}
	for w, cs := range f.weeks {
		if err := write(fmt.Sprintf("week-%05d.clu", w), cs); err != nil {
			return err
		}
	}
	for m, cs := range f.months {
		if err := write(fmt.Sprintf("month-%05d.clu", m), cs); err != nil {
			return err
		}
	}
	return nil
}

// Load reads a forest previously saved to dir, restoring the materialized
// days and any persisted week/month levels into the memo caches.
func Load(dir string, spec cps.WindowSpec, gen *cluster.IDGen, opts cluster.IntegrateOptions, daysPerMonth int) (*Forest, error) {
	f := New(spec, gen, opts, daysPerMonth)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("forest: %w", err)
	}
	read := func(name string) ([]*cluster.Cluster, error) {
		file, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("forest: %w", err)
		}
		defer file.Close()
		cs, err := storage.ReadClusters(file)
		if err != nil {
			return nil, fmt.Errorf("forest: reading %s: %w", name, err)
		}
		return cs, nil
	}
	for _, e := range entries {
		var idx int
		switch {
		case scans(e.Name(), "day-%d.clu", &idx):
			cs, err := read(e.Name())
			if err != nil {
				return nil, err
			}
			f.days[idx] = cs
		case scans(e.Name(), "week-%d.clu", &idx):
			cs, err := read(e.Name())
			if err != nil {
				return nil, err
			}
			f.weeks[idx] = cs
		case scans(e.Name(), "month-%d.clu", &idx):
			cs, err := read(e.Name())
			if err != nil {
				return nil, err
			}
			f.months[idx] = cs
		}
	}
	return f, nil
}

// scans reports whether name matches the format and stores the index.
func scans(name, format string, idx *int) bool {
	_, err := fmt.Sscanf(name, format, idx)
	return err == nil
}

// Stats summarizes the forest for diagnostics.
type Stats struct {
	Days        int
	MicroTotal  int
	WeeksCached int
	MonthCached int
}

// Stats returns current materialization counts.
func (f *Forest) Stats() Stats {
	s := Stats{Days: len(f.days), WeeksCached: len(f.weeks), MonthCached: len(f.months)}
	for _, m := range f.days {
		s.MicroTotal += len(m)
	}
	return s
}
