// Package forest implements the atypical forest (Section III-C): a
// collection of hierarchical clustering trees whose leaves are per-day
// micro-clusters and whose internal nodes are macro-clusters integrated
// level by level (day → week → month, plus alternative aggregation paths
// such as weekday/weekend). In practice only the lower levels are
// materialized (Section IV); higher levels are integrated on demand and
// memoized.
//
// A Forest is safe for concurrent use: any number of readers (queries,
// on-demand level integration) may run alongside writers (AddDay/AppendDay).
// Memoized levels are computed outside the lock under a singleflight guard —
// concurrent first touches of the same week integrate it once — and a
// version counter discards memos computed against a forest that changed
// underneath them.
package forest

import (
	"context"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/cpskit/atypical/internal/cluster"
	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/faultfs"
	"github.com/cpskit/atypical/internal/obs"
	"github.com/cpskit/atypical/internal/storage"
)

// DaysPerWeek is the week rollup width.
const DaysPerWeek = 7

// Forest holds the materialized micro-clusters by day and memoizes
// integrated levels.
type Forest struct {
	spec cps.WindowSpec
	gen  *cluster.IDGen
	opts cluster.IntegrateOptions
	// daysPerMonth fixes the month bucket arithmetic (generated datasets
	// use fixed-length months).
	daysPerMonth int
	// workers selects the integration path for memoized levels: 0 means the
	// serial cluster.Integrate (byte-compatible with historical output),
	// anything positive the merge-tree cluster.IntegrateParallel on that
	// many goroutines.
	workers atomic.Int32

	mu      sync.RWMutex
	version uint64 // bumped by every write; stale memo computations are discarded
	days    map[int][]*cluster.Cluster
	weeks   map[int][]*cluster.Cluster
	months  map[int][]*cluster.Cluster

	inflightMu sync.Mutex
	inflight   map[memoKey]*inflightCall

	// obsm holds the pre-resolved metric handles (nil = unobserved). An
	// atomic pointer so SetObserver may arm an already-shared forest
	// without racing readers.
	obsm atomic.Pointer[forestObs]
}

// forestObs carries the forest's metric handles, resolved once by
// SetObserver. All handles are nil-safe, so a partially wired struct is
// harmless; a nil *forestObs (the unobserved default) costs one atomic
// load per hook.
type forestObs struct {
	weekHits, weekMisses   *obs.Counter
	monthHits, monthMisses *obs.Counter
	appends                *obs.Counter
	versionBumps           *obs.Counter
	bytesRead              *obs.Counter
	bytesWritten           *obs.Counter
	corrupt                *obs.Counter
}

// memoHit records a level served from the memo cache (or joined onto an
// in-flight computation of it).
func (m *forestObs) memoHit(level byte) {
	if m == nil {
		return
	}
	if level == 'w' {
		m.weekHits.Inc()
	} else {
		m.monthHits.Inc()
	}
}

// memoMiss records a level that had to be integrated.
func (m *forestObs) memoMiss(level byte) {
	if m == nil {
		return
	}
	if level == 'w' {
		m.weekMisses.Inc()
	} else {
		m.monthMisses.Inc()
	}
}

// SetObserver registers the forest's metric families on r and arms the
// hooks: memo hit/miss per level, copy-on-write appends, version bumps,
// and the bytes Save/Load move through storage. A nil registry disarms.
func (f *Forest) SetObserver(r *obs.Registry) {
	if r == nil {
		f.obsm.Store(nil)
		return
	}
	f.obsm.Store(&forestObs{
		weekHits:     r.Counter("atyp_forest_memo_hits_total", "memoized level lookups served from cache", "level", "week"),
		weekMisses:   r.Counter("atyp_forest_memo_misses_total", "memoized level lookups that integrated", "level", "week"),
		monthHits:    r.Counter("atyp_forest_memo_hits_total", "memoized level lookups served from cache", "level", "month"),
		monthMisses:  r.Counter("atyp_forest_memo_misses_total", "memoized level lookups that integrated", "level", "month"),
		appends:      r.Counter("atyp_forest_appends_total", "copy-on-write day appends"),
		versionBumps: r.Counter("atyp_forest_version_bumps_total", "forest writes invalidating memoized levels"),
		bytesRead:    r.Counter("atyp_storage_bytes_read_total", "bytes read loading persisted clusters"),
		bytesWritten: r.Counter("atyp_storage_bytes_written_total", "bytes written persisting clusters"),
		corrupt: r.Counter("atyp_storage_corrupt_total",
			"persisted files that failed integrity checks and were quarantined",
			"src", "forest"),
	})
}

// memoKey names one memoized level slot ('w' = week, 'm' = month).
type memoKey struct {
	level byte
	idx   int
}

// inflightCall is one in-progress level integration other callers wait on.
type inflightCall struct {
	done chan struct{}
	val  []*cluster.Cluster
}

// New returns an empty forest integrating with opts.
func New(spec cps.WindowSpec, gen *cluster.IDGen, opts cluster.IntegrateOptions, daysPerMonth int) *Forest {
	if daysPerMonth <= 0 {
		panic("forest: daysPerMonth must be positive")
	}
	return &Forest{
		spec:         spec,
		gen:          gen,
		opts:         opts,
		daysPerMonth: daysPerMonth,
		days:         make(map[int][]*cluster.Cluster),
		weeks:        make(map[int][]*cluster.Cluster),
		months:       make(map[int][]*cluster.Cluster),
		inflight:     make(map[memoKey]*inflightCall),
	}
}

// Options returns the integration options the forest was built with.
func (f *Forest) Options() cluster.IntegrateOptions { return f.opts }

// Spec returns the forest's window spec.
func (f *Forest) Spec() cps.WindowSpec { return f.spec }

// SetWorkers selects how memoized levels integrate: n == 0 keeps the serial
// path, n > 0 uses the parallel merge tree on n goroutines, n < 0 on one per
// CPU. The parallel result is independent of n (see cluster.IntegrateParallel),
// so this knob trades only wall-clock time.
func (f *Forest) SetWorkers(n int) { f.workers.Store(int32(n)) }

// integrate runs the configured integration path; legacy bridge for
// callers without a context.
func (f *Forest) integrate(leaves []*cluster.Cluster) []*cluster.Cluster {
	return f.integrateCtx(context.Background(), leaves)
}

// integrateCtx runs the configured integration path with ctx threaded into
// the parallel reduction (observability spans, cooperative cancellation).
// The answer must stay correct for the memo layer even when ctx is already
// cancelled, so a cancelled parallel run falls back to the serial path
// rather than returning a partial result.
func (f *Forest) integrateCtx(ctx context.Context, leaves []*cluster.Cluster) []*cluster.Cluster {
	if w := int(f.workers.Load()); w != 0 {
		if out, err := cluster.IntegrateParallelCtx(ctx, f.gen, leaves, f.opts, w); err == nil {
			return out
		}
	}
	return cluster.Integrate(f.gen, leaves, f.opts)
}

// AddDay stores the micro-clusters of one day (leaves of every tree),
// replacing any previous slice, and invalidates the memoized levels that
// cover it.
func (f *Forest) AddDay(day int, micros []*cluster.Cluster) {
	f.mu.Lock()
	f.days[day] = micros
	f.invalidateLocked(day)
	f.mu.Unlock()
}

// AppendDay extends one day's micro-clusters copy-on-write: readers holding
// the previous slice keep a consistent snapshot, because the backing array
// they alias is never written through again.
func (f *Forest) AppendDay(day int, micros []*cluster.Cluster) {
	if len(micros) == 0 {
		return
	}
	f.mu.Lock()
	existing := f.days[day]
	merged := make([]*cluster.Cluster, 0, len(existing)+len(micros))
	merged = append(merged, existing...)
	merged = append(merged, micros...)
	f.days[day] = merged
	f.invalidateLocked(day)
	f.mu.Unlock()
	if m := f.obsm.Load(); m != nil {
		m.appends.Inc()
	}
}

// invalidateLocked drops memos covering day and bumps the version so
// concurrent memo computations from the old state are not stored. Callers
// hold f.mu.
func (f *Forest) invalidateLocked(day int) {
	f.version++
	delete(f.weeks, day/DaysPerWeek)
	delete(f.months, day/f.daysPerMonth)
	if m := f.obsm.Load(); m != nil {
		m.versionBumps.Inc()
	}
}

// Day returns the micro-clusters of one day (nil when absent). The returned
// slice is a snapshot: writers never mutate it in place.
func (f *Forest) Day(day int) []*cluster.Cluster {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.days[day]
}

// Days returns the stored day indices, ascending.
func (f *Forest) Days() []int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.daysLocked()
}

// daysLocked is Days for callers already holding f.mu (either mode).
func (f *Forest) daysLocked() []int {
	out := make([]int, 0, len(f.days))
	for d := range f.days {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}

// MicrosInRange returns every micro-cluster whose day falls inside the
// day-aligned range tr, in day order. The count of returned clusters is the
// I/O measure of Fig. 17(b).
func (f *Forest) MicrosInRange(tr cps.TimeRange) []*cluster.Cluster {
	perDay := cps.Window(f.spec.PerDay())
	f.mu.RLock()
	defer f.mu.RUnlock()
	var out []*cluster.Cluster
	for _, d := range f.daysLocked() {
		dayStart := cps.Window(d) * perDay
		if dayStart >= tr.From && dayStart < tr.To {
			out = append(out, f.days[d]...)
		}
	}
	return out
}

// Week integrates (and memoizes) the macro-clusters of week w — the
// clustering-tree level above days in Fig. 10.
func (f *Forest) Week(w int) []*cluster.Cluster {
	return f.WeekCtx(context.Background(), w)
}

// WeekCtx is Week with introspection: when ctx carries an obs.MemoSink
// (installed by the query EXPLAIN pipeline), the lookup reports whether it
// hit the memo cache and which forest version it saw. Cancellation only
// reroutes the parallel integration path to the serial one, so the answer
// is always identical to Week's.
func (f *Forest) WeekCtx(ctx context.Context, w int) []*cluster.Cluster {
	return f.memoized(ctx, memoKey{'w', w}, func() []*cluster.Cluster {
		f.mu.RLock()
		var leaves []*cluster.Cluster
		for d := w * DaysPerWeek; d < (w+1)*DaysPerWeek; d++ {
			leaves = append(leaves, f.days[d]...)
		}
		f.mu.RUnlock()
		return f.integrateCtx(ctx, leaves)
	})
}

// Month integrates (and memoizes) the macro-clusters of month m from its
// week-level clusters — the multi-level aggregation path day → week →
// month.
func (f *Forest) Month(m int) []*cluster.Cluster {
	return f.MonthCtx(context.Background(), m)
}

// MonthCtx is Month with introspection; see WeekCtx. Week lookups performed
// on behalf of the month integration report through the same sink.
func (f *Forest) MonthCtx(ctx context.Context, m int) []*cluster.Cluster {
	return f.memoized(ctx, memoKey{'m', m}, func() []*cluster.Cluster {
		firstDay := m * f.daysPerMonth
		lastDay := (m+1)*f.daysPerMonth - 1
		var leaves []*cluster.Cluster
		for w := firstDay / DaysPerWeek; w <= lastDay/DaysPerWeek; w++ {
			leaves = append(leaves, f.WeekCtx(ctx, w)...)
		}
		return f.integrateCtx(ctx, leaves)
	})
}

// Version returns the forest's write-version counter — bumped by every
// AddDay/AppendDay, and the join key EXPLAIN records use to tie an answer
// to a specific forest state.
func (f *Forest) Version() uint64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.version
}

// memoMapLocked returns the memo map for a level. Callers hold f.mu.
func (f *Forest) memoMapLocked(level byte) map[int][]*cluster.Cluster {
	if level == 'w' {
		return f.weeks
	}
	return f.months
}

// levelName expands the memo level byte for events and EXPLAIN records.
func levelName(level byte) string {
	if level == 'w' {
		return "week"
	}
	return "month"
}

// memoized returns the cached value for key or computes it once: concurrent
// first callers coalesce onto a single compute (singleflight), and a result
// computed against a forest that changed meanwhile is returned to its
// callers but not cached. Each lookup reports hit/miss both to the metric
// handles (process-wide aggregates) and to any obs.MemoSink on ctx (the
// per-request EXPLAIN path).
func (f *Forest) memoized(ctx context.Context, key memoKey, compute func() []*cluster.Cluster) []*cluster.Cluster {
	f.mu.RLock()
	cached, ok := f.memoMapLocked(key.level)[key.idx]
	ver := f.version
	f.mu.RUnlock()
	emit := func(hit bool) {
		obs.EmitMemo(ctx, obs.MemoEvent{Level: levelName(key.level), Index: key.idx, Hit: hit, Version: ver})
	}
	if ok {
		f.obsm.Load().memoHit(key.level)
		emit(true)
		return cached
	}

	f.inflightMu.Lock()
	if c, ok := f.inflight[key]; ok {
		f.inflightMu.Unlock()
		// Coalescing onto another caller's computation counts as a hit:
		// no integration work is spent on this lookup.
		f.obsm.Load().memoHit(key.level)
		emit(true)
		<-c.done
		return c.val
	}
	c := &inflightCall{done: make(chan struct{})}
	f.inflight[key] = c
	f.inflightMu.Unlock()

	// Re-check the cache: a previous flight may have landed between our miss
	// and our registration.
	f.mu.RLock()
	cached, ok = f.memoMapLocked(key.level)[key.idx]
	f.mu.RUnlock()
	if ok {
		f.obsm.Load().memoHit(key.level)
		emit(true)
		c.val = cached
	} else {
		f.obsm.Load().memoMiss(key.level)
		emit(false)
		c.val = compute()
		f.mu.Lock()
		if f.version == ver {
			f.memoMapLocked(key.level)[key.idx] = c.val
		}
		f.mu.Unlock()
	}

	f.inflightMu.Lock()
	delete(f.inflight, key)
	f.inflightMu.Unlock()
	close(c.done)
	return c.val
}

// PathFunc maps a day index to an aggregation bucket; ok=false excludes the
// day. Alternative paths (weekday/weekend, by month parity, ...) make up
// the different trees of the forest.
type PathFunc func(day int) (bucket int, ok bool)

// WeekdayWeekendPath buckets weekdays of each week as 2·week and weekend
// days as 2·week+1 — the "integrate the micro-clusters by weekdays and
// weekends" path of Section III-C.
func WeekdayWeekendPath(day int) (int, bool) {
	week := day / DaysPerWeek
	if day%DaysPerWeek < 5 {
		return 2 * week, true
	}
	return 2*week + 1, true
}

// IntegratePath integrates the stored days along an arbitrary aggregation
// path, returning the macro-clusters per bucket. Results are not memoized.
// The day snapshot is taken once; integration runs unlocked.
func (f *Forest) IntegratePath(path PathFunc) map[int][]*cluster.Cluster {
	buckets := make(map[int][]*cluster.Cluster)
	f.mu.RLock()
	for _, d := range f.daysLocked() {
		if b, ok := path(d); ok {
			buckets[b] = append(buckets[b], f.days[d]...)
		}
	}
	f.mu.RUnlock()
	out := make(map[int][]*cluster.Cluster, len(buckets))
	for b, leaves := range buckets {
		out[b] = f.integrate(leaves)
	}
	return out
}

// Save persists the forest to dir: one cluster file per materialized day,
// plus one per *memoized* week and month — the partially materialized data
// structure of Section IV (micro-clusters and the low-level macro-clusters
// that have been computed; everything else is integrated on demand). The
// snapshot is taken under the lock; file I/O runs outside it.
//
// Every file is written through the faultfs atomic protocol (temp file →
// fsync → rename → directory fsync), so a crash mid-save leaves each file
// at either its previous or its new contents — never torn — plus at most
// stray *.tmp debris that loads ignore and remove.
func (f *Forest) Save(dir string) error {
	return f.SaveFS(dir, faultfs.OS{})
}

// SaveFS is Save on an explicit filesystem seam; fault-injection tests
// pass a faultfs.Injector to enumerate crash-points.
func (f *Forest) SaveFS(dir string, fsys faultfs.FS) error {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("forest: %w", err)
	}
	type fileSnapshot struct {
		name string
		cs   []*cluster.Cluster
	}
	var files []fileSnapshot
	f.mu.RLock()
	for _, d := range f.daysLocked() {
		files = append(files, fileSnapshot{levelFileName("day", d), f.days[d]})
	}
	for _, w := range sortedKeys(f.weeks) {
		files = append(files, fileSnapshot{levelFileName("week", w), f.weeks[w]})
	}
	for _, m := range sortedKeys(f.months) {
		files = append(files, fileSnapshot{levelFileName("month", m), f.months[m]})
	}
	f.mu.RUnlock()

	m := f.obsm.Load()
	for _, snap := range files {
		path := filepath.Join(dir, snap.name)
		af, err := faultfs.CreateAtomic(fsys, path, 0o644)
		if err != nil {
			return fmt.Errorf("forest: %w", err)
		}
		n, err := storage.WriteClusters(af, snap.cs)
		if err != nil {
			af.Abort()
			return fmt.Errorf("forest: writing %s: %w", path, err)
		}
		if err := af.Commit(); err != nil {
			return fmt.Errorf("forest: writing %s: %w", path, err)
		}
		if m != nil {
			m.bytesWritten.Add(n)
		}
	}
	return nil
}

// LoadOptions configures LoadWith.
type LoadOptions struct {
	// FS is the filesystem seam; nil means the real filesystem.
	FS faultfs.FS
	// Recover quarantines corrupt cluster files (renamed to *.corrupt,
	// counted in atyp_storage_corrupt_total) and loads the healthy
	// remainder, instead of failing the whole load. The quarantines are
	// reported, never silent: the caller decides whether a forest missing
	// those segments is acceptable.
	Recover bool
	// Registry, when non-nil, observes the load (bytes read, corrupt
	// files) and stays attached to the forest.
	Registry *obs.Registry
}

// LoadReport describes what a load had to do.
type LoadReport struct {
	// Quarantined lists cluster files (base names) that failed integrity
	// checks and were renamed aside with the .corrupt suffix.
	Quarantined []string
}

// Load reads a forest previously saved to dir, restoring the materialized
// days and any persisted week/month levels into the memo caches. Any
// corrupt file fails the load with an error wrapping storage.ErrCorrupt.
func Load(dir string, spec cps.WindowSpec, gen *cluster.IDGen, opts cluster.IntegrateOptions, daysPerMonth int) (*Forest, error) {
	return LoadObserved(dir, spec, gen, opts, daysPerMonth, nil)
}

// LoadObserved is Load with an observer attached before any file is read, so
// the bytes-read counter covers the restore itself as well as later Saves.
// A nil registry behaves exactly like Load.
func LoadObserved(dir string, spec cps.WindowSpec, gen *cluster.IDGen, opts cluster.IntegrateOptions, daysPerMonth int, r *obs.Registry) (*Forest, error) {
	f, _, err := LoadWith(dir, spec, gen, opts, daysPerMonth, LoadOptions{Registry: r})
	return f, err
}

// LoadWith reads a saved forest with explicit filesystem and recovery
// options. Stray *.tmp files (crash debris) are removed; *.corrupt files
// (previous quarantines) are ignored.
func LoadWith(dir string, spec cps.WindowSpec, gen *cluster.IDGen, opts cluster.IntegrateOptions, daysPerMonth int, lo LoadOptions) (*Forest, LoadReport, error) {
	fsys := lo.FS
	if fsys == nil {
		fsys = faultfs.OS{}
	}
	f := New(spec, gen, opts, daysPerMonth)
	f.SetObserver(lo.Registry)
	m := f.obsm.Load()
	var report LoadReport
	if err := faultfs.RemoveStrayTemps(fsys, dir); err != nil {
		return nil, report, fmt.Errorf("forest: %w", err)
	}
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, report, fmt.Errorf("forest: %w", err)
	}
	read := func(name string) ([]*cluster.Cluster, error) {
		file, err := faultfs.Open(fsys, filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("forest: %w", err)
		}
		defer file.Close()
		var src io.Reader = file
		cr := &countingReader{r: file}
		if m != nil {
			src = cr
		}
		cs, err := storage.ReadClusters(src)
		if m != nil {
			m.bytesRead.Add(cr.n)
		}
		if err != nil {
			return nil, fmt.Errorf("forest: reading %s: %w", name, err)
		}
		for _, c := range cs {
			c.Hydrate() // storage builds clusters field-wise; prime derived caches before sharing
		}
		return cs, nil
	}
	for _, e := range entries {
		level, idx, ok := parseLevelFileName(e.Name())
		if !ok {
			continue
		}
		cs, err := read(e.Name())
		if err != nil {
			if !lo.Recover {
				return nil, report, err
			}
			if qerr := faultfs.Quarantine(fsys, filepath.Join(dir, e.Name())); qerr != nil {
				return nil, report, fmt.Errorf("forest: quarantining %s: %w", e.Name(), qerr)
			}
			if m != nil {
				m.corrupt.Inc()
			}
			report.Quarantined = append(report.Quarantined, e.Name())
			continue
		}
		switch level {
		case "day":
			f.days[idx] = cs
		case "week":
			f.weeks[idx] = cs
		case "month":
			f.months[idx] = cs
		}
	}
	return f, report, nil
}

// levelFileName names the cluster file of one level index.
func levelFileName(level string, idx int) string {
	return fmt.Sprintf("%s-%05d.clu", level, idx)
}

// parseLevelFileName strictly parses a cluster file name back into its
// level and index. Strictness matters: crash debris ("day-00001.clu.tmp")
// and quarantined files ("day-00001.clu.corrupt") must not load, and the
// previous fmt.Sscanf matching accepted both.
func parseLevelFileName(name string) (level string, idx int, ok bool) {
	rest, found := strings.CutSuffix(name, ".clu")
	if !found {
		return "", 0, false
	}
	for _, lvl := range [...]string{"day", "week", "month"} {
		digits, found := strings.CutPrefix(rest, lvl+"-")
		if !found || digits == "" {
			continue
		}
		n, err := strconv.Atoi(digits)
		if err != nil || n < 0 {
			return "", 0, false
		}
		return lvl, n, true
	}
	return "", 0, false
}

// countingReader tracks bytes read through it for the storage counter.
type countingReader struct {
	r io.Reader
	n int64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += int64(n)
	return n, err
}

// Stats summarizes the forest for diagnostics.
type Stats struct {
	Days        int
	MicroTotal  int
	WeeksCached int
	MonthCached int
}

// Stats returns current materialization counts.
func (f *Forest) Stats() Stats {
	f.mu.RLock()
	defer f.mu.RUnlock()
	s := Stats{Days: len(f.days), WeeksCached: len(f.weeks), MonthCached: len(f.months)}
	for _, m := range f.days {
		s.MicroTotal += len(m)
	}
	return s
}

// sortedKeys returns a map's integer keys in ascending order, pinning
// persistence order against Go's randomized map iteration.
func sortedKeys(m map[int][]*cluster.Cluster) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
