package forest

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/cpskit/atypical/internal/cluster"
	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/faultfs"
	"github.com/cpskit/atypical/internal/obs"
	"github.com/cpskit/atypical/internal/storage"
)

// TestForestSaveCrashMatrix crashes an overwriting Save at every mutating
// filesystem operation and checks every published cluster file stays
// individually valid — a recovering load (and even a strict one, since the
// atomic protocol never publishes torn files) succeeds with nothing to
// quarantine.
func TestForestSaveCrashMatrix(t *testing.T) {
	// The second save overwrites day files and adds a memoized week, so the
	// matrix covers both fresh and replacing renames.
	build := func(days int, memoWeek bool) *Forest {
		f, _ := buildForest(t, days)
		if memoWeek {
			f.Week(0)
		}
		return f
	}

	probe := faultfs.NewInjector(faultfs.OS{})
	probeDir := t.TempDir()
	if err := build(3, false).SaveFS(probeDir, probe); err != nil {
		t.Fatal(err)
	}
	before := probe.MutatingOps()
	if err := build(7, true).SaveFS(probeDir, probe); err != nil {
		t.Fatal(err)
	}
	ops := probe.MutatingOps() - before
	if ops < 8 {
		t.Fatalf("overwriting save took %d mutating ops; expected several per file", ops)
	}

	for k := 1; k <= ops; k++ {
		dir := t.TempDir()
		if err := build(3, false).Save(dir); err != nil {
			t.Fatal(err)
		}
		inj := faultfs.NewInjector(faultfs.OS{})
		inj.ShortWrites(true)
		inj.CrashAt(k)
		if err := build(7, true).SaveFS(dir, inj); err == nil {
			t.Fatalf("crash %d/%d: injected save unexpectedly succeeded", k, ops)
		}

		var g cluster.IDGen
		loaded, report, err := LoadWith(dir, cps.DefaultSpec(), &g, opts(), 30,
			LoadOptions{Recover: true})
		if err != nil {
			t.Fatalf("crash %d/%d: recovering load: %v", k, ops, err)
		}
		if len(report.Quarantined) != 0 {
			t.Fatalf("crash %d/%d: atomic saves should never need quarantine, got %v",
				k, ops, report.Quarantined)
		}
		if days := len(loaded.Days()); days < 3 || days > 7 {
			t.Fatalf("crash %d/%d: loaded %d days, want between old (3) and new (7)", k, ops, days)
		}
		// The strict loader must agree: nothing on disk is torn.
		var g2 cluster.IDGen
		if _, err := Load(dir, cps.DefaultSpec(), &g2, opts(), 30); err != nil {
			t.Fatalf("crash %d/%d: strict load after crash: %v", k, ops, err)
		}
		// Crash debris is cleared by the load, not inherited forever.
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if faultfs.IsTemp(e.Name()) {
				t.Errorf("crash %d/%d: stray temp survived load: %s", k, ops, e.Name())
			}
		}
	}
}

// TestForestLoadQuarantinesFlippedFile bit-flips one cluster file: the
// strict load fails with ErrCorrupt, the recovering load quarantines the
// file, counts it, and serves the healthy remainder.
func TestForestLoadQuarantinesFlippedFile(t *testing.T) {
	f, _ := buildForest(t, 5)
	dir := t.TempDir()
	if err := f.Save(dir); err != nil {
		t.Fatal(err)
	}
	victim := filepath.Join(dir, "day-00002.clu")
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0x20
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}

	var g cluster.IDGen
	if _, err := Load(dir, cps.DefaultSpec(), &g, opts(), 30); !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("strict load of flipped file: err = %v, want ErrCorrupt", err)
	}

	reg := obs.NewRegistry()
	var g2 cluster.IDGen
	loaded, report, err := LoadWith(dir, cps.DefaultSpec(), &g2, opts(), 30,
		LoadOptions{Recover: true, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Quarantined) != 1 || report.Quarantined[0] != "day-00002.clu" {
		t.Fatalf("Quarantined = %v, want [day-00002.clu]", report.Quarantined)
	}
	if _, err := os.Stat(victim + faultfs.CorruptSuffix); err != nil {
		t.Errorf("quarantine file missing: %v", err)
	}
	if days := loaded.Days(); len(days) != 4 {
		t.Fatalf("loaded days = %v, want the 4 healthy ones", days)
	}
	if loaded.Day(2) != nil {
		t.Error("quarantined day still present")
	}
	var exposed strings.Builder
	if _, err := reg.WriteTo(&exposed); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(exposed.String(), "atyp_storage_corrupt_total") ||
		!strings.Contains(exposed.String(), `src="forest"`) {
		t.Errorf("corruption metric not exposed:\n%s", exposed.String())
	}

	// A reload of the quarantined directory is clean: *.corrupt is ignored.
	var g3 cluster.IDGen
	again, report2, err := LoadWith(dir, cps.DefaultSpec(), &g3, opts(), 30,
		LoadOptions{Recover: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(report2.Quarantined) != 0 {
		t.Errorf("second recovery re-quarantined: %v", report2.Quarantined)
	}
	if len(again.Days()) != 4 {
		t.Errorf("second recovery days = %v", again.Days())
	}
}
