package forest

import (
	"testing"

	"github.com/cpskit/atypical/internal/cluster"
	"github.com/cpskit/atypical/internal/cps"
)

func opts() cluster.IntegrateOptions {
	return cluster.IntegrateOptions{SimThreshold: 0.5, Balance: cluster.Arithmetic}
}

// dayMicro builds a micro-cluster recurring at the same sensors each day —
// the recurrence that should integrate across days.
func dayMicro(g *cluster.IDGen, spec cps.WindowSpec, day int, baseSensor int, n int) *cluster.Cluster {
	perDay := cps.Window(spec.PerDay())
	// Distinct sensor groups also get distinct window offsets so that
	// unrelated events are neither spatially nor temporally similar.
	offset := cps.Window(100 + (baseSensor/100)%100)
	var recs []cps.Record
	for k := 0; k < n; k++ {
		recs = append(recs, cps.Record{
			Sensor:   cps.SensorID(baseSensor + k),
			Window:   cps.Window(day)*perDay + offset + cps.Window(k),
			Severity: 4,
		})
	}
	return cluster.FromRecords(g.Next(), recs)
}

func buildForest(t *testing.T, days int) (*Forest, *cluster.IDGen) {
	t.Helper()
	var g cluster.IDGen
	spec := cps.DefaultSpec()
	f := New(spec, &g, opts(), 30)
	for d := 0; d < days; d++ {
		// Two recurring events per day at separated sensor ranges.
		f.AddDay(d, []*cluster.Cluster{
			dayMicro(&g, spec, d, 0, 5),
			dayMicro(&g, spec, d, 1000, 5),
		})
	}
	return f, &g
}

func TestAddDayAndDays(t *testing.T) {
	f, _ := buildForest(t, 3)
	if got := f.Days(); len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Errorf("Days = %v", got)
	}
	if len(f.Day(1)) != 2 {
		t.Errorf("Day(1) = %d clusters", len(f.Day(1)))
	}
	if f.Day(99) != nil {
		t.Error("missing day should be nil")
	}
	st := f.Stats()
	if st.Days != 3 || st.MicroTotal != 6 {
		t.Errorf("Stats = %+v", st)
	}
}

func TestMicrosInRange(t *testing.T) {
	f, _ := buildForest(t, 10)
	spec := cps.DefaultSpec()
	got := f.MicrosInRange(cps.DayRange(spec, 2, 3))
	if len(got) != 6 {
		t.Errorf("MicrosInRange = %d, want 6 (3 days × 2)", len(got))
	}
	if len(f.MicrosInRange(cps.DayRange(spec, 50, 5))) != 0 {
		t.Error("out-of-range should be empty")
	}
}

func TestWeekIntegratesRecurringEvents(t *testing.T) {
	f, _ := buildForest(t, 7)
	week := f.Week(0)
	// The daily micro-clusters are spatially identical; whether days
	// integrate depends on temporal overlap — here the windows are
	// disjoint across days, so spatial sim 1 and temporal sim 0 gives
	// similarity 0.5, not above the 0.5 threshold: clusters stay per-day.
	if len(week) != 14 {
		t.Errorf("week clusters = %d, want 14 (no temporal overlap)", len(week))
	}
	// With a looser threshold, the recurring events collapse to 2.
	var g cluster.IDGen
	spec := cps.DefaultSpec()
	loose := New(spec, &g, cluster.IntegrateOptions{SimThreshold: 0.4, Balance: cluster.Arithmetic}, 30)
	for d := 0; d < 7; d++ {
		loose.AddDay(d, []*cluster.Cluster{
			dayMicro(&g, spec, d, 0, 5),
			dayMicro(&g, spec, d, 1000, 5),
		})
	}
	week = loose.Week(0)
	if len(week) != 2 {
		t.Fatalf("loose week clusters = %d, want 2", len(week))
	}
	for _, c := range week {
		if c.Micros != 7 {
			t.Errorf("weekly macro integrates %d micros, want 7", c.Micros)
		}
	}
}

func TestWeekMemoizationAndInvalidation(t *testing.T) {
	f, g := buildForest(t, 7)
	w1 := f.Week(0)
	w2 := f.Week(0)
	if &w1[0] != &w2[0] {
		t.Error("Week should memoize")
	}
	// Adding a day to week 0 invalidates the cache.
	spec := cps.DefaultSpec()
	f.AddDay(3, []*cluster.Cluster{dayMicro(g, spec, 3, 2000, 3)})
	w3 := f.Week(0)
	total := 0
	for _, c := range w3 {
		total += c.Micros
	}
	if total != 13 { // 6 days × 2 + 1 replaced day × 1
		t.Errorf("after invalidation micros = %d, want 13", total)
	}
}

func TestMonthBuildsOnWeeks(t *testing.T) {
	var g cluster.IDGen
	spec := cps.DefaultSpec()
	f := New(spec, &g, cluster.IntegrateOptions{SimThreshold: 0.3, Balance: cluster.Arithmetic}, 14)
	for d := 0; d < 14; d++ {
		f.AddDay(d, []*cluster.Cluster{dayMicro(&g, spec, d, 0, 5)})
	}
	month := f.Month(0)
	if len(month) != 1 {
		t.Fatalf("month clusters = %d, want 1", len(month))
	}
	if month[0].Micros != 14 {
		t.Errorf("month integrates %d micros, want 14", month[0].Micros)
	}
	// Weeks are cached as a side effect.
	if f.Stats().WeeksCached != 2 {
		t.Errorf("weeks cached = %d", f.Stats().WeeksCached)
	}
}

func TestSeverityConservedAcrossLevels(t *testing.T) {
	f, _ := buildForest(t, 14)
	var microSev, weekSev cps.Severity
	for d := 0; d < 14; d++ {
		for _, c := range f.Day(d) {
			microSev += c.Severity()
		}
	}
	for w := 0; w < 2; w++ {
		for _, c := range f.Week(w) {
			weekSev += c.Severity()
		}
	}
	if microSev != weekSev {
		t.Errorf("severity not conserved: micro %v, week %v", microSev, weekSev)
	}
}

func TestWeekdayWeekendPath(t *testing.T) {
	// Days 0-4 are weekdays of week 0, 5-6 weekend, 7-11 weekdays of week 1.
	if b, ok := WeekdayWeekendPath(3); !ok || b != 0 {
		t.Errorf("day 3 -> %d", b)
	}
	if b, ok := WeekdayWeekendPath(5); !ok || b != 1 {
		t.Errorf("day 5 -> %d", b)
	}
	if b, ok := WeekdayWeekendPath(8); !ok || b != 2 {
		t.Errorf("day 8 -> %d", b)
	}
}

func TestIntegratePath(t *testing.T) {
	f, _ := buildForest(t, 7)
	buckets := f.IntegratePath(WeekdayWeekendPath)
	if len(buckets) != 2 {
		t.Fatalf("buckets = %d, want 2 (weekday + weekend)", len(buckets))
	}
	microCount := 0
	for _, cs := range buckets {
		for _, c := range cs {
			microCount += c.Micros
		}
	}
	if microCount != 14 {
		t.Errorf("path covers %d micros, want 14", microCount)
	}
	// Excluding days via ok=false drops them.
	onlyDayZero := f.IntegratePath(func(d int) (int, bool) { return 0, d == 0 })
	count := 0
	for _, cs := range onlyDayZero {
		for _, c := range cs {
			count += c.Micros
		}
	}
	if count != 2 {
		t.Errorf("filtered path covers %d micros, want 2", count)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	f, _ := buildForest(t, 5)
	dir := t.TempDir()
	if err := f.Save(dir); err != nil {
		t.Fatal(err)
	}
	var g2 cluster.IDGen
	loaded, err := Load(dir, cps.DefaultSpec(), &g2, opts(), 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Days()) != 5 {
		t.Fatalf("loaded days = %d", len(loaded.Days()))
	}
	for _, d := range loaded.Days() {
		orig, got := f.Day(d), loaded.Day(d)
		if len(orig) != len(got) {
			t.Fatalf("day %d: %d vs %d clusters", d, len(orig), len(got))
		}
		for i := range orig {
			if orig[i].Severity() != got[i].Severity() {
				t.Errorf("day %d cluster %d severity mismatch", d, i)
			}
		}
	}
}

func TestLoadMissingDir(t *testing.T) {
	var g cluster.IDGen
	if _, err := Load("/nonexistent/forest", cps.DefaultSpec(), &g, opts(), 30); err == nil {
		t.Error("missing dir should error")
	}
}

func TestNewPanicsOnBadMonth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	var g cluster.IDGen
	New(cps.DefaultSpec(), &g, opts(), 0)
}

func TestSaveLoadMemoizedLevels(t *testing.T) {
	f, _ := buildForest(t, 14)
	// Memoize a week and the month before saving.
	week0 := f.Week(0)
	dir := t.TempDir()
	if err := f.Save(dir); err != nil {
		t.Fatal(err)
	}
	var g2 cluster.IDGen
	loaded, err := Load(dir, cps.DefaultSpec(), &g2, opts(), 30)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Stats().WeeksCached != 1 {
		t.Fatalf("loaded weeks cached = %d, want 1", loaded.Stats().WeeksCached)
	}
	// The cached week is served without re-integration and matches.
	got := loaded.Week(0)
	if len(got) != len(week0) {
		t.Fatalf("loaded week clusters = %d, want %d", len(got), len(week0))
	}
	var wantSev, gotSev cps.Severity
	for i := range week0 {
		wantSev += week0[i].Severity()
		gotSev += got[i].Severity()
	}
	if wantSev != gotSev {
		t.Errorf("loaded week severity %v, want %v", gotSev, wantSev)
	}
	// Un-memoized week 1 is still computable from the loaded days.
	if len(loaded.Week(1)) == 0 {
		t.Error("week 1 not recomputable after load")
	}
}
