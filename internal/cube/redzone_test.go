package cube

import (
	"testing"

	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/geo"
	"github.com/cpskit/atypical/internal/traffic"
)

// redzoneFixture builds an index where one region passes the bound alone,
// one district passes only in aggregate, and everything else is quiet.
func redzoneFixture(t *testing.T) (*SeverityIndex, *traffic.Network, []geo.RegionID, cps.TimeRange) {
	t.Helper()
	net := traffic.GenerateNetwork(traffic.ScaledConfig(300))
	spec := cps.DefaultSpec()
	idx := NewSeverityIndex(net, spec)
	regions := allRegions(net)
	return idx, net, regions, cps.DayRange(spec, 0, 1)
}

// loadRegion adds total severity `sev` spread over the region's sensors.
func loadRegion(t *testing.T, idx *SeverityIndex, net *traffic.Network, r geo.RegionID, sev cps.Severity) {
	t.Helper()
	sensors := net.SensorsInRegion(r)
	if len(sensors) == 0 {
		t.Skipf("region %d has no sensors", r)
	}
	var recs []cps.Record
	remaining := sev
	w := cps.Window(0)
	for remaining > 0 {
		chunk := cps.Severity(5)
		if chunk > remaining {
			chunk = remaining
		}
		recs = append(recs, cps.Record{Sensor: sensors[0], Window: w, Severity: chunk})
		remaining -= chunk
		w++
		if int(w) >= 288 {
			t.Fatalf("severity %v does not fit one day on one sensor", sev)
		}
	}
	idx.Add(recs)
}

func TestGuidedRedZonesRegionLevel(t *testing.T) {
	idx, net, regions, tr := redzoneFixture(t)
	// Bound: δs·288·N. Pick δs so the bound is 288 severity-min.
	n := net.NumSensors()
	deltaS := 1.0 / float64(n)
	var target geo.RegionID = -1
	for _, r := range regions {
		if len(net.SensorsInRegion(r)) > 0 {
			target = r
			break
		}
	}
	loadRegion(t, idx, net, target, 400) // above the 288 bound
	zones := idx.GuidedRedZones(regions, tr, deltaS, n)
	if len(zones) != 1 || zones[0] != target {
		t.Errorf("zones = %v, want [%d]", zones, target)
	}
}

func TestGuidedRedZonesDistrictFallback(t *testing.T) {
	idx, net, regions, tr := redzoneFixture(t)
	n := net.NumSensors()
	deltaS := 1.0 / float64(n) // bound = 288

	// Find a district with at least two populated regions and load each
	// below the bound but jointly above it.
	byDistrict := make(map[int][]geo.RegionID)
	for _, r := range regions {
		if len(net.SensorsInRegion(r)) > 0 {
			d := net.Grid.Region(r).District
			byDistrict[d] = append(byDistrict[d], r)
		}
	}
	var members []geo.RegionID
	for _, m := range byDistrict {
		if len(m) >= 2 {
			members = m[:2]
			break
		}
	}
	if members == nil {
		t.Skip("no district with two populated regions")
	}
	loadRegion(t, idx, net, members[0], 200)
	loadRegion(t, idx, net, members[1], 150) // sum 350 >= 288, each < 288

	zones := idx.GuidedRedZones(regions, tr, deltaS, n)
	found := map[geo.RegionID]bool{}
	for _, z := range zones {
		found[z] = true
	}
	if !found[members[0]] || !found[members[1]] {
		t.Errorf("district fallback should keep both loaded regions, got %v", zones)
	}
	// Fair share: unloaded regions of the same district stay out.
	for _, z := range zones {
		if z != members[0] && z != members[1] {
			t.Errorf("unloaded region %d marked red", z)
		}
	}
}

func TestGuidedRedZonesEmptyWhenQuiet(t *testing.T) {
	idx, net, regions, tr := redzoneFixture(t)
	n := net.NumSensors()
	loadRegion(t, idx, net, regions[0], 5)
	zones := idx.GuidedRedZones(regions, tr, 0.5, n) // absurdly high bound
	if len(zones) != 0 {
		t.Errorf("zones = %v, want none", zones)
	}
}

func TestGuidedRedZonesSupersetOfRegionLevel(t *testing.T) {
	// Whatever the data, region-level red zones are always included.
	net := testNet(t)
	spec := cps.DefaultSpec()
	idx := NewSeverityIndex(net, spec)
	idx.Add(randomRecords(net, 3000, 11, 3))
	regions := allRegions(net)
	tr := cps.DayRange(spec, 0, 3)
	n := net.NumSensors()
	for _, deltaS := range []float64{0.0001, 0.001, 0.01} {
		plain := idx.RedZones(regions, tr, deltaS, n)
		guided := idx.GuidedRedZones(regions, tr, deltaS, n)
		set := map[geo.RegionID]bool{}
		for _, z := range guided {
			set[z] = true
		}
		for _, z := range plain {
			if !set[z] {
				t.Errorf("δs=%v: region-level zone %d missing from guided zones", deltaS, z)
			}
		}
	}
}
