package cube_test

import (
	"context"
	"sync"
	"testing"

	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/cube"
	"github.com/cpskit/atypical/internal/geo"
)

// allRegions enumerates every grid region id.
func allRegions(g *geo.Grid) []geo.RegionID {
	out := make([]geo.RegionID, 0, g.NumRegions())
	for _, r := range g.Regions() {
		out = append(out, r.ID)
	}
	return out
}

// daySlices splits records into ordered per-day slices — the sharding unit
// of SeverityIndex.AddDays.
func daySlices(spec cps.WindowSpec, recs []cps.Record) [][]cps.Record {
	byDay := cps.NewRecordSet(recs).SplitByDay(spec)
	var out [][]cps.Record
	cps.ForEachDay(byDay, func(_ int, day []cps.Record) {
		out = append(out, day)
	})
	return out
}

// The day-sharded parallel build must be bit-identical to the serial one:
// every day's records stay in one shard, so every cell accumulates in the
// same order as the per-day serial loop.
func TestAddDaysBitIdenticalToSerial(t *testing.T) {
	net := detNet()
	spec := cps.DefaultSpec()
	recs := detRecords(net, 5000, 31, 7)
	days := daySlices(spec, recs)

	serial := cube.NewSeverityIndex(net, spec)
	for _, day := range days {
		serial.Add(day)
	}

	regions := allRegions(net.Grid)
	ranges := []cps.TimeRange{
		cps.DayRange(spec, 0, 7),
		cps.DayRange(spec, 2, 1),
		{From: 5, To: cps.Window(3*spec.PerDay() + 17)}, // ragged edges
	}
	for _, workers := range []int{1, 2, 8} {
		parIdx := cube.NewSeverityIndex(net, spec)
		if err := parIdx.AddDays(context.Background(), days, workers); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for _, r := range regions {
			for _, tr := range ranges {
				got, want := parIdx.F(r, tr), serial.F(r, tr)
				if float64(got) != float64(want) { //atyplint:ignore floatcmp the test asserts bit-identity of the sharded build
					t.Fatalf("workers=%d region=%d tr=%v: F=%v, serial %v", workers, r, tr, got, want)
				}
			}
		}
	}
}

// Readers run while AddDays ingests; the race detector is the oracle, and
// the final totals must include every record.
func TestSeverityIndexConcurrentReadDuringAdd(t *testing.T) {
	net := detNet()
	spec := cps.DefaultSpec()
	recs := detRecords(net, 4000, 7, 7)
	days := daySlices(spec, recs)
	regions := allRegions(net.Grid)
	tr := cps.DayRange(spec, 0, 7)

	x := cube.NewSeverityIndex(net, spec)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				x.FTotal(regions, tr)
				x.RedZones(regions, tr, 0.01, net.NumSensors())
				x.GuidedRedZones(regions, tr, 0.01, net.NumSensors())
			}
		}()
	}
	if err := x.AddDays(context.Background(), days, 4); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	want := cube.FScan(net, recs, regions, tr)
	if got := x.FTotal(regions, tr); !severityApproxEq(got, want) {
		t.Fatalf("FTotal after concurrent ingest = %v, want %v", got, want)
	}
}

func TestSeverityIndexReset(t *testing.T) {
	net := detNet()
	spec := cps.DefaultSpec()
	recs := detRecords(net, 500, 5, 3)
	x := cube.NewSeverityIndex(net, spec)
	x.Add(recs)
	tr := cps.DayRange(spec, 0, 3)
	if x.FTotal(allRegions(net.Grid), tr) == 0 {
		t.Fatal("fixture produced no severity; reset check is vacuous")
	}
	x.Reset()
	if got := x.FTotal(allRegions(net.Grid), tr); got != 0 {
		t.Fatalf("FTotal after Reset = %v, want 0", got)
	}
}

func TestAddDaysCancelled(t *testing.T) {
	net := detNet()
	spec := cps.DefaultSpec()
	days := daySlices(spec, detRecords(net, 500, 5, 3))
	x := cube.NewSeverityIndex(net, spec)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := x.AddDays(ctx, days, 4); err == nil {
		t.Fatal("cancelled AddDays should return the context error")
	}
	if got := x.FTotal(allRegions(net.Grid), cps.DayRange(spec, 0, 3)); got != 0 {
		t.Fatalf("cancelled AddDays ingested partial data: FTotal=%v", got)
	}
}

func severityApproxEq(a, b cps.Severity) bool {
	d := float64(a - b)
	if d < 0 {
		d = -d
	}
	s := float64(a)
	if s < 0 {
		s = -s
	}
	if s < 1 {
		s = 1
	}
	return d <= 1e-6*s
}

