package cube

import (
	"fmt"
	"sort"

	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/geo"
)

// This file provides the OLAP-style read API over a built CubeView: the
// slice/dice/roll-up operations the bottom-up baseline answers directly
// (Section II-A), used by dashboards and by Example 2-style comparisons.

// Cell is one materialized cube cell with its aggregated severity.
type Cell struct {
	Key CellKey
	Sev cps.Severity
}

// Slice returns every cell of the level pair whose temporal key lies in
// [fromT, toT), ascending by (spatial, temporal) key. A full-range slice
// enumerates the level.
func (cv *CubeView) Slice(lp LevelPair, fromT, toT int64) []Cell {
	m, ok := cv.cells[lp]
	if !ok {
		return nil
	}
	out := make([]Cell, 0, len(m))
	for k, v := range m {
		if k.Temporal >= fromT && k.Temporal < toT {
			out = append(out, Cell{Key: k, Sev: v})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key.Spatial != out[j].Key.Spatial {
			return out[i].Key.Spatial < out[j].Key.Spatial
		}
		return out[i].Key.Temporal < out[j].Key.Temporal
	})
	return out
}

// Dice returns the cells restricted on both dimensions.
func (cv *CubeView) Dice(lp LevelPair, spatial []int32, fromT, toT int64) []Cell {
	want := make(map[int32]bool, len(spatial))
	for _, s := range spatial {
		want[s] = true
	}
	var out []Cell
	for _, c := range cv.Slice(lp, fromT, toT) {
		if want[c.Key.Spatial] {
			out = append(out, c)
		}
	}
	return out
}

// RollupTemporal aggregates a level pair's cells over the whole time axis,
// returning total severity per spatial key, ascending.
func (cv *CubeView) RollupTemporal(lp LevelPair) []Cell {
	m, ok := cv.cells[lp]
	if !ok {
		return nil
	}
	agg := make(map[int32]cps.Severity)
	for k, v := range m {
		agg[k.Spatial] += v
	}
	out := make([]Cell, 0, len(agg))
	for s, v := range agg {
		out = append(out, Cell{Key: CellKey{Spatial: s}, Sev: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key.Spatial < out[j].Key.Spatial })
	return out
}

// RollupSpatial aggregates over the whole spatial axis, returning total
// severity per temporal key, ascending.
func (cv *CubeView) RollupSpatial(lp LevelPair) []Cell {
	m, ok := cv.cells[lp]
	if !ok {
		return nil
	}
	agg := make(map[int64]cps.Severity)
	for k, v := range m {
		agg[k.Temporal] += v
	}
	out := make([]Cell, 0, len(agg))
	for t, v := range agg {
		out = append(out, Cell{Key: CellKey{Temporal: t}, Sev: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key.Temporal < out[j].Key.Temporal })
	return out
}

// TopCells returns the k highest-severity cells of a level pair, descending
// by severity (ties ascending by key) — the "red zone" style ranking the
// bottom-up model supports (Example 2's tagged regions).
func (cv *CubeView) TopCells(lp LevelPair, k int) []Cell {
	m, ok := cv.cells[lp]
	if !ok || k <= 0 {
		return nil
	}
	out := make([]Cell, 0, len(m))
	for key, v := range m {
		out = append(out, Cell{Key: key, Sev: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Sev > out[j].Sev {
			return true
		}
		if out[i].Sev < out[j].Sev {
			return false
		}
		if out[i].Key.Spatial != out[j].Key.Spatial {
			return out[i].Key.Spatial < out[j].Key.Spatial
		}
		return out[i].Key.Temporal < out[j].Key.Temporal
	})
	if k > len(out) {
		k = len(out)
	}
	return out[:k]
}

// RegionSeverity answers F(region, [fromDay, toDay)) from the (region, day)
// level — the Equation 1 aggregate the red-zone computation builds on.
// Returns an error when the level is not materialized.
func (cv *CubeView) RegionSeverity(region geo.RegionID, fromDay, toDay int64) (cps.Severity, error) {
	lp := LevelPair{ByRegion, ByDay}
	m, ok := cv.cells[lp]
	if !ok {
		return 0, fmt.Errorf("cube: level %v/%v not materialized", lp.S, lp.T)
	}
	var total cps.Severity
	for d := fromDay; d < toDay; d++ {
		total += m[CellKey{Spatial: int32(region), Temporal: d}]
	}
	return total, nil
}
