package cube

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/detect"
	"github.com/cpskit/atypical/internal/geo"
	"github.com/cpskit/atypical/internal/traffic"
)

func testNet(t testing.TB) *traffic.Network {
	t.Helper()
	return traffic.GenerateNetwork(traffic.ScaledConfig(300))
}

func randomRecords(net *traffic.Network, n int, seed int64, days int) []cps.Record {
	rng := rand.New(rand.NewSource(seed))
	spec := cps.DefaultSpec()
	recs := make([]cps.Record, n)
	for i := range recs {
		recs[i] = cps.Record{
			Sensor:   cps.SensorID(rng.Intn(net.NumSensors())),
			Window:   cps.Window(rng.Intn(days * spec.PerDay())),
			Severity: cps.Severity(rng.Intn(5)) + 1,
		}
	}
	return cps.NewRecordSet(recs).Records()
}

func allRegions(net *traffic.Network) []geo.RegionID {
	regions := make([]geo.RegionID, 0, net.Grid.NumRegions())
	for _, r := range net.Grid.Regions() {
		regions = append(regions, r.ID)
	}
	return regions
}

func TestSeverityIndexMatchesScan(t *testing.T) {
	net := testNet(t)
	spec := cps.DefaultSpec()
	recs := randomRecords(net, 3000, 5, 10)
	idx := NewSeverityIndex(net, spec)
	idx.Add(recs)

	regions := allRegions(net)
	ranges := []cps.TimeRange{
		cps.DayRange(spec, 0, 10),                        // everything
		cps.DayRange(spec, 2, 3),                         // day-aligned middle
		{From: 100, To: 500},                             // ragged, inside day 0-1
		{From: 100, To: cps.Window(5*spec.PerDay() + 7)}, // ragged across days
	}
	sample := regions
	if len(sample) > 40 {
		sample = sample[:40]
	}
	for _, tr := range ranges {
		for _, r := range sample {
			got := idx.F(r, tr)
			want := FScan(net, recs, []geo.RegionID{r}, tr)
			if !sevEq(got, want) {
				t.Fatalf("F(region %d, %+v) = %v, want %v", r, tr, got, want)
			}
		}
		got := idx.FTotal(regions, tr)
		want := FScan(net, recs, regions, tr)
		if !sevEq(got, want) {
			t.Fatalf("FTotal(%+v) = %v, want %v", tr, got, want)
		}
	}
}

func TestSeverityIndexEmptyRange(t *testing.T) {
	net := testNet(t)
	idx := NewSeverityIndex(net, cps.DefaultSpec())
	idx.Add(randomRecords(net, 100, 1, 2))
	if got := idx.F(0, cps.TimeRange{From: 5, To: 5}); got != 0 {
		t.Errorf("empty range F = %v", got)
	}
}

// Property 4: F is distributive — any partition of the time range sums to
// the whole.
func TestFDistributiveProperty(t *testing.T) {
	net := testNet(t)
	spec := cps.DefaultSpec()
	recs := randomRecords(net, 1500, 9, 6)
	idx := NewSeverityIndex(net, spec)
	idx.Add(recs)
	regions := allRegions(net)
	whole := cps.DayRange(spec, 0, 6)

	f := func(cutRaw uint16) bool {
		cut := whole.From + cps.Window(int(cutRaw)%whole.Len())
		left := cps.TimeRange{From: whole.From, To: cut}
		right := cps.TimeRange{From: cut, To: whole.To}
		sum := idx.FTotal(regions, left) + idx.FTotal(regions, right)
		return sevEq(sum, idx.FTotal(regions, whole))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestRedZonesBound(t *testing.T) {
	net := testNet(t)
	spec := cps.DefaultSpec()
	idx := NewSeverityIndex(net, spec)

	// Put heavy severity into one region, light into another.
	var heavy, light geo.RegionID = -1, -1
	for _, r := range net.Grid.Regions() {
		if len(net.SensorsInRegion(r.ID)) > 0 {
			if heavy == -1 {
				heavy = r.ID
			} else if light == -1 && r.ID != heavy {
				light = r.ID
				break
			}
		}
	}
	if heavy == -1 || light == -1 {
		t.Skip("not enough populated regions")
	}
	hs := net.SensorsInRegion(heavy)[0]
	ls := net.SensorsInRegion(light)[0]
	var recs []cps.Record
	for w := cps.Window(0); w < 200; w++ {
		recs = append(recs, cps.Record{Sensor: hs, Window: w, Severity: 5})
	}
	recs = append(recs, cps.Record{Sensor: ls, Window: 0, Severity: 1})
	idx.Add(recs)

	tr := cps.DayRange(spec, 0, 1)
	// Bound chosen so heavy (1000) passes and light (1) fails:
	// δs·288·N ≤ 1000 with N=10 → δs = 0.3 gives bound 864.
	zones := idx.RedZones([]geo.RegionID{heavy, light}, tr, 0.3, 10)
	if len(zones) != 1 || zones[0] != heavy {
		t.Errorf("RedZones = %v, want [%d]", zones, heavy)
	}
	// A tiny threshold admits both.
	zones = idx.RedZones([]geo.RegionID{heavy, light}, tr, 0.000001, 10)
	if len(zones) != 2 {
		t.Errorf("loose RedZones = %v, want both", zones)
	}
}

// Property 5 at index level: a region below the bound has F < bound, so no
// subset of its records can reach the bound either.
func TestRedZoneSafetyProperty(t *testing.T) {
	net := testNet(t)
	spec := cps.DefaultSpec()
	recs := randomRecords(net, 2000, 3, 5)
	idx := NewSeverityIndex(net, spec)
	idx.Add(recs)
	regions := allRegions(net)
	tr := cps.DayRange(spec, 0, 5)
	n := net.NumSensors()

	f := func(dsRaw uint8) bool {
		deltaS := float64(dsRaw%20+1) / 10000
		bound := cps.Severity(deltaS * float64(tr.Len()) * float64(n))
		zones := idx.RedZones(regions, tr, deltaS, n)
		zoneSet := make(map[geo.RegionID]bool)
		for _, z := range zones {
			zoneSet[z] = true
		}
		for _, r := range regions {
			if zoneSet[r] {
				if idx.F(r, tr) < bound {
					return false
				}
			} else if idx.F(r, tr) >= bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCubeViewMCAggregation(t *testing.T) {
	net := testNet(t)
	spec := cps.DefaultSpec()
	cv := NewCubeView(net, spec, 30, nil)
	s := cps.SensorID(0)
	cv.AddRecord(cps.Record{Sensor: s, Window: 0, Severity: 3})
	cv.AddRecord(cps.Record{Sensor: s, Window: 1, Severity: 2})  // same hour
	cv.AddRecord(cps.Record{Sensor: s, Window: 13, Severity: 4}) // hour 1

	hourly, ok := cv.Get(LevelPair{BySensor, ByHour}, CellKey{Spatial: int32(s), Temporal: 0})
	if !ok || hourly != 5 {
		t.Errorf("sensor-hour cell = %v, %v", hourly, ok)
	}
	daily, ok := cv.Get(LevelPair{ByCity, ByDay}, CellKey{Spatial: 0, Temporal: 0})
	if !ok || daily != 9 {
		t.Errorf("city-day cell = %v, %v", daily, ok)
	}
	if cv.ReadingsScanned != 3 {
		t.Errorf("scanned = %d", cv.ReadingsScanned)
	}
	if cv.TotalCells() == 0 || cv.SizeBytes() != int64(cv.TotalCells())*20 {
		t.Error("size accounting broken")
	}
}

func TestCubeViewOCIsLargerThanMC(t *testing.T) {
	net := traffic.GenerateNetwork(traffic.ScaledConfig(150))
	spec := cps.DefaultSpec()
	oc := NewCubeView(net, spec, 30, nil)
	mc := NewCubeView(net, spec, 30, nil)

	// One day of readings: a few atypical, the rest free-flow.
	atyp := map[cps.Window]cps.SensorID{10: 3, 11: 3, 12: 4}
	for w := cps.Window(0); w < cps.Window(spec.PerDay()); w++ {
		for s := 0; s < net.NumSensors(); s++ {
			v := detect.FreeflowMPH
			if as, ok := atyp[w]; ok && as == cps.SensorID(s) {
				v = 25 // severity 3
			}
			oc.AddReading(cps.Reading{Sensor: cps.SensorID(s), Window: w, Value: v})
			if v < detect.ThresholdMPH {
				mc.AddRecord(cps.Record{Sensor: cps.SensorID(s), Window: w, Severity: detect.SeverityFromSpeed(v)})
			}
		}
	}
	if oc.TotalCells() <= mc.TotalCells()*10 {
		t.Errorf("OC cells (%d) should dwarf MC cells (%d)", oc.TotalCells(), mc.TotalCells())
	}
	if oc.ReadingsScanned <= mc.ReadingsScanned*10 {
		t.Errorf("OC scanned %d, MC %d", oc.ReadingsScanned, mc.ReadingsScanned)
	}
	// Both agree on aggregated severity at the city-day level.
	ocCity, _ := oc.Get(LevelPair{ByCity, ByDay}, CellKey{})
	mcCity, _ := mc.Get(LevelPair{ByCity, ByDay}, CellKey{})
	if !sevEq(ocCity, mcCity) {
		t.Errorf("city-day severity OC=%v MC=%v", ocCity, mcCity)
	}
}

func TestCubeViewRollupConsistencyProperty(t *testing.T) {
	// Region-day cells sum to district-day cells sum to city-day.
	net := testNet(t)
	spec := cps.DefaultSpec()
	f := func(seed int64) bool {
		cv := NewCubeView(net, spec, 30, nil)
		for _, r := range randomRecords(net, 400, seed, 3) {
			cv.AddRecord(r)
		}
		for day := int64(0); day < 3; day++ {
			var regionSum, districtSum cps.Severity
			for _, reg := range net.Grid.Regions() {
				if v, ok := cv.Get(LevelPair{ByRegion, ByDay}, CellKey{Spatial: int32(reg.ID), Temporal: day}); ok {
					regionSum += v
				}
			}
			for d := 0; d < net.Grid.NumDistricts(); d++ {
				if v, ok := cv.Get(LevelPair{ByDistrict, ByDay}, CellKey{Spatial: int32(d), Temporal: day}); ok {
					districtSum += v
				}
			}
			city, _ := cv.Get(LevelPair{ByCity, ByDay}, CellKey{Spatial: 0, Temporal: day})
			if !sevEq(regionSum, districtSum) || !sevEq(districtSum, city) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestLevelStrings(t *testing.T) {
	if BySensor.String() != "sensor" || ByCity.String() != "city" {
		t.Error("spatial level strings")
	}
	if ByWindow.String() != "window" || ByMonth.String() != "month" {
		t.Error("temporal level strings")
	}
	cv := NewCubeView(testNet(t), cps.DefaultSpec(), 30, nil)
	if cv.String() == "" || len(cv.Levels()) != len(DefaultLevels) {
		t.Error("cube summary")
	}
}

func sevEq(a, b cps.Severity) bool {
	d := float64(a - b)
	if d < 0 {
		d = -d
	}
	scale := float64(a)
	if scale < 1 {
		scale = 1
	}
	return d <= 1e-6*scale
}
