package cube_test

// Columnar-vs-map equivalence harness: the severity index moved from
// per-record maps to flat sorted columns, and every answer must stay
// byte-identical. mapSeverityRef preserves the retired map-backed
// implementation verbatim as the oracle; the golden test and the fuzz
// target (in the Makefile's CUBE_FUZZ smoke list) render every read path
// of both indexes and compare bytes, the same pattern as
// FuzzShardedQueryEquivalence at the query layer.

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/cube"
	"github.com/cpskit/atypical/internal/geo"
	"github.com/cpskit/atypical/internal/traffic"
)

// mapSeverityRef is the pre-columnar SeverityIndex: per-(region, day)
// rollup maps plus a sparse per-(region, window) residual map.
type mapSeverityRef struct {
	net       *traffic.Network
	spec      cps.WindowSpec
	perDay    map[geo.RegionID]map[int]cps.Severity
	perWindow map[geo.RegionID]map[cps.Window]cps.Severity
}

func newMapSeverityRef(net *traffic.Network, spec cps.WindowSpec) *mapSeverityRef {
	return &mapSeverityRef{
		net:       net,
		spec:      spec,
		perDay:    make(map[geo.RegionID]map[int]cps.Severity),
		perWindow: make(map[geo.RegionID]map[cps.Window]cps.Severity),
	}
}

func (x *mapSeverityRef) add(recs []cps.Record) {
	perDay := cps.Window(x.spec.PerDay())
	for _, r := range recs {
		region := x.net.Sensor(r.Sensor).Region
		if region == geo.NoRegion {
			continue
		}
		day := int(r.Window / perDay)
		dm := x.perDay[region]
		if dm == nil {
			dm = make(map[int]cps.Severity)
			x.perDay[region] = dm
		}
		dm[day] += r.Severity
		wm := x.perWindow[region]
		if wm == nil {
			wm = make(map[cps.Window]cps.Severity)
			x.perWindow[region] = wm
		}
		wm[r.Window] += r.Severity
	}
}

func (x *mapSeverityRef) f(region geo.RegionID, tr cps.TimeRange) cps.Severity {
	if tr.Len() == 0 {
		return 0
	}
	perDay := cps.Window(x.spec.PerDay())
	var total cps.Severity
	dayFrom := tr.From / perDay
	if tr.From%perDay != 0 {
		dayFrom++
	}
	dayTo := tr.To / perDay
	if dayFrom >= dayTo {
		wm := x.perWindow[region]
		for w := tr.From; w < tr.To; w++ {
			total += wm[w]
		}
		return total
	}
	dm := x.perDay[region]
	for d := dayFrom; d < dayTo; d++ {
		total += dm[int(d)]
	}
	wm := x.perWindow[region]
	for w := tr.From; w < dayFrom*perDay; w++ {
		total += wm[w]
	}
	for w := dayTo * perDay; w < tr.To; w++ {
		total += wm[w]
	}
	return total
}

func (x *mapSeverityRef) fTotal(regions []geo.RegionID, tr cps.TimeRange) cps.Severity {
	var total cps.Severity
	for _, r := range regions {
		total += x.f(r, tr)
	}
	return total
}

func (x *mapSeverityRef) redZones(regions []geo.RegionID, tr cps.TimeRange, deltaS float64, numSensorsInW int) []geo.RegionID {
	bound := cps.Severity(deltaS * float64(tr.Len()) * float64(numSensorsInW))
	var out []geo.RegionID
	for _, r := range regions {
		if x.f(r, tr) >= bound {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (x *mapSeverityRef) guidedRedZones(regions []geo.RegionID, tr cps.TimeRange, deltaS float64, numSensorsInW int) []geo.RegionID {
	bound := cps.Severity(deltaS * float64(tr.Len()) * float64(numSensorsInW))
	byDistrict := make(map[int][]geo.RegionID)
	for _, r := range regions {
		d := x.net.Grid.Region(r).District
		byDistrict[d] = append(byDistrict[d], r)
	}
	var out []geo.RegionID
	for _, members := range byDistrict {
		var districtF cps.Severity
		before := len(out)
		for _, r := range members {
			f := x.f(r, tr)
			districtF += f
			if f >= bound {
				out = append(out, r)
			}
		}
		if len(out) == before && districtF >= bound {
			share := bound / cps.Severity(len(members))
			for _, r := range members {
				if x.f(r, tr) >= share {
					out = append(out, r)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// equivRanges covers day-aligned, sub-day, ragged and empty spans.
func equivRanges(spec cps.WindowSpec) []cps.TimeRange {
	return []cps.TimeRange{
		cps.DayRange(spec, 0, 7),
		cps.DayRange(spec, 3, 2),
		{From: 9, To: cps.Window(5*spec.PerDay() + 31)},
		{From: 3, To: 17},
		{From: cps.Window(2 * spec.PerDay()), To: cps.Window(2 * spec.PerDay())},
	}
}

// renderRef serializes the reference index over the same surface
// renderSeverity covers for the real one.
func renderRef(x *mapSeverityRef, net *traffic.Network, spec cps.WindowSpec) string {
	regions := make([]geo.RegionID, 0, net.Grid.NumRegions())
	for _, r := range net.Grid.Regions() {
		regions = append(regions, r.ID)
	}
	var b strings.Builder
	for _, tr := range equivRanges(spec) {
		fmt.Fprintf(&b, "# %v\n", tr)
		fmt.Fprintf(&b, "total: %v\n", x.fTotal(regions, tr))
		for _, r := range regions {
			fmt.Fprintf(&b, "F[%d]=%v\n", r, x.f(r, tr))
		}
		fmt.Fprintf(&b, "red: %v\n", x.redZones(regions, tr, 0.005, net.NumSensors()))
		fmt.Fprintf(&b, "gui: %v\n", x.guidedRedZones(regions, tr, 0.005, net.NumSensors()))
	}
	return b.String()
}

// renderColumnar is renderRef against the real index, byte for byte.
func renderColumnar(x *cube.SeverityIndex, net *traffic.Network, spec cps.WindowSpec) string {
	regions := make([]geo.RegionID, 0, net.Grid.NumRegions())
	for _, r := range net.Grid.Regions() {
		regions = append(regions, r.ID)
	}
	var b strings.Builder
	for _, tr := range equivRanges(spec) {
		fmt.Fprintf(&b, "# %v\n", tr)
		fmt.Fprintf(&b, "total: %v\n", x.FTotal(regions, tr))
		for _, r := range regions {
			fmt.Fprintf(&b, "F[%d]=%v\n", r, x.F(r, tr))
		}
		fmt.Fprintf(&b, "red: %v\n", x.RedZones(regions, tr, 0.005, net.NumSensors()))
		fmt.Fprintf(&b, "gui: %v\n", x.GuidedRedZones(regions, tr, 0.005, net.NumSensors()))
	}
	return b.String()
}

// TestColumnarSeverityMatchesMapReference is the golden equivalence check:
// serial Add, repeated Add batches, and the parallel AddDays path must all
// render byte-identically to the retired map implementation.
func TestColumnarSeverityMatchesMapReference(t *testing.T) {
	net := detNet()
	spec := cps.DefaultSpec()
	recs := detRecords(net, 6000, 41, 7)

	ref := newMapSeverityRef(net, spec)
	ref.add(recs)
	want := renderRef(ref, net, spec)
	if want == "" || !strings.Contains(want, "F[") {
		t.Fatal("reference render is vacuous")
	}

	serial := cube.NewSeverityIndex(net, spec)
	serial.Add(recs)
	if got := renderColumnar(serial, net, spec); got != want {
		t.Fatalf("columnar serial build differs from map reference:\n%s", firstDiff(got, want))
	}

	// Two half-batches through Add: exercises the old+delta merge path.
	half := cube.NewSeverityIndex(net, spec)
	half.Add(recs[:len(recs)/2])
	half.Add(recs[len(recs)/2:])
	refHalf := newMapSeverityRef(net, spec)
	refHalf.add(recs[:len(recs)/2])
	refHalf.add(recs[len(recs)/2:])
	if got, want := renderColumnar(half, net, spec), renderRef(refHalf, net, spec); got != want {
		t.Fatalf("columnar two-batch build differs from map reference:\n%s", firstDiff(got, want))
	}

	byDay := cps.NewRecordSet(recs).SplitByDay(spec)
	var days [][]cps.Record
	cps.ForEachDay(byDay, func(_ int, day []cps.Record) { days = append(days, day) })
	par := cube.NewSeverityIndex(net, spec)
	if err := par.AddDays(context.Background(), days, 4); err != nil {
		t.Fatal(err)
	}
	refDays := newMapSeverityRef(net, spec)
	for _, day := range days {
		refDays.add(day)
	}
	if got, want := renderColumnar(par, net, spec), renderRef(refDays, net, spec); got != want {
		t.Fatalf("columnar AddDays build differs from map reference:\n%s", firstDiff(got, want))
	}
}

// FuzzColumnarSeverityEquivalence drives the columnar-vs-map byte identity
// from fuzzed record multisets, split into fuzzed batch boundaries so the
// merge loops see ragged old/new overlaps.
func FuzzColumnarSeverityEquivalence(f *testing.F) {
	net := detNet()
	spec := cps.DefaultSpec()
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{0, 0, 1, 0, 0, 1, 255, 255, 16, 9, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		var recs []cps.Record
		split := 0
		if len(data) > 0 {
			split = int(data[0])
		}
		for d := data; len(d) >= 3; d = d[3:] {
			recs = append(recs, cps.Record{
				Sensor:   cps.SensorID(int(d[0]) % net.NumSensors()),
				Window:   cps.Window(int(d[1])+int(d[2])*256) % cps.Window(7*spec.PerDay()),
				Severity: cps.Severity(d[2]%8) + 1,
			})
		}
		if len(recs) > 0 {
			split %= len(recs)
		} else {
			split = 0
		}
		idx := cube.NewSeverityIndex(net, spec)
		idx.Add(recs[:split])
		idx.Add(recs[split:])
		ref := newMapSeverityRef(net, spec)
		ref.add(recs[:split])
		ref.add(recs[split:])
		if got, want := renderColumnar(idx, net, spec), renderRef(ref, net, spec); got != want {
			t.Fatalf("columnar differs from map reference:\n%s", firstDiff(got, want))
		}
	})
}
