package cube

import (
	"testing"

	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/geo"
)

// smallCube builds a cube over a tiny known record set.
func smallCube(t *testing.T) (*CubeView, []cps.Record) {
	t.Helper()
	net := testNet(t)
	cv := NewCubeView(net, cps.DefaultSpec(), 30, nil)
	recs := []cps.Record{
		{Sensor: 0, Window: 0, Severity: 2},   // day 0, hour 0
		{Sensor: 0, Window: 13, Severity: 3},  // day 0, hour 1
		{Sensor: 1, Window: 300, Severity: 5}, // day 1, hour 25
	}
	for _, r := range recs {
		cv.AddRecord(r)
	}
	return cv, recs
}

func TestSlice(t *testing.T) {
	cv, _ := smallCube(t)
	lp := LevelPair{BySensor, ByHour}
	all := cv.Slice(lp, 0, 1<<40)
	if len(all) != 3 {
		t.Fatalf("cells = %d", len(all))
	}
	// Sorted by (spatial, temporal).
	if all[0].Key.Spatial != 0 || all[0].Key.Temporal != 0 || all[0].Sev != 2 {
		t.Errorf("first cell = %+v", all[0])
	}
	day0 := cv.Slice(lp, 0, 24)
	if len(day0) != 2 {
		t.Errorf("day-0 hours = %d", len(day0))
	}
	if got := cv.Slice(LevelPair{BySensor, ByWindow}, 0, 10); got != nil {
		t.Errorf("unmaterialized level should return nil, got %v", got)
	}
}

func TestDice(t *testing.T) {
	cv, _ := smallCube(t)
	lp := LevelPair{BySensor, ByHour}
	got := cv.Dice(lp, []int32{0}, 0, 1<<40)
	if len(got) != 2 {
		t.Fatalf("dice = %d cells", len(got))
	}
	for _, c := range got {
		if c.Key.Spatial != 0 {
			t.Errorf("dice leaked spatial key %d", c.Key.Spatial)
		}
	}
}

func TestRollups(t *testing.T) {
	cv, _ := smallCube(t)
	lp := LevelPair{BySensor, ByHour}
	bySensor := cv.RollupTemporal(lp)
	if len(bySensor) != 2 {
		t.Fatalf("sensors = %d", len(bySensor))
	}
	if bySensor[0].Sev != 5 || bySensor[1].Sev != 5 {
		t.Errorf("rollup severities = %v, %v", bySensor[0].Sev, bySensor[1].Sev)
	}
	byHour := cv.RollupSpatial(lp)
	if len(byHour) != 3 {
		t.Fatalf("hours = %d", len(byHour))
	}
	var total cps.Severity
	for _, c := range byHour {
		total += c.Sev
	}
	if total != 10 {
		t.Errorf("total = %v", total)
	}
	if got := cv.RollupTemporal(LevelPair{BySensor, ByWindow}); got != nil {
		t.Error("unmaterialized rollup should be nil")
	}
}

func TestTopCells(t *testing.T) {
	cv, _ := smallCube(t)
	lp := LevelPair{BySensor, ByHour}
	top := cv.TopCells(lp, 2)
	if len(top) != 2 {
		t.Fatalf("top = %d", len(top))
	}
	if top[0].Sev != 5 || top[1].Sev != 3 {
		t.Errorf("top severities = %v, %v", top[0].Sev, top[1].Sev)
	}
	if got := cv.TopCells(lp, 0); got != nil {
		t.Error("k=0 should be nil")
	}
	if got := cv.TopCells(lp, 99); len(got) != 3 {
		t.Errorf("over-ask = %d", len(got))
	}
}

func TestRegionSeverity(t *testing.T) {
	net := testNet(t)
	cv := NewCubeView(net, cps.DefaultSpec(), 30, nil)
	// Aggregate everything through the region of sensor 0.
	region := net.Sensor(0).Region
	if region == geo.NoRegion {
		t.Skip("sensor 0 outside the grid")
	}
	cv.AddRecord(cps.Record{Sensor: 0, Window: 0, Severity: 2})
	cv.AddRecord(cps.Record{Sensor: 0, Window: 300, Severity: 3}) // day 1
	got, err := cv.RegionSeverity(region, 0, 1)
	if err != nil || got != 2 {
		t.Errorf("day 0 = %v, %v", got, err)
	}
	got, err = cv.RegionSeverity(region, 0, 2)
	if err != nil || got != 5 {
		t.Errorf("days 0-1 = %v, %v", got, err)
	}
	// Unmaterialized level errors.
	bare := NewCubeView(net, cps.DefaultSpec(), 30, []LevelPair{{BySensor, ByHour}})
	if _, err := bare.RegionSeverity(region, 0, 1); err == nil {
		t.Error("missing level should error")
	}
}

func TestSliceConsistentWithSeverityIndex(t *testing.T) {
	// The cube's (region, day) cells agree with the SeverityIndex used for
	// red zones — two independent implementations of F.
	net := testNet(t)
	spec := cps.DefaultSpec()
	recs := randomRecords(net, 2000, 21, 4)
	cv := NewCubeView(net, spec, 30, nil)
	for _, r := range recs {
		cv.AddRecord(r)
	}
	idx := NewSeverityIndex(net, spec)
	idx.Add(recs)
	for _, reg := range net.Grid.Regions() {
		want := idx.F(reg.ID, cps.DayRange(spec, 0, 4))
		got, err := cv.RegionSeverity(reg.ID, 0, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !sevEq(got, want) {
			t.Fatalf("region %d: cube %v, index %v", reg.ID, got, want)
		}
	}
}
