package cube

import (
	"fmt"

	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/detect"
	"github.com/cpskit/atypical/internal/geo"
	"github.com/cpskit/atypical/internal/traffic"
)

// SpatialLevel enumerates the pre-defined spatial hierarchy of the CubeView
// baseline: sensor → region ("zipcode") → district → city.
type SpatialLevel uint8

// Spatial hierarchy levels, finest first.
const (
	BySensor SpatialLevel = iota
	ByRegion
	ByDistrict
	ByCity
)

// TemporalLevel enumerates the temporal hierarchy: window → hour → day →
// month (the paper: "sum up the congestion duration by hour, day, month and
// year").
type TemporalLevel uint8

// Temporal hierarchy levels, finest first.
const (
	ByWindow TemporalLevel = iota
	ByHour
	ByDay
	ByMonth
)

func (l SpatialLevel) String() string {
	return [...]string{"sensor", "region", "district", "city"}[l]
}

func (l TemporalLevel) String() string {
	return [...]string{"window", "hour", "day", "month"}[l]
}

// CellKey addresses one cube cell at a given level pair.
type CellKey struct {
	Spatial  int32
	Temporal int64
}

// LevelPair identifies one materialized group-by of the cube.
type LevelPair struct {
	S SpatialLevel
	T TemporalLevel
}

// DefaultLevels are the group-bys CubeView materializes: the finest level
// (sensor, hour) plus the coarser rollups analytical dashboards read. The
// raw (sensor, window) base is the dataset itself and is not duplicated.
var DefaultLevels = []LevelPair{
	{BySensor, ByHour},
	{ByRegion, ByHour},
	{ByRegion, ByDay},
	{ByDistrict, ByDay},
	{ByCity, ByDay},
	{ByCity, ByMonth},
}

// CubeView is the bottom-up baseline model: numeric severity aggregated over
// every configured level pair. It answers where-style queries cheaply but —
// as Example 2 argues — cannot describe individual atypical events.
type CubeView struct {
	net    *traffic.Network
	spec   cps.WindowSpec
	levels []LevelPair
	// DaysPerMonth fixes the month rollup arithmetic (the generator uses
	// fixed-length months).
	daysPerMonth int

	cells map[LevelPair]map[CellKey]cps.Severity
	// ReadingsScanned counts input records — OC scans every reading, MC
	// only atypical ones; the Fig. 15 cost difference.
	ReadingsScanned int64
}

// NewCubeView returns an empty cube with the given materialized level pairs
// (DefaultLevels when nil).
func NewCubeView(net *traffic.Network, spec cps.WindowSpec, daysPerMonth int, levels []LevelPair) *CubeView {
	if levels == nil {
		levels = DefaultLevels
	}
	cv := &CubeView{
		net:          net,
		spec:         spec,
		levels:       levels,
		daysPerMonth: daysPerMonth,
		cells:        make(map[LevelPair]map[CellKey]cps.Severity, len(levels)),
	}
	for _, lp := range levels {
		cv.cells[lp] = make(map[CellKey]cps.Severity)
	}
	return cv
}

// spatialKey maps a sensor to its key at level l, or false when the sensor
// falls outside the region grid.
func (cv *CubeView) spatialKey(s cps.SensorID, l SpatialLevel) (int32, bool) {
	switch l {
	case BySensor:
		return int32(s), true
	case ByRegion:
		r := cv.net.Sensor(s).Region
		return int32(r), r != geo.NoRegion
	case ByDistrict:
		r := cv.net.Sensor(s).Region
		if r == geo.NoRegion {
			return 0, false
		}
		return int32(cv.net.Grid.Region(r).District), true
	default:
		// City means the gridded deployment area, so the hierarchy rolls
		// up consistently: sensors outside every region are excluded at
		// every region-derived level.
		if cv.net.Sensor(s).Region == geo.NoRegion {
			return 0, false
		}
		return 0, true
	}
}

// temporalKey maps a window to its key at level l.
func (cv *CubeView) temporalKey(w cps.Window, l TemporalLevel) int64 {
	perDay := int64(cv.spec.PerDay())
	perHour := perDay / 24
	switch l {
	case ByWindow:
		return int64(w)
	case ByHour:
		return int64(w) / perHour
	case ByDay:
		return int64(w) / perDay
	default:
		return int64(w) / (perDay * int64(cv.daysPerMonth))
	}
}

// AddRecord aggregates one atypical record into every materialized level —
// the modified-CubeView (MC) ingest path.
func (cv *CubeView) AddRecord(r cps.Record) {
	cv.ReadingsScanned++
	cv.addSeverity(r.Sensor, r.Window, r.Severity)
}

// AddReading aggregates one raw reading — the original-CubeView (OC) ingest
// path. Every reading lands in the cube (normal traffic aggregates as zero
// severity but still claims its cells, which is why the OC model in Fig. 16
// dwarfs MC).
func (cv *CubeView) AddReading(rd cps.Reading) {
	cv.ReadingsScanned++
	cv.addSeverity(rd.Sensor, rd.Window, detect.SeverityFromSpeed(rd.Value))
}

func (cv *CubeView) addSeverity(s cps.SensorID, w cps.Window, sev cps.Severity) {
	for _, lp := range cv.levels {
		sk, ok := cv.spatialKey(s, lp.S)
		if !ok {
			continue
		}
		key := CellKey{Spatial: sk, Temporal: cv.temporalKey(w, lp.T)}
		// The OC path must materialize the cell even at zero severity.
		cv.cells[lp][key] += sev
	}
}

// Get returns the aggregated severity of one cell.
func (cv *CubeView) Get(lp LevelPair, key CellKey) (cps.Severity, bool) {
	m, ok := cv.cells[lp]
	if !ok {
		return 0, false
	}
	v, ok := m[key]
	return v, ok
}

// Cells returns the number of materialized cells at the given level pair.
func (cv *CubeView) Cells(lp LevelPair) int { return len(cv.cells[lp]) }

// TotalCells returns the number of materialized cells across all levels —
// the model-size proxy of Fig. 16.
func (cv *CubeView) TotalCells() int {
	n := 0
	for _, m := range cv.cells {
		n += len(m)
	}
	return n
}

// SizeBytes estimates the serialized model size: each cell is a (key,
// value) triple of 4+8+8 bytes.
func (cv *CubeView) SizeBytes() int64 { return int64(cv.TotalCells()) * 20 }

// Levels returns the materialized level pairs.
func (cv *CubeView) Levels() []LevelPair { return cv.levels }

// String implements fmt.Stringer with a size summary.
func (cv *CubeView) String() string {
	return fmt.Sprintf("CubeView{levels:%d cells:%d scanned:%d}", len(cv.levels), cv.TotalCells(), cv.ReadingsScanned)
}
