// Package cube implements the bottom-up styled baseline the paper compares
// against and builds on: aggregation of the severity measure over
// pre-defined spatial and temporal hierarchies (Equation 1), the CubeView
// models (OC/MC) of Figs. 15–16, and the red-zone computation that guides
// online clustering (Property 5, Algorithm 4 line 1).
package cube

import (
	"context"
	"sort"
	"sync"

	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/geo"
	"github.com/cpskit/atypical/internal/par"
	"github.com/cpskit/atypical/internal/traffic"
)

// SeverityIndex materializes the distributive total severity F(W', T) per
// pre-defined region (Property 4) in a columnar layout: flat parallel
// slices sorted by (region, day) answer day-aligned queries with a single
// binary search plus a linear scan, and a second (region, window) column
// set covers sub-day residuals exactly. No per-record maps survive past a
// single accumulation batch; merges between batches are branch-light
// two-pointer loops over the sorted columns.
//
// The index is safe for concurrent use: lookups (F, FTotal, red zones) may
// run alongside Add/AddDays — writers swap in freshly merged columns under
// the write lock, so readers never observe a partially merged state.
//
// Every mutation (Add, AddDays, Reset) also bumps a monotonic generation
// counter under the same lock. Gen exposes it so derived artifacts — the
// query answer cache in particular — can stamp what they computed against
// a specific severity state and detect that the state has since changed,
// even when no forest version bump accompanied the change (RebuildSeverity,
// the severity half of an in-flight ingest).
type SeverityIndex struct {
	net  *traffic.Network
	spec cps.WindowSpec

	mu   sync.RWMutex
	cols severityColumns
	gen  uint64
}

// severityColumns is one generation of the columnar store. Each cell is a
// (region, key, severity) triple split across three parallel slices; both
// column sets are sorted by (region, key) with unique keys per region.
type severityColumns struct {
	// Day cells: dayKey[i] is the day ordinal from the spec origin.
	dayRegion []geo.RegionID
	dayKey    []int64
	daySev    []cps.Severity
	// Window cells, sparse: winKey[i] is the absolute window.
	winRegion []geo.RegionID
	winKey    []cps.Window
	winSev    []cps.Severity
}

// NewSeverityIndex builds the index over the given atypical records.
func NewSeverityIndex(net *traffic.Network, spec cps.WindowSpec) *SeverityIndex {
	return &SeverityIndex{net: net, spec: spec}
}

// Reset drops every accumulated severity, returning the index to its
// just-constructed state (the generation counter keeps climbing — it marks
// change, not content). Used when the forest is swapped out from under the
// index (see the facade's LoadForest) before a rebuild.
func (x *SeverityIndex) Reset() {
	x.mu.Lock()
	x.cols = severityColumns{}
	x.gen++
	x.mu.Unlock()
}

// Gen returns the index's mutation generation: it increases on every Add,
// AddDays and Reset, and never otherwise. Two equal readings with data
// reads in between guarantee those reads all saw the same severity state.
// Nil-safe (a nil index reports generation 0 forever).
func (x *SeverityIndex) Gen() uint64 {
	if x == nil {
		return 0
	}
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.gen
}

// Add aggregates records into the index. Records for sensors outside the
// region grid are ignored (they belong to no pre-defined region).
//
// Each call rebuilds the live column generation, so its cost is
// O(existing cells + batch), not O(batch): a stream of many small batches
// does quadratic cumulative work. Batch ingest paths should hand whole day
// sets to AddDays, which pre-merges the batch and pays the full-copy merge
// once per call.
//
//atyplint:deterministic
func (x *SeverityIndex) Add(recs []cps.Record) {
	shard := x.accumulate(recs)
	x.mu.Lock()
	x.cols = mergeColumns(x.cols, shard)
	x.gen++
	x.mu.Unlock()
}

// AddDays aggregates several days' record slices, sharding the accumulation
// across up to `workers` goroutines — one shard per slice. The shard columns
// pre-merge pairwise outside the lock (O(batch·log shards)), so the live
// columns are copied exactly once per call however many days arrive — the
// amortization Add's per-call O(existing + batch) cost note points at.
//
// Because a window belongs to exactly one day, distinct shards never touch
// the same (region, day) or (region, window) cell: every cell's severity is
// accumulated in a single shard, in record order, and the pairwise shard
// merge never adds two floats (disjoint cells interleave, they don't
// combine). Building a fresh index from per-day slices therefore produces
// bit-identical floats to feeding the same slices through Add one day at a
// time, for every worker count.
//
//atyplint:deterministic
func (x *SeverityIndex) AddDays(ctx context.Context, days [][]cps.Record, workers int) error {
	shards := make([]severityColumns, len(days))
	if err := par.Do(ctx, len(days), workers, func(i int) error {
		shards[i] = x.accumulate(days[i])
		return nil
	}); err != nil {
		return err
	}
	for len(shards) > 1 {
		half := shards[:(len(shards)+1)/2]
		for i := range half {
			if j := len(shards) - 1 - i; j > i {
				half[i] = mergeColumns(shards[i], shards[j])
			}
		}
		shards = half
	}
	x.mu.Lock()
	if len(shards) == 1 {
		x.cols = mergeColumns(x.cols, shards[0])
	}
	x.gen++
	x.mu.Unlock()
	return nil
}

// cellTriple is one record's contribution to a cell, tagged with its region.
type cellTriple struct {
	region geo.RegionID
	key    int64
	sev    cps.Severity
}

// accumulate sums one record batch into sorted columns; no lock required.
// Cell sums fold in record order: each triple slice is stable-sorted by
// (region, key) from the original record order, so records hitting the
// same cell keep their input order and the fold adds them in exactly the
// sequence a per-cell `+=` would.
func (x *SeverityIndex) accumulate(recs []cps.Record) severityColumns {
	perDay := int64(x.spec.PerDay())
	winTriples := make([]cellTriple, 0, len(recs))
	dayTriples := make([]cellTriple, 0, len(recs))
	for _, r := range recs {
		region := x.net.Sensor(r.Sensor).Region
		if region == geo.NoRegion {
			continue
		}
		winTriples = append(winTriples, cellTriple{region: region, key: int64(r.Window), sev: r.Severity})
		dayTriples = append(dayTriples, cellTriple{region: region, key: int64(r.Window) / perDay, sev: r.Severity})
	}
	byRegionKey := func(ts []cellTriple) func(i, j int) bool {
		return func(i, j int) bool {
			if ts[i].region != ts[j].region {
				return ts[i].region < ts[j].region
			}
			return ts[i].key < ts[j].key
		}
	}
	var c severityColumns

	sort.SliceStable(winTriples, byRegionKey(winTriples))
	for i := 0; i < len(winTriples); {
		j := i + 1
		sum := winTriples[i].sev
		for j < len(winTriples) && winTriples[j].region == winTriples[i].region && winTriples[j].key == winTriples[i].key {
			sum += winTriples[j].sev
			j++
		}
		c.winRegion = append(c.winRegion, winTriples[i].region)
		c.winKey = append(c.winKey, cps.Window(winTriples[i].key))
		c.winSev = append(c.winSev, sum)
		i = j
	}

	sort.SliceStable(dayTriples, byRegionKey(dayTriples))
	for i := 0; i < len(dayTriples); {
		j := i + 1
		sum := dayTriples[i].sev
		for j < len(dayTriples) && dayTriples[j].region == dayTriples[i].region && dayTriples[j].key == dayTriples[i].key {
			sum += dayTriples[j].sev
			j++
		}
		c.dayRegion = append(c.dayRegion, dayTriples[i].region)
		c.dayKey = append(c.dayKey, dayTriples[i].key)
		c.daySev = append(c.daySev, sum)
		i = j
	}
	return c
}

// mergeColumns folds shard columns b into a, producing a fresh generation:
// a linear two-pointer merge per column set. Shared cells add as old+new —
// the same order a map-backed `+=` merge used — and the inputs are never
// mutated, so concurrent readers of the old generation stay consistent.
func mergeColumns(a, b severityColumns) severityColumns {
	var out severityColumns
	out.dayRegion, out.dayKey, out.daySev = mergeDayCells(
		a.dayRegion, a.dayKey, a.daySev, b.dayRegion, b.dayKey, b.daySev)
	out.winRegion, out.winKey, out.winSev = mergeWindowCells(
		a.winRegion, a.winKey, a.winSev, b.winRegion, b.winKey, b.winSev)
	return out
}

func mergeDayCells(aR []geo.RegionID, aK []int64, aS []cps.Severity,
	bR []geo.RegionID, bK []int64, bS []cps.Severity) ([]geo.RegionID, []int64, []cps.Severity) {
	outR := make([]geo.RegionID, 0, len(aR)+len(bR))
	outK := make([]int64, 0, len(aK)+len(bK))
	outS := make([]cps.Severity, 0, len(aS)+len(bS))
	i, j := 0, 0
	for i < len(aR) && j < len(bR) {
		switch {
		case aR[i] < bR[j] || (aR[i] == bR[j] && aK[i] < bK[j]):
			outR, outK, outS = append(outR, aR[i]), append(outK, aK[i]), append(outS, aS[i])
			i++
		case bR[j] < aR[i] || (aR[i] == bR[j] && bK[j] < aK[i]):
			outR, outK, outS = append(outR, bR[j]), append(outK, bK[j]), append(outS, bS[j])
			j++
		default: // same cell: old value first, shard delta second
			outR, outK, outS = append(outR, aR[i]), append(outK, aK[i]), append(outS, aS[i]+bS[j])
			i++
			j++
		}
	}
	outR, outK, outS = append(outR, aR[i:]...), append(outK, aK[i:]...), append(outS, aS[i:]...)
	outR, outK, outS = append(outR, bR[j:]...), append(outK, bK[j:]...), append(outS, bS[j:]...)
	return outR, outK, outS
}

func mergeWindowCells(aR []geo.RegionID, aK []cps.Window, aS []cps.Severity,
	bR []geo.RegionID, bK []cps.Window, bS []cps.Severity) ([]geo.RegionID, []cps.Window, []cps.Severity) {
	outR := make([]geo.RegionID, 0, len(aR)+len(bR))
	outK := make([]cps.Window, 0, len(aK)+len(bK))
	outS := make([]cps.Severity, 0, len(aS)+len(bS))
	i, j := 0, 0
	for i < len(aR) && j < len(bR) {
		switch {
		case aR[i] < bR[j] || (aR[i] == bR[j] && aK[i] < bK[j]):
			outR, outK, outS = append(outR, aR[i]), append(outK, aK[i]), append(outS, aS[i])
			i++
		case bR[j] < aR[i] || (aR[i] == bR[j] && bK[j] < aK[i]):
			outR, outK, outS = append(outR, bR[j]), append(outK, bK[j]), append(outS, bS[j])
			j++
		default:
			outR, outK, outS = append(outR, aR[i]), append(outK, aK[i]), append(outS, aS[i]+bS[j])
			i++
			j++
		}
	}
	outR, outK, outS = append(outR, aR[i:]...), append(outK, aK[i:]...), append(outS, aS[i:]...)
	outR, outK, outS = append(outR, bR[j:]...), append(outK, bK[j:]...), append(outS, bS[j:]...)
	return outR, outK, outS
}

// dayExtent returns the [lo, hi) day-cell range of one region.
func (c *severityColumns) dayExtent(region geo.RegionID) (int, int) {
	lo := sort.Search(len(c.dayRegion), func(i int) bool { return c.dayRegion[i] >= region })
	hi := lo
	for hi < len(c.dayRegion) && c.dayRegion[hi] == region {
		hi++
	}
	return lo, hi
}

// winExtent returns the [lo, hi) window-cell range of one region.
func (c *severityColumns) winExtent(region geo.RegionID) (int, int) {
	lo := sort.Search(len(c.winRegion), func(i int) bool { return c.winRegion[i] >= region })
	hi := lo
	for hi < len(c.winRegion) && c.winRegion[hi] == region {
		hi++
	}
	return lo, hi
}

// addDays folds the region's day cells in [dayFrom, dayTo) into total, in
// ascending day order. Absent cells contribute exactly zero, matching the
// map-backed index's missing-key lookups (a +0.0 add never changes a sum
// that started from +0.0).
func (c *severityColumns) addDays(total cps.Severity, region geo.RegionID, dayFrom, dayTo int64) cps.Severity {
	lo, hi := c.dayExtent(region)
	keys := c.dayKey[lo:hi]
	sevs := c.daySev[lo:hi]
	p := sort.Search(len(keys), func(i int) bool { return keys[i] >= dayFrom })
	for ; p < len(keys) && keys[p] < dayTo; p++ {
		total += sevs[p]
	}
	return total
}

// addWindows folds the region's window cells in [from, to) into total, in
// ascending window order.
func (c *severityColumns) addWindows(total cps.Severity, region geo.RegionID, from, to cps.Window) cps.Severity {
	lo, hi := c.winExtent(region)
	keys := c.winKey[lo:hi]
	sevs := c.winSev[lo:hi]
	p := sort.Search(len(keys), func(i int) bool { return keys[i] >= from })
	for ; p < len(keys) && keys[p] < to; p++ {
		total += sevs[p]
	}
	return total
}

// F returns the total severity F(W', T) of one region over tr (Equation 1
// restricted to W' = region). Day-aligned spans use the day columns;
// ragged edges fall back to the window columns.
func (x *SeverityIndex) F(region geo.RegionID, tr cps.TimeRange) cps.Severity {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.fLocked(region, tr)
}

// fLocked is F for callers already holding x.mu (either mode); multi-region
// rollups take the lock once instead of per region.
func (x *SeverityIndex) fLocked(region geo.RegionID, tr cps.TimeRange) cps.Severity {
	if tr.Len() == 0 {
		return 0
	}
	perDay := cps.Window(x.spec.PerDay())
	var total cps.Severity

	dayFrom := tr.From / perDay
	if tr.From%perDay != 0 {
		dayFrom++ // first whole day
	}
	dayTo := tr.To / perDay // first day NOT fully covered

	if dayFrom >= dayTo {
		// No whole day inside: window columns only.
		return x.cols.addWindows(total, region, tr.From, tr.To)
	}
	total = x.cols.addDays(total, region, int64(dayFrom), int64(dayTo))
	total = x.cols.addWindows(total, region, tr.From, dayFrom*perDay)
	total = x.cols.addWindows(total, region, dayTo*perDay, tr.To)
	return total
}

// FTotal returns F(W, T) summed over a region set — the distributive rollup
// of Property 4.
func (x *SeverityIndex) FTotal(regions []geo.RegionID, tr cps.TimeRange) cps.Severity {
	x.mu.RLock()
	defer x.mu.RUnlock()
	var total cps.Severity
	for _, r := range regions {
		total += x.fLocked(r, tr)
	}
	return total
}

// FScan recomputes F(W, T) directly from records (Equation 1 verbatim):
// the correctness oracle and the "no index" ablation baseline.
func FScan(net *traffic.Network, recs []cps.Record, regions []geo.RegionID, tr cps.TimeRange) cps.Severity {
	inW := make(map[geo.RegionID]bool, len(regions))
	for _, r := range regions {
		inW[r] = true
	}
	var total cps.Severity
	for _, r := range recs {
		if !tr.Contains(r.Window) {
			continue
		}
		if inW[net.Sensor(r.Sensor).Region] {
			total += r.Severity
		}
	}
	return total
}

// RedZones returns the regions among `regions` whose total severity reaches
// the significance bound δs·length(T)·N, where N is the sensor count of the
// whole query region W (Property 5: a region below the bound can host no
// significant cluster). The result is ascending by region id.
func (x *SeverityIndex) RedZones(regions []geo.RegionID, tr cps.TimeRange, deltaS float64, numSensorsInW int) []geo.RegionID {
	bound := cps.Severity(deltaS * float64(tr.Len()) * float64(numSensorsInW))
	x.mu.RLock()
	defer x.mu.RUnlock()
	var out []geo.RegionID
	for _, r := range regions {
		if x.fLocked(r, tr) >= bound {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// GuidedRedZones applies Property 5 along the pre-defined spatial hierarchy
// (the paper's "zipcode area hierarchy", Example 7): a region is a red zone
// if its own total severity passes the significance bound, or if its
// enclosing district's does. A significant cluster's severity can be spread
// over several sub-bound regions; the district test — every bit as sound
// under Property 5, since a district is just a coarser pre-defined region —
// keeps such a cluster's micro-clusters from being pruned. The result is
// ascending by region id.
func (x *SeverityIndex) GuidedRedZones(regions []geo.RegionID, tr cps.TimeRange, deltaS float64, numSensorsInW int) []geo.RegionID {
	bound := cps.Severity(deltaS * float64(tr.Len()) * float64(numSensorsInW))
	x.mu.RLock()
	defer x.mu.RUnlock()
	byDistrict := make(map[int][]geo.RegionID)
	for _, r := range regions {
		d := x.net.Grid.Region(r).District
		byDistrict[d] = append(byDistrict[d], r)
	}
	var out []geo.RegionID
	for _, members := range byDistrict {
		var districtF cps.Severity
		before := len(out)
		for _, r := range members {
			f := x.fLocked(r, tr)
			districtF += f
			if f >= bound {
				out = append(out, r)
			}
		}
		if len(out) == before && districtF >= bound {
			// No single region reaches the bound but the district does: a
			// significant cluster spread across its regions is possible.
			// Keep the regions carrying at least a fair share of the bound
			// — a cluster reaching the bound inside this district must
			// place that much in one of them.
			share := bound / cps.Severity(len(members))
			for _, r := range members {
				if x.fLocked(r, tr) >= share {
					out = append(out, r)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
