// Package cube implements the bottom-up styled baseline the paper compares
// against and builds on: aggregation of the severity measure over
// pre-defined spatial and temporal hierarchies (Equation 1), the CubeView
// models (OC/MC) of Figs. 15–16, and the red-zone computation that guides
// online clustering (Property 5, Algorithm 4 line 1).
package cube

import (
	"context"
	"sort"
	"sync"

	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/geo"
	"github.com/cpskit/atypical/internal/par"
	"github.com/cpskit/atypical/internal/traffic"
)

// SeverityIndex materializes the distributive total severity F(W', T) per
// pre-defined region (Property 4): per-(region, day) rollups answer
// day-aligned queries in O(regions × days), and a sparse per-(region,
// window) map covers sub-day residuals exactly.
//
// The index is safe for concurrent use: lookups (F, FTotal, red zones) may
// run alongside Add/AddDays.
type SeverityIndex struct {
	net  *traffic.Network
	spec cps.WindowSpec

	mu sync.RWMutex
	// perDay[r][d] is F(region r, day d); days index from the spec origin.
	perDay map[geo.RegionID]map[int]cps.Severity
	// perWindow[r][w] is F(region r, window w), sparse.
	perWindow map[geo.RegionID]map[cps.Window]cps.Severity
}

// NewSeverityIndex builds the index over the given atypical records.
func NewSeverityIndex(net *traffic.Network, spec cps.WindowSpec) *SeverityIndex {
	return &SeverityIndex{
		net:       net,
		spec:      spec,
		perDay:    make(map[geo.RegionID]map[int]cps.Severity),
		perWindow: make(map[geo.RegionID]map[cps.Window]cps.Severity),
	}
}

// Reset drops every accumulated severity, returning the index to its
// just-constructed state. Used when the forest is swapped out from under the
// index (see the facade's LoadForest) before a rebuild.
func (x *SeverityIndex) Reset() {
	x.mu.Lock()
	x.perDay = make(map[geo.RegionID]map[int]cps.Severity)
	x.perWindow = make(map[geo.RegionID]map[cps.Window]cps.Severity)
	x.mu.Unlock()
}

// Add aggregates records into the index. Records for sensors outside the
// region grid are ignored (they belong to no pre-defined region).
//
//atyplint:deterministic
func (x *SeverityIndex) Add(recs []cps.Record) {
	shard := x.accumulate(recs)
	x.mu.Lock()
	x.mergeLocked(shard)
	x.mu.Unlock()
}

// AddDays aggregates several days' record slices, sharding the accumulation
// across up to `workers` goroutines — one shard per slice. Shard-local sums
// merge into the index under one lock.
//
// Because a window belongs to exactly one day, distinct shards never touch
// the same (region, day) or (region, window) cell: every cell's severity is
// accumulated in a single shard, in record order. Building a fresh index
// from per-day slices therefore produces bit-identical floats to feeding the
// same slices through Add one day at a time, for every worker count.
//
//atyplint:deterministic
func (x *SeverityIndex) AddDays(ctx context.Context, days [][]cps.Record, workers int) error {
	shards := make([]*severityShard, len(days))
	if err := par.Do(ctx, len(days), workers, func(i int) error {
		shards[i] = x.accumulate(days[i])
		return nil
	}); err != nil {
		return err
	}
	x.mu.Lock()
	for _, s := range shards {
		x.mergeLocked(s)
	}
	x.mu.Unlock()
	return nil
}

// severityShard is one lock-free partial accumulation.
type severityShard struct {
	perDay    map[geo.RegionID]map[int]cps.Severity
	perWindow map[geo.RegionID]map[cps.Window]cps.Severity
}

// accumulate sums records into a private shard; no lock required.
func (x *SeverityIndex) accumulate(recs []cps.Record) *severityShard {
	s := &severityShard{
		perDay:    make(map[geo.RegionID]map[int]cps.Severity),
		perWindow: make(map[geo.RegionID]map[cps.Window]cps.Severity),
	}
	perDay := cps.Window(x.spec.PerDay())
	for _, r := range recs {
		region := x.net.Sensor(r.Sensor).Region
		if region == geo.NoRegion {
			continue
		}
		day := int(r.Window / perDay)
		dm := s.perDay[region]
		if dm == nil {
			dm = make(map[int]cps.Severity)
			s.perDay[region] = dm
		}
		dm[day] += r.Severity
		wm := s.perWindow[region]
		if wm == nil {
			wm = make(map[cps.Window]cps.Severity)
			s.perWindow[region] = wm
		}
		wm[r.Window] += r.Severity
	}
	return s
}

// mergeLocked folds a shard into the index. Cells are independent, so the
// map iteration order cannot influence any resulting value. Callers hold
// x.mu.
func (x *SeverityIndex) mergeLocked(s *severityShard) {
	for region, dm := range s.perDay { //atyplint:ignore rangedeterminism cells are disjoint; += on distinct keys commutes exactly
		gdm := x.perDay[region]
		if gdm == nil {
			gdm = make(map[int]cps.Severity, len(dm))
			x.perDay[region] = gdm
		}
		for day, sev := range dm { //atyplint:ignore rangedeterminism cells are disjoint; += on distinct keys commutes exactly
			gdm[day] += sev
		}
	}
	for region, wm := range s.perWindow { //atyplint:ignore rangedeterminism cells are disjoint; += on distinct keys commutes exactly
		gwm := x.perWindow[region]
		if gwm == nil {
			gwm = make(map[cps.Window]cps.Severity, len(wm))
			x.perWindow[region] = gwm
		}
		for w, sev := range wm { //atyplint:ignore rangedeterminism cells are disjoint; += on distinct keys commutes exactly
			gwm[w] += sev
		}
	}
}

// F returns the total severity F(W', T) of one region over tr (Equation 1
// restricted to W' = region). Day-aligned spans use the per-day rollup;
// ragged edges fall back to the window map.
func (x *SeverityIndex) F(region geo.RegionID, tr cps.TimeRange) cps.Severity {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.fLocked(region, tr)
}

// fLocked is F for callers already holding x.mu (either mode); multi-region
// rollups take the lock once instead of per region.
func (x *SeverityIndex) fLocked(region geo.RegionID, tr cps.TimeRange) cps.Severity {
	if tr.Len() == 0 {
		return 0
	}
	perDay := cps.Window(x.spec.PerDay())
	var total cps.Severity

	dayFrom := tr.From / perDay
	if tr.From%perDay != 0 {
		dayFrom++ // first whole day
	}
	dayTo := tr.To / perDay // first day NOT fully covered

	if dayFrom >= dayTo {
		// No whole day inside: window map only.
		wm := x.perWindow[region]
		for w := tr.From; w < tr.To; w++ {
			total += wm[w]
		}
		return total
	}
	dm := x.perDay[region]
	for d := dayFrom; d < dayTo; d++ {
		total += dm[int(d)]
	}
	wm := x.perWindow[region]
	for w := tr.From; w < dayFrom*perDay; w++ {
		total += wm[w]
	}
	for w := dayTo * perDay; w < tr.To; w++ {
		total += wm[w]
	}
	return total
}

// FTotal returns F(W, T) summed over a region set — the distributive rollup
// of Property 4.
func (x *SeverityIndex) FTotal(regions []geo.RegionID, tr cps.TimeRange) cps.Severity {
	x.mu.RLock()
	defer x.mu.RUnlock()
	var total cps.Severity
	for _, r := range regions {
		total += x.fLocked(r, tr)
	}
	return total
}

// FScan recomputes F(W, T) directly from records (Equation 1 verbatim):
// the correctness oracle and the "no index" ablation baseline.
func FScan(net *traffic.Network, recs []cps.Record, regions []geo.RegionID, tr cps.TimeRange) cps.Severity {
	inW := make(map[geo.RegionID]bool, len(regions))
	for _, r := range regions {
		inW[r] = true
	}
	var total cps.Severity
	for _, r := range recs {
		if !tr.Contains(r.Window) {
			continue
		}
		if inW[net.Sensor(r.Sensor).Region] {
			total += r.Severity
		}
	}
	return total
}

// RedZones returns the regions among `regions` whose total severity reaches
// the significance bound δs·length(T)·N, where N is the sensor count of the
// whole query region W (Property 5: a region below the bound can host no
// significant cluster). The result is ascending by region id.
func (x *SeverityIndex) RedZones(regions []geo.RegionID, tr cps.TimeRange, deltaS float64, numSensorsInW int) []geo.RegionID {
	bound := cps.Severity(deltaS * float64(tr.Len()) * float64(numSensorsInW))
	x.mu.RLock()
	defer x.mu.RUnlock()
	var out []geo.RegionID
	for _, r := range regions {
		if x.fLocked(r, tr) >= bound {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// GuidedRedZones applies Property 5 along the pre-defined spatial hierarchy
// (the paper's "zipcode area hierarchy", Example 7): a region is a red zone
// if its own total severity passes the significance bound, or if its
// enclosing district's does. A significant cluster's severity can be spread
// over several sub-bound regions; the district test — every bit as sound
// under Property 5, since a district is just a coarser pre-defined region —
// keeps such a cluster's micro-clusters from being pruned. The result is
// ascending by region id.
func (x *SeverityIndex) GuidedRedZones(regions []geo.RegionID, tr cps.TimeRange, deltaS float64, numSensorsInW int) []geo.RegionID {
	bound := cps.Severity(deltaS * float64(tr.Len()) * float64(numSensorsInW))
	x.mu.RLock()
	defer x.mu.RUnlock()
	byDistrict := make(map[int][]geo.RegionID)
	for _, r := range regions {
		d := x.net.Grid.Region(r).District
		byDistrict[d] = append(byDistrict[d], r)
	}
	var out []geo.RegionID
	for _, members := range byDistrict {
		var districtF cps.Severity
		before := len(out)
		for _, r := range members {
			f := x.fLocked(r, tr)
			districtF += f
			if f >= bound {
				out = append(out, r)
			}
		}
		if len(out) == before && districtF >= bound {
			// No single region reaches the bound but the district does: a
			// significant cluster spread across its regions is possible.
			// Keep the regions carrying at least a fair share of the bound
			// — a cluster reaching the bound inside this district must
			// place that much in one of them.
			share := bound / cps.Severity(len(members))
			for _, r := range members {
				if x.fLocked(r, tr) >= share {
					out = append(out, r)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
