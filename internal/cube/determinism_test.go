package cube_test

// Determinism harness: query answers and rendered reports must be
// byte-identical across independent builds from the same records. Go
// randomizes map iteration order per map instance, so building the model
// twice in one process exercises exactly the hazard the rangedeterminism
// analyzer guards: any map-order leak into a query result list, heatmap or
// report shows up here as a byte difference.

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/cpskit/atypical/internal/cluster"
	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/cube"
	"github.com/cpskit/atypical/internal/geo"
	"github.com/cpskit/atypical/internal/report"
	"github.com/cpskit/atypical/internal/traffic"
)

func detNet() *traffic.Network {
	return traffic.GenerateNetwork(traffic.ScaledConfig(300))
}

func detRecords(net *traffic.Network, n int, seed int64, days int) []cps.Record {
	rng := rand.New(rand.NewSource(seed))
	spec := cps.DefaultSpec()
	recs := make([]cps.Record, n)
	for i := range recs {
		recs[i] = cps.Record{
			Sensor:   cps.SensorID(rng.Intn(net.NumSensors())),
			Window:   cps.Window(rng.Intn(days * spec.PerDay())),
			Severity: cps.Severity(rng.Intn(5)) + 1,
		}
	}
	return cps.NewRecordSet(recs).Records()
}

func buildCube(net *traffic.Network, recs []cps.Record) *cube.CubeView {
	cv := cube.NewCubeView(net, cps.DefaultSpec(), 28, nil)
	for _, r := range recs {
		cv.AddRecord(r)
	}
	return cv
}

// renderCube serializes every read path of the cube: full slices, both
// rollups and the top-k ranking of each materialized level.
func renderCube(cv *cube.CubeView) string {
	var b strings.Builder
	for _, lp := range cv.Levels() {
		fmt.Fprintf(&b, "# level %v/%v\n", lp.S, lp.T)
		fmt.Fprintf(&b, "slice: %v\n", cv.Slice(lp, 0, 1<<62))
		fmt.Fprintf(&b, "rollupT: %v\n", cv.RollupTemporal(lp))
		fmt.Fprintf(&b, "rollupS: %v\n", cv.RollupSpatial(lp))
		fmt.Fprintf(&b, "top: %v\n", cv.TopCells(lp, 25))
	}
	return b.String()
}

func TestCubeQueriesByteIdenticalAcrossBuilds(t *testing.T) {
	net := detNet()
	recs := detRecords(net, 4000, 11, 7)
	a := renderCube(buildCube(net, recs))
	b := renderCube(buildCube(net, recs))
	if a != b {
		t.Fatalf("cube query output differs between identical builds:\n%s", firstDiff(a, b))
	}
	if a == "" {
		t.Fatal("rendered cube output is empty; the determinism check is vacuous")
	}
}

// TestReportByteIdenticalAcrossBuilds renders the human-facing report
// surfaces from two independently constructed (but identical) cluster sets.
func TestReportByteIdenticalAcrossBuilds(t *testing.T) {
	net := detNet()
	spec := cps.DefaultSpec()
	recs := detRecords(net, 2000, 23, 7)

	render := func() string {
		var gen cluster.IDGen
		perDay := cps.Window(spec.PerDay())
		// One micro-cluster per day, then one rolling macro merge — enough
		// structure to cover Describe, Ranking, HourHistogram and
		// HighwayBreakdown with multi-highway clusters.
		var micros []*cluster.Cluster
		byDay := map[int][]cps.Record{}
		for _, r := range recs {
			d := int(r.Window / perDay)
			byDay[d] = append(byDay[d], r)
		}
		cps.ForEachDay(byDay, func(_ int, day []cps.Record) {
			micros = append(micros, cluster.FromRecords(gen.Next(), day))
		})
		macro := micros[0]
		for _, m := range micros[1:] {
			macro = cluster.Merge(&gen, macro, m)
		}
		var b strings.Builder
		b.WriteString(report.Ranking(net, spec, micros))
		b.WriteString(report.Describe(net, spec, macro))
		b.WriteString("\n")
		b.WriteString(report.HourHistogram(spec, macro, 40))
		b.WriteString(report.HighwayBreakdown(net, macro))
		return b.String()
	}

	a, b := render(), render()
	if a != b {
		t.Fatalf("report output differs between identical builds:\n%s", firstDiff(a, b))
	}
}

// renderSeverity serializes every read path of the severity index across a
// spread of regions and time ranges.
func renderSeverity(x *cube.SeverityIndex, net *traffic.Network, spec cps.WindowSpec) string {
	regions := make([]geo.RegionID, 0, net.Grid.NumRegions())
	for _, r := range net.Grid.Regions() {
		regions = append(regions, r.ID)
	}
	var b strings.Builder
	for _, tr := range []cps.TimeRange{
		cps.DayRange(spec, 0, 7),
		cps.DayRange(spec, 3, 2),
		{From: 9, To: cps.Window(5*spec.PerDay() + 31)},
	} {
		fmt.Fprintf(&b, "# %v\n", tr)
		fmt.Fprintf(&b, "total: %v\n", x.FTotal(regions, tr))
		for _, r := range regions {
			fmt.Fprintf(&b, "F[%d]=%v\n", r, x.F(r, tr))
		}
		fmt.Fprintf(&b, "red: %v\n", x.RedZones(regions, tr, 0.005, net.NumSensors()))
		fmt.Fprintf(&b, "gui: %v\n", x.GuidedRedZones(regions, tr, 0.005, net.NumSensors()))
	}
	return b.String()
}

// TestSeverityParallelBuildByteIdentical extends the byte-identity harness
// to the parallel offline build: the day-sharded AddDays path must render
// exactly the serial index, for every worker count.
func TestSeverityParallelBuildByteIdentical(t *testing.T) {
	net := detNet()
	spec := cps.DefaultSpec()
	recs := detRecords(net, 6000, 37, 7)
	byDay := cps.NewRecordSet(recs).SplitByDay(spec)
	var days [][]cps.Record
	cps.ForEachDay(byDay, func(_ int, day []cps.Record) {
		days = append(days, day)
	})

	serial := cube.NewSeverityIndex(net, spec)
	serial.Add(recs)
	want := renderSeverity(serial, net, spec)
	if want == "" {
		t.Fatal("rendered severity output is empty; the determinism check is vacuous")
	}
	for _, workers := range []int{1, 3, 8, -1} {
		x := cube.NewSeverityIndex(net, spec)
		if err := x.AddDays(context.Background(), days, workers); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := renderSeverity(x, net, spec); got != want {
			t.Fatalf("workers=%d severity output differs from serial build:\n%s",
				workers, firstDiff(got, want))
		}
	}
}

// FuzzCubeDeterminism drives the byte-identity property from fuzzed record
// multisets; `make fuzz-smoke` gives it a bounded budget in CI.
func FuzzCubeDeterminism(f *testing.F) {
	net := detNet()
	spec := cps.DefaultSpec()
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6})
	f.Add([]byte{0, 0, 1, 0, 0, 1, 255, 255, 16})
	f.Fuzz(func(t *testing.T, data []byte) {
		var recs []cps.Record
		for d := data; len(d) >= 3; d = d[3:] {
			recs = append(recs, cps.Record{
				Sensor:   cps.SensorID(int(d[0]) % net.NumSensors()),
				Window:   cps.Window(int(d[1])+int(d[2])*256) % cps.Window(7*spec.PerDay()),
				Severity: cps.Severity(d[2]%8) + 1,
			})
		}
		a := renderCube(buildCube(net, recs))
		b := renderCube(buildCube(net, recs))
		if a != b {
			t.Fatalf("cube query output differs between identical builds:\n%s", firstDiff(a, b))
		}
	})
}

// firstDiff locates the first byte where two renderings diverge.
func firstDiff(a, b string) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := i - 60
			if lo < 0 {
				lo = 0
			}
			return fmt.Sprintf("first difference at byte %d:\n a: …%q\n b: …%q", i, a[lo:i+20], b[lo:i+20])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d", len(a), len(b))
}
