package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/cpskit/atypical/internal/cps"
)

func sf(pairs ...float64) SpatialFeature {
	var entries []Entry[cps.SensorID]
	for i := 0; i+1 < len(pairs); i += 2 {
		entries = append(entries, Entry[cps.SensorID]{Key: cps.SensorID(pairs[i]), Sev: cps.Severity(pairs[i+1])})
	}
	return NewFeature(entries)
}

func TestNewFeatureSortsAndCoalesces(t *testing.T) {
	f := sf(3, 1, 1, 2, 3, 4)
	if len(f) != 2 {
		t.Fatalf("len = %d", len(f))
	}
	if f[0].Key != 1 || f[0].Sev != 2 {
		t.Errorf("f[0] = %+v", f[0])
	}
	if f[1].Key != 3 || f[1].Sev != 5 {
		t.Errorf("f[1] = %+v", f[1])
	}
	if !f.Valid() {
		t.Error("canonical feature should be valid")
	}
}

func TestFeatureGetTotalKeys(t *testing.T) {
	f := sf(1, 2, 5, 3)
	if f.Total() != 5 {
		t.Errorf("Total = %v", f.Total())
	}
	if f.Get(1) != 2 || f.Get(5) != 3 || f.Get(9) != 0 {
		t.Error("Get mismatch")
	}
	keys := f.Keys()
	if len(keys) != 2 || keys[0] != 1 || keys[1] != 5 {
		t.Errorf("Keys = %v", keys)
	}
}

func TestFeatureClone(t *testing.T) {
	f := sf(1, 2)
	c := f.Clone()
	c[0].Sev = 99
	if f[0].Sev != 2 {
		t.Error("Clone should be independent")
	}
}

func TestMergeFeatureExample(t *testing.T) {
	// Equation 5 semantics: common keys accumulate, the rest carry over.
	a := sf(1, 10, 2, 5)
	b := sf(2, 7, 3, 1)
	m := MergeFeature(a, b)
	if len(m) != 3 {
		t.Fatalf("len = %d", len(m))
	}
	if m.Get(1) != 10 || m.Get(2) != 12 || m.Get(3) != 1 {
		t.Errorf("merged = %v", m)
	}
	// Inputs untouched.
	if a.Get(2) != 5 || b.Get(2) != 7 {
		t.Error("MergeFeature must not mutate inputs")
	}
}

func TestMergeFeatureEmpty(t *testing.T) {
	a := sf(1, 1)
	if got := MergeFeature(a, SpatialFeature(nil)); len(got) != 1 || got.Get(1) != 1 {
		t.Errorf("merge with empty = %v", got)
	}
	if got := MergeFeature[cps.SensorID](nil, nil); len(got) != 0 {
		t.Errorf("merge of empties = %v", got)
	}
}

func TestOverlapFractions(t *testing.T) {
	a := sf(1, 6, 2, 4) // total 10, common keys {2}: 4
	b := sf(2, 2, 3, 2) // total 4, common: 2
	p1, p2 := OverlapFractions(a, b)
	if math.Abs(p1-0.4) > 1e-12 || math.Abs(p2-0.5) > 1e-12 {
		t.Errorf("fractions = %v, %v", p1, p2)
	}
	// Disjoint features share nothing.
	p1, p2 = OverlapFractions(sf(1, 1), sf(2, 1))
	if p1 != 0 || p2 != 0 {
		t.Error("disjoint overlap should be zero")
	}
	// Identical features overlap fully.
	p1, p2 = OverlapFractions(a, a)
	if p1 != 1 || p2 != 1 {
		t.Errorf("self overlap = %v, %v", p1, p2)
	}
	// Empty features yield zero, not NaN.
	p1, p2 = OverlapFractions(nil, a)
	if p1 != 0 || p2 != 0 {
		t.Error("empty overlap should be zero")
	}
}

func TestCommonKeyCount(t *testing.T) {
	if got := CommonKeyCount(sf(1, 1, 2, 1, 3, 1), sf(2, 1, 3, 1, 4, 1)); got != 2 {
		t.Errorf("CommonKeyCount = %d", got)
	}
	if got := CommonKeyCount[cps.SensorID](nil, nil); got != 0 {
		t.Errorf("empty CommonKeyCount = %d", got)
	}
}

func TestFeatureValid(t *testing.T) {
	bad1 := SpatialFeature{{Key: 2, Sev: 1}, {Key: 1, Sev: 1}} // unsorted
	bad2 := SpatialFeature{{Key: 1, Sev: 0}}                   // non-positive severity
	bad3 := SpatialFeature{{Key: 1, Sev: 1}, {Key: 1, Sev: 2}} // duplicate key
	if bad1.Valid() || bad2.Valid() || bad3.Valid() {
		t.Error("invalid features accepted")
	}
}

func featureFromSeeds(xs []uint16) SpatialFeature {
	entries := make([]Entry[cps.SensorID], 0, len(xs))
	for _, x := range xs {
		entries = append(entries, Entry[cps.SensorID]{
			Key: cps.SensorID(x % 32),
			Sev: cps.Severity(x%7) + 0.5,
		})
	}
	return NewFeature(entries)
}

// Property: MergeFeature is commutative, associative, total-preserving, and
// produces valid features — the algebraic feature property (paper
// Property 2) at feature level.
func TestMergeFeatureAlgebraicProperty(t *testing.T) {
	f := func(xs, ys, zs []uint16) bool {
		a, b, c := featureFromSeeds(xs), featureFromSeeds(ys), featureFromSeeds(zs)
		ab := MergeFeature(a, b)
		ba := MergeFeature(b, a)
		if len(ab) != len(ba) {
			return false
		}
		for i := range ab {
			if ab[i].Key != ba[i].Key || !approxEq(float64(ab[i].Sev), float64(ba[i].Sev)) {
				return false
			}
		}
		abc1 := MergeFeature(ab, c)
		abc2 := MergeFeature(a, MergeFeature(b, c))
		if len(abc1) != len(abc2) {
			return false
		}
		for i := range abc1 {
			if abc1[i].Key != abc2[i].Key || !approxEq(float64(abc1[i].Sev), float64(abc2[i].Sev)) {
				return false
			}
		}
		if !abc1.Valid() {
			return false
		}
		return approxEq(float64(abc1.Total()), float64(a.Total()+b.Total()+c.Total()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: overlap fractions stay in [0, 1] and are symmetric as a pair.
func TestOverlapFractionsBoundsProperty(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		a, b := featureFromSeeds(xs), featureFromSeeds(ys)
		p1, p2 := OverlapFractions(a, b)
		q2, q1 := OverlapFractions(b, a)
		if p1 < 0 || p1 > 1+1e-12 || p2 < 0 || p2 > 1+1e-12 {
			return false
		}
		return approxEq(p1, q1) && approxEq(p2, q2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
