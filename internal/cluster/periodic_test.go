package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/cpskit/atypical/internal/cps"
)

const day = cps.Window(288)

// dailyCluster builds a cluster active at windows offset..offset+n-1 of the
// given day.
func dailyCluster(g *IDGen, dayIdx int, sensor int, offset, n int) *Cluster {
	var recs []cps.Record
	for k := 0; k < n; k++ {
		recs = append(recs, cps.Record{
			Sensor:   cps.SensorID(sensor),
			Window:   cps.Window(dayIdx)*day + cps.Window(offset+k),
			Severity: 4,
		})
	}
	return FromRecords(g.Next(), recs)
}

func TestFoldTemporal(t *testing.T) {
	tf := TemporalFeature{
		{Key: 100, Sev: 2},       // day 0, offset 100
		{Key: day + 100, Sev: 3}, // day 1, offset 100 — folds onto the same bucket
		{Key: day + 200, Sev: 1}, // day 1, offset 200
	}
	folded := FoldTemporal(tf, day)
	if len(folded) != 2 {
		t.Fatalf("folded = %v", folded)
	}
	if folded.Get(100) != 5 || folded.Get(200) != 1 {
		t.Errorf("folded = %v", folded)
	}
	if folded.Total() != tf.Total() {
		t.Error("folding must conserve mass")
	}
	// Period 0 returns the input unchanged.
	if got := FoldTemporal(tf, 0); len(got) != 3 {
		t.Errorf("period 0 = %v", got)
	}
}

func TestFoldTemporalNegativeWindows(t *testing.T) {
	tf := TemporalFeature{{Key: -1, Sev: 1}} // last window of "day -1"
	folded := FoldTemporal(tf, day)
	if len(folded) != 1 || folded[0].Key != day-1 {
		t.Errorf("negative fold = %v", folded)
	}
}

func TestSimilarityAtRecurringDays(t *testing.T) {
	var g IDGen
	monday := dailyCluster(&g, 0, 1, 90, 10)
	tuesday := dailyCluster(&g, 1, 1, 90, 10)
	// Absolute similarity: same sensor, disjoint windows -> 0.5.
	if got := Similarity(monday, tuesday, Arithmetic); got != 0.5 {
		t.Errorf("absolute similarity = %v", got)
	}
	// Periodic similarity: same time of day too -> 1.
	if got := SimilarityAt(monday, tuesday, Arithmetic, day); math.Abs(got-1) > 1e-12 {
		t.Errorf("periodic similarity = %v", got)
	}
	// Morning vs evening on the same sensor stays 0.5 even folded
	// (Example 2's distinction).
	evening := dailyCluster(&g, 1, 1, 200, 10)
	if got := SimilarityAt(monday, evening, Arithmetic, day); got != 0.5 {
		t.Errorf("morning-vs-evening periodic similarity = %v", got)
	}
}

func TestTemporalSimilarityAt(t *testing.T) {
	var g IDGen
	a := dailyCluster(&g, 0, 1, 90, 10)
	b := dailyCluster(&g, 3, 2, 90, 10) // different sensor, same time of day
	if got := TemporalSimilarityAt(a, b, Arithmetic, day); math.Abs(got-1) > 1e-12 {
		t.Errorf("folded temporal similarity = %v", got)
	}
	if got := TemporalSimilarity(a, b, Arithmetic); got != 0 {
		t.Errorf("absolute temporal similarity = %v", got)
	}
}

func TestFoldedKeys(t *testing.T) {
	var g IDGen
	c := Merge(&g, dailyCluster(&g, 0, 1, 90, 2), dailyCluster(&g, 1, 1, 90, 2))
	keys := c.FoldedKeys(day)
	if len(keys) != 2 || keys[0] != 90 || keys[1] != 91 {
		t.Errorf("folded keys = %v", keys)
	}
	// Absolute keys without a period.
	if got := c.FoldedKeys(0); len(got) != 4 {
		t.Errorf("absolute keys = %v", got)
	}
}

func TestFoldCacheInvalidatesOnPeriodChange(t *testing.T) {
	var g IDGen
	c := Merge(&g, dailyCluster(&g, 0, 1, 90, 2), dailyCluster(&g, 1, 1, 90, 2))
	if got := len(c.FoldedKeys(day)); got != 2 {
		t.Fatalf("day fold = %d keys", got)
	}
	// A different period must not serve the stale cache.
	if got := len(c.FoldedKeys(day * 2)); got != 4 {
		t.Errorf("two-day fold = %d keys, want 4", got)
	}
	if got := len(c.FoldedKeys(day)); got != 2 {
		t.Errorf("re-fold = %d keys, want 2", got)
	}
}

// Integration with a period merges recurring daily events; without, it
// cannot.
func TestIntegratePeriodic(t *testing.T) {
	var g IDGen
	micros := []*Cluster{
		dailyCluster(&g, 0, 1, 90, 10),
		dailyCluster(&g, 1, 1, 90, 10),
		dailyCluster(&g, 2, 1, 90, 10),
	}
	absolute := Integrate(&g, micros, IntegrateOptions{SimThreshold: 0.5, Balance: Arithmetic})
	if len(absolute) != 3 {
		t.Errorf("absolute integration merged: %d clusters", len(absolute))
	}
	periodic := Integrate(&g, micros, IntegrateOptions{SimThreshold: 0.5, Balance: Arithmetic, Period: day})
	if len(periodic) != 1 {
		t.Fatalf("periodic integration = %d clusters, want 1", len(periodic))
	}
	if periodic[0].Micros != 3 {
		t.Errorf("merged micros = %d", periodic[0].Micros)
	}
}

// Properties of periodic similarity: symmetry, bounds, reflexivity, and
// equality with absolute similarity when all windows share one period.
func TestSimilarityAtProperties(t *testing.T) {
	f := func(seed int64, gIdx uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var gen IDGen
		a, b := randomCluster(rng, &gen), randomCluster(rng, &gen)
		g := Balances[int(gIdx)%len(Balances)]
		s := SimilarityAt(a, b, g, day)
		if s < 0 || s > 1+1e-12 {
			return false
		}
		if math.Abs(s-SimilarityAt(b, a, g, day)) > 1e-12 {
			return false
		}
		if math.Abs(SimilarityAt(a, a, g, day)-1) > 1e-12 {
			return false
		}
		// randomCluster windows live in [0, 40) ⊂ one day: folding is the
		// identity, so periodic == absolute.
		return math.Abs(s-Similarity(a, b, g)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Folding conserves total severity for arbitrary features and periods.
func TestFoldConservationProperty(t *testing.T) {
	f := func(seeds []uint16, periodRaw uint8) bool {
		period := cps.Window(periodRaw%64) + 1
		entries := make([]Entry[cps.Window], 0, len(seeds))
		for _, x := range seeds {
			entries = append(entries, Entry[cps.Window]{
				Key: cps.Window(x % 2048),
				Sev: cps.Severity(x%5) + 0.5,
			})
		}
		tf := NewFeature(entries)
		folded := FoldTemporal(tf, period)
		if !folded.Valid() {
			return false
		}
		for _, e := range folded {
			if e.Key < 0 || e.Key >= period {
				return false
			}
		}
		return approxEq(float64(folded.Total()), float64(tf.Total()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
