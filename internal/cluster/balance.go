package cluster

import (
	"fmt"
	"math"
)

// Balance selects the mathematical balance function g(p1, p2) of Equations
// 3–4, which reconciles the two per-cluster overlap percentages when the
// clusters differ in size: max is the most aggressive integrator, min the
// most conservative (Section V-C, Fig. 21).
type Balance uint8

// The five balance functions evaluated in the paper.
const (
	Arithmetic Balance = iota // (p1+p2)/2 — the paper's default
	Max
	Min
	Geometric
	Harmonic
)

// Balances lists every balance function in the order the paper's Fig. 21
// legend uses.
var Balances = []Balance{Min, Harmonic, Geometric, Arithmetic, Max}

// String implements fmt.Stringer using the paper's figure labels.
func (b Balance) String() string {
	switch b {
	case Arithmetic:
		return "avg"
	case Max:
		return "max"
	case Min:
		return "min"
	case Geometric:
		return "geo"
	case Harmonic:
		return "har"
	default:
		return fmt.Sprintf("balance(%d)", uint8(b))
	}
}

// ParseBalance converts a figure label back into a Balance.
func ParseBalance(s string) (Balance, error) {
	switch s {
	case "avg", "arith", "arithmetic":
		return Arithmetic, nil
	case "max":
		return Max, nil
	case "min":
		return Min, nil
	case "geo", "geometric":
		return Geometric, nil
	case "har", "harmonic":
		return Harmonic, nil
	default:
		return 0, fmt.Errorf("cluster: unknown balance function %q", s)
	}
}

// Apply evaluates g(p1, p2). Inputs are overlap fractions in [0, 1]; the
// result stays in [0, 1] for every balance function.
func (b Balance) Apply(p1, p2 float64) float64 {
	switch b {
	case Max:
		return math.Max(p1, p2)
	case Min:
		return math.Min(p1, p2)
	case Geometric:
		return math.Sqrt(p1 * p2)
	case Harmonic:
		if p1+p2 == 0 {
			return 0
		}
		return 2 * p1 * p2 / (p1 + p2)
	default: // Arithmetic
		return (p1 + p2) / 2
	}
}
