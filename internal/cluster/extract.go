package cluster

import (
	"sort"
	"time"

	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/dsu"
	"github.com/cpskit/atypical/internal/geo"
	"github.com/cpskit/atypical/internal/index"
)

// MaxWindowGap converts the paper's time interval threshold δt into the
// largest window-index gap that still links two records: records ri, rj are
// temporally related iff interval(ti, tj) < δt, i.e. |wi−wj|·width < δt.
func MaxWindowGap(deltaT, width time.Duration) int {
	if deltaT <= 0 || width <= 0 {
		return 0
	}
	gap := int((deltaT - 1) / width)
	return gap
}

// ExtractEvents partitions canonical records into atypical events
// (Definition 3): the connected components of the "direct atypical related"
// relation (Definition 1 — sensors within δd and windows within δt).
//
// neighbors[s] must list the sensors strictly within δd of s (e.g. from
// index.NewNeighborIndex(...).NeighborLists()); maxGap is MaxWindowGap(δt,
// width). This is the indexed O(N + n·log n) path of Proposition 1. Events
// are returned with records in canonical order, sorted by first record.
func ExtractEvents(recs []cps.Record, neighbors [][]cps.SensorID, maxGap int) [][]cps.Record {
	if len(recs) == 0 {
		return nil
	}
	widx := index.NewWindowIndex(recs)
	d := dsu.New(len(recs))
	for i, r := range recs {
		for gap := 0; gap <= maxGap; gap++ {
			w := r.Window - cps.Window(gap)
			if gap > 0 {
				// The same sensor in an earlier window is always within δd.
				if j := widx.IndexOf(w, r.Sensor); j >= 0 {
					d.Union(i, j)
				}
			}
			for _, nb := range neighbors[r.Sensor] {
				if gap == 0 && nb >= r.Sensor {
					// Within one window, each unordered pair is visited
					// once from its higher-sensor endpoint.
					continue
				}
				if j := widx.IndexOf(w, nb); j >= 0 {
					d.Union(i, j)
				}
			}
		}
	}
	return componentsToEvents(recs, d)
}

// ExtractEventsBrute is the unindexed O(n²) pairwise variant of Proposition
// 1, kept as the correctness oracle and ablation baseline. locs maps
// SensorID to location; deltaD is the distance threshold in miles.
func ExtractEventsBrute(recs []cps.Record, locs []geo.Point, deltaD float64, maxGap int) [][]cps.Record {
	if len(recs) == 0 {
		return nil
	}
	d := dsu.New(len(recs))
	for i := 0; i < len(recs); i++ {
		for j := i + 1; j < len(recs); j++ {
			gap := recs[j].Window - recs[i].Window
			if gap < 0 {
				gap = -gap
			}
			if int(gap) > maxGap {
				continue
			}
			if recs[i].Sensor == recs[j].Sensor ||
				geo.DistanceMiles(locs[recs[i].Sensor], locs[recs[j].Sensor]) < deltaD {
				d.Union(i, j)
			}
		}
	}
	return componentsToEvents(recs, d)
}

func componentsToEvents(recs []cps.Record, d *dsu.DSU) [][]cps.Record {
	comps := d.Components()
	events := make([][]cps.Record, 0, len(comps))
	for _, members := range comps {
		ev := make([]cps.Record, len(members))
		for k, idx := range members {
			ev[k] = recs[idx]
		}
		// Members are ascending record indices over a canonical slice, so
		// each event is already in canonical order.
		events = append(events, ev)
	}
	sort.Slice(events, func(i, j int) bool { return events[i][0].Less(events[j][0]) })
	return events
}

// ExtractMicroClusters runs Algorithm 1 end to end: extract the atypical
// events and summarize each into a micro-cluster.
//
//atyplint:deterministic
func ExtractMicroClusters(gen *IDGen, recs []cps.Record, neighbors [][]cps.SensorID, maxGap int) []*Cluster {
	events := ExtractEvents(recs, neighbors, maxGap)
	out := make([]*Cluster, len(events))
	for i, ev := range events {
		out[i] = FromRecords(gen.Next(), ev)
	}
	return out
}
