package cluster

import (
	"reflect"
	"testing"
)

// TestMergeTreeWidths pins the reported tree shape to the reduction
// IntegrateParallelCtx actually performs.
func TestMergeTreeWidths(t *testing.T) {
	cases := []struct {
		n    int
		want []int
	}{
		{0, nil},
		{1, nil},
		{2, []int{1}},                       // one chunk, no reduction levels
		{integrateChunkSize, []int{1}},      // exactly one chunk
		{integrateChunkSize + 1, []int{2, 1}},
		{5 * integrateChunkSize, []int{5, 3, 2, 1}},
		{8 * integrateChunkSize, []int{8, 4, 2, 1}},
	}
	for _, c := range cases {
		if got := MergeTreeWidths(c.n); !reflect.DeepEqual(got, c.want) {
			t.Errorf("MergeTreeWidths(%d) = %v, want %v", c.n, got, c.want)
		}
	}
}

// TestMergeTreeWidthsMatchesReduction replays the reduction loop's own
// arithmetic for a sweep of sizes and checks the helper agrees level by
// level.
func TestMergeTreeWidthsMatchesReduction(t *testing.T) {
	for n := 2; n < 40*integrateChunkSize; n += 97 {
		groups := (n + integrateChunkSize - 1) / integrateChunkSize
		var want []int
		want = append(want, groups)
		for groups > 1 {
			groups = (groups + 1) / 2
			want = append(want, groups)
		}
		if got := MergeTreeWidths(n); !reflect.DeepEqual(got, want) {
			t.Fatalf("MergeTreeWidths(%d) = %v, want %v", n, got, want)
		}
	}
}
