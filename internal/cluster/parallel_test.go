package cluster

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/cpskit/atypical/internal/cps"
)

// chainNeighbors builds a line-graph adjacency: sensor i borders i-1 and i+1.
func chainNeighbors(n int) [][]cps.SensorID {
	out := make([][]cps.SensorID, n)
	for i := range out {
		if i > 0 {
			out[i] = append(out[i], cps.SensorID(i-1))
		}
		if i < n-1 {
			out[i] = append(out[i], cps.SensorID(i+1))
		}
	}
	return out
}

// parallelFixtureDays generates a deterministic multi-day workload: each day
// carries several bursts of atypical records on contiguous sensor runs, in
// canonical (window, sensor) order like the real per-day record slices.
func parallelFixtureDays(seed int64, numDays, numSensors int) []DayRecords {
	rng := rand.New(rand.NewSource(seed))
	days := make([]DayRecords, numDays)
	for d := range days {
		var recs []cps.Record
		bursts := 3 + rng.Intn(5)
		for b := 0; b < bursts; b++ {
			s0 := rng.Intn(numSensors - 4)
			w0 := cps.Window(d*288 + rng.Intn(280))
			for k := 0; k < 2+rng.Intn(4); k++ {
				recs = append(recs, cps.Record{
					Sensor:   cps.SensorID(s0 + k%4),
					Window:   w0 + cps.Window(k/2),
					Severity: cps.Severity(rng.Intn(4) + 1),
				})
			}
		}
		sort.Slice(recs, func(i, j int) bool {
			if recs[i].Window != recs[j].Window {
				return recs[i].Window < recs[j].Window
			}
			return recs[i].Sensor < recs[j].Sensor
		})
		days[d] = DayRecords{Day: d, Records: recs}
	}
	return days
}

// clustersExactEq requires identical IDs, micro counts and bit-identical
// features — the contract for paths that promise byte-identical reports.
func clustersExactEq(a, b []*Cluster) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Micros != b[i].Micros {
			return false
		}
		if !featuresExactEq(a[i].SF, b[i].SF) || !featuresExactEq(a[i].TF, b[i].TF) {
			return false
		}
	}
	return true
}

// The parallel extractor must reproduce the serial per-day loop — IDs
// included — for every worker count.
func TestExtractMicroClustersDaysMatchesSerial(t *testing.T) {
	const maxGap = 2
	days := parallelFixtureDays(7, 6, 40)
	neighbors := chainNeighbors(40)

	var serialGen IDGen
	serial := make([][]*Cluster, len(days))
	for i, d := range days {
		serial[i] = ExtractMicroClusters(&serialGen, d.Records, neighbors, maxGap)
	}

	serialNext := serialGen.Next() // first unconsumed ID after the serial run

	for _, workers := range []int{1, 2, 3, 8} {
		var gen IDGen
		got, err := ExtractMicroClustersDays(context.Background(), &gen, days, neighbors, maxGap, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(serial) {
			t.Fatalf("workers=%d: %d day slots, want %d", workers, len(got), len(serial))
		}
		for i := range got {
			if !clustersExactEq(got[i], serial[i]) {
				t.Fatalf("workers=%d: day %d diverges from serial extraction", workers, i)
			}
		}
		if next := gen.Next(); next != serialNext {
			t.Fatalf("workers=%d: ID budget diverged: parallel next=%d serial next=%d", workers, next, serialNext)
		}
	}
}

func TestExtractMicroClustersDaysEmptyAndCancelled(t *testing.T) {
	var gen IDGen
	out, err := ExtractMicroClustersDays(context.Background(), &gen, nil, nil, 1, 4)
	if err != nil || out != nil {
		t.Fatalf("empty batch: out=%v err=%v", out, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	days := parallelFixtureDays(1, 3, 20)
	if _, err := ExtractMicroClustersDays(ctx, &gen, days, chainNeighbors(20), 1, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled batch err = %v", err)
	}
}

// The merge-tree result must be identical — IDs and feature bits — for every
// worker count, because the tree shape is fixed by the input alone.
func TestIntegrateParallelWorkersIndependent(t *testing.T) {
	build := func() (*IDGen, []*Cluster) {
		rng := rand.New(rand.NewSource(11))
		var g IDGen
		return &g, randomMicros(rng, &g, 300)
	}
	opts := defaultOpts()
	refGen, refMicros := build()
	ref := IntegrateParallel(refGen, refMicros, opts, 1)
	for _, workers := range []int{2, 3, 8, 16} {
		gen, micros := build()
		got := IntegrateParallel(gen, micros, opts, workers)
		if !clustersExactEq(got, ref) {
			t.Fatalf("workers=%d: output differs from workers=1", workers)
		}
	}
}

// IntegrateParallel keeps the Algorithm 3 postcondition and the conservation
// laws (total severity, total micro count) that Integrate keeps.
func TestIntegrateParallelInvariants(t *testing.T) {
	f := func(seed int64, gIdx, thIdx uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var g IDGen
		micros := randomMicros(rng, &g, 2+rng.Intn(40))
		opts := IntegrateOptions{
			SimThreshold: []float64{0.2, 0.5, 0.8}[int(thIdx)%3],
			Balance:      Balances[int(gIdx)%len(Balances)],
		}
		var wantSev cps.Severity
		for _, m := range micros {
			wantSev += m.Severity()
		}
		out := IntegrateParallel(&g, micros, opts, 4)
		var gotSev cps.Severity
		gotMicros := 0
		for _, c := range out {
			gotSev += c.Severity()
			gotMicros += c.Micros
			if !c.SF.Valid() || !c.TF.Valid() {
				return false
			}
		}
		if !approxEq(float64(gotSev), float64(wantSev)) || gotMicros != len(micros) {
			return false
		}
		return FixpointHolds(out, opts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// On workloads whose groups are separated by the threshold, the parallel
// reduction lands on the same partition as the serial path.
func TestIntegrateParallelMatchesSerialOnSeparatedGroups(t *testing.T) {
	var g IDGen
	var micros []*Cluster
	// Well-separated groups, enough micros to spill across several chunks.
	const groups = 5
	for grp := 0; grp < groups; grp++ {
		for rep := 0; rep < 60; rep++ {
			var recs []cps.Record
			for k := 0; k < 4; k++ {
				recs = append(recs, cps.Record{
					Sensor:   cps.SensorID(grp*100 + k),
					Window:   cps.Window(grp*1000 + k),
					Severity: cps.Severity(rep%3 + 1),
				})
			}
			micros = append(micros, FromRecords(g.Next(), recs))
		}
	}
	opts := defaultOpts()
	serial := Integrate(&g, micros, opts)
	par := IntegrateParallel(&g, micros, opts, 4)
	if len(serial) != groups || len(par) != groups {
		t.Fatalf("serial=%d parallel=%d, want %d groups", len(serial), len(par), groups)
	}
	// Same partition: match clusters by sensor span and compare severities.
	bySensor := func(set []*Cluster) map[cps.SensorID]*Cluster {
		m := make(map[cps.SensorID]*Cluster)
		for _, c := range set {
			m[c.Sensors()[0]] = c
		}
		return m
	}
	sm, pm := bySensor(serial), bySensor(par)
	for key, sc := range sm {
		pc, ok := pm[key]
		if !ok {
			t.Fatalf("parallel output missing group anchored at sensor %d", key)
		}
		if pc.Micros != sc.Micros || !approxEq(float64(pc.Severity()), float64(sc.Severity())) {
			t.Fatalf("group %d: parallel (micros=%d sev=%v) vs serial (micros=%d sev=%v)",
				key, pc.Micros, pc.Severity(), sc.Micros, sc.Severity())
		}
	}
}

func TestIntegrateParallelSmallInputsPassThrough(t *testing.T) {
	var g IDGen
	if out := IntegrateParallel(&g, nil, defaultOpts(), 4); len(out) != 0 {
		t.Error("empty input should stay empty")
	}
	c := FromRecords(g.Next(), []cps.Record{{Sensor: 1, Window: 0, Severity: 1}})
	out := IntegrateParallel(&g, []*Cluster{c}, defaultOpts(), 4)
	if len(out) != 1 || out[0] != c {
		t.Error("single cluster should pass through unchanged")
	}
	if c.ID != 1 {
		t.Errorf("pass-through cluster was renumbered to %d", c.ID)
	}
}

func TestIntegrateParallelCtxCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var g IDGen
	micros := randomMicros(rng, &g, 400)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := IntegrateParallelCtx(ctx, &g, micros, defaultOpts(), 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestIntegrateParallelPanicsOnZeroThreshold(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	var g IDGen
	IntegrateParallel(&g, nil, IntegrateOptions{SimThreshold: 0}, 4)
}

// FuzzParallelIntegrateEquivalence drives IntegrateParallel with arbitrary
// record multisets and checks the determinism contract (worker-count
// independence, bit for bit) plus the conservation laws shared with the
// serial path. Registered in the Makefile fuzz-smoke list.
func FuzzParallelIntegrateEquivalence(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte, split byte) {
		recs := fuzzRecords(data)
		if len(recs) == 0 {
			return
		}
		// Slice the multiset into micro-clusters of (split%5)+1 records.
		width := int(split)%5 + 1
		build := func() (*IDGen, []*Cluster) {
			var gen IDGen
			var micros []*Cluster
			for lo := 0; lo < len(recs); lo += width {
				hi := lo + width
				if hi > len(recs) {
					hi = len(recs)
				}
				micros = append(micros, FromRecords(gen.Next(), recs[lo:hi]))
			}
			return &gen, micros
		}
		opts := IntegrateOptions{SimThreshold: 0.5, Balance: Arithmetic}

		gen1, micros1 := build()
		var wantSev cps.Severity
		for _, m := range micros1 {
			wantSev += m.Severity()
		}
		out1 := IntegrateParallel(gen1, micros1, opts, 1)

		gen4, micros4 := build()
		out4 := IntegrateParallel(gen4, micros4, opts, 4)
		if !clustersExactEq(out1, out4) {
			t.Fatalf("worker count changed the result: %d clusters at w=1 vs %d at w=4", len(out1), len(out4))
		}

		var gotSev cps.Severity
		gotMicros := 0
		for _, c := range out1 {
			gotSev += c.Severity()
			gotMicros += c.Micros
			if !c.SF.Valid() || !c.TF.Valid() {
				t.Fatalf("non-canonical feature in output: %v", c)
			}
		}
		if !approxEq(float64(gotSev), float64(wantSev)) {
			t.Fatalf("severity not conserved: got %v want %v", gotSev, wantSev)
		}
		if gotMicros != len(micros1) {
			t.Fatalf("micro count not conserved: got %d want %d", gotMicros, len(micros1))
		}
		if !FixpointHolds(out1, opts) {
			t.Fatal("fixpoint violated: a surviving pair exceeds the threshold")
		}
	})
}
