// Package cluster implements the paper's primary contribution: atypical
// events (Definitions 1–3), atypical micro-clusters (Definition 4,
// Algorithm 1), feature-based cluster similarity (Equations 2–4), cluster
// merging (Algorithm 2) and cluster integration into macro-clusters
// (Algorithm 3).
package cluster

import (
	"sort"

	"github.com/cpskit/atypical/internal/cps"
)

// Key constrains feature keys: sensors for spatial features, windows for
// temporal features.
type Key interface {
	~uint32 | ~int64
}

// Entry is one ⟨key, aggregated severity⟩ pair of a feature.
type Entry[K Key] struct {
	Key K
	Sev cps.Severity
}

// Feature is a sparse severity vector: entries sorted by key, keys unique,
// severities positive. The spatial feature SF of Definition 4 is a
// Feature[cps.SensorID] (μ values); the temporal feature TF is a
// Feature[cps.Window] (ν values).
//
// Features are algebraic (paper Property 2): merging two features is an
// O(m1+m2) sorted merge-join that sums severities on common keys and copies
// the rest — no recourse to the underlying records.
type Feature[K Key] []Entry[K]

// SpatialFeature is the per-sensor severity summary of a cluster.
type SpatialFeature = Feature[cps.SensorID]

// TemporalFeature is the per-window severity summary of a cluster.
type TemporalFeature = Feature[cps.Window]

// NewFeature builds a canonical feature from arbitrary entries, sorting and
// coalescing duplicates by summation.
func NewFeature[K Key](entries []Entry[K]) Feature[K] {
	f := make(Feature[K], len(entries))
	copy(f, entries)
	sort.Slice(f, func(i, j int) bool { return f[i].Key < f[j].Key })
	out := f[:0]
	for _, e := range f {
		if n := len(out); n > 0 && out[n-1].Key == e.Key {
			out[n-1].Sev += e.Sev
			continue
		}
		out = append(out, e)
	}
	return out
}

// Total returns the summed severity of the feature.
func (f Feature[K]) Total() cps.Severity {
	var t cps.Severity
	for _, e := range f {
		t += e.Sev
	}
	return t
}

// Get returns the severity aggregated on key, or zero when absent.
func (f Feature[K]) Get(key K) cps.Severity {
	i := sort.Search(len(f), func(i int) bool { return f[i].Key >= key })
	if i < len(f) && f[i].Key == key {
		return f[i].Sev
	}
	return 0
}

// Keys returns the feature's keys in ascending order.
func (f Feature[K]) Keys() []K {
	out := make([]K, len(f))
	for i, e := range f {
		out[i] = e.Key
	}
	return out
}

// Clone returns an independent copy.
func (f Feature[K]) Clone() Feature[K] {
	out := make(Feature[K], len(f))
	copy(out, f)
	return out
}

// MergeFeature implements the feature half of Algorithm 2 / Equations 5–6:
// severities of common keys accumulate, non-overlapping entries carry over.
// Both inputs stay untouched.
func MergeFeature[K Key](a, b Feature[K]) Feature[K] {
	out := make(Feature[K], 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Key < b[j].Key:
			out = append(out, a[i])
			i++
		case b[j].Key < a[i].Key:
			out = append(out, b[j])
			j++
		default:
			out = append(out, Entry[K]{Key: a[i].Key, Sev: a[i].Sev + b[j].Sev})
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// OverlapFractions returns (p1, p2): the severity share of the keys common
// to both features, measured over each feature's own total — the two inputs
// of the balance function g in Equations 3–4. Empty features yield zero
// shares.
func OverlapFractions[K Key](a, b Feature[K]) (p1, p2 float64) {
	var common1, common2 cps.Severity
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Key < b[j].Key:
			i++
		case b[j].Key < a[i].Key:
			j++
		default:
			common1 += a[i].Sev
			common2 += b[j].Sev
			i++
			j++
		}
	}
	if t := a.Total(); t > 0 {
		p1 = float64(common1 / t)
	}
	if t := b.Total(); t > 0 {
		p2 = float64(common2 / t)
	}
	return p1, p2
}

// CommonKeyCount returns the number of keys shared by both features.
func CommonKeyCount[K Key](a, b Feature[K]) int {
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Key < b[j].Key:
			i++
		case b[j].Key < a[i].Key:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// valid reports whether the feature satisfies its invariants (sorted unique
// keys, positive severities). Used by tests and storage decoding.
func (f Feature[K]) valid() bool {
	for i, e := range f {
		if e.Sev <= 0 {
			return false
		}
		if i > 0 && f[i-1].Key >= e.Key {
			return false
		}
	}
	return true
}

// Valid exposes invariant checking for other packages (storage, tests).
func (f Feature[K]) Valid() bool { return f.valid() }
