package cluster

// Property-based fuzz targets for the algebraic feature invariants the
// query pipeline depends on:
//
//   - Property 3: Merge is commutative and associative (commutativity is
//     exact — float addition commutes; associativity holds to rounding).
//   - Property 2: a macro-cluster merged from micro-clusters agrees with
//     the cluster recomputed from the union of the raw records.
//
// CI runs each target for a bounded smoke budget (make fuzz-smoke); the
// corpus below seeds the interesting shapes (empty sides, duplicate keys,
// disjoint and fully-overlapping features).

import (
	"testing"

	"github.com/cpskit/atypical/internal/cps"
)

// fuzzRecords decodes fuzz input into a record multiset: each 3-byte group
// is (sensor, window, severity). Small key ranges and quarter-unit
// severities make duplicate keys and overlapping features common.
func fuzzRecords(data []byte) []cps.Record {
	var recs []cps.Record
	for ; len(data) >= 3; data = data[3:] {
		recs = append(recs, cps.Record{
			Sensor:   cps.SensorID(data[0] % 16),
			Window:   cps.Window(data[1] % 32),
			Severity: cps.Severity(float64(data[2]%16+1) / 4),
		})
	}
	return recs
}

// splitRecords partitions recs at index (split mod (len+1)).
func splitRecords(recs []cps.Record, split byte) (a, b []cps.Record) {
	if len(recs) == 0 {
		return nil, nil
	}
	i := int(split) % (len(recs) + 1)
	return recs[:i], recs[i:]
}

func featuresExactEq[K Key](a, b Feature[K]) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Key != b[i].Key || float64(a[i].Sev) != float64(b[i].Sev) { //atyplint:ignore floatcmp commutativity of float addition is exact; the test asserts it
			return false
		}
	}
	return true
}

func featuresApproxEq[K Key](a, b Feature[K]) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Key != b[i].Key || !approxEq(float64(a[i].Sev), float64(b[i].Sev)) {
			return false
		}
	}
	return true
}

func seedCorpus(f *testing.F) {
	f.Helper()
	f.Add([]byte{}, byte(0))
	f.Add([]byte{1, 2, 3}, byte(0))                               // everything on one side
	f.Add([]byte{1, 2, 3, 1, 2, 3, 1, 2, 3}, byte(1))             // duplicate records across sides
	f.Add([]byte{0, 0, 4, 1, 1, 8, 2, 2, 12, 3, 3, 1}, byte(2))   // disjoint keys
	f.Add([]byte{5, 5, 4, 5, 5, 8, 5, 9, 1, 9, 5, 2}, byte(3))    // overlapping keys
	f.Add([]byte{255, 255, 255, 0, 0, 0, 128, 64, 32}, byte(128)) // modulo wraparound
}

func FuzzMergeCommutativity(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte, split byte) {
		recs := fuzzRecords(data)
		ra, rb := splitRecords(recs, split)
		var gen IDGen
		a1, b1 := FromRecords(gen.Next(), ra), FromRecords(gen.Next(), rb)
		ab := Merge(&gen, a1, b1)
		ba := Merge(&gen, b1, a1)
		if !featuresExactEq(ab.SF, ba.SF) {
			t.Fatalf("SF merge is not commutative:\n a⊕b = %v\n b⊕a = %v", ab.SF, ba.SF)
		}
		if !featuresExactEq(ab.TF, ba.TF) {
			t.Fatalf("TF merge is not commutative:\n a⊕b = %v\n b⊕a = %v", ab.TF, ba.TF)
		}
		if !ab.SF.Valid() || !ab.TF.Valid() {
			t.Fatalf("merged features violate canonical form: %v %v", ab.SF, ab.TF)
		}
		if ab.Micros != ba.Micros {
			t.Fatalf("micro counts disagree: %d vs %d", ab.Micros, ba.Micros)
		}
	})
}

func FuzzMergeAssociativity(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte, split byte) {
		recs := fuzzRecords(data)
		ra, rest := splitRecords(recs, split)
		rb, rc := splitRecords(rest, split/2)
		var gen IDGen
		a := FromRecords(gen.Next(), ra)
		b := FromRecords(gen.Next(), rb)
		c := FromRecords(gen.Next(), rc)
		left := Merge(&gen, Merge(&gen, a, b), c)
		right := Merge(&gen, a, Merge(&gen, b, c))
		if !featuresApproxEq(left.SF, right.SF) {
			t.Fatalf("SF merge is not associative:\n (a⊕b)⊕c = %v\n a⊕(b⊕c) = %v", left.SF, right.SF)
		}
		if !featuresApproxEq(left.TF, right.TF) {
			t.Fatalf("TF merge is not associative:\n (a⊕b)⊕c = %v\n a⊕(b⊕c) = %v", left.TF, right.TF)
		}
		if !approxEq(float64(left.Severity()), float64(right.Severity())) {
			t.Fatalf("severities disagree: %v vs %v", left.Severity(), right.Severity())
		}
	})
}

func FuzzMicroVsRawAgreement(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte, split byte) {
		recs := fuzzRecords(data)
		ra, rb := splitRecords(recs, split)
		var gen IDGen
		merged := Merge(&gen, FromRecords(gen.Next(), ra), FromRecords(gen.Next(), rb))
		raw := FromRecords(gen.Next(), recs)
		if !featuresApproxEq(merged.SF, raw.SF) {
			t.Fatalf("Property 2 violated on SF:\n merged = %v\n raw    = %v", merged.SF, raw.SF)
		}
		if !featuresApproxEq(merged.TF, raw.TF) {
			t.Fatalf("Property 2 violated on TF:\n merged = %v\n raw    = %v", merged.TF, raw.TF)
		}
		if !approxEq(float64(merged.Severity()), float64(raw.Severity())) {
			t.Fatalf("micro-vs-raw severity disagrees: merged=%v raw=%v",
				merged.Severity(), raw.Severity())
		}
		// Significance (Definition 5) must agree wherever the two
		// severities are not within rounding of the bound itself.
		bound := SignificanceBound(0.25, 8, 4)
		ms, rs := merged.Significant(bound), raw.Significant(bound)
		if ms != rs && !approxEq(float64(merged.Severity()), float64(bound)) {
			t.Fatalf("significance decisions disagree: merged=%v raw=%v bound=%v", ms, rs, bound)
		}
	})
}
