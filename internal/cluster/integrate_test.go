package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/cpskit/atypical/internal/cps"
)

func defaultOpts() IntegrateOptions {
	return IntegrateOptions{SimThreshold: 0.5, Balance: Arithmetic}
}

func TestIntegratePaperExample(t *testing.T) {
	var g IDGen
	// Fig. 7: C_A and C_C are spatially related and timely close — merge.
	// C_B shares sensors with C_A but at disjoint times — stays separate.
	ca := FromRecords(g.Next(), []cps.Record{
		{Sensor: 1, Window: 97, Severity: 5},
		{Sensor: 2, Window: 98, Severity: 5},
	})
	cb := FromRecords(g.Next(), []cps.Record{
		{Sensor: 1, Window: 220, Severity: 5},
		{Sensor: 2, Window: 221, Severity: 5},
	})
	cc := FromRecords(g.Next(), []cps.Record{
		{Sensor: 1, Window: 97, Severity: 4},
		{Sensor: 2, Window: 98, Severity: 4},
		{Sensor: 9, Window: 99, Severity: 2},
	})
	out := Integrate(&g, []*Cluster{ca, cb, cc}, defaultOpts())
	if len(out) != 2 {
		t.Fatalf("clusters = %d, want 2", len(out))
	}
	var macro *Cluster
	for _, c := range out {
		if c.Micros == 2 {
			macro = c
		}
	}
	if macro == nil {
		t.Fatal("expected one macro-cluster of 2 micros")
	}
	if macro.SF.Get(1) != 9 {
		t.Errorf("macro μ(s1) = %v, want 9", macro.SF.Get(1))
	}
}

func TestIntegrateEmptyAndSingle(t *testing.T) {
	var g IDGen
	if out := Integrate(&g, nil, defaultOpts()); len(out) != 0 {
		t.Error("empty input")
	}
	c := FromRecords(g.Next(), []cps.Record{{Sensor: 1, Window: 0, Severity: 1}})
	out := Integrate(&g, []*Cluster{c}, defaultOpts())
	if len(out) != 1 || out[0] != c {
		t.Error("single cluster should pass through")
	}
}

func TestIntegratePanicsOnZeroThreshold(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	var g IDGen
	Integrate(&g, nil, IntegrateOptions{SimThreshold: 0})
}

func TestIntegrateNaivePanicsOnZeroThreshold(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	var g IDGen
	IntegrateNaive(&g, nil, IntegrateOptions{SimThreshold: 0})
}

func TestIntegrateChainMerges(t *testing.T) {
	// a~b and b~c but a!~c initially: after merging a,b the result is
	// similar to c and everything collapses into one macro-cluster. This is
	// the Phase 1 / Phase 2 worst case of Proposition 3.
	var g IDGen
	mk := func(keys ...int) *Cluster {
		var recs []cps.Record
		for _, k := range keys {
			recs = append(recs, cps.Record{Sensor: cps.SensorID(k), Window: cps.Window(k), Severity: 1})
		}
		return FromRecords(g.Next(), recs)
	}
	a := mk(0, 1, 2)
	b := mk(1, 2, 3)
	c := mk(2, 3, 4)
	opts := IntegrateOptions{SimThreshold: 0.5, Balance: Arithmetic}
	out := Integrate(&g, []*Cluster{a, b, c}, opts)
	if len(out) != 1 {
		t.Fatalf("clusters = %d, want 1 (chain collapse)", len(out))
	}
	if out[0].Micros != 3 {
		t.Errorf("Micros = %d", out[0].Micros)
	}
}

func randomMicros(rng *rand.Rand, g *IDGen, n int) []*Cluster {
	out := make([]*Cluster, n)
	for i := range out {
		out[i] = randomCluster(rng, g)
	}
	return out
}

// Both integration implementations reach a fixpoint that preserves total
// severity and micro count for every balance function.
func TestIntegrateInvariants(t *testing.T) {
	f := func(seed int64, gIdx, thIdx uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var g IDGen
		micros := randomMicros(rng, &g, 2+rng.Intn(15))
		opts := IntegrateOptions{
			SimThreshold: []float64{0.2, 0.5, 0.8}[int(thIdx)%3],
			Balance:      Balances[int(gIdx)%len(Balances)],
		}
		var wantSev cps.Severity
		for _, m := range micros {
			wantSev += m.Severity()
		}
		for _, integrate := range []func(*IDGen, []*Cluster, IntegrateOptions) []*Cluster{Integrate, IntegrateNaive} {
			out := integrate(&g, micros, opts)
			var gotSev cps.Severity
			gotMicros := 0
			for _, c := range out {
				gotSev += c.Severity()
				gotMicros += c.Micros
				if !c.SF.Valid() || !c.TF.Valid() {
					return false
				}
			}
			if !approxEq(float64(gotSev), float64(wantSev)) || gotMicros != len(micros) {
				return false
			}
			if !FixpointHolds(out, opts) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// The indexed and naive variants produce the same number of clusters on
// workloads whose merge structure is order-independent (well-separated
// groups).
func TestIntegrateMatchesNaiveOnSeparatedGroups(t *testing.T) {
	var g IDGen
	var micros []*Cluster
	// Three well-separated groups of 3 near-identical clusters each.
	for grp := 0; grp < 3; grp++ {
		for rep := 0; rep < 3; rep++ {
			var recs []cps.Record
			for k := 0; k < 4; k++ {
				recs = append(recs, cps.Record{
					Sensor:   cps.SensorID(grp*100 + k),
					Window:   cps.Window(grp*1000 + k),
					Severity: cps.Severity(rep + 1),
				})
			}
			micros = append(micros, FromRecords(g.Next(), recs))
		}
	}
	opts := defaultOpts()
	fast := Integrate(&g, micros, opts)
	slow := IntegrateNaive(&g, micros, opts)
	if len(fast) != 3 || len(slow) != 3 {
		t.Fatalf("fast=%d slow=%d, want 3 groups", len(fast), len(slow))
	}
}

// Property 3 consequence: input order does not change the outcome on
// separated groups.
func TestIntegrateOrderInsensitiveOnSeparatedGroups(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var g IDGen
		var micros []*Cluster
		groups := 2 + rng.Intn(3)
		for grp := 0; grp < groups; grp++ {
			for rep := 0; rep < 2+rng.Intn(3); rep++ {
				var recs []cps.Record
				for k := 0; k < 3; k++ {
					recs = append(recs, cps.Record{
						Sensor:   cps.SensorID(grp*1000 + k),
						Window:   cps.Window(grp*1000 + k),
						Severity: cps.Severity(rng.Intn(3) + 1),
					})
				}
				micros = append(micros, FromRecords(g.Next(), recs))
			}
		}
		shuffled := make([]*Cluster, len(micros))
		copy(shuffled, micros)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		a := Integrate(&g, micros, defaultOpts())
		b := Integrate(&g, shuffled, defaultOpts())
		if len(a) != groups || len(b) != groups {
			return false
		}
		var sa, sb cps.Severity
		for i := range a {
			sa += a[i].Severity()
			sb += b[i].Severity()
		}
		return approxEq(float64(sa), float64(sb))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFixpointHolds(t *testing.T) {
	var g IDGen
	a := FromRecords(g.Next(), []cps.Record{{Sensor: 1, Window: 0, Severity: 1}})
	b := FromRecords(g.Next(), []cps.Record{{Sensor: 1, Window: 0, Severity: 1}})
	opts := defaultOpts()
	if FixpointHolds([]*Cluster{a, b}, opts) {
		t.Error("identical clusters exceed any δsim < 1")
	}
	c := FromRecords(g.Next(), []cps.Record{{Sensor: 99, Window: 99, Severity: 1}})
	if !FixpointHolds([]*Cluster{a, c}, opts) {
		t.Error("disjoint clusters are a fixpoint")
	}
}
