package cluster

import (
	"github.com/cpskit/atypical/internal/cps"
)

// IntegrateOptions configures cluster integration (Algorithm 3).
type IntegrateOptions struct {
	// SimThreshold is δsim: clusters with similarity strictly above it
	// merge. Must be positive — at zero, clusters with no overlap at all
	// would merge and the candidate index would be unsound.
	SimThreshold float64
	// Balance is the g function of Equations 3–4.
	Balance Balance
	// Period folds temporal features onto a time-of-day period (in
	// windows) for similarity, matching the paper's daily window identity
	// (see SimilarityAt). Zero compares absolute windows.
	Period cps.Window
}

// similarity evaluates Sim under the options.
func (o IntegrateOptions) similarity(a, b *Cluster) float64 {
	return SimilarityAt(a, b, o.Balance, o.Period)
}

// Integrate merges every pair of clusters whose similarity exceeds δsim
// until no pair qualifies (Algorithm 3), returning the resulting
// macro-cluster set. The input slice is not modified; returned clusters may
// alias inputs that merged with nothing.
//
// The implementation is the inverted-index variant: only cluster pairs
// sharing at least one sensor or window can have positive similarity (every
// balance function maps (0,0) to 0), so candidates come from per-key posting
// lists instead of the O(n²) all-pairs scan. Results satisfy the same
// fixpoint postcondition as the textbook algorithm: no surviving pair has
// similarity above δsim. Merge order — which the paper notes can influence
// hard-clustering results — is deterministic (ascending input position).
//
//atyplint:deterministic
func Integrate(gen *IDGen, micros []*Cluster, opts IntegrateOptions) []*Cluster {
	return integrateCore(micros, opts, gen.Next)
}

// integrateCore is Integrate with the merge-ID source abstracted out: the
// serial path draws from the shared IDGen at every merge, while the parallel
// tree reduction merges under the sentinel ID 0 and renumbers survivors in a
// deterministic post-pass (IDs play no role in the algorithm itself).
func integrateCore(micros []*Cluster, opts IntegrateOptions, mkID func() ID) []*Cluster {
	if opts.SimThreshold <= 0 {
		panic("cluster: IntegrateOptions.SimThreshold must be positive")
	}
	n := len(micros)
	if n <= 1 {
		out := make([]*Cluster, n)
		copy(out, micros)
		return out
	}

	// active holds all clusters ever created; alive marks the live ones.
	active := make([]*Cluster, n, 2*n)
	copy(active, micros)
	alive := make([]bool, n, 2*n)
	for i := range alive {
		alive[i] = true
	}

	// Posting lists: key -> positions of clusters featuring the key.
	// Entries go stale when clusters die; consumers skip dead positions.
	bySensor := make(map[cps.SensorID][]int)
	byWindow := make(map[cps.Window][]int)
	post := func(pos int) {
		c := active[pos]
		for _, e := range c.SF {
			bySensor[e.Key] = append(bySensor[e.Key], pos)
		}
		for _, k := range c.FoldedKeys(opts.Period) {
			byWindow[k] = append(byWindow[k], pos)
		}
	}
	for i := range micros {
		post(i)
	}

	// candidates gathers live positions sharing a key with active[pos].
	seen := make(map[int]struct{})
	candidates := func(pos int) []int {
		c := active[pos]
		clear(seen)
		var out []int
		add := func(positions []int) {
			for _, p := range positions {
				if p == pos || !alive[p] {
					continue
				}
				if _, dup := seen[p]; dup {
					continue
				}
				seen[p] = struct{}{}
				out = append(out, p)
			}
		}
		for _, e := range c.SF {
			add(bySensor[e.Key])
		}
		for _, k := range c.FoldedKeys(opts.Period) {
			add(byWindow[k])
		}
		return out
	}

	// Work queue: clusters whose merge opportunities need (re)checking.
	// A merged cluster can only gain overlap, so only new clusters need
	// re-examination; unchanged non-mergeable pairs stay non-mergeable.
	queue := make([]int, n)
	for i := range queue {
		queue[i] = i
	}
	for len(queue) > 0 {
		pos := queue[0]
		queue = queue[1:]
		if !alive[pos] {
			continue
		}
	repeat:
		for _, cand := range candidates(pos) {
			if opts.similarity(active[pos], active[cand]) > opts.SimThreshold {
				merged := mergeAs(mkID(), active[pos], active[cand])
				alive[pos] = false
				alive[cand] = false
				active = append(active, merged)
				alive = append(alive, true)
				newPos := len(active) - 1
				post(newPos)
				pos = newPos
				goto repeat
			}
		}
	}

	var out []*Cluster
	for i, ok := range alive {
		if ok {
			out = append(out, active[i])
		}
	}
	return out
}

// IntegrateNaive is the literal Algorithm 3: repeatedly scan every cluster
// pair and merge the first one whose similarity exceeds δsim, until a full
// pass finds nothing. Quadratic per pass; kept as the correctness oracle and
// the ablation baseline for Integrate.
func IntegrateNaive(gen *IDGen, micros []*Cluster, opts IntegrateOptions) []*Cluster {
	if opts.SimThreshold <= 0 {
		panic("cluster: IntegrateOptions.SimThreshold must be positive")
	}
	set := make([]*Cluster, len(micros))
	copy(set, micros)
	for {
		merged := false
		for i := 0; i < len(set) && !merged; i++ {
			for j := i + 1; j < len(set); j++ {
				if opts.similarity(set[i], set[j]) > opts.SimThreshold {
					c := Merge(gen, set[i], set[j])
					// Remove j first (higher index), then i.
					set = append(set[:j], set[j+1:]...)
					set = append(set[:i], set[i+1:]...)
					set = append(set, c)
					merged = true
					break
				}
			}
		}
		if !merged {
			return set
		}
	}
}

// FixpointHolds verifies the Algorithm 3 postcondition: no pair of clusters
// in set has similarity above δsim. Exposed for tests and debugging.
func FixpointHolds(set []*Cluster, opts IntegrateOptions) bool {
	for i := 0; i < len(set); i++ {
		for j := i + 1; j < len(set); j++ {
			if opts.similarity(set[i], set[j]) > opts.SimThreshold {
				return false
			}
		}
	}
	return true
}
