package cluster

import (
	"math/rand"
	"testing"
	"time"

	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/geo"
	"github.com/cpskit/atypical/internal/index"
)

func TestMaxWindowGap(t *testing.T) {
	cases := []struct {
		deltaT time.Duration
		want   int
	}{
		{5 * time.Minute, 0},  // interval must be < 5 min: same window only
		{15 * time.Minute, 2}, // paper default: up to 2 windows apart
		{80 * time.Minute, 15},
		{0, 0},
	}
	for _, c := range cases {
		if got := MaxWindowGap(c.deltaT, 5*time.Minute); got != c.want {
			t.Errorf("MaxWindowGap(%v) = %d, want %d", c.deltaT, got, c.want)
		}
	}
}

// lineLocs places n sensors in a line spaced `spacing` miles apart.
func lineLocs(n int, spacingMiles float64) []geo.Point {
	locs := make([]geo.Point, n)
	for i := range locs {
		locs[i] = geo.Point{Lat: 34, Lon: -118 + float64(i)*spacingMiles/geo.MilesPerDegreeLon(34)}
	}
	return locs
}

func neighborsFor(locs []geo.Point, deltaD float64) [][]cps.SensorID {
	return index.NewNeighborIndex(locs, deltaD).NeighborLists()
}

func TestExtractEventsTwoSeparatedEvents(t *testing.T) {
	locs := lineLocs(10, 1) // 1 mile apart
	nb := neighborsFor(locs, 1.5)
	recs := cps.NewRecordSet([]cps.Record{
		// Event 1: sensors 0-1, windows 0-1.
		{Sensor: 0, Window: 0, Severity: 3},
		{Sensor: 1, Window: 0, Severity: 4},
		{Sensor: 1, Window: 1, Severity: 5},
		// Event 2: sensor 8, far away in space.
		{Sensor: 8, Window: 0, Severity: 2},
		// Event 3: sensor 0 again but 50 windows later (far in time).
		{Sensor: 0, Window: 50, Severity: 1},
	}).Records()
	events := ExtractEvents(recs, nb, 2)
	if len(events) != 3 {
		t.Fatalf("events = %d, want 3", len(events))
	}
	if len(events[0]) != 3 {
		t.Errorf("first event size = %d, want 3", len(events[0]))
	}
}

func TestExtractEventsTransitiveChain(t *testing.T) {
	// Records form a chain: each consecutive pair is direct related, the
	// ends are only transitively related (Definition 2).
	locs := lineLocs(6, 1)
	nb := neighborsFor(locs, 1.5)
	var recs []cps.Record
	for i := 0; i < 6; i++ {
		recs = append(recs, cps.Record{Sensor: cps.SensorID(i), Window: cps.Window(i), Severity: 1})
	}
	events := ExtractEvents(cps.NewRecordSet(recs).Records(), nb, 1)
	if len(events) != 1 {
		t.Fatalf("chain should form a single event, got %d", len(events))
	}
	if len(events[0]) != 6 {
		t.Errorf("event size = %d", len(events[0]))
	}
}

func TestExtractEventsSameSensorTemporalLink(t *testing.T) {
	// A single sensor atypical across consecutive windows is one event even
	// with no neighbors at all.
	locs := lineLocs(1, 1)
	nb := neighborsFor(locs, 1.5)
	recs := []cps.Record{
		{Sensor: 0, Window: 0, Severity: 1},
		{Sensor: 0, Window: 1, Severity: 1},
		{Sensor: 0, Window: 2, Severity: 1},
	}
	events := ExtractEvents(recs, nb, 1)
	if len(events) != 1 {
		t.Fatalf("events = %d, want 1", len(events))
	}
}

func TestExtractEventsGapZero(t *testing.T) {
	// With maxGap 0 (δt = window width), only same-window spatial links
	// count.
	locs := lineLocs(2, 1)
	nb := neighborsFor(locs, 1.5)
	recs := []cps.Record{
		{Sensor: 0, Window: 0, Severity: 1},
		{Sensor: 1, Window: 0, Severity: 1}, // same window, adjacent: linked
		{Sensor: 0, Window: 1, Severity: 1}, // next window: NOT linked
	}
	events := ExtractEvents(recs, nb, 0)
	if len(events) != 2 {
		t.Fatalf("events = %d, want 2", len(events))
	}
}

func TestExtractEventsEmpty(t *testing.T) {
	if got := ExtractEvents(nil, nil, 2); got != nil {
		t.Errorf("empty extraction = %v", got)
	}
}

func TestExtractMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	locs := make([]geo.Point, 40)
	for i := range locs {
		locs[i] = geo.Point{Lat: 34 + rng.Float64()*0.2, Lon: -118 + rng.Float64()*0.3}
	}
	for trial := 0; trial < 20; trial++ {
		var recs []cps.Record
		n := 30 + rng.Intn(120)
		for i := 0; i < n; i++ {
			recs = append(recs, cps.Record{
				Sensor:   cps.SensorID(rng.Intn(len(locs))),
				Window:   cps.Window(rng.Intn(40)),
				Severity: cps.Severity(rng.Intn(5)) + 1,
			})
		}
		canonical := cps.NewRecordSet(recs).Records()
		deltaD := []float64{1.5, 4, 10}[trial%3]
		maxGap := trial % 4
		nb := neighborsFor(locs, deltaD)

		fast := ExtractEvents(canonical, nb, maxGap)
		slow := ExtractEventsBrute(canonical, locs, deltaD, maxGap)
		if len(fast) != len(slow) {
			t.Fatalf("trial %d: fast %d events, brute %d", trial, len(fast), len(slow))
		}
		for e := range fast {
			if len(fast[e]) != len(slow[e]) {
				t.Fatalf("trial %d event %d: sizes %d vs %d", trial, e, len(fast[e]), len(slow[e]))
			}
			for k := range fast[e] {
				if fast[e][k] != slow[e][k] {
					t.Fatalf("trial %d event %d record %d: %v vs %v", trial, e, k, fast[e][k], slow[e][k])
				}
			}
		}
	}
}

func TestExtractEventsPartition(t *testing.T) {
	// Events partition the record set: every record in exactly one event.
	rng := rand.New(rand.NewSource(7))
	locs := lineLocs(20, 0.8)
	nb := neighborsFor(locs, 1.5)
	var recs []cps.Record
	for i := 0; i < 300; i++ {
		recs = append(recs, cps.Record{
			Sensor:   cps.SensorID(rng.Intn(20)),
			Window:   cps.Window(rng.Intn(100)),
			Severity: 1,
		})
	}
	canonical := cps.NewRecordSet(recs).Records()
	events := ExtractEvents(canonical, nb, 2)
	total := 0
	seen := make(map[cps.Record]bool)
	for _, ev := range events {
		total += len(ev)
		for _, r := range ev {
			if seen[r] {
				t.Fatalf("record %v in two events", r)
			}
			seen[r] = true
		}
	}
	if total != len(canonical) {
		t.Errorf("events cover %d records, want %d", total, len(canonical))
	}
}

func TestExtractMicroClusters(t *testing.T) {
	locs := lineLocs(10, 1)
	nb := neighborsFor(locs, 1.5)
	recs := cps.NewRecordSet([]cps.Record{
		{Sensor: 0, Window: 0, Severity: 3},
		{Sensor: 1, Window: 0, Severity: 4},
		{Sensor: 8, Window: 0, Severity: 2},
	}).Records()
	var g IDGen
	micros := ExtractMicroClusters(&g, recs, nb, 2)
	if len(micros) != 2 {
		t.Fatalf("micros = %d, want 2", len(micros))
	}
	var total cps.Severity
	for _, c := range micros {
		total += c.Severity()
		if c.Micros != 1 {
			t.Error("extracted clusters are micro-clusters")
		}
	}
	if total != 9 {
		t.Errorf("total severity = %v, want 9", total)
	}
}
