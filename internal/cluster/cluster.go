package cluster

import (
	"fmt"
	"sync/atomic"

	"github.com/cpskit/atypical/internal/cps"
)

// ID identifies a cluster. Fresh IDs come from an IDGen; merged clusters get
// new IDs (Algorithm 2, line 1).
type ID uint64

// IDGen hands out unique cluster IDs. Safe for concurrent use.
type IDGen struct {
	next atomic.Uint64
}

// Next returns a fresh ID, starting at 1 so the zero ID stays available as a
// sentinel.
func (g *IDGen) Next() ID { return ID(g.next.Add(1)) }

// Reserve atomically claims a block of n consecutive IDs and returns the
// first. Parallel construction reserves one block per batch and deals IDs
// out positionally, so the numbering matches what n sequential Next calls
// would have produced regardless of goroutine scheduling.
func (g *IDGen) Reserve(n int) ID {
	if n <= 0 {
		return 0
	}
	return ID(g.next.Add(uint64(n)) - uint64(n) + 1)
}

// Cluster is an atypical cluster C = ⟨ID, SF, TF⟩ (Definition 4). A cluster
// summarizing a single atypical event is a micro-cluster; clusters produced
// by merging are macro-clusters.
type Cluster struct {
	ID ID
	// SF aggregates severity by sensor (how long each sensor was atypical
	// in the event).
	SF SpatialFeature
	// TF aggregates severity by time window (how much atypical mass fell
	// in each window).
	TF TemporalFeature
	// Micros counts the micro-clusters integrated into this cluster (1 for
	// a micro-cluster itself).
	Micros int
	// Children are the two clusters a macro-cluster was merged from; nil
	// for micro-clusters. They form the clustering tree of Section III-C.
	Children []*Cluster

	sev cps.Severity // cached Severity(); set at construction, 0 means unknown

	// folded caches the time-of-day projection of TF for periodic
	// similarity. Clusters are immutable after construction; the cache is an
	// atomic pointer so concurrent query goroutines may race on first use —
	// the projection is deterministic, so whichever store wins is correct.
	folded atomic.Pointer[foldedCache]
}

// foldedCache is one memoized FoldTemporal projection.
type foldedCache struct {
	period cps.Window
	tf     TemporalFeature
}

// New builds a cluster from canonical features, validating the algebraic
// invariant ΣSF = ΣTF that holds for any cluster derived from records.
func New(id ID, sf SpatialFeature, tf TemporalFeature) (*Cluster, error) {
	if !sf.Valid() || !tf.Valid() {
		return nil, fmt.Errorf("cluster %d: invalid feature", id)
	}
	ssf, stf := sf.Total(), tf.Total()
	if !approxEq(float64(ssf), float64(stf)) {
		return nil, fmt.Errorf("cluster %d: feature totals disagree: SF=%v TF=%v", id, ssf, stf)
	}
	return &Cluster{ID: id, SF: sf, TF: tf, Micros: 1, sev: ssf}, nil
}

// FromRecords summarizes an atypical event's records into a micro-cluster
// (Algorithm 1, lines 6–12). The records need not be sorted.
func FromRecords(id ID, recs []cps.Record) *Cluster {
	sfe := make([]Entry[cps.SensorID], 0, len(recs))
	tfe := make([]Entry[cps.Window], 0, len(recs))
	for _, r := range recs {
		sfe = append(sfe, Entry[cps.SensorID]{Key: r.Sensor, Sev: r.Severity})
		tfe = append(tfe, Entry[cps.Window]{Key: r.Window, Sev: r.Severity})
	}
	c := &Cluster{ID: id, SF: NewFeature(sfe), TF: NewFeature(tfe), Micros: 1}
	c.sev = c.SF.Total()
	return c
}

// Severity returns the cluster's total severity Σμ = Σν (Definition 5).
// Every constructor in this package precomputes the cache; clusters built
// field-by-field elsewhere (storage decoding) should call Hydrate once. The
// fallback recomputes without storing so the method stays safe for
// concurrent readers.
func (c *Cluster) Severity() cps.Severity {
	if c.sev == 0 && len(c.SF) > 0 {
		return c.SF.Total()
	}
	return c.sev
}

// Hydrate recomputes the derived severity cache after external field-wise
// construction (e.g. storage decoding). It must be called before the cluster
// is shared across goroutines.
func (c *Cluster) Hydrate() { c.sev = c.SF.Total() }

// Sensors returns the cluster's sensor set in ascending order.
func (c *Cluster) Sensors() []cps.SensorID { return c.SF.Keys() }

// WindowSpan returns the half-open window range covered by TF, or an empty
// range for an empty cluster.
func (c *Cluster) WindowSpan() cps.TimeRange {
	if len(c.TF) == 0 {
		return cps.TimeRange{}
	}
	return cps.TimeRange{From: c.TF[0].Key, To: c.TF[len(c.TF)-1].Key + 1}
}

// PeakSensor returns the sensor with the highest aggregated severity and
// that severity — "on which road segment is the congestion most serious"
// from Example 1. Returns (0, 0) for an empty cluster.
func (c *Cluster) PeakSensor() (cps.SensorID, cps.Severity) {
	var best cps.SensorID
	var bestSev cps.Severity
	for _, e := range c.SF {
		if e.Sev > bestSev {
			best, bestSev = e.Key, e.Sev
		}
	}
	return best, bestSev
}

// PeakWindow returns the window with the highest aggregated severity — "when
// is the congestion most serious".
func (c *Cluster) PeakWindow() (cps.Window, cps.Severity) {
	var best cps.Window
	var bestSev cps.Severity
	for _, e := range c.TF {
		if e.Sev > bestSev {
			best, bestSev = e.Key, e.Sev
		}
	}
	return best, bestSev
}

// Merge integrates two clusters into a fresh macro-cluster (Algorithm 2):
// common sensors and windows accumulate severities, the rest carry over, and
// a new ID is assigned. The inputs are not modified. The operation is
// commutative and associative (paper Property 3); see the property tests.
func Merge(gen *IDGen, a, b *Cluster) *Cluster {
	return mergeAs(gen.Next(), a, b)
}

// mergeAs is Merge with an explicit ID. Parallel integration merges under
// the sentinel ID 0 and renumbers the surviving macro-clusters afterwards,
// so concurrent merge scheduling cannot leak into the ID sequence.
func mergeAs(id ID, a, b *Cluster) *Cluster {
	out := &Cluster{
		ID:       id,
		SF:       MergeFeature(a.SF, b.SF),
		TF:       MergeFeature(a.TF, b.TF),
		Micros:   a.Micros + b.Micros,
		Children: []*Cluster{a, b},
	}
	out.sev = a.Severity() + b.Severity()
	return out
}

// SignificanceBound returns the severity a cluster must exceed to be
// significant for a query over numSensors sensors and a period of
// numWindows windows at relative threshold deltaS (Definition 5:
// severity(C) > δs · length(T) · N).
func SignificanceBound(deltaS float64, numWindows, numSensors int) cps.Severity {
	return cps.Severity(deltaS * float64(numWindows) * float64(numSensors))
}

// Significant reports whether c passes Definition 5 for the given bound.
func (c *Cluster) Significant(bound cps.Severity) bool {
	return c.Severity() > bound
}

// Similarity computes Sim(C1, C2) (Equation 2): the mean of the spatial and
// temporal feature similarities, each the g-balanced pair of common-severity
// fractions (Equations 3–4). The result lies in [0, 1]. Temporal windows are
// compared by absolute index; use SimilarityAt with a period for the paper's
// time-of-day window identity.
func Similarity(a, b *Cluster, g Balance) float64 {
	return SimilarityAt(a, b, g, 0)
}

// SimilarityAt computes Sim(C1, C2) comparing temporal features folded onto
// a period of the given number of windows (e.g. one day). The paper's
// temporal features identify windows by time of day (Fig. 5: "8:05am -
// 8:10am"), which is what lets a corridor's recurring morning congestions
// integrate across days while morning and evening events stay apart
// (Example 5). Period 0 compares absolute windows.
func SimilarityAt(a, b *Cluster, g Balance, period cps.Window) float64 {
	s1, s2 := OverlapFractions(a.SF, b.SF)
	t1, t2 := OverlapFractions(a.foldTF(period), b.foldTF(period))
	return (g.Apply(s1, s2) + g.Apply(t1, t2)) / 2
}

// SpatialSimilarity exposes Equation 3 alone.
func SpatialSimilarity(a, b *Cluster, g Balance) float64 {
	p1, p2 := OverlapFractions(a.SF, b.SF)
	return g.Apply(p1, p2)
}

// TemporalSimilarity exposes Equation 4 alone (absolute windows).
func TemporalSimilarity(a, b *Cluster, g Balance) float64 {
	p1, p2 := OverlapFractions(a.TF, b.TF)
	return g.Apply(p1, p2)
}

// TemporalSimilarityAt exposes Equation 4 with time-of-day folding.
func TemporalSimilarityAt(a, b *Cluster, g Balance, period cps.Window) float64 {
	p1, p2 := OverlapFractions(a.foldTF(period), b.foldTF(period))
	return g.Apply(p1, p2)
}

// FoldTemporal projects a temporal feature onto period-of-day buckets,
// summing severities of windows sharing the same offset within the period.
// Period <= 0 returns the input unchanged.
func FoldTemporal(tf TemporalFeature, period cps.Window) TemporalFeature {
	if period <= 0 {
		return tf
	}
	entries := make([]Entry[cps.Window], len(tf))
	for i, e := range tf {
		entries[i] = Entry[cps.Window]{Key: floorMod(e.Key, period), Sev: e.Sev}
	}
	return NewFeature(entries)
}

// foldTF returns the cached folded temporal feature for the period. Safe for
// concurrent use: racing first calls each compute the same deterministic
// projection and the losing store is equivalent to the winning one.
func (c *Cluster) foldTF(period cps.Window) TemporalFeature {
	if period <= 0 {
		return c.TF
	}
	if fc := c.folded.Load(); fc != nil && fc.period == period {
		return fc.tf
	}
	tf := FoldTemporal(c.TF, period)
	c.folded.Store(&foldedCache{period: period, tf: tf})
	return tf
}

// FoldedKeys returns the distinct time-of-day window offsets of the cluster
// for the period, ascending. Integration uses them for candidate postings.
func (c *Cluster) FoldedKeys(period cps.Window) []cps.Window {
	if period <= 0 {
		return c.TF.Keys()
	}
	return c.foldTF(period).Keys()
}

func floorMod(w, p cps.Window) cps.Window {
	m := w % p
	if m < 0 {
		m += p
	}
	return m
}

// String implements fmt.Stringer with a compact summary.
func (c *Cluster) String() string {
	return fmt.Sprintf("C%d{sensors:%d windows:%d sev:%.0f micros:%d}",
		c.ID, len(c.SF), len(c.TF), float64(c.Severity()), c.Micros)
}

func approxEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := a
	if scale < 0 {
		scale = -scale
	}
	if scale < 1 {
		scale = 1
	}
	return d <= 1e-6*scale
}
