package cluster

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBalanceApplyKnownValues(t *testing.T) {
	cases := []struct {
		b      Balance
		p1, p2 float64
		want   float64
	}{
		{Max, 0.2, 0.8, 0.8},
		{Min, 0.2, 0.8, 0.2},
		{Arithmetic, 0.2, 0.8, 0.5},
		{Geometric, 0.25, 1, 0.5},
		{Harmonic, 0.5, 0.5, 0.5},
		{Harmonic, 0, 0.8, 0},
		{Harmonic, 0, 0, 0},
		{Geometric, 0, 0.9, 0},
	}
	for _, c := range cases {
		if got := c.b.Apply(c.p1, c.p2); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%v.Apply(%v, %v) = %v, want %v", c.b, c.p1, c.p2, got, c.want)
		}
	}
}

// Property: every balance function is symmetric, bounded by [min, max] of
// its inputs, and maps [0,1]² into [0,1]. The ordering min ≤ har ≤ geo ≤
// avg ≤ max (AM–GM–HM chain) underlies the Fig. 21 curve ordering.
func TestBalanceOrderingProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		p1 := float64(a) / 255
		p2 := float64(b) / 255
		vals := make(map[Balance]float64)
		for _, g := range Balances {
			v := g.Apply(p1, p2)
			if math.Abs(v-g.Apply(p2, p1)) > 1e-12 {
				return false // symmetric
			}
			if v < -1e-12 || v > 1+1e-12 {
				return false // bounded
			}
			vals[g] = v
		}
		const eps = 1e-12
		return vals[Min] <= vals[Harmonic]+eps &&
			vals[Harmonic] <= vals[Geometric]+eps &&
			vals[Geometric] <= vals[Arithmetic]+eps &&
			vals[Arithmetic] <= vals[Max]+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBalanceString(t *testing.T) {
	want := map[Balance]string{Arithmetic: "avg", Max: "max", Min: "min", Geometric: "geo", Harmonic: "har"}
	for b, s := range want {
		if b.String() != s {
			t.Errorf("%d.String() = %q, want %q", b, b.String(), s)
		}
	}
	if Balance(99).String() != "balance(99)" {
		t.Error("unknown balance string")
	}
}

func TestParseBalance(t *testing.T) {
	for _, b := range Balances {
		got, err := ParseBalance(b.String())
		if err != nil || got != b {
			t.Errorf("ParseBalance(%q) = %v, %v", b.String(), got, err)
		}
	}
	if _, err := ParseBalance("median"); err == nil {
		t.Error("unknown name should fail")
	}
	if got, _ := ParseBalance("arithmetic"); got != Arithmetic {
		t.Error("long names should parse")
	}
}
