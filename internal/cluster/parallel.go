package cluster

// Parallel model construction. Two licenses from the paper make this sound:
//
//   - Property 2 (algebraic features): a micro-cluster is a pure function of
//     its event's records, so per-day extraction fans out with no shared
//     state beyond the ID sequence — which ExtractMicroClustersDays deals
//     out positionally from a reserved block, reproducing the serial
//     numbering byte for byte.
//   - Property 3 (commutative, associative merging): integration may be
//     reassociated into a chunked pairwise-merge tree. IntegrateParallel
//     fixes the chunk boundaries and the reduction tree by input length
//     alone, so its output is identical for every worker count and
//     GOMAXPROCS setting; only wall-clock time changes.
//
// IntegrateParallel's result satisfies the same fixpoint postcondition as
// Integrate (no surviving pair above δsim) and agrees with the serial path
// on the resulting partition for workloads whose clusters are separated by
// the threshold (see the equivalence tests); because the merge *order*
// differs, cluster IDs and float rounding in the low bits may differ from
// Integrate's. Intermediate tree nodes carry the sentinel ID 0; only
// surviving macro-clusters are renumbered, in output order, from gen.

import (
	"context"

	"github.com/cpskit/atypical/internal/cps"
	"github.com/cpskit/atypical/internal/par"
)

// DayRecords pairs a day index with that day's canonical records — the unit
// of work for parallel offline construction.
type DayRecords struct {
	Day     int
	Records []cps.Record
}

// ExtractMicroClustersDays runs Algorithm 1 over every day partition on up
// to `workers` goroutines and returns the micro-clusters per day, positioned
// like the input. The assigned IDs are exactly those the serial loop
//
//	for each day (ascending): ExtractMicroClusters(gen, recs, ...)
//
// would have produced, provided days are passed in ascending order: the
// total event count is reserved from gen as one block and dealt out by (day,
// event) position. Cancelling ctx abandons the batch; days never ingest
// partially.
//
//atyplint:deterministic
func ExtractMicroClustersDays(ctx context.Context, gen *IDGen, days []DayRecords, neighbors [][]cps.SensorID, maxGap, workers int) ([][]*Cluster, error) {
	if len(days) == 0 {
		return nil, ctx.Err()
	}
	// Phase 1: event extraction, the dominant cost, in parallel per day.
	events := make([][][]cps.Record, len(days))
	if err := par.Do(ctx, len(days), workers, func(i int) error {
		events[i] = ExtractEvents(days[i].Records, neighbors, maxGap)
		return nil
	}); err != nil {
		return nil, err
	}
	// Phase 2: reserve the ID block, then summarize events in parallel with
	// positionally determined IDs.
	total := 0
	offset := make([]int, len(days))
	for i, evs := range events {
		offset[i] = total
		total += len(evs)
	}
	base := gen.Reserve(total)
	out := make([][]*Cluster, len(days))
	if err := par.Do(ctx, len(days), workers, func(i int) error {
		micros := make([]*Cluster, len(events[i]))
		for j, ev := range events[i] {
			micros[j] = FromRecords(base+ID(offset[i]+j), ev)
		}
		out[i] = micros
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// integrateChunkSize is the leaf width of the parallel merge tree. It is a
// fixed constant — never derived from the worker count — so the tree shape,
// and with it the integration result, depends only on the input.
const integrateChunkSize = 128

// IntegrateChunkSize exports the fixed merge-tree leaf width for
// introspection surfaces (query EXPLAIN reports the tree shape).
const IntegrateChunkSize = integrateChunkSize

// MergeTreeWidths returns the node count at each level of the fixed
// reduction tree IntegrateParallelCtx builds for n inputs: widths[0] is the
// leaf chunk count, each next level halves (odd tails carry), and the last
// entry is always 1. n <= 1 short-circuits integration entirely and yields
// nil. Because the tree is a function of n alone, EXPLAIN can report the
// exact shape without instrumenting the reduction.
func MergeTreeWidths(n int) []int {
	if n <= 1 {
		return nil
	}
	width := (n + integrateChunkSize - 1) / integrateChunkSize
	widths := []int{width}
	for width > 1 {
		width = (width + 1) / 2
		widths = append(widths, width)
	}
	return widths
}

// IntegrateParallel is Integrate as a chunked pairwise-merge tree reduction:
// fixed-size chunks integrate independently, then neighbors combine level by
// level until one cluster set remains. See the package comment above for the
// determinism contract. Workers <= 0 means one per CPU.
//
//atyplint:deterministic
func IntegrateParallel(gen *IDGen, micros []*Cluster, opts IntegrateOptions, workers int) []*Cluster {
	out, err := IntegrateParallelCtx(context.Background(), gen, micros, opts, workers)
	if err != nil {
		// Background contexts cannot cancel and chunk integration cannot
		// fail; an error here is a programming bug.
		panic(err)
	}
	return out
}

// IntegrateParallelCtx is IntegrateParallel with cooperative cancellation:
// between chunks and reduction levels the context is polled, and a cancelled
// context abandons the reduction with ctx's error.
//
//atyplint:deterministic
func IntegrateParallelCtx(ctx context.Context, gen *IDGen, micros []*Cluster, opts IntegrateOptions, workers int) ([]*Cluster, error) {
	if opts.SimThreshold <= 0 {
		panic("cluster: IntegrateOptions.SimThreshold must be positive")
	}
	n := len(micros)
	if n <= 1 {
		out := make([]*Cluster, n)
		copy(out, micros)
		return out, ctx.Err()
	}
	zeroID := func() ID { return 0 }

	// Leaves: fixed-size chunks in input order.
	groups := make([][]*Cluster, 0, (n+integrateChunkSize-1)/integrateChunkSize)
	for lo := 0; lo < n; lo += integrateChunkSize {
		hi := lo + integrateChunkSize
		if hi > n {
			hi = n
		}
		groups = append(groups, micros[lo:hi])
	}
	results := make([][]*Cluster, len(groups))
	if err := par.Do(ctx, len(groups), workers, func(i int) error {
		results[i] = integrateCore(groups[i], opts, zeroID)
		return nil
	}); err != nil {
		return nil, err
	}

	// Reduction: combine adjacent pairs level by level. An odd tail carries
	// to the next level unchanged, keeping the tree shape a function of the
	// leaf count only.
	for len(results) > 1 {
		next := make([][]*Cluster, (len(results)+1)/2)
		if err := par.Do(ctx, len(next), workers, func(i int) error {
			a := results[2*i]
			if 2*i+1 == len(results) {
				next[i] = a
				return nil
			}
			b := results[2*i+1]
			combined := make([]*Cluster, 0, len(a)+len(b))
			combined = append(combined, a...)
			combined = append(combined, b...)
			next[i] = integrateCore(combined, opts, zeroID)
			return nil
		}); err != nil {
			return nil, err
		}
		results = next
	}
	out := results[0]

	// Renumber the macro-clusters created by this reduction (clusters that
	// are not aliases of inputs), in output order — a deterministic sequence
	// of gen draws independent of scheduling.
	inputs := make(map[*Cluster]struct{}, n)
	for _, c := range micros {
		inputs[c] = struct{}{}
	}
	for _, c := range out {
		if _, isInput := inputs[c]; !isInput {
			c.ID = gen.Next()
		}
	}
	return out, nil
}
