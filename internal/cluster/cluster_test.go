package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/cpskit/atypical/internal/cps"
)

func TestIDGen(t *testing.T) {
	var g IDGen
	a, b := g.Next(), g.Next()
	if a == 0 {
		t.Error("IDs should start above zero")
	}
	if a == b {
		t.Error("IDs must be unique")
	}
}

// paperExampleRecords reproduces the E_A prefix from the paper's Fig. 4.
func paperExampleRecords() []cps.Record {
	return []cps.Record{
		{Sensor: 1, Window: 97, Severity: 4}, // s1, 8:05-8:10, 4 min
		{Sensor: 1, Window: 98, Severity: 5}, // s1, 8:10-8:15, 5 min
		{Sensor: 2, Window: 98, Severity: 5}, // s2, 8:10-8:15, 5 min
		{Sensor: 3, Window: 99, Severity: 5}, // s3, 8:15-8:20, 5 min
		{Sensor: 4, Window: 99, Severity: 2}, // s4, 8:15-8:20, 2 min
	}
}

func TestFromRecordsPaperExample(t *testing.T) {
	var g IDGen
	c := FromRecords(g.Next(), paperExampleRecords())
	// SF: s1 aggregates 4+5=9 across windows (Definition 4's μ).
	if got := c.SF.Get(1); got != 9 {
		t.Errorf("μ(s1) = %v, want 9", got)
	}
	if got := c.SF.Get(4); got != 2 {
		t.Errorf("μ(s4) = %v, want 2", got)
	}
	// TF: window 98 aggregates 5+5=10 (ν).
	if got := c.TF.Get(98); got != 10 {
		t.Errorf("ν(w98) = %v, want 10", got)
	}
	if got := c.TF.Get(97); got != 4 {
		t.Errorf("ν(w97) = %v, want 4", got)
	}
	if c.Severity() != 21 {
		t.Errorf("severity = %v, want 21", c.Severity())
	}
	if c.Micros != 1 {
		t.Errorf("Micros = %d", c.Micros)
	}
	// ΣSF == ΣTF always.
	if c.SF.Total() != c.TF.Total() {
		t.Error("feature totals must agree")
	}
}

func TestNewValidates(t *testing.T) {
	if _, err := New(1, sf(1, 5), TemporalFeature{{Key: 0, Sev: 5}}); err != nil {
		t.Errorf("valid cluster rejected: %v", err)
	}
	// Mismatched totals.
	if _, err := New(1, sf(1, 5), TemporalFeature{{Key: 0, Sev: 4}}); err == nil {
		t.Error("mismatched totals accepted")
	}
	// Invalid feature.
	if _, err := New(1, SpatialFeature{{Key: 1, Sev: -1}}, nil); err == nil {
		t.Error("invalid feature accepted")
	}
}

func TestClusterAccessors(t *testing.T) {
	var g IDGen
	c := FromRecords(g.Next(), paperExampleRecords())
	sensors := c.Sensors()
	if len(sensors) != 4 || sensors[0] != 1 || sensors[3] != 4 {
		t.Errorf("Sensors = %v", sensors)
	}
	span := c.WindowSpan()
	if span.From != 97 || span.To != 100 {
		t.Errorf("WindowSpan = %+v", span)
	}
	s, sev := c.PeakSensor()
	if s != 1 || sev != 9 {
		t.Errorf("PeakSensor = %d, %v", s, sev)
	}
	w, wsev := c.PeakWindow()
	if w != 98 || wsev != 10 {
		t.Errorf("PeakWindow = %d, %v", w, wsev)
	}
	if c.String() == "" {
		t.Error("String should describe the cluster")
	}
}

func TestEmptyClusterAccessors(t *testing.T) {
	c := &Cluster{ID: 1}
	if c.Severity() != 0 {
		t.Error("empty severity")
	}
	if span := c.WindowSpan(); span.Len() != 0 {
		t.Error("empty span")
	}
	if _, sev := c.PeakSensor(); sev != 0 {
		t.Error("empty peak sensor")
	}
	if _, sev := c.PeakWindow(); sev != 0 {
		t.Error("empty peak window")
	}
}

func TestMergePaperAlgorithm2(t *testing.T) {
	var g IDGen
	// Clusters C_A and C_C of the paper's Fig. 5 share sensors s1, s2.
	ca := FromRecords(g.Next(), []cps.Record{
		{Sensor: 1, Window: 97, Severity: 9},
		{Sensor: 2, Window: 98, Severity: 7},
		{Sensor: 3, Window: 99, Severity: 3},
	})
	cc := FromRecords(g.Next(), []cps.Record{
		{Sensor: 1, Window: 100, Severity: 10},
		{Sensor: 2, Window: 100, Severity: 5},
		{Sensor: 9, Window: 101, Severity: 6},
	})
	m := Merge(&g, ca, cc)
	if m.ID == ca.ID || m.ID == cc.ID {
		t.Error("merged cluster needs a fresh ID")
	}
	if got := m.SF.Get(1); got != 19 {
		t.Errorf("merged μ(s1) = %v, want 19", got)
	}
	if got := m.SF.Get(3); got != 3 {
		t.Errorf("non-common sensor lost: %v", got)
	}
	if got := m.SF.Get(9); got != 6 {
		t.Errorf("non-common sensor lost: %v", got)
	}
	if m.Severity() != ca.Severity()+cc.Severity() {
		t.Error("severity must be additive")
	}
	if m.Micros != 2 || len(m.Children) != 2 {
		t.Errorf("Micros=%d Children=%d", m.Micros, len(m.Children))
	}
	// Inputs untouched.
	if ca.SF.Get(1) != 9 || cc.SF.Get(1) != 10 {
		t.Error("Merge must not mutate inputs")
	}
}

func TestSimilarityPaperExample5(t *testing.T) {
	var g IDGen
	// C_A and C_B share sensors but happen at disjoint times (morning vs
	// evening): spatially similar, temporally dissimilar — the Example 5
	// reason they do NOT integrate.
	ca := FromRecords(g.Next(), []cps.Record{
		{Sensor: 1, Window: 97, Severity: 5},
		{Sensor: 2, Window: 98, Severity: 5},
	})
	cb := FromRecords(g.Next(), []cps.Record{
		{Sensor: 1, Window: 220, Severity: 5},
		{Sensor: 2, Window: 221, Severity: 5},
	})
	if got := SpatialSimilarity(ca, cb, Arithmetic); got != 1 {
		t.Errorf("spatial similarity = %v, want 1", got)
	}
	if got := TemporalSimilarity(ca, cb, Arithmetic); got != 0 {
		t.Errorf("temporal similarity = %v, want 0", got)
	}
	if got := Similarity(ca, cb, Arithmetic); got != 0.5 {
		t.Errorf("similarity = %v, want 0.5", got)
	}
	// C_A and C_C share sensors AND time: they integrate.
	cc := FromRecords(g.Next(), []cps.Record{
		{Sensor: 1, Window: 97, Severity: 5},
		{Sensor: 2, Window: 98, Severity: 5},
		{Sensor: 9, Window: 98, Severity: 1},
	})
	if got := Similarity(ca, cc, Arithmetic); got <= 0.5 {
		t.Errorf("related clusters similarity = %v, want > 0.5", got)
	}
}

func TestSignificance(t *testing.T) {
	bound := SignificanceBound(0.05, 288, 100) // 5% of a day over 100 sensors
	if math.Abs(float64(bound)-1440) > 1e-9 {
		t.Errorf("bound = %v, want 1440", bound)
	}
	var g IDGen
	big := FromRecords(g.Next(), []cps.Record{{Sensor: 1, Window: 0, Severity: 1441}})
	small := FromRecords(g.Next(), []cps.Record{{Sensor: 1, Window: 0, Severity: 1440}})
	if !big.Significant(bound) {
		t.Error("cluster above bound should be significant")
	}
	if small.Significant(bound) {
		t.Error("Definition 5 uses strict inequality")
	}
}

func randomCluster(rng *rand.Rand, g *IDGen) *Cluster {
	n := 1 + rng.Intn(12)
	recs := make([]cps.Record, n)
	for i := range recs {
		recs[i] = cps.Record{
			Sensor:   cps.SensorID(rng.Intn(20)),
			Window:   cps.Window(rng.Intn(40)),
			Severity: cps.Severity(rng.Intn(5)) + 1,
		}
	}
	return FromRecords(g.Next(), recs)
}

// Property 3 of the paper: merging is commutative and associative (up to the
// generated ID, which is fresh by construction).
func TestMergeCommutativeAssociativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var g IDGen
		a, b, c := randomCluster(rng, &g), randomCluster(rng, &g), randomCluster(rng, &g)
		ab := Merge(&g, a, b)
		ba := Merge(&g, b, a)
		if !featuresEqual(ab.SF, ba.SF) || !featuresEqual(ab.TF, ba.TF) {
			return false
		}
		left := Merge(&g, Merge(&g, a, b), c)
		right := Merge(&g, a, Merge(&g, b, c))
		return featuresEqual(left.SF, right.SF) && featuresEqual(left.TF, right.TF) &&
			left.Micros == right.Micros
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property 2 of the paper: features are algebraic — summarizing all records
// directly equals merging per-part summaries, for any partition.
func TestFeaturesAlgebraicProperty(t *testing.T) {
	f := func(seed int64, cut uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		recs := make([]cps.Record, n)
		for i := range recs {
			recs[i] = cps.Record{
				Sensor:   cps.SensorID(rng.Intn(10)),
				Window:   cps.Window(rng.Intn(20)),
				Severity: cps.Severity(rng.Intn(4)) + 1,
			}
		}
		k := 1 + int(cut)%(n-1)
		var g IDGen
		whole := FromRecords(g.Next(), recs)
		merged := Merge(&g, FromRecords(g.Next(), recs[:k]), FromRecords(g.Next(), recs[k:]))
		return featuresEqual(whole.SF, merged.SF) && featuresEqual(whole.TF, merged.TF)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: similarity is symmetric, bounded in [0,1], and reflexively 1.
func TestSimilarityBoundsProperty(t *testing.T) {
	f := func(seed int64, gIdx uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var gen IDGen
		a, b := randomCluster(rng, &gen), randomCluster(rng, &gen)
		g := Balances[int(gIdx)%len(Balances)]
		s := Similarity(a, b, g)
		if s < 0 || s > 1+1e-12 {
			return false
		}
		if math.Abs(s-Similarity(b, a, g)) > 1e-12 {
			return false
		}
		return math.Abs(Similarity(a, a, g)-1) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func featuresEqual[K Key](a, b Feature[K]) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Key != b[i].Key || !approxEq(float64(a[i].Sev), float64(b[i].Sev)) {
			return false
		}
	}
	return true
}
