package dsu

import (
	"testing"
	"testing/quick"
)

func TestSingletons(t *testing.T) {
	d := New(5)
	if d.Len() != 5 || d.Sets() != 5 {
		t.Fatalf("Len=%d Sets=%d", d.Len(), d.Sets())
	}
	for i := 0; i < 5; i++ {
		if d.Find(i) != i {
			t.Errorf("Find(%d) = %d", i, d.Find(i))
		}
		if d.SetSize(i) != 1 {
			t.Errorf("SetSize(%d) = %d", i, d.SetSize(i))
		}
	}
}

func TestUnionFind(t *testing.T) {
	d := New(6)
	if !d.Union(0, 1) {
		t.Error("first union should merge")
	}
	if d.Union(1, 0) {
		t.Error("repeat union should not merge")
	}
	d.Union(2, 3)
	d.Union(0, 2)
	if d.Sets() != 3 { // {0,1,2,3}, {4}, {5}
		t.Errorf("Sets = %d, want 3", d.Sets())
	}
	if !d.Same(1, 3) {
		t.Error("1 and 3 should be connected")
	}
	if d.Same(0, 4) {
		t.Error("0 and 4 should be separate")
	}
	if d.SetSize(3) != 4 {
		t.Errorf("SetSize = %d, want 4", d.SetSize(3))
	}
}

func TestComponents(t *testing.T) {
	d := New(5)
	d.Union(0, 2)
	d.Union(3, 4)
	comps := d.Components()
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3", len(comps))
	}
	total := 0
	for _, members := range comps {
		total += len(members)
		for i := 1; i < len(members); i++ {
			if members[i-1] >= members[i] {
				t.Error("members should be ascending")
			}
		}
	}
	if total != 5 {
		t.Errorf("components cover %d elements", total)
	}
}

// Property: DSU connectivity equals brute-force transitive closure.
func TestMatchesTransitiveClosure(t *testing.T) {
	f := func(edges []uint16) bool {
		const n = 12
		d := New(n)
		adj := make([][]bool, n)
		for i := range adj {
			adj[i] = make([]bool, n)
			adj[i][i] = true
		}
		for _, e := range edges {
			a, b := int(e%n), int(e/n%n)
			d.Union(a, b)
			adj[a][b], adj[b][a] = true, true
		}
		// Floyd–Warshall closure.
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if adj[i][k] && adj[k][j] {
						adj[i][j] = true
					}
				}
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d.Same(i, j) != adj[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: Sets() + number of successful unions == n.
func TestSetsInvariant(t *testing.T) {
	f := func(edges []uint16) bool {
		const n = 20
		d := New(n)
		merges := 0
		for _, e := range edges {
			if d.Union(int(e%n), int(e/n%n)) {
				merges++
			}
		}
		return d.Sets() == n-merges
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkUnionFind(b *testing.B) {
	const n = 100000
	for i := 0; i < b.N; i++ {
		d := New(n)
		for j := 1; j < n; j++ {
			d.Union(j, j/2)
		}
		if d.Sets() != 1 {
			b.Fatal("expected a single set")
		}
	}
}
