// Package dsu implements a disjoint-set union (union-find) structure with
// path compression and union by size. Event extraction (Algorithm 1) uses it
// to compute connected components of the "atypical related" relation — the
// transitive closure of "direct atypical related" (Definitions 1–2).
package dsu

// DSU is a fixed-capacity disjoint-set forest over the integers [0, n).
type DSU struct {
	parent []int32
	size   []int32
	sets   int
}

// New returns a DSU with n singleton sets.
func New(n int) *DSU {
	d := &DSU{
		parent: make([]int32, n),
		size:   make([]int32, n),
		sets:   n,
	}
	for i := range d.parent {
		d.parent[i] = int32(i)
		d.size[i] = 1
	}
	return d
}

// Len returns the number of elements.
func (d *DSU) Len() int { return len(d.parent) }

// Sets returns the current number of disjoint sets.
func (d *DSU) Sets() int { return d.sets }

// Find returns the canonical representative of x's set.
func (d *DSU) Find(x int) int {
	root := x
	for d.parent[root] != int32(root) {
		root = int(d.parent[root])
	}
	// Path compression.
	for d.parent[x] != int32(root) {
		next := d.parent[x]
		d.parent[x] = int32(root)
		x = int(next)
	}
	return root
}

// Union merges the sets of a and b, returning true when they were distinct.
func (d *DSU) Union(a, b int) bool {
	ra, rb := d.Find(a), d.Find(b)
	if ra == rb {
		return false
	}
	if d.size[ra] < d.size[rb] {
		ra, rb = rb, ra
	}
	d.parent[rb] = int32(ra)
	d.size[ra] += d.size[rb]
	d.sets--
	return true
}

// Same reports whether a and b are in the same set.
func (d *DSU) Same(a, b int) bool { return d.Find(a) == d.Find(b) }

// SetSize returns the size of x's set.
func (d *DSU) SetSize(x int) int { return int(d.size[d.Find(x)]) }

// Components groups the elements by set, returned as representative-keyed
// slices. Element order within a component is ascending.
func (d *DSU) Components() map[int][]int {
	out := make(map[int][]int, d.sets)
	for i := 0; i < len(d.parent); i++ {
		r := d.Find(i)
		out[r] = append(out[r], i)
	}
	return out
}
