// Fixture for the lockorder analyzer: intra-package inversions, self
// deadlocks, and cycles closed against lockorderdep's exported facts.
package lockorder

import (
	"sync"

	"lockorderdep"
)

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

func (a *A) lockThenB(b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want `lock order cycle lockorder\.A\.mu -> lockorder\.B\.mu -> lockorder\.A\.mu: acquiring lockorder\.B\.mu while holding lockorder\.A\.mu inverts the existing order`
	b.mu.Unlock()
}

func (b *B) lockThenA(a *A) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock() // want `lock order cycle lockorder\.B\.mu -> lockorder\.A\.mu -> lockorder\.B\.mu: acquiring lockorder\.A\.mu while holding lockorder\.B\.mu inverts the existing order`
	a.mu.Unlock()
}

func (a *A) double() {
	a.mu.Lock()
	a.mu.Lock() // want `lock order: acquires lockorder\.A\.mu while already holding it \(self-deadlock on a non-reentrant mutex\)`
	a.mu.Unlock()
	a.mu.Unlock()
}

// Inverts closes a cycle against the Mu -> Nu edge imported from
// lockorderdep's EdgeSet package fact.
func Inverts() {
	lockorderdep.Nu.Lock()
	defer lockorderdep.Nu.Unlock()
	lockorderdep.Mu.Lock() // want `lock order cycle lockorderdep\.Nu -> lockorderdep\.Mu -> lockorderdep\.Nu: acquiring lockorderdep\.Mu while holding lockorderdep\.Nu inverts the existing order`
	lockorderdep.Mu.Unlock()
}

// ViaFact closes the same cycle through a call: TouchMu's Acquires fact
// supplies the Nu -> Mu edge.
func ViaFact() {
	lockorderdep.Nu.Lock()
	defer lockorderdep.Nu.Unlock()
	lockorderdep.TouchMu() // want `lock order cycle lockorderdep\.Nu -> lockorderdep\.Mu -> lockorderdep\.Nu: calling lockorderdep\.TouchMu \(acquires lockorderdep\.Mu\) while holding lockorderdep\.Nu inverts the existing order`
}

// Wrapper holds its own lock around calls into lockorderdep: the resulting
// Wrapper.mu -> D.mu edge is fine (no cycle), and Bad's transitive summary
// must include both locks.
type Wrapper struct {
	mu sync.Mutex
	d  *lockorderdep.D
}

func (w *Wrapper) Bad() { // want fact:`acquires\(lockorder\.Wrapper\.mu,lockorderdep\.D\.mu\)`
	w.mu.Lock()
	defer w.mu.Unlock()
	w.d.Do()
}

// spawned goroutines do not inherit the held set: no A.mu -> B.mu edge here,
// so no new cycle site.
func (a *A) goroutineIsDetached(b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	go func() {
		b.mu.Lock()
		b.mu.Unlock()
	}()
}
