// Fixture dependency for the lockorder analyzer: its acquisition summaries
// (Acquires object facts) and edges (EdgeSet package fact) must reach the
// dependent fixture.
package lockorderdep

import "sync"

// Mu and Nu are package-level locks the dependent package can also acquire.
var (
	Mu sync.Mutex
	Nu sync.Mutex
)

// Both establishes the Mu -> Nu order; no cycle exists inside this package.
func Both() { // want fact:`acquires\(lockorderdep\.Mu,lockorderdep\.Nu\)`
	Mu.Lock()
	Nu.Lock()
	Nu.Unlock()
	Mu.Unlock()
}

// TouchMu acquires Mu only; callers holding another lock inherit the edge
// through this fact.
func TouchMu() { // want fact:`acquires\(lockorderdep\.Mu\)`
	Mu.Lock()
	Mu.Unlock()
}

// D carries an unexported mutex dependents can only reach through Do.
type D struct {
	mu sync.Mutex
	n  int
}

func (d *D) Do() { // want fact:`acquires\(lockorderdep\.D\.mu\)`
	d.mu.Lock()
	defer d.mu.Unlock()
	d.n++
}
