package lockorder_test

import (
	"testing"

	"github.com/cpskit/atypical/internal/analysis/analysistest"
	"github.com/cpskit/atypical/internal/analysis/lockorder"
)

// TestLockorder drives the fixture and its dependency in one run: the
// cross-package cycles only close through lockorderdep's Acquires and
// EdgeSet facts.
func TestLockorder(t *testing.T) {
	diags := analysistest.Run(t, "testdata", lockorder.Analyzer, "lockorder")
	if len(diags) == 0 {
		t.Fatal("expected diagnostics on the fixture")
	}
}
