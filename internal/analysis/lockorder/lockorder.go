// Package lockorder defines an interprocedural analyzer proving the absence
// of lock-order inversions: it builds a lock-acquisition graph whose nodes
// are mutexes identified by their declaration site — "pkg.Type.field" for
// struct fields, "pkg.Var" for package-level mutexes — and whose edges mean
// "some function acquires the second lock while holding the first". A cycle
// in that graph (including a self-edge: re-acquiring a held, non-reentrant
// mutex) is a potential deadlock and is reported.
//
// The graph is interprocedural. Each function's transitive acquisition set
// crosses package boundaries as an Acquires object fact, so `holding
// forest.Forest.mu, call cube.Add` adds the forest.Forest.mu ->
// cube.SeverityIndex.mu edge even though the cube acquisition is three
// helpers down. Accumulated edges travel as an EdgeSet package fact; a
// cycle is reported once, in the package whose edge closes it.
//
// Approximations, chosen to be conservative for *ordering* (a reported
// cycle may be a false positive in code with external serialization; a
// clean report is trustworthy modulo func-value and interface calls, which
// are not tracked): locks are identified per declaration, not per instance;
// hold intervals are computed in source order within a body (a deferred
// Unlock holds to function end); `go`-launched closures do not inherit the
// parent's held set.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"github.com/cpskit/atypical/internal/analysis/callgraph"
	"github.com/cpskit/atypical/internal/analysis/framework"
)

// Acquires is the object fact listing every lock a function may acquire,
// directly or transitively. Callers holding a lock consult it to extend the
// acquisition graph across package boundaries.
type Acquires struct {
	IDs []string
}

func (*Acquires) AFact() {}

func (f *Acquires) String() string { return "acquires(" + strings.Join(f.IDs, ",") + ")" }

// EdgeSet is the package fact carrying the acquisition edges known after
// analyzing a package (its own plus its imports'), so a dependent package
// can close — and report — a cycle whose other half lives upstream.
type EdgeSet struct {
	Edges []EdgePair
}

// EdgePair is one "To acquired while holding From" edge.
type EdgePair struct {
	From, To string
}

func (*EdgeSet) AFact() {}

func (f *EdgeSet) String() string {
	parts := make([]string, len(f.Edges))
	for i, e := range f.Edges {
		parts[i] = e.From + "->" + e.To
	}
	return "edges(" + strings.Join(parts, ",") + ")"
}

// Analyzer reports lock-order cycles in the interprocedural acquisition
// graph.
var Analyzer = &framework.Analyzer{
	Name: "lockorder",
	Doc: "build the interprocedural lock-acquisition graph and report " +
		"ordering cycles (potential deadlocks), including re-acquiring a held mutex",
	FactTypes: []framework.Fact{(*Acquires)(nil), (*EdgeSet)(nil)},
	Run:       run,
}

// localEdge is an edge observed in this package, with the site that created
// it.
type localEdge struct {
	from, to string
	pos      token.Pos
	// via names the callee whose Acquires fact produced the edge, "" for a
	// direct Lock call.
	via string
}

func run(pass *framework.Pass) (any, error) {
	g := callgraph.Build(pass)

	// Pass 1: per-function direct acquisitions and local edges.
	direct := map[*types.Func][]string{}
	type pendingCall struct {
		held   []string
		callee *types.Func
		pos    token.Pos
	}
	var calls []pendingCall
	var edges []localEdge
	g.ForEach(func(n *callgraph.Node) {
		if n.Decl == nil || n.Decl.Body == nil {
			return
		}
		w := &bodyWalker{pass: pass}
		w.walk(n.Decl.Body)
		// Dedupe: one body may acquire the same lock several times
		// (lock/unlock/relock), but summaries are sets.
		set := map[string]bool{}
		for _, id := range w.acquired {
			set[id] = true
		}
		direct[n.Obj] = sortedKeys(set)
		edges = append(edges, w.edges...)
		for _, c := range w.calls {
			calls = append(calls, pendingCall{held: c.held, callee: c.callee, pos: c.pos})
		}
	})

	// Pass 2: transitive acquisition summaries — local fixpoint seeded with
	// imported facts.
	summary := map[*types.Func][]string{}
	for fn, ids := range direct {
		summary[fn] = ids
	}
	acquiresOf := func(fn *types.Func) []string {
		if fn.Pkg() == pass.Pkg {
			return summary[fn]
		}
		var fact Acquires
		if pass.ImportObjectFact(fn, &fact) {
			return fact.IDs
		}
		return nil
	}
	for changed := true; changed; {
		changed = false
		g.ForEach(func(n *callgraph.Node) {
			set := map[string]bool{}
			for _, id := range summary[n.Obj] {
				set[id] = true
			}
			added := false
			for _, e := range n.Edges {
				if e.Ref || e.Iface {
					continue
				}
				for _, id := range acquiresOf(e.Callee) {
					if !set[id] {
						set[id] = true
						added = true
					}
				}
			}
			if added {
				summary[n.Obj] = sortedKeys(set)
				changed = true
			}
		})
	}

	// Edges through calls: holding H, calling a function that (transitively)
	// acquires A adds H -> A.
	for _, c := range calls {
		for _, a := range acquiresOf(c.callee) {
			for _, h := range c.held {
				edges = append(edges, localEdge{
					from: h, to: a, pos: c.pos, via: callgraph.ShortName(c.callee)})
			}
		}
	}

	// Export facts.
	if pass.Pkg.Name() != "main" {
		g.ForEach(func(n *callgraph.Node) {
			if ids := summary[n.Obj]; len(ids) > 0 {
				pass.ExportObjectFact(n.Obj, &Acquires{IDs: ids})
			}
		})
	}

	// Full graph: imported edges plus local ones.
	full := map[string]map[string]bool{}
	addEdge := func(from, to string) {
		m, okM := full[from]
		if !okM {
			m = map[string]bool{}
			full[from] = m
		}
		m[to] = true
	}
	var imported []EdgePair
	for _, imp := range pass.Pkg.Imports() {
		var fact EdgeSet
		if pass.ImportPackageFact(imp.Path(), &fact) {
			for _, e := range fact.Edges {
				addEdge(e.From, e.To)
				imported = append(imported, e)
			}
		}
	}
	for _, e := range edges {
		addEdge(e.from, e.to)
	}
	if pass.Pkg.Name() != "main" {
		all := map[EdgePair]bool{}
		for _, e := range imported {
			all[e] = true
		}
		for _, e := range edges {
			all[EdgePair{From: e.from, To: e.to}] = true
		}
		flat := make([]EdgePair, 0, len(all))
		for e := range all {
			flat = append(flat, e)
		}
		sort.Slice(flat, func(i, j int) bool {
			if flat[i].From != flat[j].From {
				return flat[i].From < flat[j].From
			}
			return flat[i].To < flat[j].To
		})
		if len(flat) > 0 {
			pass.ExportPackageFact(&EdgeSet{Edges: flat})
		}
	}

	// Report: every local edge that closes a cycle, once per site.
	type siteKey struct {
		pair EdgePair
		pos  token.Pos
	}
	seen := map[siteKey]bool{}
	for _, e := range edges {
		key := siteKey{pair: EdgePair{From: e.from, To: e.to}, pos: e.pos}
		if seen[key] {
			continue
		}
		seen[key] = true
		if e.from == e.to {
			what := "acquires " + e.to + " while already holding it"
			if e.via != "" {
				what = "calls " + e.via + ", which acquires " + e.to + ", while already holding it"
			}
			pass.Reportf(e.pos, "lock order: %s (self-deadlock on a non-reentrant mutex)", what)
			continue
		}
		if path := findPath(full, e.to, e.from); path != nil {
			cycle := append([]string{e.from}, path...)
			what := "acquiring " + e.to
			if e.via != "" {
				what = "calling " + e.via + " (acquires " + e.to + ")"
			}
			pass.Reportf(e.pos, "lock order cycle %s: %s while holding %s inverts the existing order",
				strings.Join(cycle, " -> "), what, e.from)
		}
	}
	return nil, nil
}

// ---- body traversal ----

// heldLock is one currently-held acquisition.
type heldLock struct {
	id string
}

type callSite struct {
	held   []string
	callee *types.Func
	pos    token.Pos
}

// bodyWalker simulates one function body in source order, tracking the held
// set.
type bodyWalker struct {
	pass     *framework.Pass
	held     []heldLock
	acquired []string
	edges    []localEdge
	calls    []callSite
}

func (w *bodyWalker) walk(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			// A spawned goroutine does not hold the parent's locks; walk its
			// body with an empty held set.
			if lit, okL := ast.Unparen(n.Call.Fun).(*ast.FuncLit); okL {
				sub := &bodyWalker{pass: w.pass}
				sub.walk(lit.Body)
				w.acquired = append(w.acquired, sub.acquired...)
				w.edges = append(w.edges, sub.edges...)
				w.calls = append(w.calls, sub.calls...)
			}
			return false
		case *ast.DeferStmt:
			// A deferred Unlock releases at function end: keep the lock in
			// the held set for everything after. Other deferred calls are
			// modelled at the defer site (approximation).
			if id, kind := w.lockOp(n.Call); id != "" && (kind == "Unlock" || kind == "RUnlock") {
				return false
			}
			return true
		case *ast.CallExpr:
			w.call(n)
			return true
		}
		return true
	})
}

// call processes one call expression: a Lock/Unlock on a tracked mutex
// updates the held set; any other resolvable call is recorded against the
// current held set for the interprocedural pass.
func (w *bodyWalker) call(call *ast.CallExpr) {
	if id, kind := w.lockOp(call); id != "" {
		switch kind {
		case "Lock", "RLock":
			for _, h := range w.held {
				w.edges = append(w.edges, localEdge{from: h.id, to: id, pos: call.Pos()})
			}
			w.held = append(w.held, heldLock{id: id})
			w.acquired = append(w.acquired, id)
		case "Unlock", "RUnlock":
			for i := len(w.held) - 1; i >= 0; i-- {
				if w.held[i].id == id {
					w.held = append(w.held[:i], w.held[i+1:]...)
					break
				}
			}
		}
		return
	}
	callee := staticCallee(w.pass, call)
	if callee == nil || len(w.held) == 0 {
		return
	}
	held := make([]string, len(w.held))
	for i, h := range w.held {
		held[i] = h.id
	}
	w.calls = append(w.calls, callSite{held: held, callee: callee, pos: call.Pos()})
}

// lockOp recognizes mu.Lock/RLock/Unlock/RUnlock on a trackable mutex and
// returns its lock ID and the method name ("" id otherwise).
func (w *bodyWalker) lockOp(call *ast.CallExpr) (string, string) {
	sel, okS := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !okS {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", ""
	}
	fn, okF := w.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !okF || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	return lockID(w.pass, sel.X), sel.Sel.Name
}

// lockID names the mutex operand by declaration site: "pkg.Type.field" for
// a struct field, "pkg.Var" for a package-level var. Locals and
// untrackable shapes return "".
func lockID(pass *framework.Pass, expr ast.Expr) string {
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		obj := pass.TypesInfo.Uses[e.Sel]
		v, okV := obj.(*types.Var)
		if !okV {
			return ""
		}
		if v.IsField() {
			t := pass.TypeOf(e.X)
			if t == nil {
				return ""
			}
			if p, okP := t.(*types.Pointer); okP {
				t = p.Elem()
			}
			if named, okN := types.Unalias(t).(*types.Named); okN && named.Obj().Pkg() != nil {
				return named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + v.Name()
			}
			return ""
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Name() + "." + v.Name()
		}
		return ""
	case *ast.Ident:
		v, okV := pass.TypesInfo.Uses[e].(*types.Var)
		if !okV {
			return ""
		}
		if v.Pkg() != nil && !v.IsField() && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Name() + "." + v.Name()
		}
		return ""
	}
	return ""
}

// staticCallee resolves a call to a declared function or method, nil for
// func values and interface calls.
func staticCallee(pass *framework.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, okS := pass.TypesInfo.Selections[fun]; okS {
			fn, okF := sel.Obj().(*types.Func)
			if !okF {
				return nil
			}
			if sig, okG := fn.Type().(*types.Signature); okG && sig.Recv() != nil &&
				types.IsInterface(sig.Recv().Type()) {
				return nil
			}
			return fn
		}
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// findPath returns a lock path from -> ... -> to in the edge map, nil if
// unreachable.
func findPath(full map[string]map[string]bool, from, to string) []string {
	type qe struct {
		id   string
		path []string
	}
	visited := map[string]bool{from: true}
	queue := []qe{{id: from, path: []string{from}}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.id == to {
			return cur.path
		}
		next := sortedKeys(full[cur.id])
		for _, n := range next {
			if visited[n] {
				continue
			}
			visited[n] = true
			queue = append(queue, qe{id: n, path: append(append([]string{}, cur.path...), n)})
		}
	}
	return nil
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
