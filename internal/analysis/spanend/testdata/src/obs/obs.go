// Stub of internal/obs for the spanend fixture: the package-path suffix
// check matches "obs", so this vendored stand-in exercises the analyzer
// without importing the real module.
package obs

import "context"

// Span is one timed region; only End exports it.
type Span struct{}

// End finishes the span.
func (*Span) End() {}

// SetAttr attaches a key/value attribute.
func (*Span) SetAttr(k, v string) {}

// Start opens a span below ctx.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	_ = name
	return ctx, nil
}
