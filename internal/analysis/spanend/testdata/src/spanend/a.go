// Fixture for the spanend analyzer: spans opened with obs.Start must be
// ended or returned; discarded and leaked spans are flagged.
package spanend

import (
	"context"

	"obs"
)

func goodDefer(ctx context.Context) {
	ctx, sp := obs.Start(ctx, "good")
	defer sp.End()
	_ = ctx
}

func goodDirect(ctx context.Context) {
	_, sp := obs.Start(ctx, "direct")
	sp.SetAttr("k", "v")
	sp.End()
}

func goodDeferredClosure(ctx context.Context) {
	_, sp := obs.Start(ctx, "closure")
	defer func() { sp.End() }()
}

func goodReturnDirect(ctx context.Context) (context.Context, *obs.Span) {
	return obs.Start(ctx, "handoff")
}

func goodReturnIdent(ctx context.Context) (context.Context, *obs.Span) {
	ctx, sp := obs.Start(ctx, "handoff2")
	return ctx, sp
}

func goodEarlyReturn(ctx context.Context, fail bool) error {
	_, sp := obs.Start(ctx, "early")
	if fail {
		sp.End()
		return nil
	}
	sp.End()
	return nil
}

func badLeak(ctx context.Context) {
	_, sp := obs.Start(ctx, "leak") // want `span sp is neither ended nor returned`
	sp.SetAttr("k", "v")
}

func badBlank(ctx context.Context) {
	ctx, _ = obs.Start(ctx, "blank") // want `span returned by obs\.Start is discarded`
	_ = ctx
}

func badDiscard(ctx context.Context) {
	obs.Start(ctx, "discard") // want `span returned by obs\.Start is discarded`
}

// badNested: each function literal owns its own Start calls; the outer span
// ending does not cover the inner leak.
func badNested(ctx context.Context) {
	_, sp := obs.Start(ctx, "outer")
	defer sp.End()
	go func() {
		_, inner := obs.Start(ctx, "inner") // want `span inner is neither ended nor returned`
		inner.SetAttr("k", "v")
	}()
}

// goodEndInGoroutine: End anywhere in the body satisfies the rule, nested
// literals included — the span's lifetime legitimately outlives the frame.
func goodEndInGoroutine(ctx context.Context) {
	_, sp := obs.Start(ctx, "async")
	go func() { sp.End() }()
}

// lookalike is a Start from a non-obs package path (this fixture package
// itself): not the analyzer's concern.
func lookalike(ctx context.Context) {
	Start(ctx, "nope")
}

// Start is a package-local lookalike.
func Start(ctx context.Context, name string) (context.Context, *obs.Span) {
	_ = name
	return ctx, nil
}
