// Package spanend defines an analyzer enforcing the span lifecycle around
// internal/obs: a span opened with obs.Start must be closed. A span that is
// never ended is worse than no span — it is silently absent from the trace
// ring (only End exports), so the trace looks like the work never happened,
// and any child parentage hangs off a span that will never publish.
//
// The rule, per function: every obs.Start call at the function's own level
// must either
//
//   - assign its span to an identifier on which .End() is reachable somewhere
//     in the function (a direct call, a defer, or inside a nested function
//     literal — the common `defer func() { sp.End() }()` shape counts), or
//   - be returned to the caller (directly as `return obs.Start(...)` or by
//     returning the span identifier), which transfers the obligation.
//
// Discarding the span — a bare `obs.Start(ctx, ...)` statement or a blank
// identifier — is always reported: a discarded span cannot be ended.
// Start calls inside nested function literals are that literal's own
// responsibility. A deliberate exception needs a written justification via
// "//atyplint:ignore spanend reason".
package spanend

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/cpskit/atypical/internal/analysis/framework"
)

// Analyzer flags obs.Start spans that are neither ended nor returned.
var Analyzer = &framework.Analyzer{
	Name: "spanend",
	Doc: "flag obs.Start calls whose span is neither ended nor returned " +
		"(an unended span never exports, so the trace silently loses it)",
	Run: run,
}

func run(pass *framework.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.FuncDecl:
				if node.Body != nil {
					checkBody(pass, node.Body)
				}
			case *ast.FuncLit:
				checkBody(pass, node.Body)
			}
			return true
		})
	}
	return nil, nil
}

// checkBody enforces the span lifecycle for one function body. Start calls
// count only at this function's own level — a Start inside a nested func
// literal is that literal's responsibility (run visits it separately). End
// calls and returns count anywhere in the body, so deferred closures and
// early returns satisfy the rule.
func checkBody(pass *framework.Pass, body *ast.BlockStmt) {
	type started struct {
		call *ast.CallExpr
		name string // span identifier; "" when the result is discarded
	}
	var starts []started

	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != body {
			return false
		}
		stmt, ok := n.(ast.Stmt)
		if !ok {
			return true
		}
		switch st := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok && isObsStart(pass, call) {
				starts = append(starts, started{call: call})
			}
		case *ast.AssignStmt:
			// Start returns two values, so it can only appear as the sole RHS.
			if len(st.Rhs) != 1 || len(st.Lhs) != 2 {
				return true
			}
			call, ok := st.Rhs[0].(*ast.CallExpr)
			if !ok || !isObsStart(pass, call) {
				return true
			}
			if id, ok := st.Lhs[1].(*ast.Ident); ok && id.Name != "_" {
				starts = append(starts, started{call: call, name: id.Name})
			} else {
				starts = append(starts, started{call: call})
			}
		case *ast.ReturnStmt:
			// `return obs.Start(...)` hands the span to the caller.
			if len(st.Results) == 1 {
				if call, ok := st.Results[0].(*ast.CallExpr); ok && isObsStart(pass, call) {
					return true
				}
			}
		}
		return true
	})
	if len(starts) == 0 {
		return
	}

	ended := map[string]bool{}
	returned := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			if sel, ok := node.Fun.(*ast.SelectorExpr); ok && isSpanEnd(pass, sel) {
				if id, ok := sel.X.(*ast.Ident); ok {
					ended[id.Name] = true
				}
			}
		case *ast.ReturnStmt:
			for _, res := range node.Results {
				if id, ok := res.(*ast.Ident); ok {
					returned[id.Name] = true
				}
			}
		}
		return true
	})

	for _, s := range starts {
		switch {
		case s.name == "":
			pass.Reportf(s.call.Pos(),
				"span returned by obs.Start is discarded; an unended span never "+
					"exports — assign it and defer its End()")
		case !ended[s.name] && !returned[s.name]:
			pass.Reportf(s.call.Pos(),
				"span %s is neither ended nor returned in this function; an "+
					"unended span never exports — add defer %s.End()",
				s.name, s.name)
		}
	}
}

// isObsStart reports whether call invokes internal/obs.Start (matched by
// package-path suffix so fixtures with a vendored stub qualify).
func isObsStart(pass *framework.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Name() != "Start" {
		return false
	}
	return isObsPath(fn.Pkg().Path())
}

// isSpanEnd reports whether sel selects the End method of the obs span type.
func isSpanEnd(pass *framework.Pass, sel *ast.SelectorExpr) bool {
	if sel.Sel.Name != "End" {
		return false
	}
	fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return isObsPath(fn.Pkg().Path())
}

func isObsPath(path string) bool {
	return path == "obs" || strings.HasSuffix(path, "/obs")
}
