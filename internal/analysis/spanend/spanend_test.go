package spanend_test

import (
	"testing"

	"github.com/cpskit/atypical/internal/analysis/analysistest"
	"github.com/cpskit/atypical/internal/analysis/spanend"
)

func TestSpanEnd(t *testing.T) {
	diags := analysistest.Run(t, "testdata", spanend.Analyzer, "spanend")
	if len(diags) == 0 {
		t.Fatal("expected at least one true-positive diagnostic on the fixture")
	}
}
