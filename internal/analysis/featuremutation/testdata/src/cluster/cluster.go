// Fixture stand-in for the real cluster package: the import path ends in
// "cluster", which is what the analyzer keys on.
package cluster

type Entry struct {
	Key int
	Sev float64
}

type Cluster struct {
	ID int
	SF []Entry
	TF []Entry
}

// The owning package may mutate its own features freely; running the
// analyzer over this package must produce no diagnostics.
func (c *Cluster) reset() {
	c.SF = nil
	c.TF = c.TF[:0]
	if len(c.SF) > 0 {
		c.SF[0].Sev = 1
	}
}

var _ = (*Cluster).reset
