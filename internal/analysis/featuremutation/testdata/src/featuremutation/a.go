// Fixture for the featuremutation analyzer: packages outside cluster may
// read SF/TF and construct clusters, but never write features in place.
package featuremutation

import "cluster"

func bad(c *cluster.Cluster, e cluster.Entry) {
	c.SF = nil             // want `direct write to cluster feature cluster.SF`
	c.SF[0] = e            // want `direct write to cluster feature cluster.SF`
	c.TF[0].Sev += 1       // want `direct write to cluster feature cluster.TF`
	c.SF = append(c.SF, e) // want `direct write to cluster feature cluster.SF`
	c.TF[0].Sev++          // want `direct write to cluster feature cluster.TF`
}

func good(c *cluster.Cluster) float64 {
	total := 0.0
	for _, e := range c.SF { // reading features is fine
		total += e.Sev
	}
	fresh := cluster.Cluster{SF: nil, TF: nil} // construction, not mutation
	fresh.ID = 7                               // non-feature fields are free
	other := struct{ SF []int }{}              // an SF field of some other struct
	other.SF = append(other.SF, 1)
	_ = other
	return total
}
