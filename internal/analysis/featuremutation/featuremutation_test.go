package featuremutation_test

import (
	"testing"

	"github.com/cpskit/atypical/internal/analysis/analysistest"
	"github.com/cpskit/atypical/internal/analysis/featuremutation"
)

func TestFeatureMutationOutsideCluster(t *testing.T) {
	diags := analysistest.Run(t, "testdata", featuremutation.Analyzer, "featuremutation")
	if len(diags) == 0 {
		t.Fatal("expected at least one true-positive diagnostic on the fixture")
	}
}

// The cluster package itself owns the features and is exempt; its fixture
// mutates SF/TF with no want-comments, so any diagnostic fails the run.
func TestFeatureMutationInsideClusterIsExempt(t *testing.T) {
	diags := analysistest.Run(t, "testdata", featuremutation.Analyzer, "cluster")
	if len(diags) != 0 {
		t.Fatalf("cluster package should be exempt, got %d diagnostics", len(diags))
	}
}
