// Package featuremutation defines an analyzer that flags direct writes to a
// cluster's SF/TF features outside the cluster package.
//
// The whole query-processing pipeline rests on the algebraic feature
// property (paper Property 2): a cluster's spatial feature SF and temporal
// feature TF are canonical sorted severity vectors that other packages may
// read but must never edit in place — merging goes through cluster.Merge /
// MergeFeature and construction through cluster.New / FromRecords /
// NewFeature, which enforce the sorted-unique-positive invariant. A stray
// `c.SF[i].Sev += x` in a query or storage path silently breaks merge
// equivalence with recomputation from raw records.
//
// Composite literals (cluster.Cluster{SF: ...}) are construction, not
// mutation, and stay legal: storage decoding rebuilds clusters that way from
// features produced by the validated decoder.
package featuremutation

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/cpskit/atypical/internal/analysis/framework"
)

// Analyzer flags out-of-package writes to cluster features.
var Analyzer = &framework.Analyzer{
	Name: "featuremutation",
	Doc: "flag direct writes to cluster SF/TF features outside the cluster " +
		"package (Property 2: features change only through Merge/New)",
	Run: run,
}

func run(pass *framework.Pass) (any, error) {
	if isClusterPath(pass.Pkg.Path()) {
		return nil, nil // the owning package may do as it pleases
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range stmt.Lhs {
					checkTarget(pass, lhs)
				}
			case *ast.IncDecStmt:
				checkTarget(pass, stmt.X)
			}
			return true
		})
	}
	return nil, nil
}

// checkTarget walks an assignment target and reports any SF/TF field of the
// cluster package on its access path (c.SF = …, c.SF[i] = …, c.TF[i].Sev += …).
func checkTarget(pass *framework.Pass, e ast.Expr) {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			if field := featureField(pass, x); field != nil {
				pass.Reportf(x.Sel.Pos(),
					"direct write to cluster feature %s.%s outside package %s; "+
						"build features with NewFeature/FromRecords and combine with Merge",
					field.Pkg().Name(), field.Name(), field.Pkg().Path())
				return
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return
		}
	}
}

// featureField returns the field object when sel selects a struct field
// named SF or TF defined in a cluster package.
func featureField(pass *framework.Pass, sel *ast.SelectorExpr) *types.Var {
	if sel.Sel.Name != "SF" && sel.Sel.Name != "TF" {
		return nil
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	field, ok := s.Obj().(*types.Var)
	if !ok || field.Pkg() == nil || !isClusterPath(field.Pkg().Path()) {
		return nil
	}
	return field
}

// isClusterPath matches the real package and the short fixture path used by
// the analyzer tests.
func isClusterPath(path string) bool {
	return path == "cluster" || strings.HasSuffix(path, "/cluster")
}
