// Package load type-checks Go packages for the atyplint analyzers without
// any dependency outside the standard library and the go toolchain.
//
// Strategy: `go list -deps -export` compiles (or reuses from the build
// cache) export data for every dependency, and the stdlib gc importer
// (go/importer.ForCompiler with a lookup function) resolves imports from
// those files. Only the packages under analysis are parsed and type-checked
// from source, so a whole-module load costs one `go list` invocation plus a
// type-check of the module's own files — no network, no vendored modules.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"

	"github.com/cpskit/atypical/internal/analysis/framework"
)

// Package is one type-checked package with its syntax trees.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// goList runs the go command and decodes its -json package stream.
func goList(dir string, extra ...string) ([]listedPkg, error) {
	args := append([]string{"list", "-e", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,Export,DepOnly,Standard,Error"}, extra...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(extra, " "), err, stderr.String())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Exports maps import paths to compiled export-data files, consulting
// `go list -export` lazily for paths it has not seen. It is the lookup
// backend of the gc importer and is safe for concurrent use.
type Exports struct {
	mu    sync.Mutex
	dir   string
	files map[string]string
}

// NewExports returns an empty export-data resolver running `go list` in dir
// ("" means the current directory).
func NewExports(dir string) *Exports {
	return &Exports{dir: dir, files: map[string]string{}}
}

func (e *Exports) add(pkgs []listedPkg) {
	for _, p := range pkgs {
		if p.Export != "" {
			e.files[p.ImportPath] = p.Export
		}
	}
}

// Lookup implements the go/importer lookup contract: it returns a reader of
// the export data for path.
func (e *Exports) Lookup(path string) (io.ReadCloser, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if f, ok := e.files[path]; ok {
		return os.Open(f)
	}
	pkgs, err := goList(e.dir, "--", path)
	if err != nil {
		return nil, fmt.Errorf("load: resolving export data for %q: %v", path, err)
	}
	e.add(pkgs)
	if f, ok := e.files[path]; ok {
		return os.Open(f)
	}
	return nil, fmt.Errorf("load: no export data for %q", path)
}

// Importer returns a types.Importer resolving imports through e.
func (e *Exports) Importer(fset *token.FileSet) types.Importer {
	return importer.ForCompiler(fset, "gc", e.Lookup)
}

// Check parses the named files of one package directory and type-checks them.
func Check(fset *token.FileSet, dir, pkgPath string, goFiles []string, imp types.Importer) (*Package, error) {
	files := make([]*ast.File, 0, len(goFiles))
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := framework.NewInfo()
	var firstErr error
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, _ := conf.Check(pkgPath, fset, files, info)
	if firstErr != nil {
		return nil, fmt.Errorf("load: type-checking %s: %v", pkgPath, firstErr)
	}
	return &Package{
		PkgPath:   pkgPath,
		Dir:       dir,
		Fset:      fset,
		Syntax:    files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// Packages loads every package matched by patterns (e.g. "./...") rooted at
// dir, type-checked from source with dependencies resolved via export data.
func Packages(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := NewExports(dir)
	exports.add(listed)
	fset := token.NewFileSet()
	imp := exports.Importer(fset)
	var out []*Package
	for _, p := range listed {
		if p.DepOnly || p.Standard {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkg, err := Check(fset, p.Dir, p.ImportPath, p.GoFiles, imp)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// fixtureImporter resolves imports first against a testdata/src-style source
// root (so analyzer fixtures can import each other, as upstream analysistest
// allows) and falls back to export data for everything else.
type fixtureImporter struct {
	root string
	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*types.Package
	// loading guards against import cycles among fixtures.
	loading map[string]bool
	// loaded records every source-checked fixture package in completion
	// order — dependencies before dependents, the order interprocedural
	// analyzers must run in.
	loaded []*Package
}

func (im *fixtureImporter) Import(path string) (*types.Package, error) {
	if p, ok := im.pkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(im.root, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		if im.loading[path] {
			return nil, fmt.Errorf("load: fixture import cycle through %q", path)
		}
		im.loading[path] = true
		defer delete(im.loading, path)
		pkg, err := checkFixtureDir(im.fset, dir, path, im)
		if err != nil {
			return nil, err
		}
		im.pkgs[path] = pkg.Types
		im.loaded = append(im.loaded, pkg)
		return pkg.Types, nil
	}
	return im.std.Import(path)
}

func checkFixtureDir(fset *token.FileSet, dir, pkgPath string, imp types.Importer) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var goFiles []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			goFiles = append(goFiles, e.Name())
		}
	}
	if len(goFiles) == 0 {
		return nil, fmt.Errorf("load: no Go files in fixture %s", dir)
	}
	return Check(fset, dir, pkgPath, goFiles, imp)
}

// FixturePackage loads testdata package `path` under root (typically
// "testdata/src"), for the analysistest harness.
func FixturePackage(root, path string) (*Package, error) {
	pkgs, err := FixturePackages(root, path)
	if err != nil {
		return nil, err
	}
	return pkgs[len(pkgs)-1], nil
}

// FixturePackages loads the named testdata packages under root together
// with every fixture package they import, all type-checked from source
// against one shared FileSet. The result is in dependency order
// (dependencies before dependents) with the last named package last, so an
// interprocedural analyzer can be run over the slice front to back with a
// shared fact store.
func FixturePackages(root string, paths ...string) ([]*Package, error) {
	fset := token.NewFileSet()
	im := &fixtureImporter{
		root:    root,
		fset:    fset,
		std:     NewExports("").Importer(fset),
		pkgs:    map[string]*types.Package{},
		loading: map[string]bool{},
	}
	for _, path := range paths {
		if _, ok := im.pkgs[path]; ok {
			continue // already pulled in as a dependency of an earlier one
		}
		im.loading[path] = true
		pkg, err := checkFixtureDir(fset, filepath.Join(root, filepath.FromSlash(path)), path, im)
		delete(im.loading, path)
		if err != nil {
			return nil, err
		}
		im.pkgs[path] = pkg.Types
		im.loaded = append(im.loaded, pkg)
	}
	return im.loaded, nil
}
