// Package deprecatedfield defines an analyzer flagging reads, writes, and
// composite-literal initialization of struct fields the codebase has
// deprecated in favor of a typed replacement. The table below names each
// field and the migration; the analyzer convicts every use outside the
// field's own grace zone:
//
//   - the declaring package itself (back-compat plumbing must keep reading
//     the field);
//   - package main (command flag parsing is the sanctioned producer of the
//     stringly values the deprecated fields carry);
//   - _test.go files (the back-compat surface stays under test).
//
// Resolution is type-based, not textual: a selector or literal key counts
// only when the owning named type matches the table entry, so an unrelated
// struct that happens to share a field name stays quiet.
package deprecatedfield

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/cpskit/atypical/internal/analysis/framework"
)

// Entry names one deprecated field and the migration away from it.
type Entry struct {
	// PkgSuffix matches the declaring package's import path: equal to it,
	// or a "/"-delimited suffix (so "atypical" matches both the module
	// root and a fixture package named atypical).
	PkgSuffix string
	// Type is the named struct type declaring the field.
	Type string
	// Field is the deprecated field's name.
	Field string
	// Advice says what to use instead; it is appended to the diagnostic.
	Advice string
}

// Deprecated is the table of retired fields. Tests may append fixture
// entries; the production table holds the codebase's real deprecations.
var Deprecated = []Entry{
	{
		PkgSuffix: "atypical", Type: "Config", Field: "Balance",
		Advice: "pass the typed constant via WithBalance (ParseBalance belongs in command flag parsing only)",
	},
}

// Analyzer flags uses of deprecated struct fields outside their grace zone.
var Analyzer = &framework.Analyzer{
	Name: "deprecatedfield",
	Doc: "deprecated struct fields (Config.Balance) must not spread beyond " +
		"their declaring package, package main, and tests",
	Run: run,
}

func run(pass *framework.Pass) (any, error) {
	if pass.Pkg.Name() == "main" {
		return nil, nil
	}
	entries := make([]Entry, 0, len(Deprecated))
	for _, e := range Deprecated {
		if !pkgMatches(pass.Pkg.Path(), e.PkgSuffix) {
			entries = append(entries, e)
		}
	}
	if len(entries) == 0 {
		return nil, nil
	}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if e := match(entries, pass.TypeOf(n.X), n.Sel.Name); e != nil {
					report(pass, n.Sel.Pos(), e)
				}
			case *ast.CompositeLit:
				t := pass.TypeOf(n)
				for _, elt := range n.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok {
						continue
					}
					if e := match(entries, t, key.Name); e != nil {
						report(pass, key.Pos(), e)
					}
				}
			}
			return true
		})
	}
	return nil, nil
}

func report(pass *framework.Pass, pos token.Pos, e *Entry) {
	pass.Reportf(pos, "%s.%s is deprecated: %s", e.Type, e.Field, e.Advice)
}

// match returns the table entry deprecating field name on owner (possibly a
// pointer to the named struct), or nil.
func match(entries []Entry, owner types.Type, name string) *Entry {
	if owner == nil {
		return nil
	}
	if ptr, ok := types.Unalias(owner).(*types.Pointer); ok {
		owner = ptr.Elem()
	}
	named, ok := types.Unalias(owner).(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return nil
	}
	for i := range entries {
		e := &entries[i]
		if name == e.Field && obj.Name() == e.Type && pkgMatches(obj.Pkg().Path(), e.PkgSuffix) {
			return e
		}
	}
	return nil
}

// pkgMatches reports whether path is suffix itself or ends in "/"+suffix.
func pkgMatches(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}
