// Package atypical is the fixture stand-in for the facade: it declares the
// deprecated field, and its own back-compat reads are exempt.
package atypical

// Config mirrors the facade configuration shape.
type Config struct {
	// Balance is the deprecated stringly balance selector.
	Balance string
	Sensors int
}

// Resolve keeps reading the deprecated field — declaring-package plumbing
// the analyzer must leave alone.
func Resolve(c Config) string {
	if c.Balance != "" {
		return c.Balance
	}
	return "avg"
}
