// Command depmain is the package-main fixture: flag parsing is the
// sanctioned producer of the stringly value, so nothing is reported here.
package main

import "atypical"

func main() {
	cfg := atypical.Config{Balance: "har"}
	cfg.Balance = "geo"
	_ = atypical.Resolve(cfg)
}
