// Tests keep the back-compat surface covered, so _test.go files may touch
// the deprecated field freely.
package depuser

import "atypical"

func helperForTests() string {
	cfg := atypical.Config{Balance: "min"}
	return cfg.Balance
}
