// Package depuser exercises deprecatedfield: selector reads, assignments,
// and composite-literal keys of atypical.Config.Balance are convicted, while
// sibling fields and lookalike structs stay quiet.
package depuser

import "atypical"

// lookalike shares the field name but not the type; it must stay quiet.
type lookalike struct {
	Balance string
}

func Build() atypical.Config {
	cfg := atypical.Config{
		Balance: "avg", // want `Config\.Balance is deprecated`
		Sensors: 4,
	}
	cfg.Balance = "max" // want `Config\.Balance is deprecated`
	return cfg
}

func Read(c *atypical.Config) string {
	return c.Balance // want `Config\.Balance is deprecated`
}

func Quiet() string {
	l := lookalike{Balance: "avg"}
	_ = atypical.Config{Sensors: 2}
	return l.Balance
}
