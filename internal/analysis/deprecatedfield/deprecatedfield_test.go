package deprecatedfield_test

import (
	"testing"

	"github.com/cpskit/atypical/internal/analysis/analysistest"
	"github.com/cpskit/atypical/internal/analysis/deprecatedfield"
)

// TestDeprecatedField drives the consumer fixture (convicted), the
// declaring-package fixture, the package-main fixture, and a _test.go file
// (all exempt) in one run.
func TestDeprecatedField(t *testing.T) {
	diags := analysistest.Run(t, "testdata", deprecatedfield.Analyzer, "depuser", "depmain", "atypical")
	if len(diags) != 3 {
		t.Fatalf("got %d diagnostics, want 3: %v", len(diags), diags)
	}
}
