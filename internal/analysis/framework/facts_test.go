package framework

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

type testFact struct {
	Source string
}

func (*testFact) AFact()           {}
func (f *testFact) String() string { return fmt.Sprintf("test(%s)", f.Source) }

type otherFact struct{ N int }

func (*otherFact) AFact()           {}
func (f *otherFact) String() string { return fmt.Sprintf("other(%d)", f.N) }

// checkSrc type-checks one single-file package for the fact tests.
func checkSrc(t *testing.T, path, src string) (*Pass, *types.Package) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path+".go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := NewInfo()
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check(path, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	pass := &Pass{
		Fset:      fset,
		Files:     []*ast.File{f},
		Pkg:       pkg,
		TypesInfo: info,
		Report:    func(Diagnostic) {},
	}
	return pass, pkg
}

func TestObjectFactRoundTrip(t *testing.T) {
	a := &Analyzer{Name: "t", FactTypes: []Fact{(*testFact)(nil), (*otherFact)(nil)}}
	RegisterFactTypes(a)
	store := NewFactStore()

	pass, pkg := checkSrc(t, "lower", `package lower
func F() {}
type T struct{}
func (T) M() {}
func (*T) PM() {}
var V int
`)
	pass.Analyzer = a
	pass.SetFacts(store)

	fObj := pkg.Scope().Lookup("F")
	pass.ExportObjectFact(fObj, &testFact{Source: "time.Now"})
	named := pkg.Scope().Lookup("T").Type().(*types.Named)
	for i := 0; i < named.NumMethods(); i++ {
		m := named.Method(i)
		pass.ExportObjectFact(m, &testFact{Source: "m:" + m.Name()})
	}
	pass.ExportObjectFact(pkg.Scope().Lookup("V"), &otherFact{N: 7})
	pass.ExportPackageFact(&otherFact{N: 42})

	// Same-pass import sees in-flight facts.
	var tf testFact
	if !pass.ImportObjectFact(fObj, &tf) || tf.Source != "time.Now" {
		t.Fatalf("same-pass import: got %+v", tf)
	}
	// Type filtering: importing the wrong type misses.
	var of otherFact
	if pass.ImportObjectFact(fObj, &of) {
		t.Fatal("otherFact should not be found on F")
	}

	if err := pass.FinishFacts(); err != nil {
		t.Fatal(err)
	}

	// A dependent pass sees the facts through the gob round-trip, looked up
	// by object key against a *different* types.Package identity for the
	// same import path (simulating the export-data view).
	pass2, pkg2 := checkSrc(t, "lower", `package lower
func F() {}
type T struct{}
func (T) M() {}
var V int
`)
	dep := &Pass{Analyzer: a, Fset: pass2.Fset, Files: pass2.Files,
		Pkg: types.NewPackage("upper", "upper"), TypesInfo: pass2.TypesInfo,
		Report: func(Diagnostic) {}}
	dep.SetFacts(store)

	var got testFact
	if !dep.ImportObjectFact(pkg2.Scope().Lookup("F"), &got) || got.Source != "time.Now" {
		t.Fatalf("cross-package object fact: got %+v", got)
	}
	m := pkg2.Scope().Lookup("T").Type().(*types.Named).Method(0)
	if !dep.ImportObjectFact(m, &got) || got.Source != "m:M" {
		t.Fatalf("method fact: got %+v", got)
	}
	var pkgFact otherFact
	if !dep.ImportPackageFact("lower", &pkgFact) || pkgFact.N != 42 {
		t.Fatalf("package fact: got %+v", pkgFact)
	}
	if dep.ImportPackageFact("nosuch", &pkgFact) {
		t.Fatal("package fact for unknown package should miss")
	}
}

func TestObjectKeyShapes(t *testing.T) {
	_, pkg := checkSrc(t, "k", `package k
func F() {}
type T struct{ X int }
func (T) M() {}
func (*T) PM() {}
var V int
`)
	cases := map[string]string{"F": "F", "V": "V"}
	for name, want := range cases {
		if got := ObjectKey(pkg.Scope().Lookup(name)); got != want {
			t.Errorf("ObjectKey(%s) = %q, want %q", name, got, want)
		}
	}
	named := pkg.Scope().Lookup("T").Type().(*types.Named)
	for i := 0; i < named.NumMethods(); i++ {
		m := named.Method(i)
		key := ObjectKey(m)
		want := "(T).M"
		if m.Name() == "PM" {
			want = "(*T).PM"
		}
		if key != want {
			t.Errorf("ObjectKey(%s) = %q, want %q", m.Name(), key, want)
		}
	}
	// Struct fields are not keyable.
	st := named.Underlying().(*types.Struct)
	if got := ObjectKey(st.Field(0)); got != "" {
		t.Errorf("field key = %q, want empty", got)
	}
}

func TestPassWithoutFactsIsInert(t *testing.T) {
	pass, pkg := checkSrc(t, "inert", `package inert
func F() {}
`)
	pass.Analyzer = &Analyzer{Name: "t"}
	obj := pkg.Scope().Lookup("F")
	pass.ExportObjectFact(obj, &testFact{Source: "x"}) // must not panic
	var tf testFact
	if pass.ImportObjectFact(obj, &tf) {
		t.Fatal("factless pass should import nothing")
	}
	if err := pass.FinishFacts(); err != nil {
		t.Fatal(err)
	}
	if pass.AllObjectFacts() != nil || pass.AllPackageFacts() != nil {
		t.Fatal("factless pass should report no facts")
	}
}
