package framework

import (
	"go/ast"
	"go/token"
	"strings"
)

// IgnorePrefix introduces a suppression comment. A diagnostic from analyzer
// NAME at line L is suppressed when a comment of the form
//
//	//atyplint:ignore NAME reason...
//	//atyplint:ignore all reason...    (or *: suppresses every analyzer)
//
// appears on line L or on line L-1 of the same file. Suppressions are meant
// for the rare site where nondeterminism or an exact float comparison is
// intended and documented; the reason text is mandatory by convention. A
// directive whose first word is neither a known form nor an analyzer name
// suppresses nothing.
const IgnorePrefix = "atyplint:ignore"

// Suppressions indexes ignore comments of a set of parsed files.
type Suppressions struct {
	// byFileLine maps filename -> line -> analyzer names suppressed there
	// ("" means all analyzers).
	byFileLine map[string]map[int][]string
}

// CollectSuppressions scans the comments of files (which must have been
// parsed with parser.ParseComments) for atyplint:ignore directives.
func CollectSuppressions(fset *token.FileSet, files []*ast.File) *Suppressions {
	s := &Suppressions{byFileLine: map[string]map[int][]string{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, IgnorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, IgnorePrefix))
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				// "all"/"*" suppresses every analyzer ("" internally);
				// otherwise the first word names the analyzer.
				name := fields[0]
				if name == "all" || name == "*" {
					name = ""
				} else if !isIdent(name) {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := s.byFileLine[pos.Filename]
				if lines == nil {
					lines = map[int][]string{}
					s.byFileLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], name)
			}
		}
	}
	return s
}

// Suppressed reports whether a diagnostic from analyzer name at pos is
// covered by an ignore directive on the same or the preceding line.
func (s *Suppressions) Suppressed(fset *token.FileSet, name string, pos token.Pos) bool {
	p := fset.Position(pos)
	lines, ok := s.byFileLine[p.Filename]
	if !ok {
		return false
	}
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, n := range lines[line] {
			if n == "" || n == name {
				return true
			}
		}
	}
	return false
}

func isIdent(s string) bool {
	for i, r := range s {
		switch {
		case r == '_', 'a' <= r && r <= 'z', 'A' <= r && r <= 'Z':
		case i > 0 && '0' <= r && r <= '9':
		default:
			return false
		}
	}
	return len(s) > 0
}
