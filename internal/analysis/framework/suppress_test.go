package framework

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

const suppressSrc = `package p

func f(a, b float64) {
	_ = a == b //atyplint:ignore floatcmp documented exact comparison
	//atyplint:ignore all analyzers suppressed with a reason
	_ = a != b
	_ = a == b
}
`

func TestSuppressions(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", suppressSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	sup := CollectSuppressions(fset, []*ast.File{f})

	pos := func(line int) token.Pos {
		return fset.File(f.Pos()).LineStart(line)
	}
	if !sup.Suppressed(fset, "floatcmp", pos(4)) {
		t.Error("same-line named suppression should apply")
	}
	if sup.Suppressed(fset, "lockcheck", pos(4)) {
		t.Error("named suppression must not cover other analyzers")
	}
	if !sup.Suppressed(fset, "floatcmp", pos(6)) {
		t.Error("preceding-line blanket suppression should apply")
	}
	if sup.Suppressed(fset, "floatcmp", pos(7)) {
		t.Error("suppression must not leak past the next line")
	}
}
