// Package framework is a deliberately small, dependency-free mirror of the
// golang.org/x/tools/go/analysis API. The build environment vendors no
// external modules, so atyplint's analyzers program against this interface
// instead; the shapes match the upstream API closely enough that migrating
// to the real go/analysis framework later is a mechanical rename.
//
// An Analyzer inspects one type-checked package at a time through a Pass and
// reports Diagnostics. Drivers (cmd/atyplint, the analysistest harness)
// construct Passes from packages loaded by internal/analysis/load.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static-analysis rule.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// "//atyplint:ignore <name>" suppression comments. It must be a valid
	// Go identifier.
	Name string

	// Doc is the analyzer's documentation: a one-line summary, a blank
	// line, then detail.
	Doc string

	// Run applies the analyzer to one package. Findings go through
	// pass.Report/Reportf; the result value is unused today and exists for
	// API compatibility with go/analysis.
	Run func(*Pass) (any, error)

	// FactTypes lists prototypes (pointers to zero values) of every fact
	// type the analyzer exports or imports. A non-empty list marks the
	// analyzer as interprocedural: drivers must run it over packages in
	// dependency order with a shared FactStore.
	FactTypes []Fact
}

func (a *Analyzer) String() string { return a.Name }

// Pass hands an Analyzer one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)

	// facts is the interprocedural fact context, armed by SetFacts. Nil in
	// drivers that run analyzers purely intraprocedurally.
	facts *factState
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.TypesInfo.TypeOf(e)
}

// ObjectOf returns the object denoted by ident, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	return p.TypesInfo.ObjectOf(id)
}

// NewInfo returns a types.Info with every map analyzers rely on allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}
