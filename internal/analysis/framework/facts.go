package framework

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"sort"
)

// Fact is a typed, serializable datum an analyzer attaches to a package or
// to a package-level object so that analyses of *dependent* packages can see
// conclusions about their imports — the interprocedural layer of the suite.
// This mirrors golang.org/x/tools/go/analysis facts: a fact type is a
// pointer to a gob-encodable struct, declared in Analyzer.FactTypes, and
// facts cross package boundaries only through an encode/decode round-trip
// (enforced by FactStore), so nothing non-serializable can leak through.
//
// Facts also implement fmt.Stringer; the rendered form is what the
// analysistest harness matches against `// want fact:"re"` assertions.
type Fact interface {
	AFact() // marker method, conventionally implemented on pointer types
	String() string
}

// ObjectFact pairs an exported fact with the object it describes.
type ObjectFact struct {
	Object types.Object
	Fact   Fact
}

// PackageFact pairs an exported fact with its package path.
type PackageFact struct {
	PkgPath string
	Fact    Fact
}

// ObjectKey renders a package-level object (func, var, const, type) or a
// method as a stable string usable across the source-checked and
// export-data views of the same package: "Name" for package-level objects,
// "(T).M" / "(*T).M" for methods. It returns "" for objects facts cannot be
// attached to (locals, struct fields, interface methods of anonymous
// types).
func ObjectKey(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			star := ""
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
				star = "*"
			}
			named, ok := t.(*types.Named)
			if !ok {
				return ""
			}
			return "(" + star + named.Obj().Name() + ")." + fn.Name()
		}
	}
	if obj.Parent() != obj.Pkg().Scope() {
		return ""
	}
	return obj.Name()
}

// gobFact is the serialized form of one fact: the object key ("" for a
// package fact) plus the fact value itself (gob handles the concrete type
// via interface registration).
type gobFact struct {
	Key  string
	Fact Fact
}

// pkgFacts is the decoded fact set of one (analyzer, package) pair.
type pkgFacts struct {
	byKey map[string][]Fact // object key ("" = package fact) -> facts
}

// FactStore carries facts between packages for one analyzer. Exported facts
// are gob-encoded when a package's pass finishes and lazily decoded when a
// dependent imports them, so every cross-package fact provably survives
// serialization — the same discipline go/analysis applies in its
// separate-compilation drivers.
type FactStore struct {
	encoded  map[string][]byte    // pkg path -> gob blob of []gobFact
	decoded  map[string]*pkgFacts // pkg path -> decoded cache
	analyzed map[string]bool      // pkg path -> a pass over it has finished
}

// NewFactStore returns an empty store. Fact concrete types must be
// registered via RegisterFactTypes before use.
func NewFactStore() *FactStore {
	return &FactStore{
		encoded:  map[string][]byte{},
		decoded:  map[string]*pkgFacts{},
		analyzed: map[string]bool{},
	}
}

// RegisterFactTypes registers an analyzer's fact prototypes with gob.
// Safe to call repeatedly with the same types.
func RegisterFactTypes(a *Analyzer) {
	for _, f := range a.FactTypes {
		gob.Register(f)
	}
}

// finish serializes the facts exported during one package's pass into the
// store. It panics if a fact fails to encode: a non-serializable fact is an
// analyzer bug, not an input condition.
func (s *FactStore) finish(pkgPath string, exported []gobFact) error {
	s.analyzed[pkgPath] = true
	if len(exported) == 0 {
		return nil
	}
	// Deterministic blob: sort by key then rendered fact.
	sort.SliceStable(exported, func(i, j int) bool {
		if exported[i].Key != exported[j].Key {
			return exported[i].Key < exported[j].Key
		}
		return exported[i].Fact.String() < exported[j].Fact.String()
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(exported); err != nil {
		return fmt.Errorf("facts: encoding %d fact(s) of %s: %v", len(exported), pkgPath, err)
	}
	s.encoded[pkgPath] = buf.Bytes()
	delete(s.decoded, pkgPath) // in case the same path is re-analyzed
	return nil
}

// facts decodes (once) and returns the fact set for pkgPath, or nil.
func (s *FactStore) facts(pkgPath string) *pkgFacts {
	if pf, ok := s.decoded[pkgPath]; ok {
		return pf
	}
	blob, ok := s.encoded[pkgPath]
	if !ok {
		return nil
	}
	var raw []gobFact
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&raw); err != nil {
		// Decode of our own encoding failing is a programming error; treat
		// the package as fact-free rather than crashing the driver.
		return nil
	}
	pf := &pkgFacts{byKey: map[string][]Fact{}}
	for _, gf := range raw {
		pf.byKey[gf.Key] = append(pf.byKey[gf.Key], gf.Fact)
	}
	s.decoded[pkgPath] = pf
	return pf
}

// ---- Pass-side API ----

// factState is the per-pass fact context wired into a Pass by drivers.
type factState struct {
	store    *FactStore
	pkgPath  string
	exported []gobFact
	// objects remembers the object each exported fact was attached to, for
	// AllObjectFacts (the serialized form only keeps the key).
	objects []types.Object
}

// SetFacts arms a Pass with a fact store. Drivers call this before Run;
// passes without a store (legacy drivers) still work — exports are dropped
// and imports report no facts.
func (p *Pass) SetFacts(store *FactStore) {
	p.facts = &factState{store: store, pkgPath: p.Pkg.Path()}
}

// FinishFacts serializes the facts exported during this pass into the
// store, making them visible to dependent packages. Drivers call it after
// Run returns.
func (p *Pass) FinishFacts() error {
	if p.facts == nil {
		return nil
	}
	return p.facts.store.finish(p.facts.pkgPath, p.facts.exported)
}

// ExportObjectFact attaches fact to obj, which must belong to the package
// under analysis and be addressable by ObjectKey. Unkeyable objects are
// ignored (matching go/analysis, which panics only on nil).
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.facts == nil || obj == nil {
		return
	}
	key := ObjectKey(obj)
	if key == "" || obj.Pkg() == nil || obj.Pkg().Path() != p.facts.pkgPath {
		return
	}
	p.facts.exported = append(p.facts.exported, gobFact{Key: key, Fact: fact})
	p.facts.objects = append(p.facts.objects, obj)
}

// ExportPackageFact attaches fact to the package under analysis.
func (p *Pass) ExportPackageFact(fact Fact) {
	if p.facts == nil {
		return
	}
	p.facts.exported = append(p.facts.exported, gobFact{Key: "", Fact: fact})
	p.facts.objects = append(p.facts.objects, nil)
}

// ImportObjectFact copies into fact (a pointer to the zero value of a
// registered fact type) the fact of that type previously exported for obj —
// by this pass or by the pass over the package that owns obj — and reports
// whether one was found.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if p.facts == nil || obj == nil || obj.Pkg() == nil {
		return false
	}
	key := ObjectKey(obj)
	if key == "" {
		return false
	}
	if obj.Pkg().Path() == p.facts.pkgPath {
		// Same package: read back from the in-flight export list.
		for _, gf := range p.facts.exported {
			if gf.Key == key && assignFact(fact, gf.Fact) {
				return true
			}
		}
		return false
	}
	pf := p.facts.store.facts(obj.Pkg().Path())
	if pf == nil {
		return false
	}
	for _, f := range pf.byKey[key] {
		if assignFact(fact, f) {
			return true
		}
	}
	return false
}

// ImportPackageFact copies into fact the package-level fact of that type
// exported by the pass over pkg (possibly this one), reporting success.
func (p *Pass) ImportPackageFact(pkgPath string, fact Fact) bool {
	if p.facts == nil {
		return false
	}
	if pkgPath == p.facts.pkgPath {
		for _, gf := range p.facts.exported {
			if gf.Key == "" && assignFact(fact, gf.Fact) {
				return true
			}
		}
		return false
	}
	pf := p.facts.store.facts(pkgPath)
	if pf == nil {
		return false
	}
	for _, f := range pf.byKey[""] {
		if assignFact(fact, f) {
			return true
		}
	}
	return false
}

// AnalyzedPackage reports whether this analyzer's pass over pkgPath has
// already finished (or is the current pass). It lets an analyzer tell
// "analyzed dependency that exported no fact for this object" — an
// authoritative negative — apart from "package outside the analysis scope"
// (stdlib, export-data-only), where absence of a fact means nothing.
func (p *Pass) AnalyzedPackage(pkgPath string) bool {
	if p.facts == nil {
		return false
	}
	return pkgPath == p.facts.pkgPath || p.facts.store.analyzed[pkgPath]
}

// AllObjectFacts returns the object facts exported during this pass, for
// drivers (the analysistest fact assertions).
func (p *Pass) AllObjectFacts() []ObjectFact {
	if p.facts == nil {
		return nil
	}
	var out []ObjectFact
	for i, gf := range p.facts.exported {
		if gf.Key != "" && p.facts.objects[i] != nil {
			out = append(out, ObjectFact{Object: p.facts.objects[i], Fact: gf.Fact})
		}
	}
	return out
}

// AllPackageFacts returns the package facts exported during this pass.
func (p *Pass) AllPackageFacts() []PackageFact {
	if p.facts == nil {
		return nil
	}
	var out []PackageFact
	for _, gf := range p.facts.exported {
		if gf.Key == "" {
			out = append(out, PackageFact{PkgPath: p.facts.pkgPath, Fact: gf.Fact})
		}
	}
	return out
}

// assignFact copies *src into *dst when both are pointers to the same
// concrete fact type. Returns false on type mismatch, which is how a lookup
// for one fact type skips facts of another.
func assignFact(dst, src Fact) bool {
	dv := reflect.ValueOf(dst)
	sv := reflect.ValueOf(src)
	if dv.Kind() != reflect.Pointer || sv.Kind() != reflect.Pointer || dv.Type() != sv.Type() {
		return false
	}
	dv.Elem().Set(sv.Elem())
	return true
}
