package errwrap_test

import (
	"testing"

	"github.com/cpskit/atypical/internal/analysis/analysistest"
	"github.com/cpskit/atypical/internal/analysis/errwrap"
)

// TestErrwrap drives the contract fixture and its contract dependency in one
// run: Classifiable facts from errwrapdep must acquit GoodDepFact and the
// missing fact on errwrapdep.Fresh must convict BadDepFresh.
func TestErrwrap(t *testing.T) {
	diags := analysistest.Run(t, "testdata", errwrap.Analyzer, "errwrap")
	if len(diags) == 0 {
		t.Fatal("expected diagnostics on the fixture")
	}
}
