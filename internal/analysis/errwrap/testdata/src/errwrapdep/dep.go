// Fixture dependency for the errwrap analyzer: a contract package whose
// classifiable functions must be visible to dependents as facts.
package errwrapdep

import (
	"errors"
	"fmt"
)

// ErrDep is this package's declared sentinel.
var ErrDep = errors.New("errwrapdep: failed")

// Sentinel returns the declared sentinel: classifiable.
func Sentinel() error { // want fact:`errwrap:ok`
	return ErrDep
}

// Wrap passes a cause through with its chain intact: classifiable.
func Wrap(cause error) error { // want fact:`errwrap:ok`
	return fmt.Errorf("errwrapdep: %w", cause)
}

// Fresh mints a chain-less error, so it earns no fact and is reported here
// (errwrapdep is itself under contract).
func Fresh(n int) error {
	return fmt.Errorf("errwrapdep: bad value %d", n) // want `unclassifiable error reaches exported errwrapdep\.Fresh: fmt\.Errorf without %w mints a chain-less error; wrap the cause or one of ErrDep with %w`
}
