// Fixture for the errwrap analyzer: a contract package exercising local
// classification, helper propagation, variable dataflow, and cross-package
// facts from errwrapdep.
package errwrap

import (
	"context"
	"errors"
	"fmt"
	"os"

	"errwrapdep"
)

// ErrMain is this package's declared sentinel.
var ErrMain = errors.New("errwrap: main sentinel")

func GoodSentinel() error { // want fact:`errwrap:ok`
	return ErrMain
}

func GoodWrap(name string) error { // want fact:`errwrap:ok`
	if _, err := os.Open(name); err != nil {
		return fmt.Errorf("errwrap: opening %s: %w", name, err)
	}
	return nil
}

func GoodPassthrough(name string) error { // want fact:`errwrap:ok`
	_, err := os.Open(name)
	return err
}

func GoodCtx(ctx context.Context) error { // want fact:`errwrap:ok`
	return ctx.Err()
}

func GoodDepFact(cause error) error { // want fact:`errwrap:ok`
	return errwrapdep.Wrap(cause)
}

// freshHelper mints a chain-less error; unexported, so no diagnostic here —
// the blame surfaces at its exported exposers.
func freshHelper(n int) error {
	return fmt.Errorf("errwrap: odd input %d", n) // want `unclassifiable error reaches exported errwrap\.BadViaHelper: fmt\.Errorf without %w mints a chain-less error; wrap the cause or one of ErrMain with %w`
}

func BadViaHelper(n int) error {
	return freshHelper(n)
}

func BadInlineNew() error {
	return errors.New("errwrap: one-off") // want `unclassifiable error reaches exported errwrap\.BadInlineNew: inline errors\.New mints a chain-less error \(declare a sentinel instead\); wrap the cause or one of ErrMain with %w`
}

func BadDepFresh() error {
	return errwrapdep.Fresh(3) // want `unclassifiable error reaches exported errwrap\.BadDepFresh: error from errwrapdep\.Fresh, which mints unclassifiable errors; wrap the cause or one of ErrMain with %w`
}

// BadViaVar routes the fresh error through a local variable: the
// flow-insensitive dataflow still convicts.
func BadViaVar(n int) (err error) {
	if n > 0 {
		err = fmt.Errorf("errwrap: positive %d", n) // want `unclassifiable error reaches exported errwrap\.BadViaVar: fmt\.Errorf without %w mints a chain-less error; wrap the cause or one of ErrMain with %w`
	}
	return err
}

func GoodViaVar(n int) error { // want fact:`errwrap:ok`
	var err error
	if n > 0 {
		err = fmt.Errorf("errwrap: positive %d: %w", n, ErrMain)
	}
	return err
}
