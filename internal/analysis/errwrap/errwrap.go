// Package errwrap defines an interprocedural analyzer enforcing the error
// classification contract: every error an exported function of a contract
// package can return must be classifiable by the caller with errors.Is —
// either one of the package's declared sentinels (bare or wrapped with %w),
// or a cause obtained from a callee and passed through with its chain
// intact. Freshly minted, chain-less errors (fmt.Errorf without %w, inline
// errors.New in a return path) are reported: callers cannot distinguish
// them from one another, so they cannot be handled programmatically.
//
// A package is under contract when it declares at least one package-level
// sentinel (`var ErrX = errors.New(...)`) or carries the
// `//atyplint:errcontract` directive in its package doc. Main packages are
// never under contract: a command's errors terminate in its own fatal path.
//
// Classification is interprocedural. A Classifiable object fact is exported
// for every function (contract package or not) whose error results all
// classify, so an exported function returning `helper()` — or
// `otherpkg.Helper()` three packages away — is judged by what that helper
// actually returns, not by its call site. Functions of packages outside the
// analysis scope (the standard library, export-data-only dependencies) get
// the benefit of the doubt: their errors are treated as well-formed causes.
package errwrap

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"github.com/cpskit/atypical/internal/analysis/callgraph"
	"github.com/cpskit/atypical/internal/analysis/framework"
)

// Directive opts a package into the contract even when it declares no
// sentinel of its own (its exported errors must then all be pass-through
// wraps of callee causes).
const Directive = "atyplint:errcontract"

// Classifiable is the object fact exported for functions whose every
// returned error is classifiable: nil, a declared sentinel, a %w-wrap, or a
// cause passed through from a classifiable (or out-of-scope) callee.
type Classifiable struct{}

func (*Classifiable) AFact() {}

func (f *Classifiable) String() string { return "errwrap:ok" }

// Sentinels is the package fact listing the sentinel error variables a
// package declares, in source order of discovery (sorted for determinism).
type Sentinels struct {
	Names []string
}

func (*Sentinels) AFact() {}

func (f *Sentinels) String() string { return "sentinels(" + strings.Join(f.Names, ",") + ")" }

// Analyzer enforces the error classification contract.
var Analyzer = &framework.Analyzer{
	Name: "errwrap",
	Doc: "errors returned by exported functions of contract packages must be " +
		"classifiable: a declared sentinel, a %w wrap, or a pass-through cause",
	FactTypes: []framework.Fact{(*Classifiable)(nil), (*Sentinels)(nil)},
	Run:       run,
}

// verdict is the tri-state result of classifying one function.
type verdict int

const (
	unknown verdict = iota
	ok
	bad
)

// blame records why a function failed classification: the first offending
// site (always in the current package) and its description.
type blame struct {
	pos  token.Pos
	desc string
}

type checker struct {
	pass     *framework.Pass
	graph    *callgraph.Graph
	verdicts map[*types.Func]verdict
	blames   map[*types.Func]blame
	// varState guards local-variable classification against assignment
	// cycles (err = wrap(err)).
	varState  map[*types.Var]verdict
	varBlames map[*types.Var]blame
}

func run(pass *framework.Pass) (any, error) {
	c := &checker{
		pass:     pass,
		graph:    callgraph.Build(pass),
		verdicts:  map[*types.Func]verdict{},
		blames:    map[*types.Func]blame{},
		varState:  map[*types.Var]verdict{},
		varBlames: map[*types.Var]blame{},
	}

	sentinels := declaredSentinels(pass)
	if len(sentinels) > 0 {
		pass.ExportPackageFact(&Sentinels{Names: sentinels})
	}

	// Classify every declared function, export facts for the clean ones.
	c.graph.ForEach(func(n *callgraph.Node) {
		c.classify(n.Obj)
	})
	isMain := pass.Pkg.Name() == "main"
	c.graph.ForEach(func(n *callgraph.Node) {
		if c.verdicts[n.Obj] == ok && !isMain {
			pass.ExportObjectFact(n.Obj, &Classifiable{})
		}
	})

	if isMain || !underContract(pass, sentinels) {
		return nil, nil
	}

	// Report: one diagnostic per offending site exposed through an exported
	// function, at the site (which is always in this package).
	type finding struct {
		pos      token.Pos
		desc     string
		exported string
	}
	byPos := map[token.Pos]finding{}
	c.graph.ForEach(func(n *callgraph.Node) {
		if !n.Obj.Exported() || c.verdicts[n.Obj] != bad {
			return
		}
		b := c.blames[n.Obj]
		if prev, dup := byPos[b.pos]; dup && prev.exported <= n.Obj.Name() {
			return
		}
		byPos[b.pos] = finding{pos: b.pos, desc: b.desc, exported: callgraph.ShortName(n.Obj)}
	})
	all := make([]finding, 0, len(byPos))
	for _, f := range byPos {
		all = append(all, f)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].pos < all[j].pos })
	hint := "wrap the cause with %w or return a declared sentinel"
	if len(sentinels) > 0 {
		hint = "wrap the cause or one of " + strings.Join(sentinels, ", ") + " with %w"
	}
	for _, f := range all {
		c.pass.Reportf(f.pos,
			"unclassifiable error reaches exported %s: %s; %s", f.exported, f.desc, hint)
	}
	return nil, nil
}

// classify computes (and memoizes) the verdict for fn, a function declared
// in the current package. Recursion through in-progress functions resolves
// optimistically: a cycle is classifiable iff some statement on it is not.
func (c *checker) classify(fn *types.Func) verdict {
	if v, seen := c.verdicts[fn]; seen {
		if v == unknown {
			return ok // in progress: optimistic, the cycle's minting sites still convict
		}
		return v
	}
	c.verdicts[fn] = unknown
	node := c.graph.Lookup(fn)
	v := ok
	if node != nil && node.Decl != nil && node.Decl.Body != nil {
		if b, failed := c.checkBody(node.Decl); failed {
			v = bad
			c.blames[fn] = b
		}
	}
	c.verdicts[fn] = v
	return v
}

// checkBody classifies every error-typed expression returned by the
// function declaration itself (closure bodies have their own signatures and
// are skipped: an error escaping through a func value is out of scope).
func (c *checker) checkBody(fd *ast.FuncDecl) (blame, bool) {
	var b blame
	failed := false
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if failed {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if !c.isErrorExpr(res) {
					continue
				}
				if rb, isBad := c.classifyExpr(res); isBad {
					b, failed = rb, true
					return false
				}
			}
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
	if failed {
		return b, true
	}
	// Named error results returned bare: classify the result variable.
	if fd.Type.Results != nil {
		for _, field := range fd.Type.Results.List {
			for _, name := range field.Names {
				obj, _ := c.pass.TypesInfo.Defs[name].(*types.Var)
				if obj == nil || !isErrorType(obj.Type()) {
					continue
				}
				if rb, isBad := c.classifyVar(obj, fd.Body); isBad {
					return rb, true
				}
			}
		}
	}
	return blame{}, false
}

func (c *checker) isErrorExpr(e ast.Expr) bool {
	tv, has := c.pass.TypesInfo.Types[e]
	return has && tv.Type != nil && isErrorType(tv.Type)
}

// classifyExpr decides whether one returned error expression is
// classifiable; on failure it returns the blame site.
func (c *checker) classifyExpr(e ast.Expr) (blame, bool) {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		if e.Name == "nil" {
			return blame{}, false
		}
		switch obj := c.pass.TypesInfo.Uses[e].(type) {
		case *types.Var:
			if obj.Parent() != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
				return blame{}, false // package-level sentinel (ours or a dependency's)
			}
			return c.classifyVar(obj, nil)
		}
		return blame{}, false
	case *ast.SelectorExpr:
		// pkg.ErrX or x.field; package-level error vars of any package are
		// sentinels, everything else gets the benefit of the doubt.
		return blame{}, false
	case *ast.CallExpr:
		return c.classifyCall(e)
	}
	return blame{}, false
}

// classifyCall decides whether a call in a return path yields a
// classifiable error.
func (c *checker) classifyCall(call *ast.CallExpr) (blame, bool) {
	callee := calleeFunc(c.pass, call)
	if callee == nil {
		return blame{}, false // func value / interface-typed: cannot track
	}
	pkg := callee.Pkg()
	if pkg != nil && pkg.Path() == "fmt" && callee.Name() == "Errorf" {
		if errorfWraps(call) {
			return blame{}, false
		}
		return blame{pos: call.Pos(), desc: "fmt.Errorf without %w mints a chain-less error"}, true
	}
	if pkg != nil && pkg.Path() == "errors" && callee.Name() == "New" {
		return blame{pos: call.Pos(),
			desc: "inline errors.New mints a chain-less error (declare a sentinel instead)"}, true
	}
	if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil &&
		types.IsInterface(sig.Recv().Type()) {
		return blame{}, false // interface method: implementations judged at their own sites
	}
	if pkg == nil {
		return blame{}, false
	}
	if pkg == c.pass.Pkg {
		if c.classify(callee) == bad {
			hb := c.blames[callee]
			// The helper's own blame is in this package too; surface it.
			return hb, true
		}
		return blame{}, false
	}
	var fact Classifiable
	if c.pass.ImportObjectFact(callee, &fact) {
		return blame{}, false
	}
	if !c.pass.AnalyzedPackage(pkg.Path()) {
		return blame{}, false // out of analysis scope: trust it
	}
	return blame{pos: call.Pos(), desc: "error from " + callgraph.ShortName(callee) +
		", which mints unclassifiable errors"}, true
}

// classifyVar classifies a local (or named-result) error variable by every
// assignment to it visible in the enclosing function. scope, when non-nil,
// limits the walk; otherwise the declaring function body is found via the
// graph. Flow-insensitive: any bad assignment convicts.
func (c *checker) classifyVar(v *types.Var, scope *ast.BlockStmt) (blame, bool) {
	if state, seen := c.varState[v]; seen {
		if state == bad {
			return c.varBlame(v), true
		}
		return blame{}, false // done, or in progress (optimistic)
	}
	c.varState[v] = unknown
	body := scope
	if body == nil {
		body = c.enclosingBody(v.Pos())
	}
	if body == nil {
		c.varState[v] = ok
		return blame{}, false
	}
	var b blame
	failed := false
	ast.Inspect(body, func(n ast.Node) bool {
		if failed {
			return false
		}
		assign, okA := n.(*ast.AssignStmt)
		if !okA {
			return true
		}
		for i, lhs := range assign.Lhs {
			id, okI := ast.Unparen(lhs).(*ast.Ident)
			if !okI {
				continue
			}
			obj := c.pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = c.pass.TypesInfo.Uses[id]
			}
			if obj != v {
				continue
			}
			var rhs ast.Expr
			if len(assign.Rhs) == len(assign.Lhs) {
				rhs = assign.Rhs[i]
			} else if len(assign.Rhs) == 1 {
				rhs = assign.Rhs[0] // multi-value call: classify the call
			}
			if rhs == nil {
				continue
			}
			if rb, isBad := c.classifyExpr(rhs); isBad {
				b, failed = rb, true
				return false
			}
		}
		return true
	})
	if failed {
		c.varState[v] = bad
		c.blamesVar(v, b)
		return b, true
	}
	c.varState[v] = ok
	return blame{}, false
}

func (c *checker) blamesVar(v *types.Var, b blame) { c.varBlames[v] = b }
func (c *checker) varBlame(v *types.Var) blame     { return c.varBlames[v] }

// enclosingBody finds the body of the declared function containing pos.
func (c *checker) enclosingBody(pos token.Pos) *ast.BlockStmt {
	var found *ast.BlockStmt
	c.graph.ForEach(func(n *callgraph.Node) {
		if found != nil || n.Decl == nil || n.Decl.Body == nil {
			return
		}
		if n.Decl.Pos() <= pos && pos <= n.Decl.End() {
			found = n.Decl.Body
		}
	})
	return found
}

// calleeFunc resolves the static callee of a call, or nil.
func calleeFunc(pass *framework.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, okS := pass.TypesInfo.Selections[fun]; okS {
			if fn, okF := sel.Obj().(*types.Func); okF {
				return fn
			}
			return nil
		}
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// errorfWraps reports whether a fmt.Errorf call's format literal contains a
// %w verb. Non-literal formats get the benefit of the doubt.
func errorfWraps(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	lit, okL := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !okL || lit.Kind != token.STRING {
		return true
	}
	return strings.Contains(lit.Value, "%w")
}

// declaredSentinels lists package-level error variables named Err*.
func declaredSentinels(pass *framework.Pass) []string {
	var names []string
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		if !strings.HasPrefix(name, "Err") {
			continue
		}
		v, okV := scope.Lookup(name).(*types.Var)
		if okV && isErrorType(v.Type()) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// underContract reports whether the current package must satisfy the
// classification contract: it declares sentinels or carries the directive.
func underContract(pass *framework.Pass, sentinels []string) bool {
	if len(sentinels) > 0 {
		return true
	}
	for _, f := range pass.Files {
		if f.Doc == nil {
			continue
		}
		for _, line := range f.Doc.List {
			if strings.Contains(line.Text, Directive) {
				return true
			}
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
