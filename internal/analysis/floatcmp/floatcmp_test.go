package floatcmp_test

import (
	"testing"

	"github.com/cpskit/atypical/internal/analysis/analysistest"
	"github.com/cpskit/atypical/internal/analysis/floatcmp"
)

func TestFloatcmp(t *testing.T) {
	diags := analysistest.Run(t, "testdata", floatcmp.Analyzer, "floatcmp")
	if len(diags) == 0 {
		t.Fatal("expected at least one true-positive diagnostic on the fixture")
	}
}
