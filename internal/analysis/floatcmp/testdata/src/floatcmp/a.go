// Fixture for the floatcmp analyzer: float equality is flagged, exact-zero
// sentinels, NaN self-tests, constants and integer comparisons are not.
package floatcmp

type Severity float64

func bad(a, b float64, s1, s2 Severity) {
	_ = a == b   // want `floating-point == on float64`
	_ = s1 != s2 // want `floating-point != on Severity`
	if a == 0.5 { // want `floating-point == on float64`
		_ = a
	}
	_ = float32(a) == float32(b) // want `floating-point == on float32`
}

func threshold(sim, deltaSim float64) bool {
	return sim == deltaSim // want `floating-point == on float64`
}

func good(a, b float64, s Severity, n int) {
	const eps = 1e-9
	d := a - b
	_ = d < eps && d > -eps // epsilon comparison
	_ = a == 0              // exact-zero sentinel is precise
	_ = s != 0
	_ = 0.0 != b
	_ = a != a        // NaN idiom
	_ = 1.0 == 2.0    // both constant: decided at compile time
	_ = n == 3        // integers compare exactly
	_ = a >= b        // ordering tests are the sanctioned form
}
