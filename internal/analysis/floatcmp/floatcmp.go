// Package floatcmp defines an analyzer that flags == and != on
// floating-point operands.
//
// Severities, similarities and the δsim/δs thresholds of the paper are all
// float64-derived values; exact equality on them is almost always a bug
// (accumulated rounding makes "equal" severities differ in the last ulp, so
// significance and similarity decisions silently flip between otherwise
// equivalent evaluation orders). Comparisons must instead use an epsilon
// (cluster.approxEq style), an ordering test (<, <=, >, >=), or integer
// quantities.
//
// Two comparisons stay legal because they are exact by construction:
//
//   - comparison against the constant 0 (zero is exactly representable and
//     is this codebase's "unset" sentinel, e.g. Cluster.sev), and
//   - self-comparison x != x, the idiomatic NaN test.
package floatcmp

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"github.com/cpskit/atypical/internal/analysis/framework"
)

// Analyzer flags floating-point equality comparisons.
var Analyzer = &framework.Analyzer{
	Name: "floatcmp",
	Doc: "flag == and != on float operands (severities, similarities, thresholds); " +
		"use an epsilon or an ordering comparison instead",
	Run: run,
}

func run(pass *framework.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			tx, okx := pass.TypesInfo.Types[be.X]
			ty, oky := pass.TypesInfo.Types[be.Y]
			if !okx || !oky {
				return true
			}
			ft := floatType(tx.Type)
			if ft == nil {
				ft = floatType(ty.Type)
			}
			if ft == nil {
				return true
			}
			// Both sides constant: decided at compile time.
			if tx.Value != nil && ty.Value != nil {
				return true
			}
			// Exact-zero sentinel comparisons are precise.
			if isZero(tx) || isZero(ty) {
				return true
			}
			// x != x / x == x is the NaN idiom.
			if sameExpr(be.X, be.Y) {
				return true
			}
			pass.Reportf(be.OpPos,
				"floating-point %s on %s; compare with an epsilon or an ordering test (δsim/δs hazard)",
				be.Op, types.TypeString(ft, types.RelativeTo(pass.Pkg)))
			return true
		})
	}
	return nil, nil
}

// floatType returns t if its core type is a floating-point basic type
// (covering named types like cps.Severity), else nil.
func floatType(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return nil
	}
	if b.Info()&types.IsFloat == 0 {
		return nil
	}
	return t
}

// isZero reports whether the operand is a constant with exact value 0.
func isZero(tv types.TypeAndValue) bool {
	if tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}

// sameExpr reports whether two expressions are syntactically identical
// identifier/selector chains (enough for the x != x NaN idiom).
func sameExpr(a, b ast.Expr) bool {
	switch ax := a.(type) {
	case *ast.Ident:
		bx, ok := b.(*ast.Ident)
		return ok && ax.Name == bx.Name
	case *ast.SelectorExpr:
		bx, ok := b.(*ast.SelectorExpr)
		return ok && ax.Sel.Name == bx.Sel.Name && sameExpr(ax.X, bx.X)
	case *ast.ParenExpr:
		return sameExpr(ax.X, b)
	}
	if bp, ok := b.(*ast.ParenExpr); ok {
		return sameExpr(a, bp.X)
	}
	return false
}
