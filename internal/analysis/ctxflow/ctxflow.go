// Package ctxflow defines an interprocedural analyzer enforcing the
// context-propagation contract: once a function holds a context, that
// context — not a fresh one — must flow into everything it calls.
//
// Four rules:
//
//  1. A function with a context.Context parameter must not call
//     context.Background() or context.TODO(): it already has a context.
//     (Detaching deliberately is the rare exception and carries an
//     //atyplint:ignore ctxflow with the reason.)
//
//  2. A function with a context parameter must not call a callee that
//     *drops* the context: one that takes no context itself but reaches
//     context.Background()/TODO() further down. Drop-status crosses
//     package boundaries as a DropsCtx object fact, so a legacy bridge
//     three helpers deep still convicts the call site.
//
//  3. A function with a context parameter must not call F when the same
//     scope also offers FCtx (same name + "Ctx" suffix, first parameter a
//     context.Context, same package or method set): the Ctx variant exists
//     precisely so in-context callers use it.
//
//  4. In library (non-main) packages, a function *without* a context
//     parameter may call context.Background()/TODO() only in bridge
//     position — directly as a call argument, the sanctioned shape of the
//     legacy non-Ctx wrappers (`func F(...) { return FCtx(context.
//     Background(), ...) }`). Storing a fresh context in a variable or
//     field hides it from this analysis and is reported.
//
// Rules 1–3 apply everywhere including commands; rule 4 only to library
// packages (package main owns its root context).
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/cpskit/atypical/internal/analysis/callgraph"
	"github.com/cpskit/atypical/internal/analysis/framework"
)

// maxPath bounds the reported bridge chain.
const maxPath = 8

// DropsCtx is the object fact exported for functions without a context
// parameter that reach context.Background()/TODO(); calling one from a
// context-holding function silently severs cancellation.
type DropsCtx struct {
	Path []string
}

func (*DropsCtx) AFact() {}

func (f *DropsCtx) String() string { return "dropsctx" }

// Analyzer enforces context threading through every call path.
var Analyzer = &framework.Analyzer{
	Name: "ctxflow",
	Doc: "context-holding functions must thread their ctx into every callee " +
		"that accepts one; context.Background/TODO only in main or legacy " +
		"bridge position",
	FactTypes: []framework.Fact{(*DropsCtx)(nil)},
	Run:       run,
}

func run(pass *framework.Pass) (any, error) {
	g := callgraph.Build(pass)
	isMain := pass.Pkg.Name() == "main"

	// drops maps local functions (without ctx params) that reach a fresh
	// context to their example chain.
	drops := map[*types.Func]*DropsCtx{}

	// Seed: direct Background/TODO use in functions without a ctx param.
	g.ForEach(func(n *callgraph.Node) {
		if hasCtxParam(n.Obj) {
			return
		}
		for _, e := range n.Edges {
			if name := freshCtx(e.Callee); name != "" {
				drops[n.Obj] = &DropsCtx{Path: []string{callgraph.ShortName(n.Obj), name}}
				return
			}
		}
	})
	// Seed: imported facts.
	g.ForEach(func(n *callgraph.Node) {
		if hasCtxParam(n.Obj) {
			return
		}
		if _, done := drops[n.Obj]; done {
			return
		}
		for _, e := range n.Edges {
			if e.Callee.Pkg() == nil || e.Callee.Pkg() == pass.Pkg {
				continue
			}
			var fact DropsCtx
			if pass.ImportObjectFact(e.Callee, &fact) {
				drops[n.Obj] = &DropsCtx{Path: extend(callgraph.ShortName(n.Obj), fact.Path)}
				break
			}
		}
	})
	// Fixpoint over intra-package edges. Propagation stops at functions
	// that take a ctx parameter: those are judged at their own body (rule
	// 1), not inherited — a caller handing them its ctx keeps the flow.
	for changed := true; changed; {
		changed = false
		g.ForEach(func(n *callgraph.Node) {
			if hasCtxParam(n.Obj) {
				return
			}
			if _, done := drops[n.Obj]; done {
				return
			}
			for _, e := range n.Edges {
				d, ok := drops[e.Callee]
				if !ok {
					continue
				}
				drops[n.Obj] = &DropsCtx{Path: extend(callgraph.ShortName(n.Obj), d.Path)}
				changed = true
				return
			}
		})
	}
	g.ForEach(func(n *callgraph.Node) {
		if d, ok := drops[n.Obj]; ok && !isMain {
			pass.ExportObjectFact(n.Obj, d)
		}
	})

	// Rules 1 and 4: direct Background/TODO calls, by position.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			checkFreshCalls(pass, fd, obj, isMain)
		}
	}

	// Rules 2 and 3: call sites inside context-holding functions.
	g.ForEach(func(n *callgraph.Node) {
		if !hasCtxParam(n.Obj) {
			return
		}
		for _, e := range n.Edges {
			if e.Ref || e.Iface || hasCtxParam(e.Callee) {
				continue
			}
			if d, ok := drops[e.Callee]; ok {
				pass.Reportf(e.Pos,
					"%s holds a ctx but calls %s, which drops it: %s",
					n.Obj.Name(), callgraph.ShortName(e.Callee), strings.Join(d.Path, " -> "))
				continue
			}
			var fact DropsCtx
			if e.Callee.Pkg() != nil && e.Callee.Pkg() != pass.Pkg &&
				pass.ImportObjectFact(e.Callee, &fact) {
				pass.Reportf(e.Pos,
					"%s holds a ctx but calls %s, which drops it: %s",
					n.Obj.Name(), callgraph.ShortName(e.Callee), strings.Join(fact.Path, " -> "))
				continue
			}
			if sib := ctxSibling(e.Callee); sib != nil {
				pass.Reportf(e.Pos,
					"%s holds a ctx but calls %s; use %s and pass the ctx",
					n.Obj.Name(), callgraph.ShortName(e.Callee), callgraph.ShortName(sib))
			}
		}
	})
	return nil, nil
}

// checkFreshCalls reports direct context.Background/TODO calls that violate
// rule 1 (any, when fn holds a ctx) or rule 4 (non-bridge position in
// library code).
func checkFreshCalls(pass *framework.Pass, fd *ast.FuncDecl, fn *types.Func, isMain bool) {
	holdsCtx := hasCtxParam(fn)
	// bridgeArgs marks Background/TODO calls appearing directly as an
	// argument of another call — the legacy-wrapper bridge shape.
	bridgeArgs := map[*ast.CallExpr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, arg := range call.Args {
			if inner, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
				if freshCtxExpr(pass, inner) != "" {
					bridgeArgs[inner] = true
				}
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := freshCtxExpr(pass, call)
		if name == "" {
			return true
		}
		switch {
		case holdsCtx:
			pass.Reportf(call.Pos(),
				"%s already holds a ctx; pass it instead of calling %s", fn.Name(), name)
		case !isMain && !bridgeArgs[call]:
			pass.Reportf(call.Pos(),
				"%s in library code outside a bridge call; accept a ctx parameter instead", name)
		}
		return true
	})
}

// freshCtx names fn when it is context.Background or context.TODO.
func freshCtx(fn *types.Func) string {
	if fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	switch fn.Name() {
	case "Background", "TODO":
		return "context." + fn.Name()
	}
	return ""
}

// freshCtxExpr names the context constructor a call expression invokes, or
// returns "".
func freshCtxExpr(pass *framework.Pass, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return ""
	}
	return freshCtx(fn)
}

// hasCtxParam reports whether fn's signature takes a context.Context.
func hasCtxParam(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// ctxSibling returns the FCtx counterpart of a non-ctx function or method,
// or nil: same package-level scope (or same method set) holding Name+"Ctx"
// whose signature accepts a context.
func ctxSibling(fn *types.Func) *types.Func {
	pkg := fn.Pkg()
	if pkg == nil {
		return nil
	}
	want := fn.Name() + "Ctx"
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		obj, _, _ := types.LookupFieldOrMethod(t, true, pkg, want)
		if m, ok := obj.(*types.Func); ok && hasCtxParam(m) {
			return m
		}
		return nil
	}
	if obj, ok := pkg.Scope().Lookup(want).(*types.Func); ok && hasCtxParam(obj) {
		return obj
	}
	return nil
}

// extend prepends head to a copy of path, truncating to maxPath.
func extend(head string, path []string) []string {
	out := make([]string, 0, len(path)+1)
	out = append(out, head)
	out = append(out, path...)
	if len(out) > maxPath {
		out = append(out[:maxPath-1], "...")
	}
	return out
}
