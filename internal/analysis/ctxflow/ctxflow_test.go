package ctxflow_test

import (
	"testing"

	"github.com/cpskit/atypical/internal/analysis/analysistest"
	"github.com/cpskit/atypical/internal/analysis/ctxflow"
)

// TestCtxflow drives the library fixture and the package-main fixture in
// one run: drop facts from ctxflowdep must convict call sites in both.
func TestCtxflow(t *testing.T) {
	diags := analysistest.Run(t, "testdata", ctxflow.Analyzer, "ctxflow", "ctxflowmain")
	if len(diags) == 0 {
		t.Fatal("expected diagnostics on the fixture")
	}
}
