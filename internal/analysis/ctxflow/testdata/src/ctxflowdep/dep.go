// Fixture dependency for the ctxflow analyzer: legacy bridge wrappers whose
// drop-status must reach dependents as facts.
package ctxflowdep

import "context"

// RunCtx is the real, context-aware entry point.
func RunCtx(ctx context.Context, n int) int {
	if ctx.Err() != nil {
		return 0
	}
	return n
}

// Run is the sanctioned legacy bridge: Background directly in call-argument
// position is allowed (rule 4), but the function still earns a DropsCtx
// fact so in-context callers are warned off it.
func Run(n int) int { // want fact:`dropsctx`
	return RunCtx(context.Background(), n)
}

// Deep hides the bridge one level further down.
func Deep(n int) int { // want fact:`dropsctx`
	return Run(n)
}
