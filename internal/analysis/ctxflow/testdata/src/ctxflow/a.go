// Fixture for the ctxflow analyzer: a library package where every context
// must be threaded, never replaced or dropped.
package ctxflow

import (
	"context"

	"ctxflowdep"
)

func HasCtxBad(ctx context.Context) int {
	return ctxflowdep.RunCtx(context.Background(), 1) // want `HasCtxBad already holds a ctx; pass it instead of calling context\.Background`
}

func HasCtxTODO(ctx context.Context) {
	_ = context.TODO() // want `HasCtxTODO already holds a ctx; pass it instead of calling context\.TODO`
}

func HasCtxGood(ctx context.Context) int {
	return ctxflowdep.RunCtx(ctx, 1)
}

func DerivedIsFine(ctx context.Context) int {
	sub, cancel := context.WithCancel(ctx)
	defer cancel()
	return ctxflowdep.RunCtx(sub, 1)
}

func CallsBridge(ctx context.Context) int {
	return ctxflowdep.Run(1) // want `CallsBridge holds a ctx but calls ctxflowdep\.Run, which drops it: ctxflowdep\.Run -> context\.Background`
}

func CallsDeep(ctx context.Context) int {
	return ctxflowdep.Deep(2) // want `CallsDeep holds a ctx but calls ctxflowdep\.Deep, which drops it: ctxflowdep\.Deep -> ctxflowdep\.Run -> context\.Background`
}

// FetchCtx / Fetch: a sibling pair where the non-ctx variant is not a
// bridge (it never touches Background) — rule 3 still steers in-context
// callers to the Ctx variant.
func FetchCtx(ctx context.Context, n int) int {
	if ctx.Err() != nil {
		return 0
	}
	return n
}

func Fetch(n int) int { return n + 1 }

func CallsFetch(ctx context.Context) int {
	return Fetch(3) // want `CallsFetch holds a ctx but calls ctxflow\.Fetch; use ctxflow\.FetchCtx and pass the ctx`
}

type Store struct{}

func (s *Store) GetCtx(ctx context.Context, k string) string { return k }

func (s *Store) Get(k string) string { return k }

func UsesStore(ctx context.Context, s *Store) string {
	return s.Get("k") // want `UsesStore holds a ctx but calls \(\*ctxflow\.Store\)\.Get; use \(\*ctxflow\.Store\)\.GetCtx and pass the ctx`
}

func storesCtx() context.Context { // want fact:`dropsctx`
	ctx := context.Background() // want `context\.Background in library code outside a bridge call; accept a ctx parameter instead`
	return ctx
}

// LocalBridge is the sanctioned wrapper shape inside this package.
func LocalBridge(n int) int { // want fact:`dropsctx`
	return FetchCtx(context.Background(), n)
}
