// Fixture: package main owns its root context, so non-bridge Background is
// fine here (rule 4 does not apply), and neither is the bridge shape.
package main

import (
	"context"

	"ctxflowdep"
)

func main() {
	ctx := context.Background()
	_ = ctxflowdep.RunCtx(ctx, 1)
}

// helper holds a ctx, so rules 1-3 still apply inside a command.
func helper(ctx context.Context) int {
	return ctxflowdep.Deep(1) // want `helper holds a ctx but calls ctxflowdep\.Deep, which drops it: ctxflowdep\.Deep -> ctxflowdep\.Run -> context\.Background`
}
