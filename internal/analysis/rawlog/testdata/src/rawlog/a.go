// Fixture for the rawlog analyzer: stdlib log printers and implicit-stdout
// fmt prints are flagged in package main; explicit-writer output is not.
package main

import (
	"fmt"
	"log"
	"os"
)

func main() {
	bad()
	good()
}

func bad() {
	log.Printf("ingest done in %s", "1s")   // want `unstructured log\.Printf in a command binary`
	log.Println("listener up")              // want `unstructured log\.Println in a command binary`
	log.Print("starting")                   // want `unstructured log\.Print in a command binary`
	fmt.Printf("%d clusters\n", 3)          // want `fmt\.Printf writes to the implicit stdout`
	fmt.Println("done")                     // want `fmt\.Println writes to the implicit stdout`
	fmt.Print("x")                          // want `fmt\.Print writes to the implicit stdout`
	defer log.Fatalf("unreachable: %v", 1)  // want `unstructured log\.Fatalf in a command binary`
}

// lookalike has the flagged names on a different receiver: not package log.
type lookalike struct{}

func (lookalike) Printf(string, ...any) {}
func (lookalike) Println(...any)        {}

func good() {
	fmt.Fprintf(os.Stdout, "%d clusters\n", 3) // explicit writer: program output
	fmt.Fprintln(os.Stderr, "fatal:", "err")   // explicit writer: error channel
	_ = fmt.Sprintf("%d", 3)                   // formatting is not printing
	var lk lookalike
	lk.Printf("%d", 3)
	lk.Println("done")
}
