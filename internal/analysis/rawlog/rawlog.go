// Package rawlog defines an analyzer enforcing the structured-logging seam
// in command binaries: package main must not log through the stdlib log
// package's printers or write to the implicit stdout via fmt.Print*,
// because only the internal/obs/olog handler emits structured lines with
// span/trace correlation (and only structured lines survive log pipelines).
//
// Flagged in package main: log.Print/Printf/Println, log.Fatal/Fatalf/
// Fatalln and log.Panic/Panicf/Panicln, plus fmt.Print/Printf/Println
// (implicit stdout). Explicit-writer output — fmt.Fprintf(os.Stdout, ...)
// for program results, fmt.Fprintln(os.Stderr, ...) for fatal errors — is
// allowed: naming the destination is precisely what separates a program's
// output from its logging. Library packages, _test.go files and the
// examples tree are exempt. A deliberate exception needs a written
// justification via "//atyplint:ignore rawlog reason".
package rawlog

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/cpskit/atypical/internal/analysis/framework"
)

// Analyzer flags stdlib log printers and implicit-stdout fmt prints in
// package main.
var Analyzer = &framework.Analyzer{
	Name: "rawlog",
	Doc: "flag log.Printf/fmt.Print* in command binaries " +
		"(logs must go through the structured internal/obs/olog seam; " +
		"program output must name its writer via fmt.Fprint*)",
	Run: run,
}

// flaggedLog is the set of package log printers: unstructured lines on the
// shared default logger.
var flaggedLog = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fatal": true, "Fatalf": true, "Fatalln": true,
	"Panic": true, "Panicf": true, "Panicln": true,
}

// flaggedFmt is the set of fmt printers writing to the implicit stdout.
var flaggedFmt = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
}

func run(pass *framework.Pass) (any, error) {
	if pass.Pkg.Name() != "main" {
		return nil, nil // the seam binds commands; libraries return errors
	}
	for _, f := range pass.Files {
		filename := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(filename, "_test.go") {
			continue // tests print through the testing package anyway
		}
		if strings.Contains(filename, "/examples/") {
			continue // examples print for the reader, not for operators
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			switch {
			case fn.Pkg().Path() == "log" && flaggedLog[fn.Name()]:
				pass.Reportf(call.Pos(),
					"unstructured log.%s in a command binary; log through the "+
						"internal/obs/olog slog handler for structured, span-correlated lines",
					fn.Name())
			case fn.Pkg().Path() == "fmt" && flaggedFmt[fn.Name()]:
				pass.Reportf(call.Pos(),
					"fmt.%s writes to the implicit stdout; name the destination "+
						"(fmt.F%s(os.Stdout, ...)) so output and logging stay separable",
					fn.Name(), strings.ToLower(fn.Name()[:1])+fn.Name()[1:])
			}
			return true
		})
	}
	return nil, nil
}
