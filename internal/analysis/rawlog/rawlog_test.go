package rawlog_test

import (
	"testing"

	"github.com/cpskit/atypical/internal/analysis/analysistest"
	"github.com/cpskit/atypical/internal/analysis/rawlog"
)

func TestRawLog(t *testing.T) {
	diags := analysistest.Run(t, "testdata", rawlog.Analyzer, "rawlog")
	if len(diags) == 0 {
		t.Fatal("expected at least one true-positive diagnostic on the fixture")
	}
}
