// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against expectations written in the fixture source, in
// the style of golang.org/x/tools/go/analysis/analysistest.
//
// A fixture lives under testdata/src/<pkg>/ relative to the analyzer's test
// file. Lines that should trigger a diagnostic carry a trailing comment
//
//	x := a == b // want `floating-point ==`
//
// where the backquoted (or double-quoted) text is a regular expression that
// must match the diagnostic message reported on that line. Multiple
// patterns on one line expect multiple diagnostics. Diagnostics without a
// matching expectation, and expectations without a matching diagnostic,
// fail the test.
//
// Fixtures may import each other (testdata/src/<dep>/ packages): the
// analyzer runs over every fixture package in dependency order with a
// shared fact store, so fact-exporting analyzers are testable end to end.
// A declaration expected to receive an object fact asserts it with
//
//	func F() {} // want fact:`nondet\(time.Now\)`
//
// where the pattern must match the fact's String() form. Facts without a
// matching fact-expectation are ignored (an analyzer may export more than a
// fixture asserts), but every fact-expectation must be satisfied by a fact
// on an object declared at that line.
package analysistest

import (
	"fmt"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"github.com/cpskit/atypical/internal/analysis/framework"
	"github.com/cpskit/atypical/internal/analysis/load"
)

// wantRe extracts the expectation patterns from a "// want ..." comment:
// a sequence of double-quoted Go strings or backquoted raw strings, each
// optionally prefixed with "fact:" to assert an exported object fact
// instead of a diagnostic.
var wantRe = regexp.MustCompile("(fact:)?(`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")")

// expectation is one want-pattern at a file line.
type expectation struct {
	file    string
	line    int
	fact    bool
	re      *regexp.Regexp
	matched bool
}

// Run loads testdata/src/<pkg> (for each named pkg) beneath dir plus any
// fixture packages they import, applies the analyzer to every loaded
// package in dependency order with a shared fact store, and reports
// mismatches through t. It returns the diagnostics of the named packages
// (dependency-only fixtures contribute expectations but not returned
// diagnostics) for callers that want to assert more.
func Run(t *testing.T, dir string, a *framework.Analyzer, pkgs ...string) []framework.Diagnostic {
	t.Helper()
	root := dir + "/src"
	loaded, err := load.FixturePackages(root, pkgs...)
	if err != nil {
		t.Fatalf("loading fixtures %v: %v", pkgs, err)
	}
	named := map[string]bool{}
	for _, p := range pkgs {
		named[p] = true
	}

	framework.RegisterFactTypes(a)
	store := framework.NewFactStore()

	var expectations []*expectation
	var namedDiags []framework.Diagnostic
	type located struct {
		pos token.Position
		msg string
	}
	var diags []located
	var facts []located

	for _, pkg := range loaded {
		expectations = append(expectations, collectWants(t, pkg)...)
		pass := &framework.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Syntax,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		}
		isNamed := named[pkg.PkgPath]
		pass.Report = func(d framework.Diagnostic) {
			diags = append(diags, located{pos: pkg.Fset.Position(d.Pos), msg: d.Message})
			if isNamed {
				namedDiags = append(namedDiags, d)
			}
		}
		pass.SetFacts(store)
		if _, err := a.Run(pass); err != nil {
			t.Fatalf("%s on fixture %s: %v", a.Name, pkg.PkgPath, err)
		}
		for _, of := range pass.AllObjectFacts() {
			facts = append(facts, located{
				pos: pkg.Fset.Position(of.Object.Pos()),
				msg: of.Fact.String(),
			})
		}
		if err := pass.FinishFacts(); err != nil {
			t.Fatalf("%s: serializing facts of %s: %v", a.Name, pkg.PkgPath, err)
		}
	}

	for _, d := range diags {
		if !claim(expectations, false, d.pos.Filename, d.pos.Line, d.msg) {
			t.Errorf("%s: unexpected diagnostic: %s", d.pos, d.msg)
		}
	}
	// Facts are claim-only: unasserted facts are fine, unmatched
	// fact-expectations are not.
	for _, f := range facts {
		claim(expectations, true, f.pos.Filename, f.pos.Line, f.msg)
	}
	for _, e := range expectations {
		if !e.matched {
			kind := "diagnostic"
			if e.fact {
				kind = "fact"
			}
			t.Errorf("%s:%d: no %s matching %q", e.file, e.line, kind, e.re)
		}
	}
	return namedDiags
}

// collectWants scans fixture comments for want-expectations.
func collectWants(t *testing.T, pkg *load.Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") && text != "want" {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				matches := wantRe.FindAllStringSubmatch(strings.TrimPrefix(text, "want"), -1)
				if len(matches) == 0 {
					t.Fatalf("%s: malformed want comment %q", pos, c.Text)
				}
				for _, m := range matches {
					s, err := unquote(m[2])
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, m[2], err)
					}
					re, err := regexp.Compile(s)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, s, err)
					}
					out = append(out, &expectation{
						file: pos.Filename, line: pos.Line,
						fact: m[1] == "fact:", re: re,
					})
				}
			}
		}
	}
	return out
}

func unquote(s string) (string, error) {
	if strings.HasPrefix(s, "`") {
		return strings.Trim(s, "`"), nil
	}
	return strconv.Unquote(s)
}

// claim marks the first unmatched expectation of the given kind at
// (file, line) whose pattern matches msg.
func claim(exps []*expectation, fact bool, file string, line int, msg string) bool {
	for _, e := range exps {
		if !e.matched && e.fact == fact && e.file == file && e.line == line && e.re.MatchString(msg) {
			e.matched = true
			return true
		}
	}
	return false
}

// Positions formats diagnostics for debugging helpers.
func Positions(fset *token.FileSet, diags []framework.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "%s: %s\n", fset.Position(d.Pos), d.Message)
	}
	return b.String()
}
