// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against expectations written in the fixture source, in
// the style of golang.org/x/tools/go/analysis/analysistest.
//
// A fixture lives under testdata/src/<pkg>/ relative to the analyzer's test
// file. Lines that should trigger a diagnostic carry a trailing comment
//
//	x := a == b // want `floating-point ==`
//
// where the backquoted (or double-quoted) text is a regular expression that
// must match the diagnostic message reported on that line. Multiple
// patterns on one line expect multiple diagnostics. Diagnostics without a
// matching expectation, and expectations without a matching diagnostic,
// fail the test.
package analysistest

import (
	"fmt"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"github.com/cpskit/atypical/internal/analysis/framework"
	"github.com/cpskit/atypical/internal/analysis/load"
)

// wantRe extracts the expectation patterns from a "// want ..." comment:
// a sequence of double-quoted Go strings or backquoted raw strings.
var wantRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// expectation is one want-pattern at a file line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads testdata/src/<pkg> beneath dir, applies the analyzer, and
// reports mismatches through t. It returns the diagnostics for callers that
// want to assert more.
func Run(t *testing.T, dir string, a *framework.Analyzer, pkg string) []framework.Diagnostic {
	t.Helper()
	root := dir + "/src"
	loaded, err := load.FixturePackage(root, pkg)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkg, err)
	}

	expectations := collectWants(t, loaded)

	var diags []framework.Diagnostic
	pass := &framework.Pass{
		Analyzer:  a,
		Fset:      loaded.Fset,
		Files:     loaded.Syntax,
		Pkg:       loaded.Types,
		TypesInfo: loaded.TypesInfo,
		Report:    func(d framework.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s on fixture %s: %v", a.Name, pkg, err)
	}

	for _, d := range diags {
		pos := loaded.Fset.Position(d.Pos)
		if !claim(expectations, pos.Filename, pos.Line, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, e := range expectations {
		if !e.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", e.file, e.line, e.re)
		}
	}
	return diags
}

// collectWants scans fixture comments for want-expectations.
func collectWants(t *testing.T, pkg *load.Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") && text != "want" {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				patterns := wantRe.FindAllString(strings.TrimPrefix(text, "want"), -1)
				if len(patterns) == 0 {
					t.Fatalf("%s: malformed want comment %q", pos, c.Text)
				}
				for _, p := range patterns {
					s, err := unquote(p)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, p, err)
					}
					re, err := regexp.Compile(s)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, s, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out
}

func unquote(s string) (string, error) {
	if strings.HasPrefix(s, "`") {
		return strings.Trim(s, "`"), nil
	}
	return strconv.Unquote(s)
}

// claim marks the first unmatched expectation at (file, line) whose pattern
// matches msg.
func claim(exps []*expectation, file string, line int, msg string) bool {
	for _, e := range exps {
		if !e.matched && e.file == file && e.line == line && e.re.MatchString(msg) {
			e.matched = true
			return true
		}
	}
	return false
}

// Positions formats diagnostics for debugging helpers.
func Positions(fset *token.FileSet, diags []framework.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "%s: %s\n", fset.Position(d.Pos), d.Message)
	}
	return b.String()
}
