// Fixture for the nondet analyzer: functions marked //atyplint:deterministic
// must not reach a nondeterminism source through any static call path.
package nondet

import (
	"math/rand"
	"os"
	"sort"
	"time"

	"internal/obs"

	"nondetdep"
)

//atyplint:deterministic
func RootDirect() int64 { // want `determinism root RootDirect can reach nondeterminism source time\.Now: nondet\.RootDirect -> time\.Now`
	return time.Now().UnixNano()
}

func localRand() int { // want fact:`nondet\(math/rand\.Intn\)`
	return rand.Intn(10)
}

//atyplint:deterministic
func RootViaLocal() int { // want `determinism root RootViaLocal can reach nondeterminism source math/rand\.Intn: nondet\.RootViaLocal -> nondet\.localRand -> math/rand\.Intn`
	return localRand()
}

//atyplint:deterministic
func RootViaDep() int64 { // want `determinism root RootViaDep can reach nondeterminism source time\.Now: nondet\.RootViaDep -> nondetdep\.Hidden -> nondetdep\.Stamp -> time\.Now`
	return nondetdep.Hidden()
}

//atyplint:deterministic
func RootClean(m map[int]float64) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys // sorted: not a leak, and Pure is deterministic
}

//atyplint:deterministic
func RootMapRange(m map[int]float64) []int { // want `determinism root RootMapRange can reach nondeterminism source unordered map range: nondet\.RootMapRange`
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

//atyplint:deterministic
func RootEnvClosure() string { // want `determinism root RootEnvClosure can reach nondeterminism source os\.Getenv`
	f := func() string { return os.Getenv("HOME") }
	return f()
}

//atyplint:deterministic
func RootObsExempt(n int) int {
	obs.Observe() // exempt: observability is a side channel
	return nondetdep.Pure(n, n)
}

type ticker interface{ Tick() int64 }

type clockTicker struct{}

func (clockTicker) Tick() int64 { // want fact:`nondet\(time\.Now\)`
	return time.Now().Unix()
}

//atyplint:deterministic
func RootIface(t ticker) int64 { // want `determinism root RootIface can reach nondeterminism source time\.Now`
	return t.Tick()
}

//atyplint:deterministic
func RootFuncValue() int64 { // want `determinism root RootFuncValue can reach nondeterminism source time\.Now`
	clock := time.Now
	return clock().Unix()
}
