// Fixture standing in for the real observability layer: it reads the clock,
// but calls into any internal/obs path are exempt from nondet propagation —
// metrics are a side channel, never part of a query answer.
package obs

import "time"

func Observe() int64 {
	return time.Now().UnixNano()
}
