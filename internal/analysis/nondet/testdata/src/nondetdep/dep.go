// Fixture dependency for the nondet analyzer: a helper package whose
// nondeterminism must propagate to dependents through object facts.
package nondetdep

import "time"

func Stamp() int64 { // want fact:`nondet\(time\.Now\)`
	return time.Now().UnixNano()
}

func Hidden() int64 { // want fact:`nondet\(time\.Now\)`
	return Stamp()
}

func Pure(a, b int) int { return a + b }
