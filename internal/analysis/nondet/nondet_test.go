package nondet_test

import (
	"testing"

	"github.com/cpskit/atypical/internal/analysis/analysistest"
	"github.com/cpskit/atypical/internal/analysis/nondet"
)

// TestNondet drives the multi-package fixture: nondetdep's facts must cross
// the package boundary into nondet's roots, and the internal/obs exemption
// must hold.
func TestNondet(t *testing.T) {
	diags := analysistest.Run(t, "testdata", nondet.Analyzer, "nondet")
	if len(diags) == 0 {
		t.Fatal("expected diagnostics on the fixture roots")
	}
}
