// Package nondet defines an interprocedural analyzer proving that the
// declared determinism roots — the functions whose output the byte-identity
// guarantees rest on (cluster extract/integrate, the cube severity build,
// Explain.Canonical) — cannot reach a source of nondeterminism through any
// static call path.
//
// A function is a *determinism root* when its doc comment carries the
// directive
//
//	//atyplint:deterministic
//
// Nondeterminism sources are calls to time.Now/time.Since, anything in
// math/rand (v1 or v2) or crypto/rand, os.Getenv/LookupEnv/Environ, and
// order-leaking map ranges (the exact heuristic of the rangedeterminism
// analyzer, shared via rangedeterminism.Leaks). Reachability is computed
// over the internal/analysis/callgraph static graph: closures are charged
// to their enclosing function, interface calls resolve conservatively to
// every visible implementation, and function-value references count as
// potential calls.
//
// Each function that can reach a source gets a Reaches object fact with the
// source name and an example call path; facts propagate across package
// boundaries, so a root in internal/cluster is convicted even when the
// offending call hides three helpers deep in another package. Calls into
// internal/obs are exempt: metrics and spans read the clock by design, and
// their output is a side channel that never feeds query answers.
//
// A root that must keep an exempted call documents it with
// //atyplint:ignore nondet <reason> at the root's declaration.
package nondet

import (
	"go/types"
	"strings"

	"github.com/cpskit/atypical/internal/analysis/callgraph"
	"github.com/cpskit/atypical/internal/analysis/framework"
	"github.com/cpskit/atypical/internal/analysis/rangedeterminism"
)

// RootDirective marks a function as a determinism root when it appears in
// the function's doc comment.
const RootDirective = "atyplint:deterministic"

// maxPath bounds the reported example call chain.
const maxPath = 8

// Reaches is the object fact exported for every function that can reach a
// nondeterminism source. Path is an example call chain, shortest-first,
// ending at the source.
type Reaches struct {
	Source string
	Path   []string
}

func (*Reaches) AFact() {}

func (f *Reaches) String() string { return "nondet(" + f.Source + ")" }

// Analyzer proves determinism roots cannot reach nondeterminism sources.
var Analyzer = &framework.Analyzer{
	Name: "nondet",
	Doc: "prove declared determinism roots (//atyplint:deterministic) cannot " +
		"transitively reach time.Now, math/rand, os.Getenv or an order-leaking " +
		"map range",
	FactTypes: []framework.Fact{(*Reaches)(nil)},
	Run:       run,
}

func run(pass *framework.Pass) (any, error) {
	g := callgraph.Build(pass)

	reaches := map[*types.Func]*Reaches{}

	// Seed: direct sources — source calls, and leaky map ranges in the
	// function's own body.
	g.ForEach(func(n *callgraph.Node) {
		if leaks := rangedeterminism.Leaks(pass, n.Decl.Body); len(leaks) > 0 {
			reaches[n.Obj] = &Reaches{
				Source: "unordered map range",
				Path:   []string{callgraph.ShortName(n.Obj)},
			}
			return
		}
		for _, e := range n.Edges {
			if src := sourceOf(e.Callee); src != "" {
				reaches[n.Obj] = &Reaches{
					Source: src,
					Path:   []string{callgraph.ShortName(n.Obj), src},
				}
				return
			}
		}
	})

	// Seed: imported facts — callees in other packages already convicted.
	g.ForEach(func(n *callgraph.Node) {
		if _, done := reaches[n.Obj]; done {
			return
		}
		for _, e := range n.Edges {
			if exempt(e.Callee) || e.Callee.Pkg() == nil || e.Callee.Pkg() == pass.Pkg {
				continue
			}
			var fact Reaches
			if pass.ImportObjectFact(e.Callee, &fact) {
				reaches[n.Obj] = &Reaches{
					Source: fact.Source,
					Path:   extend(callgraph.ShortName(n.Obj), fact.Path),
				}
				break
			}
		}
	})

	// Fixpoint over intra-package edges.
	for changed := true; changed; {
		changed = false
		g.ForEach(func(n *callgraph.Node) {
			if _, done := reaches[n.Obj]; done {
				return
			}
			for _, e := range n.Edges {
				r, ok := reaches[e.Callee]
				if !ok || exempt(e.Callee) {
					continue
				}
				reaches[n.Obj] = &Reaches{
					Source: r.Source,
					Path:   extend(callgraph.ShortName(n.Obj), r.Path),
				}
				changed = true
				return
			}
		})
	}

	// Export facts and convict roots.
	g.ForEach(func(n *callgraph.Node) {
		r, ok := reaches[n.Obj]
		if !ok {
			return
		}
		pass.ExportObjectFact(n.Obj, r)
		if isRoot(n) {
			pass.Reportf(n.Decl.Name.Pos(),
				"determinism root %s can reach nondeterminism source %s: %s",
				n.Obj.Name(), r.Source, strings.Join(r.Path, " -> "))
		}
	})
	return nil, nil
}

// isRoot reports whether the node's doc comment declares a determinism root.
func isRoot(n *callgraph.Node) bool {
	if n.Decl.Doc == nil {
		return false
	}
	for _, c := range n.Decl.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), RootDirective) {
			return true
		}
	}
	return false
}

// sourceOf names the nondeterminism source fn is, or "".
func sourceOf(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return ""
	}
	switch pkg.Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			return "time." + fn.Name()
		}
	case "math/rand", "math/rand/v2", "crypto/rand":
		return pkg.Path() + "." + fn.Name()
	case "os":
		switch fn.Name() {
		case "Getenv", "LookupEnv", "Environ":
			return "os." + fn.Name()
		}
	}
	return ""
}

// exempt reports whether calls to fn never taint the caller: the
// observability layer reads the clock by design and its output is a side
// channel, not part of any query answer.
func exempt(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	return strings.Contains(pkg.Path(), "internal/obs")
}

// extend prepends head to a copy of path, truncating to maxPath.
func extend(head string, path []string) []string {
	out := make([]string, 0, len(path)+1)
	out = append(out, head)
	out = append(out, path...)
	if len(out) > maxPath {
		out = append(out[:maxPath-1], "...")
	}
	return out
}
