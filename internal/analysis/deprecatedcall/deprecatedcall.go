// Package deprecatedcall defines an analyzer fencing in method calls the
// codebase has deprecated in favor of a replacement entry point. The table
// below names each method and the migration; the analyzer convicts every
// use — calls, method values, method expressions — outside the method's
// grace zone:
//
//   - the declaring package itself (the wrappers delegate to each other and
//     to the replacement, and must keep compiling);
//   - _test.go files (the wrappers are byte-identity fixtures: the tests
//     that pin them to the replacement are their whole remaining purpose).
//
// Package main is deliberately NOT exempt — commands were the first callers
// migrated, and new command code must start on the replacement surface.
//
// Resolution is type-based, not textual: a selector counts only when the
// owning named type matches the table entry, so an unrelated type that
// happens to share a method name stays quiet.
package deprecatedcall

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/cpskit/atypical/internal/analysis/framework"
)

// Entry names one deprecated method and the migration away from it.
type Entry struct {
	// Path, when set, matches the declaring package's full import path
	// exactly. The production table uses it so an unrelated or vendored
	// package that merely shares the facade's last path segment neither
	// triggers the fence nor slips through its grace zone.
	Path string
	// PkgSuffix, consulted only when Path is empty, matches the declaring
	// package's import path by equality or "/"-delimited suffix. It exists
	// for test fixtures, whose GOPATH-style single-segment import paths
	// carry no module prefix to match exactly.
	PkgSuffix string
	// Type is the named type declaring the method.
	Type string
	// Method is the deprecated method's name.
	Method string
	// Advice says what to use instead; it is appended to the diagnostic.
	Advice string
}

// runAdvice is the shared migration note for the legacy query matrix.
const runAdvice = "migrate to Run(ctx, QueryRequest{...})"

// Deprecated is the table of retired methods. Tests may append fixture
// entries; the production table holds the legacy Query matrix that
// Run(QueryRequest) replaced.
// facadePath is the facade's full import path — the module root.
const facadePath = "github.com/cpskit/atypical"

var Deprecated = []Entry{
	{Path: facadePath, Type: "System", Method: "QueryCity", Advice: runAdvice},
	{Path: facadePath, Type: "System", Method: "QueryCityCtx", Advice: runAdvice},
	{Path: facadePath, Type: "System", Method: "QueryCityExplainCtx", Advice: runAdvice + " with Explain set"},
	{Path: facadePath, Type: "System", Method: "QueryBox", Advice: runAdvice + " with Box set"},
	{Path: facadePath, Type: "System", Method: "QueryBoxCtx", Advice: runAdvice + " with Box set"},
	{Path: facadePath, Type: "System", Method: "QueryBoxExplainCtx", Advice: runAdvice + " with Box and Explain set"},
	{Path: facadePath, Type: "System", Method: "QueryAt", Advice: runAdvice + " with Regions and Window set"},
	{Path: facadePath, Type: "System", Method: "QueryAtCtx", Advice: runAdvice + " with Regions and Window set"},
	{Path: facadePath, Type: "System", Method: "QueryAtExplainCtx", Advice: runAdvice + " with Regions, Window and Explain set"},
}

// Analyzer flags uses of deprecated methods outside their grace zone.
var Analyzer = &framework.Analyzer{
	Name: "deprecatedcall",
	Doc: "deprecated methods (the legacy System.Query* matrix) must not be called " +
		"outside their declaring package and tests",
	Run: run,
}

func run(pass *framework.Pass) (any, error) {
	entries := make([]Entry, 0, len(Deprecated))
	for _, e := range Deprecated {
		if !pkgMatches(pass.Pkg.Path(), &e) {
			entries = append(entries, e)
		}
	}
	if len(entries) == 0 {
		return nil, nil
	}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if e := match(entries, pass.TypeOf(sel.X), sel.Sel.Name); e != nil {
				report(pass, sel.Sel.Pos(), e)
			}
			return true
		})
	}
	return nil, nil
}

func report(pass *framework.Pass, pos token.Pos, e *Entry) {
	pass.Reportf(pos, "%s.%s is deprecated: %s", e.Type, e.Method, e.Advice)
}

// match returns the table entry deprecating method name on owner (possibly
// a pointer to the named type), or nil.
func match(entries []Entry, owner types.Type, name string) *Entry {
	if owner == nil {
		return nil
	}
	if ptr, ok := types.Unalias(owner).(*types.Pointer); ok {
		owner = ptr.Elem()
	}
	named, ok := types.Unalias(owner).(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return nil
	}
	for i := range entries {
		e := &entries[i]
		if name == e.Method && obj.Name() == e.Type && pkgMatches(obj.Pkg().Path(), e) {
			return e
		}
	}
	return nil
}

// pkgMatches reports whether path is the entry's declaring package: exactly
// e.Path when set, otherwise e.PkgSuffix itself or any "/"-delimited suffix
// of it (fixture mode).
func pkgMatches(path string, e *Entry) bool {
	if e.Path != "" {
		return path == e.Path
	}
	return path == e.PkgSuffix || strings.HasSuffix(path, "/"+e.PkgSuffix)
}
