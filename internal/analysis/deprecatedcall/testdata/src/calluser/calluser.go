// Package calluser exercises deprecatedcall: calls and method values of the
// legacy wrappers are convicted, while the replacement entry point and
// lookalike types stay quiet.
package calluser

import "atypical"

// lookalike shares the method name but not the type; it must stay quiet.
type lookalike struct{}

func (lookalike) QueryCity(firstDay, days int) int { return firstDay + days }

func Use(sys *atypical.System) int {
	rep := sys.QueryCity(0, 7) // want `System\.QueryCity is deprecated`
	if rep2, err := sys.QueryCityCtx(0, 7); err == nil { // want `System\.QueryCityCtx is deprecated`
		rep = rep2
	}
	f := sys.QueryCity // want `System\.QueryCity is deprecated`
	_ = f
	res, _ := sys.Run(atypical.QueryRequest{Days: 7})
	l := lookalike{}
	return l.QueryCity(0, 7) + res.Macros + rep.Macros
}
