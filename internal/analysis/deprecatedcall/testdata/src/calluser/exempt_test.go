// Tests keep the byte-identity fixtures covered, so _test.go files may call
// the wrappers freely.
package calluser

import "atypical"

func helperForTests(sys *atypical.System) *atypical.Report {
	return sys.QueryCity(0, 7)
}
