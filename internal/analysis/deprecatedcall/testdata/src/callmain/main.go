// Command callmain shows that package main earns no grace here — unlike
// deprecatedfield, where flag parsing sanctions the stringly values —
// because commands were the first callers migrated off the wrappers.
package main

import "atypical"

func main() {
	sys := &atypical.System{}
	_ = sys.QueryCity(0, 7) // want `System\.QueryCity is deprecated`
}
