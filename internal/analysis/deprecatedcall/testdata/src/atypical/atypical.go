// Package atypical is the fixture stand-in for the facade: it declares the
// deprecated query wrappers, whose mutual delegation stays exempt.
package atypical

// Report mirrors the facade query answer shape.
type Report struct{ Macros int }

// QueryRequest mirrors the replacement request shape.
type QueryRequest struct {
	FirstDay, Days int
}

// System mirrors the facade.
type System struct{}

// Run is the replacement entry point.
func (s *System) Run(req QueryRequest) (*Report, error) { return &Report{}, nil }

// QueryCity is a deprecated wrapper; its in-package delegation is exempt.
func (s *System) QueryCity(firstDay, days int) *Report {
	rep, _ := s.QueryCityCtx(firstDay, days)
	return rep
}

// QueryCityCtx is deprecated too and delegates to the replacement.
func (s *System) QueryCityCtx(firstDay, days int) (*Report, error) {
	return s.Run(QueryRequest{FirstDay: firstDay, Days: days})
}
